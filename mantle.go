// Package mantle is the public API of this reproduction of "Mantle:
// Efficient Hierarchical Metadata Management for Cloud Object Storage
// Services" (SOSP 2025). It assembles a complete Mantle deployment — a
// per-namespace IndexNode Raft group over a sharded TafDB on a simulated
// cluster fabric — and exposes the COSS-style metadata operations through
// stateless Client handles, the way applications drive the proxy layer
// in the paper.
//
// Quick start:
//
//	cl, err := mantle.New(mantle.Config{})
//	if err != nil { ... }
//	defer cl.Stop()
//	c := cl.Client()
//	_ = c.MkdirAll("/data/train")
//	_, _ = c.Create("/data/train/sample-0", 4096)
//	info, _ := c.Stat("/data/train/sample-0")
//
// The internal packages implement every subsystem from scratch (Raft,
// the sharded transactional store, delta records, TopDirPathCache, the
// Invalidator) plus the three baseline systems the paper compares
// against; see DESIGN.md.
package mantle

import (
	"errors"
	"fmt"
	"time"

	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// Config selects the deployment shape. The zero value is a sensible
// single-process development deployment (zero network latency, 4 TafDB
// shards, 1 IndexNode replica).
type Config struct {
	// Shards is the TafDB shard count.
	Shards int
	// Replicas is the IndexNode Raft group's voter count.
	Replicas int
	// Learners adds read replicas to the IndexNode group.
	Learners int
	// K is the TopDirPathCache truncation distance (default 3, the
	// production value).
	K int
	// DisableCache turns TopDirPathCache off.
	DisableCache bool
	// FollowerRead serves lookups from followers and learners.
	FollowerRead bool
	// RTT injects a per-RPC network round-trip latency (0 = in-process
	// speed; benchmarks use 200µs to model the paper's testbed).
	RTT time.Duration
	// PreciseRTT waits out each RTT charge's final stretch on a
	// yield-spin loop instead of trusting time.Sleep, whose granularity
	// on virtualised hosts is often coarser than the RTT itself. Costs
	// CPU per in-flight RPC; meant for low-concurrency latency
	// measurements like the namespace-scale sweep, not throughput runs.
	PreciseRTT bool
	// DeltaRecords selects the directory-attribute update strategy:
	// "auto" (default; activate under contention), "always", or "off".
	DeltaRecords string
	// ProxyCache adds a proxy-side metadata cache on top of
	// TopDirPathCache (the paper's Figure 20 configuration; off by
	// default, as in the paper's design).
	ProxyCache bool
	// FsyncCost simulates the IndexNode Raft log's per-sync disk
	// latency (0 = no disk model; the paper's experiments use 400µs).
	FsyncCost time.Duration
	// WALSyncCost, when positive, attaches a write-ahead log with the
	// given per-sync latency to every TafDB shard (group commit +
	// crash recovery by replay).
	WALSyncCost time.Duration
	// DisableWriteBatch turns off write-path batching at every layer —
	// raft log batching and pipelining, WAL group commit, and batched
	// cross-shard 2PC — the "Mantle-base" side of the Figure 16
	// ablation. Batching is on by default.
	DisableWriteBatch bool
	// Hotspot enables elastic hotspot management on the IndexNode group:
	// directories whose read heat crosses a threshold are promoted into
	// a hot-set served by followers and learners at a bounded-staleness
	// read point, reads route to the least-loaded replica via
	// piggybacked load hints, and requests are shed with ErrOverloaded
	// once every replica saturates. Implies FollowerRead machinery for
	// the hot paths; consistent ReadIndex reads continue to serve
	// everything else.
	Hotspot bool
	// HotThreshold overrides the decayed read count at which a
	// directory is promoted into the hot-set (0 = the production
	// default, 512). Demotion applies at half the threshold. Lower it
	// when the deployment's absolute read rate is small relative to
	// production — benchmarks and tests do.
	HotThreshold int64
}

// Cluster is a running Mantle deployment for one namespace.
type Cluster struct {
	m *core.Mantle
}

// coreConfig maps the public Config onto the internal per-site
// configuration. The Fabric field is left nil: single-site New installs
// one fabric, while the DR constructor gives each site its own.
func coreConfig(cfg Config) (core.Config, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	var delta tafdb.DeltaMode
	switch cfg.DeltaRecords {
	case "", "auto":
		delta = tafdb.DeltaAuto
	case "always":
		delta = tafdb.DeltaAlways
	case "off":
		delta = tafdb.DeltaOff
	default:
		return core.Config{}, fmt.Errorf("mantle: unknown DeltaRecords mode %q", cfg.DeltaRecords)
	}
	return core.Config{
		ProxyCache: cfg.ProxyCache,
		TafDB: tafdb.Config{
			Shards:           cfg.Shards,
			Delta:            delta,
			WALSyncCost:      cfg.WALSyncCost,
			WALNoGroupCommit: cfg.DisableWriteBatch,
			Batch2PC:         !cfg.DisableWriteBatch,
		},
		Index: indexnode.Config{
			Voters:       cfg.Replicas,
			Learners:     cfg.Learners,
			K:            cfg.K,
			CacheEnabled: !cfg.DisableCache,
			FollowerRead: cfg.FollowerRead,
			FsyncCost:    cfg.FsyncCost,
			BatchEnabled: !cfg.DisableWriteBatch,
			Pipeline:     !cfg.DisableWriteBatch,
			Hotspot:      cfg.Hotspot,
			HotThreshold: cfg.HotThreshold,
		},
	}, nil
}

// New starts a deployment.
func New(cfg Config) (*Cluster, error) {
	cc, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	cc.Fabric = netsim.NewFabric(netsim.Config{RTT: cfg.RTT, Precise: cfg.PreciseRTT})
	m, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	return &Cluster{m: m}, nil
}

// Stop shuts the deployment down.
func (c *Cluster) Stop() { c.m.Stop() }

// Client returns a stateless client handle (the proxy-layer view).
// Clients are cheap; any number may be used concurrently.
func (c *Cluster) Client() *Client { return &Client{m: c.m} }

// Info describes an entry.
type Info struct {
	Path    string
	IsDir   bool
	Size    int64
	Entries int64 // child count for directories
	ModTime time.Time
}

// OpStats reports the cost of the last call on a Client obtained from
// Client.Stats: RPC round trips and retries (useful in examples to show
// the single-RPC lookup property).
type OpStats struct {
	RTTs    int
	Retries int
	Lookup  time.Duration
	Execute time.Duration
}

// Client issues metadata operations. Safe for concurrent use; per-call
// stats are returned by the *WithStats variants.
type Client struct {
	m *core.Mantle
}

// Sentinel errors surfaced by the client.
var (
	ErrNotFound   = types.ErrNotFound
	ErrExists     = types.ErrExists
	ErrNotEmpty   = types.ErrNotEmpty
	ErrLoop       = types.ErrLoop
	ErrPermission = types.ErrPermission
	// ErrOverloaded is returned when the deployment sheds a request under
	// saturation; types.RetryAfter extracts the suggested backoff.
	ErrOverloaded = types.ErrOverloaded
)

func info(path string, e types.Entry) Info {
	out := Info{Path: pathutil.Clean(path), IsDir: e.Kind == types.KindDir, ModTime: e.Attr.MTime}
	if out.IsDir {
		out.Entries = e.Attr.LinkCount
	} else {
		out.Size = e.Attr.Size
	}
	return out
}

func stats(r types.Result) OpStats {
	return OpStats{
		RTTs:    r.RTTs,
		Retries: r.Retries,
		Lookup:  r.Phases[types.PhaseLookup] + r.Phases[types.PhaseLoopDetect],
		Execute: r.Phases[types.PhaseExecute],
	}
}

// Create inserts an object of the given size.
func (c *Client) Create(path string, size int64) (Info, error) {
	r, err := c.m.Create(c.m.Caller().Begin(), path, size)
	return info(path, r.Entry), err
}

// CreateWithStats is Create returning per-op cost.
func (c *Client) CreateWithStats(path string, size int64) (Info, OpStats, error) {
	r, err := c.m.Create(c.m.Caller().Begin(), path, size)
	return info(path, r.Entry), stats(r), err
}

// Delete removes an object.
func (c *Client) Delete(path string) error {
	_, err := c.m.Delete(c.m.Caller().Begin(), path)
	return err
}

// Stat returns an object's metadata.
func (c *Client) Stat(path string) (Info, error) {
	r, err := c.m.ObjStat(c.m.Caller().Begin(), path)
	return info(path, r.Entry), err
}

// StatWithStats is Stat returning per-op cost.
func (c *Client) StatWithStats(path string) (Info, OpStats, error) {
	r, err := c.m.ObjStat(c.m.Caller().Begin(), path)
	return info(path, r.Entry), stats(r), err
}

// StatDir returns a directory's metadata (merging live delta records).
func (c *Client) StatDir(path string) (Info, error) {
	r, err := c.m.DirStat(c.m.Caller().Begin(), path)
	return info(path, r.Entry), err
}

// Mkdir creates a directory; the parent must exist.
func (c *Client) Mkdir(path string) error {
	_, err := c.m.Mkdir(c.m.Caller().Begin(), path)
	return err
}

// MkdirAll creates a directory and any missing ancestors.
func (c *Client) MkdirAll(path string) error {
	comps := pathutil.Split(path)
	cur := ""
	for _, comp := range comps {
		cur += "/" + comp
		err := c.Mkdir(cur)
		if err != nil && !errors.Is(err, types.ErrExists) {
			return err
		}
	}
	return nil
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	_, err := c.m.Rmdir(c.m.Caller().Begin(), path)
	return err
}

// Rename moves directory src (and its subtree) to dst atomically,
// running the paper's single-RPC loop-detection protocol on IndexNode.
func (c *Client) Rename(src, dst string) error {
	_, err := c.m.DirRename(c.m.Caller().Begin(), src, dst)
	return err
}

// RenameWithStats is Rename returning per-op cost.
func (c *Client) RenameWithStats(src, dst string) (OpStats, error) {
	r, err := c.m.DirRename(c.m.Caller().Begin(), src, dst)
	return stats(r), err
}

// List returns a directory's children.
func (c *Client) List(path string) ([]Info, error) {
	_, entries, err := c.m.ReadDir(c.m.Caller().Begin(), path)
	if err != nil {
		return nil, err
	}
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		out = append(out, info(pathutil.Clean(path)+"/"+e.Name, e))
	}
	return out, nil
}

// Lookup resolves a directory path in a single IndexNode RPC and reports
// the op's cost.
func (c *Client) Lookup(path string) (OpStats, error) {
	r, err := c.m.Lookup(c.m.Caller().Begin(), path)
	return stats(r), err
}

// Core exposes the underlying deployment for advanced use (experiments,
// stats). Most applications never need it.
func (c *Cluster) Core() *core.Mantle { return c.m }

// MigrateDir moves directory path's TafDB row range to the given shard
// online (the admin surface behind mantled's /admin/migrate endpoint).
// Returns the number of rows moved. Reads keep being served throughout;
// writers to the directory stall for the copy window then land on the
// new home. On error nothing moved.
func (c *Cluster) MigrateDir(path string, shard int) (int, error) {
	r, err := c.m.Lookup(c.m.Caller().Begin(), path)
	if err != nil {
		return 0, err
	}
	return c.m.DB().MigrateDir(c.m.Caller().Begin(), r.Entry.ID, shard)
}

// PlanMigrations proposes up to max directory moves that would flatten
// the shard load distribution, hottest first, using the deployment's
// heat sketches and shard load accounting. Pure read — pass each plan
// to MigrateDir to execute it.
func (c *Cluster) PlanMigrations(max int) []tafdb.MigrationPlan {
	return c.m.DB().PlanMigrations(max)
}

// ListPage returns up to limit children of path whose names sort after
// the continuation token `after` (empty to start). The second return is
// the token for the next page, empty when the listing is complete —
// the COSS ListObjects pagination contract.
func (c *Client) ListPage(path, after string, limit int) ([]Info, string, error) {
	_, entries, next, err := c.m.ReadDirPage(c.m.Caller().Begin(), path, after, limit)
	if err != nil {
		return nil, "", err
	}
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		out = append(out, info(pathutil.Clean(path)+"/"+e.Name, e))
	}
	return out, next, nil
}
