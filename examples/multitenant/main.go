// Multitenant: the paper's deployment model (§4, §7) — several
// namespaces, each with its own IndexNode group, sharing a single TafDB.
// This example builds two tenant namespaces over one shared database and
// shows index-layer isolation plus shared-storage accounting.
package main

import (
	"fmt"
	"log"
	"time"

	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/pool"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

func main() {
	// One TafDB shared by every namespace (as in the paper's clusters,
	// where all 5-7 namespaces of a cluster share a TafDB deployment).
	db := tafdb.New(tafdb.Config{Shards: 8, Delta: tafdb.DeltaAuto})
	defer db.Stop()
	if err := db.CreateRoot(types.RootID); err != nil {
		log.Fatal(err)
	}

	// IndexNode replicas for all namespaces share a server pool (§7.2),
	// instead of dedicating hardware per namespace.
	srvPool := pool.New(3, 32)

	newNamespace := func(name string) *core.Mantle {
		nodes, err := srvPool.Place(name, 3)
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.NewWithDB(core.Config{
			Index: indexnode.Config{
				Voters: 3, K: 3, CacheEnabled: true, BatchEnabled: true,
				Name: name, Nodes: nodes,
			},
		}, db)
		if err != nil {
			log.Fatal(err)
		}
		srvPool.Register(name, m.Index())
		return m
	}

	analytics := newNamespace("tenant-analytics")
	defer analytics.Stop()
	training := newNamespace("tenant-training")
	defer training.Stop()

	// Each tenant works in its own namespace.
	if _, err := analytics.Mkdir(analytics.Caller().Begin(), "/warehouse"); err != nil {
		log.Fatal(err)
	}
	if _, err := analytics.Create(analytics.Caller().Begin(), "/warehouse/events.parquet", 8<<20); err != nil {
		log.Fatal(err)
	}
	if _, err := training.Mkdir(training.Caller().Begin(), "/datasets"); err != nil {
		log.Fatal(err)
	}
	if _, err := training.Create(training.Caller().Begin(), "/datasets/corpus.bin", 64<<20); err != nil {
		log.Fatal(err)
	}

	// Index-layer isolation: tenant B's IndexNode cannot resolve tenant
	// A's directories even though the rows share one TafDB.
	if _, err := training.Lookup(training.Caller().Begin(), "/warehouse"); err == nil {
		log.Fatal("isolation violated: training tenant resolved analytics path")
	}
	fmt.Println("index-layer isolation holds: tenants resolve only their own trees")

	// The shared TafDB holds both tenants' metadata.
	fmt.Printf("shared TafDB rows: %d (both tenants' metadata)\n", db.TotalRows())
	fmt.Printf("analytics sees its object: ")
	st, err := analytics.ObjStat(analytics.Caller().Begin(), "/warehouse/events.parquet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("size=%d\n", st.Entry.Attr.Size)

	// Co-location economics (§7.2): IndexNode holds ~80 bytes per
	// directory, so small tenants' leaders can share hardware.
	lead := analytics.Index().Leader()
	fmt.Printf("analytics IndexNode entries: %d (~%d bytes of access metadata)\n",
		lead.Table().Len(), lead.Table().Len()*80)

	// Leader placement across the shared pool, rebalanced on demand.
	fmt.Printf("leader distribution across pool servers: %v\n", srvPool.LeaderDistribution())
	if moved := srvPool.BalanceLeaders(); moved > 0 {
		time.Sleep(500 * time.Millisecond) // let the transfer elections settle
		fmt.Printf("rebalanced %d leader(s): %v\n", moved, srvPool.LeaderDistribution())
	} else {
		fmt.Println("leader distribution already balanced")
	}
}
