// Quickstart: spin up an in-process Mantle deployment, exercise the
// public API, and print the single-RPC lookup property the paper is
// built around.
package main

import (
	"fmt"
	"log"

	"mantle"
)

func main() {
	// A development deployment: 3-replica IndexNode, 4 TafDB shards, and
	// a 100µs simulated network so op costs are visible.
	cl, err := mantle.New(mantle.Config{
		Shards:   4,
		Replicas: 3,
		RTT:      100_000, // 100µs in nanoseconds
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	c := cl.Client()

	// Build a deep hierarchy — the paper's namespaces average depth ~11.
	deep := "/prod/ml/vision/2026/07/04/run-42/checkpoints/epoch-3/shard-0"
	if err := c.MkdirAll(deep); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created", deep)

	// Objects live at the leaves.
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("%s/weights-%d.bin", deep, i)
		if _, err := c.Create(path, int64(1<<20*(i+1))); err != nil {
			log.Fatal(err)
		}
	}

	// Stat an object: one IndexNode lookup RPC + one TafDB RPC,
	// regardless of how deep the path is.
	info, stats, err := c.StatWithStats(deep + "/weights-0.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat %s: size=%d\n", info.Path, info.Size)
	fmt.Printf("  cost: %d RPC round trips (lookup %v, execute %v)\n",
		stats.RTTs, stats.Lookup, stats.Execute)

	// Pure path resolution is a single RPC (Figure 7 of the paper).
	ls, err := c.Lookup(deep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup depth-%d path: %d RPC (the paper's headline property)\n", 10, ls.RTTs)

	// List and rename the checkpoint directory atomically.
	kids, err := c.List(deep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s holds %d objects\n", deep, len(kids))

	if err := c.Rename("/prod/ml/vision/2026/07/04/run-42/checkpoints/epoch-3",
		"/prod/ml/vision/2026/07/04/run-42/checkpoints/final"); err != nil {
		log.Fatal(err)
	}
	moved := "/prod/ml/vision/2026/07/04/run-42/checkpoints/final/shard-0/weights-0.bin"
	if _, err := c.Stat(moved); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rename moved the whole subtree:", moved, "resolves")

	// Loops are rejected by IndexNode's single-RPC loop detection.
	err = c.Rename("/prod/ml", "/prod/ml/vision/loop")
	fmt.Println("loop rename rejected:", err != nil)
}
