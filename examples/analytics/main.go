// Analytics: the paper's Spark-style interactive analytics workload
// (§6.2) on the public API — parallel subtasks write temporary
// directories and atomically rename them into a shared per-query output
// directory. This commit pattern concentrates directory-attribute
// updates on one directory; Mantle's delta records absorb the contention
// that collapses DBtable-style services (Figure 4b / Figure 14).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mantle"
)

const (
	tasks          = 64
	objectsPerTask = 4
	workers        = 16
)

func main() {
	cl, err := mantle.New(mantle.Config{
		Shards:   8,
		Replicas: 3,
		RTT:      100_000, // 100µs network
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	c := cl.Client()

	for _, p := range []string{"/job", "/job/tmp", "/job/output"} {
		if err := c.Mkdir(p); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("running %d commit tasks over %d workers...\n", tasks, workers)
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var renameTotal time.Duration
	var retries int
	queue := make(chan int, tasks)
	for t := 0; t < tasks; t++ {
		queue <- t
	}
	close(queue)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := cl.Client()
			for t := range queue {
				tmp := fmt.Sprintf("/job/tmp/task-%d", t)
				if err := wc.Mkdir(tmp); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < objectsPerTask; i++ {
					if _, err := wc.Create(fmt.Sprintf("%s/part-%d", tmp, i), 256<<10); err != nil {
						log.Fatal(err)
					}
				}
				// The commit: every task renames into the SAME parent.
				st, err := wc.RenameWithStats(tmp, fmt.Sprintf("/job/output/task-%d", t))
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				renameTotal += st.Lookup + st.Execute
				retries += st.Retries
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	out, err := c.StatDir("/job/output")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job complete in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  committed tasks        : %d (dirstat of shared output dir)\n", out.Entries)
	fmt.Printf("  mean rename latency    : %v\n", (renameTotal / tasks).Round(time.Microsecond))
	fmt.Printf("  rename retries total   : %d (delta records keep this near zero)\n", retries)
	kids, _ := c.List("/job/output")
	fmt.Printf("  output listing         : %d entries\n", len(kids))
}
