// Audio: the paper's AI audio pre-processing workload (§6.2) on the
// public API — tasks stat input objects on deep paths and write
// second-long segment objects into private output directories. The
// workload is conflict-free and lookup-heavy, so it showcases Mantle's
// single-RPC path resolution and the TopDirPathCache.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"mantle"
)

const (
	inputs           = 128
	segmentsPerInput = 6
	workers          = 16
	depthPrefix      = "/datalake/audio/raw/2026/07/crawl/fleet/batch"
)

func main() {
	cl, err := mantle.New(mantle.Config{
		Shards:       8,
		Replicas:     3,
		FollowerRead: true,
		RTT:          100_000, // 100µs network
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	c := cl.Client()

	// Populate deep input paths (depth ~10, like the paper's traces).
	if err := c.MkdirAll(depthPrefix); err != nil {
		log.Fatal(err)
	}
	inputPaths := make([]string, inputs)
	for i := range inputPaths {
		inputPaths[i] = fmt.Sprintf("%s/clip-%04d.wav", depthPrefix, i)
		if _, err := c.Create(inputPaths[i], 4<<20); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.MkdirAll("/datalake/audio/segments"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processing %d inputs (%d segments each) over %d workers...\n",
		inputs, segmentsPerInput, workers)
	var statRTTs atomic.Int64
	start := time.Now()
	queue := make(chan int, inputs)
	for i := 0; i < inputs; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := cl.Client()
			outDir := fmt.Sprintf("/datalake/audio/segments/worker-%d", w)
			if err := wc.Mkdir(outDir); err != nil {
				log.Fatal(err)
			}
			for i := range queue {
				_, st, err := wc.StatWithStats(inputPaths[i])
				if err != nil {
					log.Fatal(err)
				}
				statRTTs.Add(int64(st.RTTs))
				for sg := 0; sg < segmentsPerInput; sg++ {
					seg := fmt.Sprintf("%s/clip-%04d-seg-%d.pcm", outDir, i, sg)
					if _, err := wc.Create(seg, 256<<10); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("pipeline complete in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  metadata ops          : %d stats + %d creates\n",
		inputs, inputs*segmentsPerInput)
	fmt.Printf("  mean RPCs per objstat : %.1f (deep paths, single-RPC lookup + 1 read)\n",
		float64(statRTTs.Load())/float64(inputs))
	fmt.Printf("  throughput            : %.0f metadata ops/s\n",
		float64(inputs*(1+segmentsPerInput))/elapsed.Seconds())
}
