// Skewed-read benchmarks for elastic hotspot management (DESIGN.md §9):
// parallel proxy goroutines drive Zipf-distributed lookups at a 5-replica
// deployment (3 voters + 2 learners, follower read, simulated 200µs RTT),
// once with the hotspot tier on and once off. Two reported metrics carry
// the claim:
//
//	p99-ns       — p99 latency of lookups that hit the hottest directory.
//	               Off, every hot read pays a leader round trip for its
//	               ReadIndex point; on, a promoted path is served by a
//	               non-leader replica at the bounded-staleness read point.
//	leader-share — fraction of reads served by the leader. Off, round-
//	               robin pins it near 1/replicas regardless of skew; on,
//	               hot traffic leaves the leader almost entirely.
//
// The committed BENCH_PR8.json snapshot (make bench-pr8) records both at
// Zipf s=1.2; the skew CI gate re-runs the hotspot=on side and compares.
//
// MANTLE_HOTSPOT=on|off|both (default both) narrows the sweep, mirroring
// MANTLE_WRITE_BATCH in the write suite.
package mantle_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle"
	"mantle/internal/bench"
)

const (
	// skewDirs is the directory population the Zipf ranks draw from;
	// rank 0 is the hot directory. 8 ranks at s=1.2 put ~80% of the
	// mass on the top four — the few-hot-buckets shape of §3.1.
	skewDirs = 8
	skewSeed = 7
)

func skewDir(rank int) string { return fmt.Sprintf("/skew/a/b/d%d", rank) }

// skewBenchCluster builds the skew deployment and its directory
// population for the given hotspot mode.
func skewBenchCluster(b *testing.B, mode bench.Mode) *mantle.Cluster {
	b.Helper()
	cl, err := mantle.New(bench.SkewConfig(mode.Batch))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Stop)
	c := cl.Client()
	for i := 0; i < skewDirs; i++ {
		if err := c.MkdirAll(skewDir(i)); err != nil {
			b.Fatal(err)
		}
	}
	return cl
}

// skewWarmDirs is how many top ranks the warm phase drives hot; the
// promoted set then absorbs the bulk of the measured traffic.
const skewWarmDirs = 4

// warmSkew hammers the hottest directories outside the timed region so
// that, with the hotspot tier on, the promotion loop has observed the
// skew and promoted the top ranks before measurement starts. It fails
// the benchmark if promotion never happens — a silent non-promotion
// would make the on/off comparison meaningless.
func warmSkew(b *testing.B, cl *mantle.Cluster, hotspot bool) {
	b.Helper()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8*skewWarmDirs; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := cl.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Lookup(skewDir(rank)); err != nil {
					b.Error(err)
					return
				}
			}
		}(g % skewWarmDirs)
	}
	promoted := func() bool {
		hot := make(map[string]bool, skewWarmDirs)
		for _, p := range cl.Core().Index().HotSet() {
			hot[p] = true
		}
		for r := 0; r < skewWarmDirs; r++ {
			if !hot[skewDir(r)] {
				return false
			}
		}
		return true
	}
	if hotspot {
		deadline := time.Now().Add(10 * time.Second)
		for !promoted() && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	} else {
		// Matching warm time keeps cache state comparable across modes.
		time.Sleep(300 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if hotspot && !promoted() {
		b.Fatalf("top %d directories never all promoted; hot set = %v",
			skewWarmDirs, cl.Core().Index().HotSet())
	}
}

// BenchmarkSkewLookupParallel is the headline skewed-read workload:
// every goroutine draws directory ranks from a Zipf(s) distribution and
// resolves them, concentrating traffic on a handful of hot paths the way
// production COSS hot buckets do (§3.1).
func BenchmarkSkewLookupParallel(b *testing.B) {
	// math/rand's Zipf requires s > 1, so the sweep starts at 1.2 (the
	// gated point) rather than the near-uniform 0.99 end; hot-dir stats
	// at low skew are already covered by BenchmarkUniformStatParallel.
	for _, skew := range []float64{1.2, 1.4} {
		for _, mode := range bench.HotspotModes() {
			b.Run(fmt.Sprintf("skew=%.1f/hotspot=%s", skew, mode.Name), func(b *testing.B) {
				cl := skewBenchCluster(b, mode)
				warmSkew(b, cl, mode.Batch)
				idx := cl.Core().Index()
				l0, f0, n0 := idx.ReadMix()
				var seedSeq atomic.Int64
				var mu sync.Mutex
				var hotLats []time.Duration
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := cl.Client()
					z := rand.NewZipf(rand.New(rand.NewSource(skewSeed+seedSeq.Add(1))),
						skew, 1, skewDirs-1)
					var local []time.Duration
					for pb.Next() {
						rank := int(z.Uint64())
						start := time.Now()
						if _, err := c.Lookup(skewDir(rank)); err != nil {
							b.Fatal(err)
						}
						if rank == 0 {
							local = append(local, time.Since(start))
						}
					}
					mu.Lock()
					hotLats = append(hotLats, local...)
					mu.Unlock()
				})
				b.StopTimer()
				l1, f1, n1 := idx.ReadMix()
				leader := float64(l1 - l0)
				total := leader + float64((f1-f0)+(n1-n0))
				if total > 0 {
					b.ReportMetric(leader/total, "leader-share")
				}
				if len(hotLats) > 0 {
					sort.Slice(hotLats, func(i, j int) bool { return hotLats[i] < hotLats[j] })
					p99 := hotLats[len(hotLats)*99/100]
					b.ReportMetric(float64(p99), "p99-ns")
				}
			})
		}
	}
}
