package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/faults"
	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/trace"
	"mantle/internal/types"
)

func TestCallCountsRoundTrips(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	c := NewCaller(fabric)
	node := netsim.NewNode("n", 0)
	op := c.Begin()
	for i := 0; i < 5; i++ {
		if err := op.Call(node, 0, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if op.RTTs() != 5 {
		t.Fatalf("RTTs = %d", op.RTTs())
	}
	if fabric.RPCs() != 5 {
		t.Fatalf("fabric RPCs = %d", fabric.RPCs())
	}
	// A second op tracks independently.
	op2 := c.Begin()
	_ = op2.Call(node, 0, func() error { return nil })
	if op2.RTTs() != 1 || op.RTTs() != 5 {
		t.Fatalf("op RTTs = %d/%d", op.RTTs(), op2.RTTs())
	}
}

func TestCallPropagatesError(t *testing.T) {
	c := NewCaller(netsim.NewLocalFabric())
	node := netsim.NewNode("n", 0)
	sentinel := errors.New("boom")
	op := c.Begin()
	if err := op.Call(node, 0, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelOverlapsLatency(t *testing.T) {
	fabric := netsim.NewFabric(netsim.Config{RTT: 20 * time.Millisecond})
	c := NewCaller(fabric)
	node := netsim.NewNode("n", 0)
	op := c.Begin()
	calls := make([]func(*Op) error, 8)
	for i := range calls {
		calls[i] = func(o *Op) error {
			return o.Call(node, 0, func() error { return nil })
		}
	}
	start := time.Now()
	if err := op.Parallel(calls); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 8 sequential RPCs would cost >= 160ms; parallel should land well
	// under half that.
	if elapsed > 80*time.Millisecond {
		t.Fatalf("parallel round took %v", elapsed)
	}
	if op.RTTs() != 8 {
		t.Fatalf("RTTs = %d, want 8 (parallelism must not hide RPC count)", op.RTTs())
	}
}

func TestParallelReturnsFirstError(t *testing.T) {
	c := NewCaller(netsim.NewLocalFabric())
	node := netsim.NewNode("n", 0)
	sentinel := errors.New("level 3 missing")
	op := c.Begin()
	err := op.Parallel([]func(*Op) error{
		func(o *Op) error { return o.Call(node, 0, func() error { return nil }) },
		func(o *Op) error { return o.Call(node, 0, func() error { return sentinel }) },
		func(o *Op) error { return o.Call(node, 0, func() error { return nil }) },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

// flakyHook drops the first failN deliveries to dst, then delivers.
type flakyHook struct {
	dst   string
	failN int32
	seen  atomic.Int32
}

func (h *flakyHook) Edge(src, dst string) (time.Duration, error) {
	if dst == h.dst && h.seen.Add(1) <= h.failN {
		return 0, fmt.Errorf("flaky: %s->%s lost: %w", src, dst, types.ErrUnreachable)
	}
	return 0, nil
}

func (h *flakyHook) Down(string) error { return nil }

// leakCheck fails the test if the goroutine count has not returned to
// (near) its starting level by test end — the before/after bound the
// fault-injection suite uses to prove no RPC path strands a goroutine.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

func TestRetryRidesOutTransientDrops(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	var hook netsim.FaultHook = &flakyHook{dst: "n", failN: 2}
	fabric.SetFaults(hook)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	node := netsim.NewNode("n", 0)
	op := c.Begin()
	calls := 0
	if err := op.Call(node, 0, func() error { calls++; return nil }); err != nil {
		t.Fatalf("call failed through transient drops: %v", err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times", calls)
	}
	// Every fabric attempt counts as an RTT: two losses + one delivery.
	if op.RTTs() != 3 {
		t.Fatalf("RTTs = %d, want 3", op.RTTs())
	}
	retries, timeouts, drops := c.Stats()
	if retries != 2 || timeouts != 0 || drops != 2 {
		t.Fatalf("stats = %d/%d/%d", retries, timeouts, drops)
	}
}

func TestRetryBudgetExhaustsToUnreachable(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	var hook netsim.FaultHook = &flakyHook{dst: "n", failN: 1 << 30}
	fabric.SetFaults(hook)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond})
	node := netsim.NewNode("n", 0)
	err := c.Call(node, 0, func() error { t.Fatal("handler ran"); return nil })
	if !errors.Is(err, types.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if _, _, drops := stats3(c); drops != 4 {
		t.Fatalf("drops = %d, want 4", drops)
	}
}

func stats3(c *Caller) (int64, int64, int64) { return c.Stats() }

func TestApplicationErrorsAreNotRetried(t *testing.T) {
	c := NewCaller(netsim.NewLocalFabric())
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond})
	node := netsim.NewNode("n", 0)
	appErr := errors.New("no such entry")
	calls := 0
	err := c.Call(node, 0, func() error { calls++; return appErr })
	if !errors.Is(err, appErr) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if retries, _, _ := c.Stats(); retries != 0 {
		t.Fatalf("app error consumed %d retries", retries)
	}
}

func TestDeadlineExceededReturnsTimeout(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	var hook netsim.FaultHook = &flakyHook{dst: "n", failN: 1 << 30}
	fabric.SetFaults(hook)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1 << 20, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	node := netsim.NewNode("n", 0)
	start := time.Now()
	err := c.Do(node, 0, CallOpts{Deadline: 25 * time.Millisecond}, func() error { return nil })
	if !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline enforced after %v", elapsed)
	}
	if _, timeouts, _ := c.Stats(); timeouts != 1 {
		t.Fatalf("timeouts = %d", timeouts)
	}
}

func TestParallelUnderFaultsFirstErrorAndRTTs(t *testing.T) {
	leakCheck(t)
	fabric := netsim.NewLocalFabric()
	var hook netsim.FaultHook = &flakyHook{dst: "dead", failN: 1 << 30}
	fabric.SetFaults(hook)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond})
	ok := netsim.NewNode("ok", 0)
	dead := netsim.NewNode("dead", 0)

	op := c.Begin()
	appErr := errors.New("app failure")
	err := op.Parallel([]func(*Op) error{
		func(o *Op) error { return o.Call(ok, 0, func() error { return nil }) },
		func(o *Op) error { return o.Call(dead, 0, func() error { return nil }) }, // 2 lost attempts
		func(o *Op) error { return o.Call(ok, 0, func() error { return appErr }) },
		func(o *Op) error { return o.Call(ok, 0, func() error { return nil }) },
	})
	// First error by call order: the unreachable call at index 1, not the
	// app error at index 2.
	if !errors.Is(err, types.ErrUnreachable) || errors.Is(err, appErr) {
		t.Fatalf("first-error selection picked %v", err)
	}
	// RTT accounting when some calls fail: 3 delivered + 2 lost attempts.
	if op.RTTs() != 5 {
		t.Fatalf("RTTs = %d, want 5 (fabric seed %d)", op.RTTs(), fabric.Seed())
	}
}

func TestParallelWithTimeoutsLeaksNoGoroutines(t *testing.T) {
	leakCheck(t)
	fabric := netsim.NewLocalFabric()
	var hook netsim.FaultHook = &flakyHook{dst: "dead", failN: 1 << 30}
	fabric.SetFaults(hook)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1 << 20, BaseBackoff: 500 * time.Microsecond, MaxBackoff: 500 * time.Microsecond})
	c.SetDeadline(10 * time.Millisecond)
	ok := netsim.NewNode("ok", 0)
	dead := netsim.NewNode("dead", 0)

	for round := 0; round < 4; round++ {
		op := c.Begin()
		calls := make([]func(*Op) error, 16)
		for i := range calls {
			node := ok
			if i%2 == 1 {
				node = dead
			}
			calls[i] = func(o *Op) error {
				return o.Call(node, 0, func() error { return nil })
			}
		}
		err := op.Parallel(calls)
		if !errors.Is(err, types.ErrTimeout) {
			t.Fatalf("round %d err = %v (fabric seed %d)", round, err, fabric.Seed())
		}
		// Timed-out calls still charged their attempted round trips; the
		// 8 successes charge exactly one each.
		if op.RTTs() < 16 {
			t.Fatalf("round %d RTTs = %d, want >= 16", round, op.RTTs())
		}
	}
}

func TestParallelIntegratesWithInjector(t *testing.T) {
	leakCheck(t)
	fabric := netsim.NewLocalFabric()
	inj := faults.New(77)
	node := netsim.NewNode("srv", 0)
	inj.Attach(fabric, node)
	inj.DropEdge("", "srv", 0.5)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 64, BaseBackoff: time.Microsecond})
	op := c.Begin()
	calls := make([]func(*Op) error, 32)
	var served atomic.Int32
	for i := range calls {
		calls[i] = func(o *Op) error {
			return o.Call(node, 0, func() error { served.Add(1); return nil })
		}
	}
	if err := op.Parallel(calls); err != nil {
		t.Fatalf("err = %v (injector seed %d)", err, inj.Seed())
	}
	if served.Load() != 32 {
		t.Fatalf("served = %d", served.Load())
	}
	// Under 50%% loss, 32 deliveries must have cost strictly more
	// attempts than calls.
	if op.RTTs() <= 32 {
		t.Fatalf("RTTs = %d under 50%% loss (injector seed %d)", op.RTTs(), inj.Seed())
	}
	s := inj.Stats()
	if s.Dropped == 0 || s.Delivered < 32 {
		t.Fatalf("injector stats = %+v (seed %d)", s, inj.Seed())
	}
}

func TestTracedOpRecordsSpansAndAccounting(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	c := NewCaller(fabric)
	node := netsim.NewNode("srv", 0)
	tr, ctx := trace.New("op")
	op := c.BeginTraced(ctx)
	if err := op.Do(node, 0, CallOpts{Bytes: 100}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := op.Call(node, 0, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if tr.Trips() != 2 {
		t.Fatalf("trace trips = %d, want 2", tr.Trips())
	}
	wantBytes := int64(100 + 2*MsgOverheadBytes)
	if tr.Bytes() != wantBytes {
		t.Fatalf("trace bytes = %d, want %d", tr.Bytes(), wantBytes)
	}
	if op.RTTs() != 2 || op.Bytes() != wantBytes {
		t.Fatalf("op accounting = %d rtts / %d bytes", op.RTTs(), op.Bytes())
	}
	spans := tr.Spans()
	if len(spans) != 3 { // root + 2 rpc spans
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	for _, s := range spans[1:] {
		if s.Name != "rpc" {
			t.Fatalf("span name = %q", s.Name)
		}
		if len(s.Attrs) == 0 || s.Attrs[0].Key != "dst" || s.Attrs[0].Value != "srv" {
			t.Fatalf("rpc span attrs = %v", s.Attrs)
		}
	}
}

func TestWithContextSharesCounters(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	c := NewCaller(fabric)
	node := netsim.NewNode("srv", 0)
	tr, ctx := trace.New("op")
	op := c.BeginTraced(ctx)

	sub, sp := trace.Start(op.Context(), "txn-commit")
	derived := op.WithContext(sub)
	if err := derived.Call(node, 0, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	sp.End()
	tr.Finish()

	// The derived op's RPC counts on the original op's accounting...
	if op.RTTs() != 1 || derived.RTTs() != 1 {
		t.Fatalf("rtts = %d/%d, want 1/1", op.RTTs(), derived.RTTs())
	}
	// ...and its rpc span nests under the txn-commit child span.
	spans := tr.Spans()
	byName := map[string]trace.SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["rpc"].ParentID != byName["txn-commit"].ID {
		t.Fatalf("rpc parent = %d, want txn-commit (%d)",
			byName["rpc"].ParentID, byName["txn-commit"].ID)
	}
}

func TestRegisterMetricsExposesCountersAndLatency(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	inj := faults.New(7)
	node := netsim.NewNode("srv", 0)
	inj.Attach(fabric, node)
	inj.DropEdge("", "srv", 0.5)
	c := NewCaller(fabric)
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 64, BaseBackoff: time.Microsecond})
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	op := c.Begin()
	for i := 0; i < 16; i++ {
		if err := op.Call(node, 0, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	retries, _, drops := c.Stats()
	if retries == 0 || drops == 0 {
		t.Fatalf("expected retries under 50%% loss, got retries=%d drops=%d", retries, drops)
	}
	for _, want := range []string{
		fmt.Sprintf("rpc_retries %d", retries),
		fmt.Sprintf("rpc_drops %d", drops),
		"rpc_timeouts 0",
		"latency_rpc_count 16",
		"latency_rpc_p99_us ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
}
