package rpc

import (
	"errors"
	"testing"
	"time"

	"mantle/internal/netsim"
)

func TestCallCountsRoundTrips(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	c := NewCaller(fabric)
	node := netsim.NewNode("n", 0)
	op := c.Begin()
	for i := 0; i < 5; i++ {
		if err := op.Call(node, 0, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if op.RTTs() != 5 {
		t.Fatalf("RTTs = %d", op.RTTs())
	}
	if fabric.RPCs() != 5 {
		t.Fatalf("fabric RPCs = %d", fabric.RPCs())
	}
	// A second op tracks independently.
	op2 := c.Begin()
	_ = op2.Call(node, 0, func() error { return nil })
	if op2.RTTs() != 1 || op.RTTs() != 5 {
		t.Fatalf("op RTTs = %d/%d", op.RTTs(), op2.RTTs())
	}
}

func TestCallPropagatesError(t *testing.T) {
	c := NewCaller(netsim.NewLocalFabric())
	node := netsim.NewNode("n", 0)
	sentinel := errors.New("boom")
	op := c.Begin()
	if err := op.Call(node, 0, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelOverlapsLatency(t *testing.T) {
	fabric := netsim.NewFabric(netsim.Config{RTT: 20 * time.Millisecond})
	c := NewCaller(fabric)
	node := netsim.NewNode("n", 0)
	op := c.Begin()
	calls := make([]func(*Op) error, 8)
	for i := range calls {
		calls[i] = func(o *Op) error {
			return o.Call(node, 0, func() error { return nil })
		}
	}
	start := time.Now()
	if err := op.Parallel(calls); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 8 sequential RPCs would cost >= 160ms; parallel should land well
	// under half that.
	if elapsed > 80*time.Millisecond {
		t.Fatalf("parallel round took %v", elapsed)
	}
	if op.RTTs() != 8 {
		t.Fatalf("RTTs = %d, want 8 (parallelism must not hide RPC count)", op.RTTs())
	}
}

func TestParallelReturnsFirstError(t *testing.T) {
	c := NewCaller(netsim.NewLocalFabric())
	node := netsim.NewNode("n", 0)
	sentinel := errors.New("level 3 missing")
	op := c.Begin()
	err := op.Parallel([]func(*Op) error{
		func(o *Op) error { return o.Call(node, 0, func() error { return nil }) },
		func(o *Op) error { return o.Call(node, 0, func() error { return sentinel }) },
		func(o *Op) error { return o.Call(node, 0, func() error { return nil }) },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}
