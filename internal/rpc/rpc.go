// Package rpc is the thin remote-procedure-call layer the proxies use to
// talk to metadata servers. Services are in-process Go objects; what an
// RPC adds over a plain call is exactly what the paper's evaluation
// measures: one network round trip on the fabric plus CPU service time on
// the target node. A per-operation Tracker counts round trips so the
// harness can report #RTTs per lookup (Table 1) and per op.
//
// The layer is failure-aware: calls may carry a per-call deadline and a
// RetryPolicy (capped exponential backoff with seeded jitter). Fabric
// errors — messages lost to injected drops, partitions, or blackholes,
// all wrapping types.ErrUnreachable — are retried within the budget;
// application errors returned by the handler are never retried. With no
// fault hook installed on the fabric, no deadline, and the default
// policy, a call costs exactly what it did before this layer existed.
package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/types"
)

// RetryPolicy shapes retries of fabric-level failures within one call.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per call, including the
	// first. Zero or negative means one attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff applied as uniform random
	// jitter (±backoff×Jitter/2), drawn from the caller's seeded source.
	Jitter float64
}

// DefaultRetryPolicy is the caller default: three attempts with a fast,
// capped backoff — enough to ride out transient injected drops without
// masking real partitions.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Jitter:      0.2,
	}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the sleep before retry number n (1-based).
func (p RetryPolicy) backoff(n int, jitterFrac float64) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.Jitter > 0 {
		d += time.Duration(float64(d) * (jitterFrac - 0.5) * p.Jitter)
	}
	return d
}

// CallOpts carries the failure-handling knobs of one call. The zero
// value uses the caller's defaults with an unnamed source endpoint.
type CallOpts struct {
	// Src names the calling endpoint for edge-scoped fault rules
	// (proxies use "proxy"; "" matches only fabric-wide rules).
	Src string
	// Deadline bounds the call's total wall time across retries. Zero
	// uses the caller's default; the caller default zero means no
	// deadline.
	Deadline time.Duration
	// Retry overrides the caller's retry policy for this call.
	Retry *RetryPolicy
}

// Caller issues RPCs over a fabric. Safe for concurrent use.
type Caller struct {
	fabric *netsim.Fabric
	policy RetryPolicy
	// deadline is the default per-call deadline (0 = none).
	deadline atomic.Int64

	jmu sync.Mutex
	rng *rand.Rand

	retries  atomic.Int64
	timeouts atomic.Int64
	drops    atomic.Int64
}

// NewCaller builds a caller over fabric with the default retry policy.
// Backoff jitter derives from the fabric's seed, so retry timing is as
// reproducible as the fabric itself.
func NewCaller(fabric *netsim.Fabric) *Caller {
	return &Caller{
		fabric: fabric,
		policy: DefaultRetryPolicy(),
		rng:    rand.New(rand.NewSource(fabric.Seed())),
	}
}

// Fabric returns the underlying fabric.
func (c *Caller) Fabric() *netsim.Fabric { return c.fabric }

// SetRetryPolicy replaces the caller's default retry policy. Not safe to
// race with in-flight calls; configure at setup.
func (c *Caller) SetRetryPolicy(p RetryPolicy) { c.policy = p }

// SetDeadline sets the default per-call deadline (0 disables).
func (c *Caller) SetDeadline(d time.Duration) { c.deadline.Store(int64(d)) }

// Stats returns cumulative fault-handling counters: fabric-level retries
// performed, calls that exceeded their deadline, and message losses
// observed (each lost attempt counts once).
func (c *Caller) Stats() (retries, timeouts, drops int64) {
	return c.retries.Load(), c.timeouts.Load(), c.drops.Load()
}

func (c *Caller) jitterFrac() float64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.rng.Float64()
}

// Call performs one RPC with the caller's defaults and an unnamed source
// endpoint: a network round trip, then fn on node charged with cost of
// CPU service time. The error from fn is returned.
func (c *Caller) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	return c.do(nil, node, cost, CallOpts{}, fn)
}

// Do performs one RPC with explicit options.
func (c *Caller) Do(node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	return c.do(nil, node, cost, opts, fn)
}

// do is the shared call path. op, when non-nil, receives one RTT per
// fabric attempt (a retried call really does cross the network again).
func (c *Caller) do(op *Op, node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	policy := c.policy
	if opts.Retry != nil {
		policy = *opts.Retry
	}
	deadline := opts.Deadline
	if deadline == 0 {
		deadline = time.Duration(c.deadline.Load())
	}
	var start time.Time
	if deadline > 0 {
		start = time.Now()
	}
	budget := policy.attempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if d := policy.backoff(attempt-1, c.jitterFrac()); d > 0 {
				time.Sleep(d)
			}
		}
		if deadline > 0 && time.Since(start) >= deadline {
			c.timeouts.Add(1)
			return fmt.Errorf("rpc to %s: %w after %d attempt(s) (last: %v)",
				node.Name(), types.ErrTimeout, attempt-1, lastErr)
		}
		if op != nil {
			op.rtts.Add(1)
		}
		err := c.fabric.Deliver(opts.Src, node.Name())
		if err == nil {
			err = node.Exec(cost, fn)
			if err == nil || !errors.Is(err, types.ErrUnreachable) {
				// Success, or an application error: never retried.
				return err
			}
		}
		c.drops.Add(1)
		lastErr = err
		if attempt >= budget {
			return fmt.Errorf("rpc to %s: attempts exhausted (%d): %w",
				node.Name(), budget, lastErr)
		}
	}
}

// Op tracks the RPCs issued on behalf of one metadata operation. It is
// safe for concurrent use (InfiniFS's speculative resolution issues
// parallel RPCs within a single op).
type Op struct {
	caller *Caller
	rtts   atomic.Int32
}

// Begin starts tracking a new operation.
func (c *Caller) Begin() *Op { return &Op{caller: c} }

// Call performs one tracked RPC with the caller's defaults.
func (o *Op) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	return o.caller.do(o, node, cost, CallOpts{}, fn)
}

// Do performs one tracked RPC with explicit options. Every fabric
// attempt — including retried and lost ones — counts as one RTT: the
// wire was crossed (or waited out) each time.
func (o *Op) Do(node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	return o.caller.do(o, node, cost, opts, fn)
}

// Parallel issues all calls concurrently, waits for completion, and
// returns the first non-nil error by call order (all calls run
// regardless, so no goroutine outlives the round even when some calls
// fail or time out). Each call counts its own RTTs, but wall time is a
// single round of overlapped RPCs — the behaviour InfiniFS's parallel
// resolution depends on.
func (o *Op) Parallel(calls []func(op *Op) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(calls))
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call func(*Op) error) {
			defer wg.Done()
			errs[i] = call(o)
		}(i, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RTTs returns the number of round trips the operation has issued.
func (o *Op) RTTs() int { return int(o.rtts.Load()) }
