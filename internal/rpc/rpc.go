// Package rpc is the thin remote-procedure-call layer the proxies use to
// talk to metadata servers. Services are in-process Go objects; what an
// RPC adds over a plain call is exactly what the paper's evaluation
// measures: one network round trip on the fabric plus CPU service time on
// the target node. A per-operation Tracker counts round trips so the
// harness can report #RTTs per lookup (Table 1) and per op.
//
// The layer is failure-aware: calls may carry a per-call deadline and a
// RetryPolicy (capped exponential backoff with seeded jitter). Fabric
// errors — messages lost to injected drops, partitions, or blackholes,
// all wrapping types.ErrUnreachable — are retried within the budget;
// application errors returned by the handler are never retried. With no
// fault hook installed on the fabric, no deadline, and the default
// policy, a call costs exactly what it did before this layer existed.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/trace"
	"mantle/internal/types"
)

// MsgOverheadBytes is the fixed per-message framing cost charged to a
// trace's byte accounting on every fabric attempt, on top of the
// payload size declared in CallOpts.Bytes.
const MsgOverheadBytes = 64

// RetryPolicy shapes retries of fabric-level failures within one call.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per call, including the
	// first. Zero or negative means one attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff applied as uniform random
	// jitter (±backoff×Jitter/2), drawn from the caller's seeded source.
	Jitter float64
}

// DefaultRetryPolicy is the caller default: three attempts with a fast,
// capped backoff — enough to ride out transient injected drops without
// masking real partitions.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Jitter:      0.2,
	}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the sleep before retry number n (1-based).
func (p RetryPolicy) backoff(n int, jitterFrac float64) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.Jitter > 0 {
		d += time.Duration(float64(d) * (jitterFrac - 0.5) * p.Jitter)
	}
	return d
}

// CallOpts carries the failure-handling knobs of one call. The zero
// value uses the caller's defaults with an unnamed source endpoint.
type CallOpts struct {
	// Src names the calling endpoint for edge-scoped fault rules
	// (proxies use "proxy"; "" matches only fabric-wide rules).
	Src string
	// Deadline bounds the call's total wall time across retries. Zero
	// uses the caller's default; the caller default zero means no
	// deadline.
	Deadline time.Duration
	// Retry overrides the caller's retry policy for this call.
	Retry *RetryPolicy
	// Bytes is the approximate payload size of the call, charged (plus
	// MsgOverheadBytes) to the trace's byte accounting per attempt.
	// Zero charges only the framing overhead.
	Bytes int64
}

// Caller issues RPCs over a fabric. Safe for concurrent use.
type Caller struct {
	fabric *netsim.Fabric
	policy RetryPolicy
	// deadline is the default per-call deadline (0 = none).
	deadline atomic.Int64

	jmu sync.Mutex
	rng *rand.Rand

	retries  atomic.Int64
	timeouts atomic.Int64
	drops    atomic.Int64

	// lat, when attached via RegisterMetrics, observes whole-call
	// latency (all attempts and backoffs included).
	lat atomic.Pointer[metrics.Latency]
}

// NewCaller builds a caller over fabric with the default retry policy.
// Backoff jitter derives from the fabric's seed, so retry timing is as
// reproducible as the fabric itself.
func NewCaller(fabric *netsim.Fabric) *Caller {
	return &Caller{
		fabric: fabric,
		policy: DefaultRetryPolicy(),
		rng:    rand.New(rand.NewSource(fabric.Seed())),
	}
}

// Fabric returns the underlying fabric.
func (c *Caller) Fabric() *netsim.Fabric { return c.fabric }

// SetRetryPolicy replaces the caller's default retry policy. Not safe to
// race with in-flight calls; configure at setup.
func (c *Caller) SetRetryPolicy(p RetryPolicy) { c.policy = p }

// SetDeadline sets the default per-call deadline (0 disables).
func (c *Caller) SetDeadline(d time.Duration) { c.deadline.Store(int64(d)) }

// Stats returns cumulative fault-handling counters: fabric-level retries
// performed, calls that exceeded their deadline, and message losses
// observed (each lost attempt counts once).
func (c *Caller) Stats() (retries, timeouts, drops int64) {
	return c.retries.Load(), c.timeouts.Load(), c.drops.Load()
}

// RegisterMetrics exposes the caller's fault-handling counters as
// gauges (rpc_retries, rpc_timeouts, rpc_drops) and attaches a
// whole-call latency histogram as latency_rpc, so chaos-lane runs
// report retry storms and call tails in the standard metrics dump.
func (c *Caller) RegisterMetrics(reg *metrics.Registry) {
	reg.Gauge("rpc_retries", func() int64 { return c.retries.Load() })
	reg.Gauge("rpc_timeouts", func() int64 { return c.timeouts.Load() })
	reg.Gauge("rpc_drops", func() int64 { return c.drops.Load() })
	l := reg.Latency("latency_rpc")
	c.lat.Store(l)
}

func (c *Caller) jitterFrac() float64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.rng.Float64()
}

// Call performs one RPC with the caller's defaults and an unnamed source
// endpoint: a network round trip, then fn on node charged with cost of
// CPU service time. The error from fn is returned.
func (c *Caller) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	return c.do(nil, node, cost, CallOpts{}, fn)
}

// Do performs one RPC with explicit options.
func (c *Caller) Do(node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	return c.do(nil, node, cost, opts, fn)
}

// do is the shared call path. op, when non-nil, receives one RTT per
// fabric attempt (a retried call really does cross the network again)
// and supplies the trace context: each attempt records an "rpc" span
// and charges one trip plus message bytes to the trace.
func (c *Caller) do(op *Op, node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	if l := c.lat.Load(); l != nil {
		defer func(st time.Time) { l.Observe(time.Since(st)) }(time.Now())
	}
	ctx := context.Background()
	if op != nil && op.ctx != nil {
		ctx = op.ctx
	}
	policy := c.policy
	if opts.Retry != nil {
		policy = *opts.Retry
	}
	deadline := opts.Deadline
	if deadline == 0 {
		deadline = time.Duration(c.deadline.Load())
	}
	var start time.Time
	if deadline > 0 {
		start = time.Now()
	}
	budget := policy.attempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if d := policy.backoff(attempt-1, c.jitterFrac()); d > 0 {
				time.Sleep(d)
			}
		}
		if deadline > 0 && time.Since(start) >= deadline {
			c.timeouts.Add(1)
			return fmt.Errorf("rpc to %s: %w after %d attempt(s) (last: %v)",
				node.Name(), types.ErrTimeout, attempt-1, lastErr)
		}
		if op != nil {
			op.state.rtts.Add(1)
			op.state.bytes.Add(opts.Bytes + MsgOverheadBytes)
		}
		_, sp := trace.Start(ctx, "rpc")
		sp.SetAttr("dst", node.Name())
		if attempt > 1 {
			sp.Annotate("attempt", "%d", attempt)
		}
		trace.AddTrips(ctx, 1)
		trace.AddBytes(ctx, opts.Bytes+MsgOverheadBytes)
		err := c.fabric.Deliver(opts.Src, node.Name())
		if err == nil {
			err = node.Exec(cost, fn)
			if err == nil || !errors.Is(err, types.ErrUnreachable) {
				// Success, or an application error: never retried.
				sp.End()
				return err
			}
		}
		sp.Annotate("err", "%v", err)
		sp.End()
		c.drops.Add(1)
		lastErr = err
		if attempt >= budget {
			return fmt.Errorf("rpc to %s: attempts exhausted (%d): %w",
				node.Name(), budget, lastErr)
		}
	}
}

// opState is the shared accounting of one metadata operation, common
// to every context-derived view of the op.
type opState struct {
	rtts  atomic.Int32
	bytes atomic.Int64
}

// Op tracks the RPCs issued on behalf of one metadata operation and
// carries the operation's trace context. It is safe for concurrent use
// (InfiniFS's speculative resolution issues parallel RPCs within a
// single op). WithContext derives an Op bound to a child span while
// sharing the same counters, so intermediate layers can nest spans
// without forking the accounting.
type Op struct {
	caller *Caller
	state  *opState
	ctx    context.Context
}

// Begin starts tracking a new operation with no trace attached.
func (c *Caller) Begin() *Op {
	return &Op{caller: c, state: &opState{}, ctx: context.Background()}
}

// BeginTraced starts tracking a new operation whose RPCs record spans
// and trip/byte accounting against the trace carried by ctx (if any).
func (c *Caller) BeginTraced(ctx context.Context) *Op {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Op{caller: c, state: &opState{}, ctx: ctx}
}

// Context returns the trace context the op's RPCs record against.
func (o *Op) Context() context.Context { return o.ctx }

// WithContext returns a derived Op whose RPCs record against ctx —
// typically a child span started from o.Context() — while sharing the
// original op's RTT and byte counters.
func (o *Op) WithContext(ctx context.Context) *Op {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Op{caller: o.caller, state: o.state, ctx: ctx}
}

// Call performs one tracked RPC with the caller's defaults.
func (o *Op) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	return o.caller.do(o, node, cost, CallOpts{}, fn)
}

// Do performs one tracked RPC with explicit options. Every fabric
// attempt — including retried and lost ones — counts as one RTT: the
// wire was crossed (or waited out) each time.
func (o *Op) Do(node *netsim.Node, cost time.Duration, opts CallOpts, fn func() error) error {
	return o.caller.do(o, node, cost, opts, fn)
}

// Parallel issues all calls concurrently, waits for completion, and
// returns the first non-nil error by call order (all calls run
// regardless, so no goroutine outlives the round even when some calls
// fail or time out). Each call counts its own RTTs, but wall time is a
// single round of overlapped RPCs — the behaviour InfiniFS's parallel
// resolution depends on.
func (o *Op) Parallel(calls []func(op *Op) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(calls))
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call func(*Op) error) {
			defer wg.Done()
			errs[i] = call(o)
		}(i, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RTTs returns the number of round trips the operation has issued.
func (o *Op) RTTs() int { return int(o.state.rtts.Load()) }

// Bytes returns the message bytes the operation has put on the wire
// (payload plus per-attempt framing overhead).
func (o *Op) Bytes() int64 { return o.state.bytes.Load() }
