// Package rpc is the thin remote-procedure-call layer the proxies use to
// talk to metadata servers. Services are in-process Go objects; what an
// RPC adds over a plain call is exactly what the paper's evaluation
// measures: one network round trip on the fabric plus CPU service time on
// the target node. A per-operation Tracker counts round trips so the
// harness can report #RTTs per lookup (Table 1) and per op.
package rpc

import (
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
)

// Caller issues RPCs over a fabric. Safe for concurrent use.
type Caller struct {
	fabric *netsim.Fabric
}

// NewCaller builds a caller over fabric.
func NewCaller(fabric *netsim.Fabric) *Caller {
	return &Caller{fabric: fabric}
}

// Fabric returns the underlying fabric.
func (c *Caller) Fabric() *netsim.Fabric { return c.fabric }

// Call performs one RPC: a network round trip, then fn on node charged
// with cost of CPU service time. The error from fn is returned.
func (c *Caller) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	c.fabric.RoundTrip()
	return node.Exec(cost, fn)
}

// Op tracks the RPCs issued on behalf of one metadata operation. It is
// safe for concurrent use (InfiniFS's speculative resolution issues
// parallel RPCs within a single op).
type Op struct {
	caller *Caller
	rtts   atomic.Int32
}

// Begin starts tracking a new operation.
func (c *Caller) Begin() *Op { return &Op{caller: c} }

// Call performs one tracked RPC.
func (o *Op) Call(node *netsim.Node, cost time.Duration, fn func() error) error {
	o.rtts.Add(1)
	return o.caller.Call(node, cost, fn)
}

// Parallel issues all calls concurrently, waits for completion, and
// returns the first non-nil error (all calls run regardless). Each call
// counts as one RTT, but wall time is a single round of overlapped RPCs —
// the behaviour InfiniFS's parallel resolution depends on.
func (o *Op) Parallel(calls []func(op *Op) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(calls))
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call func(*Op) error) {
			defer wg.Done()
			errs[i] = call(o)
		}(i, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RTTs returns the number of round trips the operation has issued.
func (o *Op) RTTs() int { return int(o.rtts.Load()) }
