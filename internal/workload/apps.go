package workload

import (
	"fmt"
	"sync"
	"time"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/dataservice"
)

// AppReport is the outcome of one application run: job completion time
// plus per-operation latency histograms (the Figure 11 CDFs).
type AppReport struct {
	Completion time.Duration
	Ops        map[string]*bench.Histogram
	Errors     int64
}

func newReport() *AppReport {
	return &AppReport{Ops: map[string]*bench.Histogram{}}
}

func (r *AppReport) record(op string, d time.Duration) {
	h, ok := r.Ops[op]
	if !ok {
		h = &bench.Histogram{}
		r.Ops[op] = h
	}
	h.Record(d)
}

// appRecorder collects latencies concurrently.
type appRecorder struct {
	mu  sync.Mutex
	rep *AppReport
}

func (a *appRecorder) time(op string, fn func() error) error {
	t0 := time.Now()
	err := fn()
	d := time.Since(t0)
	a.mu.Lock()
	if err != nil {
		a.rep.Errors++
	} else {
		a.rep.record(op, d)
	}
	a.mu.Unlock()
	return err
}

// AnalyticsConfig parameterises the Spark-style interactive analytics
// workload (§6.2): queries whose subtasks write temporary directories
// and atomically rename them into a shared per-query output directory —
// the commit pattern that concentrates directory-attribute updates.
type AnalyticsConfig struct {
	// Queries and TasksPerQuery shape the job (paper: hundreds of
	// subtasks per query).
	Queries       int
	TasksPerQuery int
	// ObjectsPerTask output objects are written per task.
	ObjectsPerTask int
	// ObjectSize in bytes (the job totals 10 GB in the paper; scaled).
	ObjectSize int64
	// Workers is the concurrent task executor count.
	Workers int
	// Data, when non-nil, enables data access (Figure 10b).
	Data *dataservice.Service
}

func (c AnalyticsConfig) withDefaults() AnalyticsConfig {
	if c.Queries <= 0 {
		c.Queries = 2
	}
	if c.TasksPerQuery <= 0 {
		c.TasksPerQuery = 64
	}
	if c.ObjectsPerTask <= 0 {
		c.ObjectsPerTask = 4
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 256 << 10
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	return c
}

// RunAnalytics executes the Analytics workload against s and reports
// completion time and op latency distributions.
func RunAnalytics(s api.Service, cfg AnalyticsConfig) (*AppReport, error) {
	cfg = cfg.withDefaults()
	rec := &appRecorder{rep: newReport()}

	// Setup (untimed): the job's directory skeleton.
	setup := []string{"/analytics", "/analytics/tmp", "/analytics/out"}
	for q := 0; q < cfg.Queries; q++ {
		setup = append(setup, fmt.Sprintf("/analytics/out/q%d", q))
	}
	for _, p := range setup {
		if _, err := s.Mkdir(s.Caller().Begin(), p); err != nil {
			return nil, fmt.Errorf("analytics setup %s: %w", p, err)
		}
	}

	type task struct{ q, t int }
	tasks := make(chan task, cfg.Queries*cfg.TasksPerQuery)
	for q := 0; q < cfg.Queries; q++ {
		for t := 0; t < cfg.TasksPerQuery; t++ {
			tasks <- task{q, t}
		}
	}
	close(tasks)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				tmp := fmt.Sprintf("/analytics/tmp/q%d-t%d", tk.q, tk.t)
				if err := rec.time("mkdir", func() error {
					_, err := s.Mkdir(s.Caller().Begin(), tmp)
					return err
				}); err != nil {
					continue
				}
				for i := 0; i < cfg.ObjectsPerTask; i++ {
					obj := fmt.Sprintf("%s/part-%d", tmp, i)
					_ = rec.time("create", func() error {
						_, err := s.Create(s.Caller().Begin(), obj, cfg.ObjectSize)
						return err
					})
					if cfg.Data != nil {
						cfg.Data.Put(cfg.ObjectSize)
					}
				}
				// Commit: atomic rename into the shared output dir.
				dst := fmt.Sprintf("/analytics/out/q%d/task-%d", tk.q, tk.t)
				_ = rec.time("dirrename", func() error {
					_, err := s.DirRename(s.Caller().Begin(), tmp, dst)
					return err
				})
			}
		}()
	}
	wg.Wait()
	rec.rep.Completion = time.Since(start)
	return rec.rep, nil
}

// AudioConfig parameterises the AI audio pre-processing workload (§6.2):
// tasks scan long audio inputs stored as objects on deep paths and write
// second-long segment objects — lookup- and create-heavy, conflict-free.
type AudioConfig struct {
	// Inputs is the number of input audio objects.
	Inputs int
	// SegmentsPerInput output segments are produced per input.
	SegmentsPerInput int
	// InputSize / SegmentSize in bytes (the job totals 200 GB in the
	// paper; scaled).
	InputSize   int64
	SegmentSize int64
	// Workers is the concurrent task executor count.
	Workers int
	// Data, when non-nil, enables data access.
	Data *dataservice.Service
	// Namespace supplies the populated input objects (one WorkDir per
	// worker is used for outputs).
	Namespace *Namespace
}

func (c AudioConfig) withDefaults() AudioConfig {
	if c.Inputs <= 0 {
		c.Inputs = 256
	}
	if c.SegmentsPerInput <= 0 {
		c.SegmentsPerInput = 8
	}
	if c.InputSize <= 0 {
		c.InputSize = 4 << 20
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 256 << 10
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	return c
}

// RunAudio executes the Audio workload: each task objstats its input on
// a deep path (plus a data GET when enabled), then creates segment
// objects in a private output directory.
func RunAudio(s api.Service, cfg AudioConfig) (*AppReport, error) {
	cfg = cfg.withDefaults()
	ns := cfg.Namespace
	if ns == nil {
		return nil, fmt.Errorf("audio: namespace with populated inputs required")
	}
	rec := &appRecorder{rep: newReport()}

	// Setup (untimed): per-worker output dirs under the working dirs.
	outDirs := make([]string, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		outDirs[w] = fmt.Sprintf("%s/audio-out-%d", ns.work(w), w)
		if _, err := s.Mkdir(s.Caller().Begin(), outDirs[w]); err != nil {
			return nil, fmt.Errorf("audio setup: %w", err)
		}
	}

	inputs := make(chan int, cfg.Inputs)
	for i := 0; i < cfg.Inputs; i++ {
		inputs <- i
	}
	close(inputs)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range inputs {
				paths := ns.ObjectPaths[i%len(ns.ObjectPaths)]
				in := paths[i%len(paths)]
				var size int64
				if err := rec.time("objstat", func() error {
					res, err := s.ObjStat(s.Caller().Begin(), in)
					size = res.Entry.Attr.Size
					return err
				}); err != nil {
					continue
				}
				if cfg.Data != nil {
					if size <= 0 {
						size = cfg.InputSize
					}
					cfg.Data.Get(size)
				}
				for sgi := 0; sgi < cfg.SegmentsPerInput; sgi++ {
					seg := fmt.Sprintf("%s/seg-%d-%d", outDirs[w], i, sgi)
					_ = rec.time("create", func() error {
						_, err := s.Create(s.Caller().Begin(), seg, cfg.SegmentSize)
						return err
					})
					if cfg.Data != nil {
						cfg.Data.Put(cfg.SegmentSize)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rec.rep.Completion = time.Since(start)
	return rec.rep, nil
}
