package workload

import (
	"fmt"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/types"
)

// The mdtest-style operation drivers. Each returns a bench.OpFunc bound
// to a service and namespace; workers map onto the namespace's client
// subtrees (worker w uses WorkDirs[w % Clients]). The '-e' (exclusive)
// variants keep every worker in its own directory; the '-s' (shared)
// variants aim all workers at one shared directory — the paper's
// conflict workloads (§6.3).

func (ns *Namespace) work(w int) string {
	return ns.WorkDirs[w%len(ns.WorkDirs)]
}

// LookupOp resolves the worker's working directory path (depth =
// Spec.Depth).
func LookupOp(s api.Service, ns *Namespace) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		return s.Lookup(s.Caller().Begin(), ns.work(w))
	}
}

// LookupPathOp resolves a fixed path (the depth sweep).
func LookupPathOp(s api.Service, path string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		return s.Lookup(s.Caller().Begin(), path)
	}
}

// CreateOp creates distinct objects in the worker's working directory;
// round disambiguates repeated runs.
func CreateOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		path := fmt.Sprintf("%s/new-%s-%d-%d", ns.work(w), round, w, seq)
		return s.Create(s.Caller().Begin(), path, ns.Spec.SmallSize)
	}
}

// DeleteOp deletes the objects a CreateOp run with the same round and
// shape created.
func DeleteOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		path := fmt.Sprintf("%s/new-%s-%d-%d", ns.work(w), round, w, seq)
		return s.Delete(s.Caller().Begin(), path)
	}
}

// ObjStatOp stats pre-populated objects round-robin.
func ObjStatOp(s api.Service, ns *Namespace) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		paths := ns.ObjectPaths[w%len(ns.ObjectPaths)]
		return s.ObjStat(s.Caller().Begin(), paths[seq%len(paths)])
	}
}

// DirStatOp stats the worker's working directory.
func DirStatOp(s api.Service, ns *Namespace) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		return s.DirStat(s.Caller().Begin(), ns.work(w))
	}
}

// MkdirEOp creates directories in the worker's own directory (mkdir-e).
func MkdirEOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		path := fmt.Sprintf("%s/dir-%s-%d-%d", ns.work(w), round, w, seq)
		return s.Mkdir(s.Caller().Begin(), path)
	}
}

// MkdirSOp creates directories in the shared directory (mkdir-s): every
// operation updates the same parent's attribute metadata.
func MkdirSOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		path := fmt.Sprintf("%s/dir-%s-%d-%d", ns.SharedDir, round, w, seq)
		return s.Mkdir(s.Caller().Begin(), path)
	}
}

// RmdirEOp removes the directories a MkdirEOp run with the same round
// created.
func RmdirEOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		path := fmt.Sprintf("%s/dir-%s-%d-%d", ns.work(w), round, w, seq)
		return s.Rmdir(s.Caller().Begin(), path)
	}
}

// PrepareRenamePingPong creates one source directory per worker for the
// rename drivers. Must run before RenameEOp/RenameSOp.
func PrepareRenamePingPong(s api.Service, ns *Namespace, workers int, round string) error {
	for w := 0; w < workers; w++ {
		path := fmt.Sprintf("%s/rn-%s-%d", ns.work(w), round, w)
		if _, err := s.Mkdir(s.Caller().Begin(), path); err != nil {
			return fmt.Errorf("prepare rename dirs: %w", err)
		}
	}
	return nil
}

// RenameEOp ping-pongs each worker's directory between two names inside
// its own working directory (dirrename-e: no cross-worker conflicts).
func RenameEOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		a := fmt.Sprintf("%s/rn-%s-%d", ns.work(w), round, w)
		b := fmt.Sprintf("%s/rn2-%s-%d", ns.work(w), round, w)
		if seq%2 == 0 {
			return s.DirRename(s.Caller().Begin(), a, b)
		}
		return s.DirRename(s.Caller().Begin(), b, a)
	}
}

// RenameSOp ping-pongs each worker's directory between its own working
// directory and the shared directory (dirrename-s): every operation
// updates the shared directory's attribute metadata, emulating the
// Spark commit storm of §3.2.
func RenameSOp(s api.Service, ns *Namespace, round string) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		private := fmt.Sprintf("%s/rn-%s-%d", ns.work(w), round, w)
		shared := fmt.Sprintf("%s/rn-%s-%d", ns.SharedDir, round, w)
		if seq%2 == 0 {
			return s.DirRename(s.Caller().Begin(), private, shared)
		}
		return s.DirRename(s.Caller().Begin(), shared, private)
	}
}

// LookupLeafDirOp resolves pseudo-random bushy leaf directories (the
// Figure 18 k-sweep workload; requires TreeSpec.BranchLevels > 0).
func LookupLeafDirOp(s api.Service, ns *Namespace) bench.OpFunc {
	return func(w, seq int) (types.Result, error) {
		leaves := ns.LeafDirs[w%len(ns.LeafDirs)]
		if len(leaves) == 0 {
			return s.Lookup(s.Caller().Begin(), ns.work(w))
		}
		// Cheap deterministic mix of worker and sequence.
		i := (seq*2654435761 + w*40503) % len(leaves)
		if i < 0 {
			i = -i
		}
		return s.Lookup(s.Caller().Begin(), leaves[i])
	}
}
