package workload

import (
	"math/rand"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/types"
)

// ZipfObjStatOp stats pre-populated objects under a Zipfian popularity
// distribution across client subtrees: rank 0 — the hottest — is client
// 0's subtree, so a skewed run concentrates heat on one directory the
// way production COSS traffic does (§3.1's hot-bucket pattern). skew is
// the Zipf s parameter (> 1; larger = more skewed). Each worker owns a
// seeded generator (rand.Zipf is not goroutine-safe), so runs are
// deterministic for a given (workers, skew, seed).
func ZipfObjStatOp(s api.Service, ns *Namespace, workers int, skew float64, seed int64) bench.OpFunc {
	if skew <= 1 {
		skew = 1.2
	}
	if workers < 1 {
		workers = 1
	}
	clients := len(ns.ObjectPaths)
	zipfs := make([]*rand.Zipf, workers)
	for w := range zipfs {
		zipfs[w] = rand.NewZipf(rand.New(rand.NewSource(seed+int64(w))),
			skew, 1, uint64(clients-1))
	}
	return func(w, seq int) (types.Result, error) {
		paths := ns.ObjectPaths[int(zipfs[w%workers].Uint64())]
		return s.ObjStat(s.Caller().Begin(), paths[seq%len(paths)])
	}
}
