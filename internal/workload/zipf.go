package workload

import (
	"math/rand"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/types"
)

// ZipfObjStatOp stats pre-populated objects under a Zipfian popularity
// distribution across client subtrees: rank 0 — the hottest — is client
// 0's subtree, so a skewed run concentrates heat on one directory the
// way production COSS traffic does (§3.1's hot-bucket pattern). skew is
// the Zipf s parameter (> 1; larger = more skewed). Each worker owns a
// seeded generator (rand.Zipf is not goroutine-safe), so runs are
// deterministic for a given (workers, skew, seed).
func ZipfObjStatOp(s api.Service, ns *Namespace, workers int, skew float64, seed int64) bench.OpFunc {
	zipfs, workers := zipfRanks(workers, skew, seed, len(ns.ObjectPaths))
	return func(w, seq int) (types.Result, error) {
		paths := ns.ObjectPaths[int(zipfs[w%workers].Uint64())]
		return s.ObjStat(s.Caller().Begin(), paths[seq%len(paths)])
	}
}

// ZipfLookupOp resolves working-directory paths under the same Zipfian
// popularity distribution: rank 0 is client 0's working directory, so a
// skewed run turns one directory into a read hotspot — the workload the
// hotspot manager's promotion/replication path is built for.
func ZipfLookupOp(s api.Service, ns *Namespace, workers int, skew float64, seed int64) bench.OpFunc {
	zipfs, workers := zipfRanks(workers, skew, seed, len(ns.WorkDirs))
	return func(w, seq int) (types.Result, error) {
		return s.Lookup(s.Caller().Begin(), ns.WorkDirs[int(zipfs[w%workers].Uint64())])
	}
}

// zipfRanks builds one seeded Zipf rank generator per worker
// (rand.Zipf is not goroutine-safe) over [0, ranks).
func zipfRanks(workers int, skew float64, seed int64, ranks int) ([]*rand.Zipf, int) {
	if skew <= 1 {
		skew = 1.2
	}
	if workers < 1 {
		workers = 1
	}
	zipfs := make([]*rand.Zipf, workers)
	for w := range zipfs {
		zipfs[w] = rand.NewZipf(rand.New(rand.NewSource(seed+int64(w))),
			skew, 1, uint64(ranks-1))
	}
	return zipfs, workers
}
