package workload

import (
	"fmt"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/types"
)

// ScaleNamespace is the lean namespace generator behind the 10M+-entry
// flatness sweep. Build keeps a pathID map and per-client path slices —
// fine at experiment scale, but at ten million entries the bookkeeping
// costs more memory than the namespace under test, which would drown the
// bytes/entry measurement. A ScaleNamespace stores only its shape
// (groups × dirs × objects) and a small shared name table; every path
// and inode ID is recomputed from indices on demand.
//
// Layout: /s/g<g>/d<d>/o<k> — G group directories under /s, D dirs per
// group, F objects per dir. Object paths have depth 4; directory IDs are
// assigned densely from BaseID so population needs no map.
type ScaleNamespace struct {
	Groups, DirsPerGroup, ObjectsPerDir int
	BaseID                              types.InodeID

	groupNames []string // "g0".."g<G-1>"
	dirNames   []string // "d0".."d<D-1>"
	objNames   []string // "o0".."o<F-1>"
}

// BuildScale shapes a namespace of at least n total entries (dirs +
// objects). Dirs per group and objects per dir are fixed at 64, so the
// group count grows linearly with n and every TafDB shard receives an
// even slice of the directories.
func BuildScale(n int) *ScaleNamespace {
	const perGroup = 64 * 64 // objects contributed by one group's dirs
	groups := (n + perGroup - 1) / perGroup
	if groups < 1 {
		groups = 1
	}
	sn := &ScaleNamespace{
		Groups: groups, DirsPerGroup: 64, ObjectsPerDir: 64,
		BaseID: 1 << 20,
	}
	sn.groupNames = nameTable("g", sn.Groups)
	sn.dirNames = nameTable("d", sn.DirsPerGroup)
	sn.objNames = nameTable("o", sn.ObjectsPerDir)
	return sn
}

func nameTable(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// Entries returns the total entry count (directories + objects).
func (sn *ScaleNamespace) Entries() int {
	dirs := 1 + sn.Groups + sn.Groups*sn.DirsPerGroup
	return dirs + sn.Groups*sn.DirsPerGroup*sn.ObjectsPerDir
}

// Objects returns the object count.
func (sn *ScaleNamespace) Objects() int {
	return sn.Groups * sn.DirsPerGroup * sn.ObjectsPerDir
}

// rootID, groupID, and dirID compute the dense inode ID assignment.
func (sn *ScaleNamespace) rootID() types.InodeID { return sn.BaseID }
func (sn *ScaleNamespace) groupID(g int) types.InodeID {
	return sn.BaseID + 1 + types.InodeID(g)
}
func (sn *ScaleNamespace) dirID(g, d int) types.InodeID {
	return sn.BaseID + 1 + types.InodeID(sn.Groups) + types.InodeID(g*sn.DirsPerGroup+d)
}

// DirPath returns the path of dir (g, d).
func (sn *ScaleNamespace) DirPath(g, d int) string {
	return "/s/" + sn.groupNames[g] + "/" + sn.dirNames[d]
}

// ObjPath returns the path of the i-th object (objects are numbered
// dir-major: dir index i/F, object index i%F).
func (sn *ScaleNamespace) ObjPath(i int) string {
	f := sn.ObjectsPerDir
	di, k := i/f, i%f
	g, d := di/sn.DirsPerGroup, di%sn.DirsPerGroup
	return sn.DirPath(g, d) + "/" + sn.objNames[k]
}

// Populate bulk-loads the namespace in one Populate call, so the
// service's bulk-load fast path (per-shard sorted B-tree rebuild) sees
// the whole population at once. Object names come from the shared name
// table — no per-object string is allocated here.
func (sn *ScaleNamespace) Populate(s api.Service) error {
	dirs := make([]api.PopDir, 0, 1+sn.Groups+sn.Groups*sn.DirsPerGroup)
	dirs = append(dirs, api.PopDir{
		Path: "/s", ID: sn.rootID(), Pid: types.RootID, Perm: types.PermAll,
	})
	for g := 0; g < sn.Groups; g++ {
		dirs = append(dirs, api.PopDir{
			Path: "/s/" + sn.groupNames[g],
			ID:   sn.groupID(g), Pid: sn.rootID(), Perm: types.PermAll,
		})
	}
	for g := 0; g < sn.Groups; g++ {
		for d := 0; d < sn.DirsPerGroup; d++ {
			dirs = append(dirs, api.PopDir{
				Path: sn.DirPath(g, d),
				ID:   sn.dirID(g, d), Pid: sn.groupID(g), Perm: types.PermAll,
			})
		}
	}
	objects := make([]api.PopObject, 0, sn.Objects())
	for g := 0; g < sn.Groups; g++ {
		for d := 0; d < sn.DirsPerGroup; d++ {
			pid := sn.dirID(g, d)
			for k := 0; k < sn.ObjectsPerDir; k++ {
				objects = append(objects, api.PopObject{
					Pid: pid, Name: sn.objNames[k], Size: 64 << 10,
				})
			}
		}
	}
	return s.Populate(dirs, objects)
}

// StatOp stats objects in a deterministic worker-striped order touching
// every directory, the flatness sweep's read workload.
func (sn *ScaleNamespace) StatOp(s api.Service) bench.OpFunc {
	n := sn.Objects()
	return func(w, seq int) (types.Result, error) {
		// A large co-prime stride scatters accesses across groups so no
		// shard or cache line is measured preferentially.
		i := (w*1000003 + seq*257) % n
		return s.ObjStat(s.Caller().Begin(), sn.ObjPath(i))
	}
}

// LookupOp resolves leaf directory paths with the same access pattern
// as StatOp.
func (sn *ScaleNamespace) LookupOp(s api.Service) bench.OpFunc {
	n := sn.Groups * sn.DirsPerGroup
	return func(w, seq int) (types.Result, error) {
		i := (w*1000003 + seq*257) % n
		return s.Lookup(s.Caller().Begin(), sn.DirPath(i/sn.DirsPerGroup, i%sn.DirsPerGroup))
	}
}
