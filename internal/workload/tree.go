// Package workload generates the namespaces and operation streams the
// evaluation runs: an mdtest-style population tree (per-client private
// subtrees at a configurable depth plus a shared directory for the
// conflicting '-s' variants), deep path chains for the depth sweep, the
// mdtest operation drivers, and the two application workloads (Spark
// Analytics and AI audio pre-processing) of §6.2.
package workload

import (
	"fmt"
	"math/rand"

	"mantle/internal/api"
	"mantle/internal/pathutil"
	"mantle/internal/types"
)

// TreeSpec describes an mdtest-style namespace.
type TreeSpec struct {
	// Clients is the number of private client subtrees.
	Clients int
	// Depth is the directory depth of each client's working (leaf)
	// directory; pre-populated object paths then have depth Depth+1.
	// The evaluation uses 10, matching the paper's "average path depth
	// of 10". Must be >= 3.
	Depth int
	// ObjectsPerClient objects are pre-created in each working dir.
	ObjectsPerClient int
	// SmallRatio is the fraction of small objects; sizes alternate
	// between SmallSize and LargeSize accordingly.
	SmallRatio float64
	// SmallSize / LargeSize in bytes.
	SmallSize, LargeSize int64
	// BaseID is the first inode ID assigned to populated directories.
	BaseID types.InodeID
	// Seed drives size assignment.
	Seed int64
	// BranchLevels/BranchFactor optionally grow a bushy subtree under
	// each client's chain: the last BranchLevels levels branch
	// BranchFactor ways, producing BranchFactor^BranchLevels leaf
	// directories per client at depth Depth. Real namespaces branch near
	// the leaves; the Figure 18 k-sweep needs this shape because the
	// number of cacheable (k-truncated) prefixes — and so the cache's
	// memory — depends on it.
	BranchLevels int
	BranchFactor int
}

func (s TreeSpec) withDefaults() TreeSpec {
	if s.Clients <= 0 {
		s.Clients = 8
	}
	if s.Depth < 3 {
		s.Depth = 10
	}
	if s.SmallSize == 0 {
		s.SmallSize = 64 << 10
	}
	if s.LargeSize == 0 {
		s.LargeSize = 4 << 20
	}
	if s.SmallRatio == 0 {
		s.SmallRatio = 0.5
	}
	if s.BaseID == 0 {
		s.BaseID = 1 << 20
	}
	return s
}

// Namespace is a generated population plus the paths the drivers use.
type Namespace struct {
	Spec    TreeSpec
	Dirs    []api.PopDir
	Objects []api.PopObject

	// WorkDirs[c] is client c's private working directory (depth =
	// Spec.Depth).
	WorkDirs []string
	// SharedDir is the conflict target for the '-s' workloads, at the
	// same depth as the working dirs.
	SharedDir string
	// ObjectPaths[c] lists client c's pre-populated object paths.
	ObjectPaths [][]string
	// LeafDirs[c] lists client c's bushy leaf directories (only when
	// BranchLevels > 0); the working dir is always included.
	LeafDirs [][]string

	pathID map[string]types.InodeID
	nextID types.InodeID
}

// Build generates the namespace.
func Build(spec TreeSpec) *Namespace {
	spec = spec.withDefaults()
	ns := &Namespace{
		Spec:   spec,
		pathID: map[string]types.InodeID{"/": types.RootID},
		nextID: spec.BaseID,
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))

	// Shared subtree: /mdt/shared/s3/s4/.../work
	shared := "/mdt/shared"
	for l := 3; l < spec.Depth; l++ {
		shared += fmt.Sprintf("/s%d", l)
	}
	shared += "/work"
	ns.SharedDir = ns.addDirChain(shared)

	for c := 0; c < spec.Clients; c++ {
		p := fmt.Sprintf("/mdt/c%d", c)
		chainEnd := spec.Depth
		if spec.BranchLevels > 0 {
			// The chain reaches depth chainEnd-1; the bush adds
			// BranchLevels more, landing leaves at exactly spec.Depth.
			chainEnd = spec.Depth - spec.BranchLevels + 1
			if chainEnd < 3 {
				chainEnd = 3
			}
		}
		for l := 3; l < chainEnd; l++ {
			p += fmt.Sprintf("/d%d", l)
		}
		var leaves []string
		if spec.BranchLevels > 0 {
			ns.addDirChain(p)
			leaves = ns.addBush(p, spec.Depth-(chainEnd-1), spec.BranchFactor)
		}
		work := p
		if spec.BranchLevels > 0 && len(leaves) > 0 {
			work = leaves[0]
		} else {
			work = ns.addDirChain(p + "/work")
		}
		ns.WorkDirs = append(ns.WorkDirs, work)
		ns.LeafDirs = append(ns.LeafDirs, leaves)
		paths := make([]string, 0, spec.ObjectsPerClient)
		pid := ns.pathID[work]
		for i := 0; i < spec.ObjectsPerClient; i++ {
			name := fmt.Sprintf("f%06d", i)
			size := spec.LargeSize
			if rng.Float64() < spec.SmallRatio {
				size = spec.SmallSize
			}
			ns.Objects = append(ns.Objects, api.PopObject{Pid: pid, Name: name, Size: size})
			paths = append(paths, work+"/"+name)
		}
		ns.ObjectPaths = append(ns.ObjectPaths, paths)
	}
	return ns
}

// addDirChain ensures every ancestor of path exists in the population,
// returning the cleaned path.
func (ns *Namespace) addDirChain(path string) string {
	path = pathutil.Clean(path)
	comps := pathutil.Split(path)
	cur := "/"
	pid := types.RootID
	for _, c := range comps {
		next := cur
		if next == "/" {
			next = "/" + c
		} else {
			next = next + "/" + c
		}
		id, ok := ns.pathID[next]
		if !ok {
			id = ns.nextID
			ns.nextID++
			ns.pathID[next] = id
			ns.Dirs = append(ns.Dirs, api.PopDir{Path: next, ID: id, Pid: pid, Perm: types.PermAll})
		}
		cur, pid = next, id
	}
	return path
}

// addBush grows a balanced subtree of the given extra levels and fanout
// under root, returning the leaf directory paths.
func (ns *Namespace) addBush(root string, levels, fanout int) []string {
	if fanout < 2 {
		fanout = 2
	}
	frontier := []string{pathutil.Clean(root)}
	for l := 0; l < levels; l++ {
		next := make([]string, 0, len(frontier)*fanout)
		for _, base := range frontier {
			for b := 0; b < fanout; b++ {
				next = append(next, ns.addDirChain(fmt.Sprintf("%s/b%d", base, b)))
			}
		}
		frontier = next
	}
	return frontier
}

// AddChain adds a directory chain of exactly depth components rooted at
// /depth<d>/..., returning the leaf path — the Figure 17 namespaces.
func (ns *Namespace) AddChain(depth int) string {
	return ns.AddChainVariant(depth, 0)
}

// AddChainVariant adds the i-th independent chain of the given depth
// (distinct chains land on distinct shards, so depth sweeps measure path
// length rather than single-row hotspots).
func (ns *Namespace) AddChainVariant(depth, i int) string {
	p := fmt.Sprintf("/depth%d-%d", depth, i)
	for l := 2; l <= depth; l++ {
		p += fmt.Sprintf("/l%d", l)
	}
	return ns.addDirChain(p)
}

// AddObjects pre-creates n objects under dir (which must already exist),
// returning their paths.
func (ns *Namespace) AddObjects(dir string, n int, size int64) []string {
	dir = pathutil.Clean(dir)
	pid, ok := ns.pathID[dir]
	if !ok {
		panic("workload: AddObjects under unknown dir " + dir)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("x%06d", i)
		ns.Objects = append(ns.Objects, api.PopObject{Pid: pid, Name: name, Size: size})
		out = append(out, dir+"/"+name)
	}
	return out
}

// DirID returns the populated inode ID of a directory path.
func (ns *Namespace) DirID(path string) (types.InodeID, bool) {
	id, ok := ns.pathID[pathutil.Clean(path)]
	return id, ok
}

// Populate loads the namespace into a service.
func (ns *Namespace) Populate(s api.Service) error {
	return s.Populate(ns.Dirs, ns.Objects)
}

// Entries returns the total populated entry count (dirs + objects).
func (ns *Namespace) Entries() int { return len(ns.Dirs) + len(ns.Objects) }
