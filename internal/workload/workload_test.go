package workload

import (
	"strings"
	"testing"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/pathutil"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

func TestBuildTreeShape(t *testing.T) {
	ns := Build(TreeSpec{Clients: 4, Depth: 10, ObjectsPerClient: 20})
	if len(ns.WorkDirs) != 4 {
		t.Fatalf("workdirs = %d", len(ns.WorkDirs))
	}
	for _, wd := range ns.WorkDirs {
		if got := pathutil.Depth(wd); got != 10 {
			t.Fatalf("workdir %s depth = %d", wd, got)
		}
	}
	if got := pathutil.Depth(ns.SharedDir); got != 10 {
		t.Fatalf("shared depth = %d", got)
	}
	if len(ns.Objects) != 4*20 {
		t.Fatalf("objects = %d", len(ns.Objects))
	}
	// Every dir's parent precedes it and ids are unique.
	seen := map[types.InodeID]bool{types.RootID: true}
	for _, d := range ns.Dirs {
		if seen[d.ID] {
			t.Fatalf("duplicate id %d", d.ID)
		}
		if !seen[d.Pid] {
			t.Fatalf("dir %s has unseen parent %d", d.Path, d.Pid)
		}
		seen[d.ID] = true
	}
	// Object pids exist.
	for _, o := range ns.Objects {
		if !seen[o.Pid] {
			t.Fatalf("object %s has unseen pid", o.Name)
		}
	}
}

func TestAddChainAndObjects(t *testing.T) {
	ns := Build(TreeSpec{Clients: 1, Depth: 4, ObjectsPerClient: 1})
	leaf := ns.AddChain(7)
	if pathutil.Depth(leaf) != 7 {
		t.Fatalf("chain depth = %d", pathutil.Depth(leaf))
	}
	paths := ns.AddObjects(leaf, 3, 100)
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if !strings.HasPrefix(p, leaf+"/") {
			t.Fatalf("object path %s not under %s", p, leaf)
		}
	}
}

func newMantle(t *testing.T) api.Service {
	t.Helper()
	m, err := core.New(core.Config{
		TafDB: tafdb.Config{Shards: 4, Delta: tafdb.DeltaAuto},
		Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestMdtestDriversAgainstMantle(t *testing.T) {
	s := newMantle(t)
	ns := Build(TreeSpec{Clients: 4, Depth: 6, ObjectsPerClient: 10})
	if err := ns.Populate(s); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 10

	run := func(name string, fn bench.OpFunc) bench.RunResult {
		t.Helper()
		res := bench.RunN(workers, per, fn)
		if res.Errors > 0 {
			t.Fatalf("%s: %d errors", name, res.Errors)
		}
		if res.Ops != workers*per {
			t.Fatalf("%s: ops = %d", name, res.Ops)
		}
		return res
	}

	run("lookup", LookupOp(s, ns))
	run("objstat", ObjStatOp(s, ns))
	run("dirstat", DirStatOp(s, ns))
	run("create", CreateOp(s, ns, "r1"))
	run("delete", DeleteOp(s, ns, "r1"))
	run("mkdir-e", MkdirEOp(s, ns, "r1"))
	run("rmdir-e", RmdirEOp(s, ns, "r1"))
	run("mkdir-s", MkdirSOp(s, ns, "r1"))

	if err := PrepareRenamePingPong(s, ns, workers, "r1"); err != nil {
		t.Fatal(err)
	}
	run("rename-e", RenameEOp(s, ns, "r1"))
	run("rename-s", RenameSOp(s, ns, "r1"))
}

func TestAnalyticsWorkload(t *testing.T) {
	s := newMantle(t)
	rep, err := RunAnalytics(s, AnalyticsConfig{
		Queries: 1, TasksPerQuery: 16, ObjectsPerTask: 2, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Ops["mkdir"].Count() != 16 || rep.Ops["dirrename"].Count() != 16 {
		t.Fatalf("op counts: mkdir=%d rename=%d",
			rep.Ops["mkdir"].Count(), rep.Ops["dirrename"].Count())
	}
	if rep.Ops["create"].Count() != 32 {
		t.Fatalf("creates = %d", rep.Ops["create"].Count())
	}
	if rep.Completion <= 0 {
		t.Fatal("no completion time")
	}
	// Every task's output committed.
	_, entries, err := s.ReadDir(s.Caller().Begin(), "/analytics/out/q0")
	if err != nil || len(entries) != 16 {
		t.Fatalf("committed tasks = %d err=%v", len(entries), err)
	}
}

func TestAudioWorkload(t *testing.T) {
	s := newMantle(t)
	ns := Build(TreeSpec{Clients: 4, Depth: 6, ObjectsPerClient: 8})
	if err := ns.Populate(s); err != nil {
		t.Fatal(err)
	}
	rep, err := RunAudio(s, AudioConfig{
		Inputs: 16, SegmentsPerInput: 2, Workers: 4, Namespace: ns,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Ops["objstat"].Count() != 16 {
		t.Fatalf("objstats = %d", rep.Ops["objstat"].Count())
	}
	if rep.Ops["create"].Count() != 32 {
		t.Fatalf("creates = %d", rep.Ops["create"].Count())
	}
}

func TestBushyTree(t *testing.T) {
	ns := Build(TreeSpec{
		Clients: 3, Depth: 10, ObjectsPerClient: 2,
		BranchLevels: 3, BranchFactor: 3,
	})
	if len(ns.LeafDirs) != 3 {
		t.Fatalf("leafdirs = %d", len(ns.LeafDirs))
	}
	for c, leaves := range ns.LeafDirs {
		if len(leaves) != 27 {
			t.Fatalf("client %d has %d leaves, want 27", c, len(leaves))
		}
		for _, l := range leaves {
			if got := pathutil.Depth(l); got != 10 {
				t.Fatalf("leaf %s depth = %d", l, got)
			}
		}
	}
	// Work dir is one of the leaves at full depth.
	if pathutil.Depth(ns.WorkDirs[0]) != 10 {
		t.Fatalf("workdir depth = %d", pathutil.Depth(ns.WorkDirs[0]))
	}
}

func TestBushyLookupAgainstMantle(t *testing.T) {
	s := newMantle(t)
	ns := Build(TreeSpec{
		Clients: 2, Depth: 8, ObjectsPerClient: 1,
		BranchLevels: 2, BranchFactor: 2,
	})
	if err := ns.Populate(s); err != nil {
		t.Fatal(err)
	}
	res := bench.RunN(2, 10, LookupLeafDirOp(s, ns))
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
}
