// Package radix implements the path-component prefix tree backing
// IndexNode's Invalidator (§5.1.2 of the paper). TopDirPathCache is a hash
// table and cannot answer "which cached prefixes lie under directory D?";
// the PrefixTree mirrors every cached path so that a directory
// modification can find the affected range with one subtree walk.
//
// The paper describes the structure as a lock-free radix tree. This
// implementation substitutes a component-trie under a read-write mutex:
// it is touched only on cache fill and invalidation (never on the lookup
// fast path, which goes through the hash-table cache), so mutex
// contention is negligible; the behavioural contract — efficient range
// queries for invalidation — is identical. The substitution is recorded
// in DESIGN.md.
package radix

import (
	"sync"

	"mantle/internal/pathutil"
)

type node struct {
	children map[string]*node
	terminal bool // a cached path ends here
}

func newNode() *node { return &node{children: make(map[string]*node)} }

// Tree is a set of slash-separated paths supporting subtree queries.
// Safe for concurrent use.
type Tree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: newNode()} }

// Len returns the number of inserted paths.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert adds path to the set, reporting whether it was newly added.
func (t *Tree) Insert(path string) bool {
	comps := pathutil.Split(path)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for _, c := range comps {
		child, ok := n.children[c]
		if !ok {
			child = newNode()
			// Intern the edge label: c is a substring of path, and a
			// long-lived map key sliced from a request path would pin the
			// whole path allocation.
			n.children[pathutil.Intern(c)] = child
		}
		n = child
	}
	if n.terminal {
		return false
	}
	n.terminal = true
	t.size++
	return true
}

// Contains reports whether path was inserted (exact match).
func (t *Tree) Contains(path string) bool {
	comps := pathutil.Split(path)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for _, c := range comps {
		child, ok := n.children[c]
		if !ok {
			return false
		}
		n = child
	}
	return n.terminal
}

// Remove deletes an exact path from the set, pruning now-empty interior
// nodes. It reports whether the path was present.
func (t *Tree) Remove(path string) bool {
	comps := pathutil.Split(path)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.remove(t.root, comps)
}

func (t *Tree) remove(n *node, comps []string) bool {
	if len(comps) == 0 {
		if !n.terminal {
			return false
		}
		n.terminal = false
		t.size--
		return true
	}
	child, ok := n.children[comps[0]]
	if !ok {
		return false
	}
	removed := t.remove(child, comps[1:])
	if removed && !child.terminal && len(child.children) == 0 {
		delete(n.children, comps[0])
	}
	return removed
}

// Subtree returns every inserted path that has dir as an ancestor or is
// equal to dir — the invalidation range for a modification of dir.
func (t *Tree) Subtree(dir string) []string {
	comps := pathutil.Split(dir)
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for _, c := range comps {
		child, ok := n.children[c]
		if !ok {
			return nil
		}
		n = child
	}
	var out []string
	collect(n, pathutil.Join(comps...), &out)
	return out
}

// RemoveSubtree deletes every path under (or equal to) dir and returns
// the removed paths.
func (t *Tree) RemoveSubtree(dir string) []string {
	comps := pathutil.Split(dir)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := t.root
	n := t.root
	last := ""
	for _, c := range comps {
		child, ok := n.children[c]
		if !ok {
			return nil
		}
		parent, n, last = n, child, c
	}
	var out []string
	collect(n, pathutil.Join(comps...), &out)
	t.size -= len(out)
	if len(comps) == 0 {
		// Clearing the whole tree.
		t.root = newNode()
		return out
	}
	delete(parent.children, last)
	return out
}

func collect(n *node, prefix string, out *[]string) {
	if n.terminal {
		*out = append(*out, prefix)
	}
	for c, child := range n.children {
		p := prefix
		if p == "/" {
			p = "/" + c
		} else {
			p = p + "/" + c
		}
		collect(child, p, out)
	}
}

// Walk calls fn for every inserted path (order unspecified) until fn
// returns false.
func (t *Tree) Walk(fn func(path string) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	walk(t.root, "/", fn)
}

func walk(n *node, prefix string, fn func(string) bool) bool {
	if n.terminal && !fn(prefix) {
		return false
	}
	for c, child := range n.children {
		p := prefix
		if p == "/" {
			p = "/" + c
		} else {
			p = p + "/" + c
		}
		if !walk(child, p, fn) {
			return false
		}
	}
	return true
}
