package radix

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mantle/internal/pathutil"
)

func TestInsertContainsRemove(t *testing.T) {
	tr := New()
	if tr.Contains("/a") {
		t.Fatal("empty tree contains /a")
	}
	if !tr.Insert("/a/b/c") {
		t.Fatal("insert failed")
	}
	if tr.Insert("/a/b/c") {
		t.Fatal("duplicate insert succeeded")
	}
	if !tr.Contains("/a/b/c") {
		t.Fatal("Contains false after insert")
	}
	// Interior nodes are not terminal.
	if tr.Contains("/a/b") || tr.Contains("/a") {
		t.Fatal("interior path reported as contained")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Remove("/a/b/c") {
		t.Fatal("remove failed")
	}
	if tr.Remove("/a/b/c") {
		t.Fatal("double remove succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after remove", tr.Len())
	}
}

func TestRemoveKeepsSiblings(t *testing.T) {
	tr := New()
	tr.Insert("/a/b")
	tr.Insert("/a/c")
	tr.Remove("/a/b")
	if !tr.Contains("/a/c") {
		t.Fatal("sibling removed")
	}
}

func TestRemoveKeepsAncestorTerminal(t *testing.T) {
	tr := New()
	tr.Insert("/a")
	tr.Insert("/a/b")
	tr.Remove("/a/b")
	if !tr.Contains("/a") {
		t.Fatal("ancestor terminal lost")
	}
}

func TestSubtree(t *testing.T) {
	tr := New()
	paths := []string{"/a", "/a/b", "/a/b/c", "/a/d", "/x/y", "/x"}
	for _, p := range paths {
		tr.Insert(p)
	}
	got := tr.Subtree("/a")
	sort.Strings(got)
	want := []string{"/a", "/a/b", "/a/b/c", "/a/d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Subtree(/a) = %v, want %v", got, want)
	}
	if got := tr.Subtree("/nope"); got != nil {
		t.Fatalf("Subtree(/nope) = %v", got)
	}
	all := tr.Subtree("/")
	if len(all) != len(paths) {
		t.Fatalf("Subtree(/) = %v", all)
	}
}

func TestRemoveSubtree(t *testing.T) {
	tr := New()
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/a/d", "/x/y"} {
		tr.Insert(p)
	}
	removed := tr.RemoveSubtree("/a")
	if len(removed) != 4 {
		t.Fatalf("removed = %v", removed)
	}
	if tr.Len() != 1 || !tr.Contains("/x/y") {
		t.Fatalf("Len=%d after RemoveSubtree", tr.Len())
	}
	for _, p := range removed {
		if tr.Contains(p) {
			t.Fatalf("%s still present", p)
		}
	}
	// Removing the root clears everything.
	tr.Insert("/q")
	all := tr.RemoveSubtree("/")
	if len(all) != 2 || tr.Len() != 0 {
		t.Fatalf("RemoveSubtree(/) = %v, Len=%d", all, tr.Len())
	}
}

func TestWalk(t *testing.T) {
	tr := New()
	for _, p := range []string{"/a", "/b/c", "/d"} {
		tr.Insert(p)
	}
	var got []string
	tr.Walk(func(p string) bool { got = append(got, p); return true })
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint([]string{"/a", "/b/c", "/d"}) {
		t.Fatalf("Walk = %v", got)
	}
	n := 0
	tr.Walk(func(string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQuickSubtreeMatchesIsAncestor(t *testing.T) {
	mk := func(bs []byte) string {
		comps := make([]string, 0, 4)
		for _, b := range bs {
			comps = append(comps, string(rune('a'+int(b)%3)))
			if len(comps) == 4 {
				break
			}
		}
		return pathutil.Join(comps...)
	}
	f := func(raw [][]byte, q []byte) bool {
		tr := New()
		set := map[string]bool{}
		for _, bs := range raw {
			p := mk(bs)
			if p == "/" {
				continue
			}
			tr.Insert(p)
			set[p] = true
		}
		dir := mk(q)
		got := tr.Subtree(dir)
		want := 0
		for p := range set {
			if pathutil.IsAncestor(dir, p, true) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, p := range got {
			if !set[p] || !pathutil.IsAncestor(dir, p, true) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				p := fmt.Sprintf("/g%d/x%d", g, r.Intn(50))
				switch r.Intn(4) {
				case 0:
					tr.Insert(p)
				case 1:
					tr.Remove(p)
				case 2:
					tr.Contains(p)
				case 3:
					tr.Subtree(fmt.Sprintf("/g%d", g))
				}
			}
		}(g)
	}
	wg.Wait()
	// Sanity: Len matches a full walk.
	n := 0
	tr.Walk(func(string) bool { n++; return true })
	if n != tr.Len() {
		t.Fatalf("walk count %d != Len %d", n, tr.Len())
	}
}

// TestRemoveSubtreeConcurrentInsert races RemoveSubtree("/a") against
// inserters filling paths under /a — the exact shape of a proxy-cache
// fill racing a subtree invalidation. Invariants: every insert/removal
// is atomic (a path is either fully present or fully absent — never a
// dangling interior), RemoveSubtree returns only inserted paths and
// never returns one path twice across concurrent sweeps, and at quiesce
// a final sweep leaves the subtree empty with Len consistent.
func TestRemoveSubtreeConcurrentInsert(t *testing.T) {
	tr := New()
	const (
		inserters = 4
		perGoro   = 2000
		fanout    = 25
	)
	var wg sync.WaitGroup
	inserted := make([]map[string]int, inserters) // path -> times inserted fresh
	for g := 0; g < inserters; g++ {
		inserted[g] = make(map[string]int)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				p := fmt.Sprintf("/a/g%d/x%d/leaf", g, i%fanout)
				if tr.Insert(p) {
					inserted[g][p]++
				}
			}
		}(g)
	}
	removed := make(map[string]int)
	var stop sync.WaitGroup
	stopCh := make(chan struct{})
	stop.Add(1)
	go func() {
		defer stop.Done()
		for {
			for _, p := range tr.RemoveSubtree("/a") {
				removed[p]++
			}
			select {
			case <-stopCh:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stopCh)
	stop.Wait()
	for _, p := range tr.RemoveSubtree("/a") {
		removed[p]++
	}

	// Every fresh insert must be matched by exactly that many removals,
	// and nothing was removed that was not inserted.
	for _, m := range inserted {
		for p, n := range m {
			if removed[p] != n {
				t.Fatalf("path %q inserted fresh %d times, removed %d times", p, n, removed[p])
			}
			delete(removed, p)
		}
	}
	for p, n := range removed {
		if n != 0 {
			t.Fatalf("path %q removed %d times but never recorded as inserted", p, n)
		}
	}
	if got := tr.Subtree("/a"); len(got) != 0 {
		t.Fatalf("subtree /a not empty after final sweep: %v", got)
	}
	n := 0
	tr.Walk(func(string) bool { n++; return true })
	if n != tr.Len() {
		t.Fatalf("walk count %d != Len %d", n, tr.Len())
	}
}
