package repl

import (
	"sync"

	"mantle/internal/clock"
	"mantle/internal/storage"
)

// Source is the primary-site half of the replication plane: it receives
// every committed mutation batch from the shards (via tafdb's ReplSink
// wiring, whose interface it satisfies structurally) and maintains the
// per-shard oplogs. Cross-shard transactions are pre-stamped — tafdb
// registers the attempt-qualified transaction id with its piece count
// before the 2PC runs — so all pieces of one transaction share a single
// HLC and are recognisable as one atomic group downstream.
type Source struct {
	clk  *clock.Clock
	logs []*Oplog

	mu     sync.Mutex
	stamps map[string]*stamp
}

type stamp struct {
	// ts stays zero until the first piece commits: assigning the HLC at
	// first-commit time (not at registration) keeps it ordered after any
	// conflicting single-shard write that lock-serialised ahead of the
	// transaction's prepare round, so LWW at the secondary agrees with
	// commit order at the primary.
	ts     clock.Timestamp
	pieces int
	left   int // commits not yet seen; the stamp is dropped at zero
}

// NewSource creates a source for a primary with the given shard count.
// site feeds the HLC tie-break; give each site a distinct id.
func NewSource(site uint16, shards int) *Source {
	s := &Source{
		clk:    clock.New(site),
		logs:   make([]*Oplog, shards),
		stamps: make(map[string]*stamp),
	}
	for i := range s.logs {
		s.logs[i] = &Oplog{}
	}
	return s
}

// Clock exposes the site clock.
func (s *Source) Clock() *clock.Clock { return s.clk }

// Shards returns the shard count.
func (s *Source) Shards() int { return len(s.logs) }

// Log returns shard i's oplog.
func (s *Source) Log(i int) *Oplog { return s.logs[i] }

// StampTxn registers a transaction about to commit: all of its pieces
// will share one HLC (assigned when the first piece commits) and carry
// the given piece count. Called by tafdb before the 2PC rounds run
// (tafdb.ReplSink).
func (s *Source) StampTxn(txnID string, pieces int) {
	s.mu.Lock()
	s.stamps[txnID] = &stamp{pieces: pieces, left: pieces}
	s.mu.Unlock()
}

// ForgetTxn drops a registered stamp (aborted or failed attempts; a
// no-op for unknown ids). Called by tafdb after each attempt resolves.
func (s *Source) ForgetTxn(txnID string) {
	s.mu.Lock()
	delete(s.stamps, txnID)
	s.mu.Unlock()
}

// Commit receives one committed batch from shard (tafdb.ReplSink). It
// runs under the shard mutex, so appends are in commit order; keep it
// allocation-light and never call back into the shard.
func (s *Source) Commit(shard int, seq uint64, txnID string, muts []storage.Mutation) {
	ts, pieces := s.stampFor(txnID)
	s.logs[shard].Append(Record{
		Shard:  shard,
		Seq:    seq,
		HLC:    ts,
		TxnID:  txnID,
		Pieces: pieces,
		Muts:   muts,
		Bytes:  storage.BatchBytes(muts),
	})
}

// stampFor resolves the HLC and piece count for a committing batch:
// the pre-registered stamp when one exists, a fresh single-piece stamp
// otherwise (relaxed applies and unstamped transactions).
func (s *Source) stampFor(txnID string) (clock.Timestamp, int) {
	if txnID != "" {
		s.mu.Lock()
		if st, ok := s.stamps[txnID]; ok {
			if st.ts.IsZero() {
				st.ts = s.clk.Now()
			}
			ts, pieces := st.ts, st.pieces
			st.left--
			if st.left <= 0 {
				delete(s.stamps, txnID)
			}
			s.mu.Unlock()
			return ts, pieces
		}
		s.mu.Unlock()
	}
	return s.clk.Now(), 1
}

// GC trims every shard's oplog up to the given acknowledged sequences
// (one per shard — the subscriber low watermark), returning the total
// records dropped. Sequences beyond a shard's tip are clamped.
func (s *Source) GC(acked []uint64) int {
	total := 0
	for i, l := range s.logs {
		if i >= len(acked) {
			break
		}
		total += l.Trim(acked[i])
	}
	return total
}

// SourceStats aggregates oplog accounting across shards.
type SourceStats struct {
	Records int
	Bytes   int64
	Trimmed int64
}

// Stats snapshots the retained-oplog accounting.
func (s *Source) Stats() SourceStats {
	var out SourceStats
	for _, l := range s.logs {
		out.Records += l.Len()
		out.Bytes += l.Bytes()
		out.Trimmed += l.Trimmed()
	}
	return out
}
