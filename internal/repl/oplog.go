// Package repl is Mantle's asynchronous site-to-site replication plane.
// Every committed mutation batch on the primary site — transactional
// commits and relaxed applies alike — enters a per-shard oplog, stamped
// with a Hybrid Logical Clock timestamp (internal/clock) at the point
// the shard assigns its commit sequence, so oplog order is WAL order by
// construction. A Link streams records over the rpc/netsim fabric to a
// secondary site's Applier, which applies them in per-shard sequence
// order with cross-shard transactions grouped atomically and conflicts
// resolved last-writer-wins on the HLC.
//
// The plane is deliberately asynchronous: the primary never waits for
// the secondary, so a site failure loses at most the un-shipped oplog
// suffix (the loss window the dr experiment measures). Watermarks —
// applied sequence and HLC per shard, lag in entries and bytes,
// conflict counts — are exported through core's metrics registry onto
// /metrics and /status.
package repl

import (
	"sync"

	"mantle/internal/clock"
	"mantle/internal/storage"
)

// Record is one replicated mutation batch: a shard's commit at a
// specific sequence number, stamped with the primary's HLC. All pieces
// of one cross-shard transaction carry the same TxnID, HLC, and Pieces
// count, so the Applier can reassemble and apply them atomically.
type Record struct {
	Shard int
	// Seq is the shard-local commit sequence (gap-free from 1).
	Seq uint64
	// HLC is the commit timestamp; LWW conflict resolution compares it.
	HLC clock.Timestamp
	// TxnID identifies the committing transaction ("" for relaxed
	// applies); Pieces is how many shards the transaction spans.
	TxnID  string
	Pieces int
	Muts   []storage.Mutation
	// Bytes is the approximate wire size (storage.BatchBytes).
	Bytes int
}

// Oplog is one shard's replication log: records in sequence order,
// trimmable from the front once every subscriber has acknowledged past
// them (the GC low watermark).
type Oplog struct {
	mu sync.Mutex
	// base is the sequence number of the last trimmed record; recs[0]
	// (when present) has Seq == base+1.
	base    uint64
	recs    []Record
	bytes   int64
	trimmed int64
}

// Append adds a record. Records must arrive in sequence order with no
// gaps — the shard hook runs under the shard mutex, which guarantees it.
func (l *Oplog) Append(r Record) {
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.bytes += int64(r.Bytes)
	l.mu.Unlock()
}

// ReadFrom returns up to max records starting at sequence from. The
// second result is false when from has already been trimmed away — the
// subscriber cannot catch up from the log and needs a snapshot
// bootstrap.
func (l *Oplog) ReadFrom(from uint64, max int) ([]Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from <= l.base {
		return nil, false
	}
	idx := int(from - l.base - 1)
	if idx >= len(l.recs) {
		return nil, true
	}
	end := idx + max
	if max <= 0 || end > len(l.recs) {
		end = len(l.recs)
	}
	out := make([]Record, end-idx)
	copy(out, l.recs[idx:end])
	return out, true
}

// Trim discards records with Seq <= upto, returning how many were
// dropped. Callers must not trim past the minimum acknowledged sequence
// across subscribers (Source.GC enforces it).
func (l *Oplog) Trim(upto uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upto <= l.base {
		return 0
	}
	n := int(upto - l.base)
	if n > len(l.recs) {
		n = len(l.recs)
	}
	for _, r := range l.recs[:n] {
		l.bytes -= int64(r.Bytes)
	}
	l.recs = append([]Record(nil), l.recs[n:]...)
	l.base += uint64(n)
	l.trimmed += int64(n)
	return n
}

// Tip returns the highest appended sequence (0 when empty and untrimmed).
func (l *Oplog) Tip() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// Base returns the trimmed-away prefix boundary: the lowest readable
// sequence is Base()+1.
func (l *Oplog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Len returns the number of retained records.
func (l *Oplog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Bytes returns the approximate retained wire bytes.
func (l *Oplog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Trimmed returns the cumulative count of GC'd records.
func (l *Oplog) Trimmed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trimmed
}
