package repl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/clock"
	"mantle/internal/faults"
	"mantle/internal/netsim"
	"mantle/internal/storage"
	"mantle/internal/types"
)

func putRec(shard int, seq uint64, ts clock.Timestamp, pid uint64, name string, id uint64) Record {
	m := storage.Mutation{
		Kind:  storage.MutPut,
		Key:   types.Key{Pid: types.InodeID(pid), Name: name},
		Entry: types.Entry{Pid: types.InodeID(pid), Name: name, ID: types.InodeID(id), Kind: types.KindObject},
	}
	return Record{Shard: shard, Seq: seq, HLC: ts, Pieces: 1,
		Muts: []storage.Mutation{m}, Bytes: storage.BatchBytes([]storage.Mutation{m})}
}

// sink collects applied batches per shard for assertion.
type sink struct {
	mu      sync.Mutex
	applied map[int][]storage.Mutation
}

func newSink() *sink { return &sink{applied: make(map[int][]storage.Mutation)} }

func (s *sink) apply(shard int, muts []storage.Mutation) error {
	s.mu.Lock()
	s.applied[shard] = append(s.applied[shard], muts...)
	s.mu.Unlock()
	return nil
}

func (s *sink) count(shard int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applied[shard])
}

// values returns the entry IDs applied on shard, in apply order.
func (s *sink) values(shard int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.applied[shard]))
	for _, m := range s.applied[shard] {
		out = append(out, uint64(m.Entry.ID))
	}
	return out
}

func TestOplogReadTrim(t *testing.T) {
	var l Oplog
	clk := clock.New(1)
	for seq := uint64(1); seq <= 10; seq++ {
		l.Append(putRec(0, seq, clk.Now(), 1, fmt.Sprintf("n%d", seq), seq))
	}
	recs, ok := l.ReadFrom(1, 4)
	if !ok || len(recs) != 4 || recs[0].Seq != 1 || recs[3].Seq != 4 {
		t.Fatalf("ReadFrom(1,4) = %d recs ok=%v", len(recs), ok)
	}
	if n := l.Trim(6); n != 6 {
		t.Fatalf("Trim(6) dropped %d", n)
	}
	if _, ok := l.ReadFrom(3, 0); ok {
		t.Fatal("ReadFrom below base must report a gap")
	}
	recs, ok = l.ReadFrom(7, 0)
	if !ok || len(recs) != 4 || recs[0].Seq != 7 {
		t.Fatalf("ReadFrom(7) after trim = %d recs ok=%v", len(recs), ok)
	}
	if l.Tip() != 10 || l.Base() != 6 || l.Len() != 4 {
		t.Fatalf("tip=%d base=%d len=%d", l.Tip(), l.Base(), l.Len())
	}
	// Trimming past the tip clamps.
	if n := l.Trim(100); n != 4 {
		t.Fatalf("Trim(100) dropped %d", n)
	}
	if l.Bytes() != 0 {
		t.Fatalf("empty oplog retains %d bytes", l.Bytes())
	}
}

func TestApplierOrderAndDedup(t *testing.T) {
	sk := newSink()
	a := NewApplier(2, 1, sk.apply)
	clk := clock.New(1)
	r1 := putRec(0, 1, clk.Now(), 1, "a", 10)
	r2 := putRec(0, 2, clk.Now(), 1, "b", 11)
	r3 := putRec(0, 3, clk.Now(), 1, "c", 12)
	// Out-of-order arrival: 3 buffers until 1 and 2 land.
	if err := a.Offer([]Record{r3}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 0 {
		t.Fatal("record 3 applied ahead of the frontier")
	}
	if err := a.Offer([]Record{r1, r2}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 3 {
		t.Fatalf("applied %d muts, want 3", sk.count(0))
	}
	// Redelivery of the whole window is dropped silently.
	if err := a.Offer([]Record{r1, r2, r3}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 3 {
		t.Fatalf("duplicates re-applied: %d muts", sk.count(0))
	}
	w := a.Watermarks()
	if w.Shards[0].AppliedSeq != 3 || w.Applied != 3 {
		t.Fatalf("watermarks %+v", w)
	}
}

func TestApplierLWWConflict(t *testing.T) {
	sk := newSink()
	a := NewApplier(2, 1, sk.apply)
	late := clock.Timestamp{Wall: 100, Logical: 0, Site: 1}
	early := clock.Timestamp{Wall: 50, Logical: 9, Site: 3}
	// Newer timestamp arrives first (lower seq); the older write to the
	// same key must be LWW-skipped even though its seq is higher.
	if err := a.Offer([]Record{putRec(0, 1, late, 1, "x", 10)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer([]Record{putRec(0, 2, early, 1, "x", 11)}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 1 {
		t.Fatalf("stale write applied: %d muts", sk.count(0))
	}
	w := a.Watermarks()
	if w.Conflicts != 1 {
		t.Fatalf("conflicts=%d, want 1", w.Conflicts)
	}
	if w.Shards[0].AppliedSeq != 2 {
		t.Fatal("LWW skip must still advance the frontier")
	}
	// Equal timestamps do not replace (Less is strict).
	if err := a.Offer([]Record{putRec(0, 3, late, 1, "x", 12)}); err != nil {
		t.Fatal(err)
	}
	if w := a.Watermarks(); w.Conflicts != 2 {
		t.Fatalf("equal-HLC write applied: conflicts=%d", w.Conflicts)
	}
}

func TestApplierAtomicTxn(t *testing.T) {
	sk := newSink()
	a := NewApplier(2, 2, sk.apply)
	clk := clock.New(1)
	ts := clk.Now()
	p0 := putRec(0, 1, ts, 1, "dir", 10)
	p0.TxnID, p0.Pieces = "txn-1#0", 2
	p1 := putRec(1, 1, ts, 10, "..", 1)
	p1.TxnID, p1.Pieces = "txn-1#0", 2
	// Only one piece arrived: nothing applies, even though it sits at
	// shard 0's frontier.
	if err := a.Offer([]Record{p0}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 0 {
		t.Fatal("txn piece applied before all pieces arrived")
	}
	if w := a.Watermarks(); w.Pending != 1 {
		t.Fatalf("pending=%d", w.Pending)
	}
	if err := a.Offer([]Record{p1}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 1 || sk.count(1) != 1 {
		t.Fatalf("txn pieces applied %d/%d", sk.count(0), sk.count(1))
	}
	if w := a.Watermarks(); w.Pending != 0 {
		t.Fatal("pending txn not cleared after apply")
	}
}

func TestApplierTxnBehindSingleton(t *testing.T) {
	// A complete txn whose sibling piece sits past a not-yet-arrived
	// record must wait (the gap's keys are unknown); once the singleton
	// lands, both apply and the frontier is contiguous.
	sk := newSink()
	a := NewApplier(2, 2, sk.apply)
	clk := clock.New(1)
	ts := clk.Now()
	p0 := putRec(0, 2, ts, 1, "t", 10)
	p0.TxnID, p0.Pieces = "tx#0", 2
	p1 := putRec(1, 1, ts, 2, "t", 11)
	p1.TxnID, p1.Pieces = "tx#0", 2
	s0 := putRec(0, 1, clk.Now(), 1, "s", 12)
	if err := a.Offer([]Record{p0, p1}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 0 || sk.count(1) != 0 {
		t.Fatal("txn applied across a delivery gap")
	}
	if err := a.Offer([]Record{s0}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 2 || sk.count(1) != 1 {
		t.Fatalf("applied %d/%d after the gap closed", sk.count(0), sk.count(1))
	}
	w := a.Watermarks()
	if w.Shards[0].AppliedSeq != 2 || w.Shards[1].AppliedSeq != 1 {
		t.Fatalf("watermarks %+v", w)
	}
}

func TestApplierOppositeCommitOrders(t *testing.T) {
	// Two 2PC txns committed in opposite orders on two shards: T is
	// (shard0 seq1, shard1 seq2), U is (shard1 seq1, shard0 seq2). A
	// frontier-order-only applier deadlocks here; with disjoint keys the
	// sibling pieces may jump, and both txns must apply.
	sk := newSink()
	a := NewApplier(2, 2, sk.apply)
	clk := clock.New(1)
	tsT, tsU := clk.Now(), clk.Now()
	t0 := putRec(0, 1, tsT, 1, "t", 10)
	t1 := putRec(1, 2, tsT, 2, "t", 11)
	t0.TxnID, t0.Pieces = "T#0", 2
	t1.TxnID, t1.Pieces = "T#0", 2
	u0 := putRec(1, 1, tsU, 3, "u", 20)
	u1 := putRec(0, 2, tsU, 4, "u", 21)
	u0.TxnID, u0.Pieces = "U#0", 2
	u1.TxnID, u1.Pieces = "U#0", 2
	if err := a.Offer([]Record{t0, t1, u0, u1}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 2 || sk.count(1) != 2 {
		t.Fatalf("opposite-order txns stuck: applied %d/%d", sk.count(0), sk.count(1))
	}
	w := a.Watermarks()
	if w.Shards[0].AppliedSeq != 2 || w.Shards[1].AppliedSeq != 2 || w.Pending != 0 {
		t.Fatalf("watermarks %+v", w)
	}
}

func TestApplierJumpBlockedByKeyConflict(t *testing.T) {
	// Txn T's sibling piece on shard1 would jump over an incomplete txn
	// U's piece that writes the SAME key — the jump must wait, or the two
	// sites would interleave same-key mutations differently. After U
	// completes, both apply in shard1 sequence order: U's value first.
	sk := newSink()
	a := NewApplier(2, 2, sk.apply)
	clk := clock.New(1)
	tsU, tsT := clk.Now(), clk.Now()
	u0 := putRec(1, 1, tsU, 9, "k", 100)
	u1 := putRec(0, 2, tsU, 9, "other", 101)
	u0.TxnID, u0.Pieces = "U#0", 2
	u1.TxnID, u1.Pieces = "U#0", 2
	t0 := putRec(0, 1, tsT, 5, "t", 110)
	t1 := putRec(1, 2, tsT, 9, "k", 111)
	t0.TxnID, t0.Pieces = "T#0", 2
	t1.TxnID, t1.Pieces = "T#0", 2
	// T fully arrives; only U's conflicting shard1 piece has arrived.
	if err := a.Offer([]Record{u0, t0, t1}); err != nil {
		t.Fatal(err)
	}
	if sk.count(1) != 0 {
		t.Fatalf("txn jumped a same-key record: %d muts on shard1", sk.count(1))
	}
	if err := a.Offer([]Record{u1}); err != nil {
		t.Fatal(err)
	}
	if sk.count(0) != 2 || sk.count(1) != 2 {
		t.Fatalf("applied %d/%d after conflict cleared", sk.count(0), sk.count(1))
	}
	vals := sk.values(1)
	if len(vals) != 2 || vals[0] != 100 || vals[1] != 111 {
		t.Fatalf("shard1 same-key apply order %v, want [100 111]", vals)
	}
	if w := a.Watermarks(); w.Pending != 0 || w.Shards[1].AppliedSeq != 2 {
		t.Fatalf("watermarks %+v", w)
	}
}

func TestApplierFinalizeDiscards(t *testing.T) {
	sk := newSink()
	a := NewApplier(2, 1, sk.apply)
	clk := clock.New(1)
	// Gap at seq 1: record 2 can never apply.
	if err := a.Offer([]Record{putRec(0, 2, clk.Now(), 1, "x", 10)}); err != nil {
		t.Fatal(err)
	}
	if n := a.Finalize(); n != 1 {
		t.Fatalf("Finalize discarded %d, want 1", n)
	}
	if err := a.Offer([]Record{putRec(0, 1, clk.Now(), 1, "y", 11)}); err == nil {
		t.Fatal("Offer after Finalize must fail")
	}
	if n := a.Finalize(); n != 1 {
		t.Fatalf("second Finalize reported %d", n)
	}
}

func TestSourceTxnStamping(t *testing.T) {
	s := NewSource(1, 2)
	s.StampTxn("t#0", 2)
	s.Commit(0, 1, "t#0", []storage.Mutation{{Kind: storage.MutPut, Key: types.Key{Pid: 1, Name: "a"}}})
	s.Commit(1, 1, "t#0", []storage.Mutation{{Kind: storage.MutPut, Key: types.Key{Pid: 2, Name: "b"}}})
	r0, _ := s.Log(0).ReadFrom(1, 0)
	r1, _ := s.Log(1).ReadFrom(1, 0)
	if len(r0) != 1 || len(r1) != 1 {
		t.Fatal("missing oplog records")
	}
	if r0[0].HLC != r1[0].HLC {
		t.Fatalf("txn pieces carry different HLCs: %v vs %v", r0[0].HLC, r1[0].HLC)
	}
	if r0[0].Pieces != 2 || r1[0].Pieces != 2 {
		t.Fatal("piece count not propagated")
	}
	// The stamp is consumed after all pieces commit.
	s.Commit(0, 2, "t#0", nil)
	r0, _ = s.Log(0).ReadFrom(2, 0)
	if r0[0].Pieces != 1 {
		t.Fatal("consumed stamp reused")
	}
	// ForgetTxn clears an aborted attempt's stamp.
	s.StampTxn("dead#0", 3)
	s.ForgetTxn("dead#0")
	s.Commit(0, 3, "dead#0", nil)
	r0, _ = s.Log(0).ReadFrom(3, 0)
	if r0[0].Pieces != 1 {
		t.Fatal("forgotten stamp still applied")
	}
}

func TestLinkShipsAndSurvivesBlackhole(t *testing.T) {
	fab := netsim.NewFabric(netsim.Config{RTT: 0})
	node := netsim.NewNode("site-b", 0)
	inj := faults.New(7)
	inj.Attach(fab, node)

	src := NewSource(1, 2)
	sk := newSink()
	app := NewApplier(2, 2, sk.apply)

	link := StartLink(LinkConfig{
		Source:   src,
		Offer:    app.Offer,
		Fabric:   fab,
		Node:     node,
		SrcName:  "site-a",
		Interval: 200 * time.Microsecond,
		BatchMax: 8,
	})
	defer link.Stop()

	commit := func(shard int, seq uint64, name string) {
		src.Commit(shard, seq, "", []storage.Mutation{{
			Kind:  storage.MutPut,
			Key:   types.Key{Pid: 1, Name: name},
			Entry: types.Entry{Pid: 1, Name: name, ID: types.InodeID(seq), Kind: types.KindObject},
		}})
	}
	var seq [2]uint64
	for i := 0; i < 40; i++ {
		sh := i % 2
		seq[sh]++
		commit(sh, seq[sh], fmt.Sprintf("pre%03d", i))
	}
	waitFor(t, time.Second, func() bool {
		w := app.Watermarks()
		return w.Shards[0].AppliedSeq == seq[0] && w.Shards[1].AppliedSeq == seq[1]
	})

	// Blackhole the secondary endpoint: commits accumulate as lag.
	inj.Blackhole("site-b")
	for i := 0; i < 20; i++ {
		sh := i % 2
		seq[sh]++
		commit(sh, seq[sh], fmt.Sprintf("dark%03d", i))
	}
	time.Sleep(5 * time.Millisecond)
	st := link.Stats()
	if st.LagEntries == 0 {
		t.Fatal("no lag while blackholed")
	}
	if st.Failures == 0 {
		t.Fatal("no failures recorded while blackholed")
	}

	// Heal: the link catches up from its acknowledged cursor.
	inj.Restore("site-b")
	waitFor(t, time.Second, func() bool {
		w := app.Watermarks()
		return w.Shards[0].AppliedSeq == seq[0] && w.Shards[1].AppliedSeq == seq[1]
	})
	if w := app.Watermarks(); w.Conflicts != 0 {
		t.Fatalf("conflicts on a single-writer stream: %d", w.Conflicts)
	}
	if st := link.Stats(); st.LagEntries != 0 {
		t.Fatalf("lag %d after convergence", st.LagEntries)
	}

	// GC past the acknowledged watermark, then verify the link reports
	// no gap (cursor is ahead of the trim horizon).
	if n := src.GC(link.Acked()); n == 0 {
		t.Fatal("GC trimmed nothing")
	}
	time.Sleep(2 * time.Millisecond)
	if st := link.Stats(); st.Gapped {
		t.Fatal("GC at the acked watermark must not gap the link")
	}
}

func TestLinkGapAfterOverTrim(t *testing.T) {
	fab := netsim.NewFabric(netsim.Config{})
	node := netsim.NewNode("b", 0)
	src := NewSource(1, 1)
	for seq := uint64(1); seq <= 5; seq++ {
		src.Commit(0, seq, "", nil)
	}
	// Trim beyond any subscriber cursor before the link starts.
	src.Log(0).Trim(5)
	sk := newSink()
	app := NewApplier(2, 1, sk.apply)
	link := StartLink(LinkConfig{
		Source: src, Offer: app.Offer, Fabric: fab, Node: node,
		SrcName: "a", Interval: 100 * time.Microsecond,
	})
	defer link.Stop()
	waitFor(t, time.Second, func() bool { return link.Stats().Gapped })
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached before deadline")
}
