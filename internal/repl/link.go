package repl

import (
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/rpc"
)

// LinkConfig parameterises a replication link from a primary Source to
// a secondary site.
type LinkConfig struct {
	// Source is the primary-site oplog feed.
	Source *Source
	// Offer lands one batch of records on the secondary (normally the
	// Applier's Offer, possibly wrapped).
	Offer func(recs []Record) error
	// Fabric is the inter-site network the shipped batches cross; the
	// chaos tests install fault injectors on it.
	Fabric *netsim.Fabric
	// Node is the secondary's replication endpoint: batches are charged
	// as CPU service time there, and its name is fault-targetable.
	Node *netsim.Node
	// SrcName names the primary's sending endpoint for edge-scoped
	// fault rules (blackholing it severs the link).
	SrcName string
	// Cost is the CPU service time per shipped batch on Node.
	Cost time.Duration
	// BatchMax bounds records per shipped batch (default 256).
	BatchMax int
	// Interval is the pump period (default 500µs).
	Interval time.Duration
	// Cursor, when non-nil, seeds the per-shard acknowledged sequences
	// (snapshot bootstrap resumes past the cut).
	Cursor []uint64
}

// Link asynchronously pumps oplog records to the secondary. One
// goroutine walks the shards every Interval, shipping batches in
// sequence order and advancing per-shard cursors on acknowledgment;
// fabric failures (drops, blackholes, partitions) leave the cursor in
// place, so delivery is at-least-once and the Applier deduplicates.
type Link struct {
	cfg    LinkConfig
	caller *rpc.Caller

	mu    sync.Mutex
	acked []uint64

	shipped   atomic.Int64
	shippedBy atomic.Int64
	failures  atomic.Int64
	gapped    atomic.Bool // cursor fell behind the oplog GC horizon

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartLink builds and starts a link.
func StartLink(cfg LinkConfig) *Link {
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 256
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Microsecond
	}
	l := &Link{
		cfg:    cfg,
		caller: rpc.NewCaller(cfg.Fabric),
		acked:  make([]uint64, cfg.Source.Shards()),
		stop:   make(chan struct{}),
	}
	copy(l.acked, cfg.Cursor)
	l.wg.Add(1)
	go l.pump()
	return l
}

// Stop halts the pump (failover, teardown). Idempotent.
func (l *Link) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}

func (l *Link) pump() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
		}
		l.pumpOnce()
	}
}

// pumpOnce ships every shard's backlog until empty or the site becomes
// unreachable (then it gives up until the next tick — the backoff that
// keeps a blackholed link from spinning).
func (l *Link) pumpOnce() {
	src := l.cfg.Source
	for si := 0; si < src.Shards(); si++ {
		for {
			l.mu.Lock()
			from := l.acked[si] + 1
			l.mu.Unlock()
			recs, ok := src.Log(si).ReadFrom(from, l.cfg.BatchMax)
			if !ok {
				// The oplog was trimmed past our cursor: this subscriber
				// can no longer catch up from the log and needs a
				// snapshot bootstrap. Surface it and stop shipping the
				// shard rather than silently skipping records.
				l.gapped.Store(true)
				break
			}
			if len(recs) == 0 {
				break
			}
			var bytes int64
			for i := range recs {
				bytes += int64(recs[i].Bytes)
			}
			err := l.caller.Do(l.cfg.Node, l.cfg.Cost,
				rpc.CallOpts{Src: l.cfg.SrcName, Bytes: bytes},
				func() error { return l.cfg.Offer(recs) })
			if err != nil {
				l.failures.Add(1)
				return
			}
			l.mu.Lock()
			l.acked[si] = recs[len(recs)-1].Seq
			l.mu.Unlock()
			l.shipped.Add(int64(len(recs)))
			l.shippedBy.Add(bytes)
			if len(recs) < l.cfg.BatchMax {
				break
			}
		}
	}
}

// Acked returns the per-shard acknowledged sequences (the oplog GC low
// watermark for this subscriber).
func (l *Link) Acked() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, len(l.acked))
	copy(out, l.acked)
	return out
}

// LinkStats is the link-side replication accounting.
type LinkStats struct {
	Shipped      int64 // records acknowledged by the secondary
	ShippedBytes int64
	Failures     int64 // shipping rounds abandoned on fabric errors
	LagEntries   int64 // oplog tip minus acknowledged, summed
	LagBytes     int64 // retained-but-unacked oplog bytes (approximate)
	Gapped       bool  // cursor fell behind oplog GC; bootstrap needed
}

// Stats snapshots the link accounting, deriving lag from the source's
// current tips.
func (l *Link) Stats() LinkStats {
	st := LinkStats{
		Shipped:      l.shipped.Load(),
		ShippedBytes: l.shippedBy.Load(),
		Failures:     l.failures.Load(),
		Gapped:       l.gapped.Load(),
	}
	src := l.cfg.Source
	l.mu.Lock()
	for si := 0; si < src.Shards() && si < len(l.acked); si++ {
		log := src.Log(si)
		tip := log.Tip()
		if tip > l.acked[si] {
			st.LagEntries += int64(tip - l.acked[si])
		}
	}
	l.mu.Unlock()
	if st.LagEntries > 0 {
		// Approximate: retained bytes scale with retained records.
		s := src.Stats()
		if s.Records > 0 {
			st.LagBytes = s.Bytes * st.LagEntries / int64(s.Records)
		}
	}
	return st
}
