package repl

import (
	"fmt"
	"sync"

	"mantle/internal/clock"
	"mantle/internal/storage"
	"mantle/internal/types"
)

// Applier is the secondary-site half of the replication plane: it
// receives shipped records and applies them to the secondary's shards,
// with three properties:
//
//   - Cross-shard transactions apply atomically: a multi-piece record
//     waits until every piece has arrived, then all pieces apply
//     together, so a promoted secondary never sees a torn mkdir or
//     rename.
//   - Conflicts resolve last-writer-wins on the HLC: a row write whose
//     timestamp does not exceed the row's recorded version is skipped
//     and counted. Attribute deltas (link-count increments) are
//     commutative and apply exactly-once instead.
//   - Each shard applies in sequence order, with one exception: a
//     complete transaction's sibling pieces may jump ahead of buffered
//     records on their shards (two 2PCs can commit in opposite orders
//     on two shards, so strict per-shard order for every piece can
//     deadlock). A jump is allowed only over records touching disjoint
//     keys, so per-key apply order always matches the primary's commit
//     order; on a key conflict the transaction waits — deadlock-free,
//     because the conflicting jumped record always carries a lower HLC.
//     The exported watermark stays the contiguous frontier — the
//     sequence below which everything has applied.
//
// Precondition flags (IfAbsent/MustExist/WantKind) are stripped before
// applying, so re-delivered batches and LWW-filtered interleavings
// never fail the relaxed apply path.
type Applier struct {
	clk   *clock.Clock
	apply func(shard int, muts []storage.Mutation) error

	mu        sync.Mutex
	shards    []*applyShard
	pending   map[string]*pendingTxn
	applied   int64
	muts      int64
	conflicts int64
	discarded int64
	finalized bool
}

type applyShard struct {
	// nextSeq is the contiguous apply frontier: every record below it
	// has applied. buf holds arrived-but-unapplied records; done marks
	// records applied above the frontier (ahead of a still-incomplete
	// transaction), absorbed into nextSeq as the gap closes.
	nextSeq    uint64
	buf        map[uint64]Record
	done       map[uint64]bool
	appliedHLC clock.Timestamp
	// vers is the LWW sidecar: the HLC of the last applied write per
	// row, tombstones included (deletes keep their entry so a late
	// out-of-order write cannot resurrect the row).
	vers map[types.Key]clock.Timestamp
}

type pendingTxn struct {
	need int
	recs []Record
}

// NewApplier creates an applier for a secondary with the given shard
// count; apply lands one filtered batch on one secondary shard. site
// feeds the secondary's HLC (advanced past every applied record's
// timestamp, so post-promotion writes sort after replicated history).
func NewApplier(site uint16, shards int, apply func(shard int, muts []storage.Mutation) error) *Applier {
	a := &Applier{
		clk:     clock.New(site),
		apply:   apply,
		shards:  make([]*applyShard, shards),
		pending: make(map[string]*pendingTxn),
	}
	for i := range a.shards {
		a.shards[i] = &applyShard{
			nextSeq: 1,
			buf:     make(map[uint64]Record),
			done:    make(map[uint64]bool),
			vers:    make(map[types.Key]clock.Timestamp),
		}
	}
	return a
}

// Clock exposes the secondary's site clock.
func (a *Applier) Clock() *clock.Clock { return a.clk }

// SetCursor positions shard's apply frontier just past seq — the
// snapshot-bootstrap entry point: after loading a cut that covers
// sequence seq, replication resumes at seq+1.
func (a *Applier) SetCursor(shard int, seq uint64) {
	a.mu.Lock()
	a.shards[shard].nextSeq = seq + 1
	a.mu.Unlock()
}

// Offer ingests a batch of shipped records (per-shard sequence order,
// as the link delivers them), buffers them, and drains every record
// that has become applicable. Records already applied are duplicates
// from a link retry and are dropped silently, so at-least-once delivery
// is safe. Returns the first apply error (the link will re-offer from
// its acknowledged cursor).
func (a *Applier) Offer(recs []Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finalized {
		return fmt.Errorf("repl: applier finalized (site promoted)")
	}
	for _, r := range recs {
		if r.Shard < 0 || r.Shard >= len(a.shards) {
			return fmt.Errorf("repl: record for unknown shard %d", r.Shard)
		}
		sh := a.shards[r.Shard]
		if r.Seq < sh.nextSeq || sh.done[r.Seq] {
			continue // duplicate of an applied record
		}
		if _, dup := sh.buf[r.Seq]; dup {
			continue
		}
		sh.buf[r.Seq] = r
		if r.Pieces > 1 {
			pt, ok := a.pending[r.TxnID]
			if !ok {
				pt = &pendingTxn{need: r.Pieces}
				a.pending[r.TxnID] = pt
			}
			pt.recs = append(pt.recs, r)
		}
	}
	return a.drainLocked()
}

// drainLocked applies every applicable buffered record until no shard
// can make progress. Each shard scans from its contiguous frontier in
// sequence order and stops at the first gap, incomplete transaction, or
// key-obstructed transaction; applying a complete transaction lands its
// sibling pieces on their shards out of order (marked done and absorbed
// when the frontier catches up).
func (a *Applier) drainLocked() error {
	for progress := true; progress; {
		progress = false
		for si, sh := range a.shards {
			for {
				seq := sh.nextSeq
				if sh.done[seq] {
					// Sibling piece applied ahead by another shard's scan.
					delete(sh.done, seq)
					sh.nextSeq++
					continue
				}
				r, ok := sh.buf[seq]
				if !ok {
					break // not yet arrived
				}
				if r.Pieces > 1 {
					pt := a.pending[r.TxnID]
					if pt == nil || len(pt.recs) < pt.need || !a.txnUnobstructedLocked(si, pt) {
						break
					}
					for _, piece := range pt.recs {
						if err := a.applyRecordLocked(piece); err != nil {
							return err
						}
					}
					delete(a.pending, r.TxnID)
					progress = true
					continue
				}
				if err := a.applyRecordLocked(r); err != nil {
					return err
				}
				progress = true
			}
		}
	}
	return nil
}

// txnUnobstructedLocked reports whether the complete transaction pt may
// apply from shard home's frontier scan. Every sibling piece on another
// shard jumps the buffered records between that shard's frontier and the
// piece; the jump is legal only when those records touch none of the
// piece's keys. Per-key apply order must match the primary's per-shard
// commit order, or an absolute row write and a commutative attribute
// delta interleave differently on the two sites (double-counting or
// losing an increment). Waiting on a conflict cannot deadlock: the
// primary's per-key locks serialized the jumped record first, so its
// HLC is strictly lower — wait edges always point down the HLC order.
func (a *Applier) txnUnobstructedLocked(home int, pt *pendingTxn) bool {
	for _, piece := range pt.recs {
		if piece.Shard == home {
			continue
		}
		sh := a.shards[piece.Shard]
		if piece.Seq <= sh.nextSeq {
			continue
		}
		var keys map[types.Key]struct{}
		for w := sh.nextSeq; w < piece.Seq; w++ {
			if sh.done[w] {
				continue // already applied ahead of the frontier
			}
			jumped, ok := sh.buf[w]
			if !ok {
				return false // gap below the piece: wait for delivery
			}
			if keys == nil {
				keys = make(map[types.Key]struct{}, len(piece.Muts))
				for _, m := range piece.Muts {
					keys[m.Key] = struct{}{}
				}
			}
			for _, m := range jumped.Muts {
				if _, hit := keys[m.Key]; hit {
					return false
				}
			}
		}
	}
	return true
}

// applyRecordLocked LWW-filters one record and lands it on its shard,
// advancing the frontier (or marking the slot done when the record
// applied ahead of a gap) and the applied watermarks.
func (a *Applier) applyRecordLocked(r Record) error {
	sh := a.shards[r.Shard]
	kept := make([]storage.Mutation, 0, len(r.Muts))
	for _, m := range r.Muts {
		if m.Kind == storage.MutDeltaAttr {
			// Commutative increment: exactly-once, order-free.
			m.MustExist = false
			kept = append(kept, m)
			continue
		}
		if prev, ok := sh.vers[m.Key]; ok && !prev.Less(r.HLC) {
			a.conflicts++
			continue
		}
		sh.vers[m.Key] = r.HLC
		m.IfAbsent = false
		m.MustExist = false
		m.WantKind = 0
		kept = append(kept, m)
	}
	if len(kept) > 0 {
		if err := a.apply(r.Shard, kept); err != nil {
			return err
		}
	}
	delete(sh.buf, r.Seq)
	if r.Seq == sh.nextSeq {
		sh.nextSeq++
		for sh.done[sh.nextSeq] {
			delete(sh.done, sh.nextSeq)
			sh.nextSeq++
		}
	} else {
		sh.done[r.Seq] = true
	}
	if sh.appliedHLC.Less(r.HLC) {
		sh.appliedHLC = r.HLC
	}
	a.clk.Observe(r.HLC)
	a.applied++
	a.muts += int64(len(kept))
	return nil
}

// Finalize freezes the applier for promotion: buffered records that
// never became applicable (incomplete transactions and any records the
// drain could not reach) are discarded and counted — they are the
// replicated-write loss window beyond the watermark. Returns the
// discard count. Idempotent; Offer fails afterwards.
func (a *Applier) Finalize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finalized {
		return int(a.discarded)
	}
	a.finalized = true
	for _, sh := range a.shards {
		a.discarded += int64(len(sh.buf))
		sh.buf = make(map[uint64]Record)
	}
	a.pending = make(map[string]*pendingTxn)
	return int(a.discarded)
}

// ShardMark is one shard's applied watermark.
type ShardMark struct {
	Shard int `json:"shard"`
	// AppliedSeq is the contiguous frontier: every record at or below
	// it has applied.
	AppliedSeq uint64          `json:"applied_seq"`
	AppliedHLC clock.Timestamp `json:"applied_hlc"`
	// Buffered counts arrived-but-unapplied records; Ahead counts
	// records applied above the frontier (past an incomplete
	// transaction's gap).
	Buffered int `json:"buffered"`
	Ahead    int `json:"ahead"`
}

// Watermarks is the applier-side replication state exposed on /status
// and /metrics.
type Watermarks struct {
	Shards []ShardMark `json:"shards"`
	// AppliedHLC is the lagging frontier: the minimum applied HLC
	// across shards that have applied anything (zero before any
	// replication).
	AppliedHLC clock.Timestamp `json:"applied_hlc"`
	Applied    int64           `json:"applied"`   // records applied
	Muts       int64           `json:"muts"`      // mutations applied (post-LWW)
	Conflicts  int64           `json:"conflicts"` // LWW-skipped mutations
	Pending    int             `json:"pending"`   // cross-shard transactions awaiting pieces
	Discarded  int64           `json:"discarded"` // records dropped at Finalize (loss window)
}

// Watermarks snapshots the applied state.
func (a *Applier) Watermarks() Watermarks {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := Watermarks{
		Shards:    make([]ShardMark, len(a.shards)),
		Applied:   a.applied,
		Muts:      a.muts,
		Conflicts: a.conflicts,
		Pending:   len(a.pending),
		Discarded: a.discarded,
	}
	for i, sh := range a.shards {
		w.Shards[i] = ShardMark{
			Shard:      i,
			AppliedSeq: sh.nextSeq - 1,
			AppliedHLC: sh.appliedHLC,
			Buffered:   len(sh.buf),
			Ahead:      len(sh.done),
		}
		if !sh.appliedHLC.IsZero() && (w.AppliedHLC.IsZero() || sh.appliedHLC.Less(w.AppliedHLC)) {
			w.AppliedHLC = sh.appliedHLC
		}
	}
	return w
}

// AppliedSeqs returns each shard's contiguous applied sequence (the
// bootstrap/GC watermark vector).
func (a *Applier) AppliedSeqs() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]uint64, len(a.shards))
	for i, sh := range a.shards {
		out[i] = sh.nextSeq - 1
	}
	return out
}
