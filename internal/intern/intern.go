// Package intern implements a concurrency-safe string interning table
// for path components and other short, heavily repeated names. A
// namespace of tens of millions of entries holds only a few thousand
// distinct component names (mdtest-style "f000017", per-level "d4"
// directories, application prefixes), yet the naive representation keeps
// one heap-allocated copy per row — across TafDB row keys, IndexNode's
// AccessEntry table, and the proxy/TopDir cache keys. Interning collapses
// those copies to one shared backing string, which is a first-order term
// in resident bytes/entry at the Figure-19a scale sweep's sizes.
//
// Ownership rules (see DESIGN.md §10):
//
//   - The table is append-only: an interned string is immortal for the
//     process lifetime. Callers therefore intern only *bounded
//     vocabularies* — component names, not whole paths with unbounded
//     cardinality, and never names above MaxLen or the "\x00"-prefixed
//     internal row names (whose timestamp suffixes are unique by
//     construction).
//   - Interned strings are plain Go strings; callers may retain them
//     forever and compare them with == like any other string.
//   - Intern never blocks writers behind readers on the hot path: the
//     table is sharded 64 ways and hits take only a shard read-lock.
package intern

import (
	"sync"
	"sync/atomic"
)

// MaxLen is the longest string worth interning. Longer names are almost
// certainly unique (UUIDs, content hashes); interning them would grow
// the append-only table without any sharing in return. Intern returns
// such strings unchanged.
const MaxLen = 64

const shards = 64

// Table is a sharded intern table. The zero value is not usable; create
// tables with NewTable. Most callers use the package-level Intern /
// InternBytes on the shared Default table.
type Table struct {
	shards [shards]shard

	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64 // backing bytes held by distinct interned strings
}

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewTable creates an empty intern table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]string)
	}
	return t
}

// fnv1a hashes s for shard selection.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Intern returns the canonical shared copy of s, inserting it on first
// sight. Strings longer than MaxLen and the empty string are returned
// unchanged without touching the table.
func (t *Table) Intern(s string) string {
	if len(s) == 0 || len(s) > MaxLen {
		return s
	}
	sh := &t.shards[fnv1a(s)%shards]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		// Re-allocate the key so the canonical copy never pins a larger
		// string the argument may be a substring of.
		c = string(append([]byte(nil), s...))
		sh.m[c] = c
		t.bytes.Add(int64(len(c)))
		t.misses.Add(1)
	} else {
		t.hits.Add(1)
	}
	sh.mu.Unlock()
	return c
}

// InternBytes returns the canonical string for the byte content of b
// without allocating on the hit path (the map lookup by string(b) is
// allocation-free in Go).
func (t *Table) InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > MaxLen {
		return string(b)
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	sh := &t.shards[h%shards]
	sh.mu.RLock()
	c, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return c
	}
	return t.Intern(string(b))
}

// Len returns the number of distinct interned strings.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats is a snapshot of the table's accounting.
type Stats struct {
	Strings int   // distinct interned strings
	Bytes   int64 // backing bytes held by them
	Hits    int64 // Intern calls answered with an existing copy
	Misses  int64 // Intern calls that inserted
}

// Stats snapshots the table.
func (t *Table) Stats() Stats {
	return Stats{
		Strings: t.Len(),
		Bytes:   t.bytes.Load(),
		Hits:    t.hits.Load(),
		Misses:  t.misses.Load(),
	}
}

// Default is the process-wide table shared by the metadata stores. One
// table (not one per shard or replica) maximises cross-component
// sharing: a TafDB row key and its IndexNode AccessEntry name resolve to
// the same backing bytes.
var Default = NewTable()

// Intern interns s in the Default table.
func Intern(s string) string { return Default.Intern(s) }

// InternBytes interns b's content in the Default table.
func InternBytes(b []byte) string { return Default.InternBytes(b) }
