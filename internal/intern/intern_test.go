package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestInternDedup(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("hello")
	// Build an equal string with different backing bytes.
	b := tb.Intern(string([]byte("hello")))
	if a != "hello" || b != "hello" {
		t.Fatalf("intern corrupted content: %q %q", a, b)
	}
	if &a == &b {
		t.Fatal("test is vacuous")
	}
	// Same canonical backing: unsafe-free check via the table's own
	// accounting — two inserts of equal content must count one miss.
	if got := tb.Stats(); got.Misses != 1 || got.Hits != 1 || got.Strings != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 string", got)
	}
}

func TestInternSkipsLongAndEmpty(t *testing.T) {
	tb := NewTable()
	if got := tb.Intern(""); got != "" {
		t.Fatalf("empty: %q", got)
	}
	long := strings.Repeat("x", MaxLen+1)
	if got := tb.Intern(long); got != long {
		t.Fatalf("long mangled: %q", got)
	}
	if tb.Len() != 0 {
		t.Fatalf("table grew on skipped inputs: %d", tb.Len())
	}
	// Exactly MaxLen is interned.
	edge := strings.Repeat("y", MaxLen)
	tb.Intern(edge)
	if tb.Len() != 1 {
		t.Fatalf("MaxLen string not interned")
	}
}

func TestInternBytesNoCorruption(t *testing.T) {
	tb := NewTable()
	buf := []byte("component")
	s := tb.InternBytes(buf)
	// Mutating the caller's buffer after interning must not affect the
	// canonical copy.
	buf[0] = 'X'
	if s != "component" {
		t.Fatalf("canonical copy aliases caller buffer: %q", s)
	}
	if got := tb.InternBytes([]byte("component")); got != "component" {
		t.Fatalf("lookup after mutation: %q", got)
	}
}

func TestInternSubstringNotPinned(t *testing.T) {
	tb := NewTable()
	big := strings.Repeat("z", 1<<16) + "needle"
	s := tb.Intern(big[len(big)-6:])
	if s != "needle" {
		t.Fatalf("got %q", s)
	}
	if got := tb.Stats().Bytes; got != 6 {
		t.Fatalf("backing bytes = %d, want 6 (substring must be copied out)", got)
	}
}

// TestInternConcurrent is the -race stress test: many goroutines intern
// overlapping vocabularies through both entry points while readers
// snapshot stats. Invariants: content is never corrupted, and every
// distinct input maps to exactly one canonical string (checked by
// comparing string data pointers via map identity after the fact).
func TestInternConcurrent(t *testing.T) {
	tb := NewTable()
	const (
		goroutines = 16
		vocab      = 256
		rounds     = 200
	)
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("comp-%03d", i)
	}

	var wg sync.WaitGroup
	results := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, vocab)
			buf := make([]byte, 0, 16)
			for r := 0; r < rounds; r++ {
				for i, w := range words {
					var got string
					if (g+r+i)%2 == 0 {
						got = tb.Intern(string([]byte(w)))
					} else {
						buf = append(buf[:0], w...)
						got = tb.InternBytes(buf)
					}
					if got != w {
						panic(fmt.Sprintf("corrupted: got %q want %q", got, w))
					}
					out[i] = got
				}
				if r%50 == 0 {
					_ = tb.Stats()
					_ = tb.Len()
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	if got := tb.Len(); got != vocab {
		t.Fatalf("table has %d strings, want %d (dedup broken)", got, vocab)
	}
	st := tb.Stats()
	if st.Misses != vocab {
		t.Fatalf("misses = %d, want %d", st.Misses, vocab)
	}
	if st.Bytes != int64(vocab*len("comp-000")) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	// Every goroutine must have received the same canonical copies.
	for g := 1; g < goroutines; g++ {
		for i := range words {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d word %d diverged", g, i)
			}
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	tb := NewTable()
	tb.Intern("benchmark-component")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Intern("benchmark-component")
	}
}

func BenchmarkInternBytesHit(b *testing.B) {
	tb := NewTable()
	tb.Intern("benchmark-component")
	buf := []byte("benchmark-component")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.InternBytes(buf)
	}
}
