package raft

import (
	"fmt"
	"sync"
	"time"

	"mantle/internal/types"
)

var readWaitTimeout = 5 * time.Second

type readResult struct {
	idx uint64
	err error
}

// readState batches concurrent follower-read index queries into one
// leader RPC per round, as §5.1.3 describes ("queries for the commitIndex
// are batched"): readers that arrive while a query is in flight join the
// next round rather than each issuing their own RPC.
type readState struct {
	mu      sync.Mutex
	waiters []chan readResult
	running bool
}

// ReadIndex returns an index such that any read of state applied up to it
// is linearisable at the time of the call.
//
// On the leader this is the current commit index. (A production
// implementation confirms leadership with a heartbeat round first; in
// this single-process reproduction there are no network partitions, so a
// deposed leader observes its own step-down before serving — the
// simplification is documented in DESIGN.md.)
//
// On a follower or learner the replica queries the leader for its commit
// index through the read batcher; the caller then waits for local apply
// to catch up via WaitApplied.
func (r *Raft) ReadIndex() (uint64, error) {
	if r.stopped() {
		return 0, types.ErrStopped
	}
	r.mu.Lock()
	if r.role == Leader {
		idx := r.commitIndex
		r.mu.Unlock()
		return idx, nil
	}
	r.mu.Unlock()

	ch := make(chan readResult, 1)
	r.reads.mu.Lock()
	r.reads.waiters = append(r.reads.waiters, ch)
	if !r.reads.running {
		r.reads.running = true
		go r.serveReadBatches()
	}
	r.reads.mu.Unlock()

	select {
	case res := <-ch:
		return res.idx, res.err
	case <-r.stopCh:
		return 0, types.ErrStopped
	}
}

// serveReadBatches drains waiter rounds: one leader RPC per round, shared
// by every waiter that had arrived by the time the round started.
func (r *Raft) serveReadBatches() {
	for {
		r.reads.mu.Lock()
		waiters := r.reads.waiters
		r.reads.waiters = nil
		if len(waiters) == 0 {
			r.reads.running = false
			r.reads.mu.Unlock()
			return
		}
		r.reads.mu.Unlock()

		res := r.queryLeaderCommit()
		for _, ch := range waiters {
			ch <- res
		}
	}
}

// queryLeaderCommit issues one RPC to the current leader for its commit
// index.
func (r *Raft) queryLeaderCommit() readResult {
	r.mu.Lock()
	leaderID := r.leaderID
	r.mu.Unlock()
	if leaderID == "" {
		return readResult{err: types.ErrNotLeader}
	}
	leader, ok := r.peers[leaderID]
	if !ok {
		return readResult{err: types.ErrNotLeader}
	}
	if err := r.deliver(leader); err != nil {
		// Leader unreachable (partition or blackhole): surface the fabric
		// error so callers can distinguish "no leader known" from "leader
		// cut off" and degrade accordingly.
		return readResult{err: err}
	}
	if leader.stopped() {
		return readResult{err: types.ErrNotLeader}
	}
	if role, _, _ := leader.Status(); role != Leader {
		return readResult{err: types.ErrNotLeader}
	}
	return readResult{idx: leader.CommitIndex()}
}

// ConsistentRead performs fn once the replica is read-consistent: it
// obtains a ReadIndex and waits for local apply to reach it. Works on the
// leader, followers, and learners.
func (r *Raft) ConsistentRead(fn func() error) error {
	idx, err := r.ReadIndex()
	if err != nil {
		return err
	}
	if err := r.waitAppliedTimeout(idx, readWaitTimeout); err != nil {
		return err
	}
	return fn()
}

// ErrStale reports that a bounded-staleness read could not be served
// locally because the replica's last leader contact is older than the
// caller's staleness bound (partitioned or lagging replica). Callers
// fall back to a linearisable ConsistentRead.
var ErrStale = fmt.Errorf("raft: leader contact exceeds staleness bound: %w", types.ErrUnavailable)

// BoundedStaleRead performs fn at a bounded-staleness read point with no
// leader round trip: the replica uses the leader commit index advertised
// by the most recent AppendEntries/heartbeat exchange as its read index,
// provided that exchange happened within maxStale. After local apply
// catches up to that index, fn observes every write that was committed
// at the leader as of (now − maxStale) — the staleness promise — because
// the leader advertises its commit index on every exchange and exchanges
// are at most a heartbeat interval apart (configure maxStale comfortably
// above HeartbeatInterval).
//
// On the leader it degenerates to a local consistent read. On a replica
// without fresh leader contact it fails with ErrStale instead of serving
// data of unknown age.
func (r *Raft) BoundedStaleRead(maxStale time.Duration, fn func() error) error {
	if r.stopped() {
		return types.ErrStopped
	}
	r.mu.Lock()
	var idx uint64
	if r.role == Leader {
		idx = r.commitIndex
	} else {
		if r.staleContact.IsZero() || time.Since(r.staleContact) > maxStale {
			r.mu.Unlock()
			return ErrStale
		}
		idx = r.staleCommit
	}
	r.mu.Unlock()
	if err := r.waitAppliedTimeout(idx, readWaitTimeout); err != nil {
		return err
	}
	return fn()
}

// TransferLeadership asks the current leader to hand leadership to the
// named peer (§7.2 of the paper rebalances namespace leaders across a
// shared server pool, which needs exactly this). The leader waits
// briefly for the target to be fully caught up, then tells it to campaign
// immediately (the TimeoutNow message of Raft's leadership-transfer
// extension). Returns types.ErrNotLeader when called on a non-leader, or
// an error if the target is unknown, a learner, or cannot catch up.
func (r *Raft) TransferLeadership(targetID string) error {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return types.ErrNotLeader
	}
	target, ok := r.peers[targetID]
	if !ok || target.IsLearner() {
		r.mu.Unlock()
		return fmt.Errorf("raft: transfer target %q unknown or learner", targetID)
	}
	term := r.term
	r.mu.Unlock()

	// Wait (bounded) for the target to match our log.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.mu.Lock()
		last, _ := r.lastLogLocked()
		caughtUp := r.matchIndex[targetID] >= last
		stillLeader := r.role == Leader && r.term == term
		r.mu.Unlock()
		if !stillLeader {
			return types.ErrNotLeader
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("raft: transfer target %s cannot catch up", targetID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := r.deliver(target); err != nil {
		return fmt.Errorf("raft: transfer to %s: %w", targetID, err)
	}
	target.handleTimeoutNow(term)
	return nil
}

// handleTimeoutNow makes the replica campaign immediately (leadership
// transfer).
func (r *Raft) handleTimeoutNow(term uint64) {
	if r.stopped() || r.cfg.Learner {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if term < r.term {
		return
	}
	r.startElectionLocked()
}
