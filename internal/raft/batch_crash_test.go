package raft

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mantle/internal/types"
)

// TestFollowerCrashMidBatchAtomic crashes a follower while batched,
// pipelined replication is streaming log batches at it. The batch is
// the replication unit, so the crash must never split one: with the
// other follower alive the leader re-replicates whole batches to the
// quorum, every in-flight proposal commits, and the two survivors apply
// an identical sequence with no holes and no duplicates.
func TestFollowerCrashMidBatchAtomic(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, func(c *Config) {
		c.BatchEnabled = true
		c.Pipeline = true
		c.MaxBatch = 64
		c.FsyncCost = 100 * time.Microsecond
	})
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, each = 8, 30
	var wg sync.WaitGroup
	crashed := make(chan struct{})
	go func() {
		// Crash one follower while the proposal storm is mid-flight.
		time.Sleep(3 * time.Millisecond)
		for _, r := range rs {
			if r != leader {
				r.Stop()
				break
			}
		}
		close(crashed)
	}()
	errCh := make(chan error, goroutines*each)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := leader.ProposeTimeout([]byte(fmt.Sprintf("c%d-%d", g, i)), 5*time.Second); err != nil {
					errCh <- fmt.Errorf("proposal g%d-%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	<-crashed
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every proposal committed; survivors applied identical sequences.
	want := map[string]bool{}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < each; i++ {
			want[fmt.Sprintf("c%d-%d", g, i)] = true
		}
	}
	var survivors [][]string
	deadline := time.Now().Add(3 * time.Second)
	for {
		survivors = survivors[:0]
		for i, r := range rs {
			if !r.Stopped() {
				survivors = append(survivors, recs[i].snapshot())
			}
		}
		done := len(survivors) == 2
		for _, ap := range survivors {
			if len(ap) < len(want) {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(survivors) != 2 {
		t.Fatalf("survivors = %d, want 2", len(survivors))
	}
	for si, ap := range survivors {
		seen := map[string]int{}
		for _, cmd := range ap {
			seen[cmd]++
		}
		for cmd := range want {
			if seen[cmd] != 1 {
				t.Fatalf("survivor %d applied %q %d times, want exactly once (applied %d total)",
					si, cmd, seen[cmd], len(ap))
			}
		}
	}
	if fmt.Sprint(survivors[0]) != fmt.Sprint(survivors[1]) {
		t.Fatal("survivors applied different sequences")
	}
}

// TestQuorumLossFailsWholeBatch kills both followers, then fires a
// concurrent burst of proposals at the batching, pipelined leader. With
// no quorum the whole batch must fail together — every proposal returns
// an error and none of the burst's commands is ever applied.
func TestQuorumLossFailsWholeBatch(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, func(c *Config) {
		c.BatchEnabled = true
		c.Pipeline = true
		c.MaxBatch = 64
		c.FsyncCost = 100 * time.Microsecond
	})
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Commit one marker so the leader has post-election state.
	if _, err := leader.ProposeTimeout([]byte("marker"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	var leaderRec *recorder
	for i, r := range rs {
		if r == leader {
			leaderRec = recs[i]
		} else {
			r.Stop()
		}
	}

	const burst = 24
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = leader.ProposeTimeout([]byte(fmt.Sprintf("lost-%d", i)), 300*time.Millisecond)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("proposal %d committed without a quorum", i)
		}
		if !errors.Is(err, types.ErrTimeout) && !errors.Is(err, types.ErrNotLeader) {
			t.Fatalf("proposal %d error = %v, want timeout or not-leader", i, err)
		}
	}
	// Give any stray apply a moment, then check nothing from the burst
	// reached the state machine.
	time.Sleep(50 * time.Millisecond)
	for _, cmd := range leaderRec.snapshot() {
		if strings.HasPrefix(cmd, "lost-") {
			t.Fatalf("quorum-less proposal %q was applied", cmd)
		}
	}
}
