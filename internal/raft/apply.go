package raft

import (
	"fmt"
	"time"

	"mantle/internal/types"
)

func errNotLeader() error { return types.ErrNotLeader }

// Propose submits cmd to the leader's log and blocks until the entry is
// committed and applied on this replica, returning its log index. On a
// non-leader (or if leadership is lost mid-flight) it fails with
// types.ErrNotLeader and the caller retries against the current leader.
func (r *Raft) Propose(cmd []byte) (uint64, error) {
	return r.ProposeTimeout(cmd, 0)
}

// ProposeTimeout is Propose with a bound on how long the proposal may
// wait for commit (0 means forever). When the group has no reachable
// quorum — a partitioned leader keeps accepting proposals until
// check-quorum steps it down — the entry cannot commit; the timeout
// fails the call with types.ErrTimeout so the caller can fail fast
// instead of hanging. An abandoned entry may still commit later; callers
// that retry rely on command idempotence, as they already do across
// leader changes.
func (r *Raft) ProposeTimeout(cmd []byte, d time.Duration) (uint64, error) {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return 0, types.ErrNotLeader
	}
	r.mu.Unlock()
	var timeout <-chan time.Time
	if d > 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		timeout = tm.C
	}
	p := &proposal{cmd: cmd, done: make(chan proposalResult, 1), enqueued: time.Now()}
	select {
	case r.proposeCh <- p:
	case <-r.stopCh:
		return 0, types.ErrStopped
	case <-timeout:
		return 0, fmt.Errorf("raft: proposal not accepted within %s: %w", d, types.ErrTimeout)
	}
	select {
	case res := <-p.done:
		return res.index, res.err
	case <-r.stopCh:
		return 0, types.ErrStopped
	case <-timeout:
		// The proposal stays pending; its buffered done channel absorbs a
		// late completion without leaking a goroutine.
		return 0, fmt.Errorf("raft: proposal not committed within %s: %w", d, types.ErrTimeout)
	}
}

// applier applies committed entries to the state machine in order and
// completes pending proposals on the leader.
func (r *Raft) applier() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-r.applyCh:
		}
		for {
			r.mu.Lock()
			if r.lastApplied >= r.commitIndex {
				r.mu.Unlock()
				break
			}
			idx := r.lastApplied + 1
			entry := r.entryAtLocked(idx)
			r.mu.Unlock()

			// No-op entries (leader-election barriers) skip the state
			// machine.
			if r.cfg.SM != nil && len(entry.Cmd) > 0 {
				r.cfg.SM.Apply(entry.Index, entry.Cmd)
			}

			r.mu.Lock()
			r.lastApplied = idx
			var p *proposal
			if r.pending != nil {
				p = r.pending[idx]
				delete(r.pending, idx)
			}
			r.applyCond.Broadcast()
			r.mu.Unlock()
			if p != nil {
				now := time.Now()
				r.metrics.mu.Lock()
				r.metrics.IngestWait += p.appended.Sub(p.enqueued)
				r.metrics.CommitWait += now.Sub(p.appended)
				r.metrics.mu.Unlock()
				if r.cfg.ProposeLatency != nil {
					r.cfg.ProposeLatency.Observe(now.Sub(p.enqueued))
				}
				p.done <- proposalResult{index: idx}
			}
			r.maybeCompact()
		}
	}
}

// maybeCompact snapshots the state machine and truncates the applied log
// prefix once it exceeds the configured threshold. Runs on the apply
// goroutine, so Snapshot never races Apply.
func (r *Raft) maybeCompact() {
	if r.cfg.SnapshotThreshold <= 0 {
		return
	}
	sm, ok := r.cfg.SM.(Snapshotter)
	if !ok {
		return
	}
	r.mu.Lock()
	applied := r.lastApplied
	first := r.firstIndexLocked()
	if applied-first < uint64(r.cfg.SnapshotThreshold) {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	// Snapshot outside r.mu: state-machine reads can be slow, and only
	// this goroutine mutates the SM.
	data := sm.Snapshot()

	r.mu.Lock()
	// applied cannot have advanced (single apply goroutine), but a
	// snapshot install could have; re-check.
	if applied <= r.firstIndexLocked() {
		r.mu.Unlock()
		return
	}
	cutTerm := r.entryAtLocked(applied).Term
	suffix := r.log[applied-r.firstIndexLocked()+1:]
	newLog := make([]Entry, 0, len(suffix)+1)
	newLog = append(newLog, Entry{Term: cutTerm, Index: applied})
	newLog = append(newLog, suffix...)
	r.log = newLog
	r.snapData = data
	r.mu.Unlock()
	r.fsync() // persisting the snapshot costs a disk sync
}

// WaitApplied blocks until the replica has applied at least index, or the
// replica stops.
func (r *Raft) WaitApplied(index uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.lastApplied < index {
		if r.stopped() {
			return types.ErrStopped
		}
		r.applyCond.Wait()
	}
	return nil
}

// waitAppliedTimeout is WaitApplied with a deadline, used by follower
// reads so a partitioned replica does not block readers forever.
func (r *Raft) waitAppliedTimeout(index uint64, d time.Duration) error {
	// Fast path: on a caught-up replica (every consistent read whose
	// apply already landed — the overwhelmingly common case) the index
	// is already applied, so skip the goroutine + channel + timer that
	// the slow path spends per call.
	r.mu.Lock()
	if r.lastApplied >= index {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- r.WaitApplied(index) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return types.ErrStopped
	}
}
