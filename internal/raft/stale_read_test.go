package raft

import (
	"errors"
	"testing"
	"time"

	"mantle/internal/faults"
	"mantle/internal/types"
)

// The staleness promise: once a write has been committed at the leader
// for longer than maxStale, every replica with live heartbeats must
// observe it through BoundedStaleRead — the advertised commit index of
// the latest exchange covers the write, so the local read point cannot
// be older than the promise.
func TestBoundedStaleReadSeesWritesOlderThanBound(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 1, nil) // 3 voters + 1 learner
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Propose([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	const maxStale = 50 * time.Millisecond
	// Let the write age past the staleness bound (heartbeats every 10ms
	// keep advertising the covering commit index).
	time.Sleep(2 * maxStale)
	for i, r := range rs {
		err := r.BoundedStaleRead(maxStale, func() error {
			for _, cmd := range recs[i].snapshot() {
				if cmd == "v1" {
					return nil
				}
			}
			return errors.New("committed write v1 not visible at read point")
		})
		if err != nil {
			t.Fatalf("%s (%v): BoundedStaleRead: %v", r.ID(), r.cfg.Learner, err)
		}
	}
}

// A replica cut off from the leader for longer than maxStale must refuse
// the local read with ErrStale rather than serve data of unknown age.
func TestBoundedStaleReadFailsWithoutLeaderContact(t *testing.T) {
	inj := faults.New(1)
	rs, _ := newPartitionGroup(t, inj)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Propose([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	var follower *Raft
	for _, r := range rs {
		if r != leader {
			follower = r
			break
		}
	}
	const maxStale = 60 * time.Millisecond
	// Healthy heartbeats: the follower serves locally.
	time.Sleep(2 * maxStale)
	if err := follower.BoundedStaleRead(maxStale, func() error { return nil }); err != nil {
		t.Fatalf("healthy follower BoundedStaleRead: %v", err)
	}

	// Isolate the follower; once its last leader contact ages past the
	// bound, the local read must fail instead of hiding new commits.
	pid := inj.Partition([]string{follower.ID()}, ids(rs, follower))
	time.Sleep(2 * maxStale)
	if _, err := leader.Propose([]byte("during-partition")); err != nil {
		t.Fatalf("majority-side propose: %v", err)
	}
	err = follower.BoundedStaleRead(maxStale, func() error { return nil })
	if !errors.Is(err, types.ErrUnavailable) {
		t.Fatalf("partitioned BoundedStaleRead err = %v, want ErrStale (ErrUnavailable)", err)
	}

	// Healed, contact resumes and local reads work again.
	inj.Heal(pid)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := follower.BoundedStaleRead(maxStale, func() error { return nil }); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recovered stale reads after heal (seed %d)", inj.Seed())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
