package raft

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/types"
)

// recorder is a test state machine that records applied commands.
type recorder struct {
	mu      sync.Mutex
	applied []string
	indices []uint64
}

func (r *recorder) Apply(index uint64, cmd []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applied = append(r.applied, string(cmd))
	r.indices = append(r.indices, index)
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.applied...)
}

func newTestGroup(t *testing.T, voters, learners int, mutate func(*Config)) ([]*Raft, []*recorder) {
	t.Helper()
	fabric := netsim.NewLocalFabric()
	n := voters + learners
	cfgs := make([]Config, n)
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		cfgs[i] = Config{
			ID:                fmt.Sprintf("r%d", i),
			Learner:           i >= voters,
			Fabric:            fabric,
			ElectionTimeout:   30 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			SM:                recs[i],
		}
		if mutate != nil {
			mutate(&cfgs[i])
		}
	}
	rs := NewGroup(cfgs)
	t.Cleanup(func() {
		for _, r := range rs {
			r.Stop()
		}
	})
	return rs, recs
}

func TestElectsSingleLeader(t *testing.T) {
	rs, _ := newTestGroup(t, 3, 0, nil)
	if _, err := WaitLeader(rs, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Give the group a moment to settle (early elections can churn once
	// or twice), then check that exactly one leader remains.
	time.Sleep(150 * time.Millisecond)
	leaders := 0
	for _, r := range rs {
		if role, _, _ := r.Status(); role == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d", leaders)
	}
}

func TestProposeAppliesEverywhere(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		idx, err := leader.Propose([]byte(fmt.Sprintf("cmd%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			t.Fatal("zero index")
		}
	}
	// All replicas converge.
	deadline := time.Now().Add(2 * time.Second)
	for _, rec := range recs {
		for len(rec.snapshot()) < 10 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		got := rec.snapshot()
		if len(got) != 10 {
			t.Fatalf("replica applied %d entries: %v", len(got), got)
		}
		for i, cmd := range got {
			if cmd != fmt.Sprintf("cmd%d", i) {
				t.Fatalf("order mismatch at %d: %v", i, got)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	rs, _ := newTestGroup(t, 3, 0, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r == leader {
			continue
		}
		if _, err := r.Propose([]byte("x")); !errors.Is(err, types.ErrNotLeader) {
			t.Fatalf("follower Propose err = %v", err)
		}
	}
}

func TestLearnerReplicatesButDoesNotVote(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 2, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leader.IsLearner() {
		t.Fatal("learner became leader")
	}
	if _, err := leader.Propose([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 3; i < 5; i++ {
		for len(recs[i].snapshot()) < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := recs[i].snapshot(); len(got) != 1 || got[0] != "hello" {
			t.Fatalf("learner %d applied %v", i, got)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Propose([]byte("before")); err != nil {
		t.Fatal(err)
	}
	leader.Stop()
	survivors := make([]*Raft, 0, 2)
	for _, r := range rs {
		if r != leader {
			survivors = append(survivors, r)
		}
	}
	newLeader, err := WaitLeader(survivors, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newLeader.Propose([]byte("after")); err != nil {
		t.Fatal(err)
	}
	// Both survivors apply both entries in order.
	deadline := time.Now().Add(2 * time.Second)
	for i, r := range rs {
		if r == leader {
			continue
		}
		for len(recs[i].snapshot()) < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		got := recs[i].snapshot()
		if len(got) != 2 || got[0] != "before" || got[1] != "after" {
			t.Fatalf("survivor %d applied %v", i, got)
		}
	}
}

func TestConcurrentProposals(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, func(c *Config) { c.BatchEnabled = true })
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := leader.Propose([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d proposal failures", failures.Load())
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(recs[0].snapshot()) < goroutines*each && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(recs[0].snapshot()); got != goroutines*each {
		t.Fatalf("leader applied %d", got)
	}
	// All replicas apply the same sequence.
	a := recs[0].snapshot()
	for i := 1; i < 3; i++ {
		for len(recs[i].snapshot()) < len(a) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		b := recs[i].snapshot()
		if len(a) != len(b) {
			t.Fatalf("replica %d applied %d vs %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("divergence at %d: %s vs %s", j, a[j], b[j])
			}
		}
	}
}

func TestBatchingReducesSyncs(t *testing.T) {
	run := func(batch bool) int64 {
		rs, _ := newTestGroup(t, 1, 0, func(c *Config) {
			c.BatchEnabled = batch
			c.FsyncCost = 100 * time.Microsecond
		})
		leader, err := WaitLeader(rs, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines, each = 16, 30
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < each; i++ {
					if _, err := leader.Propose([]byte("x")); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		syncs, _, proposals, _ := leader.MetricsRef().Snapshot()
		if proposals != goroutines*each {
			t.Fatalf("proposals = %d", proposals)
		}
		return syncs
	}
	unbatched := run(false)
	batched := run(true)
	if batched >= unbatched {
		t.Fatalf("batched syncs %d >= unbatched %d", batched, unbatched)
	}
}

func TestReadIndexOnFollowerSeesWrites(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 1, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := leader.Propose([]byte("w1"))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r == leader {
			continue
		}
		// Retry: right after election a replica may not know the leader.
		var rerr error
		for attempt := 0; attempt < 100; attempt++ {
			rerr = r.ConsistentRead(func() error {
				if r.AppliedIndex() < idx {
					return fmt.Errorf("replica %d applied %d < %d", i, r.AppliedIndex(), idx)
				}
				if got := recs[i].snapshot(); len(got) < 1 || got[0] != "w1" {
					return fmt.Errorf("replica %d state %v", i, got)
				}
				return nil
			})
			if rerr == nil || !errors.Is(rerr, types.ErrNotLeader) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if rerr != nil {
			t.Fatalf("ConsistentRead on %s: %v", r.ID(), rerr)
		}
	}
}

func TestReadIndexBatching(t *testing.T) {
	fabric := netsim.NewFabric(netsim.Config{RTT: time.Millisecond})
	cfgs := []Config{
		{ID: "a", Fabric: fabric, ElectionTimeout: 50 * time.Millisecond, SM: &recorder{}},
		{ID: "b", Fabric: fabric, ElectionTimeout: 50 * time.Millisecond, SM: &recorder{}},
		{ID: "c", Fabric: fabric, ElectionTimeout: 50 * time.Millisecond, SM: &recorder{}},
	}
	rs := NewGroup(cfgs)
	defer func() {
		for _, r := range rs {
			r.Stop()
		}
	}()
	leader, err := WaitLeader(rs, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var follower *Raft
	for _, r := range rs {
		if r != leader {
			follower = r
			break
		}
	}
	// Wait for the follower to learn the leader.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, l := follower.Status(); l != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// 64 concurrent reads on the follower should need far fewer than 64
	// leader round trips thanks to batching.
	before := fabric.RPCs()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := follower.ReadIndex(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	used := fabric.RPCs() - before
	if used >= 48 {
		t.Fatalf("64 concurrent follower reads used %d RPCs; batching ineffective", used)
	}
}

func TestApplyIndicesAreSequential(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, func(c *Config) { c.BatchEnabled = true })
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := leader.Propose([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rec := recs[0]
	rec.mu.Lock()
	defer rec.mu.Unlock()
	// Indices are strictly increasing; gaps are the no-op entries
	// leaders append on election.
	for i := 1; i < len(rec.indices); i++ {
		if rec.indices[i] <= rec.indices[i-1] {
			t.Fatalf("apply indices not increasing at %d: %v", i, rec.indices[i-1:i+1])
		}
	}
	if len(rec.indices) != 30 {
		t.Fatalf("applied %d commands", len(rec.indices))
	}
}

func TestTransferLeadership(t *testing.T) {
	rs, _ := newTestGroup(t, 3, 1, nil)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Commit something so match indices are live.
	if _, err := leader.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var target *Raft
	for _, r := range rs {
		if r != leader && !r.IsLearner() {
			target = r
			break
		}
	}
	if err := leader.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if role, _, _ := target.Status(); role == Leader {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if role, _, _ := target.Status(); role != Leader {
		t.Fatalf("target role = %v after transfer", role)
	}
	// The new leader accepts proposals.
	if _, err := target.Propose([]byte("after-transfer")); err != nil {
		t.Fatal(err)
	}
	// Transfer to a learner is rejected.
	var learner *Raft
	for _, r := range rs {
		if r.IsLearner() {
			learner = r
		}
	}
	if err := target.TransferLeadership(learner.ID()); err == nil {
		t.Fatal("transfer to learner accepted")
	}
	// Transfer from a non-leader is rejected.
	if err := leader.TransferLeadership(target.ID()); !errors.Is(err, types.ErrNotLeader) {
		t.Fatalf("non-leader transfer: %v", err)
	}
}

func TestProposalsAcrossLeadershipTransfer(t *testing.T) {
	rs, recs := newTestGroup(t, 3, 0, func(c *Config) { c.BatchEnabled = true })
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var target *Raft
	for _, r := range rs {
		if r != leader {
			target = r
			break
		}
	}
	// Proposals flow continuously; mid-stream the leadership moves.
	// Writers retry ErrNotLeader against the current leader, as the
	// proxy layer does; every accepted proposal must be applied exactly
	// once on every replica.
	var accepted atomic.Int32
	var wg sync.WaitGroup
	propose := func(cmd string) {
		for attempt := 0; attempt < 2000; attempt++ {
			l, err := WaitLeader(rs, time.Second)
			if err != nil {
				continue
			}
			if _, err := l.Propose([]byte(cmd)); err == nil {
				accepted.Add(1)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				propose(fmt.Sprintf("g%d-%d", g, i))
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := leader.TransferLeadership(target.ID()); err != nil &&
		!errors.Is(err, types.ErrNotLeader) {
		t.Fatalf("transfer: %v", err)
	}
	wg.Wait()
	if accepted.Load() != 100 {
		t.Fatalf("accepted = %d", accepted.Load())
	}
	// Convergence: every replica applied exactly the accepted set, no
	// duplicates.
	deadline := time.Now().Add(3 * time.Second)
	for i, rec := range recs {
		for len(rec.snapshot()) < 100 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		got := rec.snapshot()
		seen := map[string]bool{}
		for _, cmd := range got {
			if seen[cmd] {
				t.Fatalf("replica %d applied %q twice", i, cmd)
			}
			seen[cmd] = true
		}
		if len(got) != 100 {
			t.Fatalf("replica %d applied %d commands", i, len(got))
		}
	}
}
