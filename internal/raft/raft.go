// Package raft implements the Raft consensus protocol used to replicate
// Mantle's IndexNode (§4, §5.1.3, §5.2.3 of the paper) and LocoFS's
// directory server. It provides:
//
//   - leader election with randomised timeouts and term-based safety,
//   - log replication to voting followers and non-voting learners
//     (read replicas, as added in §5.1.3 to scale lookups),
//   - a state machine apply loop on every replica,
//   - ReadIndex-based consistent reads on followers and learners: the
//     replica queries the leader for its commitIndex (queries from
//     concurrent readers are batched into one RPC, as the paper
//     describes) and waits until the local applyIndex catches up,
//   - proposal batching: the leader groups queued proposals into one log
//     append and one fsync per batch ("+raftlogbatch" in Figure 16),
//     bounded by a count/byte/time window (MaxBatch, MaxBatchBytes,
//     MaxBatchDelay),
//   - pipelined replication (Config.Pipeline): the leader streams
//     AppendEntries as soon as entries are appended in memory and
//     fsyncs them in a background sync stage; the commit rule counts
//     the leader's durable index, so quorum durability is preserved, and
//   - a simulated fsync cost per log sync, serialised per node, which is
//     the disk bottleneck that batching amortises (§5.2.3).
//
// Networking runs over internal/netsim: every inter-replica RPC charges
// one fabric round trip and consults the fabric's fault hook (see
// internal/faults), so messages between replicas can be dropped,
// delayed, or partitioned. Crash-stop failures (Stop), leader changes,
// and network partitions are all supported and tested:
//
//   - every inter-replica send goes through deliver(), which fails with
//     types.ErrUnreachable when the edge is cut; the sender treats the
//     peer like an unresponsive node and retries on the next kick,
//   - a leader that cannot contact a quorum of voters within the
//     check-quorum window (2× its election timeout) steps down, so an
//     isolated leader stops accepting writes instead of serving a
//     minority indefinitely, and
//   - ProposeTimeout bounds how long a proposal may wait for commit, so
//     writes into a quorum-less group fail fast instead of hanging.
package raft

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/types"
)

// Role is a replica's current role.
type Role uint8

const (
	// Follower replicates the leader's log.
	Follower Role = iota
	// Candidate is running an election.
	Candidate
	// Leader owns the log.
	Leader
	// LearnerRole replicates but does not vote or campaign.
	LearnerRole
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	case LearnerRole:
		return "learner"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Entry is one log entry.
type Entry struct {
	Term  uint64
	Index uint64
	Cmd   []byte
}

// StateMachine receives committed entries in log order, exactly once per
// replica.
type StateMachine interface {
	Apply(index uint64, cmd []byte)
}

// Snapshotter is the optional state-machine extension enabling log
// compaction: when the applied log exceeds Config.SnapshotThreshold, the
// replica captures a snapshot and truncates its log prefix; followers
// that fall behind the truncation point receive the snapshot instead of
// the missing entries (InstallSnapshot).
type Snapshotter interface {
	StateMachine
	// Snapshot serialises the full state-machine state. It is invoked
	// from the apply goroutine, so it never races Apply.
	Snapshot() []byte
	// Restore replaces the state-machine state from a snapshot.
	Restore(data []byte)
}

// Config parameterises one replica.
type Config struct {
	// ID is the replica's unique name within the group.
	ID string
	// Learner marks the replica as a non-voting read replica.
	Learner bool
	// Fabric provides inter-replica network latency.
	Fabric *netsim.Fabric
	// Node models this replica's CPU; may be nil for an uncapped node.
	Node *netsim.Node
	// ElectionTimeout is the base election timeout; the actual timeout
	// is randomised in [ElectionTimeout, 2×ElectionTimeout).
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's idle heartbeat period.
	HeartbeatInterval time.Duration
	// FsyncCost is the simulated disk-sync latency charged once per log
	// sync. Zero disables the disk model.
	FsyncCost time.Duration
	// BatchEnabled turns on proposal batching. When off, the leader
	// replicates (and fsyncs) one proposal at a time — the Mantle-base
	// configuration of the Figure 16 ablation.
	BatchEnabled bool
	// MaxBatch bounds the number of proposals folded into one append.
	MaxBatch int
	// MaxBatchBytes bounds the total command bytes folded into one
	// append (default 1 MiB).
	MaxBatchBytes int
	// MaxBatchDelay is how long the leader holds an under-filled batch
	// open waiting for more proposals. Zero (the default) closes the
	// batch as soon as the ingest queue drains, so an idle group pays no
	// added latency; batching still emerges under load because
	// proposals queue behind the in-flight fsync.
	MaxBatchDelay time.Duration
	// Pipeline lets the leader stream AppendEntries to followers while
	// its own log sync is still in flight. Appended entries are handed
	// to a background sync stage that coalesces consecutive appends
	// into one fsync, and the commit rule counts the leader's durable
	// index (not its last appended index), so an entry still commits
	// only once a quorum has it on disk.
	Pipeline bool
	// SnapshotThreshold triggers log compaction once this many applied
	// entries accumulate past the previous snapshot. Zero disables
	// compaction. Requires SM to implement Snapshotter.
	SnapshotThreshold int
	// SM is the replica's state machine.
	SM StateMachine
	// ProposeLatency, when non-nil, observes end-to-end proposal
	// latency (enqueue → applied) on the replica completing each
	// proposal. Share one histogram across a group's replicas to get a
	// group-wide raft-propose distribution.
	ProposeLatency *metrics.Latency
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTimeout <= 0 {
		out.ElectionTimeout = 150 * time.Millisecond
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = out.ElectionTimeout / 5
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 256
	}
	if out.MaxBatchBytes <= 0 {
		out.MaxBatchBytes = 1 << 20
	}
	if out.Fabric == nil {
		out.Fabric = netsim.NewLocalFabric()
	}
	if out.Node == nil {
		out.Node = netsim.NewNode(out.ID, 0)
	}
	if out.SnapshotThreshold > 0 {
		if _, ok := out.SM.(Snapshotter); !ok {
			// Without a Snapshotter the group could never install
			// snapshots on lagging followers; compaction would strand
			// them. Disable it.
			out.SnapshotThreshold = 0
		}
	}
	return out
}

type proposal struct {
	cmd      []byte
	done     chan proposalResult
	enqueued time.Time
	appended time.Time
}

type proposalResult struct {
	index uint64
	err   error
}

// Raft is one replica. Create replicas with NewGroup.
type Raft struct {
	cfg Config
	id  string

	mu          sync.Mutex
	peers       map[string]*Raft // all other replicas (voters and learners)
	voters      int              // number of voting members incl. self if voter
	role        Role
	term        uint64
	votedFor    string
	leaderID    string
	log         []Entry // log[0] is a sentinel at index 0, term 0
	commitIndex uint64
	lastApplied uint64
	// durableIndex is the highest log index covered by a completed
	// fsync on this replica. Followers advance it synchronously (they
	// fsync before acking AppendEntries); a pipelined leader advances
	// it from syncLoop, and maybeAdvanceCommit uses it as the leader's
	// own acknowledgement so an entry commits only once a quorum has it
	// durable.
	durableIndex uint64
	// Leader volatile state.
	nextIndex  map[string]uint64
	matchIndex map[string]uint64
	pending    map[uint64]*proposal // index -> waiting proposal
	// lastContact records the last successful exchange with each peer
	// while leader; the check-quorum rule reads it to detect isolation.
	lastContact map[string]time.Time

	electionReset time.Time

	applyCh   chan struct{} // kicks the applier
	proposeCh chan *proposal
	syncCh    chan struct{} // kicks the pipelined leader sync stage
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup

	// applyWait broadcasts when lastApplied advances (ReadIndex waits).
	applyCond *sync.Cond

	// reads batches follower-read commitIndex queries to the leader.
	reads readState

	// Bounded-staleness read point (BoundedStaleRead): the highest
	// leader commit index advertised by an AppendEntries/heartbeat
	// exchange, and when that exchange was received.
	staleCommit  uint64
	staleContact time.Time

	// disk serialises simulated fsyncs.
	disk sync.Mutex

	// snapData is the latest snapshot (log prefix up to log[0].Index).
	snapData []byte

	metrics Metrics
}

// firstIndexLocked returns the index of the log's sentinel entry (the
// snapshot boundary). Caller holds r.mu.
func (r *Raft) firstIndexLocked() uint64 { return r.log[0].Index }

// entryAtLocked returns the log entry with absolute index idx. Caller
// holds r.mu and guarantees firstIndex <= idx <= lastIndex.
func (r *Raft) entryAtLocked(idx uint64) Entry {
	return r.log[idx-r.log[0].Index]
}

// SnapshotIndex returns the index covered by the latest snapshot.
func (r *Raft) SnapshotIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.firstIndexLocked()
}

// LogLen returns the number of live (non-compacted) log entries.
func (r *Raft) LogLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.log) - 1
}

// Metrics counts internals for the ablation analysis and tests.
type Metrics struct {
	mu        sync.Mutex
	Syncs     int64 // simulated fsyncs performed
	Appends   int64 // log append batches
	Proposals int64 // proposals accepted
	Elections int64 // elections started

	// Batching accounting: cumulative command bytes appended, and why
	// each leader batch was closed (batch occupancy = Proposals /
	// Appends; flush counters sum to the leader's Appends minus no-op
	// barriers).
	BatchBytes int64
	FlushIdle  int64 // ingest queue drained (no delay window, or stop)
	FlushTimer int64 // MaxBatchDelay expired
	FlushCount int64 // MaxBatch proposals reached
	FlushBytes int64 // MaxBatchBytes reached

	// Cumulative proposal-stage wall time (observability): queue wait
	// until log append, and append-to-apply completion.
	IngestWait time.Duration
	CommitWait time.Duration
}

// flushReason classifies why the leader closed a proposal batch.
type flushReason uint8

const (
	flushIdle flushReason = iota
	flushTimer
	flushCount
	flushBytes
)

// noteAppend records one leader batch append: its proposal count, its
// command bytes, and the reason the batch was closed.
func (m *Metrics) noteAppend(proposals, bytes int64, reason flushReason) {
	m.mu.Lock()
	m.Appends++
	m.Proposals += proposals
	m.BatchBytes += bytes
	switch reason {
	case flushTimer:
		m.FlushTimer++
	case flushCount:
		m.FlushCount++
	case flushBytes:
		m.FlushBytes++
	default:
		m.FlushIdle++
	}
	m.mu.Unlock()
}

// BatchStats is a snapshot of the write-batching counters.
type BatchStats struct {
	Syncs      int64
	Appends    int64
	Proposals  int64
	BatchBytes int64
	FlushIdle  int64
	FlushTimer int64
	FlushCount int64
	FlushBytes int64
}

// Batch snapshots the batching counters.
func (m *Metrics) Batch() BatchStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return BatchStats{
		Syncs:      m.Syncs,
		Appends:    m.Appends,
		Proposals:  m.Proposals,
		BatchBytes: m.BatchBytes,
		FlushIdle:  m.FlushIdle,
		FlushTimer: m.FlushTimer,
		FlushCount: m.FlushCount,
		FlushBytes: m.FlushBytes,
	}
}

// StageWaits returns the mean per-proposal ingest and commit waits.
func (m *Metrics) StageWaits() (ingest, commit time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Proposals == 0 {
		return 0, 0
	}
	return m.IngestWait / time.Duration(m.Proposals), m.CommitWait / time.Duration(m.Proposals)
}

func (m *Metrics) add(syncs, appends, proposals, elections int64) {
	m.mu.Lock()
	m.Syncs += syncs
	m.Appends += appends
	m.Proposals += proposals
	m.Elections += elections
	m.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() (syncs, appends, proposals, elections int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Syncs, m.Appends, m.Proposals, m.Elections
}

// NewGroup constructs and starts a Raft group from the given configs.
// Exactly the non-learner members form the voting set. All replicas share
// the configs' Fabric (the first config's fabric is used if they differ).
func NewGroup(cfgs []Config) []*Raft {
	replicas := make([]*Raft, len(cfgs))
	voters := 0
	for _, c := range cfgs {
		if !c.Learner {
			voters++
		}
	}
	for i, c := range cfgs {
		cc := c.withDefaults()
		r := &Raft{
			cfg:        cc,
			id:         cc.ID,
			peers:      make(map[string]*Raft),
			voters:     voters,
			role:       Follower,
			log:        []Entry{{}},
			nextIndex:  make(map[string]uint64),
			matchIndex: make(map[string]uint64),
			applyCh:    make(chan struct{}, 1),
			proposeCh:  make(chan *proposal, 4096),
			syncCh:     make(chan struct{}, 1),
			stopCh:     make(chan struct{}),
		}
		if cc.Learner {
			r.role = LearnerRole
		}
		r.applyCond = sync.NewCond(&r.mu)
		replicas[i] = r
	}
	for _, r := range replicas {
		for _, o := range replicas {
			if o.id != r.id {
				r.peers[o.id] = o
			}
		}
	}
	for _, r := range replicas {
		r.start()
	}
	// Bootstrap kickstart: a fresh group has no leader, so waiting out a
	// full randomised election timeout (which deployments set generously
	// to tolerate scheduler stalls) only delays startup. The first voter
	// campaigns immediately; if it races another campaign, normal
	// election safety resolves the term.
	for _, r := range replicas {
		if !r.cfg.Learner {
			r.mu.Lock()
			r.startElectionLocked()
			r.mu.Unlock()
			break
		}
	}
	return replicas
}

func (r *Raft) start() {
	r.mu.Lock()
	r.electionReset = time.Now()
	r.mu.Unlock()
	r.wg.Add(2)
	go r.electionLoop()
	go r.applier()
}

// Stop shuts the replica down (crash-stop). Safe to call twice.
func (r *Raft) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopCh)
		r.mu.Lock()
		r.applyCond.Broadcast()
		r.mu.Unlock()
	})
	r.wg.Wait()
}

func (r *Raft) stopped() bool {
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

// Stopped reports whether the replica has been shut down (crash-stopped).
func (r *Raft) Stopped() bool { return r.stopped() }

// ID returns the replica's name.
func (r *Raft) ID() string { return r.id }

// IsLearner reports whether the replica is a learner.
func (r *Raft) IsLearner() bool { return r.cfg.Learner }

// Node returns the netsim node modelling this replica's CPU.
func (r *Raft) Node() *netsim.Node { return r.cfg.Node }

// MetricsRef returns the replica's metrics counters.
func (r *Raft) MetricsRef() *Metrics { return &r.metrics }

// Status returns the replica's current role, term and known leader ID.
func (r *Raft) Status() (Role, uint64, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role, r.term, r.leaderID
}

// CommitIndex returns the replica's commit index.
func (r *Raft) CommitIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitIndex
}

// AppliedIndex returns the replica's apply index.
func (r *Raft) AppliedIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// electionLoop ticks the randomised election timer on voters.
func (r *Raft) electionLoop() {
	defer r.wg.Done()
	if r.cfg.Learner {
		return // learners never campaign
	}
	for {
		timeout := r.cfg.ElectionTimeout +
			time.Duration(rand.Int64N(int64(r.cfg.ElectionTimeout)))
		select {
		case <-r.stopCh:
			return
		case <-time.After(timeout / 4):
		}
		r.mu.Lock()
		if r.role != Leader && time.Since(r.electionReset) >= timeout {
			r.startElectionLocked()
		}
		r.mu.Unlock()
	}
}

// startElectionLocked transitions to candidate and solicits votes.
// Caller holds r.mu.
func (r *Raft) startElectionLocked() {
	r.role = Candidate
	r.term++
	r.votedFor = r.id
	r.leaderID = ""
	r.electionReset = time.Now()
	term := r.term
	lastIdx, lastTerm := r.lastLogLocked()
	r.metrics.add(0, 0, 0, 1)

	votes := 1 // self
	var voteMu sync.Mutex
	for _, p := range r.peers {
		if p.IsLearner() {
			continue
		}
		go func(p *Raft) {
			if r.deliver(p) != nil {
				return // vote request lost in the fabric
			}
			granted, replyTerm := p.handleRequestVote(term, r.id, lastIdx, lastTerm)
			r.mu.Lock()
			defer r.mu.Unlock()
			if replyTerm > r.term {
				r.becomeFollowerLocked(replyTerm, "")
				return
			}
			if r.role != Candidate || r.term != term || !granted {
				return
			}
			voteMu.Lock()
			votes++
			won := votes > r.voters/2
			voteMu.Unlock()
			if won {
				r.becomeLeaderLocked()
			}
		}(p)
	}
	// Single-voter group elects itself immediately.
	if r.voters == 1 {
		r.becomeLeaderLocked()
	}
}

// becomeFollowerLocked steps down into term with the given leader.
func (r *Raft) becomeFollowerLocked(term uint64, leader string) {
	wasLeader := r.role == Leader
	if r.cfg.Learner {
		r.role = LearnerRole
	} else {
		r.role = Follower
	}
	r.term = term
	r.votedFor = ""
	r.leaderID = leader
	r.electionReset = time.Now()
	if wasLeader {
		// Fail queued proposals; the replication loop exits on role
		// change and drains the channel.
		r.drainProposals()
	}
}

func (r *Raft) drainProposals() {
	for {
		select {
		case p := <-r.proposeCh:
			p.done <- proposalResult{err: types.ErrNotLeader}
		default:
			return
		}
	}
}

// becomeLeaderLocked initialises leader state and starts the replication
// loop. Caller holds r.mu.
func (r *Raft) becomeLeaderLocked() {
	if r.role == Leader {
		return
	}
	r.role = Leader
	r.leaderID = r.id
	lastIdx, _ := r.lastLogLocked()
	r.lastContact = make(map[string]time.Time, len(r.peers))
	now := time.Now()
	for id := range r.peers {
		r.nextIndex[id] = lastIdx + 1
		r.matchIndex[id] = 0
		r.lastContact[id] = now
	}
	term := r.term
	r.wg.Add(1)
	go r.leaderLoop(term)
}

// deliver charges one round trip to peer, consulting the fabric's fault
// hook. A non-nil error means the message (or its reply) was lost; the
// caller treats the peer as unresponsive.
func (r *Raft) deliver(p *Raft) error {
	return r.cfg.Fabric.Deliver(r.id, p.id)
}

// touchPeerLocked records a successful exchange with the peer for the
// check-quorum rule. Caller holds r.mu.
func (r *Raft) touchPeerLocked(id string) {
	if r.lastContact != nil {
		r.lastContact[id] = time.Now()
	}
}

// quorumReachable reports whether the leader has heard from a quorum of
// voters (itself included) within the check-quorum window. A leader cut
// off from the majority steps down so it cannot keep serving
// linearisable reads — or accepting writes that can never commit — from
// the minority side of a partition.
func (r *Raft) quorumReachable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != Leader {
		return true
	}
	window := 2 * r.cfg.ElectionTimeout
	reachable := 1 // self
	for id, p := range r.peers {
		if p.IsLearner() {
			continue
		}
		if time.Since(r.lastContact[id]) <= window {
			reachable++
		}
	}
	return reachable >= r.voters/2+1
}

// handleRequestVote is the RequestVote RPC handler.
func (r *Raft) handleRequestVote(term uint64, candidate string, lastIdx, lastTerm uint64) (granted bool, replyTerm uint64) {
	if r.stopped() {
		return false, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if term > r.term {
		r.becomeFollowerLocked(term, "")
	}
	if term < r.term {
		return false, r.term
	}
	myLastIdx, myLastTerm := r.lastLogLocked()
	upToDate := lastTerm > myLastTerm || (lastTerm == myLastTerm && lastIdx >= myLastIdx)
	if (r.votedFor == "" || r.votedFor == candidate) && upToDate && !r.cfg.Learner {
		r.votedFor = candidate
		r.electionReset = time.Now()
		return true, r.term
	}
	return false, r.term
}

func (r *Raft) lastLogLocked() (index, term uint64) {
	last := r.log[len(r.log)-1]
	return last.Index, last.Term
}

// WaitLeader blocks until some replica in rs is leader, returning it.
// Test and bootstrap helper.
func WaitLeader(rs []*Raft, timeout time.Duration) (*Raft, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, r := range rs {
			if role, _, _ := r.Status(); role == Leader {
				return r, nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return nil, errors.New("raft: no leader elected within timeout")
}
