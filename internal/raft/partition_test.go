package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mantle/internal/faults"
	"mantle/internal/netsim"
	"mantle/internal/types"
)

// newPartitionGroup builds a 3-voter group on a fabric with the given
// fault injector attached. Raft IDs are r0..r2.
func newPartitionGroup(t *testing.T, inj *faults.Injector) ([]*Raft, []*recorder) {
	t.Helper()
	fabric := netsim.NewLocalFabric()
	inj.Attach(fabric)
	cfgs := make([]Config, 3)
	recs := make([]*recorder, 3)
	for i := range cfgs {
		recs[i] = &recorder{}
		cfgs[i] = Config{
			ID:                fmt.Sprintf("r%d", i),
			Fabric:            fabric,
			ElectionTimeout:   40 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			SM:                recs[i],
		}
	}
	rs := NewGroup(cfgs)
	t.Cleanup(func() {
		for _, r := range rs {
			r.Stop()
		}
	})
	return rs, recs
}

func ids(rs []*Raft, except *Raft) []string {
	var out []string
	for _, r := range rs {
		if r != except {
			out = append(out, r.ID())
		}
	}
	return out
}

// TestIsolatedLeaderStepsDown exercises what the crash-only suite cannot:
// a leader cut off from the quorum (but still running) must step down via
// check-quorum, the majority side must elect a fresh leader, and after the
// partition heals the group must converge on a single log.
func TestIsolatedLeaderStepsDown(t *testing.T) {
	inj := faults.New(1)
	rs, recs := newPartitionGroup(t, inj)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Propose([]byte("pre")); err != nil {
		t.Fatal(err)
	}

	// Cut the leader away from both followers.
	pid := inj.Partition([]string{leader.ID()}, ids(rs, leader))

	// The old leader must notice it cannot reach a quorum and step down
	// within the check-quorum window (2× election timeout) plus slack.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if role, _, _ := leader.Status(); role != Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("isolated leader still leader (injector seed %d)", inj.Seed())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The majority side elects a new leader that accepts writes.
	var majority []*Raft
	for _, r := range rs {
		if r != leader {
			majority = append(majority, r)
		}
	}
	newLeader, err := WaitLeader(majority, 2*time.Second)
	if err != nil {
		t.Fatalf("majority did not elect (injector seed %d): %v", inj.Seed(), err)
	}
	if _, err := newLeader.Propose([]byte("during")); err != nil {
		t.Fatalf("majority write failed (injector seed %d): %v", inj.Seed(), err)
	}

	// Writes on the deposed leader fail fast with a typed error rather
	// than hanging.
	if _, err := leader.ProposeTimeout([]byte("minority"), 100*time.Millisecond); err == nil {
		t.Fatalf("minority write succeeded (injector seed %d)", inj.Seed())
	} else if !errors.Is(err, types.ErrNotLeader) && !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("minority write err = %v", err)
	}

	// Heal: the group converges — one leader, all replicas apply both
	// committed entries in order.
	inj.Heal(pid)
	if _, err := WaitLeader(rs, 3*time.Second); err != nil {
		t.Fatalf("no leader after heal (injector seed %d): %v", inj.Seed(), err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for i, rec := range recs {
		for {
			got := rec.snapshot()
			if len(got) >= 2 && got[0] == "pre" && got[1] == "during" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d state %v after heal (injector seed %d)",
					i, got, inj.Seed())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestNoQuorumProposalsFailFast: with every voter partitioned from every
// other, no writes can commit anywhere; bounded proposals must fail with
// ErrTimeout (or ErrNotLeader once the leader steps down) instead of
// hanging, and healing restores write availability.
func TestNoQuorumProposalsFailFast(t *testing.T) {
	inj := faults.New(2)
	rs, _ := newPartitionGroup(t, inj)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	inj.SplitAll(ids(rs, nil))

	start := time.Now()
	_, perr := leader.ProposeTimeout([]byte("x"), 150*time.Millisecond)
	elapsed := time.Since(start)
	if perr == nil {
		t.Fatalf("quorum-less proposal committed (injector seed %d)", inj.Seed())
	}
	if !errors.Is(perr, types.ErrTimeout) && !errors.Is(perr, types.ErrNotLeader) {
		t.Fatalf("proposal err = %v (injector seed %d)", perr, inj.Seed())
	}
	if elapsed > 2*time.Second {
		t.Fatalf("proposal hung %v before failing (injector seed %d)", elapsed, inj.Seed())
	}

	// Every leader eventually steps down (check-quorum).
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaders := 0
		for _, r := range rs {
			if role, _, _ := r.Status(); role == Leader {
				leaders++
			}
		}
		if leaders == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d leader(s) survive total partition (injector seed %d)",
				leaders, inj.Seed())
		}
		time.Sleep(5 * time.Millisecond)
	}

	inj.HealAll()
	nl, err := WaitLeader(rs, 3*time.Second)
	if err != nil {
		t.Fatalf("no leader after heal (injector seed %d): %v", inj.Seed(), err)
	}
	if _, err := nl.ProposeTimeout([]byte("post-heal"), 2*time.Second); err != nil {
		t.Fatalf("post-heal write failed (injector seed %d): %v", inj.Seed(), err)
	}
}

// TestLossyFabricStillCommits: under heavy seeded message loss (30% on
// every edge) the group stays available — elections and replication
// retry through the drops — and the result is deterministic enough to
// commit every proposal.
func TestLossyFabricStillCommits(t *testing.T) {
	inj := faults.New(3)
	inj.DropAll(0.3)
	rs, recs := newPartitionGroup(t, inj)
	if _, err := WaitLeader(rs, 5*time.Second); err != nil {
		t.Fatalf("no leader on lossy fabric (injector seed %d): %v", inj.Seed(), err)
	}
	const n = 20
	committed := 0
	for i := 0; i < n; i++ {
		// Leadership may churn under loss; chase it like the proxy layer.
		for attempt := 0; attempt < 200; attempt++ {
			l, err := WaitLeader(rs, time.Second)
			if err != nil {
				continue
			}
			if _, err := l.ProposeTimeout([]byte(fmt.Sprintf("c%d", i)), time.Second); err == nil {
				committed++
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if committed != n {
		t.Fatalf("committed %d/%d on lossy fabric (injector seed %d)", committed, n, inj.Seed())
	}
	// Clear the faults; every replica converges on at least n applied
	// commands (duplicates possible — proposals retried across churn).
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for i, rec := range recs {
		for len(rec.snapshot()) < n && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := len(rec.snapshot()); got < n {
			t.Fatalf("replica %d applied %d < %d (injector seed %d)", i, got, n, inj.Seed())
		}
	}
}
