package raft

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
	"time"
)

// snapRecorder is a Snapshotter state machine: an append-only string list.
type snapRecorder struct {
	recorder
	restores int
}

func (s *snapRecorder) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.applied); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func (s *snapRecorder) Restore(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var applied []string
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&applied); err != nil {
		panic(err)
	}
	s.applied = applied
	s.restores++
}

func newSnapGroup(t *testing.T, voters int, threshold int) ([]*Raft, []*snapRecorder) {
	t.Helper()
	recs := make([]*snapRecorder, voters)
	cfgs := make([]Config, voters)
	for i := 0; i < voters; i++ {
		recs[i] = &snapRecorder{}
		cfgs[i] = Config{
			ID:                fmt.Sprintf("r%d", i),
			ElectionTimeout:   30 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			SnapshotThreshold: threshold,
			BatchEnabled:      true,
			SM:                recs[i],
		}
	}
	rs := NewGroup(cfgs)
	t.Cleanup(func() {
		for _, r := range rs {
			r.Stop()
		}
	})
	return rs, recs
}

func TestLogCompaction(t *testing.T) {
	rs, recs := newSnapGroup(t, 1, 10)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("cmd%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if leader.SnapshotIndex() == 0 {
		t.Fatal("no compaction happened")
	}
	if n := leader.LogLen(); n > 30 {
		t.Fatalf("log holds %d entries after compaction (threshold 10)", n)
	}
	// State machine saw everything exactly once, in order.
	got := recs[0].snapshot()
	if len(got) != 100 {
		t.Fatalf("applied %d commands", len(got))
	}
	for i, cmd := range got {
		if cmd != fmt.Sprintf("cmd%d", i) {
			t.Fatalf("order broken at %d: %s", i, cmd)
		}
	}
	// The group still accepts proposals after compaction.
	if _, err := leader.Propose([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotInstallOnLaggingFollower(t *testing.T) {
	rs, recs := newSnapGroup(t, 3, 10)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Stop one follower, write enough to compact past its position,
	// then "restart" it by... we cannot restart a stopped replica, so
	// instead: pick the follower, let it fall behind by pausing via
	// network? Simplest deterministic route: create a fresh group where
	// one follower joins late is not supported either. Instead verify
	// the snapshot path directly: drive the leader past the threshold,
	// then force a follower's nextIndex below the leader's first index
	// by resetting it, and check the follower converges via
	// InstallSnapshot.
	var follower *Raft
	var followerRec *snapRecorder
	for i, r := range rs {
		if r != leader {
			follower = r
			followerRec = recs[i]
			break
		}
	}
	for i := 0; i < 120; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("cmd%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if leader.SnapshotIndex() == 0 {
		t.Fatal("leader never compacted")
	}
	// Simulate a follower that lost its log: wipe it back to genesis and
	// force the leader to re-replicate from index 1 (now compacted).
	follower.mu.Lock()
	follower.log = []Entry{{}}
	follower.commitIndex = 0
	follower.lastApplied = 0
	follower.mu.Unlock()
	followerRec.mu.Lock()
	followerRec.applied = nil
	followerRec.mu.Unlock()
	leader.mu.Lock()
	leader.nextIndex[follower.id] = 1
	leader.matchIndex[follower.id] = 0
	leader.mu.Unlock()

	// Trigger replication and wait for convergence.
	if _, err := leader.Propose([]byte("poke")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(followerRec.snapshot()) >= 121 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := followerRec.snapshot()
	if len(got) < 121 {
		t.Fatalf("follower recovered only %d commands", len(got))
	}
	followerRec.mu.Lock()
	restores := followerRec.restores
	followerRec.mu.Unlock()
	if restores == 0 {
		t.Fatal("follower converged without InstallSnapshot")
	}
	// Suffix order intact: last commands match.
	if got[len(got)-1] != "poke" {
		t.Fatalf("last applied = %s", got[len(got)-1])
	}
}

func TestCompactionPreservesFollowerReads(t *testing.T) {
	rs, _ := newSnapGroup(t, 3, 8)
	leader, err := WaitLeader(rs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := leader.Propose([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rs {
		if r == leader {
			continue
		}
		// Right after an election a follower may not know the leader yet;
		// retry as the proxy layer does.
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			if err = r.ConsistentRead(func() error { return nil }); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("follower read after compaction: %v", err)
		}
	}
}
