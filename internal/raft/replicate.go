package raft

import (
	"sort"
	"time"
)

// fsync simulates one durable log sync: syncs on a node serialise on the
// replica's disk and each costs FsyncCost. This is the bottleneck that
// proposal batching amortises (§5.2.3).
func (r *Raft) fsync() {
	r.metrics.add(1, 0, 0, 0)
	if r.cfg.FsyncCost <= 0 {
		return
	}
	r.disk.Lock()
	time.Sleep(r.cfg.FsyncCost)
	r.disk.Unlock()
}

// leaderLoop ingests proposals for the given term, appends them to the
// log (batched when enabled), and coordinates per-peer replicators. It
// exits when leadership or the term is lost.
func (r *Raft) leaderLoop(term uint64) {
	defer r.wg.Done()

	// Append a no-op entry for the new term immediately: a Raft leader
	// only learns the commit status of previous terms' entries once an
	// entry of its own term commits, and reads gate on that knowledge
	// (ReadIndex). The no-op makes the new leader's commit index catch
	// up with everything already committed.
	r.mu.Lock()
	if r.role == Leader && r.term == term {
		idx, _ := r.lastLogLocked()
		r.log = append(r.log, Entry{Term: term, Index: idx + 1})
		r.metrics.add(0, 1, 0, 0)
	}
	noop, _ := r.lastLogLocked()
	r.mu.Unlock()
	r.fsync()
	r.advanceDurable(noop)
	r.maybeAdvanceCommit(term)

	// Per-peer replicators.
	type kicker chan struct{}
	kicks := make(map[string]kicker, len(r.peers))
	done := make(chan struct{})
	defer close(done)
	for id, p := range r.peers {
		k := make(kicker, 1)
		kicks[id] = k
		r.wg.Add(1)
		go r.replicateTo(term, p, k, done)
	}
	if r.cfg.Pipeline {
		r.wg.Add(1)
		go r.syncLoop(term, done)
	}
	kickAll := func() {
		for _, k := range kicks {
			select {
			case k <- struct{}{}:
			default:
			}
		}
	}

	heartbeat := time.NewTicker(r.cfg.HeartbeatInterval)
	defer heartbeat.Stop()

	for {
		select {
		case <-r.stopCh:
			r.failPending()
			return
		case <-heartbeat.C:
			if !r.stillLeader(term) {
				return
			}
			if !r.quorumReachable() {
				// Check-quorum: isolated from the majority — step down so
				// writes fail fast and another voter can win an election.
				r.mu.Lock()
				if r.role == Leader && r.term == term {
					r.becomeFollowerLocked(r.term, "")
				}
				r.mu.Unlock()
				return
			}
			kickAll()
		case p := <-r.proposeCh:
			batch, bytes, reason := r.collectBatch(p)
			r.mu.Lock()
			if r.role != Leader || r.term != term {
				r.mu.Unlock()
				for _, q := range batch {
					q.done <- proposalResult{err: errNotLeader()}
				}
				return
			}
			now := time.Now()
			var last uint64
			for _, q := range batch {
				idx, _ := r.lastLogLocked()
				e := Entry{Term: term, Index: idx + 1, Cmd: q.cmd}
				r.log = append(r.log, e)
				last = e.Index
				q.appended = now
				if r.pending == nil {
					r.pending = make(map[uint64]*proposal)
				}
				r.pending[e.Index] = q
			}
			r.metrics.noteAppend(int64(len(batch)), int64(bytes), reason)
			r.mu.Unlock()
			if r.cfg.Pipeline {
				// Stream AppendEntries right away; the sync stage makes
				// the batch durable and commit advances from there.
				kickAll()
				select {
				case r.syncCh <- struct{}{}:
				default:
				}
			} else {
				r.fsync()
				r.advanceDurable(last)
				r.maybeAdvanceCommit(term) // single-voter groups commit locally
				kickAll()
			}
		}
	}
}

// collectBatch gathers the leader's next proposal batch behind the
// configured count/byte/time window and reports why it was closed. The
// delay window, when set, is measured from the first moment the queue
// runs dry, so a batch is never held longer than MaxBatchDelay.
func (r *Raft) collectBatch(first *proposal) (batch []*proposal, bytes int, reason flushReason) {
	batch = []*proposal{first}
	bytes = len(first.cmd)
	if !r.cfg.BatchEnabled {
		return batch, bytes, flushIdle
	}
	var timer *time.Timer
	var timeout <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if len(batch) >= r.cfg.MaxBatch {
			return batch, bytes, flushCount
		}
		if bytes >= r.cfg.MaxBatchBytes {
			return batch, bytes, flushBytes
		}
		select {
		case q := <-r.proposeCh:
			batch = append(batch, q)
			bytes += len(q.cmd)
			continue
		default:
		}
		if r.cfg.MaxBatchDelay <= 0 {
			return batch, bytes, flushIdle
		}
		if timeout == nil {
			timer = time.NewTimer(r.cfg.MaxBatchDelay)
			timeout = timer.C
		}
		select {
		case q := <-r.proposeCh:
			batch = append(batch, q)
			bytes += len(q.cmd)
		case <-timeout:
			return batch, bytes, flushTimer
		case <-r.stopCh:
			return batch, bytes, flushIdle
		}
	}
}

// advanceDurable raises durableIndex to idx (never past the current log
// end, which a follower's log truncation could have moved back).
func (r *Raft) advanceDurable(idx uint64) {
	r.mu.Lock()
	if last, _ := r.lastLogLocked(); idx > last {
		idx = last
	}
	if idx > r.durableIndex {
		r.durableIndex = idx
	}
	r.mu.Unlock()
}

// syncLoop is the pipelined leader's log-sync stage: replicators stream
// entries to followers as soon as they are appended in memory, while
// this loop makes them durable in the background. Appends that arrive
// while one fsync is in flight coalesce into a single follow-up sync
// (leader-side group commit), and durableIndex — the leader's own
// acknowledgement in the commit rule — only advances once the covering
// fsync completes.
func (r *Raft) syncLoop(term uint64, done chan struct{}) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-done:
			return
		case <-r.syncCh:
		}
		for {
			r.mu.Lock()
			if r.role != Leader || r.term != term {
				r.mu.Unlock()
				return
			}
			last, _ := r.lastLogLocked()
			if r.durableIndex >= last {
				r.mu.Unlock()
				break
			}
			r.mu.Unlock()
			r.fsync()
			r.advanceDurable(last)
			r.maybeAdvanceCommit(term)
		}
	}
}

func (r *Raft) stillLeader(term uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == Leader && r.term == term
}

// failPending rejects all uncommitted proposals (leadership lost or
// shutdown).
func (r *Raft) failPending() {
	r.mu.Lock()
	pend := r.pending
	r.pending = nil
	r.mu.Unlock()
	for _, p := range pend {
		p.done <- proposalResult{err: errNotLeader()}
	}
	r.drainProposals()
}

// replicateTo drives one peer: whenever kicked (new entries or
// heartbeat), it sends AppendEntries from the peer's nextIndex and
// processes the reply. It exits with the leader term.
func (r *Raft) replicateTo(term uint64, peer *Raft, kick chan struct{}, done chan struct{}) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-done:
			return
		case <-kick:
		}
		for {
			r.mu.Lock()
			if r.role != Leader || r.term != term {
				r.mu.Unlock()
				return
			}
			next := r.nextIndex[peer.id]
			first := r.firstIndexLocked()
			if next <= first {
				// The peer needs entries compacted away: install the
				// snapshot, then resume appending after it.
				snapIdx, snapTerm := first, r.log[0].Term
				data := r.snapData
				r.mu.Unlock()
				if r.deliver(peer) != nil {
					break // message lost; retry on next kick
				}
				ok, replyTerm := peer.handleInstallSnapshot(term, r.id, snapIdx, snapTerm, data)
				r.mu.Lock()
				if r.role != Leader || r.term != term {
					r.mu.Unlock()
					return
				}
				if replyTerm > r.term {
					r.becomeFollowerLocked(replyTerm, "")
					r.mu.Unlock()
					return
				}
				if ok {
					r.touchPeerLocked(peer.id)
					if snapIdx > r.matchIndex[peer.id] {
						r.matchIndex[peer.id] = snapIdx
					}
					r.nextIndex[peer.id] = r.matchIndex[peer.id] + 1
				}
				r.mu.Unlock()
				if !ok {
					break // peer stopped; retry on next kick
				}
				continue
			}
			if next == 0 {
				next = 1
			}
			prev := r.entryAtLocked(next - 1)
			entries := append([]Entry(nil), r.log[next-first:]...)
			commit := r.commitIndex
			r.mu.Unlock()

			if r.deliver(peer) != nil {
				break // message lost in the fabric; retry on next kick
			}
			ok, replyTerm, conflictHint := peer.handleAppendEntries(
				term, r.id, prev.Index, prev.Term, entries, commit)

			r.mu.Lock()
			if r.role != Leader || r.term != term {
				r.mu.Unlock()
				return
			}
			if replyTerm > r.term {
				r.becomeFollowerLocked(replyTerm, "")
				r.mu.Unlock()
				return
			}
			if replyTerm == 0 {
				// Peer stopped; retry on the next kick.
				r.mu.Unlock()
				break
			}
			r.touchPeerLocked(peer.id)
			if ok {
				if n := prev.Index + uint64(len(entries)); n > r.matchIndex[peer.id] {
					r.matchIndex[peer.id] = n
				}
				r.nextIndex[peer.id] = r.matchIndex[peer.id] + 1
				r.mu.Unlock()
				r.maybeAdvanceCommit(term)
				break
			}
			// Log inconsistency: back off nextIndex and retry (the
			// snapshot path above handles hints below the compaction
			// boundary).
			if conflictHint > 0 && conflictHint < next {
				r.nextIndex[peer.id] = conflictHint
			} else if next > 1 {
				r.nextIndex[peer.id] = next - 1
			}
			r.mu.Unlock()
		}
	}
}

// maybeAdvanceCommit recomputes the commit index from voter match
// indices.
func (r *Raft) maybeAdvanceCommit(term uint64) {
	r.mu.Lock()
	if r.role != Leader || r.term != term {
		r.mu.Unlock()
		return
	}
	matches := make([]uint64, 0, r.voters)
	if !r.cfg.Learner {
		// The leader's own vote is its durable index: with pipelined
		// replication the log tail may be appended but not yet fsynced,
		// and those entries must not count toward quorum.
		matches = append(matches, r.durableIndex)
	}
	for id, p := range r.peers {
		if p.IsLearner() {
			continue
		}
		matches = append(matches, r.matchIndex[id])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	// matches is descending; the quorum index is the (majority-1)th.
	quorum := r.voters/2 + 1
	if len(matches) < quorum {
		r.mu.Unlock()
		return
	}
	n := matches[quorum-1]
	if n > r.commitIndex && n >= r.firstIndexLocked() && r.entryAtLocked(n).Term == term {
		r.commitIndex = n
		select {
		case r.applyCh <- struct{}{}:
		default:
		}
	}
	r.mu.Unlock()
}

// handleAppendEntries is the AppendEntries RPC handler (also heartbeat).
// replyTerm 0 signals a stopped replica.
func (r *Raft) handleAppendEntries(term uint64, leader string, prevIdx, prevTerm uint64,
	entries []Entry, leaderCommit uint64) (ok bool, replyTerm uint64, conflictHint uint64) {

	if r.stopped() {
		return false, 0, 0
	}
	r.mu.Lock()
	if term < r.term {
		defer r.mu.Unlock()
		return false, r.term, 0
	}
	if term > r.term || r.role == Candidate || (r.role == Leader && term >= r.term) {
		r.becomeFollowerLocked(term, leader)
	}
	r.leaderID = leader
	r.electionReset = time.Now()
	// Record the advertised leader commit as the bounded-staleness read
	// point: the leader had committed leaderCommit as of this exchange,
	// whatever the state of our log below.
	if leaderCommit > r.staleCommit {
		r.staleCommit = leaderCommit
	}
	r.staleContact = time.Now()

	lastIdx, _ := r.lastLogLocked()
	first := r.firstIndexLocked()
	if prevIdx > lastIdx {
		defer r.mu.Unlock()
		return false, r.term, lastIdx + 1
	}
	if prevIdx < first {
		// The prefix up to first is covered by our snapshot (committed
		// state), so it cannot conflict: skip entries at or below it.
		skip := first - prevIdx
		if uint64(len(entries)) <= skip {
			defer r.mu.Unlock()
			return true, r.term, 0
		}
		entries = entries[skip:]
		prevIdx = first
		prevTerm = r.log[0].Term
	}
	if r.entryAtLocked(prevIdx).Term != prevTerm {
		// Find the first index of the conflicting term.
		conflictTerm := r.entryAtLocked(prevIdx).Term
		hint := prevIdx
		for hint > first+1 && r.entryAtLocked(hint-1).Term == conflictTerm {
			hint--
		}
		defer r.mu.Unlock()
		return false, r.term, hint
	}
	// Append new entries, truncating conflicts.
	appended := false
	for i, e := range entries {
		at := prevIdx + 1 + uint64(i)
		if at <= lastIdx {
			if r.entryAtLocked(at).Term == e.Term {
				continue
			}
			r.log = r.log[:at-first]
			lastIdx = at - 1
		}
		r.log = append(r.log, e)
		lastIdx = e.Index
		appended = true
	}
	if leaderCommit > r.commitIndex {
		lastIdx, _ = r.lastLogLocked()
		r.commitIndex = min(leaderCommit, lastIdx)
		select {
		case r.applyCh <- struct{}{}:
		default:
		}
	}
	newLast := lastIdx
	curTerm := r.term
	r.mu.Unlock()
	if appended {
		// Followers sync before acking: an ok reply always implies the
		// appended entries are durable, whether or not the leader
		// pipelines its own sync.
		r.fsync()
		r.advanceDurable(newLast)
	}
	return true, curTerm, 0
}

// handleInstallSnapshot is the InstallSnapshot RPC handler: a follower
// that lags behind the leader's compacted log replaces its state machine
// with the leader's snapshot.
func (r *Raft) handleInstallSnapshot(term uint64, leader string, snapIdx, snapTerm uint64, data []byte) (ok bool, replyTerm uint64) {
	if r.stopped() {
		return false, 0
	}
	r.mu.Lock()
	if term < r.term {
		defer r.mu.Unlock()
		return false, r.term
	}
	if term > r.term || r.role == Candidate {
		r.becomeFollowerLocked(term, leader)
	}
	r.leaderID = leader
	r.electionReset = time.Now()
	if snapIdx > r.staleCommit {
		r.staleCommit = snapIdx
	}
	r.staleContact = time.Now()
	if snapIdx <= r.lastApplied {
		// Already past this snapshot.
		defer r.mu.Unlock()
		return true, r.term
	}
	sm, _ := r.cfg.SM.(Snapshotter)
	if sm == nil {
		// Cannot restore: reject so the leader keeps its log long enough
		// (NewGroup validation prevents this configuration).
		defer r.mu.Unlock()
		return false, r.term
	}
	r.log = []Entry{{Term: snapTerm, Index: snapIdx}}
	r.snapData = data
	r.commitIndex = snapIdx
	r.lastApplied = snapIdx
	r.mu.Unlock()
	sm.Restore(data)
	r.mu.Lock()
	r.applyCond.Broadcast()
	r.mu.Unlock()
	r.fsync()
	r.advanceDurable(snapIdx)
	return true, r.term
}
