// Package types defines the core metadata model shared by every component
// of the Mantle reproduction: inode identifiers, directory/object entries,
// attribute records, operation results with per-phase timings, and the
// error taxonomy used across TafDB, IndexNode, the proxies, and the
// baseline systems.
package types

import (
	"errors"
	"fmt"
	"time"
)

// InodeID uniquely identifies a directory or object within a namespace.
// ID 0 is reserved as "invalid"; RootID identifies the namespace root.
type InodeID uint64

// RootID is the inode ID of the root directory of every namespace.
const RootID InodeID = 1

// InvalidID is the zero InodeID, never assigned to an entry.
const InvalidID InodeID = 0

// EntryKind discriminates directories from objects in the MetaTable.
type EntryKind uint8

const (
	// KindDir marks a directory entry.
	KindDir EntryKind = iota + 1
	// KindObject marks an object (file) entry.
	KindObject
)

// String returns "dir" or "object".
func (k EntryKind) String() string {
	switch k {
	case KindDir:
		return "dir"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Perm is a permission bitmask attached to every directory entry. Path
// permissions are the intersection (bitwise AND) of all ancestor
// permissions, following the Lazy-Hybrid approach cited by the paper.
type Perm uint16

// Permission bits. A caller needs PermLookup on every ancestor to resolve
// a path through it.
const (
	PermLookup Perm = 1 << iota
	PermRead
	PermWrite
	// PermAll grants everything.
	PermAll Perm = PermLookup | PermRead | PermWrite
)

// Intersect returns the aggregated permission of a path whose components
// carry p and q.
func (p Perm) Intersect(q Perm) Perm { return p & q }

// Allows reports whether all bits in need are present.
func (p Perm) Allows(need Perm) bool { return p&need == need }

// Attr is the attribute metadata of an entry (the "blue" metadata in the
// paper's Figure 5). It lives in TafDB only; IndexNode never stores it.
type Attr struct {
	Size      int64     // object size in bytes (0 for directories)
	LinkCount int64     // number of children for directories
	MTime     time.Time // last modification time
	Owner     uint32    // owning principal
}

// Entry is a full metadata row in TafDB's MetaTable, keyed by (Pid, Name).
type Entry struct {
	Pid  InodeID   // parent directory ID
	Name string    // component name within the parent
	ID   InodeID   // this entry's inode ID
	Kind EntryKind // directory or object
	Perm Perm      // access permission (directories)
	Attr Attr      // attribute metadata
}

// IsDir reports whether the entry is a directory.
func (e *Entry) IsDir() bool { return e.Kind == KindDir }

// AccessEntry is the slice of directory metadata that IndexNode
// consolidates (the "red" metadata in Figure 5): roughly 80 bytes per
// directory — pid, name, id, permission, and a lock bit used by the
// cross-directory rename protocol.
type AccessEntry struct {
	Pid    InodeID
	Name   string
	ID     InodeID
	Perm   Perm
	Locked bool   // rename lock bit
	LockID string // UUID of the request holding the lock (idempotent retry)
}

// Phase labels one stage of a metadata operation, mirroring the paper's
// latency breakdown (§6.3): path resolution, rename loop detection, and
// execution against the metadata stores.
type Phase uint8

const (
	// PhaseLookup is path resolution.
	PhaseLookup Phase = iota
	// PhaseLoopDetect is rename loop detection (dirrename only).
	PhaseLoopDetect
	// PhaseExecute is the metadata read/update once the pid is known.
	PhaseExecute
	numPhases
)

// NumPhases is the number of distinct phases.
const NumPhases = int(numPhases)

// String names the phase as in the paper's figures.
func (p Phase) String() string {
	switch p {
	case PhaseLookup:
		return "lookup"
	case PhaseLoopDetect:
		return "loopdetect"
	case PhaseExecute:
		return "execute"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// PhaseTimings accumulates wall time per phase for one operation.
type PhaseTimings [NumPhases]time.Duration

// Add accumulates d into phase p and returns the updated timings.
func (t PhaseTimings) Add(p Phase, d time.Duration) PhaseTimings {
	t[p] += d
	return t
}

// Total returns the sum across phases.
func (t PhaseTimings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t {
		sum += d
	}
	return sum
}

// OpKind enumerates the metadata operations exercised by the evaluation,
// using mdtest's operation names as the paper does.
type OpKind uint8

const (
	// OpCreate creates an object.
	OpCreate OpKind = iota
	// OpDelete removes an object.
	OpDelete
	// OpObjStat stats an object.
	OpObjStat
	// OpDirStat stats a directory.
	OpDirStat
	// OpMkdir creates a directory.
	OpMkdir
	// OpRmdir removes an empty directory.
	OpRmdir
	// OpDirRename renames a directory, possibly across parents.
	OpDirRename
	// OpReadDir lists a directory.
	OpReadDir
	// OpSetAttr updates directory attributes.
	OpSetAttr
	// OpLookup resolves a path to an inode ID (internal step and also a
	// first-class op for the depth experiments).
	OpLookup
	numOps
)

// NumOps is the number of distinct op kinds.
const NumOps = int(numOps)

// String names the op as in mdtest / the paper.
func (o OpKind) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpObjStat:
		return "objstat"
	case OpDirStat:
		return "dirstat"
	case OpMkdir:
		return "mkdir"
	case OpRmdir:
		return "rmdir"
	case OpDirRename:
		return "dirrename"
	case OpReadDir:
		return "readdir"
	case OpSetAttr:
		return "setattr"
	case OpLookup:
		return "lookup"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Result carries the outcome of one metadata operation: the resolved
// entry (when applicable), the per-phase latency split, the number of RPC
// round trips consumed, and how many times the op was retried after a
// transaction abort or lock conflict.
type Result struct {
	Entry   Entry
	Phases  PhaseTimings
	RTTs    int
	Retries int
}

// Error taxonomy. Components wrap these with context; callers match with
// errors.Is.
var (
	// ErrNotFound: a path component or entry does not exist.
	ErrNotFound = errors.New("metadata: not found")
	// ErrExists: entry already exists on create/mkdir/rename destination.
	ErrExists = errors.New("metadata: already exists")
	// ErrNotDir: a path component is an object, not a directory.
	ErrNotDir = errors.New("metadata: not a directory")
	// ErrIsDir: object op applied to a directory.
	ErrIsDir = errors.New("metadata: is a directory")
	// ErrNotEmpty: rmdir on a non-empty directory.
	ErrNotEmpty = errors.New("metadata: directory not empty")
	// ErrPermission: permission check failed along the path.
	ErrPermission = errors.New("metadata: permission denied")
	// ErrConflict: transaction aborted due to a write-write conflict;
	// the caller should retry.
	ErrConflict = errors.New("metadata: transaction conflict")
	// ErrLocked: a rename lock is held by a concurrent operation.
	ErrLocked = errors.New("metadata: directory locked by concurrent rename")
	// ErrLoop: the rename would move a directory under its own subtree.
	ErrLoop = errors.New("metadata: rename would create a loop")
	// ErrRetryExhausted: op gave up after the configured retry budget.
	ErrRetryExhausted = errors.New("metadata: retries exhausted")
	// ErrNotLeader: a Raft write or linearisable read reached a
	// non-leader replica.
	ErrNotLeader = errors.New("raft: not leader")
	// ErrStopped: component has been shut down.
	ErrStopped = errors.New("metadata: service stopped")
	// ErrUnreachable: a simulated message was lost in the fabric (dropped,
	// partitioned, or the peer blackholed). Fabric-level and therefore
	// retryable, unlike application errors.
	ErrUnreachable = errors.New("netsim: peer unreachable")
	// ErrTimeout: an RPC exceeded its per-call deadline (including
	// retries).
	ErrTimeout = errors.New("rpc: deadline exceeded")
	// ErrUnavailable: the service cannot currently make progress (no
	// reachable quorum leader); the operation failed fast rather than
	// hanging. Surfaced by writes during partitions.
	ErrUnavailable = errors.New("metadata: service unavailable")
	// ErrOverloaded: every eligible replica is saturated and the request
	// was shed instead of queued (load-aware routing backpressure).
	// Usually wrapped in an OverloadError carrying a retry-after hint;
	// match with errors.Is(err, ErrOverloaded).
	ErrOverloaded = errors.New("metadata: replica overloaded, request shed")
)

// OverloadError is the typed backpressure error returned when the
// load-aware router sheds a request: RetryAfter is the server's estimate
// of when capacity frees up (derived from the saturated replicas' queue
// depth), which clients should treat as a minimum backoff.
type OverloadError struct {
	RetryAfter time.Duration
}

// Error renders the shed notice with its retry-after hint.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Overloaded wraps a retry-after hint in an OverloadError.
func Overloaded(retryAfter time.Duration) error {
	return &OverloadError{RetryAfter: retryAfter}
}

// RetryAfter extracts the retry-after hint from an overload error chain
// (0 when err is not an overload shed).
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Key identifies a MetaTable row: the parent directory ID plus the
// component name. TafDB shards rows by Pid so that a directory's children
// colocate on one shard.
type Key struct {
	Pid  InodeID
	Name string
}

// Less orders keys by (Pid, Name) — the MetaTable's primary-key order.
func (k Key) Less(o Key) bool {
	if k.Pid != o.Pid {
		return k.Pid < o.Pid
	}
	return k.Name < o.Name
}

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("%d/%s", uint64(k.Pid), k.Name) }
