package types

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPermIntersectAllows(t *testing.T) {
	if !PermAll.Allows(PermLookup | PermWrite) {
		t.Fatal("PermAll denies")
	}
	p := PermAll.Intersect(PermLookup | PermRead)
	if p.Allows(PermWrite) {
		t.Fatal("intersection kept write")
	}
	if !p.Allows(PermLookup) || !p.Allows(PermRead) {
		t.Fatal("intersection dropped kept bits")
	}
	var zero Perm
	if zero.Allows(PermLookup) {
		t.Fatal("zero perm allows lookup")
	}
	if !zero.Allows(0) {
		t.Fatal("zero need should always pass")
	}
}

func TestPermIntersectionIsMonotonic(t *testing.T) {
	f := func(a, b, need uint16) bool {
		pa, pb, n := Perm(a), Perm(b), Perm(need)
		inter := pa.Intersect(pb)
		// The intersection never allows something either side denies.
		if inter.Allows(n) && (!pa.Allows(n) || !pb.Allows(n)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrdering(t *testing.T) {
	keys := []Key{
		{Pid: 2, Name: "a"},
		{Pid: 1, Name: "z"},
		{Pid: 1, Name: "a"},
		{Pid: 3, Name: ""},
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	want := []Key{{1, "a"}, {1, "z"}, {2, "a"}, {3, ""}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
	// Less is a strict weak order: irreflexive, asymmetric.
	f := func(p1, p2 uint32, n1, n2 string) bool {
		a := Key{Pid: InodeID(p1), Name: n1}
		b := Key{Pid: InodeID(p2), Name: n2}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseTimings(t *testing.T) {
	var pt PhaseTimings
	pt = pt.Add(PhaseLookup, 10*time.Microsecond)
	pt = pt.Add(PhaseLookup, 5*time.Microsecond)
	pt = pt.Add(PhaseExecute, 20*time.Microsecond)
	if pt[PhaseLookup] != 15*time.Microsecond {
		t.Fatalf("lookup = %v", pt[PhaseLookup])
	}
	if pt.Total() != 35*time.Microsecond {
		t.Fatalf("total = %v", pt.Total())
	}
}

func TestStringers(t *testing.T) {
	if KindDir.String() != "dir" || KindObject.String() != "object" {
		t.Fatal("kind strings")
	}
	wantOps := map[OpKind]string{
		OpCreate: "create", OpDelete: "delete", OpObjStat: "objstat",
		OpDirStat: "dirstat", OpMkdir: "mkdir", OpRmdir: "rmdir",
		OpDirRename: "dirrename", OpReadDir: "readdir",
		OpSetAttr: "setattr", OpLookup: "lookup",
	}
	for op, want := range wantOps {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", op, op.String())
		}
	}
	wantPhases := map[Phase]string{
		PhaseLookup: "lookup", PhaseLoopDetect: "loopdetect", PhaseExecute: "execute",
	}
	for ph, want := range wantPhases {
		if ph.String() != want {
			t.Fatalf("phase %d = %q", ph, ph.String())
		}
	}
	if k := (Key{Pid: 7, Name: "x"}); k.String() != "7/x" {
		t.Fatal("key string")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{
		ErrNotFound, ErrExists, ErrNotDir, ErrIsDir, ErrNotEmpty,
		ErrPermission, ErrConflict, ErrLocked, ErrLoop,
		ErrRetryExhausted, ErrNotLeader, ErrStopped,
	}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("error %d matches %d", i, j)
			}
		}
		// Wrapping preserves identity.
		wrapped := fmt.Errorf("context: %w", a)
		if !errors.Is(wrapped, a) {
			t.Fatalf("wrap broke errors.Is for %v", a)
		}
	}
}

func TestEntryIsDir(t *testing.T) {
	d := Entry{Kind: KindDir}
	o := Entry{Kind: KindObject}
	if !d.IsDir() || o.IsDir() {
		t.Fatal("IsDir")
	}
}
