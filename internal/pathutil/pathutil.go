// Package pathutil implements the object-path algebra used throughout the
// Mantle reproduction: normalisation, component splitting, depth
// computation, prefix truncation for the TopDirPathCache's k-truncation
// rule, ancestry tests for rename loop detection, and least-common-ancestor
// computation for the rename lock-check walk.
//
// Paths are slash-separated, always absolute, and never end in a slash
// (except the root itself, "/").
package pathutil

import (
	"strings"

	"mantle/internal/intern"
)

// Intern returns a retention-safe form of a path or component string.
// Nearly every string this package hands out — Base, Rel, TruncateRel
// prefixes, Split components — is a substring of a caller's path, so
// storing one in a long-lived map or struct pins the whole original
// allocation. Short strings (up to intern.MaxLen) are deduplicated
// through the process-wide intern table, which copies on first sight;
// longer ones are cloned. Either way the result is safe to retain
// indefinitely.
func Intern(s string) string {
	if len(s) <= intern.MaxLen {
		return intern.Intern(s)
	}
	return strings.Clone(s)
}

// Clean normalises p to canonical form: leading slash, no duplicate or
// trailing slashes, no "." components. It does not resolve "..", which is
// not part of the COSS API surface; ".." is treated as a literal name.
//
// Already-canonical paths are returned unchanged without allocating —
// the hot paths (every lookup, every RemovalList scan) re-clean paths
// that are almost always canonical already.
func Clean(p string) string {
	if isCanonical(p) {
		return p
	}
	return slowClean(p)
}

// isCanonical reports whether p is already in canonical form.
func isCanonical(p string) bool {
	if p == "" || p[0] != '/' {
		return false
	}
	if p == "/" {
		return true
	}
	if p[len(p)-1] == '/' {
		return false
	}
	for i := 1; i < len(p); i++ {
		if p[i] == '/' && p[i-1] == '/' {
			return false
		}
		// A "." component: preceded by '/' and followed by '/' or end.
		if p[i] == '.' && p[i-1] == '/' && (i == len(p)-1 || p[i+1] == '/') {
			return false
		}
	}
	return true
}

func slowClean(p string) string {
	if p == "" {
		return "/"
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, c := range parts {
		if c == "" || c == "." {
			continue
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "/"
	}
	return "/" + strings.Join(out, "/")
}

// Split returns the cleaned path's components. The root yields an empty
// slice.
func Split(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// Rel returns the cleaned path's components as one relative string
// ("/a/b/c" → "a/b/c", "/" → ""), the zero-allocation counterpart of
// Split for use with NextComponent.
func Rel(p string) string {
	p = Clean(p)
	if p == "/" {
		return ""
	}
	return p[1:]
}

// NextComponent splits a relative component string (as produced by Rel
// or TruncateRel) into its first component and the remainder, without
// allocating: "a/b/c" → ("a", "b/c"); "c" → ("c", ""). The empty string
// yields ("", "").
func NextComponent(rest string) (name, remainder string) {
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

// Components calls fn for every component of the cleaned path in order,
// with last marking the final component, and stops early if fn returns
// false. It does not allocate for canonical inputs — this is the lookup
// hot path's replacement for Split.
func Components(p string, fn func(name string, last bool) bool) {
	rest := Rel(p)
	for rest != "" {
		name, remainder := NextComponent(rest)
		if !fn(name, remainder == "") {
			return
		}
		rest = remainder
	}
}

// Join builds a cleaned path from components.
func Join(components ...string) string {
	return Clean(strings.Join(components, "/"))
}

// Depth returns the number of components in the cleaned path. The root
// has depth 0; "/a/b" has depth 2.
func Depth(p string) int {
	p = Clean(p)
	if p == "/" {
		return 0
	}
	return strings.Count(p, "/")
}

// Base returns the final component of the cleaned path, or "" for root.
func Base(p string) string {
	p = Clean(p)
	if p == "/" {
		return ""
	}
	return p[strings.LastIndexByte(p, '/')+1:]
}

// Dir returns the parent of the cleaned path. The parent of root is root.
func Dir(p string) string {
	p = Clean(p)
	if p == "/" {
		return "/"
	}
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/"
	}
	return p[:i]
}

// TruncatePrefix implements the TopDirPathCache k-truncation rule (§5.1.1):
// given a path of depth N and the empirical constant k, it returns the
// prefix obtained by removing the final k components, along with the
// remaining suffix components that must still be resolved level by level.
// If the path has k or fewer components the prefix is the root and every
// component remains in the suffix — such paths are never cached.
func TruncatePrefix(p string, k int) (prefix string, suffix []string) {
	p = Clean(p)
	if k < 0 {
		k = 0
	}
	n := Depth(p)
	cut := n - k
	if cut <= 0 {
		return "/", Split(p)
	}
	if cut == n {
		return p, nil
	}
	// The prefix of the first cut components ends just before the
	// (cut+1)-th slash; index arithmetic on the canonical string avoids
	// the split/join allocations on the lookup hot path.
	seen := 0
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			seen++
			if seen == cut {
				return p[:i], strings.Split(p[i+1:], "/")
			}
		}
	}
	return p, nil // unreachable for canonical paths
}

// TruncateRel is TruncatePrefix returning the suffix as one relative
// component string instead of a slice ("a/b" rather than ["a","b"]), so
// the lookup hot path can iterate it with NextComponent without
// allocating. The empty suffix means the whole path is the prefix.
func TruncateRel(p string, k int) (prefix, suffix string) {
	p = Clean(p)
	if k < 0 {
		k = 0
	}
	n := Depth(p)
	cut := n - k
	if cut <= 0 {
		return "/", Rel(p)
	}
	if cut == n {
		return p, ""
	}
	seen := 0
	for i := 1; i < len(p); i++ {
		if p[i] == '/' {
			seen++
			if seen == cut {
				return p[:i], p[i+1:]
			}
		}
	}
	return p, "" // unreachable for canonical paths
}

// IsAncestor reports whether ancestor is a strict ancestor of p (or equal
// when allowEqual is set), comparing cleaned paths component-wise.
func IsAncestor(ancestor, p string, allowEqual bool) bool {
	a, b := Clean(ancestor), Clean(p)
	if a == b {
		return allowEqual
	}
	if a == "/" {
		return true
	}
	return strings.HasPrefix(b, a) && len(b) > len(a) && b[len(a)] == '/'
}

// LCA returns the least common ancestor of two cleaned paths.
func LCA(a, b string) string {
	ca, cb := Split(a), Split(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	i := 0
	for i < n && ca[i] == cb[i] {
		i++
	}
	return Join(ca[:i]...)
}

// Prefixes returns every strict ancestor prefix of the cleaned path, from
// the first component down to the parent. "/a/b/c" yields ["/a", "/a/b"].
func Prefixes(p string) []string {
	comps := Split(p)
	if len(comps) <= 1 {
		return nil
	}
	out := make([]string, 0, len(comps)-1)
	cur := ""
	for _, c := range comps[:len(comps)-1] {
		cur = cur + "/" + c
		out = append(out, cur)
	}
	return out
}
