package pathutil

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"//", "/"},
		{"a", "/a"},
		{"/a", "/a"},
		{"/a/", "/a"},
		{"//a//b///c", "/a/b/c"},
		{"/a/./b", "/a/b"},
		{".", "/"},
		{"/a/b/c/", "/a/b/c"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	f := func(p string) bool {
		once := Clean(p)
		return Clean(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	gen := func(r *rand.Rand) string {
		n := r.Intn(6)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = string(rune('a' + r.Intn(26)))
		}
		return "/" + strings.Join(parts, "/")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Clean(gen(r))
		if got := Join(Split(p)...); got != p {
			t.Fatalf("Join(Split(%q)) = %q", p, got)
		}
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"/", 0}, {"/a", 1}, {"/a/b", 2}, {"a/b/c", 3}, {"//x//y", 2},
	}
	for _, c := range cases {
		if got := Depth(c.in); got != c.want {
			t.Errorf("Depth(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBaseDir(t *testing.T) {
	cases := []struct{ in, base, dir string }{
		{"/", "", "/"},
		{"/a", "a", "/"},
		{"/a/b", "b", "/a"},
		{"/a/b/c", "c", "/a/b"},
	}
	for _, c := range cases {
		if got := Base(c.in); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.in, got, c.base)
		}
		if got := Dir(c.in); got != c.dir {
			t.Errorf("Dir(%q) = %q, want %q", c.in, got, c.dir)
		}
	}
}

func TestTruncatePrefix(t *testing.T) {
	cases := []struct {
		in     string
		k      int
		prefix string
		suffix []string
	}{
		{"/A/C/E/G/H", 3, "/A/C", []string{"E", "G", "H"}}, // the paper's example
		{"/a/b", 3, "/", []string{"a", "b"}},
		{"/a/b", 2, "/", []string{"a", "b"}},
		{"/a/b/c", 1, "/a/b", []string{"c"}},
		{"/a/b/c", 0, "/a/b/c", nil},
		{"/", 2, "/", nil},
		{"/a", -1, "/a", nil},
	}
	for _, c := range cases {
		prefix, suffix := TruncatePrefix(c.in, c.k)
		if prefix != c.prefix {
			t.Errorf("TruncatePrefix(%q,%d) prefix = %q, want %q", c.in, c.k, prefix, c.prefix)
		}
		if len(suffix) != len(c.suffix) {
			t.Errorf("TruncatePrefix(%q,%d) suffix = %v, want %v", c.in, c.k, suffix, c.suffix)
			continue
		}
		for i := range suffix {
			if suffix[i] != c.suffix[i] {
				t.Errorf("TruncatePrefix(%q,%d) suffix = %v, want %v", c.in, c.k, suffix, c.suffix)
			}
		}
	}
}

func TestTruncatePrefixReassembles(t *testing.T) {
	f := func(rawComps []uint8, k uint8) bool {
		comps := make([]string, 0, len(rawComps)%8)
		for _, b := range rawComps {
			comps = append(comps, string(rune('a'+int(b)%26)))
			if len(comps) == 8 {
				break
			}
		}
		p := Join(comps...)
		prefix, suffix := TruncatePrefix(p, int(k%6))
		return Join(append(Split(prefix), suffix...)...) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsAncestor(t *testing.T) {
	cases := []struct {
		a, p       string
		allowEqual bool
		want       bool
	}{
		{"/", "/a", false, true},
		{"/a", "/a/b", false, true},
		{"/a", "/ab", false, false},
		{"/a/b", "/a", false, false},
		{"/a", "/a", false, false},
		{"/a", "/a", true, true},
		{"/", "/", true, true},
		{"/", "/", false, false},
		{"/a/b", "/a/b/c/d", false, true},
	}
	for _, c := range cases {
		if got := IsAncestor(c.a, c.p, c.allowEqual); got != c.want {
			t.Errorf("IsAncestor(%q,%q,%v) = %v, want %v", c.a, c.p, c.allowEqual, got, c.want)
		}
	}
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"/a/b/c", "/a/b/d", "/a/b"},
		{"/a/b", "/x/y", "/"},
		{"/a/b", "/a/b", "/a/b"},
		{"/a/b/c", "/a", "/a"},
		{"/", "/a", "/"},
	}
	for _, c := range cases {
		if got := LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestLCAIsAncestorOfBoth(t *testing.T) {
	f := func(sa, sb []uint8) bool {
		mk := func(bs []uint8) string {
			comps := make([]string, 0, len(bs)%6)
			for _, b := range bs {
				comps = append(comps, string(rune('a'+int(b)%3)))
				if len(comps) == 6 {
					break
				}
			}
			return Join(comps...)
		}
		a, b := mk(sa), mk(sb)
		l := LCA(a, b)
		return IsAncestor(l, a, true) && IsAncestor(l, b, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixes(t *testing.T) {
	got := Prefixes("/a/b/c")
	want := []string{"/a", "/a/b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Prefixes(/a/b/c) = %v, want %v", got, want)
	}
	if p := Prefixes("/a"); len(p) != 0 {
		t.Errorf("Prefixes(/a) = %v, want empty", p)
	}
	if p := Prefixes("/"); len(p) != 0 {
		t.Errorf("Prefixes(/) = %v, want empty", p)
	}
}

func FuzzClean(f *testing.F) {
	for _, seed := range []string{"", "/", "//", "/a/b/c", "a//b/", "/./a/./", "a/..", "日本/語"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, p string) {
		c := Clean(p)
		// Canonical form invariants.
		if c == "" || c[0] != '/' {
			t.Fatalf("Clean(%q) = %q: no leading slash", p, c)
		}
		if len(c) > 1 && c[len(c)-1] == '/' {
			t.Fatalf("Clean(%q) = %q: trailing slash", p, c)
		}
		if strings.Contains(c, "//") {
			t.Fatalf("Clean(%q) = %q: duplicate slash", p, c)
		}
		// Idempotence and reassembly.
		if Clean(c) != c {
			t.Fatalf("Clean not idempotent on %q -> %q", p, c)
		}
		if got := Join(Split(c)...); got != c {
			t.Fatalf("Join(Split(%q)) = %q", c, got)
		}
		// Depth agrees with Split.
		if Depth(c) != len(Split(c)) {
			t.Fatalf("Depth(%q)=%d Split len=%d", c, Depth(c), len(Split(c)))
		}
	})
}

func BenchmarkCleanCanonical(b *testing.B) {
	p := "/mdt/c17/d3/d4/d5/d6/d7/d8/d9/work"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Clean(p) != p {
			b.Fatal("not canonical")
		}
	}
}

func BenchmarkCleanDirty(b *testing.B) {
	p := "//mdt//c17/./d3/d4/"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Clean(p)
	}
}

func TestRelAndNextComponent(t *testing.T) {
	cases := []struct {
		p    string
		want []string
	}{
		{"/", nil},
		{"/a", []string{"a"}},
		{"/a/b/c", []string{"a", "b", "c"}},
		{"//a//b/", []string{"a", "b"}},
	}
	for _, c := range cases {
		var got []string
		rest := Rel(c.p)
		for rest != "" {
			var name string
			name, rest = NextComponent(rest)
			got = append(got, name)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Rel/NextComponent(%q) = %v, want %v", c.p, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Rel/NextComponent(%q) = %v, want %v", c.p, got, c.want)
			}
		}
	}
}

func TestComponentsMatchesSplit(t *testing.T) {
	for _, p := range []string{"/", "/a", "/a/b/c/d", "//x/./y//"} {
		var got []string
		var lastSeen bool
		Components(p, func(name string, last bool) bool {
			got = append(got, name)
			lastSeen = last
			return true
		})
		want := Split(p)
		if len(got) != len(want) {
			t.Fatalf("Components(%q) = %v, Split = %v", p, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Components(%q) = %v, Split = %v", p, got, want)
			}
		}
		if len(want) > 0 && !lastSeen {
			t.Fatalf("Components(%q): last flag never set", p)
		}
	}
	// Early stop.
	n := 0
	Components("/a/b/c", func(string, bool) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d components, want 1", n)
	}
}

func TestTruncateRelMatchesTruncatePrefix(t *testing.T) {
	for _, p := range []string{"/", "/a", "/a/b", "/a/b/c/d/e/f"} {
		for k := 0; k <= 7; k++ {
			wantPrefix, wantSuffix := TruncatePrefix(p, k)
			gotPrefix, gotSuffix := TruncateRel(p, k)
			if gotPrefix != wantPrefix {
				t.Fatalf("TruncateRel(%q,%d) prefix = %q, want %q", p, k, gotPrefix, wantPrefix)
			}
			var comps []string
			rest := gotSuffix
			for rest != "" {
				var name string
				name, rest = NextComponent(rest)
				comps = append(comps, name)
			}
			if len(comps) != len(wantSuffix) {
				t.Fatalf("TruncateRel(%q,%d) suffix = %v, want %v", p, k, comps, wantSuffix)
			}
			for i := range comps {
				if comps[i] != wantSuffix[i] {
					t.Fatalf("TruncateRel(%q,%d) suffix = %v, want %v", p, k, comps, wantSuffix)
				}
			}
		}
	}
}

func TestComponentIterationZeroAlloc(t *testing.T) {
	p := "/a/b/c/d/e/f/g/h"
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		Components(p, func(string, bool) bool { n++; return true })
		if n != 8 {
			t.Fatal("bad count")
		}
		_, _ = TruncateRel(p, 3)
	})
	if allocs != 0 {
		t.Fatalf("component iteration allocated %v allocs/op, want 0", allocs)
	}
}
