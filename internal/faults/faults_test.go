package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/types"
)

func TestDropEdgeIsDeterministic(t *testing.T) {
	// Two injectors with the same seed lose exactly the same messages.
	outcomes := func(seed int64) []bool {
		inj := New(seed)
		inj.DropEdge("a", "b", 0.5)
		out := make([]bool, 200)
		for k := range out {
			_, err := inj.Edge("a", "b")
			out[k] = err != nil
		}
		return out
	}
	x, y := outcomes(7), outcomes(7)
	drops := 0
	for k := range x {
		if x[k] != y[k] {
			t.Fatalf("seed 7 diverged at message %d", k)
		}
		if x[k] {
			drops++
		}
	}
	if drops < 50 || drops > 150 {
		t.Fatalf("p=0.5 dropped %d/200 (seed 7)", drops)
	}
	// The reverse direction has no rule.
	if _, err := New(7).Edge("b", "a"); err != nil {
		t.Fatalf("unruled edge dropped: %v", err)
	}
}

func TestLossErrorsCarrySeedAndUnreachable(t *testing.T) {
	inj := New(1234)
	inj.Blackhole("n1")
	_, err := inj.Edge("n0", "n1")
	if !errors.Is(err, types.ErrUnreachable) {
		t.Fatalf("blackhole err = %v", err)
	}
	if !strings.Contains(err.Error(), "seed 1234") {
		t.Fatalf("error does not name the seed: %v", err)
	}
	if err := inj.Down("n1"); !errors.Is(err, types.ErrUnreachable) {
		t.Fatalf("Down = %v", err)
	}
	inj.Restore("n1")
	if _, err := inj.Edge("n0", "n1"); err != nil {
		t.Fatalf("post-restore edge: %v", err)
	}
	if err := inj.Down("n1"); err != nil {
		t.Fatalf("post-restore Down: %v", err)
	}
}

func TestPartitionIsSymmetricAndHeals(t *testing.T) {
	inj := New(0)
	id := inj.Partition([]string{"a", "b"}, []string{"c"})
	for _, e := range [][2]string{{"a", "c"}, {"c", "a"}, {"b", "c"}, {"c", "b"}} {
		if _, err := inj.Edge(e[0], e[1]); !errors.Is(err, types.ErrUnreachable) {
			t.Fatalf("edge %v not cut: %v", e, err)
		}
	}
	// Same-side and outside traffic flows.
	for _, e := range [][2]string{{"a", "b"}, {"proxy", "a"}, {"proxy", "c"}, {"", "c"}} {
		if _, err := inj.Edge(e[0], e[1]); err != nil {
			t.Fatalf("edge %v cut: %v", e, err)
		}
	}
	inj.Heal(id)
	if _, err := inj.Edge("a", "c"); err != nil {
		t.Fatalf("healed edge still cut: %v", err)
	}
}

func TestSplitAllCutsEveryPair(t *testing.T) {
	inj := New(0)
	ids := inj.SplitAll([]string{"x", "y", "z"})
	if len(ids) != 3 {
		t.Fatalf("SplitAll installed %d partitions", len(ids))
	}
	for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"z", "x"}} {
		if _, err := inj.Edge(e[0], e[1]); !errors.Is(err, types.ErrUnreachable) {
			t.Fatalf("pair %v not cut", e)
		}
	}
	inj.HealAll()
	if _, err := inj.Edge("x", "z"); err != nil {
		t.Fatalf("HealAll left %v", err)
	}
}

func TestDelayEdgeAddsLatency(t *testing.T) {
	inj := New(0)
	inj.DelayEdge("a", "b", 3*time.Millisecond)
	extra, err := inj.Edge("a", "b")
	if err != nil || extra != 3*time.Millisecond {
		t.Fatalf("extra = %v err = %v", extra, err)
	}
	if extra, _ := inj.Edge("b", "a"); extra != 0 {
		t.Fatalf("reverse edge delayed by %v", extra)
	}
	s := inj.Stats()
	if s.Delayed != 1 || s.Delivered != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAttachGovernsFabricAndNodes(t *testing.T) {
	fabric := netsim.NewFabric(netsim.Config{})
	node := netsim.NewNode("srv", 0)
	inj := New(0)
	inj.Attach(fabric, node)
	inj.Blackhole("srv")
	if err := fabric.Deliver("proxy", "srv"); !errors.Is(err, types.ErrUnreachable) {
		t.Fatalf("fabric delivered to blackholed node: %v", err)
	}
	ran := false
	if err := node.Exec(0, func() error { ran = true; return nil }); !errors.Is(err, types.ErrUnreachable) {
		t.Fatalf("blackholed node executed (ran=%v): %v", ran, err)
	}
	inj.Restore("srv")
	if err := node.Exec(0, func() error { return nil }); err != nil {
		t.Fatalf("restored node refused: %v", err)
	}
	// Dropped deliveries still count a fabric round trip: the sender
	// waits out the loss.
	before := fabric.RPCs()
	inj.Blackhole("srv")
	_ = fabric.Deliver("proxy", "srv")
	if fabric.RPCs() != before+1 {
		t.Fatalf("lost delivery did not charge a round trip")
	}
}

func TestDropAllAndClear(t *testing.T) {
	inj := New(99)
	inj.DropAll(1)
	if _, err := inj.Edge("", ""); !errors.Is(err, types.ErrUnreachable) {
		t.Fatal("DropAll(1) delivered")
	}
	inj.Clear()
	if _, err := inj.Edge("", ""); err != nil {
		t.Fatalf("Clear left rules: %v", err)
	}
}

func TestScheduleRunsRule(t *testing.T) {
	inj := New(0)
	done := make(chan struct{})
	inj.Schedule(time.Millisecond, func(i *Injector) {
		i.Blackhole("late")
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("scheduled rule never ran")
	}
	if err := inj.Down("late"); !errors.Is(err, types.ErrUnreachable) {
		t.Fatal("scheduled blackhole not installed")
	}
}
