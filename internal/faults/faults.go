// Package faults is the deterministic fault-injection fabric for netsim
// clusters. An Injector implements netsim.FaultHook: once attached to a
// Fabric (and optionally to Nodes), every simulated message delivery and
// node execution consults it, so tests can lose, delay, and partition
// traffic that the crash-stop failure model cannot express — the §6.5
// availability scenarios (leader failover, follower reads relieving a
// dead leader) plus the network splits the paper's testbed never sees.
//
// All randomness comes from one seeded source, and every injected loss
// carries the seed in its error text, so a CI failure reproduces locally
// by fixing the same seed. With no rules installed the hook is never set
// and the zero-fault fast path in netsim pays nothing.
//
// Rules:
//
//   - DropEdge(src, dst, p): each message on the directed edge src→dst is
//     lost with probability p (DropAll sets a fabric-wide floor).
//   - DelayEdge(src, dst, d): messages on the edge incur d of extra
//     latency on top of the fabric RTT.
//   - Blackhole(node): the node is unreachable in both directions and
//     refuses local execution (netsim.Node.Exec) until Restored.
//   - Partition(a, b): symmetric partition — every message between a
//     member of set a and a member of set b is lost until Heal/HealAll.
//
// Rules may be installed and removed while traffic is in flight; the
// injector is safe for concurrent use.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/types"
)

// edge is a directed src→dst pair. Empty strings are legal endpoint
// names (callers that do not name themselves, e.g. proxies).
type edge struct{ src, dst string }

// partition is one symmetric split: traffic between sides a and b is
// lost. Membership is by node name.
type partition struct {
	id   int
	a, b map[string]bool
}

func (p *partition) cuts(src, dst string) bool {
	return (p.a[src] && p.b[dst]) || (p.b[src] && p.a[dst])
}

// Stats are the injector's delivery counters.
type Stats struct {
	// Delivered counts messages that passed every rule.
	Delivered int64
	// Dropped counts messages lost to drop rules, blackholes, or
	// partitions.
	Dropped int64
	// Delayed counts messages that incurred extra injected latency.
	Delayed int64
}

// Injector is a deterministic fault rule set. It implements
// netsim.FaultHook. The zero value is not usable; create injectors with
// New.
type Injector struct {
	seed int64

	mu         sync.Mutex
	rng        *rand.Rand
	dropAll    float64
	drops      map[edge]float64
	delays     map[edge]time.Duration
	blackholed map[string]bool
	partitions []*partition
	nextPartID int

	delivered atomic.Int64
	dropped   atomic.Int64
	delayed   atomic.Int64
}

var _ netsim.FaultHook = (*Injector)(nil)

// New creates an injector whose probabilistic rules draw from the given
// seed. Seed zero selects a fixed default so runs are reproducible by
// default.
func New(seed int64) *Injector {
	if seed == 0 {
		seed = 42
	}
	return &Injector{
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		drops:      make(map[edge]float64),
		delays:     make(map[edge]time.Duration),
		blackholed: make(map[string]bool),
	}
}

// Seed returns the seed the injector's randomness derives from; failure
// messages include it so CI runs reproduce locally.
func (i *Injector) Seed() int64 { return i.seed }

// Attach installs the injector on the fabric and on any nodes given, so
// deliveries (Fabric.RoundTrip/Deliver) and executions (Node.Exec) both
// consult it.
func (i *Injector) Attach(f *netsim.Fabric, nodes ...*netsim.Node) {
	f.SetFaults(i)
	for _, n := range nodes {
		n.SetFaults(i)
	}
}

// DropEdge loses each message on the directed edge src→dst with
// probability p (clamped to [0,1]). p = 0 removes the rule.
func (i *Injector) DropEdge(src, dst string, p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if p <= 0 {
		delete(i.drops, edge{src, dst})
		return
	}
	i.drops[edge{src, dst}] = min(p, 1)
}

// DropBetween installs symmetric drop rules on both directions of the
// pair.
func (i *Injector) DropBetween(a, b string, p float64) {
	i.DropEdge(a, b, p)
	i.DropEdge(b, a, p)
}

// DropAll loses every message, on any edge, with probability p — the
// lossy-network baseline.
func (i *Injector) DropAll(p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dropAll = min(max(p, 0), 1)
}

// DelayEdge adds d of extra latency to messages on the directed edge.
// d <= 0 removes the rule.
func (i *Injector) DelayEdge(src, dst string, d time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if d <= 0 {
		delete(i.delays, edge{src, dst})
		return
	}
	i.delays[edge{src, dst}] = d
}

// Blackhole makes the named node unreachable: every message to or from
// it is lost and Node.Exec refuses work, until Restore.
func (i *Injector) Blackhole(node string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.blackholed[node] = true
}

// Restore lifts a blackhole.
func (i *Injector) Restore(node string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.blackholed, node)
}

// Partition installs a symmetric partition between node sets a and b and
// returns its id for Heal. Nodes in neither set reach both sides.
func (i *Injector) Partition(a, b []string) int {
	p := &partition{a: make(map[string]bool, len(a)), b: make(map[string]bool, len(b))}
	for _, n := range a {
		p.a[n] = true
	}
	for _, n := range b {
		p.b[n] = true
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	p.id = i.nextPartID
	i.nextPartID++
	i.partitions = append(i.partitions, p)
	return p.id
}

// SplitAll partitions every listed node from every other listed node (a
// full mesh split: no two of them can communicate). Returns the ids of
// the installed pairwise partitions.
func (i *Injector) SplitAll(nodes []string) []int {
	ids := make([]int, 0, len(nodes)*(len(nodes)-1)/2)
	for x := 0; x < len(nodes); x++ {
		for y := x + 1; y < len(nodes); y++ {
			ids = append(ids, i.Partition([]string{nodes[x]}, []string{nodes[y]}))
		}
	}
	return ids
}

// Heal removes the partition with the given id.
func (i *Injector) Heal(id int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for k, p := range i.partitions {
		if p.id == id {
			i.partitions = append(i.partitions[:k], i.partitions[k+1:]...)
			return
		}
	}
}

// HealAll removes every partition.
func (i *Injector) HealAll() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.partitions = nil
}

// Clear removes every rule (drops, delays, blackholes, partitions),
// returning the fabric to fault-free delivery.
func (i *Injector) Clear() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dropAll = 0
	i.drops = make(map[edge]float64)
	i.delays = make(map[edge]time.Duration)
	i.blackholed = make(map[string]bool)
	i.partitions = nil
}

// Schedule runs fn(i) after d — a convenience for scripting fault
// timelines ("partition at t=2s, heal at t=5s") inside tests. The
// returned timer may be stopped to cancel.
func (i *Injector) Schedule(d time.Duration, fn func(*Injector)) *time.Timer {
	return time.AfterFunc(d, func() { fn(i) })
}

// Stats returns the delivery counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Delivered: i.delivered.Load(),
		Dropped:   i.dropped.Load(),
		Delayed:   i.delayed.Load(),
	}
}

// Edge implements netsim.FaultHook: it is consulted once per message
// round trip between src and dst, returning any extra injected latency
// and a non-nil error (wrapping types.ErrUnreachable) when the message
// is lost.
func (i *Injector) Edge(src, dst string) (time.Duration, error) {
	i.mu.Lock()
	if i.blackholed[src] || i.blackholed[dst] {
		i.mu.Unlock()
		i.dropped.Add(1)
		return 0, fmt.Errorf("faults: %s->%s blackholed (seed %d): %w",
			src, dst, i.seed, types.ErrUnreachable)
	}
	for _, p := range i.partitions {
		if p.cuts(src, dst) {
			i.mu.Unlock()
			i.dropped.Add(1)
			return 0, fmt.Errorf("faults: %s->%s partitioned (seed %d): %w",
				src, dst, i.seed, types.ErrUnreachable)
		}
	}
	p := i.dropAll
	if ep, ok := i.drops[edge{src, dst}]; ok && ep > p {
		p = ep
	}
	if p > 0 && i.rng.Float64() < p {
		i.mu.Unlock()
		i.dropped.Add(1)
		return 0, fmt.Errorf("faults: %s->%s dropped (p=%.2f, seed %d): %w",
			src, dst, p, i.seed, types.ErrUnreachable)
	}
	delay := i.delays[edge{src, dst}]
	i.mu.Unlock()
	i.delivered.Add(1)
	if delay > 0 {
		i.delayed.Add(1)
	}
	return delay, nil
}

// Down implements netsim.FaultHook: a blackholed node refuses local
// execution.
func (i *Injector) Down(node string) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.blackholed[node] {
		return fmt.Errorf("faults: node %s blackholed (seed %d): %w",
			node, i.seed, types.ErrUnreachable)
	}
	return nil
}
