package tafdb

import (
	"fmt"
	"sort"
	"time"

	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// This file implements online directory-subtree migration (DESIGN.md
// §9.3): moving a hot directory's row range — every MetaTable row keyed
// by its pid — from its hash-home shard to an explicitly chosen one,
// while the directory stays fully readable and writers stall for at most
// the copy window. The protocol:
//
//  1. Gate:   install a write gate on the pid. Transactions already in
//             flight drain (the gate installation waits them out);
//             new ones touching the pid park until the gate lifts and
//             then rebuild against the post-migration routing.
//  2. Copy:   one atomic cross-shard transaction — version guards pin
//             every source row, the destination piece inserts copies.
//  3. Verify: re-read the destination; a participant crash between
//             prepare and commit loses staged writes silently, so the
//             routing flip happens only after every row is confirmed
//             present. On mismatch the partial copy is undone and the
//             migration aborts with the source untouched.
//  4. Flip:   swap the routing table (epoch++, override pid→dst).
//             Reads that raced the flip retry once against the new
//             routing (see readRetry in ops.go).
//  5. GC:     delete the source copies (WAL-logged, so a later source
//             crash cannot resurrect them) and lift the gate.
//
// Aborting at any point before the flip leaves the source authoritative
// and at most some already-undone rows on the destination; nothing is
// ever lost or served twice.

// routingTable maps pids to shards: overrides for migrated directories,
// hash for everything else. Immutable; the DB swaps whole tables.
type routingTable struct {
	epoch     uint64
	overrides map[types.InodeID]int
}

// shardIdx maps a pid to its shard index under this table.
func (t *routingTable) shardIdx(db *DB, pid types.InodeID) int {
	if len(t.overrides) > 0 {
		if si, ok := t.overrides[pid]; ok {
			return si
		}
	}
	return db.hashIdx(pid)
}

// RoutingEpoch returns the current routing-table epoch; it advances on
// every migration flip.
func (db *DB) RoutingEpoch() uint64 { return db.routing.Load().epoch }

// ShardOf reports the shard currently serving pid's row range.
func (db *DB) ShardOf(pid types.InodeID) int { return db.shardIdx(pid) }

// flipRouting publishes a new routing table with pid served by dst. An
// override back to the hash home is dropped rather than stored, so the
// table only grows with directories living away from home.
func (db *DB) flipRouting(pid types.InodeID, dst int) {
	old := db.routing.Load()
	next := &routingTable{
		epoch:     old.epoch + 1,
		overrides: make(map[types.InodeID]int, len(old.overrides)+1),
	}
	for k, v := range old.overrides {
		next.overrides[k] = v
	}
	if dst == db.hashIdx(pid) {
		delete(next.overrides, pid)
	} else {
		next.overrides[pid] = dst
	}
	db.routing.Store(next)
}

// gatedRunner is the Runner the normal write path uses: it checks the
// migration write gate with the drain lock held across the transaction
// round, so a migration that installs a gate afterwards is guaranteed to
// see either this transaction's effects or none. A gated transaction
// waits the migration out, then fails with ErrConflict so the retry loop
// rebuilds its pieces against the post-migration routing.
type gatedRunner struct{ db *DB }

func (g gatedRunner) Run(op *rpc.Op, txnID string, pieces []txn.Piece) error {
	db := g.db
	db.migMu.RLock()
	if db.stalePieces(pieces) {
		// Built against pre-migration routing (the build→run window is
		// not covered by the gate drain): the target rows have moved, so
		// rebuild rather than fail guards against the old home.
		db.migMu.RUnlock()
		return fmt.Errorf("tafdb: txn %s: routing changed under transaction: %w", txnID, types.ErrConflict)
	}
	ch := db.gateFor(pieces)
	if ch == nil {
		err := db.runner.Run(op, txnID, pieces)
		db.migMu.RUnlock()
		return err
	}
	db.migMu.RUnlock()
	select {
	case <-ch:
	case <-time.After(migrationDrainTimeout):
	}
	return fmt.Errorf("tafdb: txn %s: target directory migrating: %w", txnID, types.ErrConflict)
}

// stalePieces reports whether any piece targets a participant that is
// no longer the routing home of a pid it touches — possible when the
// transaction was built before a routing flip and run after it. Cheap
// when no directory has ever migrated (epoch 0 short-circuits).
func (db *DB) stalePieces(pieces []txn.Piece) bool {
	if db.routing.Load().epoch == 0 {
		return false
	}
	for i := range pieces {
		p := pieces[i].P
		for _, gd := range pieces[i].Guards {
			if db.parts[db.shardIdx(gd.Key.Pid)] != p {
				return true
			}
		}
		for _, m := range pieces[i].Muts {
			if db.parts[db.shardIdx(m.Key.Pid)] != p {
				return true
			}
		}
	}
	return false
}

// gateFor returns the gate channel of the first gated pid the
// transaction touches, or nil when none is gated (the common case: a
// single pointer load and an empty-map check).
func (db *DB) gateFor(pieces []txn.Piece) chan struct{} {
	gates := *db.gates.Load()
	if len(gates) == 0 {
		return nil
	}
	for i := range pieces {
		for _, gd := range pieces[i].Guards {
			if ch, ok := gates[gd.Key.Pid]; ok {
				return ch
			}
		}
		for _, m := range pieces[i].Muts {
			if ch, ok := gates[m.Key.Pid]; ok {
				return ch
			}
		}
	}
	return nil
}

// installGate adds a write gate for dir, draining in-flight transaction
// rounds, and returns the channel to close when lifting it.
func (db *DB) installGate(dir types.InodeID) (chan struct{}, error) {
	ch := make(chan struct{})
	db.migMu.Lock()
	defer db.migMu.Unlock()
	old := *db.gates.Load()
	if _, busy := old[dir]; busy {
		return nil, fmt.Errorf("tafdb: dir %d already migrating: %w", dir, types.ErrConflict)
	}
	next := make(map[types.InodeID]chan struct{}, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[dir] = ch
	db.gates.Store(&next)
	return ch, nil
}

// liftGate removes dir's write gate and wakes parked transactions.
func (db *DB) liftGate(dir types.InodeID, ch chan struct{}) {
	db.migMu.Lock()
	old := *db.gates.Load()
	next := make(map[types.InodeID]chan struct{}, len(old))
	for k, v := range old {
		if k != dir {
			next[k] = v
		}
	}
	db.gates.Store(&next)
	db.migMu.Unlock()
	close(ch)
}

// hook invokes the migration test hook, if installed.
func (db *DB) hook(stage string) {
	if db.migHook != nil {
		db.migHook(stage)
	}
}

// SetMigrationHook installs a callback invoked at migration stage
// boundaries ("gated", "copied", "flipped") — fault-injection seam for
// the chaos tests. Not used in production.
func (db *DB) SetMigrationHook(fn func(stage string)) { db.migHook = fn }

// MigrationStats is the migration subsystem's accounting.
type MigrationStats struct {
	Migrations int64 `json:"migrations"`
	Rows       int64 `json:"rows_moved"`
	Aborts     int64 `json:"aborts"`
	// Overrides is the number of directories currently living away from
	// their hash-home shard.
	Overrides int    `json:"overrides"`
	Epoch     uint64 `json:"routing_epoch"`
}

// Migrations snapshots the migration accounting.
func (db *DB) Migrations() MigrationStats {
	t := db.routing.Load()
	return MigrationStats{
		Migrations: db.migrations.Load(),
		Rows:       db.migratedRows.Load(),
		Aborts:     db.migrationAborts.Load(),
		Overrides:  len(t.overrides),
		Epoch:      t.epoch,
	}
}

// MigrateDir moves directory dir's row range to shard dst online,
// returning the number of rows moved. Concurrent reads are served
// throughout; concurrent writes to dir stall for the copy window and
// then retry against the new home. On error nothing moved: the source
// shard remains authoritative and routing is unchanged.
func (db *DB) MigrateDir(op *rpc.Op, dir types.InodeID, dst int) (int, error) {
	if dst < 0 || dst >= len(db.parts) {
		return 0, fmt.Errorf("tafdb: migrate dir %d: no shard %d", dir, dst)
	}
	src := db.shardIdx(dir)
	if src == dst {
		return 0, nil
	}
	pSrc, pDst := db.parts[src], db.parts[dst]

	ch, err := db.installGate(dir)
	if err != nil {
		return 0, err
	}
	defer db.liftGate(dir, ch)
	db.hook("gated")

	// Fold outstanding delta records first so the settled attribute row
	// moves instead of a delta trail.
	db.compactDir(dir)

	// Copy: one atomic 2PC. The gate drained every writer, so the scan
	// is stable; the version guards make the copy abort-and-rescan if
	// that assumption is ever violated rather than move torn data. Runs
	// unbatched (txn.Direct) and ungated — the migration's own pieces
	// touch the gated pid by design.
	var keys []types.Key
	_, err = txn.RunnerWithRetry(txn.Direct{}, op, db.newTxnID(), db.cfg.MaxRetries,
		db.cfg.RetryBase, db.cfg.RetryMax, func(int) ([]txn.Piece, error) {
			if pSrc.Shard.Crashed() || pDst.Shard.Crashed() {
				return nil, fmt.Errorf("tafdb: migrate dir %d: participant shard down: %w",
					dir, types.ErrUnavailable)
			}
			keys = keys[:0]
			var guards []storage.Guard
			var puts []storage.Mutation
			pSrc.Shard.Scan(
				types.Key{Pid: dir, Name: ""},
				types.Key{Pid: dir + 1, Name: ""},
				func(r storage.Row) bool {
					k := types.Key{Pid: dir, Name: r.Entry.Name}
					keys = append(keys, k)
					guards = append(guards, storage.Guard{
						Key: k, Kind: storage.GuardVersion, Version: r.Version,
					})
					puts = append(puts, storage.Mutation{Kind: storage.MutPut, Key: k, Entry: r.Entry})
					return true
				})
			if len(puts) == 0 {
				return nil, fmt.Errorf("tafdb: migrate dir %d: no rows on shard %d: %w",
					dir, src, types.ErrNotFound)
			}
			return []txn.Piece{
				{P: pSrc, Guards: guards},
				{P: pDst, Muts: puts},
			}, nil
		})
	if err != nil {
		db.migrationAborts.Add(1)
		return 0, err
	}
	db.hook("copied")

	// Verify: flip only after every row is confirmed on the destination.
	// A destination crash between prepare and commit silently loses the
	// staged writes while the source-side commit (guards only) succeeds;
	// without this check the flip would publish an empty home.
	for _, k := range keys {
		if _, ok := pDst.Shard.Get(k); !ok {
			undo := make([]storage.Mutation, 0, len(keys))
			for _, k2 := range keys {
				undo = append(undo, storage.Mutation{Kind: storage.MutDelete, Key: k2})
			}
			_ = pDst.Shard.Apply(undo) // best-effort: deletes of absent rows are no-ops
			db.migrationAborts.Add(1)
			return 0, fmt.Errorf("tafdb: migrate dir %d: copy verification failed on shard %d: %w",
				dir, dst, types.ErrUnavailable)
		}
	}

	// Commit point.
	db.flipRouting(dir, dst)
	db.hook("flipped")

	// GC the source rows. Nothing routes to them anymore; the deletes
	// are WAL-logged so a source crash cannot resurrect them.
	gc := make([]storage.Mutation, 0, len(keys))
	for _, k := range keys {
		gc = append(gc, storage.Mutation{Kind: storage.MutDelete, Key: k})
	}
	_ = pSrc.Shard.Apply(gc)

	db.migrations.Add(1)
	db.migratedRows.Add(int64(len(keys)))
	return len(keys), nil
}

// MigrationPlan is one proposed directory move.
type MigrationPlan struct {
	Dir  types.InodeID `json:"dir"`
	From int           `json:"from"`
	To   int           `json:"to"`
	// Heat is the directory's decayed op count from the DB-wide sketch.
	Heat int64 `json:"heat"`
}

// PlanMigrations proposes up to max directory moves that would flatten
// the shard load distribution: hot directories (from the heat sketch)
// whose home shard carries significantly more load than the coldest
// shard are assigned, hottest first, to the currently coldest shard.
// Each assignment virtually transfers the directory's heat so one cold
// shard does not absorb every hot directory. Pure read — callers decide
// whether to execute the plan via MigrateDir.
func (db *DB) PlanMigrations(max int) []MigrationPlan {
	if max <= 0 {
		max = 4
	}
	loads := db.ShardLoads()
	if len(loads) < 2 {
		return nil
	}
	// Shard load score: the EWMA rate when live, else cumulative ops —
	// both monotone proxies for "how busy is this shard right now".
	score := make([]float64, len(loads))
	for i, l := range loads {
		score[i] = l.PerSecond
		if score[i] == 0 {
			score[i] = float64(l.Reads + l.TxnPieces)
		}
	}
	var plans []MigrationPlan
	for _, h := range db.HotDirs() {
		if len(plans) >= max || h.Count <= 0 {
			break
		}
		from := db.shardIdx(h.Key)
		coldest := 0
		for i := range score {
			if score[i] < score[coldest] {
				coldest = i
			}
		}
		// Only move when the imbalance is structural: the hot dir's home
		// carries at least half again the coldest shard's load.
		if from == coldest || score[from] < 1.5*score[coldest] {
			continue
		}
		plans = append(plans, MigrationPlan{Dir: h.Key, From: from, To: coldest, Heat: h.Count})
		// Virtually transfer the heat so subsequent picks spread out.
		moved := float64(h.Count)
		if moved > score[from] {
			moved = score[from]
		}
		score[from] -= moved
		score[coldest] += moved
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].Heat > plans[j].Heat })
	return plans
}

// readRetry runs fn against pid's current home shard and retries once if
// a migration flipped the routing mid-read: the first attempt may have
// scanned the old home after its rows were garbage-collected.
func (db *DB) readRetry(pid types.InodeID, fn func(si int) error) error {
	for attempt := 0; ; attempt++ {
		epoch := db.routing.Load().epoch
		err := fn(db.shardIdx(pid))
		if attempt == 0 && db.routing.Load().epoch != epoch {
			continue
		}
		return err
	}
}

// migrationDrainTimeout bounds how long a gated transaction parks
// waiting for a migration to finish before it gives up its attempt and
// lets the retry/backoff machinery take over — the safety valve against
// a wedged migration starving writers forever.
const migrationDrainTimeout = 5 * time.Second
