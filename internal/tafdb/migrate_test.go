package tafdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/types"
)

func newMigrationDB(t *testing.T) (*DB, *rpc.Caller) {
	t.Helper()
	db := New(Config{Shards: 4, WALSyncCost: time.Microsecond})
	t.Cleanup(db.Stop)
	if err := db.CreateRoot(types.RootID); err != nil {
		t.Fatal(err)
	}
	return db, rpc.NewCaller(netsim.NewLocalFabric())
}

// rowsOnShard counts the rows keyed by pid that physically live on shard
// si — the ground truth the routing table must agree with.
func rowsOnShard(db *DB, si int, pid types.InodeID) int {
	n := 0
	db.parts[si].Shard.Scan(
		types.Key{Pid: pid, Name: ""},
		types.Key{Pid: pid + 1, Name: ""},
		func(storage.Row) bool { n++; return true })
	return n
}

func TestMigrateDirMovesRowRange(t *testing.T) {
	db, caller := newMigrationDB(t)
	dir := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "hot", dir, types.PermAll); err != nil {
		t.Fatal(err)
	}
	const children = 20
	for i := 0; i < children; i++ {
		if _, _, err := db.CreateObject(caller.Begin(), dir, fmt.Sprintf("o%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	src := db.ShardOf(dir)
	dst := (src + 1) % db.Shards()
	epoch0 := db.RoutingEpoch()

	moved, err := db.MigrateDir(caller.Begin(), dir, dst)
	if err != nil {
		t.Fatal(err)
	}
	// children + the directory's primary attribute row.
	if moved != children+1 {
		t.Fatalf("moved %d rows, want %d", moved, children+1)
	}
	if db.ShardOf(dir) != dst {
		t.Fatalf("routing still points at shard %d", db.ShardOf(dir))
	}
	if db.RoutingEpoch() != epoch0+1 {
		t.Fatalf("epoch = %d, want %d", db.RoutingEpoch(), epoch0+1)
	}
	if n := rowsOnShard(db, src, dir); n != 0 {
		t.Fatalf("%d rows left on source shard", n)
	}
	if n := rowsOnShard(db, dst, dir); n != children+1 {
		t.Fatalf("destination has %d rows, want %d", n, children+1)
	}
	// The directory stays fully usable at its new home: reads, listings,
	// and writes all resolve through the override.
	if st, err := db.StatDir(caller.Begin(), dir); err != nil || st.Attr.LinkCount != children {
		t.Fatalf("post-migration dirstat = %+v err=%v", st, err)
	}
	if kids, err := db.ReadDir(caller.Begin(), dir); err != nil || len(kids) != children {
		t.Fatalf("post-migration readdir = %d err=%v", len(kids), err)
	}
	if _, _, err := db.CreateObject(caller.Begin(), dir, "post", 1); err != nil {
		t.Fatal(err)
	}
	if e, err := db.GetAccess(caller.Begin(), dir, "post"); err != nil || e.Name != "post" {
		t.Fatalf("post-migration create not visible: %+v err=%v", e, err)
	}
	if n := rowsOnShard(db, src, dir); n != 0 {
		t.Fatalf("post-migration write landed on old home (%d rows)", n)
	}
	st := db.Migrations()
	if st.Migrations != 1 || st.Rows != int64(children+1) || st.Overrides != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Migrating back to the hash home drops the override.
	if _, err := db.MigrateDir(caller.Begin(), dir, src); err != nil {
		t.Fatal(err)
	}
	if db.Migrations().Overrides != 0 {
		t.Fatalf("override not dropped on move home: %+v", db.Migrations())
	}
}

// Writers racing a migration never lose an entry: the gate parks them
// during the copy window and their retry lands on the new home.
func TestMigrateDirConcurrentWriters(t *testing.T) {
	db, caller := newMigrationDB(t)
	dir := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "busy", dir, types.PermAll); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := db.CreateObject(caller.Begin(), dir, fmt.Sprintf("w%d-%d", w, i), 1); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
		}(w)
	}
	// Migrate the directory back and forth while the writers hammer it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for hop := 0; hop < 4; hop++ {
			dst := (db.ShardOf(dir) + 1) % db.Shards()
			if _, err := db.MigrateDir(caller.Begin(), dir, dst); err != nil {
				t.Errorf("migrate hop %d: %v", hop, err)
				return
			}
		}
	}()
	wg.Wait()
	<-stop

	kids, err := db.ReadDir(caller.Begin(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != writers*perWriter {
		t.Fatalf("listed %d children, want %d (lost or duplicated writes)", len(kids), writers*perWriter)
	}
	st, err := db.StatDir(caller.Begin(), dir)
	if err != nil || st.Attr.LinkCount != writers*perWriter {
		t.Fatalf("link count %d, want %d", st.Attr.LinkCount, writers*perWriter)
	}
	// All rows live on exactly one shard.
	home := db.ShardOf(dir)
	for si := 0; si < db.Shards(); si++ {
		n := rowsOnShard(db, si, dir)
		if si == home && n != writers*perWriter+1 {
			t.Fatalf("home shard %d has %d rows, want %d", si, n, writers*perWriter+1)
		}
		if si != home && n != 0 {
			t.Fatalf("shard %d has %d orphan rows", si, n)
		}
	}
}

// A destination crash mid-migration aborts cleanly: the source stays
// authoritative, routing never flips, and a retry after recovery
// succeeds.
func TestMigrateDirAbortsOnDestinationCrash(t *testing.T) {
	db, caller := newMigrationDB(t)
	dir := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "crashy", dir, types.PermAll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := db.CreateObject(caller.Begin(), dir, fmt.Sprintf("o%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	src := db.ShardOf(dir)
	dst := (src + 1) % db.Shards()
	epoch0 := db.RoutingEpoch()

	// Crash the destination after the copy commits but before the
	// verify/flip: the staged rows are gone, so the migration must
	// detect the loss and abort instead of publishing an empty home.
	crashed := false
	db.SetMigrationHook(func(stage string) {
		if stage == "copied" && !crashed {
			crashed = true
			db.CrashShard(dst)
		}
	})
	if _, err := db.MigrateDir(caller.Begin(), dir, dst); err == nil {
		t.Fatal("migration succeeded despite destination crash")
	} else if !errors.Is(err, types.ErrUnavailable) {
		t.Fatalf("abort error = %v, want ErrUnavailable", err)
	}
	db.SetMigrationHook(nil)
	if db.RoutingEpoch() != epoch0 || db.ShardOf(dir) != src {
		t.Fatal("routing flipped on an aborted migration")
	}
	if n := rowsOnShard(db, src, dir); n != 11 {
		t.Fatalf("source lost rows during abort: %d", n)
	}
	if db.Migrations().Aborts == 0 {
		t.Fatal("abort not counted")
	}
	// The directory is untouched and still writable.
	if _, _, err := db.CreateObject(caller.Begin(), dir, "after-abort", 1); err != nil {
		t.Fatal(err)
	}

	// Recover the destination; the retried migration completes.
	db.RecoverShard(dst)
	moved, err := db.MigrateDir(caller.Begin(), dir, dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 12 || db.ShardOf(dir) != dst {
		t.Fatalf("retried migration moved %d rows to shard %d", moved, db.ShardOf(dir))
	}
	if n := rowsOnShard(db, src, dir); n != 0 {
		t.Fatalf("retried migration left %d rows on source", n)
	}
}

func TestMigrateDirRejectsBadTargets(t *testing.T) {
	db, caller := newMigrationDB(t)
	dir := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "d", dir, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MigrateDir(caller.Begin(), dir, db.Shards()); err == nil {
		t.Fatal("accepted out-of-range shard")
	}
	if moved, err := db.MigrateDir(caller.Begin(), dir, db.ShardOf(dir)); err != nil || moved != 0 {
		t.Fatalf("self-migration = %d, %v", moved, err)
	}
	if _, err := db.MigrateDir(caller.Begin(), types.InodeID(99999), (db.hashIdx(99999)+1)%db.Shards()); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("migrating a nonexistent dir: %v", err)
	}
}

func TestPlanMigrationsFlattensSkew(t *testing.T) {
	db, caller := newMigrationDB(t)
	dir := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "hot", dir, types.PermAll); err != nil {
		t.Fatal(err)
	}
	// Load one directory hard so its home shard dominates the load
	// accounting and the heat sketch ranks it first.
	for i := 0; i < 300; i++ {
		if _, err := db.StatDir(caller.Begin(), dir); err != nil {
			t.Fatal(err)
		}
	}
	plans := db.PlanMigrations(4)
	if len(plans) == 0 {
		t.Fatalf("no plan despite skew; loads=%+v heat=%+v", db.ShardLoads(), db.HotDirs())
	}
	p := plans[0]
	if p.Dir != dir {
		t.Fatalf("hottest planned dir = %d, want %d", p.Dir, dir)
	}
	if p.From != db.ShardOf(dir) || p.To == p.From {
		t.Fatalf("bad plan %+v", p)
	}
	// The plan is executable as-is.
	if _, err := db.MigrateDir(caller.Begin(), p.Dir, p.To); err != nil {
		t.Fatal(err)
	}
	if db.ShardOf(dir) != p.To {
		t.Fatal("plan execution did not move the dir")
	}
}
