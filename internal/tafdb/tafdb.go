// Package tafdb implements TafDB, Mantle's scalable sharded metadata
// database (§4 of the paper). TafDB stores the complete metadata of every
// namespace — access metadata and attribute metadata — as MetaTable rows
// partitioned across shards by parent directory ID (pid), so that a
// directory's children colocate on one shard. Directory mutations that
// span shards run as distributed transactions (internal/txn); mutations
// within one shard use the single-RPC fast path.
//
// Row layout. For an entry named N under parent directory P:
//
//	access row:   (P.ID, N)                 — id, kind, permission; for
//	                                           objects the attributes are
//	                                           inline (one row per object)
//	dir attrs:    (D.ID, "\x00attr")        — a directory D's primary
//	                                           attribute record
//	delta record: (D.ID, "\x00attr\x00TS")  — an out-of-place attribute
//	                                           delta with transaction
//	                                           timestamp TS (§5.2.1)
//
// The "\x00" name prefix is illegal in real names, so internal rows sort
// before all children and are trivially excluded from readdir scans.
// Because a directory's primary attribute row and its delta records share
// the directory's ID as pid, delta compaction is always a single-shard
// operation.
//
// Contention behaviour. With delta records disabled (or not yet activated
// for a directory), concurrent child-creating transactions collide on the
// parent's primary attribute row (in-place MutDeltaAttr under exclusive
// lock) and abort/retry — the Figure 4b collapse. With delta records
// active, each transaction inserts a distinct delta row and holds only a
// shared existence guard on the primary row, so they commit concurrently;
// a background compactor folds deltas into the primary record, and
// dirstat merges live deltas on read (§5.2.1).
package tafdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/heat"
	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/trace"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// attrName is the reserved name of a directory's primary attribute row.
const attrName = "\x00attr"

// deltaPrefix prefixes delta-record names; a timestamp suffix follows.
const deltaPrefix = "\x00attr\x00"

// childrenLo is the lowest possible real child name (internal rows sort
// below it).
const childrenLo = "\x01"

// heatTopK is the tracked-key budget for the DB-wide directory heat
// sketch (space-saving guarantees cover anything hotter than the
// coldest tracked key, so a small k suffices for skewed workloads).
const heatTopK = 32

// shardLoad accumulates one shard's load signals. All fields are
// updated lock-free on the hot path.
type shardLoad struct {
	reads  atomic.Int64 // point/scan reads served
	pieces atomic.Int64 // transaction pieces participated in
	twoPC  atomic.Int64 // pieces that were part of a cross-shard 2PC
	rate   *heat.Rate   // EWMA ops/sec (reads + pieces)
}

// ShardLoad is the exported per-shard load snapshot.
type ShardLoad struct {
	Shard     int     `json:"shard"`
	Rows      int     `json:"rows"`
	Reads     int64   `json:"reads"`
	TxnPieces int64   `json:"txn_pieces"`
	TwoPC     int64   `json:"two_pc"`
	PerSecond float64 `json:"per_second"`
}

// DeltaMode selects the directory-attribute update strategy.
type DeltaMode uint8

const (
	// DeltaOff always updates attributes in place (contended).
	DeltaOff DeltaMode = iota
	// DeltaAuto activates delta records per directory under sustained
	// contention, the production configuration (§5.2.1: "delta records
	// are enabled selectively, activated only under sustained contention
	// within a directory").
	DeltaAuto
	// DeltaAlways uses delta records for every directory update.
	DeltaAlways
)

// ReplSink receives every committed mutation batch for asynchronous
// site-to-site replication (internal/repl.Source satisfies it). Commit
// is invoked under the shard mutex in commit order; implementations
// must be fast and must never call back into the DB. StampTxn/ForgetTxn
// bracket cross-shard transactions so all pieces of one 2PC share a
// single timestamp and are recognisable as an atomic group downstream.
type ReplSink interface {
	StampTxn(txnID string, pieces int)
	ForgetTxn(txnID string)
	Commit(shard int, seq uint64, txnID string, muts []storage.Mutation)
}

// Config parameterises a DB.
type Config struct {
	// Shards is the number of storage shards (the paper deploys 18 TafDB
	// servers).
	Shards int
	// Workers is the CPU worker count per shard node.
	Workers int
	// OpCost is the CPU service time charged per shard read access.
	OpCost time.Duration
	// TxnCost is the CPU service time charged per transaction phase on a
	// participant shard (prepare/commit are heavier than reads: WAL
	// append, lock table work). Defaults to OpCost.
	TxnCost time.Duration
	// Fabric supplies RPC latency; required.
	Fabric *netsim.Fabric
	// Delta selects the attribute-update strategy.
	Delta DeltaMode
	// DeltaThreshold is the number of recent conflicts on a directory
	// that activates delta mode under DeltaAuto.
	DeltaThreshold int
	// CompactInterval is the delta compactor's period.
	CompactInterval time.Duration
	// WALSyncCost, when positive, attaches a write-ahead log to every
	// shard: committed transactions are logged (group commit) before
	// they apply, and crashed shards recover by replay. Zero disables
	// the WAL (the simulated-performance experiments model durability
	// costs in the Raft layer instead).
	WALSyncCost time.Duration
	// WALNoGroupCommit disables WAL sync coalescing, so every committed
	// batch pays its own sync — the unbatched write-path ablation
	// baseline.
	WALNoGroupCommit bool
	// Batch2PC routes cross-shard transactions through a batching 2PC
	// coordinator: independent transactions with the same participant
	// set share one prepare round and one commit round.
	Batch2PC bool
	// Batch2PCMax bounds transactions folded into one shared round
	// (default 64).
	Batch2PCMax int
	// Repl, when non-nil, receives every committed mutation batch — the
	// feed for asynchronous site replication.
	Repl ReplSink
	// MaxRetries bounds transaction retries per operation.
	MaxRetries int
	// RetryBase/RetryMax shape the retry backoff.
	RetryBase, RetryMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.Fabric == nil {
		c.Fabric = netsim.NewLocalFabric()
	}
	if c.DeltaThreshold <= 0 {
		c.DeltaThreshold = 3
	}
	if c.CompactInterval <= 0 {
		c.CompactInterval = 10 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10000
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Microsecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Millisecond
	}
	if c.TxnCost <= 0 {
		c.TxnCost = c.OpCost
	}
	return c
}

// DB is a TafDB instance: a set of shards plus the delta-record machinery.
// One DB is shared by all namespaces (§4).
type DB struct {
	cfg    Config
	parts  []*txn.Participant
	runner txn.Runner

	// Per-shard load accounting (reads served, transaction pieces
	// participated, cross-shard 2PC participations, EWMA op rate) plus
	// the key-range heat sketch over parent-directory IDs — the signals
	// a future shard-split/migration policy reads. partIdx maps a
	// participant back to its shard index for write-path accounting.
	loads   []shardLoad
	partIdx map[*txn.Participant]int
	dirHeat *heat.TopK[types.InodeID]

	// Online-migration state (migrate.go): the routing table maps
	// migrated pids to their new home shards; gates parks writers while
	// a directory's rows are in flight; migMu's write side drains
	// in-flight transaction rounds before a gate is installed.
	routing         atomic.Pointer[routingTable]
	migMu           sync.RWMutex
	gates           atomic.Pointer[map[types.InodeID]chan struct{}]
	migHook         func(stage string)
	migrations      atomic.Int64
	migratedRows    atomic.Int64
	migrationAborts atomic.Int64

	nextID  atomic.Uint64
	txnSeq  atomic.Uint64
	tsSeq   atomic.Uint64
	retries atomic.Int64 // cumulative transaction retries (contention metric)
	txnLat  metrics.Latency

	// deltaDirs tracks directories with delta mode active and their
	// conflict scores (for DeltaAuto activation).
	deltaMu   sync.Mutex
	deltaOn   map[types.InodeID]bool
	conflicts map[types.InodeID]int

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New creates a TafDB and starts its delta compactor.
func New(cfg Config) *DB {
	cfg = cfg.withDefaults()
	db := &DB{
		cfg:       cfg,
		deltaOn:   make(map[types.InodeID]bool),
		conflicts: make(map[types.InodeID]int),
		stopCh:    make(chan struct{}),
	}
	db.nextID.Store(uint64(types.RootID))
	db.runner = txn.Direct{}
	if cfg.Batch2PC {
		db.runner = txn.NewBatcher(cfg.Batch2PCMax)
	}
	for i := 0; i < cfg.Shards; i++ {
		shard := storage.NewShard(fmt.Sprintf("tafdb-%d", i))
		if cfg.WALSyncCost > 0 {
			w := storage.NewWAL(cfg.WALSyncCost)
			w.SetGroupCommit(!cfg.WALNoGroupCommit)
			shard.AttachWAL(w)
		}
		if cfg.Repl != nil {
			si := i
			shard.SetReplHook(func(seq uint64, txnID string, muts []storage.Mutation) {
				cfg.Repl.Commit(si, seq, txnID, muts)
			})
		}
		db.parts = append(db.parts, &txn.Participant{
			Shard: shard,
			Node:  netsim.NewNode(fmt.Sprintf("tafdb-%d", i), cfg.Workers),
			Cost:  cfg.TxnCost,
		})
	}
	db.loads = make([]shardLoad, cfg.Shards)
	db.partIdx = make(map[*txn.Participant]int, cfg.Shards)
	for i, p := range db.parts {
		db.loads[i].rate = heat.NewRate(0)
		db.partIdx[p] = i
	}
	db.dirHeat = heat.NewTopK[types.InodeID](heatTopK)
	db.routing.Store(&routingTable{})
	emptyGates := map[types.InodeID]chan struct{}{}
	db.gates.Store(&emptyGates)
	db.wg.Add(1)
	go db.compactLoop()
	return db
}

// Stop shuts down the compactor.
func (db *DB) Stop() {
	db.stopOnce.Do(func() { close(db.stopCh) })
	db.wg.Wait()
}

// NewID allocates a fresh inode ID.
func (db *DB) NewID() types.InodeID {
	return types.InodeID(db.nextID.Add(1))
}

// ReserveIDs advances the allocator past max, so bulk-populated inode IDs
// never collide with transactionally allocated ones.
func (db *DB) ReserveIDs(max types.InodeID) {
	for {
		cur := db.nextID.Load()
		if cur >= uint64(max) {
			return
		}
		if db.nextID.CompareAndSwap(cur, uint64(max)) {
			return
		}
	}
}

// newTxnID returns a unique transaction identifier.
func (db *DB) newTxnID() string {
	return fmt.Sprintf("taf-%d", db.txnSeq.Add(1))
}

// newTS returns a monotonically increasing transaction timestamp used in
// delta-record keys.
func (db *DB) newTS() string {
	return fmt.Sprintf("%016x", db.tsSeq.Add(1))
}

// Retries returns the cumulative transaction retry count — the
// contention signal the evaluation reports.
func (db *DB) Retries() int64 { return db.retries.Load() }

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.parts) }

// Nodes returns the shard nodes (for utilisation reporting).
func (db *DB) Nodes() []*netsim.Node {
	out := make([]*netsim.Node, len(db.parts))
	for i, p := range db.parts {
		out[i] = p.Node
	}
	return out
}

// hashIdx is the static pid→shard hash. Fibonacci hashing spreads
// sequential IDs.
func (db *DB) hashIdx(pid types.InodeID) int {
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(db.parts)))
}

// shardIdx maps a pid to its current shard index: the routing table's
// migration override when one exists, the hash home otherwise.
func (db *DB) shardIdx(pid types.InodeID) int {
	return db.routing.Load().shardIdx(db, pid)
}

// shardFor maps a pid to its participant.
func (db *DB) shardFor(pid types.InodeID) *txn.Participant {
	return db.parts[db.shardIdx(pid)]
}

// noteRead accounts one read served by shard si against directory dir.
func (db *DB) noteRead(si int, dir types.InodeID) {
	l := &db.loads[si]
	l.reads.Add(1)
	l.rate.Add(1)
	db.dirHeat.Record(dir)
}

// notePieces accounts a successfully built transaction's pieces against
// their shards; cross-shard transactions also bump each participant's
// 2PC counter.
func (db *DB) notePieces(pieces []txn.Piece) {
	cross := len(pieces) > 1
	for i := range pieces {
		si, ok := db.partIdx[pieces[i].P]
		if !ok {
			continue
		}
		l := &db.loads[si]
		l.pieces.Add(1)
		l.rate.Add(1)
		if cross {
			l.twoPC.Add(1)
		}
	}
}

// ShardLoads snapshots every shard's load accounting.
func (db *DB) ShardLoads() []ShardLoad {
	out := make([]ShardLoad, len(db.parts))
	for i, p := range db.parts {
		l := &db.loads[i]
		out[i] = ShardLoad{
			Shard:     i,
			Rows:      p.Shard.Len(),
			Reads:     l.reads.Load(),
			TxnPieces: l.pieces.Load(),
			TwoPC:     l.twoPC.Load(),
			PerSecond: l.rate.PerSecond(),
		}
	}
	return out
}

// HotDirs returns the DB-wide directory write/read heat sketch, hottest
// first.
func (db *DB) HotDirs() []heat.Item[types.InodeID] {
	return db.dirHeat.Snapshot()
}

func attrKey(dir types.InodeID) types.Key {
	return types.Key{Pid: dir, Name: attrName}
}

// deltaModeFor reports whether delta records are active for dir.
func (db *DB) deltaModeFor(dir types.InodeID) bool {
	switch db.cfg.Delta {
	case DeltaAlways:
		return true
	case DeltaOff:
		return false
	}
	db.deltaMu.Lock()
	defer db.deltaMu.Unlock()
	return db.deltaOn[dir]
}

// noteConflict records a transaction conflict on dir's attribute row and
// activates delta mode once the threshold is reached (DeltaAuto).
func (db *DB) noteConflict(dir types.InodeID) {
	db.retries.Add(1)
	if db.cfg.Delta != DeltaAuto {
		return
	}
	db.deltaMu.Lock()
	defer db.deltaMu.Unlock()
	if db.deltaOn[dir] {
		return
	}
	db.conflicts[dir]++
	if db.conflicts[dir] >= db.cfg.DeltaThreshold {
		db.deltaOn[dir] = true
		delete(db.conflicts, dir)
	}
}

// DeltaActive reports whether delta mode is currently active for dir.
func (db *DB) DeltaActive(dir types.InodeID) bool { return db.deltaModeFor(dir) }

// parentAttrMutation builds the mutation applying an attribute delta to
// dir: an in-place read-modify-write when delta mode is off, or an
// out-of-place delta-record insert when on. Both are accompanied by a
// shared existence guard on the primary attribute row (returned
// separately) — the latch that serialises against rmdir.
func (db *DB) parentAttrMutation(dir types.InodeID, delta storage.AttrDelta, now time.Time) (storage.Mutation, storage.Guard) {
	guard := storage.Guard{Key: attrKey(dir), Kind: storage.GuardExists}
	if db.deltaModeFor(dir) {
		name := deltaPrefix + db.newTS()
		return storage.Mutation{
			Kind: storage.MutPut,
			Key:  types.Key{Pid: dir, Name: name},
			Entry: types.Entry{
				Pid:  dir,
				Name: name, // entries mirror their row key
				Kind: types.KindDir,
				Attr: types.Attr{
					LinkCount: delta.LinkCount,
					Size:      delta.Size,
					MTime:     now,
				},
			},
		}, guard
	}
	return storage.Mutation{
		Kind:      storage.MutDeltaAttr,
		Key:       attrKey(dir),
		Delta:     delta,
		MustExist: true,
	}, guard
}

// compactLoop periodically folds delta records into primary attribute
// rows for every directory with delta mode active.
func (db *DB) compactLoop() {
	defer db.wg.Done()
	ticker := time.NewTicker(db.cfg.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.stopCh:
			return
		case <-ticker.C:
		}
		db.CompactAll()
	}
}

// CompactAll folds outstanding delta records for every delta-active
// directory, returning the number of deltas folded. Also invoked
// synchronously by tests and by rmdir preflight.
func (db *DB) CompactAll() int {
	var dirs []types.InodeID
	db.deltaMu.Lock()
	for d := range db.deltaOn {
		dirs = append(dirs, d)
	}
	db.deltaMu.Unlock()
	total := 0
	if db.cfg.Delta == DeltaAlways {
		// No registry: compact by scanning every shard for delta rows.
		for _, p := range db.parts {
			total += compactShardDeltas(p.Shard)
		}
		return total
	}
	for _, d := range dirs {
		total += db.compactDir(d)
	}
	return total
}

// compactDir folds dir's delta records into its primary attribute row.
func (db *DB) compactDir(dir types.InodeID) int {
	p := db.shardFor(dir)
	return p.Shard.CompactRange(
		attrKey(dir),
		types.Key{Pid: dir, Name: deltaPrefix},
		types.Key{Pid: dir, Name: childrenLo},
		foldDelta,
	)
}

func foldDelta(primary *types.Entry, delta types.Entry) {
	primary.Attr.LinkCount += delta.Attr.LinkCount
	primary.Attr.Size += delta.Attr.Size
	if delta.Attr.MTime.After(primary.Attr.MTime) {
		primary.Attr.MTime = delta.Attr.MTime
	}
}

// compactShardDeltas compacts every delta row found on a shard (used in
// DeltaAlways mode, which keeps no per-directory registry).
func compactShardDeltas(s *storage.Shard) int {
	// Collect the pids that have delta rows, then compact each.
	seen := map[types.InodeID]bool{}
	s.Scan(types.Key{}, types.Key{Pid: ^types.InodeID(0), Name: "\xff"}, func(r storage.Row) bool {
		if len(r.Entry.Name) > len(deltaPrefix) && r.Entry.Name[:len(deltaPrefix)] == deltaPrefix {
			seen[r.Entry.Pid] = true
		}
		return true
	})
	total := 0
	for pid := range seen {
		total += s.CompactRange(
			attrKey(pid),
			types.Key{Pid: pid, Name: deltaPrefix},
			types.Key{Pid: pid, Name: childrenLo},
			foldDelta,
		)
	}
	return total
}

// runTxn executes build as a retried transaction, recording contention
// against contendedDir on each retry. The whole transaction — all
// retries included — is one txn-commit span and one txnLat observation.
func (db *DB) runTxn(op *rpc.Op, contendedDir types.InodeID, build func(attempt int) ([]txn.Piece, error)) (int, error) {
	ctx, sp := trace.Start(op.Context(), "txn-commit")
	op = op.WithContext(ctx)
	db.dirHeat.Record(contendedDir)
	start := time.Now()
	id := db.newTxnID()
	wrapped := func(attempt int) ([]txn.Piece, error) {
		if attempt > 0 {
			db.noteConflict(contendedDir)
			sp.Annotate("retry", "%d", attempt)
			if db.cfg.Repl != nil {
				// The previous attempt aborted; drop its stamp.
				db.cfg.Repl.ForgetTxn(fmt.Sprintf("%s#%d", id, attempt-1))
			}
		}
		pieces, err := build(attempt)
		if err == nil {
			db.notePieces(pieces)
			if db.cfg.Repl != nil && len(pieces) > 1 {
				// Pre-register the cross-shard group before the 2PC
				// rounds run, so all pieces share one HLC in the oplog.
				db.cfg.Repl.StampTxn(fmt.Sprintf("%s#%d", id, attempt), len(pieces))
			}
		}
		return pieces, err
	}
	if db.cfg.Batch2PC {
		sp.SetAttr("2pc", "batched")
	}
	retries, err := txn.RunnerWithRetry(gatedRunner{db}, op, id, db.cfg.MaxRetries,
		db.cfg.RetryBase, db.cfg.RetryMax, wrapped)
	if db.cfg.Repl != nil {
		// Committed stamps were consumed piece by piece; this clears the
		// stamp of a final failed/aborted attempt. No-op otherwise.
		db.cfg.Repl.ForgetTxn(fmt.Sprintf("%s#%d", id, retries))
	}
	db.txnLat.Observe(time.Since(start))
	sp.End()
	return retries, err
}

// WALStats aggregates the sync accounting across every shard's WAL
// (zero when the WAL is disabled).
func (db *DB) WALStats() storage.WALStats {
	var out storage.WALStats
	for _, p := range db.parts {
		if w := p.Shard.WAL(); w != nil {
			out.Add(w.Stats())
		}
	}
	return out
}

// Batch2PCStats reports the batched-2PC coordinator's accounting:
// cross-shard transactions coordinated, transactions that shared their
// rounds, and round pairs executed. All zero with batching off.
func (db *DB) Batch2PCStats() (txns, batched, rounds int64) {
	if b, ok := db.runner.(*txn.Batcher); ok {
		return b.Stats()
	}
	return 0, 0, 0
}

// TxnLatency returns the DB-wide transaction-commit latency histogram
// (whole transactions, retries included).
func (db *DB) TxnLatency() *metrics.Latency { return &db.txnLat }

// CrashShard crash-stops shard i (failure injection): its in-memory
// state is discarded; only WAL-logged commits survive.
func (db *DB) CrashShard(i int) {
	db.parts[i%len(db.parts)].Shard.Crash()
}

// RecoverShard replays shard i's WAL, returning mutations replayed.
func (db *DB) RecoverShard(i int) int {
	return db.parts[i%len(db.parts)].Shard.Recover()
}

// SnapshotShard captures a consistent cut of shard i: every row plus
// the commit sequence the cut covers. Replication resumes from seq+1
// after the rows are loaded on the secondary (snapshot bootstrap).
func (db *DB) SnapshotShard(i int) ([]storage.Row, uint64) {
	return db.parts[i%len(db.parts)].Shard.SnapshotRows()
}

// ApplyToShard lands a replicated mutation batch directly on shard i's
// store, bypassing routing and transactions — the secondary-site apply
// path (the applier has already ordered, grouped, and LWW-filtered the
// batch). The apply is logged and charged like a local relaxed apply.
func (db *DB) ApplyToShard(i int, muts []storage.Mutation) error {
	p := db.parts[i%len(db.parts)]
	return p.Node.Exec(p.Cost, func() error {
		return p.Shard.Apply(muts)
	})
}

// CurrentSeqs returns every shard's current commit sequence — the
// primary-side replication tip vector.
func (db *DB) CurrentSeqs() []uint64 {
	out := make([]uint64, len(db.parts))
	for i, p := range db.parts {
		out[i] = p.Shard.CurrentSeq()
	}
	return out
}

// ReplayShard iterates shard i's WAL batches in commit order — the
// durable ground truth fsck cross-checks the replication oplog against.
// A no-op when the WAL is disabled.
func (db *DB) ReplayShard(i int, fn func(seq uint64, muts []storage.Mutation)) {
	if w := db.parts[i%len(db.parts)].Shard.WAL(); w != nil {
		w.ReplayBatches(fn)
	}
}

// ForEachRow visits every MetaTable row on every shard (diagnostics,
// fsck). Rows are visited per shard in key order.
func (db *DB) ForEachRow(fn func(row storage.Row)) {
	for _, p := range db.parts {
		p.Shard.Scan(types.Key{}, types.Key{Pid: ^types.InodeID(0), Name: "\xff"},
			func(r storage.Row) bool {
				fn(r)
				return true
			})
	}
}
