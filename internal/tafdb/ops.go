package tafdb

import (
	"fmt"
	"sort"
	"time"

	"mantle/internal/intern"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// CreateRoot initialises the primary attribute row for a namespace root
// (or any pre-allocated directory ID) without transactions. Used during
// bootstrap and bulk population.
func (db *DB) CreateRoot(root types.InodeID) error {
	p := db.shardFor(root)
	return p.Shard.Apply([]storage.Mutation{{
		Kind: storage.MutPut,
		Key:  attrKey(root),
		Entry: types.Entry{
			Pid: root, Name: attrName, ID: root,
			Kind: types.KindDir, Perm: types.PermAll,
			Attr: types.Attr{MTime: time.Now()},
		},
	}})
}

// GetAccess reads the access row (pid, name): the id/kind/permission of
// the named child. One RPC to the owning shard.
func (db *DB) GetAccess(op *rpc.Op, pid types.InodeID, name string) (types.Entry, error) {
	var out types.Entry
	err := db.readRetry(pid, func(si int) error {
		p := db.parts[si]
		db.noteRead(si, pid)
		return op.Call(p.Node, db.cfg.OpCost, func() error {
			row, ok := p.Shard.Get(types.Key{Pid: pid, Name: name})
			if !ok {
				return fmt.Errorf("get %d/%s: %w", pid, name, types.ErrNotFound)
			}
			out = row.Entry
			return nil
		})
	})
	return out, err
}

// StatObject returns the full metadata of object (pid, name).
func (db *DB) StatObject(op *rpc.Op, pid types.InodeID, name string) (types.Entry, error) {
	e, err := db.GetAccess(op, pid, name)
	if err != nil {
		return types.Entry{}, err
	}
	if e.IsDir() {
		return types.Entry{}, fmt.Errorf("objstat %d/%s: %w", pid, name, types.ErrIsDir)
	}
	return e, nil
}

// StatDir returns directory dir's attributes, merging any live delta
// records into the primary attribute record — the read-side cost of the
// delta design (§5.2.1). One RPC (primary row and deltas colocate).
func (db *DB) StatDir(op *rpc.Op, dir types.InodeID) (types.Entry, error) {
	var out types.Entry
	err := db.readRetry(dir, func(si int) error {
		p := db.parts[si]
		db.noteRead(si, dir)
		return op.Call(p.Node, db.cfg.OpCost, func() error {
			row, ok := p.Shard.Get(attrKey(dir))
			if !ok {
				return fmt.Errorf("dirstat %d: %w", dir, types.ErrNotFound)
			}
			out = row.Entry
			p.Shard.Scan(
				types.Key{Pid: dir, Name: deltaPrefix},
				types.Key{Pid: dir, Name: childrenLo},
				func(r storage.Row) bool {
					foldDelta(&out, r.Entry)
					return true
				})
			return nil
		})
	})
	return out, err
}

// ReadDir lists directory dir's children in name order. Internal
// attribute and delta rows are excluded. One RPC.
func (db *DB) ReadDir(op *rpc.Op, dir types.InodeID) ([]types.Entry, error) {
	var out []types.Entry
	err := db.readRetry(dir, func(si int) error {
		p := db.parts[si]
		db.noteRead(si, dir)
		out = nil
		return op.Call(p.Node, db.cfg.OpCost, func() error {
			// The parent's attribute row tracks its child count (LinkCount),
			// so the result slice can be sized once instead of grown
			// append-by-append across a large listing.
			if row, ok := p.Shard.Get(attrKey(dir)); ok && row.Entry.Attr.LinkCount > 0 {
				out = make([]types.Entry, 0, row.Entry.Attr.LinkCount)
			}
			p.Shard.Scan(
				types.Key{Pid: dir, Name: childrenLo},
				types.Key{Pid: dir + 1, Name: ""},
				func(r storage.Row) bool {
					out = append(out, r.Entry)
					return true
				})
			return nil
		})
	})
	return out, err
}

// CreateObject inserts object name under parent, updating the parent's
// attribute metadata. Access row and parent attributes share the
// parent's shard, so this is a single-shard transaction; contention on
// the parent's primary attribute row follows the configured delta mode.
// Returns the new entry and the retry count consumed.
func (db *DB) CreateObject(op *rpc.Op, parent types.InodeID, name string, size int64) (types.Entry, int, error) {
	id := db.NewID()
	entry := types.Entry{
		Pid: parent, Name: name, ID: id, Kind: types.KindObject,
		Perm: types.PermAll,
		Attr: types.Attr{Size: size, MTime: time.Now()},
	}
	retries, err := db.runTxn(op, parent, func(int) ([]txn.Piece, error) {
		// Resolve routing inside the build so a retry after a directory
		// migration targets the new home shard.
		p := db.shardFor(parent)
		mut, guard := db.parentAttrMutation(parent, storage.AttrDelta{LinkCount: 1, Size: size}, time.Now())
		return []txn.Piece{{
			P:      p,
			Guards: []storage.Guard{guard},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: types.Key{Pid: parent, Name: name}, Entry: entry, IfAbsent: true},
				mut,
			},
		}}, nil
	})
	if err != nil {
		return types.Entry{}, retries, err
	}
	return entry, retries, nil
}

// DeleteObject removes object name from parent.
func (db *DB) DeleteObject(op *rpc.Op, parent types.InodeID, name string) (int, error) {
	return db.runTxn(op, parent, func(int) ([]txn.Piece, error) {
		p := db.shardFor(parent)
		mut, guard := db.parentAttrMutation(parent, storage.AttrDelta{LinkCount: -1}, time.Now())
		return []txn.Piece{{
			P:      p,
			Guards: []storage.Guard{guard},
			Muts: []storage.Mutation{
				{Kind: storage.MutDelete, Key: types.Key{Pid: parent, Name: name},
					MustExist: true, WantKind: types.KindObject},
				mut,
			},
		}}, nil
	})
}

// Mkdir creates directory name under parent with a pre-allocated id (the
// caller — Mantle's proxy — allocates it so IndexNode can be updated with
// the same id). The transaction spans the parent's shard (access row +
// parent attribute update) and the new directory's shard (its primary
// attribute row), mirroring Figure 2's node3/node4 example.
func (db *DB) Mkdir(op *rpc.Op, parent types.InodeID, name string, id types.InodeID, perm types.Perm) (types.Entry, int, error) {
	access := types.Entry{
		Pid: parent, Name: name, ID: id, Kind: types.KindDir, Perm: perm,
		Attr: types.Attr{MTime: time.Now()},
	}
	primary := types.Entry{
		Pid: id, Name: attrName, ID: id, Kind: types.KindDir, Perm: perm,
		Attr: types.Attr{MTime: time.Now()},
	}
	retries, err := db.runTxn(op, parent, func(int) ([]txn.Piece, error) {
		pParent := db.shardFor(parent)
		pDir := db.shardFor(id)
		mut, guard := db.parentAttrMutation(parent, storage.AttrDelta{LinkCount: 1}, time.Now())
		parentPiece := txn.Piece{
			P:      pParent,
			Guards: []storage.Guard{guard},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: types.Key{Pid: parent, Name: name}, Entry: access, IfAbsent: true},
				mut,
			},
		}
		dirPiece := txn.Piece{
			P: pDir,
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: attrKey(id), Entry: primary, IfAbsent: true},
			},
		}
		if pParent == pDir {
			parentPiece.Muts = append(parentPiece.Muts, dirPiece.Muts...)
			return []txn.Piece{parentPiece}, nil
		}
		return []txn.Piece{parentPiece, dirPiece}, nil
	})
	if err != nil {
		return types.Entry{}, retries, err
	}
	return access, retries, nil
}

// Rmdir removes empty directory (parent, name, dir). The transaction
// deletes the access row and decrements the parent's attributes on the
// parent's shard, and deletes the primary attribute row on the
// directory's shard under a range-emptiness guard: because every
// child-creating transaction holds a shared lock on the directory's
// primary attribute row, the exclusive delete serialises against them
// and the emptiness check cannot miss an in-flight create.
func (db *DB) Rmdir(op *rpc.Op, parent types.InodeID, name string, dir types.InodeID) (int, error) {
	// Fold any outstanding deltas first so the primary row is current.
	db.compactDir(dir)
	return db.runTxn(op, parent, func(int) ([]txn.Piece, error) {
		pParent := db.shardFor(parent)
		pDir := db.shardFor(dir)
		mut, guard := db.parentAttrMutation(parent, storage.AttrDelta{LinkCount: -1}, time.Now())
		parentPiece := txn.Piece{
			P:      pParent,
			Guards: []storage.Guard{guard},
			Muts: []storage.Mutation{
				{Kind: storage.MutDelete, Key: types.Key{Pid: parent, Name: name}, MustExist: true},
				mut,
			},
		}
		dirPiece := txn.Piece{
			P: pDir,
			Guards: []storage.Guard{{
				Kind:  storage.GuardRangeEmpty,
				Key:   types.Key{Pid: dir, Name: childrenLo},
				KeyHi: types.Key{Pid: dir + 1, Name: ""},
			}},
			Muts: []storage.Mutation{
				{Kind: storage.MutDelete, Key: attrKey(dir), MustExist: true},
			},
		}
		if pParent == pDir {
			parentPiece.Guards = append(parentPiece.Guards, dirPiece.Guards...)
			parentPiece.Muts = append(parentPiece.Muts, dirPiece.Muts...)
			return []txn.Piece{parentPiece}, nil
		}
		return []txn.Piece{parentPiece, dirPiece}, nil
	})
}

// RenameDir moves directory dir from (srcParent, srcName) to (dstParent,
// dstName). The directory's own attribute row is untouched; only the two
// parents' shards participate. Loop detection is NOT performed here —
// Mantle offloads it to IndexNode (§5.2.2); baseline systems implement
// their own strategies.
func (db *DB) RenameDir(op *rpc.Op, srcParent types.InodeID, srcName string,
	dstParent types.InodeID, dstName string, dir types.InodeID, perm types.Perm) (int, error) {

	access := types.Entry{
		Pid: dstParent, Name: dstName, ID: dir, Kind: types.KindDir, Perm: perm,
		Attr: types.Attr{MTime: time.Now()},
	}
	contended := srcParent
	if dstParent != srcParent {
		contended = dstParent // rename storms typically contend on the shared destination
	}
	return db.runTxn(op, contended, func(int) ([]txn.Piece, error) {
		pSrc := db.shardFor(srcParent)
		pDst := db.shardFor(dstParent)
		now := time.Now()
		srcMut, srcGuard := db.parentAttrMutation(srcParent, storage.AttrDelta{LinkCount: -1}, now)
		srcPiece := txn.Piece{
			P:      pSrc,
			Guards: []storage.Guard{srcGuard},
			Muts: []storage.Mutation{
				{Kind: storage.MutDelete, Key: types.Key{Pid: srcParent, Name: srcName}, MustExist: true},
				srcMut,
			},
		}
		if srcParent == dstParent {
			// Same-directory rename: no attribute change, one shard.
			srcPiece.Muts = []storage.Mutation{
				{Kind: storage.MutDelete, Key: types.Key{Pid: srcParent, Name: srcName}, MustExist: true},
				{Kind: storage.MutPut, Key: types.Key{Pid: dstParent, Name: dstName}, Entry: access, IfAbsent: true},
			}
			return []txn.Piece{srcPiece}, nil
		}
		dstMut, dstGuard := db.parentAttrMutation(dstParent, storage.AttrDelta{LinkCount: 1}, now)
		dstPiece := txn.Piece{
			P:      pDst,
			Guards: []storage.Guard{dstGuard},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: types.Key{Pid: dstParent, Name: dstName}, Entry: access, IfAbsent: true},
				dstMut,
			},
		}
		if pSrc == pDst {
			srcPiece.Guards = append(srcPiece.Guards, dstPiece.Guards...)
			srcPiece.Muts = append(srcPiece.Muts, dstPiece.Muts...)
			return []txn.Piece{srcPiece}, nil
		}
		return []txn.Piece{srcPiece, dstPiece}, nil
	})
}

// SetDirAttr replaces directory dir's attribute record in place (setattr)
// and returns retries consumed.
func (db *DB) SetDirAttr(op *rpc.Op, dir types.InodeID, attr types.Attr) (int, error) {
	return db.runTxn(op, dir, func(int) ([]txn.Piece, error) {
		p := db.shardFor(dir)
		row, ok := p.Shard.Get(attrKey(dir))
		if !ok {
			return nil, fmt.Errorf("setattr %d: %w", dir, types.ErrNotFound)
		}
		e := row.Entry
		e.Attr = attr
		return []txn.Piece{{
			P: p,
			Guards: []storage.Guard{{
				Key: attrKey(dir), Kind: storage.GuardVersion, Version: row.Version,
			}},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: attrKey(dir), Entry: e},
			},
		}}, nil
	})
}

// SetDirPerm changes directory dir's permission transactionally in both
// places TafDB records it: the access row under the parent (what
// lookups and fsck read) and the primary attribute row (what a restored
// or replicated site rebuilds its index from). The two rows may live on
// different shards, so this is a 2PC when they do. The root directory
// has no access row; its attribute row alone is updated.
func (db *DB) SetDirPerm(op *rpc.Op, parent types.InodeID, name string, dir types.InodeID, perm types.Perm) (int, error) {
	return db.runTxn(op, dir, func(int) ([]txn.Piece, error) {
		pDir := db.shardFor(dir)
		row, ok := pDir.Shard.Get(attrKey(dir))
		if !ok {
			return nil, fmt.Errorf("setperm %d: %w", dir, types.ErrNotFound)
		}
		attrEntry := row.Entry
		attrEntry.Perm = perm
		attrEntry.Attr.MTime = time.Now()
		attrPiece := txn.Piece{
			P: pDir,
			Guards: []storage.Guard{{
				Key: attrKey(dir), Kind: storage.GuardVersion, Version: row.Version,
			}},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: attrKey(dir), Entry: attrEntry},
			},
		}
		if name == "" || parent == 0 {
			return []txn.Piece{attrPiece}, nil // root: attribute row only
		}
		pAcc := db.shardFor(parent)
		accKey := types.Key{Pid: parent, Name: name}
		accRow, ok := pAcc.Shard.Get(accKey)
		if !ok {
			return nil, fmt.Errorf("setperm %d/%s: %w", parent, name, types.ErrNotFound)
		}
		if accRow.Entry.Kind != types.KindDir {
			return nil, fmt.Errorf("setperm %d/%s: %w", parent, name, types.ErrNotDir)
		}
		accEntry := accRow.Entry
		accEntry.Perm = perm
		accPiece := txn.Piece{
			P: pAcc,
			Guards: []storage.Guard{{
				Key: accKey, Kind: storage.GuardVersion, Version: accRow.Version,
			}},
			Muts: []storage.Mutation{
				{Kind: storage.MutPut, Key: accKey, Entry: accEntry},
			},
		}
		if pAcc == pDir {
			accPiece.Guards = append(accPiece.Guards, attrPiece.Guards...)
			accPiece.Muts = append(accPiece.Muts, attrPiece.Muts...)
			return []txn.Piece{accPiece}, nil
		}
		return []txn.Piece{accPiece, attrPiece}, nil
	})
}

// BulkInsert loads entries directly into the shards without transactions
// or RPC charging — the mdtest-style population step used to build
// billion-scale (scaled-down) namespaces before experiments.
//
// Rows are grouped per shard, sorted, and handed to Shard.BulkLoad,
// which rebuilds each shard's B-tree bottom-up at ~97% node occupancy
// (sequential Apply leaves nodes half full). Component names are
// interned first: population is where nearly every name string enters
// the process, so deduplicating here collapses the popular components
// ("logs", "part-00042", ...) to one allocation namespace-wide.
// Shards with a WAL attached refuse the unlogged fast path (a crash
// would silently lose the rows) and fall back to logged Apply.
func (db *DB) BulkInsert(entries []types.Entry) error {
	type rowKV struct {
		k types.Key
		e types.Entry
	}
	rows := make([][]rowKV, len(db.parts))
	add := func(k types.Key, e types.Entry) {
		si := db.shardIdx(k.Pid)
		rows[si] = append(rows[si], rowKV{k, e})
	}
	// Child counts per directory, so primary attribute rows carry the
	// link count the mutation path would have accumulated (fsck checks
	// link count == children; the logged path bumps it per insert).
	children := make(map[types.InodeID]int64, len(entries)/8+1)
	for _, e := range entries {
		children[e.Pid]++
	}
	for _, e := range entries {
		e.Name = intern.Intern(e.Name)
		add(types.Key{Pid: e.Pid, Name: e.Name}, e)
		if e.IsDir() {
			primary := e
			primary.Pid = e.ID
			primary.Name = attrName
			primary.Attr.LinkCount = children[e.ID]
			add(attrKey(e.ID), primary)
		}
	}
	for si, rs := range rows {
		if len(rs) == 0 {
			continue
		}
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].k.Less(rs[j].k) })
		// Drop duplicate keys keeping the last occurrence (Apply
		// semantics); BulkLoad requires strictly ascending keys.
		w := 0
		for r := 0; r < len(rs); r++ {
			if r+1 < len(rs) && !rs[r].k.Less(rs[r+1].k) {
				continue
			}
			rs[w] = rs[r]
			w++
		}
		rs = rs[:w]
		s := db.parts[si].Shard
		if s.BulkLoad(len(rs), func(i int) (types.Key, types.Entry) { return rs[i].k, rs[i].e }) {
			continue
		}
		for _, r := range rs {
			if err := s.Apply([]storage.Mutation{{
				Kind: storage.MutPut, Key: r.k, Entry: r.e,
			}}); err != nil {
				return err
			}
		}
	}
	// Parents outside this batch — the bootstrap root, or pre-existing
	// directories gaining bulk-loaded children — get their link counts
	// bumped through the delta path instead.
	inBatch := make(map[types.InodeID]bool, len(children))
	for _, e := range entries {
		if e.IsDir() {
			inBatch[e.ID] = true
		}
	}
	for pid, n := range children {
		if !inBatch[pid] {
			db.BumpLink(pid, n)
		}
	}
	return nil
}

// BumpLink adjusts a directory's link count directly (population helper).
func (db *DB) BumpLink(dir types.InodeID, delta int64) {
	p := db.shardFor(dir)
	_ = p.Shard.Apply([]storage.Mutation{{
		Kind: storage.MutDeltaAttr, Key: attrKey(dir),
		Delta: storage.AttrDelta{LinkCount: delta},
	}})
}

// TotalRows returns the number of MetaTable rows across shards
// (diagnostics and scale experiments).
func (db *DB) TotalRows() int {
	total := 0
	for _, p := range db.parts {
		total += p.Shard.Len()
	}
	return total
}

// DeleteRowDirect removes a MetaTable row bypassing transactions —
// corruption injection for fsck tests. Never used by the service path.
func (db *DB) DeleteRowDirect(pid types.InodeID, name string) {
	p := db.shardFor(pid)
	_ = p.Shard.Apply([]storage.Mutation{{
		Kind: storage.MutDelete, Key: types.Key{Pid: pid, Name: name},
	}})
}

// ReadDirPage lists up to limit children of dir with names greater than
// startAfter — the COSS ListObjects continuation pattern. It returns the
// page and the name to pass as the next page's startAfter ("" when the
// listing is complete). One RPC.
func (db *DB) ReadDirPage(op *rpc.Op, dir types.InodeID, startAfter string, limit int) ([]types.Entry, string, error) {
	if limit <= 0 {
		limit = 1000
	}
	var out []types.Entry
	more := false
	lo := childrenLo
	if startAfter != "" {
		lo = startAfter + "\x00" // strictly after startAfter
	}
	err := db.readRetry(dir, func(si int) error {
		p := db.parts[si]
		db.noteRead(si, dir)
		out, more = nil, false
		return op.Call(p.Node, db.cfg.OpCost, func() error {
			// Size the page once: the directory holds at most LinkCount
			// children, and the page at most limit entries.
			hint := limit
			if row, ok := p.Shard.Get(attrKey(dir)); ok && row.Entry.Attr.LinkCount < int64(hint) {
				hint = int(row.Entry.Attr.LinkCount)
			}
			if hint > 0 {
				out = make([]types.Entry, 0, hint)
			}
			p.Shard.Scan(
				types.Key{Pid: dir, Name: lo},
				types.Key{Pid: dir + 1, Name: ""},
				func(r storage.Row) bool {
					if len(out) == limit {
						more = true
						return false
					}
					out = append(out, r.Entry)
					return true
				})
			return nil
		})
	})
	next := ""
	if more && len(out) > 0 {
		next = out[len(out)-1].Name
	}
	return out, next, err
}
