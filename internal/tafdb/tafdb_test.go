package tafdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/types"
)

func testDB(t *testing.T, mode DeltaMode) (*DB, *rpc.Caller) {
	t.Helper()
	db := New(Config{Shards: 4, Delta: mode})
	t.Cleanup(db.Stop)
	if err := db.CreateRoot(types.RootID); err != nil {
		t.Fatal(err)
	}
	return db, rpc.NewCaller(netsim.NewLocalFabric())
}

func TestCreateStatDeleteObject(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	op := caller.Begin()
	e, _, err := db.CreateObject(op, types.RootID, "obj1", 1234)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID == 0 || e.Kind != types.KindObject {
		t.Fatalf("entry = %+v", e)
	}
	got, err := db.StatObject(caller.Begin(), types.RootID, "obj1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != e.ID || got.Attr.Size != 1234 {
		t.Fatalf("stat = %+v", got)
	}
	// Parent link count updated.
	root, err := db.StatDir(caller.Begin(), types.RootID)
	if err != nil {
		t.Fatal(err)
	}
	if root.Attr.LinkCount != 1 || root.Attr.Size != 1234 {
		t.Fatalf("root attr = %+v", root.Attr)
	}
	// Duplicate create fails.
	if _, _, err := db.CreateObject(caller.Begin(), types.RootID, "obj1", 1); !errors.Is(err, types.ErrExists) {
		t.Fatalf("dup create: %v", err)
	}
	if _, err := db.DeleteObject(caller.Begin(), types.RootID, "obj1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.StatObject(caller.Begin(), types.RootID, "obj1"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("stat after delete: %v", err)
	}
	root, _ = db.StatDir(caller.Begin(), types.RootID)
	if root.Attr.LinkCount != 0 {
		t.Fatalf("root links after delete = %d", root.Attr.LinkCount)
	}
}

func TestMkdirRmdir(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	id := db.NewID()
	d, _, err := db.Mkdir(caller.Begin(), types.RootID, "dir1", id, types.PermAll)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != id {
		t.Fatalf("mkdir id = %d", d.ID)
	}
	// The directory stats as empty.
	attr, err := db.StatDir(caller.Begin(), id)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Attr.LinkCount != 0 {
		t.Fatalf("new dir links = %d", attr.Attr.LinkCount)
	}
	// Non-empty rmdir fails.
	if _, _, err := db.CreateObject(caller.Begin(), id, "o", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rmdir(caller.Begin(), types.RootID, "dir1", id); !errors.Is(err, types.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if _, err := db.DeleteObject(caller.Begin(), id, "o"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rmdir(caller.Begin(), types.RootID, "dir1", id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.StatDir(caller.Begin(), id); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("dirstat after rmdir: %v", err)
	}
}

func TestMkdirIntoMissingParentFails(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	_, _, err := db.Mkdir(caller.Begin(), types.InodeID(999), "d", db.NewID(), types.PermAll)
	if !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadDirSkipsInternalRows(t *testing.T) {
	db, caller := testDB(t, DeltaAlways)
	id := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "d", id, types.PermAll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := db.CreateObject(caller.Begin(), id, fmt.Sprintf("o%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := db.ReadDir(caller.Begin(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("readdir = %d entries (delta rows leaked?)", len(entries))
	}
	for _, e := range entries {
		if e.Name[0] < 0x20 {
			t.Fatalf("internal row in readdir: %q", e.Name)
		}
	}
}

func TestDeltaStatMergesLiveDeltas(t *testing.T) {
	db, caller := testDB(t, DeltaAlways)
	id := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "d", id, types.PermAll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, _, err := db.CreateObject(caller.Begin(), id, fmt.Sprintf("o%d", i), 100); err != nil {
			t.Fatal(err)
		}
	}
	// Without compaction the deltas are live; dirstat must still be
	// accurate.
	attr, err := db.StatDir(caller.Begin(), id)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Attr.LinkCount != 7 || attr.Attr.Size != 700 {
		t.Fatalf("merged attr = %+v", attr.Attr)
	}
	// After compaction the answer is identical.
	db.CompactAll()
	attr2, err := db.StatDir(caller.Begin(), id)
	if err != nil {
		t.Fatal(err)
	}
	if attr2.Attr.LinkCount != 7 || attr2.Attr.Size != 700 {
		t.Fatalf("post-compact attr = %+v", attr2.Attr)
	}
}

func TestRenameDir(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	a := db.NewID()
	b := db.NewID()
	d := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "a", a, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "b", b, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Mkdir(caller.Begin(), a, "d", d, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RenameDir(caller.Begin(), a, "d", b, "d2", d, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetAccess(caller.Begin(), a, "d"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("old name resolves: %v", err)
	}
	e, err := db.GetAccess(caller.Begin(), b, "d2")
	if err != nil || e.ID != d {
		t.Fatalf("new name: %+v err=%v", e, err)
	}
	aAttr, _ := db.StatDir(caller.Begin(), a)
	bAttr, _ := db.StatDir(caller.Begin(), b)
	if aAttr.Attr.LinkCount != 0 || bAttr.Attr.LinkCount != 1 {
		t.Fatalf("links a=%d b=%d", aAttr.Attr.LinkCount, bAttr.Attr.LinkCount)
	}
	// Same-parent rename.
	if _, err := db.RenameDir(caller.Begin(), b, "d2", b, "d3", d, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetAccess(caller.Begin(), b, "d3"); err != nil {
		t.Fatal(err)
	}
	// Destination exists.
	e2 := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), b, "other", e2, types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RenameDir(caller.Begin(), b, "d3", b, "other", d, types.PermAll); !errors.Is(err, types.ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
}

func TestConcurrentCreatesSharedDirAllModes(t *testing.T) {
	for _, mode := range []DeltaMode{DeltaOff, DeltaAuto, DeltaAlways} {
		mode := mode
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			db, caller := testDB(t, mode)
			const goroutines, each = 8, 40
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						name := fmt.Sprintf("o-%d-%d", g, i)
						if _, _, err := db.CreateObject(caller.Begin(), types.RootID, name, 1); err != nil {
							t.Errorf("create %s: %v", name, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			db.CompactAll()
			attr, err := db.StatDir(caller.Begin(), types.RootID)
			if err != nil {
				t.Fatal(err)
			}
			if attr.Attr.LinkCount != goroutines*each {
				t.Fatalf("links = %d, want %d", attr.Attr.LinkCount, goroutines*each)
			}
		})
	}
}

// contendedMkdirs hammers mkdir into the shared root from many
// goroutines. Cross-shard mkdir transactions hold the parent's
// attribute-row lock across the prepare→commit round trip, so with a
// non-zero RTT the in-place mode aborts and retries — the Figure 4b
// contention. (Single-shard transactions commit atomically server-side
// and cannot conflict; that fast path is the CFS insight the paper cites,
// so contention tests must go through the two-shard path.)
func contendedMkdirs(t *testing.T, db *DB, goroutines, each int) {
	t.Helper()
	caller := rpc.NewCaller(netsim.NewFabric(netsim.Config{RTT: 200 * time.Microsecond}))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("d-%d-%d", g, i)
				if _, _, err := db.Mkdir(caller.Begin(), types.RootID, name, db.NewID(), types.PermAll); err != nil {
					t.Errorf("mkdir %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDeltaModeReducesRetries(t *testing.T) {
	run := func(mode DeltaMode) int64 {
		db, _ := testDB(t, mode)
		contendedMkdirs(t, db, 16, 15)
		return db.Retries()
	}
	inPlace := run(DeltaOff)
	delta := run(DeltaAlways)
	if inPlace == 0 {
		t.Fatal("in-place mode saw no contention; test not exercising conflicts")
	}
	if delta != 0 {
		t.Fatalf("delta mode retried %d times; deltas should be conflict-free", delta)
	}
}

func TestDeltaAutoActivatesUnderContention(t *testing.T) {
	db, caller := testDB(t, DeltaAuto)
	if db.DeltaActive(types.RootID) {
		t.Fatal("delta active before contention")
	}
	const goroutines, each = 16, 15
	contendedMkdirs(t, db, goroutines, each)
	if !db.DeltaActive(types.RootID) {
		t.Fatal("delta mode did not activate under contention")
	}
	// Accuracy preserved across the switch.
	db.CompactAll()
	attr, _ := db.StatDir(caller.Begin(), types.RootID)
	if attr.Attr.LinkCount != goroutines*each {
		t.Fatalf("links = %d, want %d", attr.Attr.LinkCount, goroutines*each)
	}
}

func TestRmdirRacingCreateNeverOrphans(t *testing.T) {
	// A create and an rmdir race on the same directory: either the
	// create wins (rmdir sees ErrNotEmpty or the create fails NotFound
	// after rmdir committed) but never both succeeding.
	for _, mode := range []DeltaMode{DeltaOff, DeltaAlways} {
		mode := mode
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			db, caller := testDB(t, mode)
			for round := 0; round < 50; round++ {
				id := db.NewID()
				name := fmt.Sprintf("d%d", round)
				if _, _, err := db.Mkdir(caller.Begin(), types.RootID, name, id, types.PermAll); err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				var createErr, rmdirErr error
				wg.Add(2)
				go func() {
					defer wg.Done()
					_, _, createErr = db.CreateObject(caller.Begin(), id, "o", 1)
				}()
				go func() {
					defer wg.Done()
					_, rmdirErr = db.Rmdir(caller.Begin(), types.RootID, name, id)
				}()
				wg.Wait()
				createOK := createErr == nil
				rmdirOK := rmdirErr == nil
				if createOK && rmdirOK {
					t.Fatalf("round %d: both create and rmdir succeeded (orphan)", round)
				}
				if !createOK && !rmdirOK {
					t.Fatalf("round %d: both failed: create=%v rmdir=%v", round, createErr, rmdirErr)
				}
			}
		})
	}
}

func TestBulkInsertVisible(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	dirID := db.NewID()
	entries := []types.Entry{
		{Pid: types.RootID, Name: "bulk", ID: dirID, Kind: types.KindDir, Perm: types.PermAll},
		{Pid: dirID, Name: "o1", ID: db.NewID(), Kind: types.KindObject, Perm: types.PermAll, Attr: types.Attr{Size: 5}},
	}
	if err := db.BulkInsert(entries); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetAccess(caller.Begin(), types.RootID, "bulk"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.StatObject(caller.Begin(), dirID, "o1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.StatDir(caller.Begin(), dirID); err != nil {
		t.Fatal(err)
	}
	if db.TotalRows() < 3 {
		t.Fatalf("rows = %d", db.TotalRows())
	}
}

func TestSetDirAttr(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	id := db.NewID()
	if _, _, err := db.Mkdir(caller.Begin(), types.RootID, "d", id, types.PermAll); err != nil {
		t.Fatal(err)
	}
	attr := types.Attr{Owner: 42, MTime: time.Now()}
	if _, err := db.SetDirAttr(caller.Begin(), id, attr); err != nil {
		t.Fatal(err)
	}
	got, err := db.StatDir(caller.Begin(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attr.Owner != 42 {
		t.Fatalf("owner = %d", got.Attr.Owner)
	}
}

func TestSingleShardFastPathRTTs(t *testing.T) {
	db, caller := testDB(t, DeltaOff)
	op := caller.Begin()
	if _, _, err := db.CreateObject(op, types.RootID, "o", 1); err != nil {
		t.Fatal(err)
	}
	if op.RTTs() != 1 {
		t.Fatalf("create RTTs = %d, want 1 (single-shard fast path)", op.RTTs())
	}
}

func TestShardCrashRecoveryEndToEnd(t *testing.T) {
	db := New(Config{Shards: 4, WALSyncCost: time.Microsecond})
	t.Cleanup(db.Stop)
	if err := db.CreateRoot(types.RootID); err != nil {
		t.Fatal(err)
	}
	caller := rpc.NewCaller(netsim.NewLocalFabric())
	// Transactional workload across shards.
	var ids []types.InodeID
	for i := 0; i < 8; i++ {
		id := db.NewID()
		if _, _, err := db.Mkdir(caller.Begin(), types.RootID, fmt.Sprintf("d%d", i), id, types.PermAll); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		for j := 0; j < 4; j++ {
			if _, _, err := db.CreateObject(caller.Begin(), id, fmt.Sprintf("o%d", j), 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash and recover every shard; all metadata must survive.
	rowsBefore := db.TotalRows()
	for i := 0; i < db.Shards(); i++ {
		db.CrashShard(i)
	}
	if db.TotalRows() != 0 {
		t.Fatal("crash kept rows")
	}
	replayed := 0
	for i := 0; i < db.Shards(); i++ {
		replayed += db.RecoverShard(i)
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if db.TotalRows() != rowsBefore {
		t.Fatalf("rows after recovery = %d, want %d", db.TotalRows(), rowsBefore)
	}
	for i, id := range ids {
		e, err := db.GetAccess(caller.Begin(), types.RootID, fmt.Sprintf("d%d", i))
		if err != nil || e.ID != id {
			t.Fatalf("dir d%d after recovery: %+v err=%v", i, e, err)
		}
		st, err := db.StatDir(caller.Begin(), id)
		if err != nil || st.Attr.LinkCount != 4 {
			t.Fatalf("dirstat d%d after recovery: %+v err=%v", i, st.Attr, err)
		}
	}
	// The recovered DB accepts new transactions.
	if _, _, err := db.CreateObject(caller.Begin(), ids[0], "post-crash", 1); err != nil {
		t.Fatal(err)
	}
}
