package clock

import (
	"math/rand"
	"sync"
	"testing"
)

// skewedWall builds a wall-clock source for one simulated node: a base
// offset (the node's skew, possibly far behind or ahead), advanced by a
// random non-negative step per reading, occasionally stalling and
// occasionally jumping backwards (NTP corrections).
func skewedWall(rng *rand.Rand, skew int64) func() int64 {
	now := skew
	return func() int64 {
		switch rng.Intn(10) {
		case 0: // stall
		case 1: // backwards jump
			now -= int64(rng.Intn(1000))
		default:
			now += int64(rng.Intn(100))
		}
		return now
	}
}

// TestNowMonotonic is the quick-check monotonicity property: for any
// sequence of wall readings — stalls and backwards jumps included —
// timestamps issued by one clock are strictly increasing.
func TestNowMonotonic(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		c := NewWithWall(1, skewedWall(rng, rng.Int63n(1e9)))
		prev := c.Now()
		for i := 0; i < 1000; i++ {
			cur := c.Now()
			if !prev.Less(cur) {
				t.Fatalf("trial %d step %d: %v !< %v", trial, i, prev, cur)
			}
			prev = cur
		}
	}
}

// TestCausality is the quick-check causality property: across a mesh of
// nodes with wildly skewed physical clocks exchanging random messages,
// every receive timestamp strictly exceeds the matching send timestamp,
// and every node's own sequence stays strictly increasing.
func TestCausality(t *testing.T) {
	const nodes = 6
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		clocks := make([]*Clock, nodes)
		last := make([]Timestamp, nodes)
		for i := range clocks {
			// Skews span three orders of magnitude, so some nodes are
			// "in the past" relative to every message they receive.
			clocks[i] = NewWithWall(uint16(i+1), skewedWall(rng, rng.Int63n(1e6)*int64(i)))
			last[i] = clocks[i].Now()
		}
		for step := 0; step < 5000; step++ {
			src := rng.Intn(nodes)
			if rng.Intn(3) == 0 { // local event
				ts := clocks[src].Now()
				if !last[src].Less(ts) {
					t.Fatalf("trial %d: node %d regressed: %v !< %v", trial, src, last[src], ts)
				}
				last[src] = ts
				continue
			}
			dst := rng.Intn(nodes)
			for dst == src {
				dst = rng.Intn(nodes)
			}
			sent := clocks[src].Now()
			if !last[src].Less(sent) {
				t.Fatalf("trial %d: sender %d regressed: %v !< %v", trial, src, last[src], sent)
			}
			last[src] = sent
			recv := clocks[dst].Observe(sent)
			if !sent.Less(recv) {
				t.Fatalf("trial %d: receive %v !> send %v", trial, recv, sent)
			}
			if !last[dst].Less(recv) {
				t.Fatalf("trial %d: receiver %d regressed: %v !< %v", trial, dst, last[dst], recv)
			}
			last[dst] = recv
		}
	}
}

// TestSiteTieBreak verifies the deterministic tie-break: identical
// (Wall, Logical) from different sites order by site id, and Compare is
// a total order (antisymmetric, transitive on sampled triples).
func TestSiteTieBreak(t *testing.T) {
	a := Timestamp{Wall: 7, Logical: 3, Site: 1}
	b := Timestamp{Wall: 7, Logical: 3, Site: 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("site tie-break broken: %v vs %v", a, b)
	}
	if a.Compare(a) != 0 {
		t.Fatalf("Compare not reflexive")
	}
	rng := rand.New(rand.NewSource(42))
	sample := func() Timestamp {
		return Timestamp{
			Wall:    int64(rng.Intn(3)),
			Logical: int32(rng.Intn(3)),
			Site:    uint16(rng.Intn(3)),
		}
	}
	for i := 0; i < 10000; i++ {
		x, y, z := sample(), sample(), sample()
		if x.Compare(y) != -y.Compare(x) {
			t.Fatalf("not antisymmetric: %v %v", x, y)
		}
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 && x.Compare(z) > 0 {
			t.Fatalf("not transitive: %v %v %v", x, y, z)
		}
		if x.Compare(y) == 0 && x != y {
			t.Fatalf("distinct timestamps compare equal: %v %v", x, y)
		}
	}
}

// TestObserveConcurrent exercises the clock under concurrent Now and
// Observe callers; the race detector guards the locking and each
// goroutine's local sequence must stay strictly increasing.
func TestObserveConcurrent(t *testing.T) {
	c := New(3)
	remote := New(9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev Timestamp
			for i := 0; i < 2000; i++ {
				var ts Timestamp
				if g%2 == 0 {
					ts = c.Now()
				} else {
					ts = c.Observe(remote.Now())
				}
				if !prev.Less(ts) {
					t.Errorf("goroutine %d regressed: %v !< %v", g, prev, ts)
					return
				}
				prev = ts
			}
		}(g)
	}
	wg.Wait()
}
