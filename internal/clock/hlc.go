// Package clock implements Hybrid Logical Clocks (Kulkarni et al.,
// "Logical Physical Clocks and Consistent Snapshots in Globally
// Distributed Databases"). A Timestamp combines a physical wall reading
// with a logical counter, so timestamps are causally consistent (a
// receive always exceeds the send) while staying close to physical
// time even across sites with skewed clocks. The replication plane
// (internal/repl) stamps every oplog record with an HLC and resolves
// cross-site conflicts last-writer-wins on it, with the site id as the
// deterministic tie-break.
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Timestamp is one HLC reading. The zero Timestamp sorts before every
// real one.
type Timestamp struct {
	// Wall is the physical component, nanoseconds since the Unix epoch.
	Wall int64
	// Logical is the logical component, reset whenever Wall advances.
	Logical int32
	// Site identifies the clock that issued the timestamp; it breaks
	// ties deterministically when two sites issue the same (Wall,
	// Logical) — without it, last-writer-wins would be order-dependent.
	Site uint16
}

// IsZero reports whether t is the zero timestamp.
func (t Timestamp) IsZero() bool { return t == Timestamp{} }

// Compare orders timestamps: Wall, then Logical, then Site. It returns
// -1, 0, or +1. Site participates so the order is total across sites:
// two distinct events never compare equal unless issued by the same
// clock at the same reading.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Wall != o.Wall:
		if t.Wall < o.Wall {
			return -1
		}
		return 1
	case t.Logical != o.Logical:
		if t.Logical < o.Logical {
			return -1
		}
		return 1
	case t.Site != o.Site:
		if t.Site < o.Site {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports t < o under Compare's total order.
func (t Timestamp) Less(o Timestamp) bool { return t.Compare(o) < 0 }

// String renders the timestamp for logs and /status.
func (t Timestamp) String() string {
	if t.IsZero() {
		return "0.0@0"
	}
	return fmt.Sprintf("%d.%d@%d", t.Wall, t.Logical, t.Site)
}

// Clock is one site's hybrid logical clock. Safe for concurrent use.
type Clock struct {
	site uint16
	wall func() int64

	mu   sync.Mutex
	last Timestamp
}

// New creates a clock for the given site backed by the system wall
// clock.
func New(site uint16) *Clock {
	return NewWithWall(site, func() int64 { return time.Now().UnixNano() })
}

// NewWithWall creates a clock with an injected wall-clock reading —
// tests use it to simulate skewed or frozen physical clocks.
func NewWithWall(site uint16, wall func() int64) *Clock {
	return &Clock{site: site, wall: wall}
}

// Site returns the clock's site id.
func (c *Clock) Site() uint16 { return c.site }

// Now issues a timestamp for a local or send event. Successive calls
// are strictly increasing even if the physical clock stalls or jumps
// backwards: the logical component absorbs the difference.
func (c *Clock) Now() Timestamp {
	w := c.wall()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w > c.last.Wall {
		c.last = Timestamp{Wall: w}
	} else {
		c.last.Logical++
	}
	c.last.Site = c.site
	return c.last
}

// Observe merges a remote timestamp into the clock (a receive event)
// and issues a fresh local timestamp that exceeds both the remote
// timestamp and every timestamp this clock issued before — the HLC
// receive rule that makes happens-before visible in timestamp order.
func (c *Clock) Observe(remote Timestamp) Timestamp {
	w := c.wall()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case w > c.last.Wall && w > remote.Wall:
		c.last = Timestamp{Wall: w}
	case remote.Wall > c.last.Wall:
		c.last = Timestamp{Wall: remote.Wall, Logical: remote.Logical + 1}
	case c.last.Wall > remote.Wall:
		c.last.Logical++
	default: // equal walls: take the larger logical and advance it
		if remote.Logical > c.last.Logical {
			c.last.Logical = remote.Logical
		}
		c.last.Logical++
	}
	c.last.Site = c.site
	return c.last
}

// Last returns the most recent timestamp issued or observed, without
// advancing the clock.
func (c *Clock) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}
