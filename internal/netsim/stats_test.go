package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestEdgeRegistry(t *testing.T) {
	f := NewLocalFabric()
	for i := 0; i < 3; i++ {
		_ = f.Deliver("proxy", "idx-0")
	}
	_ = f.Deliver("proxy", "idx-1")
	_ = f.RoundTrip
	edges := f.Edges()
	if e := edges["proxy->idx-0"]; e == nil || e.Trips.Load() != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if e := edges["proxy->idx-1"]; e == nil || e.Trips.Load() != 1 {
		t.Fatalf("edges = %v", edges)
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fabric_rpcs 4", "edge_proxy->idx-0_trips 3", "edge_proxy->idx-0_p99_us"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestNodeQueueWaitHistogram(t *testing.T) {
	// One worker, 2ms per request: the 4th concurrent arrival waits
	// ~6ms, so the queue-wait tail must be visibly non-zero.
	n := NewNode("srv", 1)
	for i := 0; i < 4; i++ {
		n.Charge(2 * time.Millisecond)
	}
	q := n.QueueWait()
	if q.Count() != 4 {
		t.Fatalf("queue wait observations = %d", q.Count())
	}
	if q.Max() < time.Millisecond {
		t.Fatalf("queue wait max = %v, want >= 1ms", q.Max())
	}
	var buf bytes.Buffer
	if err := n.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"node_srv_ops 4", "node_srv_queue_wait_p99_us", "node_srv_busy_us 8000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q:\n%s", want, buf.String())
		}
	}
}
