package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestZeroFabricIsFree(t *testing.T) {
	f := NewLocalFabric()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		f.RoundTrip()
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("zero-RTT fabric took %v for 1000 round trips", elapsed)
	}
	if got := f.RPCs(); got != 1000 {
		t.Fatalf("RPCs = %d, want 1000", got)
	}
	if got := f.ResetRPCs(); got != 1000 {
		t.Fatalf("ResetRPCs = %d, want 1000", got)
	}
	if got := f.RPCs(); got != 0 {
		t.Fatalf("RPCs after reset = %d, want 0", got)
	}
}

func TestRoundTripChargesRTT(t *testing.T) {
	f := NewFabric(Config{RTT: 2 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 5; i++ {
		f.RoundTrip()
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 round trips at 2ms took only %v", elapsed)
	}
}

func TestNodeThroughputCap(t *testing.T) {
	// 4 workers at 1ms per op => 4000 ops/s. Drive it hard from 32
	// goroutines for 200 ops and check wall time is at least the fluid
	// lower bound.
	n := NewNode("m1", 4)
	const ops = 200
	cost := time.Millisecond
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops/32; i++ {
				if err := n.Exec(cost, func() error { return nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 192 ops at 4/ms-per-op = 48ms minimum.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("saturated node finished in %v, model not enforcing capacity", elapsed)
	}
	if n.Ops() != (ops/32)*32 {
		t.Fatalf("ops = %d", n.Ops())
	}
	if n.BusyTime() != time.Duration(n.Ops())*cost {
		t.Fatalf("busy = %v", n.BusyTime())
	}
}

func TestUnlimitedNodeIsFree(t *testing.T) {
	n := NewNode("free", 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		_ = n.Exec(time.Millisecond, func() error { return nil })
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("unlimited node took %v", elapsed)
	}
}

func TestUnsaturatedNodeAddsLittleLatency(t *testing.T) {
	n := NewNode("m1", 8)
	// A single sequential caller at 1ms cost on 8 workers advances the
	// timeline 125µs per op, so the first op waits ~0.
	start := time.Now()
	_ = n.Exec(time.Millisecond, func() error { return nil })
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("first op on idle node waited %v", elapsed)
	}
}

func TestExecPropagatesError(t *testing.T) {
	n := NewNode("m1", 1)
	sentinel := func() error { return errSentinel }
	if err := n.Exec(0, sentinel); err != errSentinel {
		t.Fatalf("err = %v", err)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestJitterStaysBounded(t *testing.T) {
	f := NewFabric(Config{RTT: 2 * time.Millisecond, Jitter: 0.5, Seed: 7})
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		f.RoundTrip()
	}
	elapsed := time.Since(start)
	// With ±25% jitter the total must stay near n×RTT (plus overshoot),
	// never below the jitter floor.
	if elapsed < n*3*time.Millisecond/2 {
		t.Fatalf("jittered round trips too fast: %v", elapsed)
	}
}

func TestUtilization(t *testing.T) {
	n := NewNode("u", 2)
	start := time.Now()
	for i := 0; i < 10; i++ {
		_ = n.Exec(10*time.Millisecond, func() error { return nil })
	}
	u := n.Utilization(start)
	if u <= 0 || u > 1.5 {
		t.Fatalf("utilization = %f", u)
	}
	// Unlimited nodes report zero.
	free := NewNode("free", 0)
	_ = free.Exec(time.Millisecond, func() error { return nil })
	if free.Utilization(start) != 0 {
		t.Fatal("unlimited node utilization")
	}
	if free.Utilization(time.Now().Add(time.Hour)) != 0 {
		t.Fatal("future reference instant")
	}
}

// hookStub is a minimal FaultHook: it cuts one directed edge and marks
// one node down, and adds a fixed delay on another edge.
type hookStub struct {
	cutSrc, cutDst string
	downNode       string
	delayDst       string
	delay          time.Duration
	err            error
}

func (h *hookStub) Edge(src, dst string) (time.Duration, error) {
	if src == h.cutSrc && dst == h.cutDst {
		return 0, h.err
	}
	if dst == h.delayDst {
		return h.delay, nil
	}
	return 0, nil
}

func (h *hookStub) Down(node string) error {
	if node == h.downNode {
		return h.err
	}
	return nil
}

func TestSeedIsExposed(t *testing.T) {
	if got := NewLocalFabric().Seed(); got != 42 {
		t.Fatalf("default seed = %d, want the fixed default 42", got)
	}
	f := NewFabric(Config{Seed: 1234})
	if got := f.Seed(); got != 1234 {
		// Include the effective seed so the failing run reproduces.
		t.Fatalf("Seed() = %d, want 1234 (fabric seed %d)", got, f.Seed())
	}
}

func TestDeliverConsultsHook(t *testing.T) {
	f := NewLocalFabric()
	stub := &hookStub{cutSrc: "a", cutDst: "b", err: errSentinel}
	var hook FaultHook = stub
	f.SetFaults(hook)
	if err := f.Deliver("a", "b"); err != errSentinel {
		t.Fatalf("cut edge delivered: %v (fabric seed %d)", err, f.Seed())
	}
	if err := f.Deliver("b", "a"); err != nil {
		t.Fatalf("open edge failed: %v (fabric seed %d)", err, f.Seed())
	}
	// Lost messages still count as round trips.
	if got := f.RPCs(); got != 2 {
		t.Fatalf("RPCs = %d, want 2", got)
	}
	// Removing the hook restores unconditional delivery.
	f.SetFaults(nil)
	if f.Faults() != nil {
		t.Fatal("Faults() non-nil after removal")
	}
	if err := f.Deliver("a", "b"); err != nil {
		t.Fatalf("hookless delivery failed: %v", err)
	}
}

func TestDeliverAddsHookDelay(t *testing.T) {
	f := NewLocalFabric() // zero RTT: only the injected delay is charged
	var hook FaultHook = &hookStub{delayDst: "slow", delay: 5 * time.Millisecond}
	f.SetFaults(hook)
	start := time.Now()
	if err := f.Deliver("x", "slow"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delayed delivery took only %v (fabric seed %d)", elapsed, f.Seed())
	}
	start = time.Now()
	_ = f.Deliver("x", "fast")
	if elapsed := time.Since(start); elapsed > 2*time.Millisecond {
		t.Fatalf("undelayed delivery took %v", elapsed)
	}
}

func TestNodeExecConsultsDownHook(t *testing.T) {
	n := NewNode("srv", 0)
	var hook FaultHook = &hookStub{downNode: "srv", err: errSentinel}
	n.SetFaults(hook)
	ran := false
	if err := n.Exec(0, func() error { ran = true; return nil }); err != errSentinel {
		t.Fatalf("down node executed: err=%v ran=%v", err, ran)
	}
	if n.Ops() != 0 {
		t.Fatal("down node charged an op")
	}
	n.SetFaults(nil)
	if err := n.Exec(0, func() error { return nil }); err != nil {
		t.Fatalf("restored node: %v", err)
	}
}
