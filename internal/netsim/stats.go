package netsim

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"mantle/internal/metrics"
)

// EdgeStats accumulates per-edge delivery accounting: round trips
// charged, messages lost to injected faults, and the delivery-latency
// histogram (RTT + jitter + injected extra). One EdgeStats exists per
// distinct (src, dst) pair seen on the fabric.
type EdgeStats struct {
	Trips   atomic.Int64
	Losses  atomic.Int64
	Latency metrics.Latency
}

// edgeKey renders the registry key for a (src, dst) pair; unnamed
// callers (client-originated RPCs) show as "client".
func edgeKey(src, dst string) string {
	if src == "" {
		src = "client"
	}
	if dst == "" {
		dst = "client"
	}
	return src + "->" + dst
}

// Edge returns (creating if needed) the stats of the (src, dst) edge.
func (f *Fabric) Edge(src, dst string) *EdgeStats {
	key := edgeKey(src, dst)
	if e, ok := f.edges.Load(key); ok {
		return e.(*EdgeStats)
	}
	e, _ := f.edges.LoadOrStore(key, &EdgeStats{})
	return e.(*EdgeStats)
}

// Edges snapshots the per-edge registry, keyed "src->dst".
func (f *Fabric) Edges() map[string]*EdgeStats {
	out := map[string]*EdgeStats{}
	f.edges.Range(func(k, v any) bool {
		out[k.(string)] = v.(*EdgeStats)
		return true
	})
	return out
}

// WriteMetrics renders the fabric's per-edge registry in the flat
// "name value" exposition format used by metrics.Registry, sorted by
// name: edge_<src->dst>_{trips,losses,p50_us,p99_us,max_us}.
func (f *Fabric) WriteMetrics(w io.Writer) error {
	lines := []string{fmt.Sprintf("fabric_rpcs %d", f.RPCs())}
	f.edges.Range(func(k, v any) bool {
		key, e := k.(string), v.(*EdgeStats)
		lines = append(lines,
			fmt.Sprintf("edge_%s_trips %d", key, e.Trips.Load()),
			fmt.Sprintf("edge_%s_losses %d", key, e.Losses.Load()),
			fmt.Sprintf("edge_%s_p50_us %d", key, e.Latency.Quantile(0.50).Microseconds()),
			fmt.Sprintf("edge_%s_p99_us %d", key, e.Latency.Quantile(0.99).Microseconds()),
			fmt.Sprintf("edge_%s_max_us %d", key, e.Latency.Max().Microseconds()),
		)
		return true
	})
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// nodeStats is the per-node instrumentation shared by all nodes.
type nodeStats struct {
	queueWait metrics.Latency
}

// QueueWait returns the node's queue-delay histogram: for every Charge,
// the time the request waited for its slot on the service timeline
// (zero on an unsaturated node). Tail growth here is the signature of
// a saturated metadata server (§6.3 of the paper).
func (n *Node) QueueWait() *metrics.Latency { return &n.stats.queueWait }

// WriteMetrics renders the node's counters and queue-delay histogram in
// the flat exposition format, prefixed node_<name>_.
func (n *Node) WriteMetrics(w io.Writer) error {
	q := n.QueueWait()
	lines := []string{
		fmt.Sprintf("node_%s_ops %d", n.name, n.Ops()),
		fmt.Sprintf("node_%s_busy_us %d", n.name, n.BusyTime().Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_p50_us %d", n.name, q.Quantile(0.50).Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_p99_us %d", n.name, q.Quantile(0.99).Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_max_us %d", n.name, q.Max().Microseconds()),
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
