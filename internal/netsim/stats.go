package netsim

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"mantle/internal/metrics"
)

// EdgeStats accumulates per-edge delivery accounting: round trips
// charged, messages lost to injected faults, and the delivery-latency
// histogram (RTT + jitter + injected extra). One EdgeStats exists per
// distinct (src, dst) pair seen on the fabric.
type EdgeStats struct {
	Trips   atomic.Int64
	Losses  atomic.Int64
	Latency metrics.Latency
}

// edgePair is the registry key for a (src, dst) pair — a struct, not a
// rendered string, so the per-delivery Edge lookup on the hot path does
// no concatenation. Unnamed callers (client-originated RPCs) normalise
// to "client".
type edgePair struct {
	src, dst string
}

func normEdge(src, dst string) edgePair {
	if src == "" {
		src = "client"
	}
	if dst == "" {
		dst = "client"
	}
	return edgePair{src, dst}
}

// Edge returns (creating if needed) the stats of the (src, dst) edge.
// The hit path — every delivery after an edge's first — is a shared
// lock and one map probe.
func (f *Fabric) Edge(src, dst string) *EdgeStats {
	k := normEdge(src, dst)
	f.edgeMu.RLock()
	e, ok := f.edges[k]
	f.edgeMu.RUnlock()
	if ok {
		return e
	}
	f.edgeMu.Lock()
	defer f.edgeMu.Unlock()
	if e, ok = f.edges[k]; ok {
		return e
	}
	if f.edges == nil {
		f.edges = make(map[edgePair]*EdgeStats)
	}
	e = &EdgeStats{}
	f.edges[k] = e
	return e
}

// Edges snapshots the per-edge registry, keyed "src->dst" (the string
// rendering happens only here, off the delivery path).
func (f *Fabric) Edges() map[string]*EdgeStats {
	f.edgeMu.RLock()
	defer f.edgeMu.RUnlock()
	out := make(map[string]*EdgeStats, len(f.edges))
	for k, e := range f.edges {
		out[k.src+"->"+k.dst] = e
	}
	return out
}

// WriteMetrics renders the fabric's per-edge registry in the flat
// "name value" exposition format used by metrics.Registry, sorted by
// name: edge_<src->dst>_{trips,losses,p50_us,p99_us,max_us}.
func (f *Fabric) WriteMetrics(w io.Writer) error {
	lines := []string{fmt.Sprintf("fabric_rpcs %d", f.RPCs())}
	for key, e := range f.Edges() {
		lines = append(lines,
			fmt.Sprintf("edge_%s_trips %d", key, e.Trips.Load()),
			fmt.Sprintf("edge_%s_losses %d", key, e.Losses.Load()),
			fmt.Sprintf("edge_%s_p50_us %d", key, e.Latency.Quantile(0.50).Microseconds()),
			fmt.Sprintf("edge_%s_p99_us %d", key, e.Latency.Quantile(0.99).Microseconds()),
			fmt.Sprintf("edge_%s_max_us %d", key, e.Latency.Max().Microseconds()),
		)
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// nodeStats is the per-node instrumentation shared by all nodes.
type nodeStats struct {
	queueWait metrics.Latency
}

// QueueWait returns the node's queue-delay histogram: for every Charge,
// the time the request waited for its slot on the service timeline
// (zero on an unsaturated node). Tail growth here is the signature of
// a saturated metadata server (§6.3 of the paper).
func (n *Node) QueueWait() *metrics.Latency { return &n.stats.queueWait }

// WriteMetrics renders the node's counters and queue-delay histogram in
// the flat exposition format, prefixed node_<name>_.
func (n *Node) WriteMetrics(w io.Writer) error {
	q := n.QueueWait()
	lines := []string{
		fmt.Sprintf("node_%s_ops %d", n.name, n.Ops()),
		fmt.Sprintf("node_%s_busy_us %d", n.name, n.BusyTime().Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_p50_us %d", n.name, q.Quantile(0.50).Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_p99_us %d", n.name, q.Quantile(0.99).Microseconds()),
		fmt.Sprintf("node_%s_queue_wait_max_us %d", n.name, q.Max().Microseconds()),
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
