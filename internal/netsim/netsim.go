// Package netsim provides the simulated cluster fabric that every system
// in this reproduction runs on: an injected per-RPC network round-trip
// latency and a per-node CPU capacity model.
//
// The paper's testbed is a 53-server cluster on a 25 Gbps network. Two
// properties of that environment determine the evaluation's shapes:
//
//  1. the fixed round-trip cost of each proxy↔metadata-server RPC — path
//     resolution cost is #RTTs × RTT (Table 1 of the paper), and
//  2. the finite CPU capacity of each metadata server, which is what
//     saturates LocoFS's directory server and Mantle's IndexNode leader
//     (§6.3, §6.5) and what follower/learner reads relieve.
//
// netsim models exactly those two things:
//
//   - Fabric.RoundTrip sleeps one configured RTT (with optional jitter),
//     charged once per RPC.
//   - Node.Exec charges a per-request CPU service time against a fluid
//     queue with the node's aggregate service rate Workers/serviceTime:
//     each request is assigned the next available position on the node's
//     service timeline and sleeps until that position. An unsaturated node
//     adds (almost) no latency; a saturated node caps throughput at
//     exactly Workers/serviceTime and queue delay grows, as on real
//     hardware. No goroutine ever busy-spins, so the model stays accurate
//     with thousands of simulated clients on a small host.
//
// With RTT and costs set to zero the fabric is free, which unit tests use.
package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises a Fabric.
type Config struct {
	// RTT is the network round-trip time charged per RPC.
	RTT time.Duration
	// Jitter is the fraction of RTT applied as uniform random jitter
	// (+/- RTT*Jitter/2). Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter source. Zero means a fixed default seed so
	// runs are reproducible.
	Seed int64
}

// Fabric is the shared network. It is safe for concurrent use.
type Fabric struct {
	rtt    time.Duration
	jitter float64

	mu   sync.Mutex
	rng  *rand.Rand
	rpcs atomic.Int64
}

// NewFabric builds a fabric from cfg.
func NewFabric(cfg Config) *Fabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	return &Fabric{
		rtt:    cfg.RTT,
		jitter: cfg.Jitter,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// NewLocalFabric returns a zero-latency fabric, used by unit tests and by
// callers that only want RPC counting.
func NewLocalFabric() *Fabric { return NewFabric(Config{}) }

// RTT returns the configured round-trip time.
func (f *Fabric) RTT() time.Duration { return f.rtt }

// RoundTrip charges one network round trip: it sleeps the configured RTT
// (plus jitter) and increments the fabric-wide RPC counter. With RTT zero
// it only counts.
func (f *Fabric) RoundTrip() {
	f.rpcs.Add(1)
	d := f.rtt
	if d <= 0 {
		return
	}
	if f.jitter > 0 {
		f.mu.Lock()
		frac := (f.rng.Float64() - 0.5) * f.jitter
		f.mu.Unlock()
		d += time.Duration(float64(d) * frac)
	}
	time.Sleep(d)
}

// RPCs returns the total number of round trips charged so far.
func (f *Fabric) RPCs() int64 { return f.rpcs.Load() }

// ResetRPCs zeroes the RPC counter and returns the previous value.
func (f *Fabric) ResetRPCs() int64 { return f.rpcs.Swap(0) }

// Node models one server's CPU as a fluid queue with a bounded aggregate
// service rate. Exec(cost) reserves cost/Workers of timeline per request,
// so the node sustains at most Workers/cost requests per second; beyond
// that, requests queue and their latency grows, exactly like a saturated
// server.
type Node struct {
	name    string
	workers int

	mu   sync.Mutex
	next time.Time // next free position on the service timeline

	busy atomic.Int64 // cumulative modelled CPU time, ns
	ops  atomic.Int64
}

// NewNode creates a node with the given number of CPU worker slots.
// workers <= 0 means unlimited capacity (no queueing, costs ignored).
func NewNode(name string, workers int) *Node {
	return &Node{name: name, workers: workers}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Workers returns the node's configured parallelism.
func (n *Node) Workers() int { return n.workers }

// Exec runs fn on the node after charging cost of CPU service time
// against the node's capacity. fn itself should be cheap real work (map
// and tree operations); the modelled cost dominates. The error from fn is
// returned unchanged.
func (n *Node) Exec(cost time.Duration, fn func() error) error {
	n.Charge(cost)
	return fn()
}

// Charge books cost of CPU time on the node's service timeline and blocks
// until the booked slot is reached. It is exposed separately from Exec for
// handlers that interleave several charges with real work.
func (n *Node) Charge(cost time.Duration) {
	n.ops.Add(1)
	if cost <= 0 || n.workers <= 0 {
		return
	}
	n.busy.Add(int64(cost))
	advance := cost / time.Duration(n.workers)
	n.mu.Lock()
	now := time.Now()
	if n.next.Before(now) {
		n.next = now
	}
	start := n.next
	n.next = n.next.Add(advance)
	n.mu.Unlock()
	// Sub-floor waits are absorbed rather than slept: OS timer
	// granularity (~1ms on stock kernels) would overshoot a short sleep
	// by far more than the wait itself, distorting the model. The
	// pacer's timeline still advances, so a saturated node's queue delay
	// grows past the floor and the throughput cap is enforced exactly.
	if wait := start.Sub(now); wait > chargeSleepFloor {
		time.Sleep(wait)
	}
}

// chargeSleepFloor is the smallest queue delay worth sleeping for.
const chargeSleepFloor = 500 * time.Microsecond

// Ops returns the number of requests executed on the node.
func (n *Node) Ops() int64 { return n.ops.Load() }

// BusyTime returns the cumulative modelled CPU time consumed on the node.
func (n *Node) BusyTime() time.Duration { return time.Duration(n.busy.Load()) }

// Utilization reports the node's modelled CPU utilisation over the window
// since a reference instant: busyTime / (elapsed × workers).
func (n *Node) Utilization(since time.Time) float64 {
	if n.workers <= 0 {
		return 0
	}
	elapsed := time.Since(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(n.BusyTime()) / (float64(elapsed) * float64(n.workers))
}
