// Package netsim provides the simulated cluster fabric that every system
// in this reproduction runs on: an injected per-RPC network round-trip
// latency and a per-node CPU capacity model.
//
// The paper's testbed is a 53-server cluster on a 25 Gbps network. Two
// properties of that environment determine the evaluation's shapes:
//
//  1. the fixed round-trip cost of each proxy↔metadata-server RPC — path
//     resolution cost is #RTTs × RTT (Table 1 of the paper), and
//  2. the finite CPU capacity of each metadata server, which is what
//     saturates LocoFS's directory server and Mantle's IndexNode leader
//     (§6.3, §6.5) and what follower/learner reads relieve.
//
// netsim models exactly those two things:
//
//   - Fabric.RoundTrip sleeps one configured RTT (with optional jitter),
//     charged once per RPC.
//   - Node.Exec charges a per-request CPU service time against a fluid
//     queue with the node's aggregate service rate Workers/serviceTime:
//     each request is assigned the next available position on the node's
//     service timeline and sleeps until that position. An unsaturated node
//     adds (almost) no latency; a saturated node caps throughput at
//     exactly Workers/serviceTime and queue delay grows, as on real
//     hardware. No goroutine ever busy-spins, so the model stays accurate
//     with thousands of simulated clients on a small host.
//
// With RTT and costs set to zero the fabric is free, which unit tests use.
package netsim

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises a Fabric.
type Config struct {
	// RTT is the network round-trip time charged per RPC.
	RTT time.Duration
	// Jitter is the fraction of RTT applied as uniform random jitter
	// (+/- RTT*Jitter/2). Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter source. Zero means a fixed default seed so
	// runs are reproducible.
	Seed int64
	// Precise makes latency charges wait out their final stretch on a
	// yield-spin loop instead of relying on time.Sleep alone. The
	// default sleep-based wait inherits the host's timer granularity —
	// virtualised kernels commonly round a 200µs sleep up past 1ms —
	// which buries sub-millisecond RTTs in timer noise. Precise waiting
	// burns CPU for the spun stretch, so it suits low-concurrency
	// latency measurements (the namespace-scale sweep), not
	// high-client-count throughput runs.
	Precise bool
}

// FaultHook lets a fault injector intercept the fabric's message
// deliveries and node executions (see internal/faults). The hook is
// consulted only when installed, so fault-free runs pay a single atomic
// load per RPC. Implementations must be safe for concurrent use.
type FaultHook interface {
	// Edge is consulted once per message round trip between the named
	// endpoints ("" for callers that do not name themselves). It returns
	// extra latency to add on top of the fabric RTT, and a non-nil error
	// when the message is lost (dropped, partitioned, or an endpoint
	// blackholed) — the delivery still charges its round trip, modelling
	// the sender waiting out the loss.
	Edge(src, dst string) (extra time.Duration, err error)
	// Down reports (with a non-nil error) that the named node is
	// blackholed; Node.Exec consults it so a dead node never executes
	// work.
	Down(node string) error
}

// Fabric is the shared network. It is safe for concurrent use.
type Fabric struct {
	rtt     time.Duration
	jitter  float64
	seed    int64
	precise bool

	mu     sync.Mutex
	rng    *rand.Rand
	rpcs   atomic.Int64
	faults atomic.Pointer[FaultHook]

	// edges is the per-edge delivery registry (see stats.go), keyed by
	// the (src, dst) pair → *EdgeStats.
	edgeMu sync.RWMutex
	edges  map[edgePair]*EdgeStats
}

// NewFabric builds a fabric from cfg.
func NewFabric(cfg Config) *Fabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	return &Fabric{
		rtt:     cfg.RTT,
		jitter:  cfg.Jitter,
		seed:    seed,
		precise: cfg.Precise,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// NewLocalFabric returns a zero-latency fabric, used by unit tests and by
// callers that only want RPC counting.
func NewLocalFabric() *Fabric { return NewFabric(Config{}) }

// RTT returns the configured round-trip time.
func (f *Fabric) RTT() time.Duration { return f.rtt }

// Seed returns the effective jitter seed (the configured seed, or the
// fixed default when none was set). Tests include it in failure output
// so a CI run's timing behaviour reproduces locally.
func (f *Fabric) Seed() int64 { return f.seed }

// SetFaults installs (or, with nil, removes) the fabric's fault hook.
// Node executions consult their own hook — see Node.SetFaults or
// faults.Injector.Attach.
func (f *Fabric) SetFaults(h FaultHook) {
	if h == nil {
		f.faults.Store(nil)
		return
	}
	f.faults.Store(&h)
}

// Faults returns the installed fault hook, or nil.
func (f *Fabric) Faults() FaultHook {
	if p := f.faults.Load(); p != nil {
		return *p
	}
	return nil
}

// RoundTrip charges one network round trip: it sleeps the configured RTT
// (plus jitter) and increments the fabric-wide RPC counter. With RTT zero
// it only counts. Messages sent this way carry no endpoint names, so
// edge-scoped fault rules do not apply to them (fabric-wide rules do);
// fault-aware callers use Deliver.
func (f *Fabric) RoundTrip() {
	_ = f.Deliver("", "")
}

// Deliver charges one round trip between the named endpoints, consulting
// the fault hook if one is installed. A lost message still sleeps the
// round trip — the sender pays at least one RTT discovering the loss —
// and returns a non-nil error wrapping types.ErrUnreachable.
func (f *Fabric) Deliver(src, dst string) error {
	f.rpcs.Add(1)
	edge := f.Edge(src, dst)
	edge.Trips.Add(1)
	var extra time.Duration
	var ferr error
	if p := f.faults.Load(); p != nil {
		extra, ferr = (*p).Edge(src, dst)
	}
	if ferr != nil {
		edge.Losses.Add(1)
	}
	d := f.rtt + extra
	if d <= 0 {
		edge.Latency.Observe(0)
		return ferr
	}
	if f.jitter > 0 {
		f.mu.Lock()
		frac := (f.rng.Float64() - 0.5) * f.jitter
		f.mu.Unlock()
		d += time.Duration(float64(f.rtt) * frac)
	}
	edge.Latency.Observe(d)
	f.wait(d)
	return ferr
}

// wait charges d of latency. In precise mode the last stretch is waited
// out on a yield-spin loop, so the charge honours d even when the host's
// sleep granularity is coarser than d itself; sleeping still covers any
// part the timer can resolve, keeping long waits cheap.
func (f *Fabric) wait(d time.Duration) {
	if !f.precise {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	// Granularity margin: only sleep for stretches a coarse virtual
	// timer can still honour without overshooting the deadline.
	const margin = 2 * time.Millisecond
	for {
		r := time.Until(deadline)
		if r <= 0 {
			return
		}
		if r > margin {
			time.Sleep(r - margin)
			continue
		}
		// Yield rather than hard-spin so background goroutines (raft
		// ticks, compactors) still run on saturated GOMAXPROCS.
		runtime.Gosched()
	}
}

// RPCs returns the total number of round trips charged so far.
func (f *Fabric) RPCs() int64 { return f.rpcs.Load() }

// ResetRPCs zeroes the RPC counter and returns the previous value.
func (f *Fabric) ResetRPCs() int64 { return f.rpcs.Swap(0) }

// Node models one server's CPU as a fluid queue with a bounded aggregate
// service rate. Exec(cost) reserves cost/Workers of timeline per request,
// so the node sustains at most Workers/cost requests per second; beyond
// that, requests queue and their latency grows, exactly like a saturated
// server.
type Node struct {
	name    string
	workers int

	mu   sync.Mutex
	next time.Time // next free position on the service timeline

	busy   atomic.Int64 // cumulative modelled CPU time, ns
	ops    atomic.Int64
	load   atomic.Int64 // EWMA queue delay, ns (the load hint)
	faults atomic.Pointer[FaultHook]
	stats  nodeStats
}

// NewNode creates a node with the given number of CPU worker slots.
// workers <= 0 means unlimited capacity (no queueing, costs ignored).
func NewNode(name string, workers int) *Node {
	return &Node{name: name, workers: workers}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Workers returns the node's configured parallelism.
func (n *Node) Workers() int { return n.workers }

// SetFaults installs (or, with nil, removes) the node's fault hook; a
// blackholed node then refuses Exec.
func (n *Node) SetFaults(h FaultHook) {
	if h == nil {
		n.faults.Store(nil)
		return
	}
	n.faults.Store(&h)
}

// Exec runs fn on the node after charging cost of CPU service time
// against the node's capacity. fn itself should be cheap real work (map
// and tree operations); the modelled cost dominates. The error from fn is
// returned unchanged. A node blackholed by an installed fault hook
// refuses execution with an error wrapping types.ErrUnreachable.
func (n *Node) Exec(cost time.Duration, fn func() error) error {
	if p := n.faults.Load(); p != nil {
		if err := (*p).Down(n.name); err != nil {
			return err
		}
	}
	n.Charge(cost)
	return fn()
}

// Charge books cost of CPU time on the node's service timeline and blocks
// until the booked slot is reached. It is exposed separately from Exec for
// handlers that interleave several charges with real work.
func (n *Node) Charge(cost time.Duration) {
	n.ops.Add(1)
	if cost <= 0 || n.workers <= 0 {
		return
	}
	n.busy.Add(int64(cost))
	advance := cost / time.Duration(n.workers)
	n.mu.Lock()
	now := time.Now()
	if n.next.Before(now) {
		n.next = now
	}
	start := n.next
	n.next = n.next.Add(advance)
	n.mu.Unlock()
	wait := start.Sub(now)
	if wait < 0 {
		wait = 0
	}
	n.stats.queueWait.Observe(wait)
	// Fold the observed queue delay into the load-hint EWMA (α = 1/8,
	// computed in integer ns so the hot path stays lock-free): one
	// atomic load + store per charge; a torn concurrent update only
	// loses one sample of an 8-sample-smoothed estimate.
	prev := n.load.Load()
	n.load.Store(prev + (int64(wait)-prev)/8)
	// Sub-floor waits are absorbed rather than slept: OS timer
	// granularity (~1ms on stock kernels) would overshoot a short sleep
	// by far more than the wait itself, distorting the model. The
	// pacer's timeline still advances, so a saturated node's queue delay
	// grows past the floor and the throughput cap is enforced exactly.
	if wait > chargeSleepFloor {
		time.Sleep(wait)
	}
}

// chargeSleepFloor is the smallest queue delay worth sleeping for.
const chargeSleepFloor = 500 * time.Microsecond

// Ops returns the number of requests executed on the node.
func (n *Node) Ops() int64 { return n.ops.Load() }

// LoadHint returns the node's smoothed queue delay — how long a request
// arriving now can expect to wait before service. This is the load
// signal piggybacked on RPC replies for the proxy's load-aware router:
// an idle node reports ~0, a saturated node's hint grows with its
// backlog. One atomic load; safe to sample on every reply.
func (n *Node) LoadHint() time.Duration { return time.Duration(n.load.Load()) }

// BusyTime returns the cumulative modelled CPU time consumed on the node.
func (n *Node) BusyTime() time.Duration { return time.Duration(n.busy.Load()) }

// Utilization reports the node's modelled CPU utilisation over the window
// since a reference instant: busyTime / (elapsed × workers).
func (n *Node) Utilization(since time.Time) float64 {
	if n.workers <= 0 {
		return 0
	}
	elapsed := time.Since(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(n.BusyTime()) / (float64(elapsed) * float64(n.workers))
}
