package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoSerial(t *testing.T) {
	var g Group[string, int]
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (int, error) { return 42, nil })
		if v != 42 || err != nil || shared {
			t.Fatalf("Do = (%d, %v, %v), want (42, nil, false)", v, err, shared)
		}
	}
	if f, c := g.Flights(), g.Coalesced(); f != 3 || c != 0 {
		t.Fatalf("flights=%d coalesced=%d, want 3, 0 (serial calls never coalesce)", f, c)
	}
}

func TestDoError(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDoCoalesces(t *testing.T) {
	var g Group[string, int]
	const joiners = 8
	gate := make(chan struct{})
	entered := make(chan struct{})
	var execs atomic.Int64

	var wg sync.WaitGroup
	leaderFn := func() (int, error) {
		close(entered)
		<-gate
		execs.Add(1)
		return 7, nil
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err, _ := g.Do("k", leaderFn); v != 7 || err != nil {
			t.Errorf("leader: got (%d, %v)", v, err)
		}
	}()
	<-entered // leader is inside fn; joiners must coalesce
	sharedCount := atomic.Int64{}
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				execs.Add(1)
				return 7, nil
			})
			if v != 7 || err != nil {
				t.Errorf("joiner: got (%d, %v)", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if execs.Load() > int64(joiners)+1 {
		t.Fatalf("execs = %d, want far fewer than every caller", execs.Load())
	}
	if g.Coalesced() != sharedCount.Load() {
		t.Fatalf("Coalesced() = %d, shared results seen = %d", g.Coalesced(), sharedCount.Load())
	}
}

func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	type key struct {
		path  string
		epoch uint64
	}
	var g Group[key, string]
	v1, _, _ := g.Do(key{"/a", 1}, func() (string, error) { return "e1", nil })
	v2, _, _ := g.Do(key{"/a", 2}, func() (string, error) { return "e2", nil })
	if v1 != "e1" || v2 != "e2" {
		t.Fatalf("epoch-distinct keys shared a flight: %q, %q", v1, v2)
	}
	if g.Flights() != 2 {
		t.Fatalf("flights = %d, want 2", g.Flights())
	}
}

func TestPanicReleasesJoiners(t *testing.T) {
	var g Group[string, int]
	func() {
		defer func() { _ = recover() }()
		g.Do("k", func() (int, error) { panic("kaboom") })
	}()
	// The key must be forgotten: a fresh call runs its own fn.
	v, err, shared := g.Do("k", func() (int, error) { return 1, nil })
	if v != 1 || err != nil || shared {
		t.Fatalf("post-panic Do = (%d, %v, %v), want fresh (1, nil, false)", v, err, shared)
	}
}

func TestConcurrentStress(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := i % 5
				v, err, _ := g.Do(k, func() (int, error) { return k * 10, nil })
				if err != nil || v != k*10 {
					t.Errorf("Do(%d) = (%d, %v)", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
