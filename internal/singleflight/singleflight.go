// Package singleflight provides duplicate-call suppression for the
// lookup hot path: N concurrent identical lookups of one hot directory
// collapse into a single IndexNode RPC (proxy layer) or a single
// IndexTable walk (replica layer), and the N-1 joiners share the
// leader's result. This is the standard coalescing pattern popularised
// by groupcache's singleflight, reimplemented here (stdlib only) with a
// comparable generic key — callers key flights on (path, epoch) structs
// without allocating — and built-in coalescing counters for the metrics
// registry.
//
// Correctness under invalidation is the caller's job: a shared result
// reflects the state at the moment the leader started. Both cache
// layers therefore key flights with a modification epoch, so lookups
// that begin after an invalidation never join a pre-invalidation
// flight (see DESIGN.md "Concurrency model").
package singleflight

import (
	"sync"
	"sync/atomic"
)

// call is one in-flight (or completed) leader execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group suppresses duplicate concurrent calls per key. The zero value
// is ready to use.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]

	flights   atomic.Int64 // leader executions
	coalesced atomic.Int64 // joiners that shared a leader's result
}

// Do executes fn once per key among concurrent callers: the first
// caller (the leader) runs fn; callers arriving while it runs block and
// receive the same result with shared=true. Once the leader returns,
// the key is forgotten — later calls start a fresh flight, so results
// are never cached beyond the overlap window.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		g.coalesced.Add(1)
		return c.val, c.err, true
	}
	c := &call[V]{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	g.flights.Add(1)
	func() {
		defer func() {
			// A panicking fn must not strand joiners on the WaitGroup:
			// forget the key and release them before re-panicking.
			if r := recover(); r != nil {
				g.forget(key)
				c.wg.Done()
				panic(r)
			}
		}()
		c.val, c.err = fn()
	}()

	g.forget(key)
	c.wg.Done()
	return c.val, c.err, false
}

func (g *Group[K, V]) forget(key K) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// Flights returns how many leader executions have run.
func (g *Group[K, V]) Flights() int64 { return g.flights.Load() }

// Coalesced returns how many callers shared a leader's result instead
// of executing their own call.
func (g *Group[K, V]) Coalesced() int64 { return g.coalesced.Load() }
