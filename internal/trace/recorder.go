package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecord is one captured slow operation: the rendered span tree
// plus the numbers that made it interesting. The tree is rendered at
// capture time so the record holds no live span pointers.
type FlightRecord struct {
	Op        string        `json:"op"`
	When      time.Time     `json:"when"`
	Duration  time.Duration `json:"duration"`
	Threshold time.Duration `json:"threshold"`
	// Record marks a record-breaker: the op was slower than every
	// previously offered op, captured even below its threshold.
	Record bool   `json:"record,omitempty"`
	Trips  int64  `json:"trips"`
	Bytes  int64  `json:"bytes"`
	Tree   string `json:"tree"`
}

// FlightRecorder tail-samples slow operations into a fixed-size ring:
// the service head-samples a fraction of operations into traces, and
// Offer keeps those whose latency exceeded the caller's threshold (a
// per-op p99-derived cut in Mantle) — plus record-breakers, ops slower
// than every previously offered one, so a live histogram's p99 being
// anchored by an untraceable warm-up transient can never starve the
// recorder empty. The newest records win; the ring is retrievable
// live, without stopping the server.
type FlightRecorder struct {
	sampled  atomic.Int64
	captured atomic.Int64
	maxSeen  atomic.Int64 // slowest offered duration (ns)

	mu   sync.Mutex
	ring []FlightRecord
	next int
	n    int // filled slots, ≤ len(ring)
}

// NewFlightRecorder creates a recorder keeping the last size slow ops
// (minimum 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{ring: make([]FlightRecord, size)}
}

// Offer presents a finished trace for capture. Every offer counts as a
// sampled op; the trace is captured — its tree rendered and stored,
// displacing the oldest record — when dur reaches threshold, or when
// the op is a record-breaker (slower than every prior offer). Returns
// whether the trace was captured.
func (f *FlightRecorder) Offer(op string, tr *Trace, dur, threshold time.Duration) bool {
	f.sampled.Add(1)
	if tr == nil {
		return false
	}
	record := false
	for {
		cur := f.maxSeen.Load()
		if int64(dur) <= cur {
			break
		}
		if f.maxSeen.CompareAndSwap(cur, int64(dur)) {
			record = true
			break
		}
	}
	if dur < threshold && !record {
		return false
	}
	rec := FlightRecord{
		Op:        op,
		When:      time.Now(),
		Duration:  dur,
		Threshold: threshold,
		Record:    record,
		Trips:     tr.Trips(),
		Bytes:     tr.Bytes(),
		Tree:      tr.Tree(),
	}
	f.captured.Add(1)
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
	return true
}

// Sampled returns how many operations were offered to the recorder.
func (f *FlightRecorder) Sampled() int64 { return f.sampled.Load() }

// Captured returns how many offers exceeded their threshold (including
// ones since displaced from the ring).
func (f *FlightRecorder) Captured() int64 { return f.captured.Load() }

// Snapshot returns the retained records, newest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, f.n)
	for i := 1; i <= f.n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// WriteText renders the retained records, newest first: a summary line
// per record followed by its indented span tree.
func (f *FlightRecorder) WriteText(w io.Writer) {
	recs := f.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d sampled, %d captured, %d retained\n",
		f.Sampled(), f.Captured(), len(recs))
	for _, r := range recs {
		mark := ""
		if r.Record {
			mark = "  [record]"
		}
		fmt.Fprintf(w, "\n[%s] %s  %v (threshold %v)%s  trips=%d bytes=%d\n",
			r.When.Format(time.RFC3339), r.Op,
			r.Duration.Round(time.Microsecond), r.Threshold.Round(time.Microsecond),
			mark, r.Trips, r.Bytes)
		io.WriteString(w, r.Tree)
	}
}
