// Package trace is the request-scoped tracing and accounting layer of
// the metadata path: Dapper-style span trees carried via context.Context
// through every operation — op → path-resolve → rpc → raft-propose /
// txn-commit → cache-invalidate — recorded against the netsim clock
// (netsim charges simulated costs as real sleeps, so wall time IS the
// simulated clock), plus per-trace RPC round-trip and byte counters so
// every metadata op reports exactly how many network trips it cost
// (the paper's Table 1 instrument).
//
// Tracing is opt-in and free when off: components create child spans
// with Start(ctx, name), and when ctx carries no trace, Start returns a
// nil *Span whose methods are all no-ops, so the untraced hot path pays
// one context value lookup and no allocation.
//
// A finished trace exports two ways: Tree() renders a human-readable
// indented span tree with durations and counters, and ChromeJSON()
// emits a Chrome trace_event JSON array loadable in chrome://tracing or
// https://ui.perfetto.dev.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ctxKey carries the active *Span in a context.
type ctxKey struct{}

// Trace is one request's span tree plus its trip/byte accounting. Safe
// for concurrent use: parallel RPC fan-outs record sibling spans from
// multiple goroutines.
type Trace struct {
	mu    sync.Mutex
	spans []*Span // all spans in start order; spans[0] is the root
	epoch time.Time

	seq   atomic.Int64
	trips atomic.Int64
	bytes atomic.Int64
}

// Span is one timed node of the tree.
type Span struct {
	tr       *Trace
	id       int64
	parentID int64 // 0 for the root
	name     string
	start    time.Time

	mu    sync.Mutex
	end   time.Time
	attrs []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// New starts a trace whose root span is named name, returning the trace
// and a context carrying the root span. The caller ends the root span
// (and thereby the trace) with Finish.
func New(name string) (*Trace, context.Context) {
	tr := &Trace{epoch: time.Now()}
	root := tr.newSpan(name, 0)
	return tr, context.WithValue(context.Background(), ctxKey{}, root)
}

func (t *Trace) newSpan(name string, parentID int64) *Span {
	s := &Span{tr: t, id: t.seq.Add(1), parentID: parentID, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start begins a child span under ctx's active span and returns a
// context carrying it. When ctx carries no trace, it returns (ctx, nil);
// the nil *Span is safe to use (all methods are no-ops), so call sites
// need no conditionals.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// FromContext returns ctx's active span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// AddTrips adds n RPC round trips to ctx's trace accounting (no-op
// without a trace).
func AddTrips(ctx context.Context, n int64) {
	if s := FromContext(ctx); s != nil {
		s.tr.trips.Add(n)
	}
}

// AddBytes adds n message bytes to ctx's trace accounting (no-op
// without a trace).
func AddBytes(ctx context.Context, n int64) {
	if s := FromContext(ctx); s != nil {
		s.tr.bytes.Add(n)
	}
}

// Trips returns the RPC round trips charged to the trace so far.
func (t *Trace) Trips() int64 { return t.trips.Load() }

// Bytes returns the message bytes charged to the trace so far.
func (t *Trace) Bytes() int64 { return t.bytes.Load() }

// Finish ends the root span (open child spans are closed at export
// time with their parent's end).
func (t *Trace) Finish() {
	t.mu.Lock()
	root := t.spans[0]
	t.mu.Unlock()
	root.End()
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0]
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// Annotate formats and attaches an attribute. Nil-safe.
func (s *Span) Annotate(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf(format, args...))
}

// End closes the span. Ending twice keeps the first end time. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's name. Nil-safe (returns "").
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Trace returns the owning trace. Nil-safe (returns nil).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Duration returns the span's duration (zero until ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// SpanInfo is an exported snapshot of one span, used by the renderers
// and by tests asserting tree shape.
type SpanInfo struct {
	ID       int64
	ParentID int64
	Name     string
	Start    time.Duration // offset from trace epoch
	Duration time.Duration
	Attrs    []Attr
}

// Spans snapshots every span in start order. Open spans are reported
// with the duration they had accumulated at snapshot time.
func (t *Trace) Spans() []SpanInfo {
	now := time.Now()
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanInfo, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		end := s.end
		attrs := append([]Attr(nil), s.attrs...)
		s.mu.Unlock()
		if end.IsZero() {
			end = now
		}
		out[i] = SpanInfo{
			ID:       s.id,
			ParentID: s.parentID,
			Name:     s.name,
			Start:    s.start.Sub(t.epoch),
			Duration: end.Sub(s.start),
			Attrs:    attrs,
		}
	}
	return out
}
