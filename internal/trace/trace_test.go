package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanParentChildOrdering(t *testing.T) {
	tr, ctx := New("op")
	rctx, resolve := Start(ctx, "path-resolve")
	_, rpc1 := Start(rctx, "rpc")
	time.Sleep(time.Millisecond)
	rpc1.End()
	resolve.End()
	_, exec := Start(ctx, "txn-commit")
	exec.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["op"]
	if root.ParentID != 0 {
		t.Fatalf("root parent = %d", root.ParentID)
	}
	if got := byName["path-resolve"].ParentID; got != root.ID {
		t.Fatalf("path-resolve parent = %d, want %d", got, root.ID)
	}
	if got := byName["rpc"].ParentID; got != byName["path-resolve"].ID {
		t.Fatalf("rpc parent = %d, want %d (path-resolve)", got, byName["path-resolve"].ID)
	}
	if got := byName["txn-commit"].ParentID; got != root.ID {
		t.Fatalf("txn-commit parent = %d, want %d", got, root.ID)
	}
	// Start order is recorded order; children start at or after parents.
	for _, s := range spans {
		if s.ParentID == 0 {
			continue
		}
		var parent SpanInfo
		for _, p := range spans {
			if p.ID == s.ParentID {
				parent = p
			}
		}
		if s.Start < parent.Start {
			t.Fatalf("span %s starts (%v) before its parent %s (%v)",
				s.Name, s.Start, parent.Name, parent.Start)
		}
	}
	// A child ends no later than snapshot; the rpc span's duration must
	// fit inside path-resolve's.
	if byName["rpc"].Duration > byName["path-resolve"].Duration {
		t.Fatalf("rpc (%v) outlives path-resolve (%v)",
			byName["rpc"].Duration, byName["path-resolve"].Duration)
	}
}

func TestTraceNoopWithoutContext(t *testing.T) {
	ctx := context.Background()
	c2, s := Start(ctx, "orphan")
	if s != nil {
		t.Fatal("span created without a trace")
	}
	if c2 != ctx {
		t.Fatal("context changed without a trace")
	}
	// All nil-span methods are safe.
	s.SetAttr("k", "v")
	s.Annotate("k", "%d", 1)
	s.End()
	if s.Name() != "" || s.Duration() != 0 || s.Trace() != nil {
		t.Fatal("nil span leaked state")
	}
	AddTrips(ctx, 3)
	AddBytes(ctx, 100)
}

func TestTraceTripAndByteAccounting(t *testing.T) {
	tr, ctx := New("op")
	AddTrips(ctx, 1)
	sub, sp := Start(ctx, "rpc")
	AddTrips(sub, 2)
	AddBytes(sub, 128)
	sp.End()
	tr.Finish()
	if tr.Trips() != 3 {
		t.Fatalf("trips = %d, want 3", tr.Trips())
	}
	if tr.Bytes() != 128 {
		t.Fatalf("bytes = %d, want 128", tr.Bytes())
	}
}

func TestTraceConcurrentSiblings(t *testing.T) {
	tr, ctx := New("op")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, s := Start(ctx, "rpc")
			AddTrips(sub, 1)
			s.SetAttr("k", "v")
			s.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans()); got != 17 {
		t.Fatalf("spans = %d, want 17", got)
	}
	if tr.Trips() != 16 {
		t.Fatalf("trips = %d, want 16", tr.Trips())
	}
}

func TestTraceChromeJSONLoads(t *testing.T) {
	tr, ctx := New("create /a/b/o")
	sub, resolve := Start(ctx, "path-resolve")
	_, rpc := Start(sub, "rpc")
	rpc.SetAttr("dst", "indexnode-0")
	rpc.End()
	resolve.End()
	AddTrips(ctx, 2)
	tr.Finish()

	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// A valid trace_event dump is a JSON array of events with the
	// required phase/timestamp fields.
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome JSON does not parse: %v\n%s", err, data)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("event phase = %v", e["ph"])
		}
		for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
	}
	if events[0]["args"].(map[string]any)["trips"] != "2" {
		t.Fatalf("root args = %v", events[0]["args"])
	}
}

func TestTraceTreeRendering(t *testing.T) {
	tr, ctx := New("mkdir /x")
	sub, resolve := Start(ctx, "path-resolve")
	_, rpc := Start(sub, "rpc")
	rpc.End()
	resolve.End()
	_, prop := Start(ctx, "raft-propose")
	prop.End()
	tr.Finish()

	out := tr.Tree()
	for _, want := range []string{"mkdir /x", "path-resolve", "rpc", "raft-propose", "trips="} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// path-resolve precedes raft-propose (start order), and rpc is
	// indented beneath path-resolve.
	if strings.Index(out, "path-resolve") > strings.Index(out, "raft-propose") {
		t.Fatalf("sibling order wrong:\n%s", out)
	}
}
