package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// A zero-value Trace holds no spans; both exporters must handle the
// empty tree without panicking.
func TestExportEmptySpanTree(t *testing.T) {
	var tr Trace
	var b strings.Builder
	tr.WriteTree(&b)
	if b.String() != "" {
		t.Fatalf("empty tree rendered %q", b.String())
	}
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("ChromeJSON of empty trace is not a JSON array: %v\n%s", err, data)
	}
	if len(events) != 0 {
		t.Fatalf("empty trace exported %d events", len(events))
	}
}

// Spans ended immediately after starting have zero duration; both
// exporters must render them (netsim's zero-latency local fabric
// produces these routinely).
func TestExportZeroDurationSpans(t *testing.T) {
	tr, ctx := New("op")
	_, sp := Start(ctx, "instant")
	sp.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("span count = %d", len(spans))
	}
	tree := tr.Tree()
	if !strings.Contains(tree, "instant") {
		t.Fatalf("tree missing zero-duration span:\n%s", tree)
	}
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("event count = %d", len(events))
	}
	for _, e := range events {
		if e.Dur < 0 {
			t.Fatalf("negative duration on %q: %v", e.Name, e.Dur)
		}
	}
}

// Exports must be safe against spans finishing concurrently (run under
// -race): an operation can still be closing its spans while /status or
// /trace renders the tree.
func TestExportConcurrentFinish(t *testing.T) {
	for round := 0; round < 20; round++ {
		tr, ctx := New("op")
		var spans []*Span
		c := ctx
		for i := 0; i < 8; i++ {
			var sp *Span
			c, sp = Start(c, "step")
			sp.Annotate("i", "%d", i)
			spans = append(spans, sp)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, sp := range spans {
				sp.End()
			}
			tr.Finish()
		}()
		go func() {
			defer wg.Done()
			if _, err := tr.ChromeJSON(); err != nil {
				t.Error(err)
			}
			var b strings.Builder
			tr.WriteTree(&b)
		}()
		wg.Wait()
	}
}
