package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func finishedTrace(name string) *Trace {
	tr, ctx := New(name)
	_, sp := Start(ctx, "child")
	sp.End()
	AddTrips(ctx, 2)
	tr.Finish()
	return tr
}

func TestFlightRecorderThreshold(t *testing.T) {
	f := NewFlightRecorder(4)
	// The first offer is always a record-breaker, even below threshold.
	if !f.Offer("fast", finishedTrace("fast"), time.Millisecond, 10*time.Millisecond) {
		t.Fatal("first offer not captured as record-breaker")
	}
	// Below threshold AND below the running record: dropped.
	if f.Offer("faster", finishedTrace("faster"), 500*time.Microsecond, 10*time.Millisecond) {
		t.Fatal("sub-threshold sub-record op captured")
	}
	if !f.Offer("slow", finishedTrace("slow"), 20*time.Millisecond, 10*time.Millisecond) {
		t.Fatal("slow op not captured")
	}
	if f.Sampled() != 3 || f.Captured() != 2 {
		t.Fatalf("sampled=%d captured=%d", f.Sampled(), f.Captured())
	}
	recs := f.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("retained %d records", len(recs))
	}
	r := recs[0] // newest first
	if r.Op != "slow" || r.Duration != 20*time.Millisecond || r.Trips != 2 {
		t.Fatalf("record = %+v", r)
	}
	if !r.Record {
		t.Fatal("slow op beat the running record but is not marked")
	}
	if !strings.Contains(r.Tree, "slow") || !strings.Contains(r.Tree, "child") {
		t.Fatalf("tree missing spans:\n%s", r.Tree)
	}
	if recs[1].Op != "fast" || !recs[1].Record {
		t.Fatalf("record-breaker entry = %+v", recs[1])
	}
}

func TestFlightRecorderRingNewestFirst(t *testing.T) {
	f := NewFlightRecorder(2)
	for i, name := range []string{"a", "b", "c"} {
		f.Offer(name, finishedTrace(name), time.Duration(i+1)*time.Millisecond, 0)
	}
	recs := f.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("retained %d records, want 2", len(recs))
	}
	if recs[0].Op != "c" || recs[1].Op != "b" {
		t.Fatalf("order = [%s %s], want [c b]", recs[0].Op, recs[1].Op)
	}
	if f.Captured() != 3 {
		t.Fatalf("captured = %d, want 3 (displacement keeps the count)", f.Captured())
	}
}

func TestFlightRecorderNilTrace(t *testing.T) {
	f := NewFlightRecorder(2)
	if f.Offer("x", nil, time.Second, 0) {
		t.Fatal("nil trace captured")
	}
	if f.Sampled() != 1 {
		t.Fatalf("sampled = %d", f.Sampled())
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Offer("op", finishedTrace("op"), time.Millisecond, 0)
				if i%20 == 0 {
					f.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if f.Sampled() != 800 || f.Captured() != 800 {
		t.Fatalf("sampled=%d captured=%d", f.Sampled(), f.Captured())
	}
	if len(f.Snapshot()) != 8 {
		t.Fatalf("retained %d", len(f.Snapshot()))
	}
}

func TestFlightRecorderWriteText(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Offer("objstat", finishedTrace("objstat"), 5*time.Millisecond, time.Millisecond)
	var b strings.Builder
	f.WriteText(&b)
	out := b.String()
	for _, want := range []string{"1 sampled, 1 captured", "objstat", "threshold 1ms", "child"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}
