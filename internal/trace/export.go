package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Tree renders the span tree as an indented human-readable listing:
//
//	create /a/b/o                   5.1ms  trips=4 bytes=288
//	├─ path-resolve                 2.2ms  [cache=hit]
//	│  └─ rpc                       2.1ms  [dst=indexnode-0]
//	└─ txn-commit                   2.8ms
//	   └─ rpc                       2.7ms  [dst=tafdb-3]
func (t *Trace) Tree() string {
	var b strings.Builder
	t.WriteTree(&b)
	return b.String()
}

// WriteTree renders the span tree to w.
func (t *Trace) WriteTree(w io.Writer) {
	spans := t.Spans()
	if len(spans) == 0 {
		return
	}
	children := map[int64][]SpanInfo{}
	for _, s := range spans {
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].ID < kids[j].ID
		})
	}
	root := spans[0]
	fmt.Fprintf(w, "%s  %v  trips=%d bytes=%d\n",
		root.Name, root.Duration.Round(time.Microsecond), t.Trips(), t.Bytes())
	var walk func(parent int64, prefix string)
	walk = func(parent int64, prefix string) {
		kids := children[parent]
		for i, s := range kids {
			branch, cont := "├─ ", "│  "
			if i == len(kids)-1 {
				branch, cont = "└─ ", "   "
			}
			fmt.Fprintf(w, "%s%s%s  +%v %v%s\n", prefix, branch, s.Name,
				s.Start.Round(time.Microsecond), s.Duration.Round(time.Microsecond),
				renderAttrs(s.Attrs))
			walk(s.ID, prefix+cont)
		}
	}
	walk(root.ID, "")
}

func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// chromeEvent is one Chrome trace_event record ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds from epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeJSON exports the trace as a Chrome trace_event JSON array
// (loadable in chrome://tracing and Perfetto). Every span becomes one
// "X" (complete) event; trip/byte totals ride on the root span's args.
func (t *Trace) ChromeJSON() ([]byte, error) {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for i, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if i == 0 {
			args["trips"] = fmt.Sprintf("%d", t.Trips())
			args["bytes"] = fmt.Sprintf("%d", t.Bytes())
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  float64(s.Duration.Microseconds()),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	return json.MarshalIndent(events, "", " ")
}
