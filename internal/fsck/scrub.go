package fsck

import "mantle/internal/core"

// Scrub is the online consistency check: Check assumes a quiesced
// namespace, so a scan racing live traffic reports transient issues
// (a mkdir's TafDB rows landing an instant before its IndexNode entry).
// Scrub runs Check rounds times and keeps only issues present in every
// round — in-flight operations drift between scans while genuine damage
// is stable, so the intersection converges on real inconsistencies.
// Two rounds suffice in practice; more rounds trade scan cost for fewer
// false positives under very heavy write load.
func Scrub(m *core.Mantle, rounds int) *Report {
	if rounds < 1 {
		rounds = 2
	}
	type key struct {
		check string
		pid   uint64
		name  string
	}
	var rep *Report
	var persistent map[key]Issue
	for i := 0; i < rounds; i++ {
		r := Check(m)
		seen := make(map[key]Issue, len(r.Issues))
		for _, is := range r.Issues {
			k := key{is.Check, uint64(is.Pid), is.Name}
			if i == 0 {
				seen[k] = is
			} else if prev, ok := persistent[k]; ok {
				seen[k] = prev
			}
		}
		persistent = seen
		rep = r
		if len(persistent) == 0 && i > 0 {
			break // nothing stable across rounds; no need to keep scanning
		}
	}
	rep.Issues = rep.Issues[:0]
	for _, is := range persistent {
		rep.Issues = append(rep.Issues, is)
	}
	sortIssues(rep.Issues)
	return rep
}
