package fsck

import (
	"fmt"
	"testing"

	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/tafdb"
	"mantle/internal/workload"
)

// TestBulkLoadedNamespaceConsistent runs every fsck invariant over a
// namespace built through the bulk-load fast path: the flatness sweep's
// generator populates ~20K entries in one Populate call, so each TafDB
// shard rebuilds its B-tree from a sorted stream of packed rows rather
// than applying logged mutations. The packed encoding reconstructs
// Pid/Name from row keys on decode — a row misfiled under the wrong key
// during the rebuild, a dropped attribute row, or a miscounted link
// would all surface here. Post-load mutations then mix logged writes
// (creates, deletes, mkdirs, a rename) into the rebuilt trees to verify
// the two populations coexist under delta compaction.
func TestBulkLoadedNamespaceConsistent(t *testing.T) {
	m, err := core.New(core.Config{
		TafDB: tafdb.Config{Shards: 4, Delta: tafdb.DeltaAuto},
		Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)

	sn := workload.BuildScale(20_000)
	if err := sn.Populate(m); err != nil {
		t.Fatal(err)
	}
	wantDirs := 1 + sn.Groups + sn.Groups*sn.DirsPerGroup
	wantObjects := sn.Objects()

	rep := Check(m)
	if !rep.OK() {
		for _, is := range rep.Issues {
			t.Log(is)
		}
		t.Fatalf("bulk-loaded namespace flagged: %s", rep)
	}
	if rep.Dirs != wantDirs || rep.Objects != wantObjects {
		t.Fatalf("scan saw %d dirs, %d objects; bulk-loaded %d dirs, %d objects",
			rep.Dirs, rep.Objects, wantDirs, wantObjects)
	}

	// Logged mutations over the rebuilt trees: extra objects in
	// bulk-loaded leaf directories, deletions of bulk-loaded objects,
	// fresh subtrees, and a rename across bulk-loaded parents.
	for i := 0; i < 32; i++ {
		dir := sn.DirPath(i%sn.Groups, i%sn.DirsPerGroup)
		if _, err := m.Create(op(m), fmt.Sprintf("%s/extra%d", dir, i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := m.Delete(op(m), sn.ObjPath(i*101)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Mkdir(op(m), fmt.Sprintf("%s/sub%d", sn.DirPath(0, i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.DirRename(op(m), sn.DirPath(0, 0)+"/sub0", sn.DirPath(1, 1)+"/moved"); err != nil {
		t.Fatal(err)
	}

	m.DB().CompactAll()
	rep = Check(m)
	if !rep.OK() {
		for _, is := range rep.Issues {
			t.Log(is)
		}
		t.Fatalf("mutated bulk-loaded namespace flagged: %s", rep)
	}
	if rep.Dirs != wantDirs+4 || rep.Objects != wantObjects+32-16 {
		t.Fatalf("scan saw %d dirs, %d objects; want %d dirs, %d objects",
			rep.Dirs, rep.Objects, wantDirs+4, wantObjects+32-16)
	}
	t.Log(rep)
}
