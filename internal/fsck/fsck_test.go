package fsck

import (
	"fmt"
	"strings"
	"testing"

	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/rpc"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

func newMantle(t *testing.T, delta tafdb.DeltaMode) *core.Mantle {
	t.Helper()
	m, err := core.New(core.Config{
		TafDB: tafdb.Config{Shards: 4, Delta: delta},
		Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func op(m *core.Mantle) *rpc.Op { return m.Caller().Begin() }

// buildWorkload exercises every mutation kind.
func buildWorkload(t *testing.T, m *core.Mantle) {
	t.Helper()
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/x", "/x/y", "/trash"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Create(op(m), fmt.Sprintf("/a/b/c/o%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Delete(op(m), "/a/b/c/o3"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DirRename(op(m), "/x/y", "/a/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rmdir(op(m), "/trash"); err != nil {
		t.Fatal(err)
	}
}

func TestCleanNamespacePasses(t *testing.T) {
	for _, delta := range []tafdb.DeltaMode{tafdb.DeltaOff, tafdb.DeltaAlways} {
		delta := delta
		t.Run(fmt.Sprintf("delta%d", delta), func(t *testing.T) {
			m := newMantle(t, delta)
			buildWorkload(t, m)
			// With delta records live, link counts must still reconcile
			// because fsck folds deltas into the primary count.
			rep := Check(m)
			if !rep.OK() {
				for _, is := range rep.Issues {
					t.Log(is)
				}
				t.Fatalf("clean namespace flagged: %s", rep)
			}
			if rep.Dirs == 0 || rep.Objects == 0 {
				t.Fatalf("scan incomplete: %s", rep)
			}
		})
	}
}

func TestDetectsIndexMissing(t *testing.T) {
	m := newMantle(t, tafdb.DeltaOff)
	buildWorkload(t, m)
	// Corrupt: remove a directory from the IndexNode table only.
	lead := m.Index().Leader()
	e, ok := lead.Table().Get(types.RootID, "a")
	if !ok {
		t.Fatal("setup: /a missing")
	}
	lead.Table().Delete(types.RootID, "a", e.ID)
	rep := Check(m)
	if rep.OK() {
		t.Fatal("corruption not detected")
	}
	if !hasCheck(rep, "index-missing") {
		t.Fatalf("expected index-missing, got %v", rep.Issues)
	}
}

func TestDetectsIndexExtra(t *testing.T) {
	m := newMantle(t, tafdb.DeltaOff)
	buildWorkload(t, m)
	// Corrupt: a phantom IndexNode entry with no TafDB row.
	m.Index().Leader().Table().Put(types.AccessEntry{
		Pid: types.RootID, Name: "ghost", ID: 9999, Perm: types.PermAll,
	})
	rep := Check(m)
	if !hasCheck(rep, "index-extra") {
		t.Fatalf("expected index-extra, got %v", rep.Issues)
	}
}

func TestDetectsLinkCountDrift(t *testing.T) {
	m := newMantle(t, tafdb.DeltaOff)
	buildWorkload(t, m)
	res, err := m.Lookup(op(m), "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: bump the directory's link count without adding a child.
	m.DB().BumpLink(res.Entry.ID, 3)
	rep := Check(m)
	if !hasCheck(rep, "linkcount") {
		t.Fatalf("expected linkcount, got %v", rep.Issues)
	}
}

func TestDetectsOrphanSubtree(t *testing.T) {
	m := newMantle(t, tafdb.DeltaOff)
	buildWorkload(t, m)
	// Corrupt: delete /a's access row in TafDB directly, orphaning the
	// whole /a subtree (and leaving the IndexNode entry dangling).
	res, err := m.Lookup(op(m), "/a")
	if err != nil {
		t.Fatal(err)
	}
	m.DB().DeleteRowDirect(types.RootID, "a")
	rep := Check(m)
	if !hasCheck(rep, "orphan") {
		t.Fatalf("expected orphan, got %v", rep.Issues)
	}
	// The dangling attr row for /a is flagged too.
	if !hasCheck(rep, "attr-orphan") && !hasCheck(rep, "index-extra") {
		t.Fatalf("expected attr-orphan/index-extra for id %d, got %v", res.Entry.ID, rep.Issues)
	}
	if !strings.Contains(rep.String(), "ISSUES") {
		t.Fatalf("report string: %s", rep)
	}
}

func hasCheck(rep *Report, check string) bool {
	for _, is := range rep.Issues {
		if is.Check == check {
			return true
		}
	}
	return false
}

// TestRandomWorkloadStaysConsistent drives a random mixed workload (the
// differential-test generator's spirit) and then verifies every fsck
// invariant holds — the end-to-end payoff of the coordination protocols.
func TestRandomWorkloadStaysConsistent(t *testing.T) {
	m := newMantle(t, tafdb.DeltaAuto)
	names := []string{"a", "b", "c", "d"}
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	randPath := func(maxDepth int) string {
		depth := 1 + next(maxDepth)
		p := ""
		for i := 0; i < depth; i++ {
			p += "/" + names[next(len(names))]
		}
		return p
	}
	for step := 0; step < 3000; step++ {
		switch next(6) {
		case 0:
			_, _ = m.Mkdir(op(m), randPath(5))
		case 1:
			_, _ = m.Create(op(m), randPath(5), int64(next(1000)))
		case 2:
			_, _ = m.Delete(op(m), randPath(5))
		case 3:
			_, _ = m.Rmdir(op(m), randPath(5))
		case 4:
			src, dst := randPath(4), randPath(4)
			if src != dst {
				_, _ = m.DirRename(op(m), src, dst)
			}
		case 5:
			_, _ = m.ObjStat(op(m), randPath(5))
		}
	}
	// Let the delta compactor settle, then check.
	m.DB().CompactAll()
	rep := Check(m)
	if !rep.OK() {
		for _, is := range rep.Issues {
			t.Log(is)
		}
		t.Fatalf("random workload broke invariants: %s", rep)
	}
	t.Log(rep)
}
