// Package fsck verifies the cross-component invariants of a Mantle
// deployment — the consistency contract between IndexNode's access
// metadata and TafDB's complete metadata that the coordination protocols
// of §4–5 maintain:
//
//  1. every IndexNode directory entry has a matching TafDB access row
//     (same id, kind directory) and a primary attribute row;
//  2. every TafDB directory access row appears in IndexNode;
//  3. IndexNode's reverse index agrees with its forward index;
//  4. every directory's link count (after delta compaction) equals its
//     actual child count in TafDB;
//  5. every row's parent chain reaches the namespace root (no orphans);
//  6. no dangling delta records (each delta's directory exists).
//
// It is both a library (tests call Check after failure injection and
// randomized workloads) and the engine behind the mantled gateway's
// /fsck endpoint.
package fsck

import (
	"fmt"
	"sort"

	"mantle/internal/core"
	"mantle/internal/storage"
	"mantle/internal/types"
)

// Issue is one detected inconsistency.
type Issue struct {
	Check string
	Pid   types.InodeID
	Name  string
	Why   string
}

func (i Issue) String() string {
	return fmt.Sprintf("[%s] %d/%s: %s", i.Check, uint64(i.Pid), i.Name, i.Why)
}

// Report is a full consistency scan result.
type Report struct {
	Dirs    int
	Objects int
	Deltas  int
	Issues  []Issue
}

// OK reports whether the namespace is consistent.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

// String summarises the report.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d ISSUES", len(r.Issues))
	}
	return fmt.Sprintf("fsck: %s (%d dirs, %d objects, %d live deltas)",
		status, r.Dirs, r.Objects, r.Deltas)
}

func (r *Report) add(check string, pid types.InodeID, name, why string, args ...any) {
	r.Issues = append(r.Issues, Issue{
		Check: check, Pid: pid, Name: name, Why: fmt.Sprintf(why, args...),
	})
}

// Check scans the deployment. It takes direct (uncharged) reads of every
// shard and the IndexNode leader's table; run it on a quiesced namespace,
// as a production fsck would.
func Check(m *core.Mantle) *Report {
	rep := &Report{}
	db := m.DB()
	leader := m.Index().Leader()
	if leader == nil {
		rep.add("leader", 0, "", "IndexNode group has no leader")
		return rep
	}
	table := leader.Table()

	// Pass 1: walk all TafDB rows.
	type dirInfo struct {
		children  int64
		linkCount int64
		hasAttr   bool
		pid       types.InodeID // from access row
		name      string
	}
	dirs := map[types.InodeID]*dirInfo{types.RootID: {hasAttr: false}}
	info := func(id types.InodeID) *dirInfo {
		d, ok := dirs[id]
		if !ok {
			d = &dirInfo{}
			dirs[id] = d
		}
		return d
	}
	var objects []types.Entry
	db.ForEachRow(func(row storage.Row) {
		e := row.Entry
		switch {
		case len(e.Name) > 0 && e.Name[0] == 0: // internal rows
			if isAttrPrimary(e.Name) {
				d := info(e.Pid)
				d.hasAttr = true
				d.linkCount += e.Attr.LinkCount
			} else { // delta record
				rep.Deltas++
				d := info(e.Pid)
				d.linkCount += e.Attr.LinkCount
			}
		case e.IsDir():
			rep.Dirs++
			d := info(e.ID)
			d.pid, d.name = e.Pid, e.Name
			info(e.Pid).children++
		default:
			rep.Objects++
			objects = append(objects, e)
			info(e.Pid).children++
		}
	})

	// Check 1/2: IndexNode ↔ TafDB access rows.
	table.ForEach(func(ae types.AccessEntry) bool {
		d, ok := dirs[ae.ID]
		if !ok || (d.name == "" && ae.ID != types.RootID) {
			rep.add("index-extra", ae.Pid, ae.Name,
				"IndexNode entry id=%d has no TafDB directory row", ae.ID)
			return true
		}
		if ae.ID != types.RootID && (d.pid != ae.Pid || d.name != ae.Name) {
			rep.add("index-mismatch", ae.Pid, ae.Name,
				"IndexNode places id=%d at %d/%s but TafDB has %d/%s",
				ae.ID, ae.Pid, ae.Name, d.pid, d.name)
		}
		return true
	})
	for id, d := range dirs {
		if id == types.RootID || d.name == "" {
			continue // root, or attr-only record checked below
		}
		if _, ok := table.Get(d.pid, d.name); !ok {
			rep.add("index-missing", d.pid, d.name,
				"TafDB directory id=%d missing from IndexNode", id)
		}
	}

	// Check 3: reverse index agreement.
	table.ForEach(func(ae types.AccessEntry) bool {
		rev, ok := table.GetByID(ae.ID)
		if !ok || rev.Pid != ae.Pid || rev.Name != ae.Name {
			rep.add("reverse-index", ae.Pid, ae.Name,
				"reverse entry for id=%d is %v/%q", ae.ID, rev.Pid, rev.Name)
		}
		return true
	})

	// Check 4: attribute rows and link counts.
	for id, d := range dirs {
		if id != types.RootID && d.name != "" && !d.hasAttr {
			rep.add("attr-missing", d.pid, d.name,
				"directory id=%d has no primary attribute row", id)
		}
		if d.name == "" && id != types.RootID && d.hasAttr {
			// Attribute rows whose directory access row is gone.
			rep.add("attr-orphan", id, "",
				"attribute record for id=%d has no access row", id)
			continue
		}
		if d.hasAttr && d.linkCount != d.children {
			rep.add("linkcount", d.pid, d.name,
				"directory id=%d link count %d != %d children", id, d.linkCount, d.children)
		}
	}

	// Check 5: parent chains reach the root.
	reach := map[types.InodeID]int8{} // 0 unknown, 1 reachable, -1 broken
	var walk func(id types.InodeID, depth int) int8
	walk = func(id types.InodeID, depth int) int8 {
		if id == types.RootID {
			return 1
		}
		if depth > 1<<16 {
			return -1
		}
		if v := reach[id]; v != 0 {
			return v
		}
		d, ok := dirs[id]
		if !ok || d.name == "" {
			reach[id] = -1
			return -1
		}
		reach[id] = walk(d.pid, depth+1)
		return reach[id]
	}
	for id, d := range dirs {
		if id != types.RootID && d.name != "" && walk(id, 0) != 1 {
			rep.add("orphan", d.pid, d.name, "directory id=%d unreachable from root", id)
		}
	}
	for _, o := range objects {
		if walk(o.Pid, 0) != 1 {
			rep.add("orphan", o.Pid, o.Name, "object under unreachable directory %d", o.Pid)
		}
	}

	sortIssues(rep.Issues)
	return rep
}

// sortIssues orders issues by (check, pid, name) for stable reports.
func sortIssues(issues []Issue) {
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i], issues[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Name < b.Name
	})
}

// isAttrPrimary distinguishes "\x00attr" from "\x00attr\x00TS" deltas.
func isAttrPrimary(name string) bool {
	return name == "\x00attr"
}
