package fsck

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// TestMigrationUnderChaos is the online-migration acceptance test: a hot
// directory subtree is migrated between TafDB shards repeatedly while
// writers hammer it, with the destination shard crash-injected mid-copy
// on every other hop. The aborted hops must leave the source
// authoritative; the successful hops must move every row; and at the end
// fsck must find a fully consistent namespace — zero lost, zero
// duplicated entries (a duplicated row would double-count a child
// against its parent's link count, a lost one would under-count).
func TestMigrationUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	m, err := core.New(core.Config{
		TafDB: tafdb.Config{
			Shards: 4, Delta: tafdb.DeltaAuto,
			WALSyncCost: 50 * time.Microsecond, Batch2PC: true,
		},
		Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	if _, err := m.Mkdir(op(m), "/hot"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Lookup(op(m), "/hot")
	if err != nil {
		t.Fatal(err)
	}
	dir := res.Entry.ID
	db := m.DB()

	const writers = 4
	var created atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				p := fmt.Sprintf("/hot/w%d-%d", w, i)
				if _, err := m.Create(op(m), p, 1); err != nil {
					errCh <- fmt.Errorf("create %s: %w", p, err)
					return
				}
				created.Add(1)
				if _, err := m.ObjStat(op(m), p); err != nil {
					errCh <- fmt.Errorf("stat %s: %w", p, err)
					return
				}
			}
		}(w)
	}

	// Six migration hops under load; on every other hop the destination
	// shard crashes right after the copy commits, so the migration must
	// detect the lost staged rows, abort without flipping routing, and
	// succeed on the post-recovery retry.
	const hops = 6
	for hop := 0; hop < hops; hop++ {
		dst := (db.ShardOf(dir) + 1) % db.Shards()
		if hop%2 == 1 {
			crashed := false
			db.SetMigrationHook(func(stage string) {
				if stage == "copied" && !crashed {
					crashed = true
					db.CrashShard(dst)
				}
			})
			if _, err := db.MigrateDir(m.Caller().Begin(), dir, dst); !errors.Is(err, types.ErrUnavailable) {
				t.Fatalf("hop %d: migration with crashed destination = %v, want ErrUnavailable", hop, err)
			}
			db.SetMigrationHook(nil)
			db.RecoverShard(dst)
		}
		if _, err := db.MigrateDir(m.Caller().Begin(), dir, dst); err != nil {
			t.Fatalf("hop %d: migrate to shard %d: %v", hop, dst, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if db.Migrations().Aborts < hops/2 {
		t.Fatalf("fault injection did not exercise the abort path: %+v", db.Migrations())
	}

	// Ground truth: the directory must hold exactly the created entries.
	if st, err := m.DirStat(op(m), "/hot"); err != nil || st.Entry.Attr.LinkCount != created.Load() {
		t.Fatalf("link count = %d err=%v, want %d", st.Entry.Attr.LinkCount, err, created.Load())
	}
	_, kids, err := m.ReadDir(op(m), "/hot")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(kids)) != created.Load() {
		t.Fatalf("listed %d children, want %d (lost or duplicated entries)", len(kids), created.Load())
	}
	// Full cross-component verification: every row, every shard.
	if rep := Check(m); !rep.OK() {
		t.Fatalf("fsck after chaos migration:\n%s", rep)
	}
}
