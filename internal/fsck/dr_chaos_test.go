package fsck

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mantle/internal/api"
	"mantle/internal/core"
	"mantle/internal/faults"
	"mantle/internal/indexnode"
	"mantle/internal/repl"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

func newSites(t *testing.T, shards int, walCost time.Duration) *core.Sites {
	t.Helper()
	s, err := core.NewSites(core.SitesConfig{
		Site: core.Config{
			TafDB: tafdb.Config{Shards: shards, Delta: tafdb.DeltaAuto, WALSyncCost: walCost},
			Index: indexnode.Config{Voters: 3, K: 2, CacheEnabled: true, BatchEnabled: true},
		},
		LinkInterval: 200 * time.Microsecond,
		LinkBatchMax: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func waitConverged(t *testing.T, s *core.Sites, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		link := s.Link()
		w := s.Applier().Watermarks()
		if link != nil && link.Stats().LagEntries == 0 && w.Pending == 0 {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	link := s.Link()
	if link != nil {
		t.Fatalf("replication did not converge: lag=%+v watermarks=%+v",
			link.Stats(), s.Applier().Watermarks())
	}
	t.Fatal("replication did not converge: link stopped")
}

// TestDRSiteFailoverChaos is the disaster-recovery acceptance test: a
// write storm runs against the primary while the WAN link to the
// secondary is blackholed mid-storm; after the storm stops the link
// heals, replication drains, the secondary is promoted, and the two
// sites must hold byte-identical logical namespaces — zero lost or
// duplicated rows — with the oplog matching the durable WAL and fsck
// clean on the promoted site.
func TestDRSiteFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	s := newSites(t, 4, 5*time.Microsecond)
	s.StartReplication()
	pri := s.Primary

	inj := faults.New(11)
	inj.Attach(s.WAN)

	const writers = 6
	for w := 0; w < writers; w++ {
		if _, err := pri.Mkdir(op(pri), fmt.Sprintf("/w%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pri.Mkdir(op(pri), "/shared"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := fmt.Sprintf("/w%d", w)
				switch i % 5 {
				case 0:
					_, _ = pri.Mkdir(op(pri), fmt.Sprintf("%s/d%04d", base, i))
				case 1:
					_, _ = pri.Create(op(pri), fmt.Sprintf("%s/o%04d", base, i), int64(i))
				case 2:
					// Contended cross-worker creates in one directory:
					// the delta-record path and 2PC both get exercised.
					_, _ = pri.Create(op(pri), fmt.Sprintf("/shared/s%d-%04d", w, i), 1)
				case 3:
					_, _ = pri.SetPerm(op(pri), base, types.Perm(1+i%7))
				case 4:
					if i > 5 {
						_, _ = pri.Delete(op(pri), fmt.Sprintf("%s/o%04d", base, i-4))
					}
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond)
	// Sever the WAN mid-storm: the primary keeps committing, the oplog
	// backlog becomes replication lag.
	inj.Blackhole(core.SecondaryReplName)
	time.Sleep(20 * time.Millisecond)
	if st := s.Link().Stats(); st.LagEntries == 0 {
		t.Fatal("no replication lag while the WAN is blackholed")
	}

	close(stop)
	wg.Wait()

	// Lag and conflict counters must be on both sites' /metrics.
	var buf bytes.Buffer
	if err := pri.Metrics().Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"repl_lag_entries", "repl_lag_bytes", "repl_oplog_records", "repl_shipped"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("primary /metrics missing %s", name)
		}
	}
	buf.Reset()
	if err := s.Secondary.Metrics().Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"repl_conflicts", "repl_applied", "repl_pending_txns"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("secondary /metrics missing %s", name)
		}
	}

	// Heal and drain: every committed record reaches the secondary.
	inj.Restore(core.SecondaryReplName)
	waitConverged(t, s, 10*time.Second)

	// The oplog must agree with the durable WAL on every shard.
	if issues := VerifyOplog(pri.DB(), s.Source()); len(issues) != 0 {
		t.Fatalf("oplog/WAL divergence: %v", issues)
	}

	rep := s.Failover()
	if rep.Discarded != 0 {
		t.Fatalf("drained failover discarded %d records", rep.Discarded)
	}
	if !s.Promoted() {
		t.Fatal("Failover did not promote")
	}
	if w := rep.Watermarks; w.Conflicts != 0 {
		t.Fatalf("single-writer replication saw %d LWW conflicts", w.Conflicts)
	}

	// Convergence: identical logical namespaces, zero lost/duplicated.
	if issues := CompareSites(pri, s.Secondary); len(issues) != 0 {
		t.Fatalf("sites diverged after drain+failover: %v", issues[:min(len(issues), 10)])
	}
	if r := Check(s.Secondary); !r.OK() {
		t.Fatalf("fsck on promoted secondary: %s\n%v", r, r.Issues[:min(len(r.Issues), 10)])
	}
	if r := Check(pri); !r.OK() {
		t.Fatalf("fsck on primary: %s", r)
	}

	// The promoted secondary serves writes.
	if _, err := s.Secondary.Mkdir(op(s.Secondary), "/after-failover"); err != nil {
		t.Fatalf("promoted secondary rejects writes: %v", err)
	}
	if _, err := s.Secondary.Lookup(op(s.Secondary), "/after-failover"); err != nil {
		t.Fatal(err)
	}
}

// TestDRSnapshotBootstrap populates the primary with >100K entries via
// the bulk loader (which bypasses the oplog — exactly the state a new
// secondary cannot reach by log catch-up), bootstraps the secondary
// from shard snapshots, replicates a live write tail, and verifies
// fsck-clean convergence.
func TestDRSnapshotBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap test skipped in -short")
	}
	s := newSites(t, 4, 0)
	pri := s.Primary

	const (
		dirN = 200
		objN = 500 // per dir → 100K objects
	)
	dirs := make([]api.PopDir, 0, dirN)
	objects := make([]api.PopObject, 0, dirN*objN)
	for d := 0; d < dirN; d++ {
		id := types.InodeID(1000 + d)
		dirs = append(dirs, api.PopDir{
			Path: fmt.Sprintf("/d%03d", d), ID: id, Pid: types.RootID, Perm: types.PermAll,
		})
		for o := 0; o < objN; o++ {
			objects = append(objects, api.PopObject{
				Pid: id, Name: fmt.Sprintf("f%05d", o), Size: int64(o),
			})
		}
	}
	if err := pri.Populate(dirs, objects); err != nil {
		t.Fatal(err)
	}

	rows, err := s.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if rows < dirN*objN {
		t.Fatalf("bootstrap loaded %d rows, want >= %d", rows, dirN*objN)
	}

	// Live tail after the snapshot: replicated from the cut onward.
	s.StartReplication()
	for i := 0; i < 50; i++ {
		if _, err := pri.Mkdir(op(pri), fmt.Sprintf("/tail%02d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := pri.Create(op(pri), fmt.Sprintf("/tail%02d/obj", i), 1); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := pri.Delete(op(pri), fmt.Sprintf("/tail%02d/obj", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, s, 10*time.Second)

	s.Failover()
	if issues := CompareSites(pri, s.Secondary); len(issues) != 0 {
		t.Fatalf("bootstrap+tail diverged: %v", issues[:min(len(issues), 10)])
	}
	if r := Check(s.Secondary); !r.OK() {
		t.Fatalf("fsck on bootstrapped secondary: %s\n%v", r, r.Issues[:min(len(r.Issues), 10)])
	}
	// Spot-check a bootstrapped path resolves on the promoted site.
	if _, err := s.Secondary.Lookup(op(s.Secondary), "/d042"); err != nil {
		t.Fatalf("bootstrapped dir unresolvable on secondary: %v", err)
	}
}

// TestVerifyOplogFlagsSeededDivergence seeds an oplog record that never
// committed and checks the verifier reports it.
func TestVerifyOplogFlagsSeededDivergence(t *testing.T) {
	s := newSites(t, 2, 2*time.Microsecond)
	pri := s.Primary
	for i := 0; i < 8; i++ {
		if _, err := pri.Mkdir(op(pri), fmt.Sprintf("/v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if issues := VerifyOplog(pri.DB(), s.Source()); len(issues) != 0 {
		t.Fatalf("clean deployment flagged: %v", issues)
	}
	// Seed a record the WAL never committed.
	log := s.Source().Log(0)
	log.Append(repl.Record{Shard: 0, Seq: log.Tip() + 1, Pieces: 1})
	issues := VerifyOplog(pri.DB(), s.Source())
	found := false
	for _, is := range issues {
		if is.Check == "oplog-extra" {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded phantom record not flagged: %v", issues)
	}
}

// TestScrubOnline runs the intersecting scrubber against live traffic
// (transient in-flight states must not be reported), then seeds real
// damage and checks it persists through the intersection.
func TestScrubOnline(t *testing.T) {
	m := newMantle(t, tafdb.DeltaAuto)
	buildWorkload(t, m)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = m.Mkdir(op(m), fmt.Sprintf("/scrub-w%d-%d", w, i))
				_, _ = m.Create(op(m), fmt.Sprintf("/scrub-w%d-%d/obj", w, i), 1)
			}
		}(w)
	}
	rep := Scrub(m, 3)
	close(stop)
	wg.Wait()
	if !rep.OK() {
		t.Fatalf("online scrub flagged transient state: %v", rep.Issues)
	}

	// Real damage: delete a directory's TafDB access row out from under
	// the index. Every scrub round sees it.
	if _, err := m.Mkdir(op(m), "/damaged"); err != nil {
		t.Fatal(err)
	}
	m.DB().DeleteRowDirect(types.RootID, "damaged")
	rep = Scrub(m, 3)
	if rep.OK() {
		t.Fatal("scrub missed persistent damage")
	}
	found := false
	for _, is := range rep.Issues {
		if is.Name == "damaged" || strings.Contains(is.Why, "damaged") {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrub issues do not mention the damaged row: %v", rep.Issues)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
