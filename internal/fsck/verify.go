package fsck

import (
	"fmt"

	"mantle/internal/core"
	"mantle/internal/repl"
	"mantle/internal/storage"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// VerifyOplog cross-checks the replication oplog against the WAL, the
// durable commit record: every retained oplog record must match the WAL
// batch at the same sequence (count, kind, and key of every mutation),
// and every durable batch inside the retained window must appear in the
// oplog. A divergence here means the oplog would replay a different
// history than crash recovery — the bug class the commit-path hook
// ordering exists to prevent. Shards without a WAL are skipped.
func VerifyOplog(db *tafdb.DB, src *repl.Source) []Issue {
	var issues []Issue
	for si := 0; si < db.Shards() && si < src.Shards(); si++ {
		log := src.Log(si)
		base, tip := log.Base(), log.Tip()
		recs, ok := log.ReadFrom(base+1, 0)
		if !ok {
			continue
		}
		bySeq := make(map[uint64]repl.Record, len(recs))
		for _, r := range recs {
			bySeq[r.Seq] = r
		}
		walSeqs := 0
		db.ReplayShard(si, func(seq uint64, muts []storage.Mutation) {
			walSeqs++
			if seq <= base {
				return // GC'd from the oplog; nothing to compare
			}
			r, ok := bySeq[seq]
			if !ok {
				issues = append(issues, Issue{
					Check: "oplog-missing", Pid: 0, Name: fmt.Sprintf("shard%d", si),
					Why: fmt.Sprintf("WAL batch seq=%d absent from the oplog", seq),
				})
				return
			}
			delete(bySeq, seq)
			if len(r.Muts) != len(muts) {
				issues = append(issues, Issue{
					Check: "oplog-diverged", Pid: 0, Name: fmt.Sprintf("shard%d", si),
					Why: fmt.Sprintf("seq=%d: oplog has %d mutations, WAL has %d",
						seq, len(r.Muts), len(muts)),
				})
				return
			}
			for i := range muts {
				if r.Muts[i].Kind != muts[i].Kind || r.Muts[i].Key != muts[i].Key {
					issues = append(issues, Issue{
						Check: "oplog-diverged", Pid: muts[i].Key.Pid, Name: muts[i].Key.Name,
						Why: fmt.Sprintf("seq=%d mutation %d: oplog %v/%v, WAL %v/%v",
							seq, i, r.Muts[i].Kind, r.Muts[i].Key, muts[i].Kind, muts[i].Key),
					})
				}
			}
		})
		if walSeqs == 0 {
			continue // no WAL attached: nothing to cross-check
		}
		// The WAL is gap-free from 1, so any unmatched retained record
		// claims a sequence the durable log never committed.
		for seq := range bySeq {
			issues = append(issues, Issue{
				Check: "oplog-extra", Pid: 0, Name: fmt.Sprintf("shard%d", si),
				Why: fmt.Sprintf("oplog record seq=%d (tip %d) has no durable WAL batch", seq, tip),
			})
		}
	}
	return issues
}

// effRow is a site's logical row state: the entry with delta records
// folded into their primary attribute rows, so two sites compare equal
// regardless of how far each one's delta compactor has progressed
// (compaction is a local, unreplicated rewrite).
type effRow struct {
	ID        types.InodeID
	Kind      types.EntryKind
	Perm      types.Perm
	LinkCount int64
	Size      int64
}

// effectiveRows folds a site's rows into comparable logical state.
func effectiveRows(db *tafdb.DB) map[types.Key]effRow {
	out := make(map[types.Key]effRow)
	const attrPrimary = "\x00attr"
	db.ForEachRow(func(row storage.Row) {
		e := row.Entry
		if len(e.Name) > 0 && e.Name[0] == 0 && e.Name != attrPrimary {
			// Delta record: fold into the primary attribute row.
			k := types.Key{Pid: e.Pid, Name: attrPrimary}
			eff := out[k]
			eff.LinkCount += e.Attr.LinkCount
			eff.Size += e.Attr.Size
			out[k] = eff
			return
		}
		k := types.Key{Pid: e.Pid, Name: e.Name}
		eff := out[k] // may already hold folded deltas
		eff.ID, eff.Kind, eff.Perm = e.ID, e.Kind, e.Perm
		eff.LinkCount += e.Attr.LinkCount
		eff.Size += e.Attr.Size
		out[k] = eff
		return
	})
	return out
}

// CompareSites verifies that two sites hold the same logical namespace
// — zero lost, duplicated, or divergent rows — after replication has
// drained (lag zero, no pending transactions). Delta records are folded
// before comparing, since compaction progress is site-local. Returns
// the divergences found.
func CompareSites(primary, secondary *core.Mantle) []Issue {
	var issues []Issue
	a := effectiveRows(primary.DB())
	b := effectiveRows(secondary.DB())
	for k, ea := range a {
		eb, ok := b[k]
		if !ok {
			issues = append(issues, Issue{
				Check: "site-lost", Pid: k.Pid, Name: k.Name,
				Why: "row present on primary, missing on secondary",
			})
			continue
		}
		delete(b, k)
		if ea != eb {
			issues = append(issues, Issue{
				Check: "site-diverged", Pid: k.Pid, Name: k.Name,
				Why: fmt.Sprintf("primary %+v != secondary %+v", ea, eb),
			})
		}
	}
	for k := range b {
		issues = append(issues, Issue{
			Check: "site-extra", Pid: k.Pid, Name: k.Name,
			Why: "row present on secondary, absent on primary",
		})
	}
	return issues
}
