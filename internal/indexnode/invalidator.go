package indexnode

import (
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/pathutil"
	"mantle/internal/radix"
	"mantle/internal/skiplist"
)

// Invalidator coordinates lookups with directory modifications (§5.1.2).
// It owns three structures:
//
//   - RemovalList: a concurrent skiplist of the full paths of directories
//     currently being modified. Every lookup scans it (an O(1) emptiness
//     check in the common case) and bypasses TopDirPathCache for paths
//     under a listed prefix.
//   - PrefixTree: a path radix tree mirroring every cached prefix, so an
//     invalidation can find the affected cache range — hash tables cannot
//     answer range queries.
//   - a background worker that drains invalidation requests: it removes
//     the affected subtree from PrefixTree and TopDirPathCache, then
//     deletes the path from RemovalList.
//
// A modification epoch implements the paper's "conventional timestamp
// mechanism": lookups snapshot the epoch before resolving and only cache
// their result if no modification intervened.
type Invalidator struct {
	cache   *TopDirPathCache
	removal *skiplist.List
	prefix  *radix.Tree
	epoch   atomic.Uint64

	// refs counts concurrent registrations per path: two renames racing
	// on the same source must not strip each other's RemovalList
	// protection when one aborts. The skiplist stays the lock-free read
	// structure; refs is touched only on (rare) modifications.
	refMu sync.Mutex
	refs  map[string]int

	queue    chan string
	wg       sync.WaitGroup
	stopOnce sync.Once
	stopCh   chan struct{}

	processed atomic.Int64
}

// NewInvalidator creates an invalidator bound to cache and starts its
// background worker.
func NewInvalidator(cache *TopDirPathCache) *Invalidator {
	inv := &Invalidator{
		cache:   cache,
		removal: skiplist.New(),
		prefix:  radix.New(),
		refs:    make(map[string]int),
		queue:   make(chan string, 1024),
		stopCh:  make(chan struct{}),
	}
	inv.wg.Add(1)
	go inv.worker()
	return inv
}

// Stop terminates the background worker after draining pending work.
func (inv *Invalidator) Stop() {
	inv.stopOnce.Do(func() { close(inv.stopCh) })
	inv.wg.Wait()
}

// Epoch returns the current modification epoch.
func (inv *Invalidator) Epoch() uint64 { return inv.epoch.Load() }

// BumpEpoch advances the modification epoch (called by every applied
// directory modification).
func (inv *Invalidator) BumpEpoch() { inv.epoch.Add(1) }

// BeginModification registers path as being modified: lookups under it
// bypass the cache until a matching Invalidate or AbortModification.
// Registrations are reference-counted, so concurrent modifications of
// the same path (two renames racing on one source; the loser aborts)
// cannot strip each other's protection. Reports whether the path was
// newly inserted into the RemovalList.
func (inv *Invalidator) BeginModification(path string) bool {
	path = pathutil.Clean(path)
	inv.BumpEpoch()
	inv.refMu.Lock()
	inv.refs[path]++
	fresh := inv.refs[path] == 1
	inv.refMu.Unlock()
	if fresh {
		return inv.removal.Insert(path)
	}
	return false
}

// AbortModification releases one registration of path without
// invalidating anything (the modification did not happen).
func (inv *Invalidator) AbortModification(path string) {
	inv.release(pathutil.Clean(path))
}

// release drops one reference; the last one removes the RemovalList
// entry.
func (inv *Invalidator) release(path string) {
	inv.refMu.Lock()
	inv.refs[path]--
	gone := inv.refs[path] <= 0
	if gone {
		delete(inv.refs, path)
	}
	inv.refMu.Unlock()
	if gone {
		inv.removal.Remove(path)
	}
}

// Invalidate enqueues asynchronous invalidation of every cached prefix
// under path (inclusive), then removal of path from the RemovalList.
func (inv *Invalidator) Invalidate(path string) {
	inv.BumpEpoch()
	select {
	case inv.queue <- pathutil.Clean(path):
	case <-inv.stopCh:
		inv.invalidateNow(pathutil.Clean(path))
	}
}

// InvalidateExact synchronously removes the exact cache entry for path —
// the rmdir fast path (§5.1.2): an empty directory cannot be a strict
// prefix of any other cached path, so no range scan or RemovalList
// round trip is needed.
func (inv *Invalidator) InvalidateExact(path string) {
	path = pathutil.Clean(path)
	inv.BumpEpoch()
	inv.prefix.Remove(path)
	inv.cache.Delete(path)
}

// Blocked reports whether path (or any of its ancestors) appears in the
// RemovalList, meaning the lookup must bypass TopDirPathCache. The empty
// check is wait-free and is the common case.
func (inv *Invalidator) Blocked(path string) bool {
	if inv.removal.IsEmpty() {
		return false
	}
	blocked := false
	inv.removal.Range(func(p string) bool {
		if pathutil.IsAncestor(p, path, true) {
			blocked = true
			return false
		}
		// Keys are sorted; once past path lexically there can still be
		// shorter ancestors later? No: an ancestor of path is a strict
		// string prefix, so it sorts <= path. Stop once beyond.
		return p <= path
	})
	return blocked
}

// NoteCached records a freshly cached prefix in the PrefixTree (the
// synchronous mirror update of §5.1.2).
func (inv *Invalidator) NoteCached(prefix string) {
	inv.prefix.Insert(pathutil.Clean(prefix))
}

// Processed returns how many invalidation requests the worker has
// completed.
func (inv *Invalidator) Processed() int64 { return inv.processed.Load() }

// RemovalLen returns the RemovalList's current length.
func (inv *Invalidator) RemovalLen() int { return inv.removal.Len() }

func (inv *Invalidator) worker() {
	defer inv.wg.Done()
	for {
		select {
		case p := <-inv.queue:
			inv.invalidateNow(p)
		case <-inv.stopCh:
			// Drain remaining work, then exit.
			for {
				select {
				case p := <-inv.queue:
					inv.invalidateNow(p)
				default:
					return
				}
			}
		}
	}
}

func (inv *Invalidator) invalidateNow(path string) {
	for _, p := range inv.prefix.RemoveSubtree(path) {
		inv.cache.Delete(p)
	}
	inv.release(path)
	inv.processed.Add(1)
}

// WaitIdle blocks until the invalidation queue is drained and the
// RemovalList is empty. Test helper.
func (inv *Invalidator) WaitIdle() {
	for {
		if len(inv.queue) == 0 && inv.removal.IsEmpty() {
			return
		}
		select {
		case <-inv.stopCh:
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
}
