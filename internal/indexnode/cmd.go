package indexnode

import (
	"encoding/binary"
	"fmt"

	"mantle/internal/types"
)

// CmdKind discriminates the replicated IndexNode commands.
type CmdKind uint8

const (
	// CmdAddDir inserts a directory's access entry (mkdir).
	CmdAddDir CmdKind = iota + 1
	// CmdRemoveDir removes a directory's access entry (rmdir).
	CmdRemoveDir
	// CmdRename moves a directory's access entry across parents and
	// carries the source path for cache invalidation.
	CmdRename
	// CmdSetPerm updates a directory's permission and carries its path
	// for cache invalidation.
	CmdSetPerm
)

// Cmd is a replicated IndexNode state-machine command. Invalidation paths
// ride in the Raft log, as §5.1.3 requires, so followers and learners
// invalidate their local TopDirPathCaches when the log applies.
type Cmd struct {
	Kind    CmdKind
	Pid     types.InodeID // parent of the (src) entry
	Name    string        // (src) entry name
	ID      types.InodeID // directory ID
	Perm    types.Perm
	DstPid  types.InodeID // rename destination parent
	DstName string        // rename destination name
	Path    string        // full path for invalidation (rename src, setperm target, rmdir target)
	LockID  string        // rename lock owner to clear on commit
}

// Encode serialises the command with a compact length-prefixed binary
// layout. The output length is computed exactly up front, so encoding
// performs a single allocation with no buffer growth (commands are
// encoded once per proposal and once per retry attempt on the write hot
// path).
func (c Cmd) Encode() []byte {
	size := 1 + 3*8 + 2 + 4*4 + len(c.Name) + len(c.DstName) + len(c.Path) + len(c.LockID)
	out := make([]byte, 0, size)
	out = append(out, byte(c.Kind))
	out = binary.LittleEndian.AppendUint64(out, uint64(c.Pid))
	out = binary.LittleEndian.AppendUint64(out, uint64(c.ID))
	out = binary.LittleEndian.AppendUint64(out, uint64(c.DstPid))
	out = binary.LittleEndian.AppendUint16(out, uint16(c.Perm))
	appendStr := func(s string) {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	appendStr(c.Name)
	appendStr(c.DstName)
	appendStr(c.Path)
	appendStr(c.LockID)
	return out
}

// DecodeCmd parses an encoded command.
func DecodeCmd(b []byte) (Cmd, error) {
	var c Cmd
	if len(b) < 1 {
		return c, fmt.Errorf("indexnode: empty command")
	}
	c.Kind = CmdKind(b[0])
	b = b[1:]
	readU64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("indexnode: truncated command")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	readStr := func() (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("indexnode: truncated command")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return "", fmt.Errorf("indexnode: truncated string")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	pid, err := readU64()
	if err != nil {
		return c, err
	}
	id, err := readU64()
	if err != nil {
		return c, err
	}
	dstPid, err := readU64()
	if err != nil {
		return c, err
	}
	if len(b) < 2 {
		return c, fmt.Errorf("indexnode: truncated command")
	}
	c.Perm = types.Perm(binary.LittleEndian.Uint16(b))
	b = b[2:]
	c.Pid, c.ID, c.DstPid = types.InodeID(pid), types.InodeID(id), types.InodeID(dstPid)
	if c.Name, err = readStr(); err != nil {
		return c, err
	}
	if c.DstName, err = readStr(); err != nil {
		return c, err
	}
	if c.Path, err = readStr(); err != nil {
		return c, err
	}
	if c.LockID, err = readStr(); err != nil {
		return c, err
	}
	return c, nil
}
