package indexnode

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"mantle/internal/types"
)

// CmdKind discriminates the replicated IndexNode commands.
type CmdKind uint8

const (
	// CmdAddDir inserts a directory's access entry (mkdir).
	CmdAddDir CmdKind = iota + 1
	// CmdRemoveDir removes a directory's access entry (rmdir).
	CmdRemoveDir
	// CmdRename moves a directory's access entry across parents and
	// carries the source path for cache invalidation.
	CmdRename
	// CmdSetPerm updates a directory's permission and carries its path
	// for cache invalidation.
	CmdSetPerm
)

// Cmd is a replicated IndexNode state-machine command. Invalidation paths
// ride in the Raft log, as §5.1.3 requires, so followers and learners
// invalidate their local TopDirPathCaches when the log applies.
type Cmd struct {
	Kind    CmdKind
	Pid     types.InodeID // parent of the (src) entry
	Name    string        // (src) entry name
	ID      types.InodeID // directory ID
	Perm    types.Perm
	DstPid  types.InodeID // rename destination parent
	DstName string        // rename destination name
	Path    string        // full path for invalidation (rename src, setperm target, rmdir target)
	LockID  string        // rename lock owner to clear on commit
}

// Encode serialises the command with a compact length-prefixed binary
// layout.
func (c Cmd) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(c.Kind))
	var tmp [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	writeStr := func(s string) {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(s)))
		buf.Write(tmp[:4])
		buf.WriteString(s)
	}
	writeU64(uint64(c.Pid))
	writeU64(uint64(c.ID))
	writeU64(uint64(c.DstPid))
	binary.LittleEndian.PutUint16(tmp[:2], uint16(c.Perm))
	buf.Write(tmp[:2])
	writeStr(c.Name)
	writeStr(c.DstName)
	writeStr(c.Path)
	writeStr(c.LockID)
	return buf.Bytes()
}

// DecodeCmd parses an encoded command.
func DecodeCmd(b []byte) (Cmd, error) {
	var c Cmd
	if len(b) < 1 {
		return c, fmt.Errorf("indexnode: empty command")
	}
	c.Kind = CmdKind(b[0])
	b = b[1:]
	readU64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("indexnode: truncated command")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	readStr := func() (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("indexnode: truncated command")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return "", fmt.Errorf("indexnode: truncated string")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	pid, err := readU64()
	if err != nil {
		return c, err
	}
	id, err := readU64()
	if err != nil {
		return c, err
	}
	dstPid, err := readU64()
	if err != nil {
		return c, err
	}
	if len(b) < 2 {
		return c, fmt.Errorf("indexnode: truncated command")
	}
	c.Perm = types.Perm(binary.LittleEndian.Uint16(b))
	b = b[2:]
	c.Pid, c.ID, c.DstPid = types.InodeID(pid), types.InodeID(id), types.InodeID(dstPid)
	if c.Name, err = readStr(); err != nil {
		return c, err
	}
	if c.DstName, err = readStr(); err != nil {
		return c, err
	}
	if c.Path, err = readStr(); err != nil {
		return c, err
	}
	if c.LockID, err = readStr(); err != nil {
		return c, err
	}
	return c, nil
}
