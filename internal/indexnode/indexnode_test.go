package indexnode

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"mantle/internal/types"
)

func TestCmdCodecRoundTrip(t *testing.T) {
	cases := []Cmd{
		{Kind: CmdAddDir, Pid: 1, Name: "a", ID: 2, Perm: types.PermAll},
		{Kind: CmdRemoveDir, Pid: 1, Name: "a", ID: 2, Path: "/a"},
		{Kind: CmdRename, Pid: 1, Name: "a", ID: 2, Perm: types.PermRead,
			DstPid: 3, DstName: "b", Path: "/x/a", LockID: "uuid-1"},
		{Kind: CmdSetPerm, ID: 9, Perm: types.PermLookup, Path: "/p/q"},
		{Kind: CmdAddDir}, // zero values
	}
	for _, c := range cases {
		got, err := DecodeCmd(c.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v want %+v", got, c)
		}
	}
}

func TestCmdCodecQuick(t *testing.T) {
	f := func(kind uint8, pid, id, dst uint64, perm uint16, name, dstName, path, lockID string) bool {
		c := Cmd{
			Kind: CmdKind(kind%4 + 1),
			Pid:  types.InodeID(pid), ID: types.InodeID(id), DstPid: types.InodeID(dst),
			Perm: types.Perm(perm), Name: name, DstName: dstName, Path: path, LockID: lockID,
		}
		got, err := DecodeCmd(c.Encode())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmdDecodeTruncated(t *testing.T) {
	c := Cmd{Kind: CmdRename, Name: "abc", Path: "/x"}
	enc := c.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeCmd(enc[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestIndexTableBasics(t *testing.T) {
	tab := NewIndexTable()
	e := types.AccessEntry{Pid: types.RootID, Name: "a", ID: 2, Perm: types.PermAll}
	if !tab.Put(e) {
		t.Fatal("first put not fresh")
	}
	if tab.Put(e) {
		t.Fatal("re-put reported fresh")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	got, ok := tab.Get(types.RootID, "a")
	if !ok || got.ID != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	rev, ok := tab.GetByID(2)
	if !ok || rev.Name != "a" {
		t.Fatalf("GetByID = %+v, %v", rev, ok)
	}
	if !tab.Delete(types.RootID, "a", 2) {
		t.Fatal("delete failed")
	}
	if tab.Delete(types.RootID, "a", 2) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tab.GetByID(2); ok {
		t.Fatal("reverse entry survived delete")
	}
}

// buildTree populates: /a(2)/b(3)/c(4), /x(5)/y(6).
func buildTree(tab *IndexTable) {
	tab.Put(types.AccessEntry{Pid: 1, Name: "a", ID: 2, Perm: types.PermAll})
	tab.Put(types.AccessEntry{Pid: 2, Name: "b", ID: 3, Perm: types.PermAll})
	tab.Put(types.AccessEntry{Pid: 3, Name: "c", ID: 4, Perm: types.PermAll})
	tab.Put(types.AccessEntry{Pid: 1, Name: "x", ID: 5, Perm: types.PermAll})
	tab.Put(types.AccessEntry{Pid: 5, Name: "y", ID: 6, Perm: types.PermAll})
}

func TestPathOfAndAncestor(t *testing.T) {
	tab := NewIndexTable()
	buildTree(tab)
	p, ok := tab.PathOf(4)
	if !ok || p != "/a/b/c" {
		t.Fatalf("PathOf(4) = %q, %v", p, ok)
	}
	if p, _ := tab.PathOf(types.RootID); p != "/" {
		t.Fatalf("PathOf(root) = %q", p)
	}
	if !tab.IsAncestorID(2, 4) {
		t.Fatal("a not ancestor of c")
	}
	if !tab.IsAncestorID(4, 4) {
		t.Fatal("self not ancestor-or-equal")
	}
	if tab.IsAncestorID(4, 2) {
		t.Fatal("c ancestor of a")
	}
	if tab.IsAncestorID(5, 4) {
		t.Fatal("x ancestor of c")
	}
	if !tab.IsAncestorID(types.RootID, 6) {
		t.Fatal("root not ancestor")
	}
}

func TestTableRenameAndSetPerm(t *testing.T) {
	tab := NewIndexTable()
	buildTree(tab)
	// Move /a/b under /x as /x/b2.
	if !tab.Rename(2, "b", 3, 5, "b2", types.PermRead|types.PermLookup) {
		t.Fatal("rename failed")
	}
	if _, ok := tab.Get(2, "b"); ok {
		t.Fatal("old entry survives")
	}
	e, ok := tab.Get(5, "b2")
	if !ok || e.ID != 3 {
		t.Fatalf("new entry = %+v", e)
	}
	p, _ := tab.PathOf(4)
	if p != "/x/b2/c" {
		t.Fatalf("PathOf(c) after rename = %q", p)
	}
	if !tab.SetPerm(3, types.PermAll) {
		t.Fatal("setperm failed")
	}
	e, _ = tab.Get(5, "b2")
	if e.Perm != types.PermAll {
		t.Fatalf("perm = %v", e.Perm)
	}
	if tab.SetPerm(999, types.PermAll) {
		t.Fatal("setperm on missing id succeeded")
	}
}

func newTestReplica(t *testing.T, k int) *Replica {
	t.Helper()
	r := NewReplica(k, true)
	t.Cleanup(r.Close)
	buildTree(r.Table())
	return r
}

func TestReplicaLookup(t *testing.T) {
	r := newTestReplica(t, 1)
	res, err := r.Lookup("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 4 || res.Levels != 3 || res.Hit {
		t.Fatalf("first lookup = %+v", res)
	}
	// Second lookup hits the cached prefix /a/b and walks only 1 level.
	res2, err := r.Lookup("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit || res2.Levels != 1 || res2.ID != 4 {
		t.Fatalf("second lookup = %+v", res2)
	}
	// Root lookup.
	resRoot, err := r.Lookup("/")
	if err != nil || resRoot.ID != types.RootID {
		t.Fatalf("root lookup = %+v err=%v", resRoot, err)
	}
	// Missing path.
	if _, err := r.Lookup("/a/zzz"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("missing path: %v", err)
	}
}

func TestLookupShortPathsNotCached(t *testing.T) {
	r := newTestReplica(t, 3)
	// Depth 3 with k=3: prefix is root, nothing cached.
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if n := r.cache.Len(); n != 0 {
		t.Fatalf("cache has %d entries for short paths", n)
	}
}

func TestLookupPermissionIntersection(t *testing.T) {
	r := newTestReplica(t, 1)
	// Restrict /a to lookup+read via the replicated command (as the real
	// system does, so caches invalidate): the aggregated perm of /a/b/c
	// loses write.
	r.Apply(1, Cmd{Kind: CmdSetPerm, ID: 2, Perm: types.PermLookup | types.PermRead, Path: "/a"}.Encode())
	r.inv.WaitIdle()
	res, err := r.Lookup("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Perm.Allows(types.PermWrite) {
		t.Fatal("aggregated perm kept write through restricted ancestor")
	}
	// Remove lookup permission entirely: resolution fails.
	r.Apply(2, Cmd{Kind: CmdSetPerm, ID: 2, Perm: types.PermRead, Path: "/a"}.Encode())
	r.inv.WaitIdle()
	if _, err := r.Lookup("/a/b/c"); !errors.Is(err, types.ErrPermission) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyRenameInvalidatesCache(t *testing.T) {
	r := newTestReplica(t, 1)
	if _, err := r.Lookup("/a/b/c"); err != nil { // caches /a/b
		t.Fatal(err)
	}
	if r.cache.Len() != 1 {
		t.Fatalf("cache len = %d", r.cache.Len())
	}
	// Apply a rename of /a to /x/a2 (as the Raft log would).
	cmd := Cmd{Kind: CmdRename, Pid: 1, Name: "a", ID: 2, Perm: types.PermAll,
		DstPid: 5, DstName: "a2", Path: "/a"}
	r.Apply(1, cmd.Encode())
	r.inv.WaitIdle()
	if r.cache.Len() != 0 {
		t.Fatalf("cache entries survived rename invalidation: %d", r.cache.Len())
	}
	// Old path gone, new path resolves.
	if _, err := r.Lookup("/a/b/c"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("old path: %v", err)
	}
	res, err := r.Lookup("/x/a2/b/c")
	if err != nil || res.ID != 4 {
		t.Fatalf("new path: %+v err=%v", res, err)
	}
}

func TestLookupDuringModificationBypassesCache(t *testing.T) {
	r := newTestReplica(t, 1)
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	// Mark /a as being modified (rename in flight): lookups under it
	// must not use or refresh the cache, but still resolve from the
	// table.
	r.inv.BeginModification("/a")
	res, err := r.Lookup("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("lookup used cache under in-flight modification")
	}
	if res.Levels != 3 {
		t.Fatalf("levels = %d, want full walk", res.Levels)
	}
	// Unrelated paths still use the cache.
	if _, err := r.Lookup("/x/y"); err != nil {
		t.Fatal(err)
	}
	r.inv.AbortModification("/a")
	res, err = r.Lookup("/a/b/c")
	if err != nil || !res.Hit {
		t.Fatalf("after abort: %+v err=%v", res, err)
	}
}

func TestEpochCheckPreventsStaleCaching(t *testing.T) {
	r := newTestReplica(t, 1)
	// Simulate a modification racing a lookup: bump the epoch between
	// resolution and caching by doing it from inside the table walk is
	// not possible here, so emulate the check directly: a lookup that
	// observes a changed epoch must not leave a cache entry behind.
	epoch0 := r.inv.Epoch()
	r.inv.BumpEpoch()
	if r.inv.Epoch() == epoch0 {
		t.Fatal("epoch did not advance")
	}
	// Lookup now caches (fresh epoch snapshot) — but an immediately
	// following modification invalidates it.
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	cmd := Cmd{Kind: CmdSetPerm, ID: 2, Perm: types.PermAll, Path: "/a"}
	r.Apply(1, cmd.Encode())
	r.inv.WaitIdle()
	if r.cache.Len() != 0 {
		t.Fatal("cache survived setperm invalidation")
	}
}

func TestRmdirExactInvalidation(t *testing.T) {
	r := newTestReplica(t, 1)
	// Cache prefix /a/b via a lookup of /a/b/c.
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	// Remove /a/b/c (leaf), then /a/b. Removing /a/b must drop the
	// cached /a/b entry without any RemovalList traffic.
	r.Apply(1, Cmd{Kind: CmdRemoveDir, Pid: 3, Name: "c", ID: 4, Path: "/a/b/c"}.Encode())
	r.Apply(2, Cmd{Kind: CmdRemoveDir, Pid: 2, Name: "b", ID: 3, Path: "/a/b"}.Encode())
	if r.cache.Len() != 0 {
		t.Fatalf("stale cache after rmdir: %d entries", r.cache.Len())
	}
	if r.inv.RemovalLen() != 0 {
		t.Fatal("rmdir touched the RemovalList")
	}
	// Recreate /a/b with a new ID; lookups must see the new directory.
	r.Apply(3, Cmd{Kind: CmdAddDir, Pid: 2, Name: "b", ID: 77, Perm: types.PermAll}.Encode())
	res, err := r.Lookup("/a/b")
	if err != nil || res.ID != 77 {
		t.Fatalf("recreated dir: %+v err=%v", res, err)
	}
}

func TestPrepareRenameLoopDetection(t *testing.T) {
	r := newTestReplica(t, 1)
	// Renaming /a under /a/b/c is a loop.
	_, err := r.PrepareRename("/a", "/a/b/c", "a2", "u1")
	if !errors.Is(err, types.ErrLoop) {
		t.Fatalf("loop: %v", err)
	}
	// Lock and RemovalList must be clean after the failed prepare.
	if r.inv.RemovalLen() != 0 {
		t.Fatal("RemovalList leaked")
	}
	if r.IsLocked(2, "other") {
		t.Fatal("lock leaked")
	}
	// Renaming root fails.
	if _, err := r.PrepareRename("/", "/x", "r", "u1"); !errors.Is(err, types.ErrLoop) {
		t.Fatalf("rename root: %v", err)
	}
	// Valid rename prepares.
	prep, err := r.PrepareRename("/a/b", "/x", "b2", "u2")
	if err != nil {
		t.Fatal(err)
	}
	if prep.SrcID != 3 || prep.DstPid != 5 || prep.SrcPid != 2 {
		t.Fatalf("prep = %+v", prep)
	}
	if r.inv.RemovalLen() != 1 {
		t.Fatal("src path not in RemovalList")
	}
	// A second rename of the same source conflicts on the lock.
	if _, err := r.PrepareRename("/a/b", "/x", "b3", "u3"); !errors.Is(err, types.ErrLocked) {
		t.Fatalf("concurrent rename: %v", err)
	}
	// Idempotent retry with the same UUID succeeds.
	if _, err := r.PrepareRename("/a/b", "/x", "b2", "u2"); err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
	// Commit clears lock and invalidates.
	r.Apply(1, Cmd{Kind: CmdRename, Pid: prep.SrcPid, Name: prep.SrcName, ID: prep.SrcID,
		Perm: prep.SrcPerm, DstPid: prep.DstPid, DstName: "b2", Path: "/a/b", LockID: "u2"}.Encode())
	r.inv.WaitIdle()
	if r.inv.RemovalLen() != 0 {
		t.Fatal("RemovalList not drained after commit")
	}
	if r.IsLocked(3, "someone-else") {
		t.Fatal("lock survived commit")
	}
	res, err := r.Lookup("/x/b2/c")
	if err != nil || res.ID != 4 {
		t.Fatalf("post-rename lookup: %+v err=%v", res, err)
	}
}

func TestPrepareRenameLockedAncestorOnDstChain(t *testing.T) {
	r := newTestReplica(t, 1)
	// Lock /x (id 5) as if a concurrent rename is moving it.
	if err := r.TryLock(5, "other"); err != nil {
		t.Fatal(err)
	}
	// Renaming /a/b into /x/y must observe the locked ancestor /x on
	// the LCA(root)→dst chain and abort.
	_, err := r.PrepareRename("/a/b", "/x/y", "b2", "u1")
	if !errors.Is(err, types.ErrLocked) {
		t.Fatalf("err = %v", err)
	}
	if r.inv.RemovalLen() != 0 {
		t.Fatal("RemovalList leaked after lock conflict")
	}
}

func TestPrepareRenameDstExists(t *testing.T) {
	r := newTestReplica(t, 1)
	if _, err := r.PrepareRename("/a/b", "/", "x", "u1"); !errors.Is(err, types.ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortRenameUnwinds(t *testing.T) {
	r := newTestReplica(t, 1)
	prep, err := r.PrepareRename("/a/b", "/x", "b2", "u1")
	if err != nil {
		t.Fatal(err)
	}
	r.AbortRename(prep.SrcID, "/a/b", "u1")
	if r.inv.RemovalLen() != 0 {
		t.Fatal("RemovalList not cleared")
	}
	// The source can now be renamed by someone else.
	if _, err := r.PrepareRename("/a/b", "/x", "b3", "u2"); err != nil {
		t.Fatalf("rename after abort: %v", err)
	}
}

func TestInvalidatorBlocked(t *testing.T) {
	cache := NewTopDirPathCache()
	inv := NewInvalidator(cache)
	defer inv.Stop()
	if inv.Blocked("/a/b") {
		t.Fatal("empty invalidator blocks")
	}
	inv.BeginModification("/a")
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if !inv.Blocked(p) {
			t.Fatalf("%s not blocked", p)
		}
	}
	for _, p := range []string{"/ab", "/x", "/"} {
		if inv.Blocked(p) {
			t.Fatalf("%s blocked", p)
		}
	}
	inv.AbortModification("/a")
	if inv.Blocked("/a/b") {
		t.Fatal("blocked after abort")
	}
}

func TestInvalidatorSubtreeEviction(t *testing.T) {
	cache := NewTopDirPathCache()
	inv := NewInvalidator(cache)
	defer inv.Stop()
	for _, p := range []string{"/a/b", "/a/b/c", "/a/d", "/x/y"} {
		cache.Put(p, CacheEntry{ID: 1})
		inv.NoteCached(p)
	}
	inv.BeginModification("/a/b")
	inv.Invalidate("/a/b")
	inv.WaitIdle()
	if _, ok := cache.Get("/a/b"); ok {
		t.Fatal("/a/b survived")
	}
	if _, ok := cache.Get("/a/b/c"); ok {
		t.Fatal("/a/b/c survived")
	}
	if _, ok := cache.Get("/a/d"); !ok {
		t.Fatal("/a/d evicted wrongly")
	}
	if _, ok := cache.Get("/x/y"); !ok {
		t.Fatal("/x/y evicted wrongly")
	}
}

func TestCacheStatsAndMemory(t *testing.T) {
	c := NewTopDirPathCache()
	c.Put("/a/b", CacheEntry{ID: 1})
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get("/a/b"); !ok {
		t.Fatal("miss on present key")
	}
	if _, ok := c.Get("/zz"); ok {
		t.Fatal("hit on absent key")
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d, %d", h, m)
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("memory estimate not positive")
	}
	if !c.Delete("/a/b") || c.Delete("/a/b") {
		t.Fatal("delete semantics")
	}
}

func TestLookupCacheDisabled(t *testing.T) {
	r := NewReplica(1, false)
	defer r.Close()
	buildTree(r.Table())
	for i := 0; i < 3; i++ {
		res, err := r.Lookup("/a/b/c")
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit || res.Levels != 3 {
			t.Fatalf("iteration %d: %+v (cache should be off)", i, res)
		}
	}
	if r.cache.Len() != 0 {
		t.Fatal("cache filled while disabled")
	}
}

func TestBulkAddVisible(t *testing.T) {
	r := NewReplica(3, true)
	defer r.Close()
	var entries []types.AccessEntry
	id := types.InodeID(2)
	pid := types.RootID
	for i := 0; i < 5; i++ {
		entries = append(entries, types.AccessEntry{
			Pid: pid, Name: fmt.Sprintf("d%d", i), ID: id, Perm: types.PermAll,
		})
		pid = id
		id++
	}
	r.BulkAdd(entries)
	res, err := r.Lookup("/d0/d1/d2/d3/d4")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReplicaSnapshotRoundTrip(t *testing.T) {
	r := newTestReplica(t, 1)
	// Warm the cache so Restore's invalidation path is exercised.
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	data := r.Snapshot()

	r2 := NewReplica(1, true)
	defer r2.Close()
	r2.Restore(data)
	if r2.Table().Len() != r.Table().Len() {
		t.Fatalf("restored table len %d != %d", r2.Table().Len(), r.Table().Len())
	}
	res, err := r2.Lookup("/a/b/c")
	if err != nil || res.ID != 4 {
		t.Fatalf("restored lookup = %+v err=%v", res, err)
	}
	// Reverse index rebuilt too (loop detection works).
	if !r2.Table().IsAncestorID(2, 4) {
		t.Fatal("reverse index missing after restore")
	}
	// Restore onto a warm replica drops stale cache.
	if _, err := r.Lookup("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	r.Restore(data)
	if r.Cache().Len() != 0 {
		t.Fatalf("cache kept %d entries across restore", r.Cache().Len())
	}
}

func TestGroupLogCompactionUnderLoad(t *testing.T) {
	g, caller := newTestGroup(t, func(c *Config) {
		c.SnapshotThreshold = 32
		c.BatchEnabled = true
	})
	for i := 0; i < 150; i++ {
		if err := g.AddDir(caller.Begin(), types.RootID, fmt.Sprintf("d%d", i),
			types.InodeID(100+i), types.PermAll, ""); err != nil {
			t.Fatal(err)
		}
	}
	// All replicas still resolve everything.
	for i := 0; i < 150; i += 37 {
		res, err := g.Lookup(caller.Begin(), fmt.Sprintf("/d%d", i))
		if err != nil || res.ID != types.InodeID(100+i) {
			t.Fatalf("lookup d%d: %+v err=%v", i, res, err)
		}
	}
}

func FuzzDecodeCmd(f *testing.F) {
	// Seed with valid encodings and mutations thereof.
	for _, c := range []Cmd{
		{Kind: CmdAddDir, Pid: 1, Name: "a", ID: 2, Perm: types.PermAll},
		{Kind: CmdRename, Pid: 1, Name: "x", ID: 9, DstPid: 3, DstName: "y", Path: "/x", LockID: "u"},
	} {
		f.Add(c.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success, re-encoding the decoded command
		// must decode to the same value.
		c, err := DecodeCmd(data)
		if err != nil {
			return
		}
		c2, err := DecodeCmd(c.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c2 != c {
			t.Fatalf("re-decode mismatch: %+v vs %+v", c2, c)
		}
	})
}

func BenchmarkReplicaLookupCacheHit(b *testing.B) {
	r := NewReplica(1, true)
	defer r.Close()
	buildTree(r.Table())
	if _, err := r.Lookup("/a/b/c"); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup("/a/b/c"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicaLookupCacheMiss(b *testing.B) {
	r := NewReplica(1, false) // cache disabled: full walk every time
	defer r.Close()
	buildTree(r.Table())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup("/a/b/c"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCmdEncodeDecode(b *testing.B) {
	c := Cmd{Kind: CmdRename, Pid: 1, Name: "src", ID: 9, DstPid: 3,
		DstName: "dst", Path: "/a/b/src", LockID: "uuid-123"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCmd(c.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRacingRenameAbortKeepsProtection(t *testing.T) {
	// Two renames race on the same source; the loser's unwind must not
	// strip the winner's RemovalList registration (registrations are
	// reference-counted).
	r := newTestReplica(t, 1)
	if _, err := r.PrepareRename("/a/b", "/x", "b2", "winner"); err != nil {
		t.Fatal(err)
	}
	if r.Invalidator().RemovalLen() != 1 {
		t.Fatal("winner not registered")
	}
	// Loser hits the lock and unwinds.
	if _, err := r.PrepareRename("/a/b", "/x", "b3", "loser"); !errors.Is(err, types.ErrLocked) {
		t.Fatalf("loser err = %v", err)
	}
	// The winner's protection must survive the loser's abort.
	if r.Invalidator().RemovalLen() != 1 {
		t.Fatalf("RemovalList len = %d after loser abort", r.Invalidator().RemovalLen())
	}
	if !r.Invalidator().Blocked("/a/b/c") {
		t.Fatal("subtree no longer shielded from caching")
	}
	// Winner commits; everything drains.
	r.Apply(1, Cmd{Kind: CmdRename, Pid: 2, Name: "b", ID: 3, Perm: types.PermAll,
		DstPid: 5, DstName: "b2", Path: "/a/b", LockID: "winner"}.Encode())
	r.inv.WaitIdle()
	if r.Invalidator().RemovalLen() != 0 {
		t.Fatalf("RemovalList not drained: %d", r.Invalidator().RemovalLen())
	}
}

func TestIdempotentPrepareDoesNotDoubleRegister(t *testing.T) {
	r := newTestReplica(t, 1)
	// A crashed proxy's successor retries with the same UUID (§5.3).
	if _, err := r.PrepareRename("/a/b", "/x", "b2", "u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PrepareRename("/a/b", "/x", "b2", "u1"); err != nil {
		t.Fatal(err)
	}
	if r.Invalidator().RemovalLen() != 1 {
		t.Fatalf("RemovalList len = %d", r.Invalidator().RemovalLen())
	}
	// One abort fully releases it (single live registration).
	r.AbortRename(3, "/a/b", "u1")
	if r.Invalidator().RemovalLen() != 0 {
		t.Fatalf("leaked registration: %d", r.Invalidator().RemovalLen())
	}
	// A different rename can now proceed.
	if _, err := r.PrepareRename("/a/b", "/x", "b9", "u2"); err != nil {
		t.Fatal(err)
	}
}
