package indexnode

import (
	"sync"

	"mantle/internal/intern"
	"mantle/internal/types"
)

// IndexTable is the in-memory directory access-metadata index of one
// IndexNode replica (Figure 6): (pid, dirname) → {id, permission, lock
// bit}, plus a reverse id → entry index used by rename loop detection to
// walk a directory's ancestor chain without touching TafDB.
//
// The table is striped for concurrent reads; mutations arrive only from
// the Raft apply thread (plus bulk population before experiments), so
// write contention is negligible. Each entry is ~80 bytes, matching the
// paper's estimate for per-directory access metadata.
type IndexTable struct {
	stripes [tableStripes]tableStripe
	length  int64
	lenMu   sync.Mutex
}

const tableStripes = 64

type tableStripe struct {
	mu    sync.RWMutex
	byKey map[types.Key]*types.AccessEntry
	byID  map[types.InodeID]*types.AccessEntry
}

// NewIndexTable creates an empty table.
func NewIndexTable() *IndexTable {
	t := &IndexTable{}
	for i := range t.stripes {
		t.stripes[i].byKey = make(map[types.Key]*types.AccessEntry)
		t.stripes[i].byID = make(map[types.InodeID]*types.AccessEntry)
	}
	return t
}

func (t *IndexTable) stripeFor(pid types.InodeID) *tableStripe {
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return &t.stripes[h%tableStripes]
}

// stripeForID locates the stripe holding the reverse-index entry for id.
// Entries are placed in the stripe of their *own* id for the reverse
// index and the stripe of their pid for the forward index; the two can
// differ, so each entry is stored in both stripes' maps.
func (t *IndexTable) stripeForID(id types.InodeID) *tableStripe {
	return t.stripeFor(id)
}

// Get returns the access entry for (pid, name).
func (t *IndexTable) Get(pid types.InodeID, name string) (types.AccessEntry, bool) {
	s := t.stripeFor(pid)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byKey[types.Key{Pid: pid, Name: name}]
	if !ok {
		return types.AccessEntry{}, false
	}
	return *e, true
}

// GetByID returns the access entry for a directory ID (reverse index).
func (t *IndexTable) GetByID(id types.InodeID) (types.AccessEntry, bool) {
	s := t.stripeForID(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.byID[id]
	if !ok {
		return types.AccessEntry{}, false
	}
	return *e, true
}

// Put inserts or replaces the entry, reporting whether it was new.
// The component name is interned: every replica of the group (and the
// TafDB access row, and any cache keys) then shares one string backing
// for the same directory name instead of one copy per table.
func (t *IndexTable) Put(e types.AccessEntry) bool {
	e.Name = intern.Intern(e.Name)
	fresh := false
	fwd := t.stripeFor(e.Pid)
	fwd.mu.Lock()
	k := types.Key{Pid: e.Pid, Name: e.Name}
	if _, exists := fwd.byKey[k]; !exists {
		fresh = true
	}
	cp := e
	fwd.byKey[k] = &cp
	fwd.mu.Unlock()

	rev := t.stripeForID(e.ID)
	rev.mu.Lock()
	cp2 := e
	rev.byID[e.ID] = &cp2
	rev.mu.Unlock()

	if fresh {
		t.lenMu.Lock()
		t.length++
		t.lenMu.Unlock()
	}
	return fresh
}

// Delete removes (pid, name) and its reverse entry, reporting presence.
func (t *IndexTable) Delete(pid types.InodeID, name string, id types.InodeID) bool {
	fwd := t.stripeFor(pid)
	fwd.mu.Lock()
	k := types.Key{Pid: pid, Name: name}
	_, ok := fwd.byKey[k]
	delete(fwd.byKey, k)
	fwd.mu.Unlock()
	if !ok {
		return false
	}
	rev := t.stripeForID(id)
	rev.mu.Lock()
	if e, has := rev.byID[id]; has && e.Pid == pid && e.Name == name {
		delete(rev.byID, id)
	}
	rev.mu.Unlock()
	t.lenMu.Lock()
	t.length--
	t.lenMu.Unlock()
	return true
}

// Rename atomically re-homes entry id from (pid, name) to (dstPid,
// dstName) with the given permission.
func (t *IndexTable) Rename(pid types.InodeID, name string, id types.InodeID,
	dstPid types.InodeID, dstName string, perm types.Perm) bool {

	if !t.Delete(pid, name, id) {
		return false
	}
	t.Put(types.AccessEntry{Pid: dstPid, Name: dstName, ID: id, Perm: perm})
	return true
}

// SetPerm updates the permission of entry id in both indices.
func (t *IndexTable) SetPerm(id types.InodeID, perm types.Perm) bool {
	rev := t.stripeForID(id)
	rev.mu.Lock()
	e, ok := rev.byID[id]
	if !ok {
		rev.mu.Unlock()
		return false
	}
	pid, name := e.Pid, e.Name
	e.Perm = perm
	rev.mu.Unlock()

	fwd := t.stripeFor(pid)
	fwd.mu.Lock()
	if fe, ok := fwd.byKey[types.Key{Pid: pid, Name: name}]; ok {
		fe.Perm = perm
	}
	fwd.mu.Unlock()
	return true
}

// Len returns the number of directory entries.
func (t *IndexTable) Len() int {
	t.lenMu.Lock()
	defer t.lenMu.Unlock()
	return int(t.length)
}

// PathOf reconstructs the full path of directory id by walking the
// reverse index to the root — the ancestor walk rename loop detection
// uses. Returns false if the chain is broken (entry missing).
func (t *IndexTable) PathOf(id types.InodeID) (string, bool) {
	if id == types.RootID {
		return "/", true
	}
	var comps []string
	cur := id
	for cur != types.RootID {
		e, ok := t.GetByID(cur)
		if !ok {
			return "", false
		}
		comps = append(comps, e.Name)
		cur = e.Pid
	}
	// Reverse.
	n := 0
	for i := len(comps) - 1; i >= 0; i-- {
		n += len(comps[i]) + 1
	}
	b := make([]byte, 0, n)
	for i := len(comps) - 1; i >= 0; i-- {
		b = append(b, '/')
		b = append(b, comps[i]...)
	}
	return string(b), true
}

// IsAncestorID reports whether anc is an ancestor of (or equal to) id in
// the directory tree, walking the reverse index. This is the loop check
// for cross-directory renames (§5.2.2): renaming S under D loops iff S
// is an ancestor of D.
func (t *IndexTable) IsAncestorID(anc, id types.InodeID) bool {
	cur := id
	for {
		if cur == anc {
			return true
		}
		if cur == types.RootID {
			return false
		}
		e, ok := t.GetByID(cur)
		if !ok {
			return false
		}
		cur = e.Pid
	}
}

// ForEach visits every entry (order unspecified) until fn returns false.
func (t *IndexTable) ForEach(fn func(e types.AccessEntry) bool) {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for _, e := range s.byKey {
			if !fn(*e) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
