package indexnode

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"mantle/internal/pathutil"
	"mantle/internal/singleflight"
	"mantle/internal/types"
)

// Replica is one IndexNode replica: the IndexTable, TopDirPathCache, and
// Invalidator, mutated exclusively through the Raft apply thread (plus
// bulk population before experiments). Rename lock bits are
// leader-volatile state: they are not replicated, vanish on failover,
// and are re-acquired by the proxy's idempotent retry with its request
// UUID (§5.3).
type Replica struct {
	table atomic.Pointer[IndexTable]
	cache *TopDirPathCache
	inv   *Invalidator

	// k is the TopDirPathCache truncation distance (§5.1.1).
	k int
	// cacheEnabled gates TopDirPathCache (the "+pathcache" ablation).
	cacheEnabled bool

	// Rename locks: directory ID → owning request UUID.
	lockMu sync.Mutex
	locks  map[types.InodeID]string

	// applySeq counts applied state mutations; it is bumped *after* each
	// mutation lands so a lookup that begins after the bump keys its
	// singleflight on the new sequence and can never join (or share the
	// result of) a walk that predates the mutation.
	applySeq atomic.Uint64
	// flight coalesces concurrent identical lookups into one IndexTable
	// walk; joiners surface with LookupResult.Coalesced set so the group
	// charges them base RPC cost only.
	flight singleflight.Group[lookupFlight, LookupResult]
}

// lookupFlight keys a coalesced walk: same path AND same applied-state
// sequence. Serial lookups never overlap, so they never coalesce.
type lookupFlight struct {
	path string
	seq  uint64
}

// NewReplica builds an empty replica with truncation distance k.
func NewReplica(k int, cacheEnabled bool) *Replica {
	cache := NewTopDirPathCache()
	r := &Replica{
		cache:        cache,
		inv:          NewInvalidator(cache),
		k:            k,
		cacheEnabled: cacheEnabled,
		locks:        make(map[types.InodeID]string),
	}
	r.table.Store(NewIndexTable())
	return r
}

// Close stops the replica's invalidator.
func (r *Replica) Close() { r.inv.Stop() }

// Table exposes the IndexTable (read-mostly; used by tests and stats).
func (r *Replica) Table() *IndexTable { return r.table.Load() }

// Cache exposes the TopDirPathCache.
func (r *Replica) Cache() *TopDirPathCache { return r.cache }

// Invalidator exposes the invalidator.
func (r *Replica) Invalidator() *Invalidator { return r.inv }

// Apply is the Raft state-machine hook: it decodes and applies one
// replicated command, bumping the modification epoch and driving cache
// invalidation exactly as §5.1.3 prescribes (invalidation info rides in
// the log, so follower and learner caches stay coherent).
func (r *Replica) Apply(_ uint64, cmd []byte) {
	c, err := DecodeCmd(cmd)
	if err != nil {
		// A corrupt replicated command is unrecoverable state divergence.
		panic(fmt.Sprintf("indexnode: apply: %v", err))
	}
	// Bump after the mutation is visible (defer): lookups starting later
	// key their coalescing flights on the new sequence.
	defer r.applySeq.Add(1)
	switch c.Kind {
	case CmdAddDir:
		// A new directory cannot invalidate any cached prefix (prefixes
		// resolve existing ancestors), so no epoch bump: the paper's
		// condition (b) tracks RemovalList-relevant modifications only,
		// and bumping here would needlessly suppress cache fills during
		// mkdir-heavy workloads.
		r.table.Load().Put(types.AccessEntry{Pid: c.Pid, Name: c.Name, ID: c.ID, Perm: c.Perm})
	case CmdRemoveDir:
		r.table.Load().Delete(c.Pid, c.Name, c.ID)
		// rmdir fast path: exact-entry invalidation, no RemovalList.
		r.inv.InvalidateExact(c.Path)
	case CmdRename:
		r.inv.BeginModification(c.Path)
		r.table.Load().Rename(c.Pid, c.Name, c.ID, c.DstPid, c.DstName, c.Perm)
		if r.unlock(c.ID, c.LockID) {
			// This replica led the PrepareRename, which holds its own
			// RemovalList registration; release it alongside the lock.
			r.inv.AbortModification(c.Path)
		}
		r.inv.Invalidate(c.Path)
	case CmdSetPerm:
		r.inv.BeginModification(c.Path)
		r.table.Load().SetPerm(c.ID, c.Perm)
		r.inv.Invalidate(c.Path)
	}
}

// BulkAdd inserts directory entries directly (population before
// experiments; bypasses Raft on every replica identically).
func (r *Replica) BulkAdd(entries []types.AccessEntry) {
	for _, e := range entries {
		r.table.Load().Put(e)
	}
	r.applySeq.Add(1)
}

// LookupResult is the outcome of a local path resolution.
type LookupResult struct {
	ID       types.InodeID // ID of the final directory
	ParentID types.InodeID // ID of the final directory's parent
	Perm     types.Perm    // aggregated (intersected) path permission
	Levels   int           // IndexTable levels walked (CPU-cost driver)
	Hit      bool          // TopDirPathCache hit
	// Coalesced marks a result shared from another lookup's in-flight
	// walk: the serving replica did the walk once, so the group charges
	// this caller the base RPC cost without the per-level component.
	Coalesced bool
}

// Lookup resolves an absolute directory path against local state,
// following the Figure 7 workflow (see resolve). Concurrent lookups of
// the same path against the same applied state coalesce into one walk;
// a lookup that begins after any applied mutation keys a fresh flight
// and therefore always observes that mutation.
//
// A TopDirPathCache hit bypasses the flight entirely: the remaining
// suffix is at most k cheap IndexTable gets, not worth the flight's
// per-call allocation and registry churn. Only the full walk — the
// expensive case a miss storm multiplies — coalesces.
func (r *Replica) Lookup(path string) (LookupResult, error) {
	path = pathutil.Clean(path)
	if r.cacheEnabled && !r.inv.Blocked(path) {
		if prefix, suffix := pathutil.TruncateRel(path, r.k); prefix != "/" {
			if e, ok := r.cache.Get(prefix); ok {
				res := LookupResult{Hit: true}
				err := r.walk(path, suffix, e.ID, e.Perm, &res)
				return res, err
			}
		}
	}
	res, err, shared := r.flight.Do(lookupFlight{path, r.applySeq.Load()}, func() (LookupResult, error) {
		return r.resolve(path)
	})
	if shared {
		res.Coalesced = true
	}
	return res, err
}

// CoalescedLookups returns how many lookups shared another lookup's
// walk instead of walking the IndexTable themselves.
func (r *Replica) CoalescedLookups() int64 { return r.flight.Coalesced() }

// resolve performs the actual Figure 7 local resolution on a cleaned
// path:
//
//  1. scan RemovalList; under an in-flight modification, bypass the cache,
//  2. otherwise consult TopDirPathCache with the k-truncated prefix,
//  3. resolve the remaining levels through IndexTable,
//  4. cache the truncated prefix if it was a miss and no modification
//     raced this lookup (epoch check).
func (r *Replica) resolve(path string) (LookupResult, error) {
	var res LookupResult

	epoch0 := r.inv.Epoch()
	blocked := r.inv.Blocked(path)

	startID := types.RootID
	startPerm := types.PermAll
	rest := pathutil.Rel(path)
	cachePrefix := ""

	if r.cacheEnabled && !blocked {
		prefix, suffix := pathutil.TruncateRel(path, r.k)
		if prefix != "/" {
			if e, ok := r.cache.Get(prefix); ok {
				res.Hit = true
				startID, startPerm = e.ID, e.Perm
				rest = suffix
			} else {
				cachePrefix = prefix
			}
		}
	}

	if err := r.walk(path, rest, startID, startPerm, &res); err != nil {
		return res, err
	}

	// Condition (a): prefix not cached; condition (b): no modification
	// raced this lookup (timestamp check). Resolve the prefix's own
	// aggregate from the walk we just did: the prefix is the whole path
	// minus the last k components, so re-derive its ID/perm by walking
	// the cached-levels boundary. We already walked from the root in the
	// miss case, so recompute cheaply.
	if cachePrefix != "" && r.inv.Epoch() == epoch0 {
		if pe, pperm, ok := r.resolvePrefix(cachePrefix); ok {
			r.inv.NoteCached(cachePrefix)
			r.cache.Put(cachePrefix, CacheEntry{ID: pe, Perm: pperm})
			// Re-check the epoch: if a modification slipped in between
			// the check and the insert, conservatively drop the entry.
			if r.inv.Epoch() != epoch0 {
				r.cache.Delete(cachePrefix)
				r.inv.prefix.Remove(cachePrefix)
			}
		}
	}
	return res, nil
}

// walk resolves rest (a relative component sequence, possibly empty)
// starting at (startID, startPerm), accumulating levels walked and the
// final (ID, ParentID, Perm) into res. It iterates components in place
// (pathutil.NextComponent) — the hottest loop in the service — and
// allocates nothing.
func (r *Replica) walk(path, rest string, startID types.InodeID, startPerm types.Perm, res *LookupResult) error {
	id, perm := startID, startPerm
	parent := types.RootID
	table := r.table.Load()
	for rest != "" {
		name, remainder := pathutil.NextComponent(rest)
		e, ok := table.Get(id, name)
		if !ok {
			return fmt.Errorf("lookup %s at %q: %w", path, name, types.ErrNotFound)
		}
		res.Levels++
		parent = id
		id = e.ID
		perm = perm.Intersect(e.Perm)
		// Traversal permission applies to directories entered on the way
		// to the target; the final component is the target itself, and
		// its aggregated permission is returned for the caller to check
		// against the operation's needs.
		if remainder != "" && !perm.Allows(types.PermLookup) {
			return fmt.Errorf("lookup %s at %q: %w", path, name, types.ErrPermission)
		}
		rest = remainder
	}
	res.ID, res.ParentID, res.Perm = id, parent, perm
	return nil
}

// resolvePrefix walks prefix from the root through IndexTable.
func (r *Replica) resolvePrefix(prefix string) (types.InodeID, types.Perm, bool) {
	id := types.RootID
	perm := types.PermAll
	table := r.table.Load()
	rest := pathutil.Rel(prefix)
	for rest != "" {
		var name string
		name, rest = pathutil.NextComponent(rest)
		e, ok := table.Get(id, name)
		if !ok {
			return 0, 0, false
		}
		id = e.ID
		perm = perm.Intersect(e.Perm)
	}
	return id, perm, true
}

// TryLock sets the rename lock bit on directory id for request lockID.
// Re-acquiring with the same lockID succeeds (idempotent proxy retry,
// §5.3); a different holder yields types.ErrLocked.
func (r *Replica) TryLock(id types.InodeID, lockID string) error {
	r.lockMu.Lock()
	defer r.lockMu.Unlock()
	if holder, held := r.locks[id]; held && holder != lockID {
		return fmt.Errorf("dir %d locked by %s: %w", id, holder, types.ErrLocked)
	}
	r.locks[id] = lockID
	return nil
}

// IsLocked reports whether id carries a rename lock held by a different
// request than lockID.
func (r *Replica) IsLocked(id types.InodeID, lockID string) bool {
	r.lockMu.Lock()
	defer r.lockMu.Unlock()
	holder, held := r.locks[id]
	return held && holder != lockID
}

// unlock clears the lock if lockID holds it, reporting whether a lock
// was actually released (i.e. this replica was the prepare-time leader).
func (r *Replica) unlock(id types.InodeID, lockID string) bool {
	r.lockMu.Lock()
	defer r.lockMu.Unlock()
	if holder, held := r.locks[id]; held && (holder == lockID || lockID == "") {
		delete(r.locks, id)
		return true
	}
	return false
}

// Unlock releases the rename lock held by lockID on id.
func (r *Replica) Unlock(id types.InodeID, lockID string) { _ = r.unlock(id, lockID) }

// RenamePrep is the result of PrepareRename: everything the proxy needs
// to run the commit transaction.
type RenamePrep struct {
	SrcPid  types.InodeID
	SrcName string
	SrcID   types.InodeID
	SrcPerm types.Perm
	DstPid  types.InodeID // resolved destination parent
	Levels  int           // IndexTable levels walked (CPU cost)
}

// PrepareRename executes Figure 9 steps 1–7 locally on the leader in one
// RPC: resolve source and destination-parent paths, insert the source
// path into the RemovalList, lock the source directory, run loop
// detection (src must not be an ancestor of dst), and check rename locks
// along the LCA→destination chain. On conflict the operation is unwound
// and the proxy retries.
func (r *Replica) PrepareRename(srcPath, dstParentPath, dstName, lockID string) (RenamePrep, error) {
	var prep RenamePrep
	srcPath = pathutil.Clean(srcPath)
	dstParentPath = pathutil.Clean(dstParentPath)
	if srcPath == "/" {
		return prep, fmt.Errorf("rename root: %w", types.ErrLoop)
	}

	// Resolve the source's parent, then the source entry itself.
	srcParent := pathutil.Dir(srcPath)
	pres, err := r.Lookup(srcParent)
	if err != nil {
		return prep, err
	}
	prep.Levels += pres.Levels
	srcName := pathutil.Base(srcPath)
	srcEntry, ok := r.table.Load().Get(pres.ID, srcName)
	if !ok {
		return prep, fmt.Errorf("rename src %s: %w", srcPath, types.ErrNotFound)
	}
	prep.Levels++

	// Resolve the destination parent.
	dres, err := r.Lookup(dstParentPath)
	if err != nil {
		return prep, err
	}
	prep.Levels += dres.Levels
	if !dres.Perm.Allows(types.PermWrite) {
		return prep, fmt.Errorf("rename into %s: %w", dstParentPath, types.ErrPermission)
	}

	// Idempotent proxy retry: if this request already holds the lock
	// from a previous attempt, its RemovalList registration is live too;
	// do not double-register.
	r.lockMu.Lock()
	alreadyHeld := r.locks[srcEntry.ID] == lockID
	r.lockMu.Unlock()

	// Step 4: shield the source subtree from caching.
	if !alreadyHeld {
		r.inv.BeginModification(srcPath)
	}
	// Step 5: lock the source directory.
	if err := r.TryLock(srcEntry.ID, lockID); err != nil {
		if !alreadyHeld {
			r.inv.AbortModification(srcPath)
		}
		return prep, err
	}
	// unwind releases the lock and the (single live) registration —
	// whether taken by this attempt or inherited from a crashed one.
	unwind := func(err error) (RenamePrep, error) {
		r.unlock(srcEntry.ID, lockID)
		r.inv.AbortModification(srcPath)
		return prep, err
	}

	// Loop detection: src must not be an ancestor of (or equal to) the
	// destination parent.
	if r.table.Load().IsAncestorID(srcEntry.ID, dres.ID) {
		return unwind(fmt.Errorf("rename %s under %s: %w", srcPath, dstParentPath, types.ErrLoop))
	}
	// Step 6: check locks from the LCA of src and dst down to dst. A
	// locked ancestor there means a concurrent rename could move the
	// destination under the source after our check.
	lca := pathutil.LCA(srcPath, dstParentPath)
	steps := pathutil.Depth(dstParentPath) - pathutil.Depth(lca)
	cur := dres.ID
	for i := 0; i < steps && cur != types.RootID; i++ {
		if r.IsLocked(cur, lockID) {
			return unwind(fmt.Errorf("ancestor %d of %s locked: %w", cur, dstParentPath, types.ErrLocked))
		}
		e, ok := r.table.Load().GetByID(cur)
		if !ok {
			break
		}
		cur = e.Pid
		prep.Levels++
	}

	// Destination name must be free.
	if _, exists := r.table.Load().Get(dres.ID, dstName); exists {
		return unwind(fmt.Errorf("rename dst %s/%s: %w", dstParentPath, dstName, types.ErrExists))
	}

	prep.SrcPid = pres.ID
	prep.SrcName = srcName
	prep.SrcID = srcEntry.ID
	prep.SrcPerm = srcEntry.Perm
	prep.DstPid = dres.ID
	return prep, nil
}

// AbortRename unwinds a prepared rename that failed downstream (TafDB
// transaction conflict): clears the lock and the RemovalList entry.
func (r *Replica) AbortRename(srcID types.InodeID, srcPath, lockID string) {
	r.unlock(srcID, lockID)
	r.inv.AbortModification(srcPath)
}

// Snapshot serialises the replica's IndexTable for Raft log compaction
// (raft.Snapshotter). Volatile state — TopDirPathCache, the Invalidator's
// structures, and rename locks — is intentionally excluded: caches
// rebuild on demand and locks are leader-volatile by design (§5.3).
func (r *Replica) Snapshot() []byte {
	var buf bytes.Buffer
	var tmp [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	n := uint64(r.table.Load().Len())
	writeU64(n)
	r.table.Load().ForEach(func(e types.AccessEntry) bool {
		writeU64(uint64(e.Pid))
		writeU64(uint64(e.ID))
		binary.LittleEndian.PutUint16(tmp[:2], uint16(e.Perm))
		buf.Write(tmp[:2])
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.Name)))
		buf.Write(tmp[:4])
		buf.WriteString(e.Name)
		return true
	})
	return buf.Bytes()
}

// Restore replaces the replica's state from a snapshot (raft.Snapshotter)
// and drops all cached resolution state.
func (r *Replica) Restore(data []byte) {
	table := NewIndexTable()
	if len(data) >= 8 {
		n := binary.LittleEndian.Uint64(data)
		data = data[8:]
		for i := uint64(0); i < n && len(data) >= 22; i++ {
			pid := binary.LittleEndian.Uint64(data)
			id := binary.LittleEndian.Uint64(data[8:])
			perm := binary.LittleEndian.Uint16(data[16:])
			nameLen := binary.LittleEndian.Uint32(data[18:])
			data = data[22:]
			if uint32(len(data)) < nameLen {
				break
			}
			name := string(data[:nameLen])
			data = data[nameLen:]
			table.Put(types.AccessEntry{
				Pid: types.InodeID(pid), ID: types.InodeID(id),
				Perm: types.Perm(perm), Name: name,
			})
		}
	}
	// Swap in the rebuilt table, then invalidate every cached resolution.
	r.table.Store(table)
	r.applySeq.Add(1)
	r.inv.BumpEpoch()
	for _, p := range r.inv.prefix.RemoveSubtree("/") {
		r.cache.Delete(p)
	}
}
