package indexnode

import (
	"time"

	"mantle/internal/types"
)

// This file is the group's elastic hot-entry replication tier (DESIGN.md
// §9): a decaying read-heat sketch feeds a promotion loop that maintains
// a small hot-set of directory paths; lookups of hot paths are served by
// non-leader replicas at a bounded-staleness read point (no leader round
// trip), so the leader's read CPU stops scaling with skew. The same
// machinery tracks per-replica load hints — sampled from each reply, the
// in-process equivalent of the Load field piggybacked on wire replies —
// and routes reads with power-of-two-choices, shedding with a typed
// ErrOverloaded once every eligible replica is saturated.

// hotSet is the immutable promoted-path set; the promotion loop swaps a
// fresh one in atomically so the lookup fast path is a pointer load and
// a map probe.
type hotSet struct {
	paths map[string]struct{}
}

// isHot reports whether path is currently promoted.
func (g *Group) isHot(path string) bool {
	hs := g.hotSet.Load()
	if hs == nil {
		return false
	}
	_, ok := hs.paths[path]
	return ok
}

// HotSet returns the currently promoted paths (status surface, tests).
func (g *Group) HotSet() []string {
	hs := g.hotSet.Load()
	if hs == nil {
		return nil
	}
	out := make([]string, 0, len(hs.paths))
	for p := range hs.paths {
		out = append(out, p)
	}
	return out
}

// startHotspotLoop launches the promotion/demotion manager. Every
// HotPromoteInterval it snapshots the decaying read-heat sketch
// (snapshotting folds the decay, so silent keys shrink) and rebuilds the
// hot-set with hysteresis: promote at HotThreshold, demote only below
// HotThreshold/2, bounded by HotSetMax entries.
func (g *Group) startHotspotLoop() {
	g.hotWG.Add(1)
	go func() {
		defer g.hotWG.Done()
		t := time.NewTicker(g.cfg.HotPromoteInterval)
		defer t.Stop()
		for {
			select {
			case <-g.hotStop:
				return
			case <-t.C:
				g.refreshHotSet()
			}
		}
	}()
}

// refreshHotSet recomputes the hot-set from the current sketch state.
func (g *Group) refreshHotSet() {
	old := g.hotSet.Load()
	items := g.readHeat.Snapshot() // sorted by descending decayed count
	next := make(map[string]struct{}, g.cfg.HotSetMax)
	for _, it := range items {
		if len(next) >= g.cfg.HotSetMax {
			break
		}
		keep := it.Count >= g.cfg.HotThreshold
		if !keep && old != nil {
			// Hysteresis: an already-hot path stays until it cools to
			// half the promotion threshold, so borderline heat does not
			// flap between read points.
			if _, was := old.paths[it.Key]; was && it.Count >= g.cfg.HotThreshold/2 {
				keep = true
			}
		}
		if keep {
			next[it.Key] = struct{}{}
		}
	}
	if old != nil {
		for p := range next {
			if _, was := old.paths[p]; !was {
				g.promotions.Add(1)
			}
		}
		for p := range old.paths {
			if _, still := next[p]; !still {
				g.demotions.Add(1)
			}
		}
	} else {
		g.promotions.Add(int64(len(next)))
	}
	g.hotSet.Store(&hotSet{paths: next})
}

// noteLoadHint samples the replica's queue-delay hint at reply time —
// the load signal a remote deployment piggybacks on every RPC reply
// (remoteResponse.Load) — and publishes it for the router.
func (g *Group) noteLoadHint(idx int) {
	g.loadHints[idx].Store(int64(g.nodes[idx].LoadHint()))
}

// loadHint returns the last piggybacked queue-delay estimate for a
// replica.
func (g *Group) loadHint(idx int) time.Duration {
	return time.Duration(g.loadHints[idx].Load())
}

// LoadHint reports the group's current bottleneck queue delay — the
// largest per-replica EWMA queue-delay estimate. Deployments piggyback
// this on reply envelopes (remoteResponse.Load) so clients and proxies
// can route and back off without a separate health RPC. Sampled live so
// it works with the hotspot tier off.
func (g *Group) LoadHint() time.Duration {
	var max time.Duration
	for i, rf := range g.rafts {
		if rf.Stopped() {
			continue
		}
		if h := g.nodes[i].LoadHint(); h > max {
			max = h
		}
	}
	return max
}

// pickTwo returns two distinct candidate positions from a candidate
// count using the group's round-robin counter (deterministic fairness,
// no RNG on the hot path).
func (g *Group) pickTwo(n int) (int, int) {
	a := int(g.rr.Add(1) % uint64(n))
	if n == 1 {
		return a, a
	}
	b := int(g.rr.Add(1) % uint64(n))
	if b == a {
		b = (b + 1) % n
	}
	return a, b
}

// pickLoadAware chooses among the candidate replica indices with
// power-of-two-choices on the piggybacked load hints: sample two,
// take the less loaded. Falls back to plain rotation when hints tie.
func (g *Group) pickLoadAware(cands []int) int {
	if len(cands) == 0 {
		return -1
	}
	ai, bi := g.pickTwo(len(cands))
	a, b := cands[ai], cands[bi]
	if g.loadHint(b) < g.loadHint(a) {
		return b
	}
	return a
}

// hotCandidates returns the running non-leader replica indices — the
// targets eligible to serve hot-set reads at the bounded-stale point.
// scratch avoids a per-lookup allocation.
func (g *Group) hotCandidates(scratch []int) []int {
	li := g.leaderIndex()
	cands := scratch[:0]
	for i, rf := range g.rafts {
		if i == li || rf.Stopped() {
			continue
		}
		cands = append(cands, i)
	}
	return cands
}

// maybeShed implements the router's backpressure: when a shed threshold
// is configured and every eligible read target's load hint exceeds it,
// the request is dropped now with a typed ErrOverloaded carrying the
// smallest observed queue delay as the retry-after hint — piling more
// work onto saturated replicas only grows everyone's tail latency.
func (g *Group) maybeShed() error {
	if g.cfg.ShedThreshold <= 0 {
		return nil
	}
	minHint := time.Duration(-1)
	for i, rf := range g.rafts {
		if rf.Stopped() {
			continue
		}
		h := g.loadHint(i)
		if h <= g.cfg.ShedThreshold {
			return nil // at least one replica has headroom
		}
		if minHint < 0 || h < minHint {
			minHint = h
		}
	}
	if minHint < 0 {
		return nil // no live replicas: let the retry loop handle it
	}
	g.sheds.Add(1)
	return types.Overloaded(minHint)
}

// maxReplicas sizes the stack scratch space for candidate selection;
// larger groups spill to a heap append transparently.
const maxReplicas = 16

// HotspotStats is the hot-path management slice of the group's heat
// snapshot.
type HotspotStats struct {
	Enabled    bool     `json:"enabled"`
	HotSet     []string `json:"hot_set,omitempty"`
	Promotions int64    `json:"promotions"`
	Demotions  int64    `json:"demotions"`
	HotReads   int64    `json:"hot_reads"`
	StaleFalls int64    `json:"stale_fallbacks"`
	Sheds      int64    `json:"sheds"`
	// LoadHints is the per-replica piggybacked queue-delay estimate in
	// microseconds (router input).
	LoadHints []float64 `json:"load_hints_us,omitempty"`
}

// Hotspot snapshots the hot-set management state.
func (g *Group) Hotspot() HotspotStats {
	s := HotspotStats{
		Enabled:    g.cfg.Hotspot,
		HotSet:     g.HotSet(),
		Promotions: g.promotions.Load(),
		Demotions:  g.demotions.Load(),
		HotReads:   g.hotReads.Load(),
		StaleFalls: g.staleFalls.Load(),
		Sheds:      g.sheds.Load(),
	}
	if g.cfg.Hotspot {
		s.LoadHints = make([]float64, len(g.nodes))
		for i := range g.nodes {
			s.LoadHints[i] = float64(g.loadHint(i)) / float64(time.Microsecond)
		}
	}
	return s
}

// stopHotspot shuts the promotion loop down (idempotent).
func (g *Group) stopHotspot() {
	g.hotOnce.Do(func() {
		if g.hotStop != nil {
			close(g.hotStop)
		}
	})
	g.hotWG.Wait()
}
