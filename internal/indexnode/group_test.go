package indexnode

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/types"
)

func newTestGroup(t *testing.T, mutate func(*Config)) (*Group, *rpc.Caller) {
	t.Helper()
	cfg := Config{Voters: 3, K: 1, CacheEnabled: true}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	return g, rpc.NewCaller(netsim.NewLocalFabric())
}

func TestGroupMkdirLookup(t *testing.T) {
	g, caller := newTestGroup(t, nil)
	op := caller.Begin()
	if err := g.AddDir(op, types.RootID, "a", 2, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDir(caller.Begin(), 2, "b", 3, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	lop := caller.Begin()
	res, err := g.Lookup(lop, "/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 3 {
		t.Fatalf("res = %+v", res)
	}
	if lop.RTTs() != 1 {
		t.Fatalf("lookup RTTs = %d, want 1 (single-RPC lookup)", lop.RTTs())
	}
}

func TestGroupLookupMissing(t *testing.T) {
	g, caller := newTestGroup(t, nil)
	if _, err := g.Lookup(caller.Begin(), "/nope"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupFollowerReadsSeeWrites(t *testing.T) {
	g, caller := newTestGroup(t, func(c *Config) {
		c.FollowerRead = true
		c.Learners = 1
	})
	// Writes then many round-robin lookups: every replica must serve a
	// consistent view.
	for i := 0; i < 5; i++ {
		if err := g.AddDir(caller.Begin(), types.RootID, fmt.Sprintf("d%d", i),
			types.InodeID(10+i), types.PermAll, ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		res, err := g.Lookup(caller.Begin(), fmt.Sprintf("/d%d", i%5))
		if err != nil {
			t.Fatal(err)
		}
		if res.ID != types.InodeID(10+i%5) {
			t.Fatalf("lookup %d = %+v", i, res)
		}
	}
}

func TestGroupRenameFlow(t *testing.T) {
	g, caller := newTestGroup(t, nil)
	// Build /a/b and /x via Raft.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddDir(caller.Begin(), types.RootID, "a", 2, types.PermAll, ""))
	must(g.AddDir(caller.Begin(), 2, "b", 3, types.PermAll, ""))
	must(g.AddDir(caller.Begin(), types.RootID, "x", 5, types.PermAll, ""))

	op := caller.Begin()
	prep, err := g.PrepareRename(op, "/a/b", "/x", "b2", "u1")
	must(err)
	if prep.SrcID != 3 || prep.DstPid != 5 {
		t.Fatalf("prep = %+v", prep)
	}
	must(g.CommitRename(op, prep, "b2", "/a/b", "u1"))
	res, err := g.Lookup(caller.Begin(), "/x/b2")
	must(err)
	if res.ID != 3 {
		t.Fatalf("post-rename = %+v", res)
	}
	if _, err := g.Lookup(caller.Begin(), "/a/b"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("old path: %v", err)
	}
	// Loop rename rejected end to end.
	if _, err := g.PrepareRename(caller.Begin(), "/x", "/x/b2", "x2", "u2"); !errors.Is(err, types.ErrLoop) {
		t.Fatalf("loop: %v", err)
	}
}

func TestGroupAbortRename(t *testing.T) {
	g, caller := newTestGroup(t, nil)
	if err := g.AddDir(caller.Begin(), types.RootID, "a", 2, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDir(caller.Begin(), types.RootID, "x", 5, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	op := caller.Begin()
	prep, err := g.PrepareRename(op, "/a", "/x", "a2", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AbortRename(op, prep.SrcID, "/a", "u1"); err != nil {
		t.Fatal(err)
	}
	// Source stays where it was and is rename-able again.
	if _, err := g.Lookup(caller.Begin(), "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.PrepareRename(caller.Begin(), "/a", "/x", "a3", "u2"); err != nil {
		t.Fatalf("after abort: %v", err)
	}
}

func TestGroupConcurrentMkdirs(t *testing.T) {
	g, caller := newTestGroup(t, func(c *Config) { c.BatchEnabled = true })
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	var idSeq atomic64
	idSeq.v.Store(100)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := types.InodeID(idSeq.v.Add(1))
				name := fmt.Sprintf("d-%d-%d", gi, i)
				if err := g.AddDir(caller.Begin(), types.RootID, name, id, types.PermAll, ""); err != nil {
					t.Errorf("mkdir %s: %v", name, err)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	// Every replica converges to the same table size.
	deadline := time.Now().Add(3 * time.Second)
	for _, rep := range g.Replicas() {
		for rep.Table().Len() < goroutines*each && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := rep.Table().Len(); n != goroutines*each {
			t.Fatalf("replica table len = %d, want %d", n, goroutines*each)
		}
	}
}

func TestGroupFollowerCacheInvalidation(t *testing.T) {
	// Fill follower caches via follower reads, then rename; follower
	// lookups must observe the rename (no stale cache).
	g, caller := newTestGroup(t, func(c *Config) { c.FollowerRead = true })
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddDir(caller.Begin(), types.RootID, "a", 2, types.PermAll, ""))
	must(g.AddDir(caller.Begin(), 2, "b", 3, types.PermAll, ""))
	must(g.AddDir(caller.Begin(), 3, "c", 4, types.PermAll, ""))
	must(g.AddDir(caller.Begin(), types.RootID, "x", 5, types.PermAll, ""))
	// Warm every replica's cache (round robin hits all).
	for i := 0; i < 12; i++ {
		if _, err := g.Lookup(caller.Begin(), "/a/b/c"); err != nil {
			t.Fatal(err)
		}
	}
	op := caller.Begin()
	prep, err := g.PrepareRename(op, "/a/b", "/x", "b2", "u1")
	must(err)
	must(g.CommitRename(op, prep, "b2", "/a/b", "u1"))
	// Every subsequent lookup (any replica) must see the new truth.
	for i := 0; i < 12; i++ {
		if _, err := g.Lookup(caller.Begin(), "/a/b/c"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("stale lookup %d: %v", i, err)
		}
		res, err := g.Lookup(caller.Begin(), "/x/b2/c")
		if err != nil || res.ID != 4 {
			t.Fatalf("new path lookup %d: %+v err=%v", i, res, err)
		}
	}
}

// atomic64 avoids importing sync/atomic at top level twice in tests.
type atomic64 struct{ v atomicU64 }

type atomicU64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomicU64) Add(d uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += d
	return a.n
}

func (a *atomicU64) Store(n uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n = n
}

// TestGroupReadWriteRaceStress hammers lookups (follower reads included)
// concurrently with renames and mkdirs, then verifies the final state on
// every replica: no lookup may error unexpectedly mid-flight, and the
// tables converge.
func TestGroupReadWriteRaceStress(t *testing.T) {
	g, caller := newTestGroup(t, func(c *Config) {
		c.FollowerRead = true
		c.Learners = 1
		c.BatchEnabled = true
	})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// /stress/d<i>/leaf chains.
	must(g.AddDir(caller.Begin(), types.RootID, "stress", 2, types.PermAll, ""))
	const dirs = 16
	for i := 0; i < dirs; i++ {
		must(g.AddDir(caller.Begin(), 2, fmt.Sprintf("d%d", i), types.InodeID(10+i), types.PermAll, ""))
		must(g.AddDir(caller.Begin(), types.InodeID(10+i), "leaf", types.InodeID(100+i), types.PermAll, ""))
	}

	var wg sync.WaitGroup
	// Readers: resolve leaves concurrently with the writer; tolerate
	// only NotFound (a rename may have moved the dir under a new name).
	// Bounded iterations with a periodic yield so six readers cannot
	// starve the writer on a small host.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				d := (r + i) % dirs
				_, err := g.Lookup(caller.Begin(), fmt.Sprintf("/stress/d%d/leaf", d))
				if err != nil && !errors.Is(err, types.ErrNotFound) {
					t.Errorf("lookup: %v", err)
					return
				}
				if i%64 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(r)
	}
	// Writer: ping-pong rename one subtree and mkdir churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			src, dst := "/stress/d0", "e0"
			if i%2 == 1 {
				src, dst = "/stress/e0", "d0"
			}
			uuid := fmt.Sprintf("stress-%d", i)
			prep, err := g.PrepareRename(caller.Begin(), src, "/stress", dst, uuid)
			if err != nil {
				t.Errorf("prep: %v", err)
				return
			}
			if err := g.CommitRename(caller.Begin(), prep, dst, src, uuid); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			if err := g.AddDir(caller.Begin(), 2, fmt.Sprintf("n%d", i), types.InodeID(1000+i), types.PermAll, ""); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Converged: all replicas agree on the final table size and resolve
	// the final name of the ping-ponged subtree.
	final := "/stress/d0/leaf" // 60 renames = even = back at d0
	for i, rep := range g.Replicas() {
		deadline := time.Now().Add(3 * time.Second)
		want := g.Replicas()[0].Table().Len()
		for rep.Table().Len() != want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if rep.Table().Len() != want {
			t.Fatalf("replica %d table len %d != %d", i, rep.Table().Len(), want)
		}
	}
	res, err := g.Lookup(caller.Begin(), final)
	if err != nil || res.ID != 100 {
		t.Fatalf("final lookup = %+v err=%v", res, err)
	}
}
