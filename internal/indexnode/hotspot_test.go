package indexnode

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/rpc"
	"mantle/internal/types"
)

// newHotspotGroup builds a follower-read group with the hotspot tier on
// and a fast promotion loop / low threshold so tests see promotions in
// milliseconds.
func newHotspotGroup(t *testing.T, mutate func(*Config)) (*Group, *rpc.Caller) {
	t.Helper()
	return newTestGroup(t, func(c *Config) {
		c.FollowerRead = true
		c.Learners = 1
		c.Hotspot = true
		c.HotPromoteInterval = 10 * time.Millisecond
		c.HotThreshold = 20
		c.HeartbeatInterval = 10 * time.Millisecond
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestHotspotPromotionAndDemotion(t *testing.T) {
	g, caller := newHotspotGroup(t, nil)
	if err := g.AddDir(caller.Begin(), types.RootID, "hot", 2, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDir(caller.Begin(), types.RootID, "cold", 3, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	// Hammer /hot well past the threshold; the promotion loop must pick
	// it up within a few intervals.
	deadline := time.Now().Add(3 * time.Second)
	for !g.isHot("/hot") {
		if _, err := g.Lookup(caller.Begin(), "/hot"); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("/hot never promoted; hotspot = %+v", g.Hotspot())
		}
	}
	if g.isHot("/cold") {
		t.Fatalf("/cold promoted without traffic")
	}
	// Hot reads now serve at the bounded-stale point and still observe
	// every settled write.
	before := g.hotReads.Load()
	for i := 0; i < 50; i++ {
		res, err := g.Lookup(caller.Begin(), "/hot")
		if err != nil || res.ID != 2 {
			t.Fatalf("hot lookup = %+v err=%v", res, err)
		}
	}
	if got := g.hotReads.Load() - before; got == 0 {
		t.Fatalf("no lookups took the hot path (stats %+v)", g.Hotspot())
	}

	// Silence: the decaying sketch must cool /hot below the demotion
	// threshold and the hot-set must shrink (the PR's TopK decay fix).
	deadline = time.Now().Add(5 * time.Second)
	for g.isHot("/hot") {
		if time.Now().After(deadline) {
			t.Fatalf("/hot never demoted after going silent; hotspot = %+v", g.Hotspot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.demotions.Load() == 0 {
		t.Fatalf("demotion counter not bumped: %+v", g.Hotspot())
	}
}

// The read-mix invariant under the new router: with lookups racing
// writes, promotions, and demotions, every successful lookup is
// classified exactly once — leader + follower + learner counters sum to
// the number of successful reads. Run under -race in CI.
func TestHotspotReadMixAccounting(t *testing.T) {
	g, caller := newHotspotGroup(t, nil)
	const dirs = 4
	for i := 0; i < dirs; i++ {
		if err := g.AddDir(caller.Begin(), types.RootID, fmt.Sprintf("d%d", i),
			types.InodeID(10+i), types.PermAll, ""); err != nil {
			t.Fatal(err)
		}
	}
	var ok atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				// Skewed: most traffic on /d0 so it promotes and demotes
				// (the writer's churn plus decay) while /d1../d3 stay cold.
				d := 0
				if i%8 == 7 {
					d = (w + i) % dirs
				}
				_, err := g.Lookup(caller.Begin(), fmt.Sprintf("/d%d", d))
				if err == nil {
					ok.Add(1)
				} else if !errors.Is(err, types.ErrNotFound) {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}(w)
	}
	// Concurrent writes keep proposals (and cache invalidations) racing
	// the hot path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := g.AddDir(caller.Begin(), 10, fmt.Sprintf("c%d", i),
				types.InodeID(100+i), types.PermAll, "/d0"); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// On a slow or single-CPU host the workers can drain before the
	// 10ms promotion tick ever fires, leaving the hot path untaken.
	// Keep the skewed traffic flowing (still counted in ok, so the
	// read-mix invariant below covers these lookups too) until the
	// promotion loop catches up.
	deadline := time.Now().Add(5 * time.Second)
	for g.hotReads.Load() == 0 && time.Now().Before(deadline) {
		if _, err := g.Lookup(caller.Begin(), "/d0"); err == nil {
			ok.Add(1)
		}
		time.Sleep(time.Millisecond)
	}

	leader, follower, learner := g.ReadMix()
	if got, want := leader+follower+learner, ok.Load(); got != want {
		t.Fatalf("read mix %d+%d+%d = %d, want %d successful reads",
			leader, follower, learner, got, want)
	}
	if g.hotReads.Load() == 0 {
		t.Fatalf("hot path never taken under skew: %+v", g.Hotspot())
	}
}

// Bounded-staleness hot reads must never return a write older than the
// promise: a value committed more than HotMaxStale ago is always
// visible, even while the path is being served from the hot-set.
func TestHotspotStalenessPromise(t *testing.T) {
	g, caller := newHotspotGroup(t, nil)
	if err := g.AddDir(caller.Begin(), types.RootID, "hot", 2, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for !g.isHot("/hot") {
		if _, err := g.Lookup(caller.Begin(), "/hot"); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("/hot never promoted")
		}
	}
	for i := 0; i < 20; i++ {
		// Commit a child under the hot dir, age it past the staleness
		// bound, then require every hot-path read to see it.
		id := types.InodeID(100 + i)
		name := fmt.Sprintf("gen%d", i)
		if err := g.AddDir(caller.Begin(), 2, name, id, types.PermAll, "/hot"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(g.cfg.HotMaxStale)
		res, err := g.Lookup(caller.Begin(), "/hot/"+name)
		if err != nil || res.ID != id {
			t.Fatalf("gen %d: hot read missed a write older than the bound: %+v err=%v (stats %+v)",
				i, res, err, g.Hotspot())
		}
	}
}

// Backpressure: once every replica's load hint exceeds the shed
// threshold, lookups fail fast with a typed ErrOverloaded carrying a
// retry-after hint.
func TestHotspotShedsWhenSaturated(t *testing.T) {
	g, caller := newHotspotGroup(t, func(c *Config) {
		c.ShedThreshold = time.Nanosecond // any backlog sheds
	})
	if err := g.AddDir(caller.Begin(), types.RootID, "d", 2, types.PermAll, ""); err != nil {
		t.Fatal(err)
	}
	// Force every replica's hint above the threshold (the hints are
	// sampled EWMAs; poke them directly — saturating simulated CPUs in a
	// unit test is slow and flaky).
	for i := range g.loadHints {
		g.loadHints[i].Store(int64(time.Millisecond))
	}
	_, err := g.Lookup(caller.Begin(), "/d")
	if !errors.Is(err, types.ErrOverloaded) {
		t.Fatalf("saturated lookup err = %v, want ErrOverloaded", err)
	}
	if ra := types.RetryAfter(err); ra != time.Millisecond {
		t.Fatalf("retry-after = %v, want 1ms (min replica hint)", ra)
	}
	if g.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", g.sheds.Load())
	}
	// Capacity frees up → requests flow again.
	for i := range g.loadHints {
		g.loadHints[i].Store(0)
	}
	if _, err := g.Lookup(caller.Begin(), "/d"); err != nil {
		t.Fatalf("post-recovery lookup: %v", err)
	}
}
