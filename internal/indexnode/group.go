package indexnode

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/heat"
	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/raft"
	"mantle/internal/rpc"
	"mantle/internal/trace"
	"mantle/internal/types"
)

// Config parameterises an IndexNode Raft group for one namespace.
type Config struct {
	// Voters is the number of voting replicas (the paper deploys 3).
	Voters int
	// Learners is the number of non-voting read replicas (§5.1.3).
	Learners int
	// K is the TopDirPathCache truncation distance (production: 3).
	K int
	// CacheEnabled gates TopDirPathCache ("+pathcache" ablation).
	CacheEnabled bool
	// FollowerRead routes lookups across followers and learners
	// ("+follower read" ablation).
	FollowerRead bool
	// Workers is the CPU worker count per replica node.
	Workers int
	// LookupBaseCost/LookupLevelCost model path-resolution CPU: a fixed
	// RPC handling cost plus one IndexTable access per level actually
	// walked — the cost TopDirPathCache saves.
	LookupBaseCost  time.Duration
	LookupLevelCost time.Duration
	// WriteCost is the CPU charge for directory-modification RPCs.
	WriteCost time.Duration
	// FsyncCost, BatchEnabled, MaxBatch, MaxBatchBytes, MaxBatchDelay
	// and Pipeline configure the Raft log ("+raftlogbatch" ablation):
	// batching folds queued proposals into one append/fsync behind a
	// count/byte/time window, and Pipeline streams AppendEntries while
	// the leader's own fsync is in flight.
	FsyncCost     time.Duration
	BatchEnabled  bool
	MaxBatch      int
	MaxBatchBytes int
	MaxBatchDelay time.Duration
	Pipeline      bool
	// SnapshotThreshold triggers Raft log compaction after this many
	// applied entries (0 = default of 8192; negative disables).
	SnapshotThreshold int
	// ElectionTimeout overrides the Raft election timeout. In-process
	// deployments under heavy simulated load raise it so scheduler
	// starvation cannot masquerade as leader failure.
	ElectionTimeout time.Duration
	// HeartbeatInterval overrides the leader's idle heartbeat period.
	HeartbeatInterval time.Duration
	// RetryWindow bounds how long proxy-side calls chase a leader across
	// elections (and partitions) before failing with ErrUnavailable.
	// Default 5s; partition tests shrink it to fail fast.
	RetryWindow time.Duration
	// CallTimeout is the per-RPC deadline applied to proxy→replica calls
	// (0 = the rpc caller's default).
	CallTimeout time.Duration
	// Hotspot enables elastic hot-entry replication (DESIGN.md §9):
	// directories crossing HotThreshold in the group's decaying
	// read-heat sketch are promoted into a hot-set served by non-leader
	// replicas at a bounded-staleness read point, with load-aware
	// (power-of-two-choices) routing on piggybacked load hints.
	Hotspot bool
	// HotPromoteInterval is the promotion loop's cadence (default 100ms).
	HotPromoteInterval time.Duration
	// HotThreshold is the decayed read count at which a path is
	// promoted; demotion applies at half this (hysteresis). Default 512.
	HotThreshold int64
	// HotSetMax bounds the promoted set (default 32).
	HotSetMax int
	// HotMaxStale is the staleness bound for hot-set reads: a hot read
	// reflects every write committed at the leader as of now−HotMaxStale.
	// Default 4× HeartbeatInterval, so healthy heartbeats always satisfy
	// the bound.
	HotMaxStale time.Duration
	// ShedThreshold, when positive, turns on backpressure: once every
	// live replica's load hint (queue delay) exceeds it, lookups are
	// shed with a typed ErrOverloaded + retry-after instead of queueing.
	ShedThreshold time.Duration
	// DegradedReads lets a replica that cannot reach the leader (no
	// leader elected, or the leader is partitioned away) serve lookups
	// from its local — possibly stale — state instead of failing. The
	// graceful-degradation mode for availability under partitions;
	// fallback reads are counted and off by default because they weaken
	// the consistency the rest of the suite asserts.
	DegradedReads bool
	// Fabric supplies network latency.
	Fabric *netsim.Fabric
	// Name prefixes replica identifiers (one group per namespace).
	Name string
	// Nodes, when provided (length Voters+Learners), hosts the replicas
	// on pre-existing CPU nodes instead of dedicated ones — the §7.2
	// co-location deployment, where many namespaces' IndexNode replicas
	// share a server pool (see internal/pool).
	Nodes []*netsim.Node
}

func (c Config) withDefaults() Config {
	if c.Voters <= 0 {
		c.Voters = 3
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.Fabric == nil {
		c.Fabric = netsim.NewLocalFabric()
	}
	if c.Name == "" {
		c.Name = "indexnode"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.SnapshotThreshold == 0 {
		c.SnapshotThreshold = 8192
	} else if c.SnapshotThreshold < 0 {
		c.SnapshotThreshold = 0
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 5 * time.Second
	}
	if c.HotPromoteInterval <= 0 {
		c.HotPromoteInterval = 100 * time.Millisecond
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 512
	}
	if c.HotSetMax <= 0 {
		c.HotSetMax = 32
	}
	if c.HotMaxStale <= 0 {
		c.HotMaxStale = 4 * c.HeartbeatInterval
	}
	return c
}

// proxySrc names the proxy endpoint on fault-rule edges: proxies are
// stateless and interchangeable, so they share one name.
const proxySrc = "proxy"

// Group is the per-namespace IndexNode service: a Raft group of replicas
// each holding the full directory access-metadata index, serving
// single-RPC lookups and coordinating directory mutations.
type Group struct {
	cfg       Config
	replicas  []*Replica
	rafts     []*raft.Raft
	nodes     []*netsim.Node
	rr        atomic.Uint64
	fallbacks atomic.Int64
	// proposeLat is shared by every replica's raft config, giving one
	// group-wide raft-propose latency distribution.
	proposeLat *metrics.Latency

	// Heat plane: group-wide op rates, the leader/follower/learner read
	// mix, and the hot-write-directory sketch (parent paths of mutations
	// flowing through Raft).
	lookupRate    *heat.Rate
	proposeRate   *heat.Rate
	leaderReads   atomic.Int64
	followerReads atomic.Int64
	learnerReads  atomic.Int64
	writeHeat     *heat.TopK[string]

	// Elastic hotspot management (hotspot.go): the decaying read-heat
	// sketch feeding the promotion loop, the promoted set, per-replica
	// piggybacked load hints, and the tier's counters.
	readHeat   *heat.TopK[string]
	hotSet     atomic.Pointer[hotSet]
	loadHints  []atomic.Int64
	promotions atomic.Int64
	demotions  atomic.Int64
	hotReads   atomic.Int64
	staleFalls atomic.Int64
	sheds      atomic.Int64
	hotStop    chan struct{}
	hotOnce    sync.Once
	hotWG      sync.WaitGroup
}

// GroupHeat is a point-in-time snapshot of the group's heat plane.
type GroupHeat struct {
	LookupsPerSec  float64             `json:"lookups_per_sec"`
	ProposesPerSec float64             `json:"proposes_per_sec"`
	LeaderReads    int64               `json:"leader_reads"`
	FollowerReads  int64               `json:"follower_reads"`
	LearnerReads   int64               `json:"learner_reads"`
	FallbackReads  int64               `json:"fallback_reads"`
	HotWriteDirs   []heat.Item[string] `json:"hot_write_dirs"`
	Hotspot        HotspotStats        `json:"hotspot"`
}

// Heat snapshots the group's heat plane.
func (g *Group) Heat() GroupHeat {
	return GroupHeat{
		LookupsPerSec:  g.lookupRate.PerSecond(),
		ProposesPerSec: g.proposeRate.PerSecond(),
		LeaderReads:    g.leaderReads.Load(),
		FollowerReads:  g.followerReads.Load(),
		LearnerReads:   g.learnerReads.Load(),
		FallbackReads:  g.fallbacks.Load(),
		HotWriteDirs:   g.writeHeat.Snapshot(),
		Hotspot:        g.Hotspot(),
	}
}

// ReadMix returns the leader/follower/learner read counters (tests and
// the skew benchmark's leader-share metric).
func (g *Group) ReadMix() (leader, follower, learner int64) {
	return g.leaderReads.Load(), g.followerReads.Load(), g.learnerReads.Load()
}

// noteRead classifies a successfully served lookup by the serving
// replica's current role (learner replicas never campaign, so index
// suffices; voters are split by live Raft role).
func (g *Group) noteRead(idx int, rf *raft.Raft) {
	if idx >= g.cfg.Voters {
		g.learnerReads.Add(1)
		return
	}
	if role, _, _ := rf.Status(); role == raft.Leader {
		g.leaderReads.Add(1)
	} else {
		g.followerReads.Add(1)
	}
}

// callOpts returns the per-RPC options for proxy→replica calls.
func (g *Group) callOpts() rpc.CallOpts {
	return rpc.CallOpts{Src: proxySrc, Deadline: g.cfg.CallTimeout}
}

// retryable reports whether err is worth another attempt at a different
// replica (or the same one after re-election): leadership churn,
// crash-stop, or fabric-level loss — but never application errors.
func retryable(err error) bool {
	return errors.Is(err, types.ErrNotLeader) || errors.Is(err, types.ErrStopped) ||
		errors.Is(err, types.ErrUnreachable) || errors.Is(err, types.ErrTimeout)
}

// NewGroup builds, starts, and elects the group.
func NewGroup(cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	g := &Group{
		cfg:         cfg,
		proposeLat:  &metrics.Latency{},
		lookupRate:  heat.NewRate(0),
		proposeRate: heat.NewRate(0),
		writeHeat:   heat.NewTopK[string](32),
		// The read-heat sketch decays with a half-life of two promotion
		// intervals, so a shifted hotspot cools below the demotion
		// threshold within a few loop ticks (the heat.TopK decay fix).
		readHeat: heat.NewTopKDecay[string](4*cfg.HotSetMax, 2*cfg.HotPromoteInterval),
		hotStop:  make(chan struct{}),
	}
	n := cfg.Voters + cfg.Learners
	g.loadHints = make([]atomic.Int64, n)
	raftCfgs := make([]raft.Config, n)
	for i := 0; i < n; i++ {
		rep := NewReplica(cfg.K, cfg.CacheEnabled)
		var node *netsim.Node
		if len(cfg.Nodes) == n {
			node = cfg.Nodes[i]
		} else {
			node = netsim.NewNode(fmt.Sprintf("%s-%d", cfg.Name, i), cfg.Workers)
		}
		if h := cfg.Fabric.Faults(); h != nil {
			// A fault injector installed before deployment also governs
			// replica-local execution (blackholed nodes refuse work).
			node.SetFaults(h)
		}
		g.replicas = append(g.replicas, rep)
		g.nodes = append(g.nodes, node)
		raftCfgs[i] = raft.Config{
			ID:                fmt.Sprintf("%s-%d", cfg.Name, i),
			Learner:           i >= cfg.Voters,
			Fabric:            cfg.Fabric,
			Node:              node,
			ElectionTimeout:   cfg.ElectionTimeout,
			HeartbeatInterval: cfg.HeartbeatInterval,
			FsyncCost:         cfg.FsyncCost,
			BatchEnabled:      cfg.BatchEnabled,
			MaxBatch:          cfg.MaxBatch,
			MaxBatchBytes:     cfg.MaxBatchBytes,
			MaxBatchDelay:     cfg.MaxBatchDelay,
			Pipeline:          cfg.Pipeline,
			SnapshotThreshold: cfg.SnapshotThreshold,
			SM:                rep,
			ProposeLatency:    g.proposeLat,
		}
	}
	g.rafts = raft.NewGroup(raftCfgs)
	if _, err := raft.WaitLeader(g.rafts, 10*time.Second); err != nil {
		g.Stop()
		return nil, err
	}
	if cfg.Hotspot {
		g.startHotspotLoop()
	}
	return g, nil
}

// Stop shuts the group down.
func (g *Group) Stop() {
	g.stopHotspot()
	for _, r := range g.rafts {
		r.Stop()
	}
	for _, rep := range g.replicas {
		rep.Close()
	}
}

// leaderIndex returns the index of the current live leader, or -1.
func (g *Group) leaderIndex() int {
	for i, r := range g.rafts {
		if r.Stopped() {
			continue
		}
		if role, _, _ := r.Status(); role == raft.Leader {
			return i
		}
	}
	return -1
}

// Leader returns the leader replica (tests and stats).
func (g *Group) Leader() *Replica {
	if i := g.leaderIndex(); i >= 0 {
		return g.replicas[i]
	}
	return nil
}

// Replicas returns all replicas (stats).
func (g *Group) Replicas() []*Replica { return g.replicas }

// Nodes returns the replica CPU nodes (utilisation reporting).
func (g *Group) Nodes() []*netsim.Node { return g.nodes }

// BulkAdd populates every replica's IndexTable directly (experiment
// setup; bypasses Raft deterministically on all replicas).
func (g *Group) BulkAdd(entries []types.AccessEntry) {
	for _, rep := range g.replicas {
		rep.BulkAdd(entries)
	}
}

// lookupCost computes the CPU charge for a resolution that walked the
// given number of IndexTable levels.
func (g *Group) lookupCost(levels int) time.Duration {
	return g.cfg.LookupBaseCost + time.Duration(levels)*g.cfg.LookupLevelCost
}

// chargeFor computes the CPU charge for a completed resolution: a
// coalesced result shared another lookup's walk, so it carries the base
// RPC handling cost but no per-level component (the levels were charged
// once, to the leader of the flight).
func (g *Group) chargeFor(res LookupResult) time.Duration {
	if res.Coalesced {
		return g.cfg.LookupBaseCost
	}
	return g.lookupCost(res.Levels)
}

// pickReadTarget returns the replica index to serve the next lookup, or
// -1 when no replica is eligible. Under FollowerRead the default is
// round-robin over all replicas; with the hotspot tier on, routing is
// power-of-two-choices on the piggybacked load hints instead, so a
// replica with a deep queue stops attracting new reads.
func (g *Group) pickReadTarget(scratch []int) int {
	if !g.cfg.FollowerRead {
		return g.leaderIndex()
	}
	if g.cfg.Hotspot {
		cands := scratch[:0]
		for i, rf := range g.rafts {
			if !rf.Stopped() {
				cands = append(cands, i)
			}
		}
		return g.pickLoadAware(cands)
	}
	return int(g.rr.Add(1) % uint64(len(g.replicas)))
}

// Lookup resolves an absolute directory path in a single proxy RPC
// (Figure 7), optionally served by a follower or learner under
// ReadIndex consistency (§5.1.3). Returns the directory's ID, the
// aggregated path permission, and whether the serving replica hit its
// TopDirPathCache.
//
// When the serving replica cannot obtain a consistent read point — no
// leader, or the leader unreachable across a partition — and
// DegradedReads is on, the replica falls back to its local (possibly
// stale) state so lookups keep serving while writes are unavailable.
func (g *Group) Lookup(op *rpc.Op, path string) (LookupResult, error) {
	g.lookupRate.Add(1)
	var res LookupResult
	var lastErr error
	opts := g.callOpts()
	var scratch [maxReplicas]int
	hot := false
	if g.cfg.Hotspot {
		g.readHeat.Record(path)
		if err := g.maybeShed(); err != nil {
			return res, err
		}
		hot = g.isHot(path)
	}
	deadline := time.Now().Add(g.cfg.RetryWindow)
	for attempt := 0; attempt == 0 || time.Now().Before(deadline); attempt++ {
		if hot {
			// Hot-set path: a non-leader replica serves at the bounded
			// staleness read point — one RPC, no leader round trip. A
			// read-point failure (no fresh leader contact, replica churn)
			// falls back to the consistent path for the rest of the op.
			cands := g.hotCandidates(scratch[:0])
			if len(cands) == 0 {
				hot = false
				g.staleFalls.Add(1)
				continue
			}
			idx := g.pickLoadAware(cands)
			rep, rf, node := g.replicas[idx], g.rafts[idx], g.nodes[idx]
			var lerr error
			var herr error
			callErr := op.Do(node, 0, opts, func() error {
				herr = rf.BoundedStaleRead(g.cfg.HotMaxStale, func() error {
					res, lerr = rep.Lookup(path)
					node.Charge(g.chargeFor(res))
					return nil
				})
				return nil
			})
			if callErr != nil || herr != nil {
				hot = false
				g.staleFalls.Add(1)
				continue
			}
			g.noteLoadHint(idx)
			if lerr != nil {
				return res, lerr
			}
			g.noteRead(idx, rf)
			g.hotReads.Add(1)
			return res, nil
		}
		idx := g.pickReadTarget(scratch[:])
		if idx < 0 {
			time.Sleep(5 * time.Millisecond)
			lastErr = types.ErrNotLeader
			continue
		}
		rep, rf, node := g.replicas[idx], g.rafts[idx], g.nodes[idx]
		if rf.Stopped() {
			lastErr = types.ErrStopped
			continue
		}
		var err error
		callErr := op.Do(node, 0, opts, func() error {
			serve := func() error {
				var lerr error
				res, lerr = rep.Lookup(path)
				node.Charge(g.chargeFor(res))
				return lerr
			}
			// ConsistentRead on the leader is local (its own commit
			// index + apply wait) and protects reads right after a
			// leadership change, when a new leader may not yet have
			// applied everything committed by its predecessor.
			err = rf.ConsistentRead(serve)
			if err != nil && g.cfg.DegradedReads && retryable(err) {
				// Graceful degradation: serve from local state, stale at
				// worst by the unreplicated suffix of the log.
				if sres, serr := rep.Lookup(path); serr == nil {
					node.Charge(g.chargeFor(sres))
					g.fallbacks.Add(1)
					res, err = sres, nil
				}
			}
			return nil
		})
		if callErr != nil {
			if retryable(callErr) {
				lastErr = callErr
				continue
			}
			return res, callErr
		}
		if err == nil {
			g.noteLoadHint(idx)
			g.noteRead(idx, rf)
			return res, nil
		}
		if retryable(err) {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return res, err
	}
	return res, fmt.Errorf("indexnode lookup %s: %w: %w", path, types.ErrUnavailable, lastErr)
}

// propose submits a command through the current leader with retry across
// leader changes. One proxy RPC per attempt. Each attempt's commit wait
// is bounded by the remaining retry window, so a partitioned group makes
// propose fail fast with ErrUnavailable instead of hanging on an entry
// that can never commit.
func (g *Group) propose(op *rpc.Op, c Cmd) error {
	g.proposeRate.Add(1)
	ctx, sp := trace.Start(op.Context(), "raft-propose")
	sp.Annotate("cmd", "%d", c.Kind)
	defer sp.End()
	op = op.WithContext(ctx)
	payload := c.Encode()
	var lastErr error
	opts := g.callOpts()
	deadline := time.Now().Add(g.cfg.RetryWindow)
	for attempt := 0; attempt == 0 || time.Now().Before(deadline); attempt++ {
		li := g.leaderIndex()
		if li < 0 {
			time.Sleep(5 * time.Millisecond)
			lastErr = types.ErrNotLeader
			continue
		}
		remaining := time.Until(deadline)
		if remaining < 10*time.Millisecond {
			remaining = 10 * time.Millisecond // first attempt always gets a slice
		}
		var err error
		callErr := op.Do(g.nodes[li], g.cfg.WriteCost, opts, func() error {
			_, err = g.rafts[li].ProposeTimeout(payload, remaining)
			return nil
		})
		if callErr != nil {
			if retryable(callErr) {
				lastErr = callErr
				continue
			}
			return callErr
		}
		if err == nil {
			return nil
		}
		if retryable(err) {
			// Leadership moved (or the old leader crashed or was cut
			// off): find the new leader and retry. Commands are
			// idempotent at the state-machine level (puts/deletes of
			// specific entries).
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return err
	}
	return fmt.Errorf("indexnode propose: %w: %w", types.ErrUnavailable, lastErr)
}

// KillLeader crash-stops the current leader replica (failure injection;
// returns false if no leader). The remaining voters elect a new leader
// and service continues.
func (g *Group) KillLeader() bool {
	li := g.leaderIndex()
	if li < 0 {
		return false
	}
	g.rafts[li].Stop()
	return true
}

// AddDir replicates a new directory's access entry (mkdir commit);
// parentPath feeds the write-heat sketch.
func (g *Group) AddDir(op *rpc.Op, pid types.InodeID, name string, id types.InodeID, perm types.Perm, parentPath string) error {
	g.writeHeat.Record(parentPath)
	return g.propose(op, Cmd{Kind: CmdAddDir, Pid: pid, Name: name, ID: id, Perm: perm})
}

// RemoveDir replicates a directory removal (rmdir commit); path drives
// the exact-entry cache invalidation.
func (g *Group) RemoveDir(op *rpc.Op, pid types.InodeID, name string, id types.InodeID, path string) error {
	g.writeHeat.Record(pathutil.Dir(path))
	return g.propose(op, Cmd{Kind: CmdRemoveDir, Pid: pid, Name: name, ID: id, Path: path})
}

// SetPerm replicates a permission change; path drives subtree cache
// invalidation on every replica.
func (g *Group) SetPerm(op *rpc.Op, id types.InodeID, perm types.Perm, path string) error {
	g.writeHeat.Record(path)
	return g.propose(op, Cmd{Kind: CmdSetPerm, ID: id, Perm: perm, Path: path})
}

// PrepareRename runs Figure 9 steps 1–7 on the leader in one RPC.
// Leadership churn and fabric-level losses are retried within the retry
// window; application errors (lock conflicts, loops) return immediately.
func (g *Group) PrepareRename(op *rpc.Op, srcPath, dstParentPath, dstName, lockID string) (RenamePrep, error) {
	var prep RenamePrep
	var lastErr error
	opts := g.callOpts()
	deadline := time.Now().Add(g.cfg.RetryWindow)
	for attempt := 0; attempt == 0 || time.Now().Before(deadline); attempt++ {
		li := g.leaderIndex()
		if li < 0 {
			time.Sleep(5 * time.Millisecond)
			lastErr = types.ErrNotLeader
			continue
		}
		rep, rf, node := g.replicas[li], g.rafts[li], g.nodes[li]
		var err error
		callErr := op.Do(node, 0, opts, func() error {
			cerr := rf.ConsistentRead(func() error {
				prep, err = rep.PrepareRename(srcPath, dstParentPath, dstName, lockID)
				node.Charge(g.lookupCost(prep.Levels))
				return nil
			})
			if cerr != nil {
				err = cerr
			}
			return nil
		})
		if callErr != nil {
			if retryable(callErr) {
				lastErr = callErr
				continue
			}
			return prep, callErr
		}
		if err != nil && retryable(err) {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return prep, err
	}
	return prep, fmt.Errorf("indexnode prepare rename: %w: %w", types.ErrUnavailable, lastErr)
}

// CommitRename replicates the rename through Raft: every replica moves
// the entry, clears the lock (leader), and invalidates its cache under
// the source path.
func (g *Group) CommitRename(op *rpc.Op, prep RenamePrep, dstName, srcPath, lockID string) error {
	g.writeHeat.Record(pathutil.Dir(srcPath))
	return g.propose(op, Cmd{
		Kind: CmdRename,
		Pid:  prep.SrcPid, Name: prep.SrcName, ID: prep.SrcID, Perm: prep.SrcPerm,
		DstPid: prep.DstPid, DstName: dstName,
		Path: srcPath, LockID: lockID,
	})
}

// AbortRename unwinds a prepared rename on the leader (one RPC).
func (g *Group) AbortRename(op *rpc.Op, srcID types.InodeID, srcPath, lockID string) error {
	li := g.leaderIndex()
	if li < 0 {
		return types.ErrNotLeader
	}
	return op.Do(g.nodes[li], g.cfg.WriteCost, g.callOpts(), func() error {
		g.replicas[li].AbortRename(srcID, srcPath, lockID)
		return nil
	})
}

// CacheStats aggregates TopDirPathCache statistics across replicas.
func (g *Group) CacheStats() (entries int, bytes int64, hits, misses int64) {
	for _, rep := range g.replicas {
		entries += rep.cache.Len()
		bytes += rep.cache.MemoryBytes()
		h, m := rep.cache.Stats()
		hits += h
		misses += m
	}
	return
}

// CoalescedWalks aggregates, across replicas, how many lookups shared
// another lookup's in-flight IndexTable walk (singleflight joiners).
func (g *Group) CoalescedWalks() int64 {
	var n int64
	for _, rep := range g.replicas {
		n += rep.CoalescedLookups()
	}
	return n
}

// Rafts exposes the group's raft replicas (stats and failure injection in
// tests and tools).
func (g *Group) Rafts() []*raft.Raft { return g.rafts }

// RaftBatchStats sums the write-batching counters across the group's
// replicas (appends and flush reasons accrue on whichever replica led).
func (g *Group) RaftBatchStats() raft.BatchStats {
	var out raft.BatchStats
	for _, r := range g.rafts {
		s := r.MetricsRef().Batch()
		out.Syncs += s.Syncs
		out.Appends += s.Appends
		out.Proposals += s.Proposals
		out.BatchBytes += s.BatchBytes
		out.FlushIdle += s.FlushIdle
		out.FlushTimer += s.FlushTimer
		out.FlushCount += s.FlushCount
		out.FlushBytes += s.FlushBytes
	}
	return out
}

// MemberIDs returns the replica identifiers (raft IDs, which are also
// the netsim node names) — the handles fault injectors partition on.
func (g *Group) MemberIDs() []string {
	ids := make([]string, len(g.rafts))
	for i, r := range g.rafts {
		ids[i] = r.ID()
	}
	return ids
}

// FallbackReads counts lookups served from local replica state because a
// consistent read point was unobtainable (DegradedReads mode).
func (g *Group) FallbackReads() int64 { return g.fallbacks.Load() }

// ProposeLatency returns the group-wide raft-propose latency histogram
// (enqueue → applied, shared across replicas).
func (g *Group) ProposeLatency() *metrics.Latency { return g.proposeLat }
