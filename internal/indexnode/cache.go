package indexnode

import (
	"sync"
	"sync/atomic"

	"mantle/internal/pathutil"
	"mantle/internal/types"
)

// CacheEntry is a TopDirPathCache value: the resolution result for a
// truncated path prefix — the directory's ID and the aggregated
// permission mask of the whole prefix, intersected per the Lazy-Hybrid
// approach (§5.1.1).
type CacheEntry struct {
	ID   types.InodeID
	Perm types.Perm
}

// TopDirPathCache is the in-memory hash table mapping full path prefixes
// to their resolution results (Figure 6). Entries are static — there is
// no promotion, demotion, or eviction policy; stale entries are removed
// only by the Invalidator. The k-truncation rule (callers cache only
// prefixes ending at least k levels above the leaf) keeps the cached
// region of the namespace stable, because production renames concentrate
// near the leaves.
type TopDirPathCache struct {
	stripes [cacheStripes]cacheStripe
	hits    atomic.Int64
	misses  atomic.Int64
}

const cacheStripes = 64

type cacheStripe struct {
	mu sync.RWMutex
	m  map[string]CacheEntry
}

// NewTopDirPathCache creates an empty cache.
func NewTopDirPathCache() *TopDirPathCache {
	c := &TopDirPathCache{}
	for i := range c.stripes {
		c.stripes[i].m = make(map[string]CacheEntry)
	}
	return c
}

func (c *TopDirPathCache) stripeFor(path string) *cacheStripe {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return &c.stripes[h%cacheStripes]
}

// Get returns the cached resolution of prefix.
func (c *TopDirPathCache) Get(prefix string) (CacheEntry, bool) {
	s := c.stripeFor(prefix)
	s.mu.RLock()
	e, ok := s.m[prefix]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Put stores the resolution of prefix. A fresh key is interned: callers
// pass prefixes sliced from request paths (TruncateRel), and a map key
// that is a substring would pin the whole path for the cache entry's
// lifetime. Existing keys are left alone — Go maps keep the original
// key string on overwrite.
func (c *TopDirPathCache) Put(prefix string, e CacheEntry) {
	s := c.stripeFor(prefix)
	s.mu.Lock()
	if _, ok := s.m[prefix]; !ok {
		prefix = pathutil.Intern(prefix)
	}
	s.m[prefix] = e
	s.mu.Unlock()
}

// Delete removes prefix, reporting whether it was present.
func (c *TopDirPathCache) Delete(prefix string) bool {
	s := c.stripeFor(prefix)
	s.mu.Lock()
	_, ok := s.m[prefix]
	delete(s.m, prefix)
	s.mu.Unlock()
	return ok
}

// Len returns the number of cached prefixes.
func (c *TopDirPathCache) Len() int {
	n := 0
	for i := range c.stripes {
		c.stripes[i].mu.RLock()
		n += len(c.stripes[i].m)
		c.stripes[i].mu.RUnlock()
	}
	return n
}

// Stats returns cumulative hit/miss counts.
func (c *TopDirPathCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// MemoryBytes estimates the cache's memory footprint: per entry, the
// path string plus the 16-byte value and map overhead. Used by the
// Figure 18 k-sweep.
func (c *TopDirPathCache) MemoryBytes() int64 {
	var total int64
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.RLock()
		for k := range s.m {
			total += int64(len(k)) + 16 + 32
		}
		s.mu.RUnlock()
	}
	return total
}
