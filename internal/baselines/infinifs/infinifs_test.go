package infinifs

import (
	"testing"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/conformance"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: true}, func(t *testing.T) api.Service {
		return New(Config{Store: dbtable.Config{Shards: 4}})
	})
}

func TestConformanceWithAMCache(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: true}, func(t *testing.T) api.Service {
		return New(Config{Store: dbtable.Config{Shards: 4}, AMCache: true})
	})
}

func TestParallelLookupRPCCount(t *testing.T) {
	s := New(Config{Store: dbtable.Config{Shards: 4}})
	defer s.Stop()
	if err := conformance.MkdirAll(s, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	op := s.Caller().Begin()
	if _, err := s.Lookup(op, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	// Parallel resolution issues the same number of RPCs as sequential
	// (the paper's point: it does not reduce RPC count, only overlaps
	// latency).
	if op.RTTs() != 5 {
		t.Fatalf("lookup RTTs = %d, want 5", op.RTTs())
	}
}

func TestAMCacheHitSkipsRPCs(t *testing.T) {
	s := New(Config{Store: dbtable.Config{Shards: 4}, AMCache: true})
	defer s.Stop()
	if err := conformance.MkdirAll(s, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	op1 := s.Caller().Begin()
	if _, err := s.Lookup(op1, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	op2 := s.Caller().Begin()
	if _, err := s.Lookup(op2, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if op2.RTTs() != 0 {
		t.Fatalf("cached lookup RTTs = %d, want 0", op2.RTTs())
	}
	// Rename invalidates the cached subtree.
	if err := conformance.MkdirAll(s, "/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DirRename(s.Caller().Begin(), "/a/b", "/dst/b2"); err != nil {
		t.Fatal(err)
	}
	op3 := s.Caller().Begin()
	if _, err := s.Lookup(op3, "/dst/b2/c"); err != nil {
		t.Fatal(err)
	}
	if op3.RTTs() == 0 {
		t.Fatal("lookup served stale cache after rename")
	}
}
