// Package infinifs re-implements the InfiniFS-style metadata service the
// paper compares against (§6.1): speculative parallel path resolution
// (every level queried concurrently using predicted ancestor
// identities), the CFS two-single-shard-transaction strategy for
// directory mutations (avoiding distributed-transaction aborts on simple
// ops), a dedicated rename coordinator node for loop detection, and a
// distributed transaction for cross-directory renames (which collapses
// under destination contention, as Figure 14's dirrename-s shows).
// An optional AM-Cache — the proxy-side metadata cache evaluated in
// Figure 20 — short-circuits resolution for cached directory paths.
package infinifs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/radix"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/trace"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// Config parameterises the service.
type Config struct {
	// Store configures the underlying DBtable shards.
	Store dbtable.Config
	// Fabric supplies RPC latency.
	Fabric *netsim.Fabric
	// CoordWorkers / CoordCost model the rename coordinator node.
	CoordWorkers int
	CoordCost    time.Duration
	// AMCache enables the proxy-side metadata cache (Figure 20).
	AMCache bool
}

// Service is the InfiniFS-style baseline. Implements api.Service.
type Service struct {
	store  *dbtable.Store
	caller *rpc.Caller
	coord  *coordinator
	uuidSq atomic.Uint64

	amCache *amCache
}

var _ api.Service = (*Service)(nil)

// New builds the service.
func New(cfg Config) *Service {
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	cfg.Store.Fabric = cfg.Fabric
	if cfg.Store.Name == "" {
		cfg.Store.Name = "infinifs"
	}
	if cfg.CoordCost <= 0 {
		cfg.CoordCost = 20 * time.Microsecond
	}
	s := &Service{
		store:  dbtable.New(cfg.Store),
		caller: rpc.NewCaller(cfg.Fabric),
		coord: &coordinator{
			node:  netsim.NewNode("infinifs-rename-coord", cfg.CoordWorkers),
			cost:  cfg.CoordCost,
			locks: make(map[types.InodeID]string),
		},
	}
	if cfg.AMCache {
		s.amCache = newAMCache()
	}
	return s
}

// Name implements api.Service.
func (s *Service) Name() string { return "infinifs" }

// Caller implements api.Service.
func (s *Service) Caller() *rpc.Caller { return s.caller }

// Store exposes the substrate.
func (s *Service) Store() *dbtable.Store { return s.store }

// Stop implements api.Service.
func (s *Service) Stop() {}

// resolve resolves a directory path: AM-Cache hit, else parallel
// speculative resolution (with cache fill).
func (s *Service) resolve(op *rpc.Op, dirPath string) (types.Entry, types.Perm, error) {
	ctx, sp := trace.Start(op.Context(), "path-resolve")
	sp.SetAttr("mode", "parallel")
	defer sp.End()
	if s.amCache != nil {
		if e, perm, ok := s.amCache.get(dirPath); ok {
			sp.SetAttr("cache", "am-hit")
			return e, perm, nil
		}
	}
	e, perm, err := s.store.ResolvePathParallel(op.WithContext(ctx), dirPath)
	if err == nil && s.amCache != nil {
		s.amCache.put(dirPath, e, perm)
	}
	return e, perm, err
}

// Lookup implements api.Service.
func (s *Service) Lookup(op *rpc.Op, dirPath string) (types.Result, error) {
	t := api.NewTimer()
	e, perm, err := s.resolve(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	e.Perm = perm
	return t.Done(op, 0, e), nil
}

func parentRowKey(e types.Entry) types.Key {
	if e.ID == types.RootID {
		return dbtable.RootKey()
	}
	return types.Key{Pid: e.Pid, Name: e.Name}
}

// Create implements api.Service: CFS strategy — txn1 inserts the object
// row; txn2 atomically updates the parent's attribute row. Both are
// single-shard, so contention never aborts, it only serialises on the
// atomic update.
func (s *Service) Create(op *rpc.Op, objPath string, size int64) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	parent, perm, err := s.resolve(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("create %s: %w", objPath, types.ErrPermission)
	}
	entry := types.Entry{
		Pid: parent.ID, Name: name, ID: s.store.NewID(), Kind: types.KindObject,
		Perm: types.PermAll, Attr: types.Attr{Size: size, MTime: time.Now()},
	}
	err = s.store.ApplyAtomic(op, s.store.NewTxnID(), parent.ID, nil, []storage.Mutation{{
		Kind: storage.MutPut, Key: types.Key{Pid: parent.ID, Name: name},
		Entry: entry, IfAbsent: true,
	}})
	if err == nil {
		pk := parentRowKey(parent)
		err = s.store.ApplyAtomic(op, s.store.NewTxnID(), pk.Pid, nil, []storage.Mutation{{
			Kind: storage.MutDeltaAttr, Key: pk,
			Delta: storage.AttrDelta{LinkCount: 1, Size: size}, MustExist: true,
		}})
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// Delete implements api.Service.
func (s *Service) Delete(op *rpc.Op, objPath string) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	parent, perm, err := s.resolve(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("delete %s: %w", objPath, types.ErrPermission)
	}
	err = s.store.ApplyAtomic(op, s.store.NewTxnID(), parent.ID, nil, []storage.Mutation{{
		Kind: storage.MutDelete, Key: types.Key{Pid: parent.ID, Name: name},
		MustExist: true, WantKind: types.KindObject,
	}})
	if err == nil {
		pk := parentRowKey(parent)
		err = s.store.ApplyAtomic(op, s.store.NewTxnID(), pk.Pid, nil, []storage.Mutation{{
			Kind: storage.MutDeltaAttr, Key: pk,
			Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
		}})
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), err
}

// ObjStat implements api.Service. InfiniFS resolves the object's own
// metadata within the parallel lookup round (the paper notes it bypasses
// the execute phase for objstat), so the final component's query is part
// of the fan-out.
func (s *Service) ObjStat(op *rpc.Op, objPath string) (types.Result, error) {
	t := api.NewTimer()
	e, perm, err := s.resolveObject(op, objPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("objstat %s: %w", objPath, types.ErrPermission)
	}
	if e.IsDir() {
		return t.Done(op, 0, e), fmt.Errorf("objstat %s: %w", objPath, types.ErrIsDir)
	}
	return t.Done(op, 0, e), nil
}

// resolveObject resolves a full object path in one parallel round: the
// directory chain plus the object row itself.
func (s *Service) resolveObject(op *rpc.Op, objPath string) (types.Entry, types.Perm, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	if s.amCache != nil {
		if pe, perm, ok := s.amCache.get(dir); ok {
			e, err := s.store.ResolveStep(op, pe.ID, name)
			return e, perm, err
		}
	}
	pe, perm, err := s.store.ResolvePathParallel(op, dir)
	if err != nil {
		return types.Entry{}, 0, err
	}
	if s.amCache != nil {
		s.amCache.put(dir, pe, perm)
	}
	e, err := s.store.ResolveStep(op, pe.ID, name)
	return e, perm, err
}

// DirStat implements api.Service.
func (s *Service) DirStat(op *rpc.Op, dirPath string) (types.Result, error) {
	t := api.NewTimer()
	e, perm, err := s.store.ResolvePathParallel(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	_ = perm
	return t.Done(op, 0, e), nil
}

// ReadDir implements api.Service.
func (s *Service) ReadDir(op *rpc.Op, dirPath string) (types.Result, []types.Entry, error) {
	t := api.NewTimer()
	e, perm, err := s.resolve(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), nil, err
	}
	if !perm.Allows(types.PermLookup | types.PermRead) {
		return t.Done(op, 0, types.Entry{}), nil, fmt.Errorf("readdir %s: %w", dirPath, types.ErrPermission)
	}
	entries, err := s.store.ScanChildren(op, e.ID)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), entries, err
}

// Mkdir implements api.Service: CFS two single-shard transactions.
func (s *Service) Mkdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	pe, perm, err := s.resolve(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("mkdir %s: %w", dirPath, types.ErrPermission)
	}
	entry := types.Entry{
		Pid: pe.ID, Name: name, ID: s.store.NewID(), Kind: types.KindDir,
		Perm: types.PermAll, Attr: types.Attr{MTime: time.Now()},
	}
	err = s.store.ApplyAtomic(op, s.store.NewTxnID(), pe.ID, nil, []storage.Mutation{{
		Kind: storage.MutPut, Key: types.Key{Pid: pe.ID, Name: name},
		Entry: entry, IfAbsent: true,
	}})
	if err == nil {
		pk := parentRowKey(pe)
		err = s.store.ApplyAtomic(op, s.store.NewTxnID(), pk.Pid, nil, []storage.Mutation{{
			Kind: storage.MutDeltaAttr, Key: pk,
			Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
		}})
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// Rmdir implements api.Service: an emptiness-guarded delete (2PC across
// the child-range shard and the row shard when they differ) plus the
// atomic parent update.
func (s *Service) Rmdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	pe, perm, err := s.resolve(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rmdir %s: %w", dirPath, types.ErrPermission)
	}
	de, err := s.store.ResolveStep(op, pe.ID, name)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), err
	}
	if !de.IsDir() {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rmdir %s: %w", dirPath, types.ErrNotDir)
	}
	rowShard := s.store.ShardFor(pe.ID)
	childShard := s.store.ShardFor(de.ID)
	retries, err := s.store.RunTxn(op, func(int) ([]txn.Piece, error) {
		rowPiece := txn.Piece{
			P: rowShard,
			Muts: []storage.Mutation{{
				Kind: storage.MutDelete, Key: types.Key{Pid: pe.ID, Name: name}, MustExist: true,
			}},
		}
		guard := storage.Guard{
			Kind:  storage.GuardRangeEmpty,
			Key:   types.Key{Pid: de.ID, Name: ""},
			KeyHi: types.Key{Pid: de.ID + 1, Name: ""},
		}
		if rowShard == childShard {
			rowPiece.Guards = append(rowPiece.Guards, guard)
			return []txn.Piece{rowPiece}, nil
		}
		return []txn.Piece{rowPiece, {P: childShard, Guards: []storage.Guard{guard}}}, nil
	})
	if err == nil {
		pk := parentRowKey(pe)
		err = s.store.ApplyAtomic(op, s.store.NewTxnID(), pk.Pid, nil, []storage.Mutation{{
			Kind: storage.MutDeltaAttr, Key: pk,
			Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
		}})
	}
	if err == nil && s.amCache != nil {
		s.amCache.invalidate(dirPath)
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// DirRename implements api.Service: loop detection on the dedicated
// rename coordinator (one RPC), then a distributed transaction spanning
// the source and destination parents' shards with in-place attribute
// updates — the contended path that collapses in dirrename-s.
func (s *Service) DirRename(op *rpc.Op, srcPath, dstPath string) (types.Result, error) {
	srcParent, srcName := pathutil.Dir(srcPath), pathutil.Base(srcPath)
	dstParent, dstName := pathutil.Dir(dstPath), pathutil.Base(dstPath)
	uuid := fmt.Sprintf("inf-%d", s.uuidSq.Add(1))
	t := api.NewTimer()
	spe, sperm, err := s.resolve(op, srcParent)
	if err != nil {
		t.Phase(types.PhaseLookup)
		return t.Done(op, 0, types.Entry{}), err
	}
	dpe, dperm, err := s.resolve(op, dstParent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !sperm.Allows(types.PermWrite) || !dperm.Allows(types.PermWrite) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rename %s: %w", srcPath, types.ErrPermission)
	}
	se, err := s.store.ResolveStep(op, spe.ID, srcName)
	if err != nil {
		t.Phase(types.PhaseLookup)
		return t.Done(op, 0, types.Entry{}), err
	}
	if !se.IsDir() {
		t.Phase(types.PhaseLookup)
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rename %s: %w", srcPath, types.ErrNotDir)
	}

	// Loop detection + rename lock on the coordinator.
	if err := s.coord.prepare(op, se.ID, srcPath, dstParent, uuid); err != nil {
		t.Phase(types.PhaseLoopDetect)
		return t.Done(op, 0, types.Entry{}), err
	}
	t.Phase(types.PhaseLoopDetect)
	defer s.coord.release(se.ID, uuid)

	moved := se
	moved.Pid = dpe.ID
	moved.Name = dstName
	srcShard := s.store.ShardFor(spe.ID)
	dstShard := s.store.ShardFor(dpe.ID)
	sk, dk := parentRowKey(spe), parentRowKey(dpe)
	skShard, dkShard := s.store.ShardFor(sk.Pid), s.store.ShardFor(dk.Pid)
	retries, err := s.store.RunTxn(op, func(int) ([]txn.Piece, error) {
		byShard := map[*txn.Participant]*txn.Piece{}
		add := func(p *txn.Participant, g []storage.Guard, m []storage.Mutation) {
			piece, ok := byShard[p]
			if !ok {
				piece = &txn.Piece{P: p}
				byShard[p] = piece
			}
			piece.Guards = append(piece.Guards, g...)
			piece.Muts = append(piece.Muts, m...)
		}
		add(srcShard, nil, []storage.Mutation{{
			Kind: storage.MutDelete, Key: types.Key{Pid: spe.ID, Name: srcName}, MustExist: true,
		}})
		add(dstShard, nil, []storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: dpe.ID, Name: dstName},
			Entry: moved, IfAbsent: true,
		}})
		if spe.ID != dpe.ID {
			add(skShard, nil, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: sk,
				Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
			}})
			add(dkShard, nil, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: dk,
				Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
			}})
		}
		pieces := make([]txn.Piece, 0, len(byShard))
		for _, p := range byShard {
			pieces = append(pieces, *p)
		}
		return pieces, nil
	})
	if err == nil && s.amCache != nil {
		s.amCache.invalidate(srcPath)
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// Populate implements api.Service.
func (s *Service) Populate(dirs []api.PopDir, objects []api.PopObject) error {
	return dbtable.Populate(s.store, dirs, objects)
}

// coordinator is InfiniFS's dedicated rename coordination node: it
// serialises rename lock acquisition and performs loop detection by
// walking the destination's ancestor chain.
type coordinator struct {
	node *netsim.Node
	cost time.Duration

	mu    sync.Mutex
	locks map[types.InodeID]string
}

func (c *coordinator) prepare(op *rpc.Op, srcID types.InodeID, srcPath, dstParentPath, uuid string) error {
	return op.Call(c.node, c.cost, func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if holder, held := c.locks[srcID]; held && holder != uuid {
			return fmt.Errorf("rename coord: src %d locked: %w", srcID, types.ErrLocked)
		}
		// Loop detection: the rename loops iff the source is an ancestor
		// of (or equal to) the destination parent. The real coordinator
		// walks its directory index; the proxy supplies both resolved
		// paths here, so the ancestor test is a path comparison with the
		// same outcome.
		if pathutil.IsAncestor(srcPath, dstParentPath, true) {
			return fmt.Errorf("rename coord: %s under %s: %w", srcPath, dstParentPath, types.ErrLoop)
		}
		c.locks[srcID] = uuid
		return nil
	})
}

func (c *coordinator) release(srcID types.InodeID, uuid string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if holder, held := c.locks[srcID]; held && holder == uuid {
		delete(c.locks, srcID)
	}
}

// amCache is the proxy-side AM-Cache: directory path → resolution
// result, with subtree invalidation on rename/rmdir.
type amCache struct {
	mu     sync.RWMutex
	m      map[string]amEntry
	prefix *radix.Tree
	hits   atomic.Int64
}

type amEntry struct {
	e    types.Entry
	perm types.Perm
}

func newAMCache() *amCache {
	return &amCache{m: make(map[string]amEntry), prefix: radix.New()}
}

func (c *amCache) get(path string) (types.Entry, types.Perm, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ent, ok := c.m[pathutil.Clean(path)]
	if ok {
		c.hits.Add(1)
	}
	return ent.e, ent.perm, ok
}

func (c *amCache) put(path string, e types.Entry, perm types.Perm) {
	path = pathutil.Clean(path)
	if path == "/" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[path] = amEntry{e: e, perm: perm}
	c.prefix.Insert(path)
}

func (c *amCache) invalidate(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.prefix.RemoveSubtree(pathutil.Clean(path)) {
		delete(c.m, p)
	}
}
