package dbtable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/api"
	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

func testStore(t *testing.T) (*Store, *rpc.Caller) {
	t.Helper()
	s := New(Config{Shards: 4})
	return s, rpc.NewCaller(netsim.NewLocalFabric())
}

// seed builds /a/b with one object o under b, returning (aID, bID).
func seed(t *testing.T, s *Store) (types.InodeID, types.InodeID) {
	t.Helper()
	a, b := s.NewID(), s.NewID()
	dirs := []api.PopDir{
		{Path: "/a", ID: a, Pid: types.RootID},
		{Path: "/a/b", ID: b, Pid: a},
	}
	objs := []api.PopObject{{Pid: b, Name: "o", Size: 42}}
	if err := Populate(s, dirs, objs); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestResolvePathSequential(t *testing.T) {
	s, caller := testStore(t)
	_, b := seed(t, s)
	op := caller.Begin()
	e, perm, err := s.ResolvePath(op, "/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != b || !perm.Allows(types.PermAll) {
		t.Fatalf("resolve = %+v perm=%v", e, perm)
	}
	// One RPC per component.
	if op.RTTs() != 2 {
		t.Fatalf("RTTs = %d", op.RTTs())
	}
	// Root resolves with zero RPCs.
	rop := caller.Begin()
	root, _, err := s.ResolvePath(rop, "/")
	if err != nil || root.ID != types.RootID || rop.RTTs() != 0 {
		t.Fatalf("root = %+v rtts=%d err=%v", root, rop.RTTs(), err)
	}
	// Missing component.
	if _, _, err := s.ResolvePath(caller.Begin(), "/a/zzz"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	// Resolving through an object fails with NotDir.
	if _, _, err := s.ResolvePath(caller.Begin(), "/a/b/o/deeper"); !errors.Is(err, types.ErrNotDir) {
		t.Fatalf("through object: %v", err)
	}
}

func TestResolvePathParallelMatchesSequential(t *testing.T) {
	s, caller := testStore(t)
	seed(t, s)
	seqE, seqPerm, err1 := s.ResolvePath(caller.Begin(), "/a/b")
	parE, parPerm, err2 := s.ResolvePathParallel(caller.Begin(), "/a/b")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if seqE.ID != parE.ID || seqPerm != parPerm {
		t.Fatalf("parallel %+v/%v != sequential %+v/%v", parE, parPerm, seqE, seqPerm)
	}
	// Same RPC count (the paper's point about parallel resolving).
	opSeq, opPar := caller.Begin(), caller.Begin()
	_, _, _ = s.ResolvePath(opSeq, "/a/b")
	_, _, _ = s.ResolvePathParallel(opPar, "/a/b")
	if opSeq.RTTs() != opPar.RTTs() {
		t.Fatalf("RTTs differ: seq %d par %d", opSeq.RTTs(), opPar.RTTs())
	}
	// Errors agree too.
	_, _, errSeq := s.ResolvePath(caller.Begin(), "/a/missing/x")
	_, _, errPar := s.ResolvePathParallel(caller.Begin(), "/a/missing/x")
	if !errors.Is(errSeq, types.ErrNotFound) || !errors.Is(errPar, types.ErrNotFound) {
		t.Fatalf("errs: %v vs %v", errSeq, errPar)
	}
}

func TestPopulateLinkCounts(t *testing.T) {
	s, caller := testStore(t)
	a, b := seed(t, s)
	// /a holds 1 child (b); /a/b holds 1 object.
	ae, _, err := s.ResolvePath(caller.Begin(), "/a")
	if err != nil || ae.ID != a {
		t.Fatal(err)
	}
	if ae.Attr.LinkCount != 1 {
		t.Fatalf("/a links = %d", ae.Attr.LinkCount)
	}
	be, _, _ := s.ResolvePath(caller.Begin(), "/a/b")
	if be.Attr.LinkCount != 1 {
		t.Fatalf("/a/b links = %d", be.Attr.LinkCount)
	}
	_ = b
}

func TestApplyAtomicSerializesHotRow(t *testing.T) {
	s := New(Config{Shards: 2, AtomicCost: 2 * time.Millisecond})
	caller := rpc.NewCaller(netsim.NewLocalFabric())
	a, _ := seed(t, s)
	key := types.Key{Pid: types.RootID, Name: "a"}
	const n = 10
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.ApplyAtomic(caller.Begin(), fmt.Sprintf("t%d", i), types.RootID, nil,
				[]storage.Mutation{{
					Kind: storage.MutDeltaAttr, Key: key,
					Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
				}})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// The per-row pacer serialises the updates: n ops at 2ms each.
	if elapsed := time.Since(start); elapsed < (n-2)*2*time.Millisecond {
		t.Fatalf("atomic updates not serialised: %v", elapsed)
	}
	row, _ := s.ShardFor(types.RootID).Shard.Get(key)
	if row.Entry.Attr.LinkCount != n+1 { // +1 from seed
		t.Fatalf("links = %d", row.Entry.Attr.LinkCount)
	}
	_ = a
}

func TestScanChildrenCharged(t *testing.T) {
	s, caller := testStore(t)
	_, b := seed(t, s)
	op := caller.Begin()
	entries, err := s.ScanChildren(op, b)
	if err != nil || len(entries) != 1 || entries[0].Name != "o" {
		t.Fatalf("children = %v err=%v", entries, err)
	}
	if op.RTTs() != 1 {
		t.Fatalf("RTTs = %d", op.RTTs())
	}
}

func TestRunTxnRetriesOnConflict(t *testing.T) {
	s := New(Config{Shards: 2, RetryBase: time.Microsecond, RetryMax: time.Millisecond})
	caller := rpc.NewCaller(netsim.NewLocalFabric())
	seed(t, s)
	key := types.Key{Pid: types.RootID, Name: "a"}
	part := s.ShardFor(types.RootID)
	// Hold the row hostage, start a txn, release.
	if err := part.Shard.Prepare("holder", nil, []storage.Mutation{{
		Kind: storage.MutDeltaAttr, Key: key, Delta: storage.AttrDelta{LinkCount: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.RunTxn(caller.Begin(), func(int) ([]txn.Piece, error) {
			return []txn.Piece{{P: part, Muts: []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: key,
				Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
			}}}}, nil
		})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	part.Shard.Commit("holder")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s.Retries() == 0 {
		t.Fatal("no retries recorded")
	}
}
