package dbtable

import (
	"time"

	"mantle/internal/api"
	"mantle/internal/pathutil"
	"mantle/internal/storage"
	"mantle/internal/types"
)

// Populate bulk-loads a namespace into the store: directory and object
// rows with attribute metadata inline, plus parent link counts. Parents
// must precede children in dirs.
func Populate(s *Store, dirs []api.PopDir, objects []api.PopObject) error {
	entries := make([]types.Entry, 0, len(dirs)+len(objects))
	links := make(map[types.InodeID]int64)
	maxID := uint64(types.RootID)
	for _, d := range dirs {
		perm := d.Perm
		if perm == 0 {
			perm = types.PermAll
		}
		entries = append(entries, types.Entry{
			Pid: d.Pid, Name: pathutil.Base(d.Path), ID: d.ID,
			Kind: types.KindDir, Perm: perm, Attr: types.Attr{MTime: time.Now()},
		})
		links[d.Pid]++
		if uint64(d.ID) > maxID {
			maxID = uint64(d.ID)
		}
	}
	s.ReserveIDs(types.InodeID(maxID))
	for _, o := range objects {
		entries = append(entries, types.Entry{
			Pid: o.Pid, Name: o.Name, ID: s.NewID(), Kind: types.KindObject,
			Perm: types.PermAll, Attr: types.Attr{Size: o.Size, MTime: time.Now()},
		})
		links[o.Pid]++
	}
	if err := s.BulkInsert(entries); err != nil {
		return err
	}
	// Fold link counts into the directories' rows (keyed by the parent's
	// (pid, name), which we recover from the reverse of the dirs list;
	// the root uses its synthetic row).
	rowOf := make(map[types.InodeID]types.Key, len(dirs)+1)
	rowOf[types.RootID] = rootKey
	for _, d := range dirs {
		rowOf[d.ID] = types.Key{Pid: d.Pid, Name: pathutil.Base(d.Path)}
	}
	for id, n := range links {
		k, ok := rowOf[id]
		if !ok {
			continue
		}
		_ = s.ShardFor(k.Pid).Shard.Apply([]storage.Mutation{{
			Kind: storage.MutDeltaAttr, Key: k,
			Delta: storage.AttrDelta{LinkCount: n}, MustExist: true,
		}})
	}
	return nil
}
