// Package dbtable implements the DBtable-style metadata substrate that
// the paper's baseline systems are built on (§2.3, Figure 2): a single
// MetaTable sharded by parent directory ID, where a directory's
// attribute metadata lives in its parent's child row. Path resolution is
// a level-by-level traversal — one RPC per component — and directory
// mutations that touch a parent's row on another shard require
// distributed transactions (the legacy Baidu service and InfiniFS) or
// relaxed independent writes (the Tectonic re-implementation).
//
// The package also models the per-row serialisation that the paper
// attributes to baseline systems under contention: relaxed in-place
// updates of a hot row serialise on a row latch (Tectonic, LocoFS), and
// single-shard atomic updates serialise more cheaply (InfiniFS's CFS
// strategy). Both are expressed as per-row pacer nodes.
package dbtable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// Config parameterises a Store.
type Config struct {
	// Shards is the number of MetaTable shards.
	Shards int
	// Workers is the CPU worker count per shard node.
	Workers int
	// OpCost is the CPU service time per shard access.
	OpCost time.Duration
	// LatchCost is the serialised cost of a relaxed in-place update to a
	// hot row (Tectonic/LocoFS-style latch).
	LatchCost time.Duration
	// AtomicCost is the serialised cost of a single-shard atomic
	// increment (InfiniFS/CFS-style); cheaper than a latch-held update.
	AtomicCost time.Duration
	// Fabric supplies RPC latency.
	Fabric *netsim.Fabric
	// MaxRetries, RetryBase, RetryMax shape transactional retry.
	MaxRetries          int
	RetryBase, RetryMax time.Duration
	// Name prefixes shard node names.
	Name string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Fabric == nil {
		c.Fabric = netsim.NewLocalFabric()
	}
	if c.LatchCost <= 0 {
		c.LatchCost = 150 * time.Microsecond
	}
	if c.AtomicCost <= 0 {
		c.AtomicCost = 30 * time.Microsecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10000
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Microsecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Millisecond
	}
	if c.Name == "" {
		c.Name = "dbtable"
	}
	return c
}

// rootKey is the synthetic row holding the root directory's metadata
// (the root has no parent row otherwise).
var rootKey = types.Key{Pid: 0, Name: "/"}

// Store is a sharded DBtable MetaTable.
type Store struct {
	cfg    Config
	parts  []*txn.Participant
	nextID atomic.Uint64
	txnSeq atomic.Uint64

	// Per-row pacers modelling latch/atomic serialisation on hot rows.
	latchMu sync.Mutex
	latches map[types.Key]*netsim.Node

	retries atomic.Int64
}

// New creates a Store with an initialised root directory row.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		latches: make(map[types.Key]*netsim.Node),
	}
	s.nextID.Store(uint64(types.RootID))
	for i := 0; i < cfg.Shards; i++ {
		s.parts = append(s.parts, &txn.Participant{
			Shard: storage.NewShard(fmt.Sprintf("%s-%d", cfg.Name, i)),
			Node:  netsim.NewNode(fmt.Sprintf("%s-%d", cfg.Name, i), cfg.Workers),
			Cost:  cfg.OpCost,
		})
	}
	_ = s.ShardFor(0).Shard.Apply([]storage.Mutation{{
		Kind: storage.MutPut, Key: rootKey,
		Entry: types.Entry{
			Pid: 0, Name: "/", ID: types.RootID, Kind: types.KindDir,
			Perm: types.PermAll, Attr: types.Attr{MTime: time.Now()},
		},
	}})
	return s
}

// NewID allocates an inode ID.
func (s *Store) NewID() types.InodeID { return types.InodeID(s.nextID.Add(1)) }

// ReserveIDs advances the allocator past max (population).
func (s *Store) ReserveIDs(max types.InodeID) {
	for {
		cur := s.nextID.Load()
		if cur >= uint64(max) || s.nextID.CompareAndSwap(cur, uint64(max)) {
			return
		}
	}
}

// NewTxnID returns a unique transaction ID.
func (s *Store) NewTxnID() string {
	return fmt.Sprintf("%s-%d", s.cfg.Name, s.txnSeq.Add(1))
}

// Retries returns cumulative transactional retries.
func (s *Store) Retries() int64 { return s.retries.Load() }

// NoteRetry counts a retry (services call this from their retry loops).
func (s *Store) NoteRetry() { s.retries.Add(1) }

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// ShardFor maps a pid to its participant.
func (s *Store) ShardFor(pid types.InodeID) *txn.Participant {
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return s.parts[h%uint64(len(s.parts))]
}

// Participants returns all shards.
func (s *Store) Participants() []*txn.Participant { return s.parts }

// RowKey computes a directory or object's MetaTable key: its parent's ID
// and its name; the root uses the synthetic rootKey.
func RowKey(pid types.InodeID, name string) types.Key {
	return types.Key{Pid: pid, Name: name}
}

// RootKey returns the synthetic root row key.
func RootKey() types.Key { return rootKey }

// GetDirect reads a row without RPC charging (modelling helpers and
// population checks).
func (s *Store) GetDirect(k types.Key) (types.Entry, bool) {
	row, ok := s.ShardFor(k.Pid).Shard.Get(k)
	if !ok {
		return types.Entry{}, false
	}
	return row.Entry, true
}

// ResolveStep performs one charged RPC resolving (pid, name).
func (s *Store) ResolveStep(op *rpc.Op, pid types.InodeID, name string) (types.Entry, error) {
	p := s.ShardFor(pid)
	var out types.Entry
	err := op.Call(p.Node, p.Cost, func() error {
		row, ok := p.Shard.Get(types.Key{Pid: pid, Name: name})
		if !ok {
			return fmt.Errorf("resolve %d/%s: %w", pid, name, types.ErrNotFound)
		}
		out = row.Entry
		return nil
	})
	return out, err
}

// ResolvePath resolves an absolute directory path level by level — the
// multi-RPC traversal of Figure 2 — checking lookup permission at each
// traversed level. It returns the final entry and the aggregated path
// permission.
func (s *Store) ResolvePath(op *rpc.Op, path string) (types.Entry, types.Perm, error) {
	comps := pathutil.Split(path)
	cur := types.Entry{Pid: 0, Name: "/", ID: types.RootID, Kind: types.KindDir, Perm: types.PermAll}
	perm := types.PermAll
	for i, name := range comps {
		e, err := s.ResolveStep(op, cur.ID, name)
		if err != nil {
			return types.Entry{}, 0, err
		}
		if !e.IsDir() {
			return types.Entry{}, 0, fmt.Errorf("resolve %s at %q: %w", path, name, types.ErrNotDir)
		}
		perm = perm.Intersect(e.Perm)
		if i < len(comps)-1 && !perm.Allows(types.PermLookup) {
			return types.Entry{}, 0, fmt.Errorf("resolve %s at %q: %w", path, name, types.ErrPermission)
		}
		cur = e
	}
	return cur, perm, nil
}

// ResolvePathParallel resolves all levels concurrently — InfiniFS's
// speculative parallel resolution. The per-level queries are issued in
// one parallel round using predicted ancestor identities (the paper's
// hash-based prediction is modelled as always-correct: each level's
// query is addressed with the true parent ID, reproducing the RPC fan-out
// and queueing behaviour without the prediction bookkeeping; see
// DESIGN.md). Each level still costs one RPC, so the lookup's RPC count
// equals the sequential traversal's; only the latency overlaps.
func (s *Store) ResolvePathParallel(op *rpc.Op, path string) (types.Entry, types.Perm, error) {
	comps := pathutil.Split(path)
	if len(comps) == 0 {
		return types.Entry{Pid: 0, Name: "/", ID: types.RootID, Kind: types.KindDir, Perm: types.PermAll}, types.PermAll, nil
	}
	// Predict the ancestor chain (uncharged direct reads stand in for
	// hash-based ID prediction).
	pids := make([]types.InodeID, len(comps))
	pids[0] = types.RootID
	cur := types.RootID
	for i := 0; i < len(comps)-1; i++ {
		e, ok := s.GetDirect(types.Key{Pid: cur, Name: comps[i]})
		if !ok {
			// Prediction impossible (missing ancestor): fall back to the
			// sequential walk, which will produce the right error.
			return s.ResolvePath(op, path)
		}
		cur = e.ID
		pids[i+1] = cur
	}
	entries := make([]types.Entry, len(comps))
	calls := make([]func(*rpc.Op) error, len(comps))
	for i := range comps {
		i := i
		calls[i] = func(o *rpc.Op) error {
			e, err := s.ResolveStep(o, pids[i], comps[i])
			entries[i] = e
			return err
		}
	}
	if err := op.Parallel(calls); err != nil {
		return types.Entry{}, 0, err
	}
	// Validate the speculative chain and aggregate permissions.
	perm := types.PermAll
	for i, e := range entries {
		perm = perm.Intersect(e.Perm)
		if i < len(comps)-1 {
			if !e.IsDir() {
				return types.Entry{}, 0, fmt.Errorf("resolve %s: %w", path, types.ErrNotDir)
			}
			if !perm.Allows(types.PermLookup) {
				return types.Entry{}, 0, fmt.Errorf("resolve %s: %w", path, types.ErrPermission)
			}
			if e.ID != pids[i+1] {
				// Misprediction (concurrent rename): sequential fallback.
				return s.ResolvePath(op, path)
			}
		}
	}
	return entries[len(entries)-1], perm, nil
}

// rowPacer returns the per-row serialisation pacer for key, creating it
// on first use.
func (s *Store) rowPacer(k types.Key) *netsim.Node {
	s.latchMu.Lock()
	defer s.latchMu.Unlock()
	n, ok := s.latches[k]
	if !ok {
		n = netsim.NewNode(fmt.Sprintf("latch-%s", k), 1)
		s.latches[k] = n
	}
	return n
}

// ApplyRelaxed performs mutations on one shard without transactional
// locking (Tectonic's relaxed consistency): one RPC; in-place attribute
// updates additionally serialise on the row latch for latchCost.
func (s *Store) ApplyRelaxed(op *rpc.Op, pid types.InodeID, muts []storage.Mutation) error {
	p := s.ShardFor(pid)
	return op.Call(p.Node, p.Cost, func() error {
		for _, m := range muts {
			if m.Kind == storage.MutDeltaAttr {
				s.rowPacer(m.Key).Charge(s.cfg.LatchCost)
			}
		}
		return p.Shard.Apply(muts)
	})
}

// ApplyAtomic performs a single-shard transaction in one RPC with
// atomic-increment costing (the CFS strategy InfiniFS adopts): in-place
// attribute updates serialise at the cheaper AtomicCost.
func (s *Store) ApplyAtomic(op *rpc.Op, txnID string, pid types.InodeID,
	guards []storage.Guard, muts []storage.Mutation) error {
	p := s.ShardFor(pid)
	return op.Call(p.Node, p.Cost, func() error {
		for _, m := range muts {
			if m.Kind == storage.MutDeltaAttr {
				s.rowPacer(m.Key).Charge(s.cfg.AtomicCost)
			}
		}
		if err := p.Shard.Prepare(txnID, guards, muts); err != nil {
			return err
		}
		p.Shard.Commit(txnID)
		return nil
	})
}

// RunTxn executes a distributed transaction with retry-on-conflict, as
// the legacy DBtable service and InfiniFS renames do.
func (s *Store) RunTxn(op *rpc.Op, build func(attempt int) ([]txn.Piece, error)) (int, error) {
	wrapped := func(attempt int) ([]txn.Piece, error) {
		if attempt > 0 {
			s.retries.Add(1)
		}
		return build(attempt)
	}
	return txn.RunWithRetry(op, s.NewTxnID(), s.cfg.MaxRetries, s.cfg.RetryBase, s.cfg.RetryMax, wrapped)
}

// BulkInsert loads rows directly (population).
func (s *Store) BulkInsert(entries []types.Entry) error {
	for _, e := range entries {
		p := s.ShardFor(e.Pid)
		if err := p.Shard.Apply([]storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: e.Pid, Name: e.Name}, Entry: e,
		}}); err != nil {
			return err
		}
	}
	return nil
}

// TotalRows counts rows across shards.
func (s *Store) TotalRows() int {
	n := 0
	for _, p := range s.parts {
		n += p.Shard.Len()
	}
	return n
}

// ScanChildren lists a directory's children in one charged RPC.
func (s *Store) ScanChildren(op *rpc.Op, dir types.InodeID) ([]types.Entry, error) {
	p := s.ShardFor(dir)
	var out []types.Entry
	err := op.Call(p.Node, p.Cost, func() error {
		p.Shard.ScanChildren(dir, func(r storage.Row) bool {
			out = append(out, r.Entry)
			return true
		})
		return nil
	})
	return out, err
}
