// Package locofs re-implements the LocoFS-style tiered metadata service
// the paper compares against (§6.1, §3.3): directory metadata lives on a
// single dedicated directory server (path resolution is local — one
// proxy RPC — but there is no prefix cache and no follower read, so the
// node's CPU is the bottleneck), while object metadata lives in a
// sharded database. Directory-structure mutations replicate through a
// Raft group without log batching — the "throttled by the Raft
// throughput" behaviour of Figure 14 — and updates to the same key in
// the sub-directory list serialise on a per-key latch.
package locofs

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/raft"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/trace"
	"mantle/internal/types"
)

// Config parameterises the service.
type Config struct {
	// ObjStore configures the sharded object-metadata database.
	ObjStore dbtable.Config
	// Fabric supplies RPC latency.
	Fabric *netsim.Fabric
	// DirWorkers is the directory server's CPU worker count.
	DirWorkers int
	// ResolveBaseCost/ResolveLevelCost model local path resolution CPU
	// on the directory server (no cache: every level is walked).
	ResolveBaseCost  time.Duration
	ResolveLevelCost time.Duration
	// LatchCost is the serialised cost of updating the same directory
	// key concurrently.
	LatchCost time.Duration
	// FsyncCost is the Raft log sync cost (no batching in LocoFS).
	FsyncCost time.Duration
	// Voters is the directory server's Raft group size.
	Voters int
}

// Service is the LocoFS-style baseline. Implements api.Service.
type Service struct {
	cfg      Config
	objStore *dbtable.Store
	caller   *rpc.Caller
	rafts    []*raft.Raft
	states   []*dirState
	nodes    []*netsim.Node

	latchMu sync.Mutex
	latches map[types.Key]*netsim.Node

	idSeq atomic.Uint64
}

var _ api.Service = (*Service)(nil)

// New builds and starts the service.
func New(cfg Config) (*Service, error) {
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	cfg.ObjStore.Fabric = cfg.Fabric
	if cfg.ObjStore.Name == "" {
		cfg.ObjStore.Name = "locofs-obj"
	}
	if cfg.Voters <= 0 {
		cfg.Voters = 3
	}
	if cfg.LatchCost <= 0 {
		cfg.LatchCost = 120 * time.Microsecond
	}
	s := &Service{
		cfg:      cfg,
		objStore: dbtable.New(cfg.ObjStore),
		caller:   rpc.NewCaller(cfg.Fabric),
		latches:  make(map[types.Key]*netsim.Node),
	}
	s.idSeq.Store(uint64(types.RootID))
	raftCfgs := make([]raft.Config, cfg.Voters)
	for i := 0; i < cfg.Voters; i++ {
		st := newDirState()
		node := netsim.NewNode(fmt.Sprintf("locofs-dir-%d", i), cfg.DirWorkers)
		s.states = append(s.states, st)
		s.nodes = append(s.nodes, node)
		raftCfgs[i] = raft.Config{
			ID:              fmt.Sprintf("locofs-dir-%d", i),
			Fabric:          cfg.Fabric,
			Node:            node,
			ElectionTimeout: time.Second,
			FsyncCost:       cfg.FsyncCost,
			// LocoFS does not batch its directory-server log writes —
			// the paper attributes its mkdir throughput ceiling to this.
			BatchEnabled: false,
			SM:           st,
		}
	}
	s.rafts = raft.NewGroup(raftCfgs)
	if _, err := raft.WaitLeader(s.rafts, 10*time.Second); err != nil {
		s.Stop()
		return nil, err
	}
	return s, nil
}

// Name implements api.Service.
func (s *Service) Name() string { return "locofs" }

// Caller implements api.Service.
func (s *Service) Caller() *rpc.Caller { return s.caller }

// Stop implements api.Service.
func (s *Service) Stop() {
	for _, r := range s.rafts {
		r.Stop()
	}
}

func (s *Service) newID() types.InodeID { return types.InodeID(s.idSeq.Add(1)) }

func (s *Service) leader() (int, error) {
	for i, r := range s.rafts {
		if role, _, _ := r.Status(); role == raft.Leader {
			return i, nil
		}
	}
	return -1, types.ErrNotLeader
}

// rowLatch returns the per-key pacer serialising same-key updates.
func (s *Service) rowLatch(k types.Key) *netsim.Node {
	s.latchMu.Lock()
	defer s.latchMu.Unlock()
	n, ok := s.latches[k]
	if !ok {
		n = netsim.NewNode(fmt.Sprintf("locofs-latch-%s", k), 1)
		s.latches[k] = n
	}
	return n
}

// resolveCost is the directory server's CPU charge for a walk of levels.
func (s *Service) resolveCost(levels int) time.Duration {
	return s.cfg.ResolveBaseCost + time.Duration(levels)*s.cfg.ResolveLevelCost
}

// dirCall performs one RPC to the directory server leader, retrying
// briefly across elections.
func (s *Service) dirCall(op *rpc.Op, fn func(st *dirState, node *netsim.Node) error) error {
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for attempt := 0; attempt == 0 || time.Now().Before(deadline); attempt++ {
		li, err := s.leader()
		if err != nil {
			lastErr = err
			time.Sleep(time.Millisecond)
			continue
		}
		return op.Call(s.nodes[li], 0, func() error {
			return fn(s.states[li], s.nodes[li])
		})
	}
	return fmt.Errorf("locofs dir server: %w", lastErr)
}

// propose replicates a directory mutation through Raft.
func (s *Service) propose(c dirCmd) error {
	payload := c.encode()
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for attempt := 0; attempt == 0 || time.Now().Before(deadline); attempt++ {
		li, err := s.leader()
		if err != nil {
			lastErr = err
			time.Sleep(time.Millisecond)
			continue
		}
		if _, err := s.rafts[li].Propose(payload); err == nil {
			return nil
		} else if errors.Is(err, types.ErrNotLeader) {
			lastErr = err
			time.Sleep(time.Millisecond)
			continue
		} else {
			return err
		}
	}
	return fmt.Errorf("locofs propose: %w", lastErr)
}

// Lookup implements api.Service: one RPC; resolution is local to the
// directory server.
func (s *Service) Lookup(op *rpc.Op, dirPath string) (types.Result, error) {
	t := api.NewTimer()
	ctx, sp := trace.Start(op.Context(), "path-resolve")
	sp.SetAttr("mode", "dir-server-local")
	var out types.Entry
	err := s.dirCall(op.WithContext(ctx), func(st *dirState, node *netsim.Node) error {
		e, _, levels, err := st.resolve(dirPath)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		out = e.entry()
		return nil
	})
	sp.End()
	t.Phase(types.PhaseLookup)
	return t.Done(op, 0, out), err
}

// Create implements api.Service: the duplicate-name check and parent
// update go through the directory node (the cross-component coordination
// §3.3 calls out), then the object row is inserted in the object store.
func (s *Service) Create(op *rpc.Op, objPath string, size int64) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	var parentID types.InodeID
	var parentKey types.Key
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		e, perm, levels, err := st.resolve(dir)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermWrite | types.PermLookup) {
			return fmt.Errorf("create %s: %w", objPath, types.ErrPermission)
		}
		parentID = e.ID
		parentKey = types.Key{Pid: e.Pid, Name: e.Name}
		// Duplicate name check against the object store (the dir node
		// owns naming).
		if _, exists := s.objStore.GetDirect(types.Key{Pid: e.ID, Name: name}); exists {
			return fmt.Errorf("create %s: %w", objPath, types.ErrExists)
		}
		// Parent update: in-memory on the dir node, serialised per key.
		s.rowLatch(parentKey).Charge(s.cfg.LatchCost)
		st.bumpLink(parentID, 1)
		return nil
	})
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	entry := types.Entry{
		Pid: parentID, Name: name, ID: s.newID(), Kind: types.KindObject,
		Perm: types.PermAll, Attr: types.Attr{Size: size, MTime: time.Now()},
	}
	p := s.objStore.ShardFor(parentID)
	err = op.Call(p.Node, p.Cost, func() error {
		return p.Shard.Apply([]storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: parentID, Name: name},
			Entry: entry, IfAbsent: true,
		}})
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// Delete implements api.Service.
func (s *Service) Delete(op *rpc.Op, objPath string) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	var parentID types.InodeID
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		e, perm, levels, err := st.resolve(dir)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermWrite | types.PermLookup) {
			return fmt.Errorf("delete %s: %w", objPath, types.ErrPermission)
		}
		parentID = e.ID
		s.rowLatch(types.Key{Pid: e.Pid, Name: e.Name}).Charge(s.cfg.LatchCost)
		st.bumpLink(parentID, -1)
		return nil
	})
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	p := s.objStore.ShardFor(parentID)
	err = op.Call(p.Node, p.Cost, func() error {
		return p.Shard.Apply([]storage.Mutation{{
			Kind: storage.MutDelete, Key: types.Key{Pid: parentID, Name: name}, MustExist: true,
		}})
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), err
}

// ObjStat implements api.Service.
func (s *Service) ObjStat(op *rpc.Op, objPath string) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	var parentID types.InodeID
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		e, perm, levels, err := st.resolve(dir)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermLookup) {
			return fmt.Errorf("objstat %s: %w", objPath, types.ErrPermission)
		}
		parentID = e.ID
		return nil
	})
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	var out types.Entry
	p := s.objStore.ShardFor(parentID)
	err = op.Call(p.Node, p.Cost, func() error {
		row, ok := p.Shard.Get(types.Key{Pid: parentID, Name: name})
		if !ok {
			return fmt.Errorf("objstat %s: %w", objPath, types.ErrNotFound)
		}
		out = row.Entry
		return nil
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, out), err
}

// DirStat implements api.Service: one RPC; the directory server resolves
// the path during the execution phase (the paper's Figure 13 accounting
// for LocoFS directory operations).
func (s *Service) DirStat(op *rpc.Op, dirPath string) (types.Result, error) {
	t := api.NewTimer()
	var out types.Entry
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		e, _, levels, err := st.resolve(dirPath)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		out = e.entry()
		return nil
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, out), err
}

// ReadDir implements api.Service: subdirectories come from the directory
// server; objects from the object store.
func (s *Service) ReadDir(op *rpc.Op, dirPath string) (types.Result, []types.Entry, error) {
	t := api.NewTimer()
	var dirID types.InodeID
	var subdirs []types.Entry
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		e, perm, levels, err := st.resolve(dirPath)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermLookup | types.PermRead) {
			return fmt.Errorf("readdir %s: %w", dirPath, types.ErrPermission)
		}
		dirID = e.ID
		subdirs = st.children(e.ID)
		return nil
	})
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), nil, err
	}
	objs, err := s.objStore.ScanChildren(op, dirID)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), append(subdirs, objs...), err
}

// Mkdir implements api.Service: resolution on the directory server, then
// a Raft-replicated mutation — the unbatched log write that throttles
// LocoFS's directory throughput.
func (s *Service) Mkdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	id := s.newID()
	t := api.NewTimer()
	var entry types.Entry
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		pe, perm, levels, err := st.resolve(parent)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermWrite | types.PermLookup) {
			return fmt.Errorf("mkdir %s: %w", dirPath, types.ErrPermission)
		}
		if _, ok := st.get(pe.ID, name); ok {
			return fmt.Errorf("mkdir %s: %w", dirPath, types.ErrExists)
		}
		s.rowLatch(types.Key{Pid: pe.Pid, Name: pe.Name}).Charge(s.cfg.LatchCost)
		entry = types.Entry{
			Pid: pe.ID, Name: name, ID: id, Kind: types.KindDir,
			Perm: types.PermAll, Attr: types.Attr{MTime: time.Now()},
		}
		return s.propose(dirCmd{Kind: cmdMkdir, Pid: pe.ID, Name: name, ID: id, Perm: types.PermAll})
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// Rmdir implements api.Service.
func (s *Service) Rmdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		pe, perm, levels, err := st.resolve(parent)
		node.Charge(s.resolveCost(levels))
		if err != nil {
			return err
		}
		if !perm.Allows(types.PermWrite | types.PermLookup) {
			return fmt.Errorf("rmdir %s: %w", dirPath, types.ErrPermission)
		}
		de, ok := st.get(pe.ID, name)
		if !ok {
			return fmt.Errorf("rmdir %s: %w", dirPath, types.ErrNotFound)
		}
		if st.linkCount(de.ID) > 0 || st.subdirCount(de.ID) > 0 {
			return fmt.Errorf("rmdir %s: %w", dirPath, types.ErrNotEmpty)
		}
		s.rowLatch(types.Key{Pid: pe.Pid, Name: pe.Name}).Charge(s.cfg.LatchCost)
		return s.propose(dirCmd{Kind: cmdRmdir, Pid: pe.ID, Name: name, ID: de.ID})
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), err
}

// DirRename implements api.Service: resolution and loop detection are
// local to the directory server, then the rename replicates through the
// unbatched Raft log; same-key updates serialise on the latch.
func (s *Service) DirRename(op *rpc.Op, srcPath, dstPath string) (types.Result, error) {
	srcParent, srcName := pathutil.Dir(srcPath), pathutil.Base(srcPath)
	dstParent, dstName := pathutil.Dir(dstPath), pathutil.Base(dstPath)
	t := api.NewTimer()
	err := s.dirCall(op, func(st *dirState, node *netsim.Node) error {
		spe, sperm, slev, err := st.resolve(srcParent)
		if err != nil {
			node.Charge(s.resolveCost(slev))
			return err
		}
		dpe, dperm, dlev, err := st.resolve(dstParent)
		node.Charge(s.resolveCost(slev + dlev))
		if err != nil {
			return err
		}
		if !sperm.Allows(types.PermWrite) || !dperm.Allows(types.PermWrite) {
			return fmt.Errorf("rename %s: %w", srcPath, types.ErrPermission)
		}
		se, ok := st.get(spe.ID, srcName)
		if !ok {
			return fmt.Errorf("rename src %s: %w", srcPath, types.ErrNotFound)
		}
		if _, exists := st.get(dpe.ID, dstName); exists {
			return fmt.Errorf("rename dst %s: %w", dstPath, types.ErrExists)
		}
		// Loop detection: local ancestor walk, charged per level.
		levels, loop := st.wouldLoop(se.ID, dpe.ID)
		node.Charge(time.Duration(levels) * s.cfg.ResolveLevelCost)
		if loop {
			return fmt.Errorf("rename %s under %s: %w", srcPath, dstPath, types.ErrLoop)
		}
		s.rowLatch(types.Key{Pid: dpe.Pid, Name: dpe.Name}).Charge(s.cfg.LatchCost)
		return s.propose(dirCmd{
			Kind: cmdRename, Pid: spe.ID, Name: srcName, ID: se.ID, Perm: se.Perm,
			DstPid: dpe.ID, DstName: dstName,
		})
	})
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), err
}

// Populate implements api.Service.
func (s *Service) Populate(dirs []api.PopDir, objects []api.PopObject) error {
	maxID := uint64(types.RootID)
	for _, st := range s.states {
		st.bulkAdd(dirs)
	}
	entries := make([]types.Entry, 0, len(objects))
	for _, d := range dirs {
		if uint64(d.ID) > maxID {
			maxID = uint64(d.ID)
		}
	}
	for {
		cur := s.idSeq.Load()
		if cur >= maxID || s.idSeq.CompareAndSwap(cur, maxID) {
			break
		}
	}
	for _, o := range objects {
		entries = append(entries, types.Entry{
			Pid: o.Pid, Name: o.Name, ID: s.newID(), Kind: types.KindObject,
			Perm: types.PermAll, Attr: types.Attr{Size: o.Size},
		})
		for _, st := range s.states {
			st.bumpLink(o.Pid, 1)
		}
	}
	return s.objStore.BulkInsert(entries)
}

// --- directory server state machine ---

type cmdKind uint8

const (
	cmdMkdir cmdKind = iota + 1
	cmdRmdir
	cmdRename
)

type dirCmd struct {
	Kind    cmdKind
	Pid     types.InodeID
	Name    string
	ID      types.InodeID
	Perm    types.Perm
	DstPid  types.InodeID
	DstName string
}

func (c dirCmd) encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodeDirCmd(b []byte) dirCmd {
	var c dirCmd
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		panic(err)
	}
	return c
}

type dirEnt struct {
	Pid  types.InodeID
	Name string
	ID   types.InodeID
	Perm types.Perm
	Attr types.Attr
}

func (e *dirEnt) entry() types.Entry {
	return types.Entry{Pid: e.Pid, Name: e.Name, ID: e.ID, Kind: types.KindDir, Perm: e.Perm, Attr: e.Attr}
}

// dirState is one replica's in-memory directory tree.
type dirState struct {
	mu    sync.RWMutex
	byKey map[types.Key]*dirEnt
	byID  map[types.InodeID]*dirEnt
	links map[types.InodeID]int64 // object link counts (weakly consistent)
	nsubs map[types.InodeID]int   // subdirectory counts
}

func newDirState() *dirState {
	return &dirState{
		byKey: make(map[types.Key]*dirEnt),
		byID:  make(map[types.InodeID]*dirEnt),
		links: make(map[types.InodeID]int64),
		nsubs: make(map[types.InodeID]int),
	}
}

// Apply implements raft.StateMachine.
func (st *dirState) Apply(_ uint64, cmd []byte) {
	c := decodeDirCmd(cmd)
	st.mu.Lock()
	defer st.mu.Unlock()
	switch c.Kind {
	case cmdMkdir:
		e := &dirEnt{Pid: c.Pid, Name: c.Name, ID: c.ID, Perm: c.Perm,
			Attr: types.Attr{MTime: time.Now()}}
		st.byKey[types.Key{Pid: c.Pid, Name: c.Name}] = e
		st.byID[c.ID] = e
		st.nsubs[c.Pid]++
	case cmdRmdir:
		delete(st.byKey, types.Key{Pid: c.Pid, Name: c.Name})
		delete(st.byID, c.ID)
		delete(st.links, c.ID)
		delete(st.nsubs, c.ID)
		st.nsubs[c.Pid]--
	case cmdRename:
		k := types.Key{Pid: c.Pid, Name: c.Name}
		e, ok := st.byKey[k]
		if !ok {
			return
		}
		delete(st.byKey, k)
		e.Pid, e.Name = c.DstPid, c.DstName
		st.byKey[types.Key{Pid: c.DstPid, Name: c.DstName}] = e
		st.nsubs[c.Pid]--
		st.nsubs[c.DstPid]++
	}
}

func (st *dirState) get(pid types.InodeID, name string) (dirEnt, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	e, ok := st.byKey[types.Key{Pid: pid, Name: name}]
	if !ok {
		return dirEnt{}, false
	}
	return *e, true
}

// resolve walks path locally, returning the final entry, aggregated
// permission, and levels walked.
func (st *dirState) resolve(path string) (dirEnt, types.Perm, int, error) {
	comps := pathutil.Split(path)
	st.mu.RLock()
	defer st.mu.RUnlock()
	cur := dirEnt{ID: types.RootID, Perm: types.PermAll}
	perm := types.PermAll
	levels := 0
	for i, name := range comps {
		e, ok := st.byKey[types.Key{Pid: cur.ID, Name: name}]
		if !ok {
			return dirEnt{}, 0, levels, fmt.Errorf("locofs resolve %s at %q: %w", path, name, types.ErrNotFound)
		}
		levels++
		perm = perm.Intersect(e.Perm)
		if i < len(comps)-1 && !perm.Allows(types.PermLookup) {
			return dirEnt{}, 0, levels, fmt.Errorf("locofs resolve %s: %w", path, types.ErrPermission)
		}
		cur = *e
	}
	out := cur
	if lc, ok := st.links[out.ID]; ok {
		out.Attr.LinkCount += lc
	}
	return out, perm, levels, nil
}

func (st *dirState) children(dir types.InodeID) []types.Entry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []types.Entry
	for k, e := range st.byKey {
		if k.Pid == dir {
			out = append(out, e.entry())
		}
	}
	return out
}

func (st *dirState) bumpLink(dir types.InodeID, d int64) {
	st.mu.Lock()
	st.links[dir] += d
	st.mu.Unlock()
}

func (st *dirState) linkCount(dir types.InodeID) int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.links[dir]
}

func (st *dirState) subdirCount(dir types.InodeID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.nsubs[dir]
}

func (st *dirState) wouldLoop(srcID, dstParentID types.InodeID) (int, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	cur := dstParentID
	levels := 0
	for cur != types.RootID {
		if cur == srcID {
			return levels, true
		}
		e, ok := st.byID[cur]
		if !ok {
			break
		}
		cur = e.Pid
		levels++
	}
	return levels, false
}

func (st *dirState) bulkAdd(dirs []api.PopDir) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, d := range dirs {
		perm := d.Perm
		if perm == 0 {
			perm = types.PermAll
		}
		e := &dirEnt{Pid: d.Pid, Name: pathutil.Base(d.Path), ID: d.ID, Perm: perm}
		st.byKey[types.Key{Pid: d.Pid, Name: pathutil.Base(d.Path)}] = e
		st.byID[d.ID] = e
		st.nsubs[d.Pid]++
	}
}
