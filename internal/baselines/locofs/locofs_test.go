package locofs

import (
	"testing"

	"mantle/internal/api"
	"mantle/internal/conformance"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: true}, func(t *testing.T) api.Service {
		s, err := New(Config{Voters: 1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestSingleRPCLookup(t *testing.T) {
	s, err := New(Config{Voters: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := conformance.MkdirAll(s, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	op := s.Caller().Begin()
	if _, err := s.Lookup(op, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	if op.RTTs() != 1 {
		t.Fatalf("lookup RTTs = %d, want 1 (tiered dir server)", op.RTTs())
	}
}
