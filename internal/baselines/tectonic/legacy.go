package tectonic

import (
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// The legacy DBtable transaction paths (Config.DistributedTxn): directory
// mutations run as two-phase-commit transactions spanning the entry's
// shard and the parent-attribute row's shard, with in-place attribute
// updates under exclusive row locks. Under shared-directory contention
// these transactions abort and retry — the Figure 4b collapse of the
// pre-Mantle Baidu service.

// legacyTwoPiece builds a transaction touching the entry shard and the
// parent-attribute shard (merged when colocated) and runs it with retry.
func (s *Service) legacyTwoPiece(op *rpc.Op, entryPid types.InodeID, entryMuts []storage.Mutation,
	parentKey types.Key, delta storage.AttrDelta) (int, error) {

	entryShard := s.store.ShardFor(entryPid)
	attrShard := s.store.ShardFor(parentKey.Pid)
	return s.store.RunTxn(op, func(int) ([]txn.Piece, error) {
		attrMut := storage.Mutation{
			Kind: storage.MutDeltaAttr, Key: parentKey, Delta: delta, MustExist: true,
		}
		entryPiece := txn.Piece{P: entryShard, Muts: entryMuts}
		if entryShard == attrShard {
			entryPiece.Muts = append(append([]storage.Mutation(nil), entryMuts...), attrMut)
			return []txn.Piece{entryPiece}, nil
		}
		return []txn.Piece{entryPiece, {P: attrShard, Muts: []storage.Mutation{attrMut}}}, nil
	})
}

// legacyInsert transactionally inserts entry under parent and bumps the
// parent's attribute row (mkdir / create).
func (s *Service) legacyInsert(op *rpc.Op, parent types.Entry, entry types.Entry, delta storage.AttrDelta) (int, error) {
	return s.legacyTwoPiece(op, parent.ID, []storage.Mutation{{
		Kind: storage.MutPut, Key: types.Key{Pid: parent.ID, Name: entry.Name},
		Entry: entry, IfAbsent: true,
	}}, parentRowKey(parent), delta)
}

// legacyDelete transactionally removes (parent, name) and decrements the
// parent's attribute row (rmdir / delete).
func (s *Service) legacyDelete(op *rpc.Op, parent types.Entry, name string, delta storage.AttrDelta, kind types.EntryKind) (int, error) {
	return s.legacyTwoPiece(op, parent.ID, []storage.Mutation{{
		Kind: storage.MutDelete, Key: types.Key{Pid: parent.ID, Name: name},
		MustExist: true, WantKind: kind,
	}}, parentRowKey(parent), delta)
}

// legacyRename transactionally moves the entry and updates both parents'
// attribute rows in a single distributed transaction.
func (s *Service) legacyRename(op *rpc.Op, spe, dpe types.Entry, srcName, dstName string, moved types.Entry) (int, error) {
	return s.store.RunTxn(op, func(int) ([]txn.Piece, error) {
		byShard := map[*txn.Participant]*txn.Piece{}
		add := func(pid types.InodeID, m storage.Mutation) {
			p := s.store.ShardFor(pid)
			piece, ok := byShard[p]
			if !ok {
				piece = &txn.Piece{P: p}
				byShard[p] = piece
			}
			piece.Muts = append(piece.Muts, m)
		}
		add(spe.ID, storage.Mutation{
			Kind: storage.MutDelete, Key: types.Key{Pid: spe.ID, Name: srcName}, MustExist: true,
		})
		add(dpe.ID, storage.Mutation{
			Kind: storage.MutPut, Key: types.Key{Pid: dpe.ID, Name: dstName},
			Entry: moved, IfAbsent: true,
		})
		if spe.ID != dpe.ID {
			sk, dk := parentRowKey(spe), parentRowKey(dpe)
			add(sk.Pid, storage.Mutation{
				Kind: storage.MutDeltaAttr, Key: sk,
				Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
			})
			add(dk.Pid, storage.Mutation{
				Kind: storage.MutDeltaAttr, Key: dk,
				Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
			})
		}
		pieces := make([]txn.Piece, 0, len(byShard))
		for _, p := range byShard {
			pieces = append(pieces, *p)
		}
		return pieces, nil
	})
}
