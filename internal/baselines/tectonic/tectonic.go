// Package tectonic re-implements the Tectonic-style DBtable metadata
// service the paper compares against (§6.1): level-by-level multi-RPC
// path resolution over the sharded MetaTable, and relaxed-consistency
// directory mutations — no distributed transactions; the updates to a
// parent's attribute row are independent single-shard writes serialised
// by a row latch, exactly the behaviour the paper's authors gave their
// re-implementation ("for Tectonic, we relax the consistency and avoid
// using distributed transactions"). It performs no rename loop
// detection, consistent with the paper's Figure 15 breakdown, which
// shows no loop-detection phase for Tectonic.
package tectonic

import (
	"fmt"
	"time"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/trace"
	"mantle/internal/types"
)

// Config parameterises the service.
type Config struct {
	// Store configures the underlying DBtable shards.
	Store dbtable.Config
	// Fabric supplies RPC latency (also used for the store when unset
	// there).
	Fabric *netsim.Fabric
	// DistributedTxn switches directory mutations from relaxed
	// independent writes to full two-phase-commit transactions with
	// in-place parent-attribute updates. This is the *legacy* DBtable
	// service of §2.3/§3 (the pre-Mantle Baidu deployment whose Figure 4
	// contention collapse motivates the paper); the paper's Tectonic
	// re-implementation leaves it off.
	DistributedTxn bool
	// NameOverride changes the reported service name (the experiments
	// driver labels the legacy configuration "dbtable").
	NameOverride string
}

// Service is the Tectonic-style baseline. Implements api.Service.
type Service struct {
	cfg    Config
	store  *dbtable.Store
	caller *rpc.Caller
}

var _ api.Service = (*Service)(nil)

// New builds the service.
func New(cfg Config) *Service {
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	cfg.Store.Fabric = cfg.Fabric
	if cfg.Store.Name == "" {
		cfg.Store.Name = "tectonic"
	}
	return &Service{
		cfg:    cfg,
		store:  dbtable.New(cfg.Store),
		caller: rpc.NewCaller(cfg.Fabric),
	}
}

// Name implements api.Service.
func (s *Service) Name() string {
	if s.cfg.NameOverride != "" {
		return s.cfg.NameOverride
	}
	return "tectonic"
}

// Caller implements api.Service.
func (s *Service) Caller() *rpc.Caller { return s.caller }

// Store exposes the DBtable substrate (stats).
func (s *Service) Store() *dbtable.Store { return s.store }

// Stop implements api.Service.
func (s *Service) Stop() {}

// Lookup implements api.Service: the sequential multi-RPC traversal.
func (s *Service) Lookup(op *rpc.Op, dirPath string) (types.Result, error) {
	t := api.NewTimer()
	ctx, sp := trace.Start(op.Context(), "path-resolve")
	sp.SetAttr("mode", "sequential")
	e, perm, err := s.store.ResolvePath(op.WithContext(ctx), dirPath)
	sp.End()
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	e.Perm = perm
	return t.Done(op, 0, e), nil
}

// parentRowKey is the MetaTable key of directory entry e itself (where
// its attributes live).
func parentRowKey(e types.Entry) types.Key {
	if e.ID == types.RootID {
		return dbtable.RootKey()
	}
	return types.Key{Pid: e.Pid, Name: e.Name}
}

// Create implements api.Service: resolve the parent (N RPCs), insert the
// object row, then update the parent's attribute row — two independent
// relaxed writes.
func (s *Service) Create(op *rpc.Op, objPath string, size int64) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	parent, perm, err := s.store.ResolvePath(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("create %s: %w", objPath, types.ErrPermission)
	}
	entry := types.Entry{
		Pid: parent.ID, Name: name, ID: s.store.NewID(), Kind: types.KindObject,
		Perm: types.PermAll, Attr: types.Attr{Size: size, MTime: time.Now()},
	}
	var retries int
	if s.cfg.DistributedTxn {
		retries, err = s.legacyInsert(op, parent, entry, storage.AttrDelta{LinkCount: 1, Size: size})
	} else {
		err = s.store.ApplyRelaxed(op, parent.ID, []storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: parent.ID, Name: name},
			Entry: entry, IfAbsent: true,
		}})
		if err == nil {
			pk := parentRowKey(parent)
			err = s.store.ApplyRelaxed(op, pk.Pid, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: pk,
				Delta: storage.AttrDelta{LinkCount: 1, Size: size}, MustExist: true,
			}})
		}
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, entry), err
}

// Delete implements api.Service.
func (s *Service) Delete(op *rpc.Op, objPath string) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	parent, perm, err := s.store.ResolvePath(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("delete %s: %w", objPath, types.ErrPermission)
	}
	var retries int
	if s.cfg.DistributedTxn {
		retries, err = s.legacyDelete(op, parent, name, storage.AttrDelta{LinkCount: -1}, types.KindObject)
	} else {
		err = s.store.ApplyRelaxed(op, parent.ID, []storage.Mutation{{
			Kind: storage.MutDelete, Key: types.Key{Pid: parent.ID, Name: name},
			MustExist: true, WantKind: types.KindObject,
		}})
		if err == nil {
			pk := parentRowKey(parent)
			err = s.store.ApplyRelaxed(op, pk.Pid, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: pk,
				Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
			}})
		}
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// ObjStat implements api.Service.
func (s *Service) ObjStat(op *rpc.Op, objPath string) (types.Result, error) {
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	parent, perm, err := s.store.ResolvePath(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("objstat %s: %w", objPath, types.ErrPermission)
	}
	e, err := s.store.ResolveStep(op, parent.ID, name)
	t.Phase(types.PhaseExecute)
	if err == nil && e.IsDir() {
		err = fmt.Errorf("objstat %s: %w", objPath, types.ErrIsDir)
	}
	return t.Done(op, 0, e), err
}

// DirStat implements api.Service: resolve the parent chain, then read
// the directory's own row (its attributes are inline).
func (s *Service) DirStat(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	if dirPath == "/" || name == "" {
		_, _, err := s.store.ResolvePath(op, "/")
		t.Phase(types.PhaseLookup)
		var root types.Entry
		if err == nil {
			root, _ = s.store.GetDirect(dbtable.RootKey())
		}
		return t.Done(op, 0, root), err
	}
	pe, perm, err := s.store.ResolvePath(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("dirstat %s: %w", dirPath, types.ErrPermission)
	}
	e, err := s.store.ResolveStep(op, pe.ID, name)
	t.Phase(types.PhaseExecute)
	if err == nil && !e.IsDir() {
		err = fmt.Errorf("dirstat %s: %w", dirPath, types.ErrNotDir)
	}
	return t.Done(op, 0, e), err
}

// ReadDir implements api.Service.
func (s *Service) ReadDir(op *rpc.Op, dirPath string) (types.Result, []types.Entry, error) {
	t := api.NewTimer()
	e, perm, err := s.store.ResolvePath(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), nil, err
	}
	if !perm.Allows(types.PermLookup | types.PermRead) {
		return t.Done(op, 0, types.Entry{}), nil, fmt.Errorf("readdir %s: %w", dirPath, types.ErrPermission)
	}
	entries, err := s.store.ScanChildren(op, e.ID)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), entries, err
}

// Mkdir implements api.Service: insert the directory row and update the
// parent's row as two relaxed writes (the Figure 2 flow without its 2PC).
func (s *Service) Mkdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	pe, perm, err := s.store.ResolvePath(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("mkdir %s: %w", dirPath, types.ErrPermission)
	}
	entry := types.Entry{
		Pid: pe.ID, Name: name, ID: s.store.NewID(), Kind: types.KindDir,
		Perm: types.PermAll, Attr: types.Attr{MTime: time.Now()},
	}
	var retries int
	if s.cfg.DistributedTxn {
		retries, err = s.legacyInsert(op, pe, entry, storage.AttrDelta{LinkCount: 1})
	} else {
		err = s.store.ApplyRelaxed(op, pe.ID, []storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: pe.ID, Name: name},
			Entry: entry, IfAbsent: true,
		}})
		if err == nil {
			pk := parentRowKey(pe)
			err = s.store.ApplyRelaxed(op, pk.Pid, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: pk,
				Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
			}})
		}
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, entry), err
}

// Rmdir implements api.Service.
func (s *Service) Rmdir(op *rpc.Op, dirPath string) (types.Result, error) {
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	pe, perm, err := s.store.ResolvePath(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rmdir %s: %w", dirPath, types.ErrPermission)
	}
	de, err := s.store.ResolveStep(op, pe.ID, name)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), err
	}
	if !de.IsDir() {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rmdir %s: %w", dirPath, types.ErrNotDir)
	}
	if de.Attr.LinkCount > 0 {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rmdir %s: %w", dirPath, types.ErrNotEmpty)
	}
	var retries int
	if s.cfg.DistributedTxn {
		retries, err = s.legacyDelete(op, pe, name, storage.AttrDelta{LinkCount: -1}, types.KindDir)
	} else {
		err = s.store.ApplyRelaxed(op, pe.ID, []storage.Mutation{{
			Kind: storage.MutDelete, Key: types.Key{Pid: pe.ID, Name: name}, MustExist: true,
		}})
		if err == nil {
			pk := parentRowKey(pe)
			err = s.store.ApplyRelaxed(op, pk.Pid, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: pk,
				Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
			}})
		}
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// DirRename implements api.Service: two path resolutions, then four
// relaxed writes (delete source row, insert destination row, update both
// parents). No loop detection — the relaxed re-implementation trades
// that safety away, as the paper notes.
func (s *Service) DirRename(op *rpc.Op, srcPath, dstPath string) (types.Result, error) {
	srcParent, srcName := pathutil.Dir(srcPath), pathutil.Base(srcPath)
	dstParent, dstName := pathutil.Dir(dstPath), pathutil.Base(dstPath)
	t := api.NewTimer()
	spe, sperm, err := s.store.ResolvePath(op, srcParent)
	if err != nil {
		t.Phase(types.PhaseLookup)
		return t.Done(op, 0, types.Entry{}), err
	}
	dpe, dperm, err := s.store.ResolvePath(op, dstParent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !sperm.Allows(types.PermWrite) || !dperm.Allows(types.PermWrite) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rename %s: %w", srcPath, types.ErrPermission)
	}
	se, err := s.store.ResolveStep(op, spe.ID, srcName)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), err
	}
	if !se.IsDir() {
		t.Phase(types.PhaseExecute)
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("rename %s: %w", srcPath, types.ErrNotDir)
	}
	moved := se
	moved.Pid = dpe.ID
	moved.Name = dstName
	var retries int
	if s.cfg.DistributedTxn {
		retries, err = s.legacyRename(op, spe, dpe, srcName, dstName, moved)
	} else {
		err = s.store.ApplyRelaxed(op, dpe.ID, []storage.Mutation{{
			Kind: storage.MutPut, Key: types.Key{Pid: dpe.ID, Name: dstName},
			Entry: moved, IfAbsent: true,
		}})
		if err == nil {
			err = s.store.ApplyRelaxed(op, spe.ID, []storage.Mutation{{
				Kind: storage.MutDelete, Key: types.Key{Pid: spe.ID, Name: srcName}, MustExist: true,
			}})
		}
		if err == nil && spe.ID != dpe.ID {
			sk := parentRowKey(spe)
			err = s.store.ApplyRelaxed(op, sk.Pid, []storage.Mutation{{
				Kind: storage.MutDeltaAttr, Key: sk,
				Delta: storage.AttrDelta{LinkCount: -1}, MustExist: true,
			}})
			if err == nil {
				dk := parentRowKey(dpe)
				err = s.store.ApplyRelaxed(op, dk.Pid, []storage.Mutation{{
					Kind: storage.MutDeltaAttr, Key: dk,
					Delta: storage.AttrDelta{LinkCount: 1}, MustExist: true,
				}})
			}
		}
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// Populate implements api.Service.
func (s *Service) Populate(dirs []api.PopDir, objects []api.PopObject) error {
	return dbtable.Populate(s.store, dirs, objects)
}
