package tectonic

import (
	"testing"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/conformance"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: false}, func(t *testing.T) api.Service {
		return New(Config{Store: dbtable.Config{Shards: 4}})
	})
}

func TestMultiRPCLookupCost(t *testing.T) {
	s := New(Config{Store: dbtable.Config{Shards: 4}})
	defer s.Stop()
	if err := conformance.MkdirAll(s, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	op := s.Caller().Begin()
	if _, err := s.Lookup(op, "/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	// Level-by-level traversal: one RPC per component.
	if op.RTTs() != 5 {
		t.Fatalf("lookup RTTs = %d, want 5", op.RTTs())
	}
}

// The legacy distributed-transaction configuration (the pre-Mantle
// DBtable service of §2.3) must behave identically at the API level —
// only its concurrency control differs.
func TestConformanceLegacyTxn(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: false}, func(t *testing.T) api.Service {
		return New(Config{
			Store:          dbtable.Config{Shards: 4},
			DistributedTxn: true,
			NameOverride:   "dbtable",
		})
	})
}

func TestLegacyNameOverride(t *testing.T) {
	s := New(Config{Store: dbtable.Config{Shards: 2}, DistributedTxn: true, NameOverride: "dbtable"})
	defer s.Stop()
	if s.Name() != "dbtable" {
		t.Fatalf("name = %s", s.Name())
	}
	if New(Config{Store: dbtable.Config{Shards: 2}}).Name() != "tectonic" {
		t.Fatal("default name")
	}
}
