package dataservice

import (
	"sync"
	"testing"
	"time"

	"mantle/internal/netsim"
)

func TestPutGetAccounting(t *testing.T) {
	s := New(Config{Nodes: 2, Workers: 4, BaseCost: time.Microsecond, PerMB: time.Microsecond})
	s.Put(1 << 20)
	s.Put(2 << 20)
	s.Get(4 << 20)
	puts, gets, written, read := s.Stats()
	if puts != 2 || gets != 1 {
		t.Fatalf("puts=%d gets=%d", puts, gets)
	}
	if written != 3<<20 || read != 4<<20 {
		t.Fatalf("written=%d read=%d", written, read)
	}
}

func TestTransferCostScalesWithSize(t *testing.T) {
	s := New(Config{
		Nodes: 1, Workers: 1,
		BaseCost: time.Millisecond, PerMB: 10 * time.Millisecond,
		Fabric: netsim.NewLocalFabric(),
	})
	small := timeOp(func() { s.Get(64 << 10) })
	large := timeOp(func() { s.Get(16 << 20) })
	if large < 4*small {
		t.Fatalf("large transfer %v not much slower than small %v", large, small)
	}
}

func TestCapacityEnforced(t *testing.T) {
	// 1 node x 2 workers at 5ms/op => 400 ops/s; 40 concurrent ops must
	// take at least ~90ms.
	s := New(Config{Nodes: 1, Workers: 2, BaseCost: 5 * time.Millisecond, PerMB: time.Nanosecond})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Put(1)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("40 ops finished in %v; capacity not enforced", elapsed)
	}
}

func timeOp(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
