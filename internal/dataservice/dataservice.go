// Package dataservice is the object data-plane stub used by the
// application experiments (§6.2 of the paper runs Analytics and Audio
// twice: metadata-only, then with data access enabled). The paper's data
// service is a pool of SSD-backed servers shared by all four metadata
// systems; here it is a set of netsim nodes charging a base latency plus
// a size-proportional transfer cost per PUT/GET. The same instance is
// shared across the systems under comparison, exactly as in Table 2
// ("all deployments share the same data storage").
package dataservice

import (
	"fmt"
	"sync/atomic"
	"time"

	"mantle/internal/netsim"
)

// Config parameterises the data service.
type Config struct {
	// Nodes is the number of data servers.
	Nodes int
	// Workers is the per-server concurrency.
	Workers int
	// BaseCost is the fixed device cost per object access (the paper
	// cites "a single RPC plus tens of microseconds for device access"
	// for small objects on SSD).
	BaseCost time.Duration
	// PerMB is the additional transfer cost per megabyte.
	PerMB time.Duration
	// Fabric supplies RPC latency.
	Fabric *netsim.Fabric
}

// Service is the data-plane stub.
type Service struct {
	cfg    Config
	nodes  []*netsim.Node
	seq    atomic.Uint64
	puts   atomic.Int64
	gets   atomic.Int64
	rbytes atomic.Int64
	wbytes atomic.Int64
}

// New builds the service.
func New(cfg Config) *Service {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	if cfg.BaseCost <= 0 {
		cfg.BaseCost = 40 * time.Microsecond
	}
	if cfg.PerMB <= 0 {
		cfg.PerMB = 300 * time.Microsecond
	}
	s := &Service{cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, netsim.NewNode(fmt.Sprintf("data-%d", i), cfg.Workers))
	}
	return s
}

func (s *Service) cost(size int64) time.Duration {
	return s.cfg.BaseCost + time.Duration(float64(s.cfg.PerMB)*float64(size)/(1<<20))
}

func (s *Service) pick() *netsim.Node {
	return s.nodes[s.seq.Add(1)%uint64(len(s.nodes))]
}

// Put stores an object of the given size: one RPC plus device cost.
func (s *Service) Put(size int64) {
	s.cfg.Fabric.RoundTrip()
	_ = s.pick().Exec(s.cost(size), func() error { return nil })
	s.puts.Add(1)
	s.wbytes.Add(size)
}

// Get fetches an object of the given size.
func (s *Service) Get(size int64) {
	s.cfg.Fabric.RoundTrip()
	_ = s.pick().Exec(s.cost(size), func() error { return nil })
	s.gets.Add(1)
	s.rbytes.Add(size)
}

// Stats returns cumulative counters.
func (s *Service) Stats() (puts, gets, bytesWritten, bytesRead int64) {
	return s.puts.Load(), s.gets.Load(), s.wbytes.Load(), s.rbytes.Load()
}
