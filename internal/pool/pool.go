// Package pool implements the IndexNode co-location strategy of the
// paper's deployment section (§7.2): a shared pool of physical servers
// hosts the IndexNode replicas of every namespace. Small namespaces'
// leaders share servers; hot namespaces get dedicated ones; a
// rebalancing pass moves leaders (via Raft leadership transfer) so no
// pool server carries a disproportionate share of leaders.
package pool

import (
	"fmt"
	"sort"
	"sync"

	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/raft"
)

// Pool is a fixed set of servers hosting IndexNode replicas.
type Pool struct {
	nodes []*netsim.Node

	mu         sync.Mutex
	placements map[string][]int            // namespace -> node index per replica
	groups     map[string]*indexnode.Group // registered groups (for balancing)
	load       []int                       // replicas per node
}

// New creates a pool of n servers with the given CPU workers each.
func New(n, workersPerNode int) *Pool {
	p := &Pool{
		placements: make(map[string][]int),
		groups:     make(map[string]*indexnode.Group),
		load:       make([]int, n),
	}
	for i := 0; i < n; i++ {
		p.nodes = append(p.nodes, netsim.NewNode(fmt.Sprintf("pool-%d", i), workersPerNode))
	}
	return p
}

// Size returns the number of pool servers.
func (p *Pool) Size() int { return len(p.nodes) }

// Place assigns replica slots for a namespace across the least-loaded
// pool servers (one replica per server, the fault isolation a Raft group
// needs) and returns the chosen nodes, to be passed as
// indexnode.Config.Nodes.
func (p *Pool) Place(namespace string, replicas int) ([]*netsim.Node, error) {
	if replicas > len(p.nodes) {
		return nil, fmt.Errorf("pool: %d replicas exceed %d pool servers", replicas, len(p.nodes))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.placements[namespace]; dup {
		return nil, fmt.Errorf("pool: namespace %q already placed", namespace)
	}
	// Least-loaded distinct servers.
	order := make([]int, len(p.nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return p.load[order[a]] < p.load[order[b]] })
	chosen := order[:replicas]
	nodes := make([]*netsim.Node, 0, replicas)
	for _, idx := range chosen {
		p.load[idx]++
		nodes = append(nodes, p.nodes[idx])
	}
	p.placements[namespace] = append([]int(nil), chosen...)
	return nodes, nil
}

// Register associates a started group with its namespace so the balancer
// can observe and move its leader.
func (p *Pool) Register(namespace string, g *indexnode.Group) {
	p.mu.Lock()
	p.groups[namespace] = g
	p.mu.Unlock()
}

// Release frees a namespace's slots (namespace teardown).
func (p *Pool) Release(namespace string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, idx := range p.placements[namespace] {
		p.load[idx]--
	}
	delete(p.placements, namespace)
	delete(p.groups, namespace)
}

// LeaderDistribution returns, per pool server, how many namespace
// leaders it currently hosts.
func (p *Pool) LeaderDistribution() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leaderDistributionLocked()
}

func (p *Pool) leaderDistributionLocked() []int {
	dist := make([]int, len(p.nodes))
	for ns, g := range p.groups {
		li := leaderReplica(g)
		if li < 0 {
			continue
		}
		place := p.placements[ns]
		if li < len(place) {
			dist[place[li]]++
		}
	}
	return dist
}

// leaderReplica returns the index of the group's leader replica, or -1.
func leaderReplica(g *indexnode.Group) int {
	for i, rf := range g.Rafts() {
		if rf.Stopped() {
			continue
		}
		if role, _, _ := rf.Status(); role == raft.Leader {
			return i
		}
	}
	return -1
}

// BalanceLeaders transfers namespace leaderships away from the pool
// servers hosting the most leaders toward their replicas on
// lighter-loaded servers — the paper's "dynamic mechanism to rebalance
// leader distribution". Returns the number of transfers performed.
func (p *Pool) BalanceLeaders() int {
	p.mu.Lock()
	type cand struct {
		ns    string
		g     *indexnode.Group
		from  int // pool node index hosting the leader
		li    int // leader replica index
		place []int
	}
	dist := p.leaderDistributionLocked()
	var cands []cand
	for ns, g := range p.groups {
		li := leaderReplica(g)
		if li < 0 || li >= len(p.placements[ns]) {
			continue
		}
		cands = append(cands, cand{
			ns: ns, g: g, from: p.placements[ns][li], li: li,
			place: append([]int(nil), p.placements[ns]...),
		})
	}
	p.mu.Unlock()

	transfers := 0
	for _, c := range cands {
		fair := (sum(dist) + len(dist) - 1) / len(dist)
		if dist[c.from] <= fair {
			continue
		}
		// This group's voter replica on the least-leader-loaded server.
		best := -1
		bestLoad := dist[c.from]
		for ri, nodeIdx := range c.place {
			if ri == c.li || ri >= len(c.g.Rafts()) || c.g.Rafts()[ri].IsLearner() {
				continue
			}
			if dist[nodeIdx] < bestLoad {
				best, bestLoad = ri, dist[nodeIdx]
			}
		}
		if best < 0 {
			continue
		}
		leaderRaft := c.g.Rafts()[c.li]
		if err := leaderRaft.TransferLeadership(c.g.Rafts()[best].ID()); err != nil {
			continue
		}
		dist[c.from]--
		dist[c.place[best]]++
		transfers++
	}
	return transfers
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
