package pool

import (
	"fmt"
	"testing"
	"time"

	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/types"
)

func TestPlaceSpreadsLoad(t *testing.T) {
	p := New(4, 8)
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	// Three 3-replica namespaces over 4 servers: 9 replicas, max load 3.
	for i := 0; i < 3; i++ {
		nodes, err := p.Place(fmt.Sprintf("ns%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 3 {
			t.Fatalf("nodes = %d", len(nodes))
		}
		seen := map[*netsim.Node]bool{}
		for _, n := range nodes {
			if seen[n] {
				t.Fatal("replica co-located with sibling")
			}
			seen[n] = true
		}
	}
	for i, l := range p.load {
		if l < 2 || l > 3 {
			t.Fatalf("node %d load %d; placement unbalanced %v", i, l, p.load)
		}
	}
	// Duplicate placement rejected; oversize rejected.
	if _, err := p.Place("ns0", 3); err == nil {
		t.Fatal("duplicate placement accepted")
	}
	if _, err := p.Place("big", 5); err == nil {
		t.Fatal("oversize placement accepted")
	}
	// Release frees slots.
	p.Release("ns0")
	if _, err := p.Place("ns0", 3); err != nil {
		t.Fatal(err)
	}
}

func newPooledGroup(t *testing.T, p *Pool, ns string) *indexnode.Group {
	t.Helper()
	nodes, err := p.Place(ns, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := indexnode.NewGroup(indexnode.Config{
		Voters: 3, K: 2, CacheEnabled: true, Name: ns, Nodes: nodes,
		ElectionTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	p.Register(ns, g)
	return g
}

func TestBalanceLeaders(t *testing.T) {
	p := New(3, 8)
	caller := rpc.NewCaller(netsim.NewLocalFabric())
	groups := make([]*indexnode.Group, 6)
	for i := range groups {
		groups[i] = newPooledGroup(t, p, fmt.Sprintf("ns%d", i))
		// Seed each namespace so leadership/logs are live.
		if err := groups[i].AddDir(caller.Begin(), types.RootID, "d", 2, types.PermAll, ""); err != nil {
			t.Fatal(err)
		}
	}
	// The placement policy puts every namespace's replica 0 on a
	// least-loaded node at placement time, and the bootstrap kickstart
	// makes replica 0 the initial leader — so leaders skew.
	// Run the balancer until stable and verify no server exceeds the
	// fair share.
	total := 0
	for round := 0; round < 10; round++ {
		n := p.BalanceLeaders()
		total += n
		if n == 0 {
			break
		}
		time.Sleep(200 * time.Millisecond) // let transfers settle
	}
	dist := p.LeaderDistribution()
	leaders := 0
	maxPer := 0
	for _, d := range dist {
		leaders += d
		if d > maxPer {
			maxPer = d
		}
	}
	if leaders != len(groups) {
		t.Fatalf("leader accounting: %v (want %d leaders)", dist, len(groups))
	}
	// Fair share of 6 leaders over 3 servers = 2.
	if maxPer > 3 {
		t.Fatalf("distribution %v too skewed after %d transfers", dist, total)
	}
	// Groups still function after transfers.
	for i, g := range groups {
		res, err := g.Lookup(caller.Begin(), "/d")
		if err != nil || res.ID != 2 {
			t.Fatalf("group %d lookup after balancing: %+v err=%v", i, res, err)
		}
	}
}
