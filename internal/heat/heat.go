// Package heat is the hotspot-telemetry toolkit of the metadata path:
// a concurrency-safe space-saving top-K sketch (heavy hitters with
// per-item error bounds) and a windowed EWMA rate tracker, with the
// repo's flat "name value" text exposition. The proxy, IndexNode, and
// TafDB layers each keep a sketch of their hottest directories and a
// rate of their op stream; the future split/migration machinery (the
// ROADMAP's elastic hotspot management item) reads these to decide
// what to move, and /status renders them live.
//
// The sketch is Metwally's space-saving algorithm: at most k keys are
// tracked; an untracked key evicts the current minimum and inherits its
// count (recorded as the new key's error bound), so for every reported
// item the true frequency lies in [Count-Err, Count], and any key whose
// true count exceeds the smallest tracked count is guaranteed present.
//
// Hot-path cost: recording a tracked key is a read-locked map probe
// plus one atomic add — no allocation — so instrumented operations stay
// inside the ~3 allocs/op hot-stat budget. Only the first sighting of
// an untracked key takes the write lock and allocates its cell.
package heat

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one tracked key's counter. count is atomic so read-locked
// recorders can bump it concurrently; err is written only under the
// sketch's write lock (at insert/evict) and read under either lock.
type cell struct {
	count atomic.Int64
	err   int64
}

// TopK is a space-saving heavy-hitter sketch over keys of any
// comparable type (string paths at the proxy and IndexNode, inode IDs
// at TafDB — an ID key avoids formatting allocations on the shard hot
// path). Safe for concurrent use. Counts are cumulative since creation
// (or the last Reset) unless a decay half-life is configured
// (NewTopKDecay), in which case counts are exponentially decayed at
// read time so keys that stop arriving fade out instead of pinning
// their peak forever — the property the hot-set demotion logic needs.
type TopK[K comparable] struct {
	k        int
	halfLife time.Duration // 0 = cumulative (no decay)
	mu       sync.RWMutex
	m        map[K]*cell
	lastFold time.Time // last decay fold (guarded by mu in write mode)
}

// NewTopK creates a sketch tracking at most k keys (minimum 1).
func NewTopK[K comparable](k int) *TopK[K] {
	if k < 1 {
		k = 1
	}
	return &TopK[K]{k: k, m: make(map[K]*cell, k)}
}

// NewTopKDecay creates a sketch whose counts decay with the given
// half-life (the same lazy fold Rate uses): a key recorded at rate r
// converges to a steady count of ~r·halfLife/ln2, and a key that stops
// arriving halves every halfLife until it drops out of the sketch.
// Decay folds lazily on Snapshot/eviction, so the record fast path is
// unchanged. A non-positive halfLife disables decay.
func NewTopKDecay[K comparable](k int, halfLife time.Duration) *TopK[K] {
	t := NewTopK[K](k)
	if halfLife > 0 {
		t.halfLife = halfLife
		t.lastFold = time.Now()
	}
	return t
}

// K returns the sketch capacity.
func (t *TopK[K]) K() int { return t.k }

// Record counts one occurrence of key.
func (t *TopK[K]) Record(key K) { t.RecordN(key, 1) }

// RecordN counts n occurrences of key. Tracked keys pay a read-locked
// map probe and one atomic add; untracked keys take the write lock and
// either occupy a free slot or evict the current minimum, inheriting
// its count as their error bound (the space-saving rule).
func (t *TopK[K]) RecordN(key K, n int64) {
	if n <= 0 {
		return
	}
	t.mu.RLock()
	if c, ok := t.m[key]; ok {
		c.count.Add(n)
		t.mu.RUnlock()
		return
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[key]; ok { // raced with another inserter
		c.count.Add(n)
		return
	}
	// Fold decay before an eviction decision so the minimum reflects
	// current (decayed) heat, not a stale peak.
	t.foldLocked(time.Now())
	if len(t.m) < t.k {
		c := &cell{}
		c.count.Store(n)
		t.m[key] = c
		return
	}
	// Evict the minimum-count key; the newcomer inherits its count as
	// an overestimate bound. O(k) scan — k is small (tens), and this
	// path only runs on first sightings once the sketch is full.
	var minKey K
	minCount := int64(math.MaxInt64)
	for k2, c := range t.m {
		if v := c.count.Load(); v < minCount {
			minCount, minKey = v, k2
		}
	}
	delete(t.m, minKey)
	c := &cell{err: minCount}
	c.count.Store(minCount + n)
	t.m[key] = c
}

// Item is one reported heavy hitter. Count overestimates the key's true
// frequency by at most Err: the true count lies in [Count-Err, Count].
type Item[K comparable] struct {
	Key   K     `json:"key"`
	Count int64 `json:"count"`
	Err   int64 `json:"err"`
}

// Snapshot returns the tracked keys sorted by descending count. On a
// decaying sketch it first folds the elapsed decay, so counts shrink —
// and fully-cooled keys disappear — even when nothing records.
func (t *TopK[K]) Snapshot() []Item[K] {
	return t.snapshotAt(time.Now())
}

// snapshotAt is Snapshot with an injectable clock (deterministic tests).
func (t *TopK[K]) snapshotAt(now time.Time) []Item[K] {
	if t.halfLife > 0 {
		t.mu.Lock()
		t.foldLocked(now)
		out := make([]Item[K], 0, len(t.m))
		for k2, c := range t.m {
			out = append(out, Item[K]{Key: k2, Count: c.count.Load(), Err: c.err})
		}
		t.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
		return out
	}
	t.mu.RLock()
	out := make([]Item[K], 0, len(t.m))
	for k2, c := range t.m {
		out = append(out, Item[K]{Key: k2, Count: c.count.Load(), Err: c.err})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// foldLocked applies the decay accumulated since the last fold:
// every count (and its error bound) is scaled by 2^(-dt/halfLife), and
// cells that decay below one event are dropped so the sketch frees
// slots for current traffic. Caller holds t.mu in write mode. No-op on
// cumulative sketches or inside the minFold window.
func (t *TopK[K]) foldLocked(now time.Time) {
	if t.halfLife <= 0 {
		return
	}
	dt := now.Sub(t.lastFold)
	if dt < minFold {
		return
	}
	t.lastFold = now
	factor := math.Exp2(-dt.Seconds() / t.halfLife.Seconds())
	for k2, c := range t.m {
		// Load+store is safe: writers that could race the fold hold the
		// read lock, which t.mu excludes here.
		v := int64(float64(c.count.Load()) * factor)
		if v < 1 {
			delete(t.m, k2)
			continue
		}
		c.count.Store(v)
		c.err = int64(float64(c.err) * factor)
	}
}

// Len returns the number of tracked keys.
func (t *TopK[K]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// Reset clears the sketch.
func (t *TopK[K]) Reset() {
	t.mu.Lock()
	t.m = make(map[K]*cell, t.k)
	t.mu.Unlock()
}

// WriteTopK renders a sketch in the flat exposition format used by
// metrics.Registry: one "name{key} count" line per tracked item in
// descending count order, keys rendered by format.
func WriteTopK[K comparable](w io.Writer, name string, t *TopK[K], format func(K) string) error {
	for _, it := range t.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, format(it.Key), it.Count); err != nil {
			return err
		}
	}
	return nil
}

// Rate tracks an exponentially weighted moving average of an event
// rate. Add is one atomic increment; the EWMA folds lazily at read
// time, decaying with the configured half-life, so idle trackers cost
// nothing and hot paths never take the fold lock.
type Rate struct {
	halfLife time.Duration
	events   atomic.Int64 // events since the last fold
	total    atomic.Int64

	mu   sync.Mutex
	last time.Time
	ewma float64 // events per second
}

// minFold is the shortest window folded into the EWMA; reads inside it
// return the previous estimate instead of dividing by a tiny dt.
const minFold = 10 * time.Millisecond

// NewRate creates a tracker whose estimate decays with the given
// half-life (default 10s when non-positive).
func NewRate(halfLife time.Duration) *Rate {
	if halfLife <= 0 {
		halfLife = 10 * time.Second
	}
	return &Rate{halfLife: halfLife, last: time.Now()}
}

// Add records n events (one atomic add; n ≤ 0 records nothing).
func (r *Rate) Add(n int64) {
	if n <= 0 {
		return
	}
	r.events.Add(n)
	r.total.Add(n)
}

// Total returns the cumulative event count.
func (r *Rate) Total() int64 { return r.total.Load() }

// PerSecond returns the current EWMA rate in events per second.
func (r *Rate) PerSecond() float64 { return r.foldAt(time.Now()) }

// foldAt folds events accumulated since the last fold into the EWMA
// with weight 1-2^(-dt/halfLife) (split out for deterministic tests).
func (r *Rate) foldAt(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	dt := now.Sub(r.last)
	if dt < minFold {
		return r.ewma
	}
	inst := float64(r.events.Swap(0)) / dt.Seconds()
	w := 1 - math.Exp2(-dt.Seconds()/r.halfLife.Seconds())
	r.ewma += w * (inst - r.ewma)
	r.last = now
	return r.ewma
}
