package heat

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTopKExactUnderCapacity(t *testing.T) {
	tk := NewTopK[string](8)
	for i := 0; i < 5; i++ {
		tk.Record("/a")
	}
	tk.RecordN("/b", 3)
	tk.Record("/c")
	items := tk.Snapshot()
	if len(items) != 3 {
		t.Fatalf("len = %d, want 3", len(items))
	}
	want := []Item[string]{{"/a", 5, 0}, {"/b", 3, 0}, {"/c", 1, 0}}
	for i, w := range want {
		if items[i] != w {
			t.Fatalf("items[%d] = %+v, want %+v", i, items[i], w)
		}
	}
}

func TestTopKEvictionAndErrorBounds(t *testing.T) {
	tk := NewTopK[string](2)
	tk.RecordN("/hot", 100)
	tk.RecordN("/warm", 10)
	// "/cold" evicts "/warm" (the minimum) and inherits its count as the
	// error bound: reported count 11, true count ∈ [1, 11].
	tk.Record("/cold")
	items := tk.Snapshot()
	if len(items) != 2 {
		t.Fatalf("len = %d, want 2", len(items))
	}
	if items[0].Key != "/hot" || items[0].Count != 100 || items[0].Err != 0 {
		t.Fatalf("top item = %+v", items[0])
	}
	if items[1].Key != "/cold" || items[1].Count != 11 || items[1].Err != 10 {
		t.Fatalf("evicting item = %+v", items[1])
	}
	if got := items[1].Count - items[1].Err; got != 1 {
		t.Fatalf("lower bound = %d, want 1 (the true count)", got)
	}
}

// The space-saving guarantee: any key with true count greater than the
// smallest tracked count must be present in the sketch.
func TestTopKHeavyHitterGuarantee(t *testing.T) {
	tk := NewTopK[int](4)
	// Heavy keys 0..2 with large counts, plus a stream of singletons.
	for round := 0; round < 200; round++ {
		tk.Record(0)
		tk.Record(1)
		if round%2 == 0 {
			tk.Record(2)
		}
		tk.Record(100 + round) // noise: 200 distinct one-shot keys
	}
	items := tk.Snapshot()
	found := map[int]Item[int]{}
	minTracked := int64(1 << 62)
	for _, it := range items {
		found[it.Key] = it
		if it.Count < minTracked {
			minTracked = it.Count
		}
	}
	// Any key whose true count exceeds the smallest tracked count must
	// be in the sketch; keys 0 and 1 (true count 200, the max possible
	// reported count) always qualify.
	for _, hot := range []int{0, 1} {
		it, ok := found[hot]
		if !ok {
			t.Fatalf("heavy key %d missing from sketch: %+v", hot, items)
		}
		if it.Count < 200 || it.Count-it.Err > 200 {
			t.Fatalf("key %d: true 200 outside [%d, %d]", hot, it.Count-it.Err, it.Count)
		}
	}
	// Key 2's true count is 100; it may only be absent if the minimum
	// tracked count has grown past it.
	if _, ok := found[2]; !ok && minTracked < 100 {
		t.Fatalf("key 2 (true 100) missing while min tracked = %d", minTracked)
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK[int](16)
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tk.Record(i % 4) // 4 hot keys, always tracked
				if i%100 == 0 {
					tk.Record(1000 + w*per + i) // churn the eviction path
				}
				if i%50 == 0 {
					tk.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	items := tk.Snapshot()
	var total int64
	for _, it := range items {
		if it.Key < 4 {
			total += it.Count - it.Err
		}
	}
	// The 4 hot keys are inserted while the sketch is empty and never
	// evicted (their counts dominate), so no increment is lost.
	if want := int64(workers * per); total != want {
		t.Fatalf("hot-key count lower bounds sum to %d, want %d", total, want)
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK[string](4)
	tk.Record("/a")
	tk.Reset()
	if tk.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tk.Len())
	}
}

func TestWriteTopK(t *testing.T) {
	tk := NewTopK[string](4)
	tk.RecordN("/hot", 9)
	tk.Record("/cool")
	var b strings.Builder
	if err := WriteTopK(&b, "heat_proxy_lookup", tk, func(s string) string { return s }); err != nil {
		t.Fatal(err)
	}
	want := "heat_proxy_lookup{/hot} 9\nheat_proxy_lookup{/cool} 1\n"
	if b.String() != want {
		t.Fatalf("exposition = %q, want %q", b.String(), want)
	}
}

func TestRateFold(t *testing.T) {
	r := NewRate(time.Second)
	now := time.Now()
	r.last = now.Add(-time.Second)
	r.Add(1000)
	// One half-life at 1000 events/s from an EWMA of 0: weight 1/2.
	got := r.foldAt(now)
	if got < 499 || got > 501 {
		t.Fatalf("rate after one half-life = %v, want ~500", got)
	}
	if r.Total() != 1000 {
		t.Fatalf("total = %d", r.Total())
	}
	// A long idle window decays the estimate toward zero.
	r.last = now.Add(-10 * time.Second)
	got = r.foldAt(now)
	if got > 1 {
		t.Fatalf("rate after 10 idle half-lives = %v, want ~0", got)
	}
}

func TestRateShortWindowReturnsPrevious(t *testing.T) {
	r := NewRate(time.Second)
	r.ewma = 42
	r.last = time.Now()
	r.Add(1)
	if got := r.PerSecond(); got != 42 {
		t.Fatalf("rate inside min fold window = %v, want 42", got)
	}
}

func TestRateConcurrent(t *testing.T) {
	r := NewRate(time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(1)
				if i%100 == 0 {
					r.PerSecond()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", r.Total())
	}
}

// Regression for the demotion-staleness bug: on a decaying sketch, a
// hotspot that shifts must let the old hot key's count fade so the new
// one overtakes it — before decay, stale counts pinned the old hotspot
// at its peak forever and the hot-set could never shrink.
func TestTopKDecayShiftingHotspot(t *testing.T) {
	tk := NewTopKDecay[string](4, time.Second)
	now := time.Now()
	tk.mu.Lock()
	tk.lastFold = now
	tk.mu.Unlock()

	// Phase 1: "/old" is the hotspot.
	tk.RecordN("/old", 1000)
	items := tk.snapshotAt(now)
	if items[0].Key != "/old" || items[0].Count != 1000 {
		t.Fatalf("phase 1 top = %+v", items[0])
	}

	// Phase 2: "/old" goes silent for three half-lives (decaying to
	// ~125), then the hotspot shifts: "/new" arrives at a modest rate
	// and must overtake the stale peak.
	items = tk.snapshotAt(now.Add(3 * time.Second))
	if items[0].Key != "/old" || items[0].Count > 130 || items[0].Count < 120 {
		t.Fatalf("after 3 idle half-lives, top = %+v, want /old ~125", items[0])
	}
	tk.RecordN("/new", 300)
	items = tk.snapshotAt(now.Add(3 * time.Second))
	if items[0].Key != "/new" {
		t.Fatalf("after shift, top = %+v (old hotspot did not decay)", items)
	}
	var old *Item[string]
	for i := range items {
		if items[i].Key == "/old" {
			old = &items[i]
		}
	}
	if old == nil {
		t.Fatalf("/old dropped too early: %+v", items)
	}
	if old.Count > 130 || old.Count < 120 {
		t.Fatalf("/old after 3 half-lives = %d, want ~125", old.Count)
	}

	// Phase 3: fully cooled keys drop out entirely, freeing slots.
	items = tk.snapshotAt(now.Add(30 * time.Second))
	for _, it := range items {
		if it.Key == "/old" {
			t.Fatalf("/old still tracked after 30 half-lives: %+v", items)
		}
	}
}

// A cumulative sketch must behave exactly as before: no decay ever.
func TestTopKNoDecayWhenCumulative(t *testing.T) {
	tk := NewTopK[string](4)
	tk.RecordN("/a", 100)
	items := tk.snapshotAt(time.Now().Add(time.Hour))
	if len(items) != 1 || items[0].Count != 100 {
		t.Fatalf("cumulative sketch decayed: %+v", items)
	}
}

// Decay folds must not lose concurrent increments.
func TestTopKDecayConcurrent(t *testing.T) {
	tk := NewTopKDecay[int](8, time.Minute) // long half-life: ~no decay
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tk.Record(i % 4)
				if i%50 == 0 {
					tk.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, it := range tk.Snapshot() {
		total += it.Count
	}
	// Half-life is a minute and the test runs in milliseconds, so decay
	// rounds away at most a tiny fraction.
	if total < 15800 || total > 16000 {
		t.Fatalf("total after concurrent decaying records = %d, want ~16000", total)
	}
}
