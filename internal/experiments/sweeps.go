package experiments

import (
	"fmt"
	"time"

	"mantle/internal/bench"
	"mantle/internal/core"
	"mantle/internal/netsim"
	"mantle/internal/tafdb"
	"mantle/internal/types"
	"mantle/internal/workload"
)

// Fig16 is the ablation study (paper Figure 16): starting from
// Mantle-base (no path cache, no Raft log batching, no delta records, no
// follower read), optimisations are enabled cumulatively and dirstat,
// mkdir-e, and dirrename-s throughput is reported normalised to base.
func Fig16(p Params) error {
	p = p.WithDefaults()
	base := SystemOpts{MantleDelta: tafdb.DeltaOff}
	steps := []struct {
		label  string
		mutate func(*SystemOpts)
	}{
		{"mantle-base", func(o *SystemOpts) {}},
		{"+pathcache", func(o *SystemOpts) { o.MantleCache = true; o.MantleK = 3 }},
		{"+raftlogbatch", func(o *SystemOpts) { o.MantleBatch = true }},
		{"+delta record", func(o *SystemOpts) { o.MantleDelta = tafdb.DeltaAlways }},
		{"+follower read", func(o *SystemOpts) { o.MantleFollowerRead = true }},
	}
	type meas struct{ dirstat, mkdirE, renameS float64 }
	var results []meas
	opts := base
	per := p.PerClient * 2 // short contended runs are noisy; double up
	for _, st := range steps {
		st.mutate(&opts)
		s, ns, err := BuildPopulated("mantle", p, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", st.label, err)
		}
		_ = bench.RunN(p.Clients, 2, workload.DirStatOp(s, ns)) // warm round
		dirstat := bench.RunN(p.Clients, per, workload.DirStatOp(s, ns))
		mkdirE := bench.RunN(p.Clients, per, workload.MkdirEOp(s, ns, "f16"))
		if err := workload.PrepareRenamePingPong(s, ns, p.Clients, "f16"); err != nil {
			s.Stop()
			return err
		}
		renameS := bench.RunN(p.Clients, per, workload.RenameSOp(s, ns, "f16"))
		s.Stop()
		for _, r := range []bench.RunResult{dirstat, mkdirE, renameS} {
			if r.Errors > 0 {
				return fmt.Errorf("%s: %d errors", st.label, r.Errors)
			}
		}
		results = append(results, meas{dirstat.Throughput, mkdirE.Throughput, renameS.Throughput})
	}
	norm := func(v, base float64) string {
		if base == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", v/base)
	}
	rows := [][]string{}
	for i, st := range steps {
		rows = append(rows, []string{
			st.label,
			norm(results[i].dirstat, results[0].dirstat),
			norm(results[i].mkdirE, results[0].mkdirE),
			norm(results[i].renameS, results[0].renameS),
		})
	}
	bench.Table(p.Out, "Figure 16: effects of individual optimisations (normalised to Mantle-base)",
		[]string{"config", "dirstat", "mkdir-e", "dirrename-s"}, rows)
	return nil
}

// Fig17 sweeps path depth and reports lookup latency per system (paper
// Figure 17).
func Fig17(p Params) error {
	p = p.WithDefaults()
	depths := []int{1, 2, 4, 6, 8, 10, 12, 14}
	if p.Quick {
		depths = []int{1, 4, 10}
	}
	header := []string{"system"}
	for _, d := range depths {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	rows := [][]string{}
	for _, name := range Systems {
		opts := SystemOpts{}
		if name == "mantle" {
			opts = DefaultMantleOpts()
		}
		fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
		s, err := NewSystem(name, fabric, opts)
		if err != nil {
			return err
		}
		ns := workload.Build(workload.TreeSpec{Clients: 2, Depth: 4, ObjectsPerClient: 1})
		// Several chains per depth: a single path would turn one
		// MetaTable shard into a hotspot and measure queueing, not depth.
		const chainsPerDepth = 32
		leaves := map[int][]string{}
		for _, d := range depths {
			for i := 0; i < chainsPerDepth; i++ {
				leaves[d] = append(leaves[d], ns.AddChainVariant(d, i))
			}
		}
		if err := ns.Populate(s); err != nil {
			s.Stop()
			return err
		}
		row := []string{name}
		var d1 time.Duration
		for _, d := range depths {
			paths := leaves[d]
			fn := func(w, seq int) (types.Result, error) {
				return s.Lookup(s.Caller().Begin(), paths[w%len(paths)])
			}
			_ = bench.RunN(p.Clients, 2, fn) // warm caches and queues
			res := bench.RunN(p.Clients, p.PerClient, fn)
			if res.Errors > 0 {
				s.Stop()
				return fmt.Errorf("%s depth %d: %d errors", name, d, res.Errors)
			}
			mean := res.Latency.Mean()
			if d == depths[0] {
				d1 = mean
			}
			row = append(row, fmt.Sprintf("%v (%.1fx)", mean.Round(time.Microsecond), ratio(mean, d1)))
		}
		s.Stop()
		rows = append(rows, row)
	}
	bench.Table(p.Out, fmt.Sprintf("Figure 17: lookup latency vs path depth (%d clients; xN vs depth %d)",
		p.Clients, depths[0]), header, rows)
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Fig18 sweeps TopDirPathCache's truncation constant k with follower read
// disabled, reporting lookup latency and cache memory (paper Figure 18).
// The namespace branches near the leaves (as production namespaces do),
// so the number of cacheable k-truncated prefixes — and the cache's
// memory — shrinks geometrically as k grows.
func Fig18(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	var baseLat time.Duration
	// k=0 means cache disabled (the Mantle-base reference).
	for _, k := range []int{0, 1, 2, 3, 4, 5} {
		opts := DefaultMantleOpts()
		opts.MantleFollowerRead = false
		if k == 0 {
			opts.MantleCache = false
			opts.MantleK = 3
		} else {
			opts.MantleK = k
		}
		fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
		svc, err := NewSystem("mantle", fabric, opts)
		if err != nil {
			return err
		}
		s := svc
		branch := 3
		if p.Quick {
			branch = 2
		}
		ns := workload.Build(workload.TreeSpec{
			Clients: max(p.Clients/8, 2), Depth: p.Depth, ObjectsPerClient: 1,
			BranchLevels: 4, BranchFactor: branch,
		})
		if err := ns.Populate(s); err != nil {
			s.Stop()
			return err
		}
		// Warm the cache: production TopDirPathCaches are warm (entries
		// are static and long-lived, §5.1.1), so the sweep measures the
		// steady state, not cold misses. One untimed pass touches every
		// leaf.
		warm := bench.RunN(min(p.Clients, 64), 1, func(w, seq int) (types.Result, error) {
			var last types.Result
			for c := w; c < len(ns.LeafDirs); c += min(p.Clients, 64) {
				for _, leaf := range ns.LeafDirs[c] {
					r, err := s.Lookup(s.Caller().Begin(), leaf)
					if err != nil {
						return r, err
					}
					last = r
				}
			}
			return last, nil
		})
		if warm.Errors > 0 {
			s.Stop()
			return fmt.Errorf("k=%d warmup: %d errors", k, warm.Errors)
		}
		res := bench.RunN(p.Clients, p.PerClient, workload.LookupLeafDirOp(s, ns))
		if res.Errors > 0 {
			s.Stop()
			return fmt.Errorf("k=%d: %d errors", k, res.Errors)
		}
		m := s.(*core.Mantle)
		entries, bytes, hits, misses := m.Index().CacheStats()
		s.Stop()
		mean := res.Latency.Mean()
		if k == 0 {
			baseLat = mean
		}
		label := fmt.Sprintf("k=%d", k)
		if k == 0 {
			label = "no cache"
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses) * 100
		}
		rows = append(rows, []string{
			label,
			mean.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", ratio(mean, baseLat)),
			fmt.Sprintf("%d", entries),
			fmt.Sprintf("%.1f KiB", float64(bytes)/1024),
			fmt.Sprintf("%.1f%%", hitRate),
		})
	}
	bench.Table(p.Out, "Figure 18: impact of k in TopDirPathCache (follower read off)",
		[]string{"config", "lookup mean", "normalised", "cached prefixes", "cache memory", "hit rate"}, rows)
	return nil
}

// Fig19a sweeps namespace size at fixed concurrency and reports objstat
// and create throughput (paper Figure 19a: flat across 1–10 billion
// entries; here 1×–10× the base population).
func Fig19a(p Params) error {
	p = p.WithDefaults()
	scales := []int{1, 2, 5, 10}
	if p.Quick {
		scales = []int{1, 2}
	}
	rows := [][]string{}
	for _, scale := range scales {
		opts := DefaultMantleOpts()
		fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
		s, err := NewSystem("mantle", fabric, opts)
		if err != nil {
			return err
		}
		ns := workload.Build(workload.TreeSpec{
			Clients: p.Clients * scale, Depth: p.Depth, ObjectsPerClient: p.ObjectsPerClient,
		})
		if err := ns.Populate(s); err != nil {
			s.Stop()
			return err
		}
		// One untimed warm round settles caches and the allocator before
		// measuring, so the sweep isolates the namespace-size effect.
		_ = bench.RunN(p.Clients, 2, workload.ObjStatOp(s, ns))
		objstat := bench.RunN(p.Clients, p.PerClient, workload.ObjStatOp(s, ns))
		create := bench.RunN(p.Clients, p.PerClient, workload.CreateOp(s, ns, "f19a"))
		s.Stop()
		rows = append(rows, []string{
			fmt.Sprintf("%dx (%d entries)", scale, ns.Entries()),
			bench.Kops(objstat.Throughput),
			bench.Kops(create.Throughput),
		})
	}
	bench.Table(p.Out, "Figure 19a: throughput vs namespace size (fixed clients)",
		[]string{"namespace", "objstat", "create"}, rows)
	return nil
}

// Fig19b sweeps client concurrency and reports create plus objstat under
// three read configurations: leader only, +2 followers, +2 learners
// (paper Figure 19b).
func Fig19b(p Params) error {
	p = p.WithDefaults()
	clientCounts := []int{p.Clients / 4, p.Clients / 2, p.Clients, p.Clients * 2, p.Clients * 4}
	if p.Quick {
		clientCounts = []int{p.Clients, p.Clients * 2}
	}
	configs := []struct {
		label string
		opts  SystemOpts
	}{
		{"objstat (leader only)", func() SystemOpts {
			o := DefaultMantleOpts()
			o.MantleFollowerRead = false
			return o
		}()},
		{"objstat +followers", func() SystemOpts {
			o := DefaultMantleOpts()
			o.MantleFollowerRead = true
			return o
		}()},
		{"objstat +learners", func() SystemOpts {
			o := DefaultMantleOpts()
			o.MantleFollowerRead = true
			o.MantleLearners = 2
			return o
		}()},
	}
	header := []string{"workload"}
	for _, c := range clientCounts {
		header = append(header, fmt.Sprintf("%d clients", c))
	}
	rows := [][]string{}

	// create row (default config).
	{
		s, ns, err := BuildPopulated("mantle", p, DefaultMantleOpts())
		if err != nil {
			return err
		}
		row := []string{"create"}
		for i, c := range clientCounts {
			_ = bench.RunN(c, 2, workload.CreateOp(s, ns, fmt.Sprintf("f19bw-%d", i)))
			res := bench.RunN(c, p.PerClient, workload.CreateOp(s, ns, fmt.Sprintf("f19b-%d", i)))
			if res.Errors > 0 {
				s.Stop()
				return fmt.Errorf("create @%d: %d errors", c, res.Errors)
			}
			row = append(row, bench.Kops(res.Throughput))
		}
		s.Stop()
		rows = append(rows, row)
	}
	for _, cfg := range configs {
		s, ns, err := BuildPopulated("mantle", p, cfg.opts)
		if err != nil {
			return err
		}
		row := []string{cfg.label}
		for _, c := range clientCounts {
			_ = bench.RunN(c, 2, workload.ObjStatOp(s, ns)) // warm round
			res := bench.RunN(c, p.PerClient, workload.ObjStatOp(s, ns))
			if res.Errors > 0 {
				s.Stop()
				return fmt.Errorf("%s @%d: %d errors", cfg.label, c, res.Errors)
			}
			row = append(row, bench.Kops(res.Throughput))
		}
		s.Stop()
		rows = append(rows, row)
	}
	bench.Table(p.Out, "Figure 19b: scalability vs clients (create; objstat with follower/learner read)",
		header, rows)
	return nil
}
