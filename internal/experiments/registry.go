package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Func runs one experiment.
type Func func(p Params) error

// Registry maps experiment ids (paper table/figure numbers) to their
// drivers.
var Registry = map[string]Func{
	"fig3":   Fig3,
	"fig4a":  Fig4a,
	"fig4b":  Fig4b,
	"tab1":   Table1,
	"tab2":   Table2,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"fig19a": Fig19a,
	"fig19b": Fig19b,
	"fig20":  Fig20,
	"tab3":   Table3,
	"heat":   Heat,
	"scale":  Scale,
	"dr":     DR,
}

// All returns the experiment ids in a stable order.
func All() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the given experiments (all when ids is empty).
func Run(ids []string, p Params) error {
	if len(ids) == 0 {
		ids = All()
	}
	p = p.WithDefaults()
	for _, id := range ids {
		fn, ok := Registry[id]
		if !ok {
			return fmt.Errorf("experiments: unknown id %q (known: %v)", id, All())
		}
		start := time.Now()
		fmt.Fprintf(p.Out, "\n######## %s ########\n", id)
		if err := fn(p); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprintf(p.Out, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
