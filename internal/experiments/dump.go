package experiments

import (
	"fmt"
	"io"

	"mantle/internal/api"
	"mantle/internal/metrics"
)

// DumpSystem writes one system's observability evidence to w after a
// measurement: the service metrics registry when the system exposes one
// (Mantle's includes the latency_resolve / latency_txn_commit /
// latency_raft_propose percentile histograms), the RPC caller's
// fault-handling counters, and the fabric's per-edge trip/loss/latency
// registry. Every figure regeneration run with Params.MetricsOut thus
// also emits tail-latency and trip-count evidence.
func DumpSystem(w io.Writer, name string, s api.Service) {
	fmt.Fprintf(w, "# system: %s\n", name)
	if m, ok := s.(interface{ Metrics() *metrics.Registry }); ok {
		_ = m.Metrics().Write(w)
	} else {
		retries, timeouts, drops := s.Caller().Stats()
		fmt.Fprintf(w, "rpc_retries %d\nrpc_timeouts %d\nrpc_drops %d\n", retries, timeouts, drops)
	}
	_ = s.Caller().Fabric().WriteMetrics(w)
	fmt.Fprintln(w)
}
