package experiments

import (
	"fmt"

	"mantle/internal/bench"
	"mantle/internal/core"
	"mantle/internal/workload"
)

// Heat drives a Zipfian stat workload plus a shared-directory mkdir
// churn against Mantle and dumps the resulting heat plane: proxy and
// IndexNode heavy hitters, the per-shard load table, and the slow-op
// flight recorder. Not a paper figure — the operational view the
// cluster heat plane exists for. The full report goes to
// Params.HeatOut when set (the CI chaos lane uploads it as an
// artifact).
func Heat(p Params) error {
	s, ns, err := BuildPopulated("mantle", p, DefaultMantleOpts())
	if err != nil {
		return err
	}
	defer s.Stop()
	m := s.(*core.Mantle)

	const skew = 1.3
	stat := bench.RunN(p.Clients, p.PerClient*4,
		workload.ZipfObjStatOp(s, ns, p.Clients, skew, 1))
	churn := bench.RunN(p.Clients, p.PerClient,
		workload.MkdirSOp(s, ns, "heat"))

	fmt.Fprintf(p.Out, "zipf objstat (s=%.1f): %d ops, %.0f op/s, p99 %v\n",
		skew, stat.Ops, stat.Throughput, stat.Latency.Quantile(0.99))
	fmt.Fprintf(p.Out, "mkdir-s churn: %d ops, %.0f op/s\n", churn.Ops, churn.Throughput)

	st := m.Status()
	if len(st.Proxy.HotDirs) > 0 {
		top := st.Proxy.HotDirs[0]
		fmt.Fprintf(p.Out, "hottest dir: %s (%d lookups, ±%d)\n", top.Key, top.Count, top.Err)
	}
	fmt.Fprintf(p.Out, "slow ops: %d sampled, %d captured\n",
		st.SlowOps.Sampled, st.SlowOps.Captured)

	if p.HeatOut != nil {
		m.WriteHeatReport(p.HeatOut)
	}
	return nil
}
