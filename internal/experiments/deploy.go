// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 and §6) against the four metadata services. Each
// experiment prints the rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured shapes.
//
// The simulated deployment mirrors Table 2 on the netsim fabric:
//
//	Tectonic:  21 DBtable shards
//	InfiniFS:   1 rename-coordinator node + 18 DBtable shards
//	LocoFS:     3-replica directory server + 18 object-store shards
//	Mantle:     3-replica IndexNode (+ optional learners) + 18 TafDB shards
//
// All deployments share one network fabric (200 µs RTT by default) and,
// in the application experiments, one data service. Client counts and
// namespace sizes are scaled down from the paper's 512-rank / billion-
// entry testbed; the scaling rationale is in DESIGN.md §1.
package experiments

import (
	"fmt"
	"io"
	"time"

	"mantle/internal/api"
	"mantle/internal/baselines/dbtable"
	"mantle/internal/baselines/infinifs"
	"mantle/internal/baselines/locofs"
	"mantle/internal/baselines/tectonic"
	"mantle/internal/core"
	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/tafdb"
	"mantle/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	// Out receives the printed tables.
	Out io.Writer
	// RTT is the per-RPC network round trip.
	RTT time.Duration
	// Clients is the benchmark concurrency (the paper uses 512 ranks).
	Clients int
	// PerClient is the op count each client performs per measurement.
	PerClient int
	// ObjectsPerClient sizes the pre-populated namespace.
	ObjectsPerClient int
	// Depth is the working-directory depth (paper: average path depth 10).
	Depth int
	// Quick shrinks everything for smoke tests.
	Quick bool
	// ScaleEntries caps the namespace size of the "scale" flatness sweep
	// (default 1M; the committed BENCH_PR9.json runs it at 10M).
	ScaleEntries int
	// MetricsOut, when non-nil, receives a per-system observability dump
	// (metrics registry, RPC counters, fabric edge registry) after each
	// system finishes its measurement.
	MetricsOut io.Writer
	// HeatOut, when non-nil, receives the full heat-plane report from
	// the "heat" experiment (hot dirs, shard loads, slow-op captures).
	HeatOut io.Writer
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.Out == nil {
		p.Out = io.Discard
	}
	if p.RTT == 0 {
		p.RTT = 2 * time.Millisecond
	}
	if p.Clients <= 0 {
		p.Clients = 256
	}
	if p.PerClient <= 0 {
		p.PerClient = 30
	}
	if p.ObjectsPerClient <= 0 {
		p.ObjectsPerClient = 40
	}
	if p.Depth <= 0 {
		p.Depth = 10
	}
	if p.ScaleEntries <= 0 {
		p.ScaleEntries = 1_000_000
	}
	if p.Quick {
		p.Clients = min(p.Clients, 16)
		p.PerClient = min(p.PerClient, 5)
		p.ObjectsPerClient = min(p.ObjectsPerClient, 10)
	}
	return p
}

// Deployment model constants (the Table 2 stand-ins). These are the only
// hardware knobs; every performance claim in EXPERIMENTS.md is about
// shapes under this model, not absolute numbers.
// One simulated millisecond stands for roughly 100 µs of testbed time:
// the host's OS timer granularity (~1 ms) forces the simulation onto a
// 10x-stretched clock so that per-sleep overshoot stays a small relative
// error. Compare shapes and ratios with the paper, not absolute values
// (divide simulated latencies by ~10, multiply throughput by ~10 for a
// rough testbed-scale reading).
const (
	tafShards  = 18
	tafWorkers = 20
	tafOpCost  = 400 * time.Microsecond
	tafTxnCost = 1500 * time.Microsecond

	dbShardsTectonic = 21
	dbShards         = 18
	dbWorkers        = 4
	dbOpCost         = 400 * time.Microsecond
	dbLatchCost      = 1500 * time.Microsecond
	dbAtomicCost     = 300 * time.Microsecond

	idxWorkers   = 12
	idxBaseCost  = 200 * time.Microsecond
	idxLevelCost = 100 * time.Microsecond
	idxWriteCost = 200 * time.Microsecond

	locoDirWorkers = 24
	locoBaseCost   = 200 * time.Microsecond
	locoLevelCost  = 100 * time.Microsecond
	locoLatchCost  = 1200 * time.Microsecond

	fsyncCost = 400 * time.Microsecond
	raftBatch = 256

	retryBase = 200 * time.Microsecond
	retryMax  = 20 * time.Millisecond
)

// SystemOpts customises one system's construction.
type SystemOpts struct {
	// Mantle ablation/feature knobs.
	MantleCache        bool
	MantleK            int
	MantleBatch        bool
	MantleDelta        tafdb.DeltaMode
	MantleFollowerRead bool
	MantleLearners     int
	// MantleHotspot enables elastic hotspot management (hot-set
	// replication, load-aware routing, shedding) on the IndexNode group.
	MantleHotspot bool
	// MantleProxyCache adds the Figure 20 proxy-side metadata cache on
	// top of Mantle's own TopDirPathCache.
	MantleProxyCache bool
	// InfiniFS AM-Cache (Figure 20).
	InfiniFSAMCache bool
	// Tectonic legacy distributed-transaction mode (Figure 4).
	TectonicLegacyTxn bool
}

// DefaultMantleOpts is the production Mantle configuration (§6.1): cache
// with k=3, Raft log batching, auto delta records, and follower read —
// the paper's §6.3 results credit "TopDirPathCache and follower read",
// so the comparison figures run with both on. Experiments that isolate a
// feature (Figure 16's ablation, Figure 18's k-sweep, Figure 19b's
// leader-only row) switch the relevant flags themselves.
func DefaultMantleOpts() SystemOpts {
	return SystemOpts{
		MantleCache:        true,
		MantleK:            3,
		MantleBatch:        true,
		MantleDelta:        tafdb.DeltaAuto,
		MantleFollowerRead: true,
	}
}

// NewSystem constructs the named system on fabric.
func NewSystem(name string, fabric *netsim.Fabric, opts SystemOpts) (api.Service, error) {
	switch name {
	case "mantle":
		k := opts.MantleK
		if k <= 0 {
			k = 3
		}
		return core.New(core.Config{
			Fabric:     fabric,
			ProxyCache: opts.MantleProxyCache,
			TafDB: tafdb.Config{
				Shards: tafShards, Workers: tafWorkers,
				OpCost: tafOpCost, TxnCost: tafTxnCost,
				Delta:     opts.MantleDelta,
				RetryBase: retryBase, RetryMax: retryMax,
			},
			RetryBase: retryBase, RetryMax: retryMax,
			Index: indexnode.Config{
				Voters: 3, Learners: opts.MantleLearners,
				K: k, CacheEnabled: opts.MantleCache,
				FollowerRead:   opts.MantleFollowerRead,
				Hotspot:        opts.MantleHotspot,
				Workers:        idxWorkers,
				LookupBaseCost: idxBaseCost, LookupLevelCost: idxLevelCost,
				WriteCost: idxWriteCost,
				FsyncCost: fsyncCost, BatchEnabled: opts.MantleBatch, MaxBatch: raftBatch,
				// "+raftlogbatch" is batching plus pipelined
				// replication — the two halves of the paper's log
				// batching optimisation.
				Pipeline: opts.MantleBatch,
			},
		})
	case "tectonic", "dbtable":
		return tectonic.New(tectonic.Config{
			Fabric: fabric,
			Store: dbtable.Config{
				Shards: dbShardsTectonic, Workers: dbWorkers, OpCost: dbOpCost,
				LatchCost: dbLatchCost, AtomicCost: dbAtomicCost,
				RetryBase: retryBase, RetryMax: retryMax,
				Name: name,
			},
			DistributedTxn: name == "dbtable" || opts.TectonicLegacyTxn,
			NameOverride:   name,
		}), nil
	case "infinifs":
		return infinifs.New(infinifs.Config{
			Fabric: fabric,
			Store: dbtable.Config{
				Shards: dbShards, Workers: dbWorkers, OpCost: dbOpCost,
				LatchCost: dbLatchCost, AtomicCost: dbAtomicCost,
				RetryBase: retryBase, RetryMax: retryMax,
			},
			CoordWorkers: idxWorkers,
			AMCache:      opts.InfiniFSAMCache,
		}), nil
	case "locofs":
		return locofs.New(locofs.Config{
			Fabric: fabric,
			ObjStore: dbtable.Config{
				Shards: dbShards, Workers: dbWorkers, OpCost: dbOpCost,
				LatchCost: dbLatchCost, AtomicCost: dbAtomicCost,
			},
			DirWorkers:      locoDirWorkers,
			ResolveBaseCost: locoBaseCost, ResolveLevelCost: locoLevelCost,
			LatchCost: locoLatchCost, FsyncCost: fsyncCost, Voters: 3,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", name)
	}
}

// Systems is the comparison order used throughout the evaluation.
var Systems = []string{"tectonic", "infinifs", "locofs", "mantle"}

// BuildPopulated constructs the named system with a populated mdtest
// namespace.
func BuildPopulated(name string, p Params, opts SystemOpts) (api.Service, *workload.Namespace, error) {
	fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
	s, err := NewSystem(name, fabric, opts)
	if err != nil {
		return nil, nil, err
	}
	ns := workload.Build(workload.TreeSpec{
		Clients: p.Clients, Depth: p.Depth, ObjectsPerClient: p.ObjectsPerClient,
	})
	if err := ns.Populate(s); err != nil {
		s.Stop()
		return nil, nil, err
	}
	return s, ns, nil
}
