package experiments

import (
	"fmt"
	"time"

	"mantle/internal/bench"
	"mantle/internal/dataservice"
	"mantle/internal/netsim"
	"mantle/internal/workload"
)

// appScale derives the scaled application shapes from Params.
func appScale(p Params) (analytics workload.AnalyticsConfig, audio workload.AudioConfig) {
	tasks := p.Clients / 2
	if tasks < 8 {
		tasks = 8
	}
	analytics = workload.AnalyticsConfig{
		Queries:        2,
		TasksPerQuery:  tasks,
		ObjectsPerTask: 3,
		ObjectSize:     256 << 10,
		Workers:        p.Clients,
	}
	audio = workload.AudioConfig{
		Inputs:           p.Clients * 4,
		SegmentsPerInput: 6,
		InputSize:        4 << 20,
		SegmentSize:      256 << 10,
		Workers:          p.Clients,
	}
	return
}

// runApps executes both applications on the named system, optionally with
// data access, returning the two reports.
func runApps(p Params, name string, opts SystemOpts, data bool) (*workload.AppReport, *workload.AppReport, error) {
	fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
	s, err := NewSystem(name, fabric, opts)
	if err != nil {
		return nil, nil, err
	}
	defer s.Stop()
	ns := workload.Build(workload.TreeSpec{
		Clients: p.Clients, Depth: p.Depth, ObjectsPerClient: p.ObjectsPerClient,
	})
	if err := ns.Populate(s); err != nil {
		return nil, nil, err
	}
	anCfg, auCfg := appScale(p)
	if data {
		ds := dataservice.New(dataservice.Config{
			Fabric: fabric, Nodes: 8, Workers: 16,
			BaseCost: 400 * time.Microsecond, PerMB: 3 * time.Millisecond,
		})
		anCfg.Data = ds
		auCfg.Data = ds
	}
	auCfg.Namespace = ns
	an, err := workload.RunAnalytics(s, anCfg)
	if err != nil {
		return nil, nil, err
	}
	au, err := workload.RunAudio(s, auCfg)
	if err != nil {
		return nil, nil, err
	}
	return an, au, nil
}

// Fig10 reports application completion times, metadata-only (a) and with
// data access enabled (b) — paper Figure 10.
func Fig10(p Params) error {
	p = p.WithDefaults()
	type row struct{ analytics, audio [2]time.Duration }
	results := map[string]*row{}
	for _, name := range Systems {
		opts := SystemOpts{}
		if name == "mantle" {
			opts = DefaultMantleOpts()
		}
		r := &row{}
		for i, data := range []bool{false, true} {
			an, au, err := runApps(p, name, opts, data)
			if err != nil {
				return fmt.Errorf("%s (data=%v): %w", name, data, err)
			}
			if an.Errors > 0 || au.Errors > 0 {
				return fmt.Errorf("%s (data=%v): app errors an=%d au=%d", name, data, an.Errors, au.Errors)
			}
			r.analytics[i] = an.Completion
			r.audio[i] = au.Completion
		}
		results[name] = r
	}
	rows := [][]string{}
	for _, name := range Systems {
		r := results[name]
		rows = append(rows, []string{
			name,
			r.analytics[0].Round(time.Millisecond).String(),
			r.audio[0].Round(time.Millisecond).String(),
			r.analytics[1].Round(time.Millisecond).String(),
			r.audio[1].Round(time.Millisecond).String(),
		})
	}
	bench.Table(p.Out, "Figure 10: application completion time",
		[]string{"system", "analytics (meta only)", "audio (meta only)", "analytics (+data)", "audio (+data)"}, rows)
	return nil
}

// Fig11 reports the latency CDFs of the representative metadata
// operations in the two applications (paper Figure 11): mkdir and
// dirrename for Analytics, objstat and create for Audio.
func Fig11(p Params) error {
	p = p.WithDefaults()
	hists := map[string]map[string]*bench.Histogram{} // op -> system -> hist
	for _, name := range Systems {
		opts := SystemOpts{}
		if name == "mantle" {
			opts = DefaultMantleOpts()
		}
		an, au, err := runApps(p, name, opts, false)
		if err != nil {
			return err
		}
		for op, h := range an.Ops {
			if op == "mkdir" || op == "dirrename" {
				if hists[op] == nil {
					hists[op] = map[string]*bench.Histogram{}
				}
				hists[op][name] = h
			}
		}
		for op, h := range au.Ops {
			if op == "objstat" || op == "create" {
				key := "audio-" + op
				if hists[key] == nil {
					hists[key] = map[string]*bench.Histogram{}
				}
				hists[key][name] = h
			}
		}
	}
	for _, op := range []string{"mkdir", "dirrename", "audio-objstat", "audio-create"} {
		series := []bench.NamedHist{}
		for _, name := range Systems {
			if h, ok := hists[op][name]; ok {
				series = append(series, bench.NamedHist{Name: name, Hist: h})
			}
		}
		bench.CDFSummary(p.Out, fmt.Sprintf("Figure 11: latency CDF of %s", op), series)
	}
	return nil
}

// Fig20 evaluates adding metadata caching (paper Figure 20): InfiniFS ±
// AM-Cache and Mantle (whose TopDirPathCache plays the same role — we
// contrast Mantle-base vs full Mantle) on both applications.
func Fig20(p Params) error {
	p = p.WithDefaults()
	configs := []struct {
		label string
		name  string
		opts  SystemOpts
	}{
		{"infinifs", "infinifs", SystemOpts{}},
		{"infinifs+cache", "infinifs", SystemOpts{InfiniFSAMCache: true}},
		{"mantle", "mantle", DefaultMantleOpts()},
		{"mantle+cache", "mantle", func() SystemOpts {
			o := DefaultMantleOpts()
			o.MantleProxyCache = true
			return o
		}()},
	}
	rows := [][]string{}
	for _, c := range configs {
		an, au, err := runApps(p, c.name, c.opts, false)
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		rows = append(rows, []string{
			c.label,
			an.Completion.Round(time.Millisecond).String(),
			au.Completion.Round(time.Millisecond).String(),
		})
	}
	bench.Table(p.Out, "Figure 20: impact of adding metadata caching (completion time)",
		[]string{"config", "analytics", "audio"}, rows)
	return nil
}
