package experiments

import (
	"fmt"
	"time"

	"mantle/internal/bench"
	"mantle/internal/netsim"
	"mantle/internal/workload"
)

// Scale is the namespace-size flatness sweep at real storage scale — the
// Figure 19a claim ("throughput is flat from 1 to 10 billion entries")
// checked against actual per-entry storage rather than the scaled-down
// experiment population. It builds namespaces of 100K up to
// Params.ScaleEntries entries through the bulk-load fast path, then
// reports objstat throughput, p50/p99 latency, and resident bytes per
// entry at each size. Flat p50/p99 across two orders of magnitude of
// namespace size is the pass condition; bytes/entry is the capacity
// story (how many entries fit in one metadata node's RAM).
func Scale(p Params) error {
	p = p.WithDefaults()
	sizes := []int{100_000, 1_000_000, 10_000_000}
	if p.Quick {
		sizes = []int{20_000, 60_000}
	}
	var run []int
	for _, n := range sizes {
		if n <= p.ScaleEntries {
			run = append(run, n)
		}
	}
	if len(run) == 0 {
		run = []int{p.ScaleEntries}
	}

	clients := min(p.Clients, 64)
	rows := [][]string{}
	var p99base time.Duration
	for _, n := range run {
		heap0 := bench.Heap()
		fabric := netsim.NewFabric(netsim.Config{RTT: p.RTT})
		s, err := NewSystem("mantle", fabric, DefaultMantleOpts())
		if err != nil {
			return err
		}
		sn := workload.BuildScale(n)
		popStart := time.Now()
		if err := sn.Populate(s); err != nil {
			s.Stop()
			return fmt.Errorf("scale %d: populate: %w", n, err)
		}
		popWall := time.Since(popStart)
		grown := bench.Heap().Sub(heap0)
		bytesPerEntry := float64(grown.HeapAlloc) / float64(sn.Entries())

		_ = bench.RunN(clients, 2, sn.StatOp(s)) // warm round
		res := bench.RunN(clients, p.PerClient, sn.StatOp(s))
		s.Stop()
		if res.Errors > 0 {
			return fmt.Errorf("scale %d: %d errors", n, res.Errors)
		}
		p99 := res.Latency.Quantile(0.99)
		if p99base == 0 {
			p99base = p99
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", sn.Entries()),
			popWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", bytesPerEntry),
			bench.Kops(res.Throughput),
			res.Latency.Quantile(0.5).Round(time.Microsecond).String(),
			p99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", ratio(p99, p99base)),
		})
	}
	bench.Table(p.Out, fmt.Sprintf("Scale: objstat flatness vs namespace size (%d clients; p99 normalised to smallest)", clients),
		[]string{"entries", "populate", "bytes/entry", "objstat", "p50", "p99", "p99 vs base"}, rows)
	return nil
}
