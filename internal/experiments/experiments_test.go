package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickParams shrinks every experiment so the whole suite smoke-tests in
// seconds. The full-scale run happens via cmd/experiments.
func quickParams(buf *bytes.Buffer) Params {
	return Params{
		Out:   buf,
		RTT:   50 * time.Microsecond,
		Quick: true,
	}.WithDefaults()
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have a driver.
	want := []string{
		"fig3", "fig4a", "fig4b", "tab1", "tab2",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19a", "fig19b", "fig20", "tab3",
		"heat", "scale", "dr",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestUnknownSystem(t *testing.T) {
	if _, err := NewSystem("bogus", nil, SystemOpts{}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	err := Run([]string{"fig999"}, Params{Out: &buf, Quick: true})
	if err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("err = %v", err)
	}
}

// The smoke tests below run each experiment at Quick scale and assert
// the expected table headers appear.
func runQuick(t *testing.T, id string, wantSnippets ...string) {
	t.Helper()
	if testing.Short() {
		t.Skipf("%s: experiment smoke tests are the long lane (make chaos)", id)
	}
	var buf bytes.Buffer
	p := quickParams(&buf)
	if err := Registry[id](p); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
	}
	out := buf.String()
	for _, w := range wantSnippets {
		if !strings.Contains(out, w) {
			t.Fatalf("%s output missing %q:\n%s", id, w, out)
		}
	}
}

func TestFig3Quick(t *testing.T)  { runQuick(t, "fig3", "Figure 3", "ns4", "avg depth") }
func TestFig4aQuick(t *testing.T) { runQuick(t, "fig4a", "Figure 4a", "lookup share") }
func TestFig4bQuick(t *testing.T) { runQuick(t, "fig4b", "Figure 4b", "no conflict", "dirrename") }
func TestTable1Quick(t *testing.T) {
	runQuick(t, "tab1", "Table 1", "mantle", "tectonic", "infinifs", "locofs")
}
func TestTable2Quick(t *testing.T) { runQuick(t, "tab2", "Table 2", "IndexNode", "TafDB") }
func TestFig12Quick(t *testing.T)  { runQuick(t, "fig12", "Figure 12", "objstat", "mantle") }
func TestFig13Quick(t *testing.T)  { runQuick(t, "fig13", "Figure 13", "lookup", "execute") }
func TestFig14Quick(t *testing.T)  { runQuick(t, "fig14", "Figure 14", "mkdir-s", "dirrename-s") }
func TestFig15Quick(t *testing.T)  { runQuick(t, "fig15", "Figure 15", "loopdetect") }
func TestFig16Quick(t *testing.T) {
	runQuick(t, "fig16", "Figure 16", "mantle-base", "+pathcache", "+follower read")
}
func TestFig17Quick(t *testing.T)  { runQuick(t, "fig17", "Figure 17", "d=10") }
func TestFig18Quick(t *testing.T)  { runQuick(t, "fig18", "Figure 18", "k=3", "no cache") }
func TestFig19aQuick(t *testing.T) { runQuick(t, "fig19a", "Figure 19a", "entries") }
func TestFig19bQuick(t *testing.T) {
	runQuick(t, "fig19b", "Figure 19b", "+learners", "create")
}
func TestFig10Quick(t *testing.T) { runQuick(t, "fig10", "Figure 10", "+data") }
func TestFig11Quick(t *testing.T) { runQuick(t, "fig11", "Figure 11", "dirrename", "p99") }
func TestFig20Quick(t *testing.T) {
	runQuick(t, "fig20", "Figure 20", "infinifs+cache", "mantle+cache")
}
func TestTable3Quick(t *testing.T) {
	runQuick(t, "tab3", "Table 3", "C1", "peak lookup")
}

func TestDRQuick(t *testing.T) {
	runQuick(t, "dr", "time-to-converge", "loss window: 0 records discarded",
		"0 row divergences")
}

func TestHeatQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heat: experiment smoke tests are the long lane (make chaos)")
	}
	var buf, report bytes.Buffer
	p := quickParams(&buf)
	p.HeatOut = &report
	if err := Registry["heat"](p); err != nil {
		t.Fatalf("heat: %v\noutput so far:\n%s", err, buf.String())
	}
	for _, w := range []string{"zipf objstat", "hottest dir", "slow ops"} {
		if !strings.Contains(buf.String(), w) {
			t.Fatalf("heat output missing %q:\n%s", w, buf.String())
		}
	}
	for _, w := range []string{"== proxy ==", "== tafdb ==", "shard"} {
		if !strings.Contains(report.String(), w) {
			t.Fatalf("heat report missing %q:\n%s", w, report.String())
		}
	}
}
