package experiments

import (
	"fmt"

	"mantle/internal/api"
	"mantle/internal/bench"
	"mantle/internal/types"
	"mantle/internal/workload"
)

// forEachSystem builds each comparison system fresh (with its own fabric
// and populated namespace) and invokes fn.
func forEachSystem(p Params, names []string, fn func(name string, s api.Service, ns *workload.Namespace) error) error {
	for _, name := range names {
		opts := SystemOpts{}
		if name == "mantle" {
			opts = DefaultMantleOpts()
		}
		s, ns, err := BuildPopulated(name, p, opts)
		if err != nil {
			return err
		}
		err = fn(name, s, ns)
		if err == nil && p.MetricsOut != nil {
			DumpSystem(p.MetricsOut, name, s)
		}
		s.Stop()
		if err != nil {
			return err
		}
	}
	return nil
}

// readOps are the Figure 12/13 operations.
var readOps = []string{"create", "delete", "objstat", "dirstat"}

// runReadOps runs the four object/directory-read operations on s.
func runReadOps(p Params, s api.Service, ns *workload.Namespace) map[string]bench.RunResult {
	out := map[string]bench.RunResult{}
	out["create"] = bench.RunN(p.Clients, p.PerClient, workload.CreateOp(s, ns, "f12"))
	out["delete"] = bench.RunN(p.Clients, p.PerClient, workload.DeleteOp(s, ns, "f12"))
	out["objstat"] = bench.RunN(p.Clients, p.PerClient, workload.ObjStatOp(s, ns))
	out["dirstat"] = bench.RunN(p.Clients, p.PerClient, workload.DirStatOp(s, ns))
	return out
}

// Fig12 reports throughput of create/delete/objstat/dirstat across the
// four systems (paper Figure 12).
func Fig12(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	err := forEachSystem(p, Systems, func(name string, s api.Service, ns *workload.Namespace) error {
		res := runReadOps(p, s, ns)
		row := []string{name}
		for _, op := range readOps {
			r := res[op]
			if r.Errors > 0 {
				return fmt.Errorf("%s %s: %d errors", name, op, r.Errors)
			}
			row = append(row, bench.Kops(r.Throughput))
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return err
	}
	bench.Table(p.Out, "Figure 12: throughput of object ops and directory read ops",
		[]string{"system", "create", "delete", "objstat", "dirstat"}, rows)
	return nil
}

// Fig13 reports the latency breakdown (lookup vs execute, mean µs) of the
// Figure 12 operations (paper Figure 13).
func Fig13(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	err := forEachSystem(p, Systems, func(name string, s api.Service, ns *workload.Namespace) error {
		res := runReadOps(p, s, ns)
		for _, op := range readOps {
			r := res[op]
			rows = append(rows, append([]string{name, op}, bench.BreakdownRow(r)...))
		}
		return nil
	})
	if err != nil {
		return err
	}
	bench.Table(p.Out, "Figure 13: latency breakdown of object/directory read ops (mean µs)",
		[]string{"system", "op", "lookup", "loopdetect", "execute", "total"}, rows)
	return nil
}

// dirModWorkloads runs mkdir-e, mkdir-s, dirrename-e, dirrename-s.
func dirModWorkloads(p Params, s api.Service, ns *workload.Namespace) (map[string]bench.RunResult, error) {
	out := map[string]bench.RunResult{}
	out["mkdir-e"] = bench.RunN(p.Clients, p.PerClient, workload.MkdirEOp(s, ns, "f14e"))
	out["mkdir-s"] = bench.RunN(p.Clients, p.PerClient, workload.MkdirSOp(s, ns, "f14s"))
	// Separate ping-pong directories per rename workload: an odd op count
	// leaves a ping-pong source under its alternate name.
	if err := workload.PrepareRenamePingPong(s, ns, p.Clients, "f14e"); err != nil {
		return nil, err
	}
	out["dirrename-e"] = bench.RunN(p.Clients, p.PerClient, workload.RenameEOp(s, ns, "f14e"))
	if err := workload.PrepareRenamePingPong(s, ns, p.Clients, "f14s"); err != nil {
		return nil, err
	}
	out["dirrename-s"] = bench.RunN(p.Clients, p.PerClient, workload.RenameSOp(s, ns, "f14s"))
	return out, nil
}

var dirModOps = []string{"mkdir-e", "mkdir-s", "dirrename-e", "dirrename-s"}

// Fig14 reports directory-modification throughput under exclusive ('-e')
// and shared ('-s') directories (paper Figure 14).
func Fig14(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	err := forEachSystem(p, Systems, func(name string, s api.Service, ns *workload.Namespace) error {
		res, err := dirModWorkloads(p, s, ns)
		if err != nil {
			return err
		}
		row := []string{name}
		for _, op := range dirModOps {
			r := res[op]
			if r.Errors > 0 {
				return fmt.Errorf("%s %s: %d errors", name, op, r.Errors)
			}
			row = append(row, bench.Kops(r.Throughput))
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return err
	}
	bench.Table(p.Out, "Figure 14: throughput of directory modification ops",
		append([]string{"system"}, dirModOps...), rows)
	return nil
}

// Fig15 reports the lookup/loop-detection/execute breakdown of the
// Figure 14 operations (paper Figure 15).
func Fig15(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	err := forEachSystem(p, Systems, func(name string, s api.Service, ns *workload.Namespace) error {
		res, err := dirModWorkloads(p, s, ns)
		if err != nil {
			return err
		}
		for _, op := range dirModOps {
			r := res[op]
			rows = append(rows, append([]string{name, op}, bench.BreakdownRow(r)...))
		}
		return nil
	})
	if err != nil {
		return err
	}
	bench.Table(p.Out, "Figure 15: latency breakdown of directory modification ops (mean µs)",
		[]string{"system", "op", "lookup", "loopdetect", "execute", "total"}, rows)
	return nil
}

// Table1 measures the RPC round trips a depth-10 lookup consumes on each
// system (paper Table 1's #RTTs column).
func Table1(p Params) error {
	p = p.WithDefaults()
	rows := [][]string{}
	err := forEachSystem(p, Systems, func(name string, s api.Service, ns *workload.Namespace) error {
		_ = bench.RunN(min(p.Clients, 32), 2, workload.LookupOp(s, ns)) // settle elections/caches
		res := bench.RunN(min(p.Clients, 32), p.PerClient, workload.LookupOp(s, ns))
		if res.Errors > 0 {
			return fmt.Errorf("%s lookup: %d errors", name, res.Errors)
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.1f", res.MeanRTTs())})
		return nil
	})
	if err != nil {
		return err
	}
	bench.Table(p.Out, fmt.Sprintf("Table 1: measured #RTTs per lookup (depth %d)", p.Depth),
		[]string{"system", "RTTs/lookup"}, rows)
	fmt.Fprintln(p.Out, "note: InfiniFS issues the same RPC count in parallel; Mantle and LocoFS are single-RPC.")
	return nil
}

// Fig4a reproduces the motivation study's latency breakdown of the
// legacy DBtable metadata service (paper Figure 4a): the lookup step
// dominates objstat, dirstat and delete.
func Fig4a(p Params) error {
	p = p.WithDefaults()
	s, ns, err := BuildPopulated("dbtable", p, SystemOpts{})
	if err != nil {
		return err
	}
	defer s.Stop()
	rows := [][]string{}
	measure := func(op string, r bench.RunResult) {
		total := r.Latency.Mean()
		lookup := r.MeanPhase(types.PhaseLookup)
		share := 0.0
		if total > 0 {
			share = float64(lookup) / float64(total) * 100
		}
		rows = append(rows, append([]string{op}, append(bench.BreakdownRow(r),
			fmt.Sprintf("%.1f%%", share))...))
	}
	measure("objstat", bench.RunN(p.Clients, p.PerClient, workload.ObjStatOp(s, ns)))
	measure("dirstat", bench.RunN(p.Clients, p.PerClient, workload.DirStatOp(s, ns)))
	pre := bench.RunN(p.Clients, p.PerClient, workload.CreateOp(s, ns, "f4"))
	if pre.Errors > 0 {
		return fmt.Errorf("fig4a setup creates: %d errors", pre.Errors)
	}
	measure("delete", bench.RunN(p.Clients, p.PerClient, workload.DeleteOp(s, ns, "f4")))
	bench.Table(p.Out, "Figure 4a: latency breakdown of the DBtable-based service (mean µs)",
		[]string{"op", "lookup", "loopdetect", "execute", "total", "lookup share"}, rows)
	return nil
}

// Fig4b reproduces the motivation study's contention collapse (paper
// Figure 4b): mkdir and dirrename on the legacy DBtable service with no
// conflicts vs all threads hitting one shared directory.
func Fig4b(p Params) error {
	p = p.WithDefaults()
	s, ns, err := BuildPopulated("dbtable", p, SystemOpts{})
	if err != nil {
		return err
	}
	defer s.Stop()

	mkE := bench.RunN(p.Clients, p.PerClient, workload.MkdirEOp(s, ns, "f4e"))
	mkS := bench.RunN(p.Clients, p.PerClient, workload.MkdirSOp(s, ns, "f4s"))
	if err := workload.PrepareRenamePingPong(s, ns, p.Clients, "f4e"); err != nil {
		return err
	}
	rnE := bench.RunN(p.Clients, p.PerClient, workload.RenameEOp(s, ns, "f4e"))
	if err := workload.PrepareRenamePingPong(s, ns, p.Clients, "f4s"); err != nil {
		return err
	}
	rnS := bench.RunN(p.Clients, p.PerClient, workload.RenameSOp(s, ns, "f4s"))

	reduction := func(e, s bench.RunResult) string {
		if e.Throughput == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", (1-s.Throughput/e.Throughput)*100)
	}
	bench.Table(p.Out, "Figure 4b: DBtable directory-update throughput under contention",
		[]string{"op", "no conflict", "all conflict", "reduction", "retries(all-conflict)"},
		[][]string{
			{"mkdir", bench.Kops(mkE.Throughput), bench.Kops(mkS.Throughput),
				reduction(mkE, mkS), fmt.Sprintf("%d", mkS.Retries)},
			{"dirrename", bench.Kops(rnE.Throughput), bench.Kops(rnS.Throughput),
				reduction(rnE, rnS), fmt.Sprintf("%d", rnS.Retries)},
		})
	return nil
}
