package experiments

import (
	"fmt"

	"mantle/internal/bench"
	"mantle/internal/nsstats"
	"mantle/internal/workload"
)

// Fig3 regenerates the namespace characterisation study (paper Figure 3):
// five synthetic namespaces matching the reported shapes — billion-scale
// entry counts (scaled 1/1000 by default), 8–18% directories, average
// access depths around 11.
func Fig3(p Params) error {
	p = p.WithDefaults()
	scale := 2000
	if p.Quick {
		scale = 50
	}
	// Per-namespace shape: clients ~ leaf dirs; depth tuned so access
	// depths land at the paper's 10.6–11.9 averages.
	specs := []struct {
		name    string
		clients int
		objects int
		depth   int
		small   float64
	}{
		// Objects-per-client tuned so the directory share lands in the
		// paper's 8.3–18.0% band (each client subtree holds ~9 dirs).
		{"ns1", scale, 52, 10, 0.55},
		{"ns2", scale, 99, 10, 0.45},
		{"ns3", scale * 3 / 2, 70, 10, 0.50},
		{"ns4", scale * 2, 45, 10, 0.60},
		{"ns5", scale, 85, 11, 0.40},
	}
	rows := [][]string{}
	for _, sp := range specs {
		ns := workload.Build(workload.TreeSpec{
			Clients: sp.clients, Depth: sp.depth, ObjectsPerClient: sp.objects,
			SmallRatio: sp.small, Seed: int64(len(sp.name)),
		})
		st := nsstats.Analyze(ns)
		rows = append(rows, []string{
			sp.name,
			fmt.Sprintf("%d", st.Entries),
			fmt.Sprintf("%.1f%%", st.ObjRatio*100),
			fmt.Sprintf("%.1f%%", st.DirRatio*100),
			fmt.Sprintf("%.1f", st.AvgDepth),
			fmt.Sprintf("%d", st.MedianDepth),
			fmt.Sprintf("%d", st.MaxDepth),
		})
	}
	bench.Table(p.Out, "Figure 3: characteristics of five synthetic namespaces (scaled from the paper's billion-entry traces)",
		[]string{"namespace", "entries", "objects", "dirs", "avg depth", "median depth", "max depth"}, rows)
	return nil
}

// Table2 prints the simulated deployment configuration per system,
// mirroring the paper's Table 2.
func Table2(p Params) error {
	p = p.WithDefaults()
	bench.Table(p.Out, "Table 2: simulated deployment configurations",
		[]string{"system", "metadata", "model"},
		[][]string{
			{"tectonic", fmt.Sprintf("%d DBtable shards", dbShardsTectonic),
				fmt.Sprintf("%d workers/shard, %v/op", dbWorkers, dbOpCost)},
			{"infinifs", fmt.Sprintf("1 rename coordinator + %d DBtable shards", dbShards),
				fmt.Sprintf("%d workers/shard, %v/op, atomic %v", dbWorkers, dbOpCost, dbAtomicCost)},
			{"locofs", fmt.Sprintf("3-replica directory server + %d object shards", dbShards),
				fmt.Sprintf("%d dir workers, %v + %v/level, fsync %v (no batch)",
					locoDirWorkers, locoBaseCost, locoLevelCost, fsyncCost)},
			{"mantle", fmt.Sprintf("3-replica IndexNode + %d TafDB shards", tafShards),
				fmt.Sprintf("%d idx workers, %v + %v/level, fsync %v (batch %d)",
					idxWorkers, idxBaseCost, idxLevelCost, fsyncCost, raftBatch)},
		})
	fmt.Fprintf(p.Out, "fabric RTT: %v; clients: %d; namespace: %d clients x %d objects at depth %d\n",
		p.RTT, p.Clients, p.Clients, p.ObjectsPerClient, p.Depth)
	return nil
}

// Table3 regenerates the production-namespace characterisation (paper
// Table 3): five Cluster-C-like namespaces (scaled) with their measured
// peak lookup and mkdir throughput on Mantle.
func Table3(p Params) error {
	p = p.WithDefaults()
	scale := 1
	specs := []struct {
		name    string
		clients int
		objects int
		small   float64
	}{
		{"C1", 120 * scale, 26, 0.62},
		{"C2", 200 * scale, 10, 0.29},
		{"C3", 180 * scale, 8, 0.34},
		{"C4", 100 * scale, 8, 0.29},
		{"C5", 40 * scale, 8, 0.28},
	}
	rows := [][]string{}
	for i, sp := range specs {
		opts := DefaultMantleOpts()
		opts.MantleFollowerRead = true
		pp := p
		pp.Clients = sp.clients
		pp.ObjectsPerClient = sp.objects
		s, ns, err := BuildPopulated("mantle", pp, opts)
		if err != nil {
			return err
		}
		st := nsstats.Analyze(ns)
		clients := min(pp.Clients, p.Clients)
		lookup := bench.RunN(clients, p.PerClient, workload.LookupOp(s, ns))
		mkdir := bench.RunN(clients, p.PerClient, workload.MkdirEOp(s, ns, fmt.Sprintf("t3-%d", i)))
		s.Stop()
		rows = append(rows, []string{
			sp.name,
			fmt.Sprintf("%d", st.Objects),
			fmt.Sprintf("%d", st.Dirs),
			fmt.Sprintf("%.1f%%", st.SmallRatio*100),
			bench.Kops(lookup.Throughput),
			bench.Kops(mkdir.Throughput),
		})
	}
	bench.Table(p.Out, "Table 3: Cluster-C-like namespaces (scaled) with measured peak throughput on Mantle",
		[]string{"name", "#objects", "#dirs", "small obj", "peak lookup", "peak mkdir"}, rows)
	return nil
}
