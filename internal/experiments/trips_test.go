package experiments

import (
	"testing"

	"mantle/internal/conformance"
	"mantle/internal/netsim"
)

// TestTable1TripConformance reproduces the shape of the paper's Table 1
// through the trace trip-accounting layer alone: Mantle and LocoFS
// resolve any path in a constant number of RPC round trips, while
// InfiniFS and DBtable/Tectonic pay one round trip per path component
// (InfiniFS overlaps them in time, but the trip count still grows).
func TestTable1TripConformance(t *testing.T) {
	depths := []int{4, 16, 64}
	trips := map[string][]int64{}

	for _, name := range Systems {
		// Zero-RTT fabric: the assertion is about trip counts, not
		// latency, so the fabric only needs to count.
		s, err := NewSystem(name, netsim.NewLocalFabric(), DefaultMantleOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, depth := range depths {
			if err := conformance.MkdirAll(s, conformance.DeepPath(depth)); err != nil {
				t.Fatalf("%s depth %d: %v", name, depth, err)
			}
		}
		for _, depth := range depths {
			n, err := conformance.LookupTrips(s, conformance.DeepPath(depth))
			if err != nil {
				t.Fatalf("%s lookup depth %d: %v", name, depth, err)
			}
			trips[name] = append(trips[name], n)
		}
		s.Stop()
	}
	t.Logf("lookup trips at depths %v: %v", depths, trips)

	// Mantle and LocoFS: single-RPC resolution, constant in depth.
	for _, name := range []string{"mantle", "locofs"} {
		for i, n := range trips[name] {
			if n != 1 {
				t.Errorf("%s: %d trips at depth %d, want 1 (constant)", name, n, depths[i])
			}
		}
	}
	// InfiniFS and Tectonic/DBtable: one trip per component, growing
	// with depth.
	for _, name := range []string{"infinifs", "tectonic"} {
		for i, n := range trips[name] {
			if n != int64(depths[i]) {
				t.Errorf("%s: %d trips at depth %d, want %d (one per level)", name, n, depths[i], depths[i])
			}
		}
	}
}
