package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/core"
	"mantle/internal/faults"
	"mantle/internal/fsck"
	"mantle/internal/indexnode"
	"mantle/internal/rpc"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// DR measures the disaster-recovery story end to end: a two-site
// deployment takes a write storm on the primary while the WAN link is
// blackholed mid-storm, then heals; the run reports the oplog backlog
// at heal time, the time to converge (lag and pending transactions both
// zero), and the loss window at failover (records discarded because
// they never became applicable — zero after a full drain). Convergence
// is verified structurally: the sites' folded row sets must be
// identical and fsck must pass on the promoted secondary.
func DR(p Params) error {
	s, err := core.NewSites(core.SitesConfig{
		Site: core.Config{
			TafDB: tafdb.Config{Shards: 4, Delta: tafdb.DeltaAuto, WALSyncCost: 5 * time.Microsecond},
			Index: indexnode.Config{Voters: 3, K: 2, CacheEnabled: true, BatchEnabled: true},
		},
		LinkInterval: 200 * time.Microsecond,
		LinkBatchMax: 128,
	})
	if err != nil {
		return err
	}
	defer s.Stop()
	s.StartReplication()
	pri := s.Primary
	begin := func() *rpc.Op { return pri.Caller().Begin() }

	writers := p.Clients
	if writers > 16 {
		writers = 16
	}
	if writers < 2 {
		writers = 2
	}
	for w := 0; w < writers; w++ {
		if _, err := pri.Mkdir(begin(), fmt.Sprintf("/w%d", w)); err != nil {
			return err
		}
	}

	inj := faults.New(3)
	inj.Attach(s.WAN)

	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := fmt.Sprintf("/w%d", w)
				switch i % 4 {
				case 0:
					_, _ = pri.Mkdir(begin(), fmt.Sprintf("%s/d%05d", base, i))
				case 1, 2:
					_, _ = pri.Create(begin(), fmt.Sprintf("%s/o%05d", base, i), int64(i))
				case 3:
					_, _ = pri.SetPerm(begin(), base, types.Perm(1+i%7))
				}
				ops.Add(1)
			}
		}(w)
	}

	storm := 25 * time.Millisecond
	if p.Quick {
		storm = 8 * time.Millisecond
	}
	time.Sleep(storm)
	inj.Blackhole(core.SecondaryReplName)
	time.Sleep(storm)
	close(stop)
	wg.Wait()

	backlog := s.Link().Stats()
	fmt.Fprintf(p.Out, "write storm: %d ops across %d writers (%v, WAN severed halfway)\n",
		ops.Load(), writers, 2*storm)
	fmt.Fprintf(p.Out, "backlog at heal: %d entries / %d bytes behind (shipped %d, %d ship failures)\n",
		backlog.LagEntries, backlog.LagBytes, backlog.Shipped, backlog.Failures)

	// Heal and time the drain.
	healed := time.Now()
	inj.Restore(core.SecondaryReplName)
	for {
		st := s.Link().Stats()
		w := s.Applier().Watermarks()
		if st.LagEntries == 0 && w.Pending == 0 {
			break
		}
		if time.Since(healed) > 30*time.Second {
			return fmt.Errorf("dr: replication did not converge: lag=%+v pending=%d", st, w.Pending)
		}
		time.Sleep(200 * time.Microsecond)
	}
	converge := time.Since(healed)
	trimmed := s.GCOplog()

	promoteStart := time.Now()
	rep := s.Failover()
	promote := time.Since(promoteStart)

	divergences := len(fsck.CompareSites(pri, s.Secondary))
	check := fsck.Check(s.Secondary)

	w := rep.Watermarks
	fmt.Fprintf(p.Out, "time-to-converge after heal: %v (%d records, %d mutations applied)\n",
		converge.Round(time.Microsecond), w.Applied, w.Muts)
	fmt.Fprintf(p.Out, "oplog gc at watermark: %d records trimmed\n", trimmed)
	fmt.Fprintf(p.Out, "failover: promoted in %v, index rebuilt with %d entries\n",
		promote.Round(time.Microsecond), rep.IndexEntries)
	fmt.Fprintf(p.Out, "loss window: %d records discarded, %d LWW conflicts\n",
		rep.Discarded, w.Conflicts)
	fmt.Fprintf(p.Out, "convergence: %d row divergences between sites; promoted-site %s\n",
		divergences, check)
	if rep.Discarded != 0 || divergences != 0 || !check.OK() {
		return fmt.Errorf("dr: drained failover not clean: discarded=%d divergences=%d fsck=%s",
			rep.Discarded, divergences, check)
	}
	return nil
}
