// Package skiplist implements a concurrent skiplist keyed by string. It
// is the substrate for IndexNode's RemovalList (§5.1.2 of the paper): the
// set of directory paths currently being modified, consulted by every
// lookup and drained by the Invalidator's background thread.
//
// The implementation follows the Herlihy–Shavit lazy skiplist: searches
// and containment checks are lock-free and wait-free on the happy path
// (they never acquire locks and never retry), while inserts and removals
// take fine-grained per-node locks with optimistic validation. That
// matches the paper's requirement exactly — the hot path is the
// lookup-side scan of an almost-always-empty list, which here costs one
// atomic length load and, when non-empty, a lock-free traversal.
package skiplist

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

const maxLevel = 16

type node struct {
	key         string
	mu          sync.Mutex
	next        [maxLevel]atomic.Pointer[node]
	marked      atomic.Bool
	fullyLinked atomic.Bool
	topLevel    int // highest level this node participates in (0-based)
}

// List is a concurrent ordered set of strings. The zero value is not
// usable; create lists with New.
type List struct {
	head   *node
	tail   *node
	length atomic.Int64
}

// New returns an empty list.
func New() *List {
	l := &List{
		head: &node{topLevel: maxLevel - 1},
		tail: &node{topLevel: maxLevel - 1},
	}
	// head sorts before and tail after every real key; comparisons treat
	// them specially via pointer identity.
	for i := 0; i < maxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.tail.fullyLinked.Store(true)
	l.head.fullyLinked.Store(true)
	return l
}

// Len returns the number of keys in the list.
func (l *List) Len() int { return int(l.length.Load()) }

// IsEmpty is a wait-free emptiness check (one atomic load), used by the
// lookup fast path.
func (l *List) IsEmpty() bool { return l.length.Load() == 0 }

func randomLevel() int {
	lvl := 0
	for lvl < maxLevel-1 && rand.Uint32()&0x3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// less orders nodes, treating head as -inf and tail as +inf.
func (l *List) less(n *node, key string) bool {
	if n == l.head {
		return true
	}
	if n == l.tail {
		return false
	}
	return n.key < key
}

// find locates key, filling preds/succs per level; returns the level at
// which a node with the key was found, or -1.
func (l *List) find(key string, preds, succs *[maxLevel]*node) int {
	found := -1
	pred := l.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for l.less(curr, key) {
			pred = curr
			curr = curr.next[level].Load()
		}
		if found == -1 && curr != l.tail && curr.key == key {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// Contains reports whether key is in the list. Lock-free.
func (l *List) Contains(key string) bool {
	pred := l.head
	var curr *node
	for level := maxLevel - 1; level >= 0; level-- {
		curr = pred.next[level].Load()
		for l.less(curr, key) {
			pred = curr
			curr = curr.next[level].Load()
		}
	}
	return curr != l.tail && curr.key == key &&
		curr.fullyLinked.Load() && !curr.marked.Load()
}

// Insert adds key, reporting whether it was newly added (false if already
// present).
func (l *List) Insert(key string) bool {
	topLevel := randomLevel()
	var preds, succs [maxLevel]*node
	for {
		if lFound := l.find(key, &preds, &succs); lFound != -1 {
			f := succs[lFound]
			if !f.marked.Load() {
				// Wait until the concurrent inserter finishes linking.
				for !f.fullyLinked.Load() {
				}
				return false
			}
			continue // marked for removal: retry until unlinked
		}
		// Lock predecessors bottom-up and validate.
		var locked [maxLevel]*node
		nLocked := 0
		valid := true
		var prevPred *node
		for level := 0; valid && level <= topLevel; level++ {
			pred, succ := preds[level], succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				locked[nLocked] = pred
				nLocked++
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[level].Load() == succ
		}
		if !valid {
			for i := 0; i < nLocked; i++ {
				locked[i].mu.Unlock()
			}
			continue
		}
		n := &node{key: key, topLevel: topLevel}
		for level := 0; level <= topLevel; level++ {
			n.next[level].Store(succs[level])
		}
		for level := 0; level <= topLevel; level++ {
			preds[level].next[level].Store(n)
		}
		n.fullyLinked.Store(true)
		for i := 0; i < nLocked; i++ {
			locked[i].mu.Unlock()
		}
		l.length.Add(1)
		return true
	}
}

// Remove deletes key, reporting whether it was present.
func (l *List) Remove(key string) bool {
	var victim *node
	isMarked := false
	topLevel := -1
	var preds, succs [maxLevel]*node
	for {
		lFound := l.find(key, &preds, &succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			if lFound == -1 || !victim.fullyLinked.Load() ||
				victim.marked.Load() || victim.topLevel != lFound {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		// Lock predecessors and validate.
		var locked [maxLevel]*node
		nLocked := 0
		valid := true
		var prevPred *node
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				locked[nLocked] = pred
				nLocked++
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			for i := 0; i < nLocked; i++ {
				locked[i].mu.Unlock()
			}
			continue
		}
		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		for i := 0; i < nLocked; i++ {
			locked[i].mu.Unlock()
		}
		l.length.Add(-1)
		return true
	}
}

// Range calls fn on every key in ascending order until fn returns false.
// The traversal is lock-free and sees a consistent-enough snapshot for the
// RemovalList use case (prefix checks against in-flight modifications).
func (l *List) Range(fn func(key string) bool) {
	curr := l.head.next[0].Load()
	for curr != l.tail {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			if !fn(curr.key) {
				return
			}
		}
		curr = curr.next[0].Load()
	}
}

// Keys returns a snapshot of all keys in order.
func (l *List) Keys() []string {
	var out []string
	l.Range(func(k string) bool { out = append(out, k); return true })
	return out
}
