package skiplist

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	l := New()
	if !l.IsEmpty() || l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if !l.Insert("/a/b") {
		t.Fatal("first insert failed")
	}
	if l.Insert("/a/b") {
		t.Fatal("duplicate insert succeeded")
	}
	if !l.Contains("/a/b") {
		t.Fatal("Contains after insert = false")
	}
	if l.Contains("/a/c") {
		t.Fatal("Contains of absent key = true")
	}
	if l.Len() != 1 || l.IsEmpty() {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Remove("/a/b") {
		t.Fatal("Remove failed")
	}
	if l.Remove("/a/b") {
		t.Fatal("double Remove succeeded")
	}
	if !l.IsEmpty() {
		t.Fatal("not empty after remove")
	}
}

func TestOrderedRange(t *testing.T) {
	l := New()
	keys := []string{"/m", "/a", "/z", "/b/c", "/b"}
	for _, k := range keys {
		l.Insert(k)
	}
	got := l.Keys()
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	l := New()
	for i := 0; i < 20; i++ {
		l.Insert(fmt.Sprintf("/k%02d", i))
	}
	n := 0
	l.Range(func(string) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
}

func TestAgainstMapModelSequential(t *testing.T) {
	l := New()
	model := map[string]bool{}
	r := rand.New(rand.NewSource(3))
	for step := 0; step < 30000; step++ {
		k := fmt.Sprintf("/p/%d", r.Intn(200))
		switch r.Intn(3) {
		case 0:
			if ins := l.Insert(k); ins == model[k] {
				t.Fatalf("step %d: Insert(%s)=%v model has=%v", step, k, ins, model[k])
			}
			model[k] = true
		case 1:
			if del := l.Remove(k); del != model[k] {
				t.Fatalf("step %d: Remove(%s)=%v model=%v", step, k, del, model[k])
			}
			delete(model, k)
		case 2:
			if has := l.Contains(k); has != model[k] {
				t.Fatalf("step %d: Contains(%s)=%v model=%v", step, k, has, model[k])
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, l.Len(), len(model))
		}
	}
}

func TestConcurrentInsertRemove(t *testing.T) {
	l := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	// Each goroutine owns a disjoint key space: inserts then removes all.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("/g%d/%d", g, i)
				if !l.Insert(k) {
					t.Errorf("insert %s failed", k)
					return
				}
			}
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("/g%d/%d", g, i)
				if !l.Contains(k) {
					t.Errorf("contains %s false", k)
					return
				}
			}
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("/g%d/%d", g, i)
				if !l.Remove(k) {
					t.Errorf("remove %s failed", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if !l.IsEmpty() {
		t.Fatalf("Len=%d after all removes, keys=%v", l.Len(), l.Keys())
	}
}

func TestConcurrentContendedSameKeys(t *testing.T) {
	// All goroutines fight over the same small key set; invariant: net
	// insert/remove accounting matches the final contents.
	l := New()
	const goroutines = 8
	var inserts, removes [goroutines]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				k := fmt.Sprintf("/shared/%d", r.Intn(16))
				if r.Intn(2) == 0 {
					if l.Insert(k) {
						inserts[g]++
					}
				} else {
					if l.Remove(k) {
						removes[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	totalIns, totalRem := 0, 0
	for g := 0; g < goroutines; g++ {
		totalIns += inserts[g]
		totalRem += removes[g]
	}
	if got := totalIns - totalRem; got != l.Len() {
		t.Fatalf("net inserts %d != Len %d", got, l.Len())
	}
	// Every remaining key must be unique and present.
	keys := l.Keys()
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %s in list", k)
		}
		seen[k] = true
		if !l.Contains(k) {
			t.Fatalf("listed key %s not Contains", k)
		}
	}
}

func TestQuickSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		l := New()
		model := map[string]bool{}
		for _, op := range ops {
			k := fmt.Sprintf("/%d", op%64)
			if op&0x8000 != 0 {
				if l.Insert(k) == model[k] {
					return false
				}
				model[k] = true
			} else {
				if l.Remove(k) != model[k] {
					return false
				}
				delete(model, k)
			}
		}
		return l.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkContainsEmpty(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.IsEmpty()
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	l := New()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := fmt.Sprintf("/bench/%d", i%1024)
			l.Insert(k)
			l.Remove(k)
			i++
		}
	})
}
