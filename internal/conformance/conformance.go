// Package conformance provides a behavioural test suite that every
// metadata service in this repository (Mantle and the three baselines)
// must pass. It drives the api.Service interface through the same
// scenarios so that the benchmark comparisons exercise systems with
// equivalent semantics. Services declare capability deviations (the
// relaxed Tectonic re-implementation performs no rename loop detection)
// via Caps.
package conformance

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mantle/internal/api"
	"mantle/internal/rpc"
	"mantle/internal/types"
)

// Caps declares behavioural capabilities of a service under test.
type Caps struct {
	// LoopDetection: DirRename rejects renames that would create a
	// cycle. The relaxed Tectonic re-implementation lacks this.
	LoopDetection bool
}

// Run executes the full conformance suite against a fresh service per
// subtest.
func Run(t *testing.T, caps Caps, factory func(t *testing.T) api.Service) {
	t.Helper()
	sub := func(name string, fn func(t *testing.T, s api.Service)) {
		t.Run(name, func(t *testing.T) {
			s := factory(t)
			t.Cleanup(s.Stop)
			fn(t, s)
		})
	}

	sub("ObjectLifecycle", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/a/b/c")
		op := begin(s)
		if _, err := s.Create(op, "/a/b/c/o1", 512); err != nil {
			t.Fatal(err)
		}
		res, err := s.ObjStat(begin(s), "/a/b/c/o1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry.Attr.Size != 512 {
			t.Fatalf("size = %d", res.Entry.Attr.Size)
		}
		if _, err := s.Create(begin(s), "/a/b/c/o1", 1); !errors.Is(err, types.ErrExists) {
			t.Fatalf("dup create: %v", err)
		}
		if _, err := s.Delete(begin(s), "/a/b/c/o1"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ObjStat(begin(s), "/a/b/c/o1"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("stat after delete: %v", err)
		}
	})

	sub("LookupErrors", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/x/y")
		if _, err := s.Lookup(begin(s), "/x/y"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Lookup(begin(s), "/x/zzz"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("missing: %v", err)
		}
		if _, err := s.Lookup(begin(s), "/x/zzz/deeper"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("missing chain: %v", err)
		}
	})

	sub("DirStatLinkCount", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/d")
		for i := 0; i < 4; i++ {
			if _, err := s.Create(begin(s), fmt.Sprintf("/d/o%d", i), 10); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.DirStat(begin(s), "/d")
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry.Attr.LinkCount != 4 {
			t.Fatalf("links = %d, want 4", res.Entry.Attr.LinkCount)
		}
	})

	sub("ReadDir", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/r")
		for i := 0; i < 3; i++ {
			if _, err := s.Create(begin(s), fmt.Sprintf("/r/o%d", i), 1); err != nil {
				t.Fatal(err)
			}
		}
		mustMkdirAll(t, s, "/r/sub")
		_, entries, err := s.ReadDir(begin(s), "/r")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 4 {
			t.Fatalf("readdir = %d entries: %v", len(entries), entries)
		}
	})

	sub("RmdirSemantics", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/m/n")
		if _, err := s.Create(begin(s), "/m/n/o", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Rmdir(begin(s), "/m/n"); !errors.Is(err, types.ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		if _, err := s.Delete(begin(s), "/m/n/o"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Rmdir(begin(s), "/m/n"); err != nil {
			t.Fatalf("rmdir empty: %v", err)
		}
		if _, err := s.Lookup(begin(s), "/m/n"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("lookup after rmdir: %v", err)
		}
	})

	sub("RenameMovesSubtree", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/src/job/deep")
		mustMkdirAll(t, s, "/dst")
		if _, err := s.Create(begin(s), "/src/job/deep/o", 99); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DirRename(begin(s), "/src/job", "/dst/done"); err != nil {
			t.Fatal(err)
		}
		res, err := s.ObjStat(begin(s), "/dst/done/deep/o")
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry.Attr.Size != 99 {
			t.Fatalf("moved object = %+v", res.Entry)
		}
		if _, err := s.Lookup(begin(s), "/src/job"); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("old path: %v", err)
		}
	})

	sub("RenameDstExists", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/p/one")
		mustMkdirAll(t, s, "/p/two")
		if _, err := s.DirRename(begin(s), "/p/one", "/p/two"); !errors.Is(err, types.ErrExists) {
			t.Fatalf("rename onto existing: %v", err)
		}
	})

	if caps.LoopDetection {
		sub("RenameLoopRejected", func(t *testing.T, s api.Service) {
			mustMkdirAll(t, s, "/l/a/b")
			if _, err := s.DirRename(begin(s), "/l/a", "/l/a/b/under"); !errors.Is(err, types.ErrLoop) {
				t.Fatalf("loop rename: %v", err)
			}
			// The namespace is intact afterwards.
			if _, err := s.Lookup(begin(s), "/l/a/b"); err != nil {
				t.Fatalf("namespace damaged after rejected rename: %v", err)
			}
		})
	}

	sub("ConcurrentCreatesSharedDir", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/shared")
		const goroutines, each = 8, 20
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					if _, err := s.Create(begin(s), fmt.Sprintf("/shared/o-%d-%d", g, i), 1); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		res, err := s.DirStat(begin(s), "/shared")
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry.Attr.LinkCount != goroutines*each {
			t.Fatalf("links = %d, want %d", res.Entry.Attr.LinkCount, goroutines*each)
		}
	})

	sub("ConcurrentMkdirsSharedParent", func(t *testing.T, s api.Service) {
		mustMkdirAll(t, s, "/mk")
		const goroutines, each = 6, 10
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					if _, err := s.Mkdir(begin(s), fmt.Sprintf("/mk/d-%d-%d", g, i)); err != nil {
						t.Errorf("mkdir: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		_, entries, err := s.ReadDir(begin(s), "/mk")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != goroutines*each {
			t.Fatalf("children = %d, want %d", len(entries), goroutines*each)
		}
	})

	sub("PopulateThenOperate", func(t *testing.T, s api.Service) {
		dirs := []api.PopDir{
			{Path: "/pop", ID: 1000, Pid: types.RootID},
			{Path: "/pop/l1", ID: 1001, Pid: 1000},
			{Path: "/pop/l1/l2", ID: 1002, Pid: 1001},
		}
		objs := []api.PopObject{
			{Pid: 1002, Name: "obj", Size: 321},
		}
		if err := s.Populate(dirs, objs); err != nil {
			t.Fatal(err)
		}
		res, err := s.ObjStat(begin(s), "/pop/l1/l2/obj")
		if err != nil {
			t.Fatal(err)
		}
		if res.Entry.Attr.Size != 321 {
			t.Fatalf("populated object = %+v", res.Entry)
		}
		if _, err := s.Create(begin(s), "/pop/l1/l2/new", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Mkdir(begin(s), "/pop/l1/l2/newdir"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Lookup(begin(s), "/pop/l1/l2/newdir"); err != nil {
			t.Fatal(err)
		}
	})
}

func begin(s api.Service) *rpc.Op { return s.Caller().Begin() }

func mustMkdirAll(t *testing.T, s api.Service, path string) {
	t.Helper()
	if err := MkdirAll(s, path); err != nil {
		t.Fatalf("mkdir all %s: %v", path, err)
	}
}

// MkdirAll creates path and its missing ancestors through the service's
// transactional interface.
func MkdirAll(s api.Service, path string) error {
	comps := splitComps(path)
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if _, err := s.Lookup(begin(s), cur); err == nil {
			continue
		}
		if _, err := s.Mkdir(begin(s), cur); err != nil && !errors.Is(err, types.ErrExists) {
			return err
		}
	}
	return nil
}

func splitComps(p string) []string {
	var out []string
	cur := ""
	for i := 0; i < len(p); i++ {
		if p[i] == '/' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(p[i])
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
