package conformance

import (
	"fmt"
	"strings"

	"mantle/internal/api"
	"mantle/internal/rpc"
	"mantle/internal/trace"
)

// TripCount measures the RPC round trips one operation costs through
// the trace-accounting layer: it runs fn under a fresh traced op and
// returns the trace's trip total. This is the instrument behind the
// Table 1 conformance assertions — trip counts come exclusively from
// the per-attempt accounting in internal/rpc, not from any
// system-specific counter.
func TripCount(s api.Service, name string, fn func(op *rpc.Op) error) (int64, error) {
	tr, ctx := trace.New(name)
	op := s.Caller().BeginTraced(ctx)
	err := fn(op)
	tr.Finish()
	return tr.Trips(), err
}

// LookupTrips measures the round trips of one Lookup of path.
func LookupTrips(s api.Service, path string) (int64, error) {
	return TripCount(s, "lookup "+path, func(op *rpc.Op) error {
		_, err := s.Lookup(op, path)
		return err
	})
}

// DeepPath returns a directory path of exactly depth components
// ("/t0/t1/.../t<depth-1>").
func DeepPath(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "/t%d", i)
	}
	return b.String()
}
