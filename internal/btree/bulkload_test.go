package btree

import (
	"math/rand"
	"testing"
)

// checkInvariants validates the structural B-tree invariants: key-count
// bounds per node, children = keys+1 for interior nodes, uniform leaf
// depth, and strictly ascending full traversal order.
func checkInvariants(t *testing.T, tr *Tree[int, int]) {
	t.Helper()
	if tr.root == nil {
		if tr.length != 0 {
			t.Fatalf("nil root but length %d", tr.length)
		}
		return
	}
	deg := tr.degree
	leafDepth := -1
	var walk func(n *node[int, int], depth int, isRoot bool)
	walk = func(n *node[int, int], depth int, isRoot bool) {
		if len(n.keys) != len(n.values) {
			t.Fatalf("keys/values mismatch: %d vs %d", len(n.keys), len(n.values))
		}
		if len(n.keys) > 2*deg-1 {
			t.Fatalf("node overfull: %d keys (max %d)", len(n.keys), 2*deg-1)
		}
		min := deg - 1
		if isRoot {
			min = 1
		}
		if len(n.keys) < min {
			t.Fatalf("node underfull at depth %d: %d keys (min %d)", depth, len(n.keys), min)
		}
		if n.children == nil {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("interior node: %d children for %d keys", len(n.children), len(n.keys))
		}
		for _, c := range n.children {
			walk(c, depth+1, false)
		}
	}
	walk(tr.root, 0, true)

	prev, first, count := 0, true, 0
	tr.Ascend(func(k, v int) bool {
		if !first && k <= prev {
			t.Fatalf("traversal not strictly ascending: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != tr.length {
		t.Fatalf("traversal saw %d entries, Len says %d", count, tr.length)
	}
}

func TestBulkLoadSizes(t *testing.T) {
	for _, deg := range []int{2, 3, 16} {
		fill := 2*deg - 2
		sizes := []int{0, 1, 2, fill - 1, fill, fill + 1, fill + 2,
			fill*fill + fill, 1000, 5000}
		for _, n := range sizes {
			tr := NewWithDegree[int, int](deg, func(a, b int) bool { return a < b })
			tr.BulkLoad(n, func(i int) (int, int) { return i * 3, i * 30 })
			if tr.Len() != n {
				t.Fatalf("deg %d n %d: Len = %d", deg, n, tr.Len())
			}
			checkInvariants(t, tr)
			for i := 0; i < n; i++ {
				v, ok := tr.Get(i * 3)
				if !ok || v != i*30 {
					t.Fatalf("deg %d n %d: Get(%d) = %d,%v", deg, n, i*3, v, ok)
				}
			}
			if _, ok := tr.Get(1); ok && n > 0 {
				t.Fatalf("deg %d n %d: found absent key", deg, n)
			}
		}
	}
}

// TestBulkLoadThenMutate verifies the bulk-built tree behaves under
// subsequent random Put/Delete, against a map model.
func TestBulkLoadThenMutate(t *testing.T) {
	tr := NewWithDegree[int, int](3, func(a, b int) bool { return a < b })
	const n = 2000
	model := map[int]int{}
	tr.BulkLoad(n, func(i int) (int, int) { return i * 2, i })
	for i := 0; i < n; i++ {
		model[i*2] = i
	}
	r := rand.New(rand.NewSource(42))
	for step := 0; step < 10000; step++ {
		k := r.Intn(2 * n * 2)
		if r.Intn(2) == 0 {
			v := r.Intn(1 << 20)
			_, existed := model[k]
			if ins := tr.Put(k, v); ins == existed {
				t.Fatalf("step %d: Put(%d) insert=%v existed=%v", step, k, ins, existed)
			}
			model[k] = v
		} else {
			_, existed := model[k]
			if del := tr.Delete(k); del != existed {
				t.Fatalf("step %d: Delete(%d)=%v existed=%v", step, k, del, existed)
			}
			delete(model, k)
		}
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, tr.Len(), len(model))
		}
	}
	checkInvariants(t, tr)
	for k, v := range model {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

// TestBulkLoadOccupancy asserts the point of bulk loading: node count
// (and so structural overhead) is well below what ascending Put builds.
func TestBulkLoadOccupancy(t *testing.T) {
	count := func(tr *Tree[int, int]) int {
		n := 0
		var walk func(*node[int, int])
		walk = func(nd *node[int, int]) {
			n++
			for _, c := range nd.children {
				walk(c)
			}
		}
		if tr.root != nil {
			walk(tr.root)
		}
		return n
	}
	const n = 100000
	seq := New[int, int](func(a, b int) bool { return a < b })
	for i := 0; i < n; i++ {
		seq.Put(i, i)
	}
	bulk := New[int, int](func(a, b int) bool { return a < b })
	bulk.BulkLoad(n, func(i int) (int, int) { return i, i })
	checkInvariants(t, bulk)
	sn, bn := count(seq), count(bulk)
	// Sequential insert converges to ~50% occupancy, bulk load to ~97%:
	// expect roughly half the nodes, with slack for rounding.
	if bn*3 > sn*2 {
		t.Fatalf("bulk load used %d nodes vs %d sequential — occupancy win missing", bn, sn)
	}
}

func TestArenaRecycling(t *testing.T) {
	tr := NewWithDegree[int, int](3, func(a, b int) bool { return a < b })
	// Grow and shrink repeatedly; merges and root collapses must feed the
	// freelists and recycled nodes must behave identically.
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			tr.Put(i, i+round)
		}
		checkInvariants(t, tr)
		for i := 0; i < 500; i++ {
			if !tr.Delete(i) {
				t.Fatalf("round %d: Delete(%d) failed", round, i)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len=%d after draining", round, tr.Len())
		}
	}
	if len(tr.arena.freeLeaf)+len(tr.arena.freeInt) == 0 {
		t.Fatal("no nodes were recycled through the freelist")
	}
}

func TestCursorFullScan(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(3)).Perm(1000)
	for _, k := range perm {
		tr.Put(k, k*7)
	}
	var c Cursor[int, int]
	i := 0
	for c.SeekFirst(tr); c.Valid(); c.Next() {
		if c.Key() != i || c.Value() != i*7 {
			t.Fatalf("cursor at %d: key=%d value=%d", i, c.Key(), c.Value())
		}
		i++
	}
	if i != 1000 {
		t.Fatalf("cursor visited %d entries", i)
	}
}

func TestCursorSeek(t *testing.T) {
	tr := intTree()
	for i := 0; i < 200; i += 2 {
		tr.Put(i, i)
	}
	var c Cursor[int, int]
	// Seek to present, absent, before-first, and past-last keys.
	for _, tc := range []struct{ seek, want int }{
		{0, 0}, {50, 50}, {51, 52}, {-5, 0}, {197, 198},
	} {
		c.Seek(tr, tc.seek)
		if !c.Valid() || c.Key() != tc.want {
			t.Fatalf("Seek(%d): valid=%v key=%v want %d", tc.seek, c.Valid(), c.Key(), tc.want)
		}
	}
	c.Seek(tr, 199)
	if c.Valid() {
		t.Fatalf("Seek past end still valid at %d", c.Key())
	}
	// Bounded range walk matches AscendRange.
	var viaCursor, viaClosure []int
	for c.Seek(tr, 31); c.Valid() && tr.Less(c.Key(), 77); c.Next() {
		viaCursor = append(viaCursor, c.Key())
	}
	tr.AscendRange(31, 77, func(k, v int) bool { viaClosure = append(viaClosure, k); return true })
	if len(viaCursor) != len(viaClosure) {
		t.Fatalf("cursor %v vs closure %v", viaCursor, viaClosure)
	}
	for i := range viaCursor {
		if viaCursor[i] != viaClosure[i] {
			t.Fatalf("cursor %v vs closure %v", viaCursor, viaClosure)
		}
	}
}

func TestCursorOnBulkLoaded(t *testing.T) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	tr.BulkLoad(10000, func(i int) (int, int) { return i, i })
	var c Cursor[int, int]
	n := 0
	for c.Seek(tr, 5000); c.Valid(); c.Next() {
		if c.Key() != 5000+n {
			t.Fatalf("at %d: key %d", n, c.Key())
		}
		n++
	}
	if n != 5000 {
		t.Fatalf("visited %d", n)
	}
	c.Reset()
	if c.Valid() {
		t.Fatal("reset cursor still valid")
	}
}

// The satellite's evidence benchmark: per-scan allocation of the closure
// iterator vs a reused cursor over the same 64-entry range (a readdir-
// sized window). Run with -benchmem: the closure side allocates per
// scan, the cursor side is allocation-free.
func BenchmarkRangeScanClosure(b *testing.B) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	tr.BulkLoad(1<<16, func(i int) (int, int) { return i, i })
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		lo := (i * 61) & (1<<16 - 1)
		tr.AscendRange(lo, lo+64, func(k, v int) bool { sum += v; return true })
	}
	sink = sum
}

func BenchmarkRangeScanCursor(b *testing.B) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	tr.BulkLoad(1<<16, func(i int) (int, int) { return i, i })
	var c Cursor[int, int]
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		lo := (i * 61) & (1<<16 - 1)
		for c.Seek(tr, lo); c.Valid() && tr.Less(c.Key(), lo+64); c.Next() {
			sum += c.Value()
		}
	}
	sink = sum
}

func BenchmarkBulkLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New[int, int](func(a, b int) bool { return a < b })
		tr.BulkLoad(1<<16, func(i int) (int, int) { return i, i })
	}
}

func BenchmarkSequentialPut64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New[int, int](func(a, b int) bool { return a < b })
		for j := 0; j < 1<<16; j++ {
			tr.Put(j, j)
		}
	}
}

var sink int
