package btree

// Cursor is a reusable in-order iterator. The recursive
// Ascend/AscendRange visitors force every caller to allocate a closure
// per scan (and the compiler to heap-allocate whatever state the closure
// captures); on the readdir hot path that is one garbage object per
// directory listing. A Cursor holds its descent stack in a reusable
// slice, so a pooled cursor performs zero allocations per scan after
// warm-up.
//
// Usage:
//
//	var c btree.Cursor[K, V]
//	for c.Seek(tree, lo); c.Valid() && tree.Less(c.Key(), hi); c.Next() {
//	    use(c.Key(), c.Value())
//	}
//
// A cursor is a read-only view: it is bound to a tree by Seek/SeekFirst
// and is invalidated by any mutation of that tree (or by the tree being
// replaced wholesale, as in shard crash/recovery) — re-Seek after either.
// Cursors share the tree's concurrency contract (external locking).
type Cursor[K, V any] struct {
	t     *Tree[K, V]
	stack []cursorFrame[K, V]
}

// cursorFrame records one node on the descent path. For the top frame,
// n.keys[i] is the current entry; for interior frames, n.keys[i] is the
// next entry to yield once the subtree below is exhausted (i may equal
// len(n.keys), meaning the frame is spent and will be popped).
type cursorFrame[K, V any] struct {
	n *node[K, V]
	i int
}

// Seek positions c at the first entry with key >= lo.
func (c *Cursor[K, V]) Seek(t *Tree[K, V], lo K) {
	c.t = t
	c.stack = c.stack[:0]
	n := t.root
	for n != nil {
		i, _ := t.search(n, lo)
		c.stack = append(c.stack, cursorFrame[K, V]{n, i})
		if n.children == nil {
			break
		}
		n = n.children[i]
	}
	c.pop()
}

// SeekFirst positions c at the smallest entry of t.
func (c *Cursor[K, V]) SeekFirst(t *Tree[K, V]) {
	c.t = t
	c.stack = c.stack[:0]
	n := t.root
	for n != nil {
		c.stack = append(c.stack, cursorFrame[K, V]{n, 0})
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor[K, V]) Valid() bool { return len(c.stack) > 0 }

// Key returns the current entry's key. Only valid when Valid().
func (c *Cursor[K, V]) Key() K {
	f := &c.stack[len(c.stack)-1]
	return f.n.keys[f.i]
}

// Value returns the current entry's value. Only valid when Valid().
func (c *Cursor[K, V]) Value() V {
	f := &c.stack[len(c.stack)-1]
	return f.n.values[f.i]
}

// ValueRef returns a pointer to the current entry's value slot, valid
// until the next tree mutation. Only valid when Valid().
func (c *Cursor[K, V]) ValueRef() *V {
	f := &c.stack[len(c.stack)-1]
	return &f.n.values[f.i]
}

// Next advances to the next entry in key order. Past the last entry the
// cursor becomes invalid.
func (c *Cursor[K, V]) Next() {
	if len(c.stack) == 0 {
		return
	}
	top := &c.stack[len(c.stack)-1]
	n, i := top.n, top.i
	if n.children == nil {
		top.i++
		c.pop()
		return
	}
	// The successor of an interior entry is the leftmost entry of the
	// subtree to its right.
	top.i++
	m := n.children[i+1]
	for {
		c.stack = append(c.stack, cursorFrame[K, V]{m, 0})
		if m.children == nil {
			return
		}
		m = m.children[0]
	}
}

// pop discards spent frames until the top frame points at an entry.
func (c *Cursor[K, V]) pop() {
	for len(c.stack) > 0 {
		f := &c.stack[len(c.stack)-1]
		if f.i < len(f.n.keys) {
			return
		}
		f.n = nil // don't pin nodes from the popped tail
		c.stack = c.stack[:len(c.stack)-1]
	}
}

// Reset detaches the cursor from its tree and clears retained node
// pointers, so pooled cursors do not pin a discarded tree's memory.
func (c *Cursor[K, V]) Reset() {
	c.t = nil
	for i := range c.stack {
		c.stack[i].n = nil
	}
	c.stack = c.stack[:0]
}

// Less exposes the tree's ordering so range loops can bound a cursor
// without duplicating the comparison function.
func (t *Tree[K, V]) Less(a, b K) bool { return t.less(a, b) }
