// Package btree implements an in-memory B-tree used as the ordered index
// of every storage shard in the reproduction. TafDB needs ordered range
// scans for readdir (all children of a pid), for delta-record scans
// ((pid, "/_ATTR", *) ranges), and for namespace population; a B-tree
// gives O(log n) point ops and cheap in-order iteration.
//
// The tree is generic over the key type with an explicit less function.
// It is not safe for concurrent use; shards wrap it with their own
// latching (see internal/storage).
package btree

// Tree is a B-tree mapping K to V. The zero value is not usable; create
// trees with New.
type Tree[K, V any] struct {
	degree int // minimum degree t: nodes hold t-1..2t-1 keys (except root)
	less   func(a, b K) bool
	root   *node[K, V]
	length int
	arena  arena[K, V] // slab allocator + freelist for nodes (arena.go)
}

type node[K, V any] struct {
	keys     []K
	values   []V
	children []*node[K, V] // nil for leaves
}

// DefaultDegree is the minimum degree used by New.
const DefaultDegree = 16

// New creates an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return NewWithDegree[K, V](DefaultDegree, less)
}

// NewWithDegree creates an empty tree with minimum degree t (>= 2).
func NewWithDegree[K, V any](t int, less func(a, b K) bool) *Tree[K, V] {
	if t < 2 {
		t = 2
	}
	return &Tree[K, V]{degree: t, less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.length }

func (t *Tree[K, V]) eq(a, b K) bool { return !t.less(a, b) && !t.less(b, a) }

// search returns the index of the first key in n not less than k, and
// whether it equals k.
func (t *Tree[K, V]) search(n *node[K, V], k K) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(n.keys[mid], k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.keys) && !t.less(k, n.keys[lo]) {
		return lo, true
	}
	return lo, false
}

// Get returns the value stored under k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	n := t.root
	for n != nil {
		i, ok := t.search(n, k)
		if ok {
			return n.values[i], true
		}
		if n.children == nil {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Ref returns a pointer to the value slot stored under k, or nil when k
// is absent. The pointer lets callers mutate a stored value in place
// without the copy-out/copy-in of Get+Put — the shard delta-attr path.
// It is invalidated by ANY subsequent mutation of the tree (Put, Delete,
// BulkLoad): rebalancing moves values between slab slots.
func (t *Tree[K, V]) Ref(k K) *V {
	n := t.root
	for n != nil {
		i, ok := t.search(n, k)
		if ok {
			return &n.values[i]
		}
		if n.children == nil {
			break
		}
		n = n.children[i]
	}
	return nil
}

// Put inserts or replaces the value under k. It reports whether a new key
// was inserted (false means an existing value was replaced).
func (t *Tree[K, V]) Put(k K, v V) bool {
	if t.root == nil {
		t.root = t.newNode(true)
		t.root.keys = append(t.root.keys, k)
		t.root.values = append(t.root.values, v)
		t.length = 1
		return true
	}
	if len(t.root.keys) == 2*t.degree-1 {
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, k, v)
	if inserted {
		t.length++
	}
	return inserted
}

func (t *Tree[K, V]) splitChild(parent *node[K, V], i int) {
	deg := t.degree
	child := parent.children[i]
	mid := deg - 1
	right := t.newNode(child.children == nil)
	right.keys = append(right.keys, child.keys[mid+1:]...)
	right.values = append(right.values, child.values[mid+1:]...)
	if child.children != nil {
		right.children = append(right.children, child.children[mid+1:]...)
		clear(child.children[mid+1:])
		child.children = child.children[:mid+1]
	}
	upKey, upVal := child.keys[mid], child.values[mid]
	clear(child.keys[mid:])
	clear(child.values[mid:])
	child.keys = child.keys[:mid]
	child.values = child.values[:mid]

	parent.keys = append(parent.keys, upKey)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = upKey
	parent.values = append(parent.values, upVal)
	copy(parent.values[i+1:], parent.values[i:])
	parent.values[i] = upVal
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *Tree[K, V]) insertNonFull(n *node[K, V], k K, v V) bool {
	for {
		i, ok := t.search(n, k)
		if ok {
			n.values[i] = v
			return false
		}
		if n.children == nil {
			var zk K
			var zv V
			n.keys = append(n.keys, zk)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = k
			n.values = append(n.values, zv)
			copy(n.values[i+1:], n.values[i:])
			n.values[i] = v
			return true
		}
		if len(n.children[i].keys) == 2*t.degree-1 {
			t.splitChild(n, i)
			if t.less(n.keys[i], k) {
				i++
			} else if t.eq(n.keys[i], k) {
				n.values[i] = v
				return false
			}
		}
		n = n.children[i]
	}
}

// Delete removes k, reporting whether it was present.
func (t *Tree[K, V]) Delete(k K) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, k)
	if len(t.root.keys) == 0 {
		old := t.root
		if old.children != nil {
			t.root = old.children[0]
		} else {
			t.root = nil
		}
		t.freeNode(old)
	}
	if deleted {
		t.length--
	}
	return deleted
}

func (t *Tree[K, V]) delete(n *node[K, V], k K) bool {
	deg := t.degree
	i, ok := t.search(n, k)
	if n.children == nil {
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.values = append(n.values[:i], n.values[i+1:]...)
		clear(n.keys[len(n.keys) : len(n.keys)+1])
		clear(n.values[len(n.values) : len(n.values)+1])
		return true
	}
	if ok {
		// Replace with predecessor from the left child if it is rich
		// enough, else successor from the right child, else merge.
		if len(n.children[i].keys) >= deg {
			pk, pv := t.max(n.children[i])
			n.keys[i], n.values[i] = pk, pv
			return t.delete(n.children[i], pk)
		}
		if len(n.children[i+1].keys) >= deg {
			sk, sv := t.min(n.children[i+1])
			n.keys[i], n.values[i] = sk, sv
			return t.delete(n.children[i+1], sk)
		}
		t.merge(n, i)
		return t.delete(n.children[i], k)
	}
	// Descend into children[i]; ensure it has >= deg keys first.
	child := n.children[i]
	if len(child.keys) == deg-1 {
		switch {
		case i > 0 && len(n.children[i-1].keys) >= deg:
			t.rotateRight(n, i)
		case i < len(n.children)-1 && len(n.children[i+1].keys) >= deg:
			t.rotateLeft(n, i)
		default:
			if i == len(n.children)-1 {
				i--
			}
			t.merge(n, i)
			child = n.children[i]
		}
		child = n.children[i]
	}
	return t.delete(child, k)
}

func (t *Tree[K, V]) max(n *node[K, V]) (K, V) {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.values[len(n.values)-1]
}

func (t *Tree[K, V]) min(n *node[K, V]) (K, V) {
	for n.children != nil {
		n = n.children[0]
	}
	return n.keys[0], n.values[0]
}

// rotateRight moves a key from children[i-1] through the parent into
// children[i].
func (t *Tree[K, V]) rotateRight(n *node[K, V], i int) {
	left, child := n.children[i-1], n.children[i]
	child.keys = append(child.keys, n.keys[i-1])
	copy(child.keys[1:], child.keys)
	child.keys[0] = n.keys[i-1]
	child.values = append(child.values, n.values[i-1])
	copy(child.values[1:], child.values)
	child.values[0] = n.values[i-1]
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.values[i-1] = left.values[len(left.values)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.values = left.values[:len(left.values)-1]
	clear(left.keys[len(left.keys) : len(left.keys)+1])
	clear(left.values[len(left.values) : len(left.values)+1])
	if child.children != nil {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
		clear(left.children[len(left.children) : len(left.children)+1])
	}
}

// rotateLeft moves a key from children[i+1] through the parent into
// children[i].
func (t *Tree[K, V]) rotateLeft(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.values = append(child.values, n.values[i])
	n.keys[i] = right.keys[0]
	n.values[i] = right.values[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.values = append(right.values[:0], right.values[1:]...)
	clear(right.keys[len(right.keys) : len(right.keys)+1])
	clear(right.values[len(right.values) : len(right.values)+1])
	if child.children != nil {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
		clear(right.children[len(right.children) : len(right.children)+1])
	}
}

// merge folds n.keys[i] and children[i+1] into children[i]; the emptied
// right node is recycled through the arena freelist.
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.keys = append(child.keys, right.keys...)
	child.values = append(child.values, n.values[i])
	child.values = append(child.values, right.values...)
	if child.children != nil {
		child.children = append(child.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	clear(n.keys[len(n.keys) : len(n.keys)+1])
	clear(n.values[len(n.values) : len(n.values)+1])
	clear(n.children[len(n.children) : len(n.children)+1])
	t.freeNode(right)
}

// Ascend calls fn for every entry in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(k K, v V) bool) bool {
	if n == nil {
		return true
	}
	for i := range n.keys {
		if n.children != nil && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(n.keys[i], n.values[i]) {
			return false
		}
	}
	if n.children != nil {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange calls fn for every entry with lo <= key < hi, in order,
// until fn returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	t.ascendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(k K, v V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := t.search(n, lo)
	for i := start; i < len(n.keys); i++ {
		if n.children != nil && !t.ascendRange(n.children[i], lo, hi, fn) {
			return false
		}
		if !t.less(n.keys[i], hi) {
			return false
		}
		if !fn(n.keys[i], n.values[i]) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendRange(n.children[len(n.children)-1], lo, hi, fn)
	}
	return true
}
