package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, int] {
	return NewWithDegree[int, int](3, func(a, b int) bool { return a < b })
}

func TestPutGetDelete(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree returned a value")
	}
	for i := 0; i < 100; i++ {
		if !tr.Put(i, i*10) {
			t.Fatalf("Put(%d) reported replace on fresh key", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Put(50, 999) {
		t.Fatal("Put on existing key reported insert")
	}
	if v, _ := tr.Get(50); v != 999 {
		t.Fatalf("replaced value = %d", v)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) present=%v after deleting evens", i, ok)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
}

func TestAscendOrder(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(7)).Perm(500)
	for _, k := range perm {
		tr.Put(k, k)
	}
	var got []int
	tr.Ascend(func(k, v int) bool { got = append(got, k); return true })
	if len(got) != 500 {
		t.Fatalf("Ascend visited %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("Ascend not in order")
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Put(i, i)
	}
	var got []int
	tr.AscendRange(10, 20, func(k, v int) bool { got = append(got, k); return true })
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("AscendRange(10,20) = %v", got)
	}
	got = nil
	tr.AscendRange(95, 200, func(k, v int) bool { got = append(got, k); return true })
	if len(got) != 5 {
		t.Fatalf("AscendRange over end = %v", got)
	}
	got = nil
	tr.AscendRange(5, 5, func(k, v int) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, 100, func(k, v int) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestAgainstMapModel drives random ops against a map reference model.
func TestAgainstMapModel(t *testing.T) {
	tr := intTree()
	model := map[int]int{}
	r := rand.New(rand.NewSource(99))
	for step := 0; step < 20000; step++ {
		k := r.Intn(300)
		switch r.Intn(3) {
		case 0:
			v := r.Intn(1000)
			_, existed := model[k]
			ins := tr.Put(k, v)
			if ins == existed {
				t.Fatalf("step %d: Put(%d) insert=%v but existed=%v", step, k, ins, existed)
			}
			model[k] = v
		case 1:
			_, existed := model[k]
			if del := tr.Delete(k); del != existed {
				t.Fatalf("step %d: Delete(%d)=%v existed=%v", step, k, del, existed)
			}
			delete(model, k)
		case 2:
			mv, existed := model[k]
			v, ok := tr.Get(k)
			if ok != existed || (ok && v != mv) {
				t.Fatalf("step %d: Get(%d)=%d,%v model=%d,%v", step, k, v, ok, mv, existed)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, tr.Len(), len(model))
		}
	}
	// Final: full in-order scan matches sorted model keys.
	keys := make([]int, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	tr.Ascend(func(k, v int) bool {
		if i >= len(keys) || k != keys[i] || v != model[k] {
			t.Fatalf("scan mismatch at %d: got %d", i, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

func TestQuickInsertedMeansGettable(t *testing.T) {
	f := func(keys []int16) bool {
		tr := intTree()
		for _, k := range keys {
			tr.Put(int(k), int(k)+1)
		}
		for _, k := range keys {
			v, ok := tr.Get(int(k))
			if !ok || v != int(k)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](func(a, b string) bool { return a < b })
	words := []string{"pear", "apple", "fig", "banana", "date", "cherry"}
	for i, w := range words {
		tr.Put(w, i)
	}
	var got []string
	tr.Ascend(func(k string, v int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) || len(got) != len(words) {
		t.Fatalf("string scan = %v", got)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(i, i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	for i := 0; i < 1<<16; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(i & (1<<16 - 1))
	}
}
