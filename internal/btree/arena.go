package btree

// Slab/arena node allocation. A naive B-tree node costs four heap
// objects (the node header plus three append-grown backing arrays), each
// traced separately by the GC; at the 10M-entry namespace scale that is
// millions of objects for structure alone. The arena instead carves
// node headers and full-capacity key/value/children backing arrays out
// of chunked slabs, so:
//
//   - every node's slices are allocated once at full B-tree capacity
//     (2t-1 keys, 2t children) — append during split/merge/rotate never
//     reallocates, because the tree's invariants bound those lengths;
//   - nodes discarded by merge and root collapse go on a freelist and
//     are recycled by the next split, so steady-state churn performs no
//     allocation at all;
//   - slab contiguity keeps sibling nodes on the same cache lines and
//     reduces the GC's object count by ~slabNodes×.
//
// The arena is owned by one Tree and shares its (absent) synchronisation
// contract. Freed nodes have their slots cleared before they reach the
// freelist so recycled memory never pins old keys or values.

// slabNodes is the number of nodes' worth of headers and backing arrays
// carved from one slab allocation.
const slabNodes = 32

type arena[K, V any] struct {
	keys []K           // key slab remainder
	vals []V           // value slab remainder (advances in lockstep with keys)
	kids []*node[K, V] // children slab remainder
	hdrs []node[K, V]  // node header slab remainder

	freeLeaf []*node[K, V] // recycled leaves
	freeInt  []*node[K, V] // recycled internal nodes (keep their children slab)
}

// newNode returns an empty node with full-capacity backing arrays,
// recycling a freed node when one is available. Leaves and internal
// nodes are recycled separately: a leaf is distinguished by a nil
// children slice, and an internal node keeps its carved children array
// across reuse.
func (t *Tree[K, V]) newNode(leaf bool) *node[K, V] {
	a := &t.arena
	if leaf {
		if n := len(a.freeLeaf); n > 0 {
			nd := a.freeLeaf[n-1]
			a.freeLeaf[n-1] = nil
			a.freeLeaf = a.freeLeaf[:n-1]
			return nd
		}
	} else if n := len(a.freeInt); n > 0 {
		nd := a.freeInt[n-1]
		a.freeInt[n-1] = nil
		a.freeInt = a.freeInt[:n-1]
		return nd
	}
	keyCap := 2*t.degree - 1
	if len(a.hdrs) == 0 {
		a.hdrs = make([]node[K, V], slabNodes)
	}
	nd := &a.hdrs[0]
	a.hdrs = a.hdrs[1:]
	if len(a.keys) < keyCap {
		a.keys = make([]K, slabNodes*keyCap)
		a.vals = make([]V, slabNodes*keyCap)
	}
	nd.keys = a.keys[0:0:keyCap]
	a.keys = a.keys[keyCap:]
	nd.values = a.vals[0:0:keyCap]
	a.vals = a.vals[keyCap:]
	if !leaf {
		childCap := 2 * t.degree
		if len(a.kids) < childCap {
			a.kids = make([]*node[K, V], slabNodes*childCap)
		}
		nd.children = a.kids[0:0:childCap]
		a.kids = a.kids[childCap:]
	}
	return nd
}

// freeNode clears nd's slots (so recycled slabs pin nothing) and puts it
// on the matching freelist.
func (t *Tree[K, V]) freeNode(nd *node[K, V]) {
	clear(nd.keys)
	clear(nd.values)
	nd.keys = nd.keys[:0]
	nd.values = nd.values[:0]
	if nd.children != nil {
		clear(nd.children)
		nd.children = nd.children[:0]
		t.arena.freeInt = append(t.arena.freeInt, nd)
	} else {
		t.arena.freeLeaf = append(t.arena.freeLeaf, nd)
	}
}
