package btree

// Bottom-up bulk loading. Sequential Put fills nodes to ~50% occupancy
// (every split leaves two half-full nodes that are never revisited by an
// ascending insert), so a freshly populated namespace wastes almost half
// of every slab. A Loader builds the tree bottom-up from a sorted stream
// instead, packing nodes to 2t-2 of their 2t-1 capacity (~97% for the
// default degree) — the difference between ~150 and ~80 resident bytes
// per entry at the 10M-entry sweep's scale — and runs in O(n) with no
// comparisons.

// Loader streams strictly-ascending entries into a tree being rebuilt
// bottom-up. Obtain one with Tree.NewLoader (which empties the tree),
// Add every entry in ascending key order, then call Done exactly once.
// The tree must not be read or mutated between NewLoader and Done.
//
// The builder maintains an open rightmost spine — one partially filled
// node per level — closing a node into its parent whenever it reaches
// the target fill; the entry that overflows a level becomes the parent's
// separator (this is a classic B-tree: interior keys are real entries).
type Loader[K, V any] struct {
	t    *Tree[K, V]
	fill int
	// open[l] is the node currently being filled at level l (leaves are
	// level 0); nil means the level's previous node was just closed and
	// the next arrival starts a fresh one.
	open  []*node[K, V]
	count int
	done  bool
}

// NewLoader empties the tree (discarding nodes, slabs, and freelists
// wholesale; degree and ordering are kept) and returns a Loader that
// rebuilds it from an ascending stream.
func (t *Tree[K, V]) NewLoader() *Loader[K, V] {
	*t = Tree[K, V]{degree: t.degree, less: t.less}
	return &Loader[K, V]{
		t:    t,
		fill: 2*t.degree - 2,
		open: []*node[K, V]{t.newNode(true)},
	}
}

// Add appends one entry. Keys must arrive in strictly ascending order.
func (l *Loader[K, V]) Add(k K, v V) {
	l.addKey(0, k, v)
	l.count++
}

// Len returns the number of entries added so far.
func (l *Loader[K, V]) Len() int { return l.count }

func (l *Loader[K, V]) closeInto(level int, child *node[K, V]) {
	for level >= len(l.open) {
		l.open = append(l.open, nil)
	}
	if l.open[level] == nil {
		l.open[level] = l.t.newNode(false)
	}
	l.open[level].children = append(l.open[level].children, child)
}

func (l *Loader[K, V]) addKey(level int, k K, v V) {
	n := l.open[level]
	if len(n.keys) == l.fill {
		l.open[level] = nil
		l.closeInto(level+1, n)
		if level == 0 {
			l.open[0] = l.t.newNode(true)
		}
		l.addKey(level+1, k, v)
		return
	}
	n.keys = append(n.keys, k)
	n.values = append(n.values, v)
}

// Done closes the open spine and installs the finished tree. The stream
// tail can leave the last node of each level underfull, so a final
// top-down pass over the rightmost spine rotates entries in from the
// (always full) left siblings.
func (l *Loader[K, V]) Done() {
	if l.done {
		return
	}
	l.done = true
	t := l.t
	if l.count == 0 {
		// The pre-created empty leaf never held an entry; drop it.
		t.root, t.length = nil, 0
		t.freeNode(l.open[0])
		return
	}

	// Close the remaining open nodes bottom-up; the topmost becomes the
	// root. A nil slot between two open levels is bridged by closeInto
	// creating an intermediate (it ends underfull and is repaired below).
	top := len(l.open) - 1
	for lv := 0; lv < top; lv++ {
		if l.open[lv] != nil {
			l.closeInto(lv+1, l.open[lv])
			l.open[lv] = nil
		}
	}
	t.root = l.open[top]
	t.length = l.count

	// Repair the rightmost spine: every non-last node at each level was
	// closed exactly full, so rotating from the left sibling can always
	// bring an underfull tail node up to the t-1 minimum while leaving
	// the sibling >= t-1.
	for n := t.root; n.children != nil; {
		m := len(n.children)
		y := n.children[m-1]
		for len(y.keys) < t.degree-1 {
			t.rotateRight(n, m-1)
		}
		n = y
	}
}

// BulkLoad replaces the tree's contents with count entries, delivered in
// strictly ascending key order by next(0..count-1). A convenience
// wrapper around NewLoader/Add/Done.
func (t *Tree[K, V]) BulkLoad(count int, next func(i int) (K, V)) {
	l := t.NewLoader()
	for i := 0; i < count; i++ {
		l.Add(next(i))
	}
	l.Done()
}
