package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mantle/internal/api"
	"mantle/internal/indexnode"
	"mantle/internal/rpc"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

func newTestMantle(t *testing.T, mutate func(*Config)) *Mantle {
	t.Helper()
	cfg := Config{
		TafDB: tafdb.Config{Shards: 4, Delta: tafdb.DeltaAuto},
		Index: indexnode.Config{Voters: 3, K: 2, CacheEnabled: true, BatchEnabled: true},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func op(m *Mantle) *rpc.Op { return m.Caller().Begin() }

func TestEndToEndObjectLifecycle(t *testing.T) {
	m := newTestMantle(t, nil)
	if _, err := m.Mkdir(op(m), "/data"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mkdir(op(m), "/data/set1"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Create(op(m), "/data/set1/obj1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry.Kind != types.KindObject {
		t.Fatalf("entry = %+v", res.Entry)
	}
	stat, err := m.ObjStat(op(m), "/data/set1/obj1")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Entry.Attr.Size != 4096 {
		t.Fatalf("size = %d", stat.Entry.Attr.Size)
	}
	// objstat = 1 lookup RPC + 1 TafDB RPC.
	if stat.RTTs != 2 {
		t.Fatalf("objstat RTTs = %d, want 2", stat.RTTs)
	}
	ds, err := m.DirStat(op(m), "/data/set1")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entry.Attr.LinkCount != 1 {
		t.Fatalf("dir links = %d", ds.Entry.Attr.LinkCount)
	}
	_, entries, err := m.ReadDir(op(m), "/data/set1")
	if err != nil || len(entries) != 1 || entries[0].Name != "obj1" {
		t.Fatalf("readdir = %v err=%v", entries, err)
	}
	if _, err := m.Delete(op(m), "/data/set1/obj1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObjStat(op(m), "/data/set1/obj1"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("stat after delete: %v", err)
	}
}

func TestMkdirRmdirLifecycle(t *testing.T) {
	m := newTestMantle(t, nil)
	if _, err := m.Mkdir(op(m), "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mkdir(op(m), "/a/b"); err != nil {
		t.Fatal(err)
	}
	// Duplicate mkdir fails.
	if _, err := m.Mkdir(op(m), "/a/b"); !errors.Is(err, types.ErrExists) {
		t.Fatalf("dup mkdir: %v", err)
	}
	// rmdir of non-empty fails.
	if _, err := m.Rmdir(op(m), "/a"); !errors.Is(err, types.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if _, err := m.Rmdir(op(m), "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Rmdir(op(m), "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup(op(m), "/a"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("lookup after rmdir: %v", err)
	}
}

func TestDirRenameEndToEnd(t *testing.T) {
	m := newTestMantle(t, nil)
	for _, p := range []string{"/src", "/src/job", "/out"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(op(m), "/src/job/part-0", 100); err != nil {
		t.Fatal(err)
	}
	res, err := m.DirRename(op(m), "/src/job", "/out/job-final")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: lookup phase is zero (merged into loop detection).
	if res.Phases[types.PhaseLookup] != 0 {
		t.Fatalf("rename lookup phase = %v, want 0", res.Phases[types.PhaseLookup])
	}
	if res.Phases[types.PhaseLoopDetect] == 0 {
		t.Fatal("rename loop-detect phase not recorded")
	}
	// Contents moved with the directory.
	stat, err := m.ObjStat(op(m), "/out/job-final/part-0")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Entry.Attr.Size != 100 {
		t.Fatalf("moved object = %+v", stat.Entry)
	}
	if _, err := m.Lookup(op(m), "/src/job"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("old path: %v", err)
	}
	// Loop rename rejected.
	if _, err := m.Mkdir(op(m), "/out/job-final/sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DirRename(op(m), "/out", "/out/job-final/sub/loop"); !errors.Is(err, types.ErrLoop) {
		t.Fatalf("loop: %v", err)
	}
}

func TestConcurrentRenamesIntoSharedDir(t *testing.T) {
	// The Spark-commit pattern: tasks rename temp dirs into one shared
	// output directory concurrently. All must succeed exactly once.
	m := newTestMantle(t, nil)
	if _, err := m.Mkdir(op(m), "/tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mkdir(op(m), "/output"); err != nil {
		t.Fatal(err)
	}
	const tasks = 24
	for i := 0; i < tasks; i++ {
		if _, err := m.Mkdir(op(m), fmt.Sprintf("/tmp/task-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("/tmp/task-%d", i)
			dst := fmt.Sprintf("/output/part-%d", i)
			if _, err := m.DirRename(op(m), src, dst); err != nil {
				t.Errorf("rename %s: %v", src, err)
			}
		}(i)
	}
	wg.Wait()
	_, entries, err := m.ReadDir(op(m), "/output")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != tasks {
		t.Fatalf("output has %d entries, want %d", len(entries), tasks)
	}
	ds, err := m.DirStat(op(m), "/output")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entry.Attr.LinkCount != tasks {
		t.Fatalf("output links = %d, want %d", ds.Entry.Attr.LinkCount, tasks)
	}
}

func TestConcurrentRenamesOfSameSource(t *testing.T) {
	// Exactly one of N racing renames of the same source must win.
	m := newTestMantle(t, nil)
	for _, p := range []string{"/s", "/s/d", "/o"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	const racers = 8
	var wg sync.WaitGroup
	var successes, failures int
	var mu sync.Mutex
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := m.DirRename(op(m), "/s/d", fmt.Sprintf("/o/d%d", i))
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				successes++
			} else if errors.Is(err, types.ErrNotFound) || errors.Is(err, types.ErrLocked) ||
				errors.Is(err, types.ErrRetryExhausted) {
				failures++
			} else {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if successes != 1 {
		t.Fatalf("successes = %d (failures %d), want exactly 1", successes, failures)
	}
}

func TestPopulateThenOperate(t *testing.T) {
	m := newTestMantle(t, nil)
	dirs := []api.PopDir{
		{Path: "/d0", ID: 100, Pid: types.RootID},
		{Path: "/d0/d1", ID: 101, Pid: 100},
		{Path: "/d0/d1/d2", ID: 102, Pid: 101},
	}
	objs := []api.PopObject{{Pid: 102, Name: "o", Size: 7}}
	if err := m.Populate(dirs, objs); err != nil {
		t.Fatal(err)
	}
	st, err := m.ObjStat(op(m), "/d0/d1/d2/o")
	if err != nil || st.Entry.Attr.Size != 7 {
		t.Fatalf("stat = %+v err=%v", st, err)
	}
	// New transactional ops coexist with populated state (IDs reserved).
	if _, err := m.Mkdir(op(m), "/d0/d1/d2/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(op(m), "/d0/d1/d2/new/obj", 1); err != nil {
		t.Fatal(err)
	}
}

func TestSetPermEnforced(t *testing.T) {
	m := newTestMantle(t, nil)
	for _, p := range []string{"/p", "/p/q"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(op(m), "/p/q/o", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetPerm(op(m), "/p", types.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObjStat(op(m), "/p/q/o"); !errors.Is(err, types.ErrPermission) {
		t.Fatalf("stat through no-lookup dir: %v", err)
	}
	if _, err := m.SetPerm(op(m), "/p", types.PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObjStat(op(m), "/p/q/o"); err != nil {
		t.Fatalf("stat after restore: %v", err)
	}
}

func TestSharedTafDBMultiNamespace(t *testing.T) {
	// Two namespaces share one TafDB (the paper's deployment model):
	// each gets its own IndexNode group and root.
	db := tafdb.New(tafdb.Config{Shards: 4})
	defer db.Stop()
	if err := db.CreateRoot(types.RootID); err != nil {
		t.Fatal(err)
	}
	mkNS := func(name string) *Mantle {
		cfg := Config{
			Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, Name: name},
		}
		m, err := NewWithDB(cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		return m
	}
	// Namespace roots must be distinct directories in the shared DB; use
	// per-namespace root dirs under the global root.
	ns1 := mkNS("ns1")
	ns2 := mkNS("ns2")
	if _, err := ns1.Mkdir(op(ns1), "/ns1data"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns2.Mkdir(op(ns2), "/ns2data"); err != nil {
		t.Fatal(err)
	}
	// ns2's IndexNode does not know ns1's directories: namespace
	// isolation at the index layer.
	if _, err := ns2.Lookup(op(ns2), "/ns1data"); err == nil {
		t.Fatal("namespace leak: ns2 resolved ns1's directory")
	}
}

func TestIndexNodeLeaderFailover(t *testing.T) {
	m := newTestMantle(t, nil)
	if _, err := m.Mkdir(op(m), "/before"); err != nil {
		t.Fatal(err)
	}
	if !m.Index().KillLeader() {
		t.Fatal("no leader to kill")
	}
	// Operations continue after re-election: writes retry to the new
	// leader; lookups keep resolving.
	if _, err := m.Mkdir(op(m), "/after"); err != nil {
		t.Fatalf("mkdir after failover: %v", err)
	}
	if _, err := m.Lookup(op(m), "/before"); err != nil {
		t.Fatalf("lookup after failover: %v", err)
	}
	if _, err := m.Create(op(m), "/after/obj", 1); err != nil {
		t.Fatalf("create after failover: %v", err)
	}
	if _, err := m.DirRename(op(m), "/after", "/renamed"); err != nil {
		t.Fatalf("rename after failover: %v", err)
	}
	if _, err := m.ObjStat(op(m), "/renamed/obj"); err != nil {
		t.Fatalf("stat after failover rename: %v", err)
	}
}

func TestProxyCacheSkipsRPCAndInvalidates(t *testing.T) {
	m := newTestMantle(t, func(c *Config) { c.ProxyCache = true })
	for _, p := range []string{"/pc", "/pc/a", "/dst"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(op(m), "/pc/a/o", 1); err != nil {
		t.Fatal(err)
	}
	// First stat fills the proxy cache; second uses it (1 RPC: TafDB
	// read only, the lookup RPC is gone).
	if _, err := m.ObjStat(op(m), "/pc/a/o"); err != nil {
		t.Fatal(err)
	}
	r2, err := m.ObjStat(op(m), "/pc/a/o")
	if err != nil {
		t.Fatal(err)
	}
	if r2.RTTs != 1 {
		t.Fatalf("cached objstat RTTs = %d, want 1", r2.RTTs)
	}
	// Rename invalidates the cached subtree: stale hits are impossible.
	if _, err := m.DirRename(op(m), "/pc/a", "/dst/a2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObjStat(op(m), "/pc/a/o"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("stale proxy cache served old path: %v", err)
	}
	if _, err := m.ObjStat(op(m), "/dst/a2/o"); err != nil {
		t.Fatalf("new path: %v", err)
	}
}
