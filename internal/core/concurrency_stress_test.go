package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/types"
)

// TestProxyCacheCleansPathsOnGet is the regression test for the
// path-cleaning asymmetry the striped rewrite fixed: put and invalidate
// always cleaned their paths, but get did not, so an un-cleaned caller
// path ("//pc//a/" vs "/pc/a") missed the cache every time and paid the
// lookup RPC the cache had already absorbed. get now cleans internally.
func TestProxyCacheCleansPathsOnGet(t *testing.T) {
	c := newProxyCache()
	res := indexnode.LookupResult{ID: 42, ParentID: 7, Perm: types.PermAll}
	c.put("/pc/a", res, c.epoch.Load())
	for _, messy := range []string{"//pc//a", "/pc/a/", "/pc/./a", "//pc/./a//"} {
		got, ok := c.get(messy)
		if !ok || got.ID != 42 {
			t.Fatalf("get(%q) = (%+v, %v), want the /pc/a entry", messy, got, ok)
		}
	}
	// End to end: a messy path must hit the proxy cache filled by the
	// canonical one (second stat = 1 RPC, the TafDB read only).
	m := newTestMantle(t, func(c *Config) { c.ProxyCache = true })
	for _, p := range []string{"/pc", "/pc/a"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(op(m), "/pc/a/o", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObjStat(op(m), "/pc/a/o"); err != nil {
		t.Fatal(err)
	}
	r2, err := m.ObjStat(op(m), "//pc//a/o")
	if err != nil {
		t.Fatal(err)
	}
	if r2.RTTs != 1 {
		t.Fatalf("messy-path cached objstat RTTs = %d, want 1 (proxy cache missed)", r2.RTTs)
	}
}

// TestLookupMissStormCoalesces pins down the singleflight guarantee on
// the proxy miss path: with a cold proxy cache and a slow RPC, N
// concurrent lookups of one path issue one IndexNode RPC between them —
// the rest join the in-flight lookup, observe the identical result, and
// are counted by lookup_coalesced_rpc.
func TestLookupMissStormCoalesces(t *testing.T) {
	m := newTestMantle(t, func(c *Config) {
		c.ProxyCache = true
		// A visible RTT holds the leader's RPC open long enough that the
		// other racers are guaranteed to arrive while it is in flight.
		c.Fabric = netsim.NewFabric(netsim.Config{RTT: 2 * time.Millisecond})
	})
	for _, p := range []string{"/storm", "/storm/dir"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the fills the mkdirs left behind so every racer misses.
	m.pcache.invalidate("/storm")

	const racers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]indexnode.LookupResult, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = m.lookup(op(m), "/storm/dir")
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if results[i].ID != results[0].ID || results[i].Perm != results[0].Perm {
			t.Fatalf("racer %d diverged: %+v vs %+v", i, results[i], results[0])
		}
	}
	if got := m.coalescedRPC.Value(); got == 0 {
		t.Fatalf("lookup_coalesced_rpc = 0: %d concurrent misses should have shared one RPC", racers)
	}
}

// TestConcurrentInvalidationStress drives hot lookups and stats through
// both cache layers (proxy cache + TopDirPathCache) while writers churn
// the same namespace with DirRename and SetPerm — the workload the
// striped/epoch/singleflight design must keep linearizable. It asserts:
//
//   - a writer observes its own invalidation immediately (no stale
//     post-invalidation hit: the old path fails, the new path resolves),
//   - a writer's SetPerm is visible to its own next lookup,
//   - at quiesce, every surviving proxy-cache entry agrees with the
//     authoritative IndexNode resolution (model check via forEach).
//
// Run with -race: the striped cache, singleflight groups, and shard
// RWMutex all get exercised concurrently here.
func TestConcurrentInvalidationStress(t *testing.T) {
	m := newTestMantle(t, func(c *Config) { c.ProxyCache = true })

	const (
		subdirs = 4
		objects = 3
	)
	for _, p := range []string{"/stress", "/stress/hot", "/stress/alt"} {
		if _, err := m.Mkdir(op(m), p); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < subdirs; d++ {
		dir := fmt.Sprintf("/stress/hot/d%d", d)
		if _, err := m.Mkdir(op(m), dir); err != nil {
			t.Fatal(err)
		}
		for o := 0; o < objects; o++ {
			if _, err := m.Create(op(m), fmt.Sprintf("%s/o%d", dir, o), 1); err != nil {
				t.Fatal(err)
			}
		}
	}

	renames := 30
	setperms := 60
	if testing.Short() {
		renames, setperms = 10, 20
	}

	var done atomic.Bool
	var wg, writers sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		done.Store(true)
	}

	// Readers: hammer lookups and stats on every directory. Transient
	// ErrNotFound (a rename in flight) and ErrPermission (a SetPerm in
	// flight) are expected; anything else is a failure.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for !done.Load() {
				d := i % subdirs
				switch i % 3 {
				case 0:
					_, err := m.Lookup(op(m), fmt.Sprintf("/stress/hot/d%d", d))
					if err != nil && !errors.Is(err, types.ErrNotFound) && !errors.Is(err, types.ErrPermission) {
						fail("reader lookup: %v", err)
					}
				case 1:
					_, err := m.ObjStat(op(m), fmt.Sprintf("/stress/hot/d%d/o%d", d, i%objects))
					if err != nil && !errors.Is(err, types.ErrNotFound) && !errors.Is(err, types.ErrPermission) {
						fail("reader objstat: %v", err)
					}
				case 2:
					_, err := m.ObjStat(op(m), fmt.Sprintf("/stress/alt/d0/o%d", i%objects))
					if err != nil && !errors.Is(err, types.ErrNotFound) && !errors.Is(err, types.ErrPermission) {
						fail("reader alt objstat: %v", err)
					}
				}
				i++
			}
		}(r)
	}

	// Rename writer: bounce d0 between /stress/hot and /stress/alt.
	// After each rename, the writer itself must see the invalidation:
	// the old path must not resolve, the new one must.
	wg.Add(1)
	writers.Add(1)
	go func() {
		defer wg.Done()
		defer writers.Done()
		src, dst := "/stress/hot/d0", "/stress/alt/d0"
		for i := 0; i < renames && !done.Load(); i++ {
			if _, err := m.DirRename(op(m), src, dst); err != nil {
				fail("rename %s -> %s: %v", src, dst, err)
				return
			}
			if _, err := m.Lookup(op(m), src); !errors.Is(err, types.ErrNotFound) {
				fail("stale post-rename hit: lookup(%s) after rename to %s: err=%v", src, dst, err)
				return
			}
			if _, err := m.Lookup(op(m), dst); err != nil {
				fail("post-rename lookup(%s): %v", dst, err)
				return
			}
			src, dst = dst, src
		}
		// Leave d0 under /stress/hot for the quiesce audit.
		if src == "/stress/alt/d0" {
			if _, err := m.DirRename(op(m), src, "/stress/hot/d0"); err != nil {
				fail("restore rename: %v", err)
			}
		}
	}()

	// SetPerm writer: toggle d1's permission. Its own next lookup must
	// observe the permission it just set.
	wg.Add(1)
	writers.Add(1)
	go func() {
		defer wg.Done()
		defer writers.Done()
		const dir = "/stress/hot/d1"
		perms := []types.Perm{types.PermRead | types.PermLookup, types.PermAll}
		for i := 0; i < setperms && !done.Load(); i++ {
			want := perms[i%2]
			if _, err := m.SetPerm(op(m), dir, want); err != nil {
				fail("setperm(%s, %v): %v", dir, want, err)
				return
			}
			lres, err := m.lookup(op(m), dir)
			if err != nil {
				fail("post-setperm lookup(%s): %v", dir, err)
				return
			}
			if lres.Perm != want {
				fail("stale post-setperm hit: lookup(%s).Perm = %v, want %v", dir, lres.Perm, want)
				return
			}
		}
		// Restore full permission for the quiesce audit.
		if _, err := m.SetPerm(op(m), dir, types.PermAll); err != nil {
			fail("restore setperm: %v", err)
		}
	}()

	// Readers run until both writers finish their scripted churn.
	go func() {
		writers.Wait()
		done.Store(true)
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce model check: every entry left in the proxy cache must
	// agree with the authoritative IndexNode resolution of its path.
	audited := 0
	m.pcache.forEach(func(path string, cached indexnode.LookupResult) bool {
		authoritative, err := m.idx.Lookup(op(m), path)
		if err != nil {
			t.Errorf("cached path %q no longer resolves: %v", path, err)
			return false
		}
		if cached.ID != authoritative.ID || cached.Perm != authoritative.Perm {
			t.Errorf("stale cache entry %q: cached (id=%d perm=%v), authoritative (id=%d perm=%v)",
				path, cached.ID, cached.Perm, authoritative.ID, authoritative.Perm)
			return false
		}
		audited++
		return true
	})
	t.Logf("audited %d surviving proxy-cache entries; coalesced RPCs: %d, coalesced walks: %d",
		audited, m.coalescedRPC.Value(), m.idx.CoalescedWalks())
}
