package core

import (
	"sync"
	"sync/atomic"

	"mantle/internal/indexnode"
	"mantle/internal/pathutil"
	"mantle/internal/radix"
	"mantle/internal/singleflight"
)

// proxyCache is the optional proxy-side metadata cache evaluated in the
// paper's Figure 20 ("we equip InfiniFS and Mantle with metadata
// caching"): directory-path resolution results cached at the proxy
// layer, short-circuiting even the single IndexNode RPC. The paper's
// point — and this reproduction's — is that it helps Mantle only
// modestly, because single-RPC lookups leave little to save; it is off
// by default (§6.5: "metadata caching isn't adopted in Mantle's
// design").
//
// Concurrency: the hot path (get) touches only one of pcStripes
// hash-striped RWMutexes, so concurrent readers of different — and
// mostly even the same — paths never serialise on a global lock. The
// radix PrefixTree, which answers "which cached paths lie under
// directory D?" for subtree invalidation, is shared across stripes and
// guarded by its own internal lock; it is touched only on fill and
// invalidation, never on a hit.
//
// Invalidation correctness across stripes uses an epoch: invalidate
// bumps the epoch *before* removing entries, and put re-checks the
// epoch captured before the miss's RPC both before and after
// inserting, deleting its own insert if an invalidation raced it. A
// fill therefore either completes before the invalidation sweep (and is
// removed by it — the insert is radix-first, so the sweep always finds
// it) or observes the bumped epoch and self-destructs; stale
// post-invalidation hits are impossible.
//
// Invalidation works here because the example "proxy fleet" is
// goroutines sharing one process; the paper's stateless multi-node
// proxy layer is precisely why the design rejects this cache.
type proxyCache struct {
	stripes [pcStripes]pcStripe
	prefix  *radix.Tree
	epoch   atomic.Uint64

	// flight coalesces concurrent misses of one path into a single
	// IndexNode RPC. Keys carry the epoch, so lookups beginning after an
	// invalidation never join (and thus never return) a
	// pre-invalidation flight's result.
	flight singleflight.Group[pcFlightKey, indexnode.LookupResult]
}

const pcStripes = 64

type pcStripe struct {
	mu sync.RWMutex
	m  map[string]indexnode.LookupResult
}

type pcFlightKey struct {
	path  string
	epoch uint64
}

func newProxyCache() *proxyCache {
	c := &proxyCache{prefix: radix.New()}
	for i := range c.stripes {
		c.stripes[i].m = make(map[string]indexnode.LookupResult)
	}
	return c
}

// stripeFor hashes a cleaned path to its stripe (FNV-1a).
func (c *proxyCache) stripeFor(path string) *pcStripe {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return &c.stripes[h%pcStripes]
}

// get returns the cached resolution of path. It cleans path itself, so
// every entry point normalises identically — callers may pass raw
// user-supplied paths.
func (c *proxyCache) get(path string) (indexnode.LookupResult, bool) {
	path = pathutil.Clean(path)
	s := c.stripeFor(path)
	s.mu.RLock()
	res, ok := s.m[path]
	s.mu.RUnlock()
	return res, ok
}

// put stores the resolution of path, provided no invalidation ran since
// the caller captured epoch0 (before issuing the lookup RPC). The
// radix-first insert plus the post-insert epoch re-check make the fill
// linearizable with invalidate: a racing invalidation either sweeps the
// entry away or forces the fill to remove itself.
func (c *proxyCache) put(path string, res indexnode.LookupResult, epoch0 uint64) {
	path = pathutil.Clean(path)
	if path == "/" {
		return
	}
	if c.epoch.Load() != epoch0 {
		return // an invalidation raced the RPC; the result may be stale
	}
	// Retention-safe key: don't let the cache pin the caller's request
	// path, and share the backing across stripes and repeated fills.
	path = pathutil.Intern(path)
	c.prefix.Insert(path)
	s := c.stripeFor(path)
	s.mu.Lock()
	s.m[path] = res
	s.mu.Unlock()
	if c.epoch.Load() != epoch0 {
		// An invalidation started during the insert; it may have swept
		// the radix tree before our Insert landed, so drop the entry
		// conservatively.
		c.prefix.Remove(path)
		s.mu.Lock()
		delete(s.m, path)
		s.mu.Unlock()
	}
}

// invalidate drops every cached entry under path (inclusive). The epoch
// bump happens first, so fills racing this sweep self-destruct.
func (c *proxyCache) invalidate(path string) {
	c.epoch.Add(1)
	for _, p := range c.prefix.RemoveSubtree(pathutil.Clean(path)) {
		s := c.stripeFor(p)
		s.mu.Lock()
		delete(s.m, p)
		s.mu.Unlock()
	}
}

// len returns the number of cached paths (tests).
func (c *proxyCache) len() int {
	n := 0
	for i := range c.stripes {
		c.stripes[i].mu.RLock()
		n += len(c.stripes[i].m)
		c.stripes[i].mu.RUnlock()
	}
	return n
}

// forEach visits every cached (path, result) pair (tests: the stress
// suite audits cache contents against authoritative lookups).
func (c *proxyCache) forEach(fn func(path string, res indexnode.LookupResult) bool) {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.RLock()
		for p, r := range s.m {
			if !fn(p, r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
