package core

import (
	"sync"

	"mantle/internal/indexnode"
	"mantle/internal/pathutil"
	"mantle/internal/radix"
)

// proxyCache is the optional proxy-side metadata cache evaluated in the
// paper's Figure 20 ("we equip InfiniFS and Mantle with metadata
// caching"): directory-path resolution results cached at the proxy
// layer, short-circuiting even the single IndexNode RPC. The paper's
// point — and this reproduction's — is that it helps Mantle only
// modestly, because single-RPC lookups leave little to save; it is off
// by default (§6.5: "metadata caching isn't adopted in Mantle's
// design").
//
// Invalidation: renames, permission changes, and rmdirs evict the
// affected subtree. This works here because the example "proxy fleet" is
// goroutines sharing one process; the paper's stateless multi-node proxy
// layer is precisely why the design rejects this cache.
type proxyCache struct {
	mu     sync.RWMutex
	m      map[string]indexnode.LookupResult
	prefix *radix.Tree
}

func newProxyCache() *proxyCache {
	return &proxyCache{m: make(map[string]indexnode.LookupResult), prefix: radix.New()}
}

func (c *proxyCache) get(path string) (indexnode.LookupResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	res, ok := c.m[path]
	return res, ok
}

func (c *proxyCache) put(path string, res indexnode.LookupResult) {
	path = pathutil.Clean(path)
	if path == "/" {
		return
	}
	c.mu.Lock()
	c.m[path] = res
	c.prefix.Insert(path)
	c.mu.Unlock()
}

func (c *proxyCache) invalidate(path string) {
	c.mu.Lock()
	for _, p := range c.prefix.RemoveSubtree(pathutil.Clean(path)) {
		delete(c.m, p)
	}
	c.mu.Unlock()
}
