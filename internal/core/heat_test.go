package core

import (
	"strings"
	"testing"

	"mantle/internal/types"
)

// The heat plane end to end: a skewed stat workload must surface the
// hot directory in the proxy sketch, nonzero per-shard loads, read-mix
// and rate accounting on the IndexNode group, and — with sampling and
// the observation floor forced down — at least one captured slow-op
// span tree.
func TestHeatPlaneEndToEnd(t *testing.T) {
	m := newTestMantle(t, func(c *Config) {
		c.Heat = HeatConfig{SampleEvery: 1, MinCount: 1}
	})
	if _, err := m.Mkdir(op(m), "/hot"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mkdir(op(m), "/cold"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(op(m), "/hot/obj", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(op(m), "/cold/obj", 1); err != nil {
		t.Fatal(err)
	}
	// Zipf-ish skew: the hot directory takes ~50x the cold one's stats.
	for i := 0; i < 200; i++ {
		if _, err := m.ObjStat(op(m), "/hot/obj"); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if _, err := m.ObjStat(op(m), "/cold/obj"); err != nil {
				t.Fatal(err)
			}
		}
	}

	s := m.Status()
	if len(s.Proxy.HotDirs) == 0 || s.Proxy.HotDirs[0].Key != "/hot" {
		t.Fatalf("proxy hot dirs = %+v, want /hot first", s.Proxy.HotDirs)
	}
	if s.Proxy.HotDirs[0].Count < 200 {
		t.Fatalf("hot dir count = %d, want >= 200", s.Proxy.HotDirs[0].Count)
	}

	if s.Index.LeaderReads+s.Index.FollowerReads+s.Index.LearnerReads == 0 {
		t.Fatal("no reads classified in the IndexNode read mix")
	}
	if len(s.Index.HotWriteDirs) == 0 {
		t.Fatalf("no hot write dirs (mkdirs went through propose): %+v", s.Index)
	}

	var reads, pieces int64
	for _, sl := range s.Shards {
		reads += sl.Reads
		pieces += sl.TxnPieces
	}
	if reads == 0 || pieces == 0 {
		t.Fatalf("shard loads flat: reads=%d pieces=%d", reads, pieces)
	}
	if len(s.DBDirs) == 0 {
		t.Fatal("DB-level hot-dir sketch empty")
	}

	// With SampleEvery=1 and MinCount=1 every op is sampled and the p99
	// threshold is live from the first observation, so the slowest op in
	// each distribution's tail must have been captured.
	if s.SlowOps.Sampled == 0 {
		t.Fatal("flight recorder saw no samples")
	}
	if s.SlowOps.Captured == 0 {
		t.Fatal("flight recorder captured no slow ops")
	}
	if len(s.SlowOps.Records) == 0 {
		t.Fatal("flight recorder retained no records")
	}
	rec := s.SlowOps.Records[0]
	if rec.Tree == "" || !strings.Contains(rec.Tree, rec.Op) {
		t.Fatalf("captured record has no span tree: %+v", rec)
	}

	// The text and metrics renderings carry the same signals.
	var b strings.Builder
	m.WriteStatus(&b)
	for _, want := range []string{"== proxy ==", "/hot", "== tafdb ==", "slow ops"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("WriteStatus missing %q:\n%s", want, b.String())
		}
	}
	b.Reset()
	if err := m.WriteHeatMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"heat_proxy_dir{/hot}", "heat_shard_0_reads", "heat_slowop_captured"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("WriteHeatMetrics missing %q:\n%s", want, b.String())
		}
	}
}

// Sampling disabled (SampleEvery < 0) must keep the recorder silent
// while the sketches still run.
func TestHeatSamplingDisabled(t *testing.T) {
	m := newTestMantle(t, func(c *Config) {
		c.Heat = HeatConfig{SampleEvery: -1}
	})
	if _, err := m.Mkdir(op(m), "/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := m.DirStat(op(m), "/d"); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Status()
	if s.SlowOps.Sampled != 0 || s.SlowOps.Captured != 0 {
		t.Fatalf("recorder active with sampling off: %+v", s.SlowOps)
	}
	if len(s.Proxy.HotDirs) == 0 {
		t.Fatal("sketches should run regardless of sampling")
	}
}

// The DB heat sketch keys on parent-directory IDs, so the hot pid must
// correspond to the directory stat'd most.
func TestHeatDBDirKeys(t *testing.T) {
	m := newTestMantle(t, nil)
	if _, err := m.Mkdir(op(m), "/d"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Lookup(op(m), "/d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := m.DirStat(op(m), "/d"); err != nil {
			t.Fatal(err)
		}
	}
	hot := m.DB().HotDirs()
	if len(hot) == 0 {
		t.Fatal("empty DB hot dirs")
	}
	if hot[0].Key != res.Entry.ID && hot[0].Key != types.RootID {
		t.Fatalf("hottest pid = %d, want %d (/d) or root", hot[0].Key, res.Entry.ID)
	}
}
