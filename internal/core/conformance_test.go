package core

import (
	"testing"

	"mantle/internal/api"
	"mantle/internal/conformance"
	"mantle/internal/indexnode"
	"mantle/internal/tafdb"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: true}, func(t *testing.T) api.Service {
		m, err := New(Config{
			TafDB: tafdb.Config{Shards: 4, Delta: tafdb.DeltaAuto},
			Index: indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
}

// The proxy-side cache must never change semantics, only costs.
func TestConformanceWithProxyCache(t *testing.T) {
	conformance.Run(t, conformance.Caps{LoopDetection: true}, func(t *testing.T) api.Service {
		m, err := New(Config{
			ProxyCache: true,
			TafDB:      tafdb.Config{Shards: 4, Delta: tafdb.DeltaAlways},
			Index:      indexnode.Config{Voters: 1, K: 2, CacheEnabled: true, BatchEnabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
}
