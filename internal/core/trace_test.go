package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mantle/internal/trace"
	"mantle/internal/types"
)

// TestTraceCreateSpanTree demonstrates the full observability surface on
// one traced Create: the span tree (op → path-resolve → rpc and op →
// txn-commit → rpc), Chrome trace_event JSON export, trip/byte
// accounting, and a metrics dump carrying p50/p95/p99 for the resolve,
// txn-commit, and raft-propose stages.
func TestTraceCreateSpanTree(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// Build /a/b and push one op through every stage (mkdir exercises
	// raft-propose; create exercises txn-commit).
	for _, dir := range []string{"/a", "/a/b"} {
		if _, err := m.Mkdir(m.Caller().Begin(), dir); err != nil {
			t.Fatalf("mkdir %s: %v", dir, err)
		}
	}

	tr, ctx := trace.New("create /a/b/o")
	op := m.Caller().BeginTraced(ctx)
	res, err := m.Create(op, "/a/b/o", 128)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	// The span tree must show the operation decomposed into stages with
	// rpc spans nested beneath them.
	tree := tr.Tree()
	t.Logf("span tree:\n%s", tree)
	for _, want := range []string{"create /a/b/o", "path-resolve", "txn-commit", "rpc", "trips="} {
		if !strings.Contains(tree, want) {
			t.Fatalf("span tree missing %q:\n%s", want, tree)
		}
	}
	spans := tr.Spans()
	byName := map[string]trace.SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["path-resolve"].ParentID != byName["create /a/b/o"].ID {
		t.Fatal("path-resolve is not a child of the op root")
	}
	if byName["txn-commit"].ParentID != byName["create /a/b/o"].ID {
		t.Fatal("txn-commit is not a child of the op root")
	}
	var rpcUnderResolve, rpcUnderTxn bool
	for _, s := range spans {
		if s.Name != "rpc" {
			continue
		}
		switch s.ParentID {
		case byName["path-resolve"].ID:
			rpcUnderResolve = true
		case byName["txn-commit"].ID:
			rpcUnderTxn = true
		}
	}
	if !rpcUnderResolve || !rpcUnderTxn {
		t.Fatalf("rpc spans not nested under stages (resolve=%v txn=%v):\n%s",
			rpcUnderResolve, rpcUnderTxn, tree)
	}

	// Trip accounting matches the op's RTT counter exactly, and the
	// result's RTT report.
	if tr.Trips() == 0 || int(tr.Trips()) != op.RTTs() || res.RTTs != op.RTTs() {
		t.Fatalf("trips = %d, op RTTs = %d, res RTTs = %d", tr.Trips(), op.RTTs(), res.RTTs)
	}
	if tr.Bytes() == 0 || tr.Bytes() != op.Bytes() {
		t.Fatalf("bytes = %d, op bytes = %d", tr.Bytes(), op.Bytes())
	}

	// The Chrome export is a valid trace_event array covering every span.
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	if len(events) != len(spans) {
		t.Fatalf("chrome events = %d, spans = %d", len(events), len(spans))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("event phase = %v", e["ph"])
		}
	}

	// The metrics dump reports percentiles for every traced stage.
	var buf bytes.Buffer
	if err := m.Metrics().Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"latency_resolve_p50_us", "latency_resolve_p95_us", "latency_resolve_p99_us",
		"latency_txn_commit_p50_us", "latency_txn_commit_p95_us", "latency_txn_commit_p99_us",
		"latency_raft_propose_p50_us", "latency_raft_propose_p95_us", "latency_raft_propose_p99_us",
		"latency_rpc_p99_us",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, out)
		}
	}
	// The propose/txn histograms saw real work (mkdirs and the create).
	if !strings.Contains(out, "latency_txn_commit_count 3") { // 2 mkdirs + 1 create
		t.Fatalf("txn commit count unexpected:\n%s", out)
	}
}

// TestTraceMkdirRaftPropose verifies the raft-propose stage nests in a
// traced mkdir's span tree.
func TestTraceMkdirRaftPropose(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	tr, ctx := trace.New("mkdir /x")
	if _, err := m.Mkdir(m.Caller().BeginTraced(ctx), "/x"); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	spans := tr.Spans()
	byName := map[string]trace.SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	prop, ok := byName["raft-propose"]
	if !ok {
		t.Fatalf("no raft-propose span:\n%s", tr.Tree())
	}
	if prop.ParentID != byName["mkdir /x"].ID {
		t.Fatalf("raft-propose parent = %d:\n%s", prop.ParentID, tr.Tree())
	}
	var rpcUnderPropose bool
	for _, s := range spans {
		if s.Name == "rpc" && s.ParentID == prop.ID {
			rpcUnderPropose = true
		}
	}
	if !rpcUnderPropose {
		t.Fatalf("no rpc span under raft-propose:\n%s", tr.Tree())
	}
}

// TestTraceProxyCacheInvalidate verifies the cache-invalidate span on a
// proxy-cached deployment's rmdir.
func TestTraceProxyCacheInvalidate(t *testing.T) {
	m, err := New(Config{ProxyCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := m.Mkdir(m.Caller().Begin(), "/d"); err != nil {
		t.Fatal(err)
	}

	tr, ctx := trace.New("rmdir /d")
	if _, err := m.Rmdir(m.Caller().BeginTraced(ctx), "/d"); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if !strings.Contains(tr.Tree(), "cache-invalidate") {
		t.Fatalf("no cache-invalidate span:\n%s", tr.Tree())
	}
	if _, err := m.Lookup(m.Caller().Begin(), "/d"); err == nil {
		t.Fatal("lookup of removed dir succeeded")
	} else if !strings.Contains(err.Error(), types.ErrNotFound.Error()) {
		// Removed directories resolve to not-found through the
		// invalidated cache.
		t.Logf("lookup error after rmdir: %v", err)
	}
}
