// Package core assembles Mantle, the paper's metadata service (§4–5): a
// stateless proxy layer orchestrating a per-namespace IndexNode Raft
// group (directory access metadata, single-RPC lookups, rename
// coordination) over a shared, sharded TafDB (complete metadata,
// distributed transactions, delta records).
//
// The proxy-side orchestration implemented here follows the paper's
// workflows exactly:
//
//   - every operation begins with a single-RPC lookup on IndexNode
//     (Figure 7),
//   - object operations then execute against TafDB with the resolved pid,
//   - mkdir/rmdir run a TafDB transaction and then replicate the access-
//     metadata change through IndexNode's Raft log,
//   - cross-directory dirrename runs the Figure 9 protocol: a single
//     PrepareRename RPC on IndexNode performs path resolution, RemovalList
//     insertion, lock acquisition, and loop detection; the proxy then
//     commits the TafDB transaction and the replicated IndexNode rename,
//     or aborts and retries on conflict. Retries reuse the operation's
//     UUID, so a crashed proxy's successor re-acquires the same lock
//     idempotently (§5.3).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mantle/internal/api"
	"mantle/internal/faults"
	"mantle/internal/heat"
	"mantle/internal/indexnode"
	"mantle/internal/metrics"
	"mantle/internal/netsim"
	"mantle/internal/pathutil"
	"mantle/internal/rpc"
	"mantle/internal/tafdb"
	"mantle/internal/trace"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// Config parameterises a Mantle deployment for one namespace.
type Config struct {
	// Fabric is the shared network; a zero-latency fabric is created if
	// nil.
	Fabric *netsim.Fabric
	// TafDB configures the shared metadata database. Its Fabric field is
	// overridden with the deployment fabric.
	TafDB tafdb.Config
	// Index configures the namespace's IndexNode group; Fabric likewise
	// overridden.
	Index indexnode.Config
	// ProxyCache enables the proxy-side metadata cache of Figure 20.
	// Off by default: Mantle's design intentionally rejects proxy
	// caching (stateless proxies), and the single-RPC lookup leaves it
	// little to save.
	ProxyCache bool
	// RenameRetries bounds dirrename retries on lock conflicts.
	RenameRetries int
	// RetryBase/RetryMax shape rename retry backoff.
	RetryBase, RetryMax time.Duration
	// Heat parameterises the heat plane (sketches, op sampling, flight
	// recorder). The zero value gets production defaults.
	Heat HeatConfig
}

// HeatConfig parameterises the proxy's heat plane.
type HeatConfig struct {
	// TopK bounds the tracked keys in each heavy-hitter sketch
	// (default 32).
	TopK int
	// SampleEvery head-samples one in N operations into a trace that is
	// offered to the slow-op flight recorder on completion, amortising
	// per-trace allocation cost below one alloc per op (default 64;
	// negative disables sampling entirely).
	SampleEvery int
	// MinCount is the per-op observation floor before the recorder
	// trusts the op's p99 as a slowness threshold (default 128).
	MinCount int64
	// RecorderSize is the flight-recorder ring capacity (default 64).
	RecorderSize int
}

func (h HeatConfig) withDefaults() HeatConfig {
	if h.TopK <= 0 {
		h.TopK = 32
	}
	if h.SampleEvery == 0 {
		h.SampleEvery = 64
	} else if h.SampleEvery < 0 {
		h.SampleEvery = 0
	}
	if h.MinCount <= 0 {
		h.MinCount = 128
	}
	if h.RecorderSize <= 0 {
		h.RecorderSize = 64
	}
	return h
}

// Mantle is one namespace's metadata service handle. It implements
// api.Service. Mantle is the Service a proxy embeds; proxies themselves
// are stateless, so concurrent goroutines calling these methods are the
// proxy fleet.
type Mantle struct {
	cfg    Config
	db     *tafdb.DB
	idx    *indexnode.Group
	caller *rpc.Caller
	uuidSq atomic.Uint64
	ownsDB bool
	pcache *proxyCache // nil unless Config.ProxyCache
	stats  *metrics.Registry
	// ops holds pre-resolved metric handles for every operation name, so
	// record() on the hot path neither concatenates strings nor takes the
	// registry lock.
	ops map[string]*opMetrics
	// resolveLatency is the latency_resolve histogram, pre-resolved so
	// the hot lookup path never takes the registry lock.
	resolveLatency *metrics.Latency
	// coalescedRPC counts proxy-cache misses that shared another miss's
	// in-flight IndexNode RPC instead of issuing their own.
	coalescedRPC *metrics.Counter

	// Heat plane: the proxy-side hot-directory and cache-miss sketches,
	// the service-wide op rate, and the slow-op flight recorder.
	heatCfg  HeatConfig
	dirHeat  *heat.TopK[string]
	missHeat *heat.TopK[string]
	opRate   *heat.Rate
	recorder *trace.FlightRecorder
}

// opMetrics bundles one operation's counters and latency histogram.
// tick drives head-sampling into the flight recorder (one trace every
// SampleEvery calls of this op).
type opMetrics struct {
	ops, errors, retries *metrics.Counter
	latency              *metrics.Latency
	tick                 atomic.Uint64
}

var _ api.Service = (*Mantle)(nil)

// New builds and starts a Mantle deployment. An existing TafDB may be
// shared across namespaces via NewWithDB.
func New(cfg Config) (*Mantle, error) {
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	cfg.TafDB.Fabric = cfg.Fabric
	db := tafdb.New(cfg.TafDB)
	if err := db.CreateRoot(types.RootID); err != nil {
		db.Stop()
		return nil, err
	}
	m, err := NewWithDB(cfg, db)
	if err != nil {
		db.Stop()
		return nil, err
	}
	m.ownsDB = true
	return m, nil
}

// NewWithDB builds a Mantle namespace service over an existing (shared)
// TafDB. The caller retains ownership of db.
func NewWithDB(cfg Config, db *tafdb.DB) (*Mantle, error) {
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.NewLocalFabric()
	}
	cfg.Index.Fabric = cfg.Fabric
	if cfg.RenameRetries <= 0 {
		cfg.RenameRetries = 10000
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 20 * time.Microsecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Millisecond
	}
	idx, err := indexnode.NewGroup(cfg.Index)
	if err != nil {
		return nil, err
	}
	m := &Mantle{
		cfg:    cfg,
		db:     db,
		idx:    idx,
		caller: rpc.NewCaller(cfg.Fabric),
		stats:  metrics.NewRegistry(),
	}
	if cfg.ProxyCache {
		m.pcache = newProxyCache()
	}
	m.heatCfg = cfg.Heat.withDefaults()
	m.dirHeat = heat.NewTopK[string](m.heatCfg.TopK)
	m.missHeat = heat.NewTopK[string](m.heatCfg.TopK)
	m.opRate = heat.NewRate(0)
	m.recorder = trace.NewFlightRecorder(m.heatCfg.RecorderSize)
	m.ops = make(map[string]*opMetrics, len(opNames))
	for _, op := range opNames {
		m.ops[op] = &opMetrics{
			ops:     m.stats.Counter("ops_" + op),
			errors:  m.stats.Counter("errors_" + op),
			retries: m.stats.Counter("retries_" + op),
			latency: m.stats.Latency("latency_" + op),
		}
	}
	m.resolveLatency = m.stats.Latency("latency_resolve")
	m.coalescedRPC = m.stats.Counter("lookup_coalesced_rpc")
	m.stats.Gauge("indexnode_lookup_coalesced", idx.CoalescedWalks)
	m.stats.Gauge("tafdb_rows", func() int64 { return int64(db.TotalRows()) })
	m.stats.Gauge("tafdb_txn_retries", db.Retries)
	m.stats.Gauge("indexnode_cache_entries", func() int64 {
		n, _, _, _ := idx.CacheStats()
		return int64(n)
	})
	m.stats.Gauge("indexnode_cache_hits", func() int64 {
		_, _, h, _ := idx.CacheStats()
		return h
	})
	// Fault-path observability: RPC retries/timeouts/drops and the
	// whole-call latency histogram from this namespace's caller,
	// degraded (stale-fallback) reads served by the IndexNode group,
	// and — when a fault injector is installed on the fabric — its
	// delivery counters.
	m.caller.RegisterMetrics(m.stats)
	m.stats.Gauge("indexnode_fallback_reads", idx.FallbackReads)
	// Component-owned latency histograms, exposed under the service
	// registry: transaction commits (TafDB, retries included) and raft
	// proposals (IndexNode group, enqueue → applied).
	m.stats.AttachLatency("latency_txn_commit", db.TxnLatency())
	m.stats.AttachLatency("latency_raft_propose", idx.ProposeLatency())
	// Write-path batching observability: raft log-batch counters and
	// flush reasons, WAL group-commit sync accounting, and the batched
	// 2PC coordinator — plus the derived occupancy/fan-in ratios the
	// ablation analysis reads directly.
	m.stats.Gauge("raft_batch_appends", func() int64 { return idx.RaftBatchStats().Appends })
	m.stats.Gauge("raft_batch_proposals", func() int64 { return idx.RaftBatchStats().Proposals })
	m.stats.Gauge("raft_batch_bytes", func() int64 { return idx.RaftBatchStats().BatchBytes })
	m.stats.Gauge("raft_batch_syncs", func() int64 { return idx.RaftBatchStats().Syncs })
	m.stats.Gauge("raft_flush_idle", func() int64 { return idx.RaftBatchStats().FlushIdle })
	m.stats.Gauge("raft_flush_timer", func() int64 { return idx.RaftBatchStats().FlushTimer })
	m.stats.Gauge("raft_flush_count", func() int64 { return idx.RaftBatchStats().FlushCount })
	m.stats.Gauge("raft_flush_bytes", func() int64 { return idx.RaftBatchStats().FlushBytes })
	m.stats.GaugeFloat("raft_batch_occupancy", func() float64 {
		s := idx.RaftBatchStats()
		if s.Appends == 0 {
			return 0
		}
		return float64(s.Proposals) / float64(s.Appends)
	})
	// Elastic hotspot management observability: hot-set churn and the
	// read/shed split on IndexNode, plus TafDB's migration accounting.
	m.stats.Gauge("hotspot_promotions", func() int64 { return idx.Hotspot().Promotions })
	m.stats.Gauge("hotspot_demotions", func() int64 { return idx.Hotspot().Demotions })
	m.stats.Gauge("hotspot_hot_reads", func() int64 { return idx.Hotspot().HotReads })
	m.stats.Gauge("hotspot_stale_fallbacks", func() int64 { return idx.Hotspot().StaleFalls })
	m.stats.Gauge("hotspot_sheds", func() int64 { return idx.Hotspot().Sheds })
	m.stats.Gauge("migrations", func() int64 { return db.Migrations().Migrations })
	m.stats.Gauge("migration_rows", func() int64 { return db.Migrations().Rows })
	m.stats.Gauge("migration_aborts", func() int64 { return db.Migrations().Aborts })
	m.stats.Gauge("wal_syncs", func() int64 { return db.WALStats().Syncs })
	m.stats.Gauge("wal_syncs_solo", func() int64 { return db.WALStats().SoloSyncs })
	m.stats.Gauge("wal_syncs_group", func() int64 { return db.WALStats().GroupSyncs })
	m.stats.Gauge("wal_batches_covered", func() int64 { return db.WALStats().Covered })
	m.stats.GaugeFloat("wal_group_fanin", func() float64 {
		s := db.WALStats()
		if s.Syncs == 0 {
			return 0
		}
		return float64(s.Covered) / float64(s.Syncs)
	})
	m.stats.Gauge("txn_batch_txns", func() int64 { t, _, _ := db.Batch2PCStats(); return t })
	m.stats.Gauge("txn_batch_batched", func() int64 { _, n, _ := db.Batch2PCStats(); return n })
	m.stats.Gauge("txn_batch_rounds", func() int64 { _, _, r := db.Batch2PCStats(); return r })
	m.stats.GaugeFloat("txn_batch_fanin", func() float64 {
		t, _, r := db.Batch2PCStats()
		if r == 0 {
			return 0
		}
		return float64(t) / float64(r)
	})
	if s, ok := cfg.Fabric.Faults().(interface{ Stats() faults.Stats }); ok {
		m.stats.Gauge("fault_delivered", func() int64 { return s.Stats().Delivered })
		m.stats.Gauge("fault_dropped", func() int64 { return s.Stats().Dropped })
		m.stats.Gauge("fault_delayed", func() int64 { return s.Stats().Delayed })
	}
	return m, nil
}

// Metrics exposes the deployment's metrics registry (the mantled
// gateway's /metrics endpoint renders it).
func (m *Mantle) Metrics() *metrics.Registry { return m.stats }

// opNames enumerates every operation record() is called with; each gets
// its metric handles pre-resolved at construction.
var opNames = []string{
	"lookup", "create", "delete", "objstat", "dirstat", "readdir",
	"mkdir", "rmdir", "dirrename", "setperm", "readdirpage",
}

// sampleOp head-samples one in every SampleEvery calls of the named
// operation into a fresh trace, returning the op re-bound to the trace
// context. Unsampled calls (and calls already carrying a caller trace)
// pass through untouched, keeping the hot path allocation-free.
func (m *Mantle) sampleOp(op *rpc.Op, name string) (*rpc.Op, *trace.Trace) {
	every := uint64(m.heatCfg.SampleEvery)
	if every == 0 || trace.FromContext(op.Context()) != nil {
		return op, nil
	}
	om := m.ops[name]
	if om.tick.Add(1)%every != 0 {
		return op, nil
	}
	tr, ctx := trace.New(name)
	return op.WithContext(ctx), tr
}

// record accounts one completed operation. A sampled trace is finished
// here and offered to the flight recorder against the op's live p99 —
// tail sampling: only spans of ops slower than their own distribution's
// tail are retained.
func (m *Mantle) record(op string, tr *trace.Trace, res types.Result, err error) {
	om := m.ops[op]
	om.ops.Inc()
	m.opRate.Add(1)
	if err != nil {
		if tr != nil {
			tr.Finish()
		}
		om.errors.Inc()
		return
	}
	d := res.Phases.Total()
	om.latency.Observe(d)
	if res.Retries > 0 {
		om.retries.Add(int64(res.Retries))
	}
	if tr != nil {
		tr.Finish()
		if om.latency.Count() >= m.heatCfg.MinCount {
			m.recorder.Offer(op, tr, d, om.latency.Quantile(0.99))
		}
	}
}

// lookup resolves dirPath, consulting the optional proxy-side cache
// before issuing the IndexNode RPC. The whole resolution is one
// path-resolve span and one latency_resolve observation.
//
// The miss path is singleflight-coalesced: concurrent misses of the
// same path in the same invalidation epoch share one IndexNode RPC, so
// a hot directory's lookup storm costs one RPC per overlap window
// rather than one per caller. Keying the flight on the epoch captured
// *before* joining guarantees a lookup that begins after an
// invalidation never receives a pre-invalidation result; a serial
// (non-overlapping) lookup never coalesces, so the paper's
// one-RPC-per-lookup trip accounting (Table 1) is unchanged.
func (m *Mantle) lookup(op *rpc.Op, dirPath string) (indexnode.LookupResult, error) {
	ctx, sp := trace.Start(op.Context(), "path-resolve")
	start := time.Now()
	defer func() {
		m.resolveLatency.Observe(time.Since(start))
		sp.End()
	}()
	m.dirHeat.Record(dirPath)
	if m.pcache == nil {
		res, err := m.idx.Lookup(op.WithContext(ctx), dirPath)
		if err == nil {
			if res.Hit {
				sp.SetAttr("cache", "topdir-hit")
			}
			sp.Annotate("levels", "%d", res.Levels)
		}
		return res, err
	}
	path := pathutil.Clean(dirPath)
	if res, ok := m.pcache.get(path); ok {
		sp.SetAttr("cache", "proxy-hit")
		return res, nil
	}
	epoch0 := m.pcache.epoch.Load()
	res, err, shared := m.pcache.flight.Do(pcFlightKey{path, epoch0}, func() (indexnode.LookupResult, error) {
		m.missHeat.Record(path)
		res, err := m.idx.Lookup(op.WithContext(ctx), path)
		if err == nil {
			m.pcache.put(path, res, epoch0)
		}
		return res, err
	})
	if shared {
		m.coalescedRPC.Inc()
		sp.SetAttr("coalesced", "rpc")
	}
	if err == nil {
		if res.Hit {
			sp.SetAttr("cache", "topdir-hit")
		}
		sp.Annotate("levels", "%d", res.Levels)
	}
	return res, err
}

// Name implements api.Service.
func (m *Mantle) Name() string { return "mantle" }

// Caller implements api.Service.
func (m *Mantle) Caller() *rpc.Caller { return m.caller }

// DB exposes the TafDB (stats, multi-namespace sharing).
func (m *Mantle) DB() *tafdb.DB { return m.db }

// Index exposes the IndexNode group (stats, ablation inspection).
func (m *Mantle) Index() *indexnode.Group { return m.idx }

// Stop implements api.Service.
func (m *Mantle) Stop() {
	m.idx.Stop()
	if m.ownsDB {
		m.db.Stop()
	}
}

func (m *Mantle) newUUID() string {
	return fmt.Sprintf("mntl-%d", m.uuidSq.Add(1))
}

// Lookup implements api.Service: a single-RPC path resolution.
func (m *Mantle) Lookup(op *rpc.Op, dirPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "lookup")
	defer func() { m.record("lookup", tr, res, err) }()
	t := api.NewTimer()
	lres, lerr := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if lerr != nil {
		return t.Done(op, 0, types.Entry{}), lerr
	}
	return t.Done(op, 0, types.Entry{
		ID: lres.ID, Pid: lres.ParentID, Kind: types.KindDir, Perm: lres.Perm,
	}), nil
}

// Create implements api.Service.
func (m *Mantle) Create(op *rpc.Op, objPath string, size int64) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "create")
	defer func() { m.record("create", tr, res, err) }()
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	lres, err := m.lookup(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !lres.Perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("create %s: %w", objPath, types.ErrPermission)
	}
	entry, retries, err := m.db.CreateObject(op, lres.ID, name, size)
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, entry), err
}

// Delete implements api.Service.
func (m *Mantle) Delete(op *rpc.Op, objPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "delete")
	defer func() { m.record("delete", tr, res, err) }()
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	lres, err := m.lookup(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !lres.Perm.Allows(types.PermWrite | types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("delete %s: %w", objPath, types.ErrPermission)
	}
	retries, err := m.db.DeleteObject(op, lres.ID, name)
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// ObjStat implements api.Service.
func (m *Mantle) ObjStat(op *rpc.Op, objPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "objstat")
	defer func() { m.record("objstat", tr, res, err) }()
	dir, name := pathutil.Dir(objPath), pathutil.Base(objPath)
	t := api.NewTimer()
	lres, err := m.lookup(op, dir)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !lres.Perm.Allows(types.PermLookup) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("objstat %s: %w", objPath, types.ErrPermission)
	}
	entry, err := m.db.StatObject(op, lres.ID, name)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// DirStat implements api.Service.
func (m *Mantle) DirStat(op *rpc.Op, dirPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "dirstat")
	defer func() { m.record("dirstat", tr, res, err) }()
	t := api.NewTimer()
	lres, err := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	entry, err := m.db.StatDir(op, lres.ID)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, entry), err
}

// ReadDir implements api.Service.
func (m *Mantle) ReadDir(op *rpc.Op, dirPath string) (res types.Result, entries []types.Entry, err error) {
	op, tr := m.sampleOp(op, "readdir")
	defer func() { m.record("readdir", tr, res, err) }()
	t := api.NewTimer()
	lres, err := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), nil, err
	}
	if !lres.Perm.Allows(types.PermLookup | types.PermRead) {
		return t.Done(op, 0, types.Entry{}), nil, fmt.Errorf("readdir %s: %w", dirPath, types.ErrPermission)
	}
	entries, err = m.db.ReadDir(op, lres.ID)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), entries, err
}

// Mkdir implements api.Service: TafDB transaction, then the replicated
// IndexNode access-metadata insert.
func (m *Mantle) Mkdir(op *rpc.Op, dirPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "mkdir")
	defer func() { m.record("mkdir", tr, res, err) }()
	parent, name := pathutil.Dir(dirPath), pathutil.Base(dirPath)
	t := api.NewTimer()
	lres, err := m.lookup(op, parent)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	if !lres.Perm.Allows(types.PermWrite) {
		return t.Done(op, 0, types.Entry{}), fmt.Errorf("mkdir %s: %w", dirPath, types.ErrPermission)
	}
	id := m.db.NewID()
	entry, retries, err := m.db.Mkdir(op, lres.ID, name, id, types.PermAll)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, retries, types.Entry{}), err
	}
	err = m.idx.AddDir(op, lres.ID, name, id, types.PermAll, parent)
	if errors.Is(err, types.ErrUnavailable) {
		// The IndexNode group cannot commit (no quorum). Compensate the
		// already-committed TafDB insert so the failed mkdir leaves no
		// torn state and a post-heal retry starts clean.
		_, _ = m.db.Rmdir(op, lres.ID, name, id)
	}
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, entry), err
}

// Rmdir implements api.Service.
func (m *Mantle) Rmdir(op *rpc.Op, dirPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "rmdir")
	defer func() { m.record("rmdir", tr, res, err) }()
	name := pathutil.Base(dirPath)
	t := api.NewTimer()
	lres, err := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	retries, err := m.db.Rmdir(op, lres.ParentID, name, lres.ID)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, retries, types.Entry{}), err
	}
	err = m.idx.RemoveDir(op, lres.ParentID, name, lres.ID, dirPath)
	m.invalidate(op, dirPath)
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// invalidate drops proxy-cache state under path (no-op without the
// proxy cache), recorded as a cache-invalidate span.
func (m *Mantle) invalidate(op *rpc.Op, path string) {
	if m.pcache == nil {
		return
	}
	_, sp := trace.Start(op.Context(), "cache-invalidate")
	sp.SetAttr("path", path)
	m.pcache.invalidate(path)
	sp.End()
}

// DirRename implements api.Service: the Figure 9 protocol. The lookup
// phase is folded into loop detection (PrepareRename resolves both
// paths), so — matching the paper's breakdown — lookup time is recorded
// as zero and the PrepareRename RPC is charged to the loop-detection
// phase.
func (m *Mantle) DirRename(op *rpc.Op, srcPath, dstPath string) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "dirrename")
	defer func() { m.record("dirrename", tr, res, err) }()
	dstParent, dstName := pathutil.Dir(dstPath), pathutil.Base(dstPath)
	uuid := m.newUUID()
	t := api.NewTimer()
	var totalRetries int
	for attempt := 0; ; attempt++ {
		prep, err := m.idx.PrepareRename(op, srcPath, dstParent, dstName, uuid)
		if err != nil {
			if errors.Is(err, types.ErrLocked) && attempt < m.cfg.RenameRetries {
				totalRetries++
				txn.Backoff(attempt, m.cfg.RetryBase, m.cfg.RetryMax)
				continue
			}
			t.Phase(types.PhaseLoopDetect)
			return t.Done(op, totalRetries, types.Entry{}), err
		}
		t.Phase(types.PhaseLoopDetect)

		retries, err := m.db.RenameDir(op, prep.SrcPid, prep.SrcName, prep.DstPid, dstName, prep.SrcID, prep.SrcPerm)
		totalRetries += retries
		if err != nil {
			_ = m.idx.AbortRename(op, prep.SrcID, srcPath, uuid)
			t.Phase(types.PhaseExecute)
			if errors.Is(err, types.ErrRetryExhausted) && attempt < m.cfg.RenameRetries {
				totalRetries++
				txn.Backoff(attempt, m.cfg.RetryBase, m.cfg.RetryMax)
				continue
			}
			return t.Done(op, totalRetries, types.Entry{}), err
		}
		err = m.idx.CommitRename(op, prep, dstName, srcPath, uuid)
		m.invalidate(op, srcPath)
		t.Phase(types.PhaseExecute)
		return t.Done(op, totalRetries, types.Entry{}), err
	}
}

// SetPerm changes a directory's permission, updating TafDB and the
// replicated IndexNode entry (which invalidates affected cache ranges on
// every replica).
func (m *Mantle) SetPerm(op *rpc.Op, dirPath string, perm types.Perm) (res types.Result, err error) {
	op, tr := m.sampleOp(op, "setperm")
	defer func() { m.record("setperm", tr, res, err) }()
	t := api.NewTimer()
	lres, err := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), err
	}
	retries, err := m.db.SetDirPerm(op, lres.ParentID, pathutil.Base(dirPath), lres.ID, perm)
	if err != nil {
		t.Phase(types.PhaseExecute)
		return t.Done(op, retries, types.Entry{}), err
	}
	err = m.idx.SetPerm(op, lres.ID, perm, dirPath)
	m.invalidate(op, dirPath)
	t.Phase(types.PhaseExecute)
	return t.Done(op, retries, types.Entry{}), err
}

// Populate implements api.Service: bulk-load dirs and objects into TafDB
// and the IndexNode replicas.
func (m *Mantle) Populate(dirs []api.PopDir, objects []api.PopObject) error {
	entries := make([]types.Entry, 0, len(dirs)+len(objects))
	access := make([]types.AccessEntry, 0, len(dirs))
	maxID := uint64(types.RootID)
	for _, d := range dirs {
		perm := d.Perm
		if perm == 0 {
			perm = types.PermAll
		}
		entries = append(entries, types.Entry{
			Pid: d.Pid, Name: pathutil.Base(d.Path), ID: d.ID,
			Kind: types.KindDir, Perm: perm,
		})
		access = append(access, types.AccessEntry{
			Pid: d.Pid, Name: pathutil.Base(d.Path), ID: d.ID, Perm: perm,
		})
		if uint64(d.ID) > maxID {
			maxID = uint64(d.ID)
		}
	}
	m.db.ReserveIDs(types.InodeID(maxID))
	for _, o := range objects {
		entries = append(entries, types.Entry{
			Pid: o.Pid, Name: o.Name, ID: m.db.NewID(), Kind: types.KindObject,
			Perm: types.PermAll, Attr: types.Attr{Size: o.Size},
		})
	}
	if err := m.db.BulkInsert(entries); err != nil {
		return err
	}
	m.idx.BulkAdd(access)
	return nil
}

// ReadDirPage implements paginated listing: up to limit entries with
// names after startAfter, plus the continuation token for the next page.
func (m *Mantle) ReadDirPage(op *rpc.Op, dirPath, startAfter string, limit int) (res types.Result, entries []types.Entry, next string, err error) {
	op, tr := m.sampleOp(op, "readdirpage")
	defer func() { m.record("readdirpage", tr, res, err) }()
	t := api.NewTimer()
	lres, err := m.lookup(op, dirPath)
	t.Phase(types.PhaseLookup)
	if err != nil {
		return t.Done(op, 0, types.Entry{}), nil, "", err
	}
	if !lres.Perm.Allows(types.PermLookup | types.PermRead) {
		return t.Done(op, 0, types.Entry{}), nil, "", fmt.Errorf("list %s: %w", dirPath, types.ErrPermission)
	}
	entries, next, err = m.db.ReadDirPage(op, lres.ID, startAfter, limit)
	t.Phase(types.PhaseExecute)
	return t.Done(op, 0, types.Entry{}), entries, next, err
}
