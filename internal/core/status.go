package core

import (
	"fmt"
	"io"

	"mantle/internal/heat"
	"mantle/internal/indexnode"
	"mantle/internal/tafdb"
	"mantle/internal/trace"
	"mantle/internal/types"
)

// Status is the live heat-plane snapshot the mantled /status endpoint
// serves: per-layer hot directories, per-shard load, and the slow-op
// flight recorder's retained span trees.
type Status struct {
	Proxy     ProxyStatus                `json:"proxy"`
	Index     indexnode.GroupHeat        `json:"index"`
	Shards    []tafdb.ShardLoad          `json:"shards"`
	DBDirs    []heat.Item[types.InodeID] `json:"db_hot_dirs"`
	Migration tafdb.MigrationStats       `json:"migration"`
	SlowOps   SlowOpsStatus              `json:"slow_ops"`
}

// ProxyStatus is the proxy layer's slice of the heat plane.
type ProxyStatus struct {
	OpsPerSec float64             `json:"ops_per_sec"`
	HotDirs   []heat.Item[string] `json:"hot_dirs"`
	HotMisses []heat.Item[string] `json:"hot_misses"`
}

// SlowOpsStatus summarises the flight recorder.
type SlowOpsStatus struct {
	Sampled  int64                `json:"sampled"`
	Captured int64                `json:"captured"`
	Records  []trace.FlightRecord `json:"records"`
}

// Status snapshots the deployment's heat plane.
func (m *Mantle) Status() Status {
	return Status{
		Proxy: ProxyStatus{
			OpsPerSec: m.opRate.PerSecond(),
			HotDirs:   m.dirHeat.Snapshot(),
			HotMisses: m.missHeat.Snapshot(),
		},
		Index:     m.idx.Heat(),
		Shards:    m.db.ShardLoads(),
		DBDirs:    m.db.HotDirs(),
		Migration: m.db.Migrations(),
		SlowOps: SlowOpsStatus{
			Sampled:  m.recorder.Sampled(),
			Captured: m.recorder.Captured(),
			Records:  m.recorder.Snapshot(),
		},
	}
}

// FlightRecorder exposes the slow-op flight recorder (tests, tools).
func (m *Mantle) FlightRecorder() *trace.FlightRecorder { return m.recorder }

// topN bounds a snapshot for human-readable rendering.
func topN[K comparable](items []heat.Item[K], n int) []heat.Item[K] {
	if len(items) > n {
		return items[:n]
	}
	return items
}

// WriteStatus renders the heat plane as human-readable text (the
// ?format=text view of /status and the mdtest/experiments heat report).
func (m *Mantle) WriteStatus(w io.Writer) {
	s := m.Status()
	fmt.Fprintf(w, "== proxy ==\n")
	fmt.Fprintf(w, "ops/sec (ewma): %.1f\n", s.Proxy.OpsPerSec)
	writeHotDirs(w, "hot dirs", s.Proxy.HotDirs)
	writeHotDirs(w, "hot cache misses", s.Proxy.HotMisses)

	fmt.Fprintf(w, "\n== indexnode ==\n")
	fmt.Fprintf(w, "lookups/sec (ewma): %.1f  proposes/sec (ewma): %.1f\n",
		s.Index.LookupsPerSec, s.Index.ProposesPerSec)
	fmt.Fprintf(w, "read mix: leader %d, follower %d, learner %d, fallback %d\n",
		s.Index.LeaderReads, s.Index.FollowerReads, s.Index.LearnerReads, s.Index.FallbackReads)
	writeHotDirs(w, "hot write dirs", s.Index.HotWriteDirs)
	if h := s.Index.Hotspot; h.Enabled {
		fmt.Fprintf(w, "hotspot: %d hot paths, %d promotions, %d demotions, %d hot reads, %d stale fallbacks, %d sheds\n",
			len(h.HotSet), h.Promotions, h.Demotions, h.HotReads, h.StaleFalls, h.Sheds)
		for _, p := range h.HotSet {
			fmt.Fprintf(w, "  hot %s\n", p)
		}
	}

	fmt.Fprintf(w, "\n== tafdb ==\n")
	fmt.Fprintf(w, "%-6s %10s %10s %10s %8s %10s\n", "shard", "rows", "reads", "pieces", "2pc", "ops/sec")
	for _, sl := range s.Shards {
		fmt.Fprintf(w, "%-6d %10d %10d %10d %8d %10.1f\n",
			sl.Shard, sl.Rows, sl.Reads, sl.TxnPieces, sl.TwoPC, sl.PerSecond)
	}
	if len(s.DBDirs) > 0 {
		fmt.Fprintf(w, "hot dirs (pid):")
		for _, it := range topN(s.DBDirs, 10) {
			fmt.Fprintf(w, " %d(%d)", it.Key, it.Count)
		}
		fmt.Fprintln(w)
	}

	if s.Migration.Epoch > 0 || s.Migration.Aborts > 0 {
		fmt.Fprintf(w, "migrations: %d done (%d rows), %d aborted, %d dirs off home, routing epoch %d\n",
			s.Migration.Migrations, s.Migration.Rows, s.Migration.Aborts,
			s.Migration.Overrides, s.Migration.Epoch)
	}

	fmt.Fprintf(w, "\n== slow ops ==\n")
	fmt.Fprintf(w, "%d sampled, %d captured\n", s.SlowOps.Sampled, s.SlowOps.Captured)
	for _, r := range s.SlowOps.Records {
		fmt.Fprintf(w, "%s %v (threshold %v, trips %d)\n%s",
			r.Op, r.Duration, r.Threshold, r.Trips, r.Tree)
	}
}

func writeHotDirs(w io.Writer, label string, items []heat.Item[string]) {
	if len(items) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", label)
	for _, it := range topN(items, 10) {
		fmt.Fprintf(w, "  %-40s %d (±%d)\n", it.Key, it.Count, it.Err)
	}
}

// WriteHeatMetrics appends the heat plane to a text /metrics exposition
// in the same "name value" shape as metrics.Registry.Write.
func (m *Mantle) WriteHeatMetrics(w io.Writer) error {
	s := m.Status()
	if _, err := fmt.Fprintf(w, "heat_proxy_ops_per_sec %.3f\n", s.Proxy.OpsPerSec); err != nil {
		return err
	}
	for _, it := range s.Proxy.HotDirs {
		fmt.Fprintf(w, "heat_proxy_dir{%s} %d\n", it.Key, it.Count)
	}
	for _, it := range s.Proxy.HotMisses {
		fmt.Fprintf(w, "heat_proxy_miss{%s} %d\n", it.Key, it.Count)
	}
	fmt.Fprintf(w, "heat_index_lookups_per_sec %.3f\n", s.Index.LookupsPerSec)
	fmt.Fprintf(w, "heat_index_proposes_per_sec %.3f\n", s.Index.ProposesPerSec)
	fmt.Fprintf(w, "heat_index_leader_reads %d\n", s.Index.LeaderReads)
	fmt.Fprintf(w, "heat_index_follower_reads %d\n", s.Index.FollowerReads)
	fmt.Fprintf(w, "heat_index_learner_reads %d\n", s.Index.LearnerReads)
	fmt.Fprintf(w, "heat_index_hot_reads %d\n", s.Index.Hotspot.HotReads)
	fmt.Fprintf(w, "heat_index_hot_paths %d\n", int64(len(s.Index.Hotspot.HotSet)))
	fmt.Fprintf(w, "heat_index_sheds %d\n", s.Index.Hotspot.Sheds)
	fmt.Fprintf(w, "heat_migrations %d\n", s.Migration.Migrations)
	fmt.Fprintf(w, "heat_migration_rows %d\n", s.Migration.Rows)
	fmt.Fprintf(w, "heat_routing_epoch %d\n", s.Migration.Epoch)
	for _, it := range s.Index.HotWriteDirs {
		fmt.Fprintf(w, "heat_index_write_dir{%s} %d\n", it.Key, it.Count)
	}
	for _, sl := range s.Shards {
		fmt.Fprintf(w, "heat_shard_%d_reads %d\n", sl.Shard, sl.Reads)
		fmt.Fprintf(w, "heat_shard_%d_pieces %d\n", sl.Shard, sl.TxnPieces)
		fmt.Fprintf(w, "heat_shard_%d_2pc %d\n", sl.Shard, sl.TwoPC)
		fmt.Fprintf(w, "heat_shard_%d_per_sec %.3f\n", sl.Shard, sl.PerSecond)
	}
	for _, it := range s.DBDirs {
		fmt.Fprintf(w, "heat_db_dir{%d} %d\n", it.Key, it.Count)
	}
	fmt.Fprintf(w, "heat_slowop_sampled %d\n", s.SlowOps.Sampled)
	_, err := fmt.Fprintf(w, "heat_slowop_captured %d\n", s.SlowOps.Captured)
	return err
}

// WriteHeatReport renders the full heat report (status text) — the
// mdtest -heat-report and experiments -heat-out surface.
func (m *Mantle) WriteHeatReport(w io.Writer) {
	m.WriteStatus(w)
}
