package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mantle/internal/types"
)

// model_test.go runs differential testing: long random operation
// sequences are applied both to Mantle and to a trivially-correct
// in-memory reference filesystem; after every operation the outcome
// (success/error class, stat results, listings) must match, and at the
// end the full namespaces must be identical.

// refFS is the reference model: a plain tree.
type refFS struct {
	root *refNode
}

type refNode struct {
	name     string
	isDir    bool
	size     int64
	children map[string]*refNode
}

func newRefFS() *refFS {
	return &refFS{root: &refNode{name: "/", isDir: true, children: map[string]*refNode{}}}
}

func (f *refFS) walk(path string) (*refNode, bool) {
	cur := f.root
	for _, c := range splitPath(path) {
		if !cur.isDir {
			return nil, false
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

func splitPath(p string) []string {
	var out []string
	for _, c := range strings.Split(p, "/") {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

func parentOf(p string) (string, string) {
	comps := splitPath(p)
	if len(comps) == 0 {
		return "/", ""
	}
	return "/" + strings.Join(comps[:len(comps)-1], "/"), comps[len(comps)-1]
}

func (f *refFS) mkdir(path string) error {
	dir, name := parentOf(path)
	p, ok := f.walk(dir)
	if !ok || !p.isDir {
		return types.ErrNotFound
	}
	if _, exists := p.children[name]; exists {
		return types.ErrExists
	}
	p.children[name] = &refNode{name: name, isDir: true, children: map[string]*refNode{}}
	return nil
}

func (f *refFS) create(path string, size int64) error {
	dir, name := parentOf(path)
	p, ok := f.walk(dir)
	if !ok || !p.isDir {
		return types.ErrNotFound
	}
	if _, exists := p.children[name]; exists {
		return types.ErrExists
	}
	p.children[name] = &refNode{name: name, size: size}
	return nil
}

func (f *refFS) remove(path string, wantDir bool) error {
	dir, name := parentOf(path)
	p, ok := f.walk(dir)
	if !ok || !p.isDir {
		return types.ErrNotFound
	}
	n, exists := p.children[name]
	if !exists {
		return types.ErrNotFound
	}
	if wantDir {
		if !n.isDir {
			return types.ErrNotFound
		}
		if len(n.children) > 0 {
			return types.ErrNotEmpty
		}
	} else if n.isDir {
		return types.ErrNotFound
	}
	delete(p.children, name)
	return nil
}

func (f *refFS) rename(src, dst string) error {
	sdir, sname := parentOf(src)
	sp, ok := f.walk(sdir)
	if !ok || !sp.isDir {
		return types.ErrNotFound
	}
	n, exists := sp.children[sname]
	if !exists || !n.isDir {
		return types.ErrNotFound
	}
	// Mantle's Figure 9 order: resolve the destination parent first
	// (PrepareRename resolves both paths), then run loop detection.
	ddir, dname := parentOf(dst)
	dp, ok := f.walk(ddir)
	if !ok || !dp.isDir {
		return types.ErrNotFound
	}
	// Loop: src must not be ancestor-or-equal of dst's parent.
	if ddir == src || strings.HasPrefix(ddir+"/", src+"/") {
		return types.ErrLoop
	}
	if _, exists := dp.children[dname]; exists {
		return types.ErrExists
	}
	delete(sp.children, sname)
	n.name = dname
	dp.children[dname] = n
	return nil
}

func (f *refFS) list(path string) ([]string, error) {
	n, ok := f.walk(path)
	if !ok || !n.isDir {
		return nil, types.ErrNotFound
	}
	var out []string
	for name, c := range n.children {
		kind := "f"
		if c.isDir {
			kind = "d"
		}
		out = append(out, kind+":"+name)
	}
	sort.Strings(out)
	return out, nil
}

// dump flattens the tree into sorted "path kind size" lines.
func (f *refFS) dump() []string {
	var out []string
	var rec func(prefix string, n *refNode)
	rec = func(prefix string, n *refNode) {
		for name, c := range n.children {
			p := prefix + "/" + name
			if c.isDir {
				out = append(out, p+" d")
				rec(p, c)
			} else {
				out = append(out, fmt.Sprintf("%s f %d", p, c.size))
			}
		}
	}
	rec("", f.root)
	sort.Strings(out)
	return out
}

// errClass buckets errors so Mantle and the model only need to agree on
// the class, not the exact message.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, types.ErrNotFound), errors.Is(err, types.ErrNotDir),
		errors.Is(err, types.ErrIsDir):
		return "notfound"
	case errors.Is(err, types.ErrExists):
		return "exists"
	case errors.Is(err, types.ErrNotEmpty):
		return "notempty"
	case errors.Is(err, types.ErrLoop):
		return "loop"
	default:
		return "other:" + err.Error()
	}
}

func TestDifferentialAgainstModel(t *testing.T) {
	m := newTestMantle(t, nil)
	ref := newRefFS()
	r := rand.New(rand.NewSource(20260704))

	// Path pool: names from a small alphabet at depths up to 5, so
	// collisions and structural reuse are frequent.
	names := []string{"a", "b", "c", "d"}
	randPath := func(maxDepth int) string {
		depth := 1 + r.Intn(maxDepth)
		var sb strings.Builder
		for i := 0; i < depth; i++ {
			sb.WriteString("/")
			sb.WriteString(names[r.Intn(len(names))])
		}
		return sb.String()
	}

	const steps = 4000
	for step := 0; step < steps; step++ {
		var gotErr, wantErr error
		var desc string
		switch r.Intn(8) {
		case 0: // mkdir
			p := randPath(5)
			desc = "mkdir " + p
			_, gotErr = m.Mkdir(op(m), p)
			wantErr = ref.mkdir(p)
		case 1: // create
			p := randPath(5)
			size := int64(r.Intn(1000))
			desc = "create " + p
			_, gotErr = m.Create(op(m), p, size)
			wantErr = ref.create(p, size)
		case 2: // delete object
			p := randPath(5)
			desc = "delete " + p
			_, gotErr = m.Delete(op(m), p)
			wantErr = ref.remove(p, false)
		case 3: // rmdir
			p := randPath(5)
			desc = "rmdir " + p
			_, gotErr = m.Rmdir(op(m), p)
			wantErr = ref.remove(p, true)
		case 4: // rename
			src, dst := randPath(4), randPath(4)
			if src == dst {
				continue
			}
			desc = "rename " + src + " -> " + dst
			_, gotErr = m.DirRename(op(m), src, dst)
			wantErr = ref.rename(src, dst)
		case 5: // objstat
			p := randPath(5)
			desc = "objstat " + p
			res, err := m.ObjStat(op(m), p)
			gotErr = err
			n, ok := ref.walk(p)
			if !ok || n.isDir {
				wantErr = types.ErrNotFound
			} else if err == nil && res.Entry.Attr.Size != n.size {
				t.Fatalf("step %d %s: size %d != model %d", step, desc, res.Entry.Attr.Size, n.size)
			}
		case 6: // dirstat link count
			p := randPath(4)
			desc = "dirstat " + p
			res, err := m.DirStat(op(m), p)
			gotErr = err
			n, ok := ref.walk(p)
			if !ok || !n.isDir {
				wantErr = types.ErrNotFound
			} else if err == nil {
				// Delta records may be un-compacted; DirStat merges them,
				// so the count must be exact.
				if res.Entry.Attr.LinkCount != int64(len(n.children)) {
					t.Fatalf("step %d %s: links %d != model %d",
						step, desc, res.Entry.Attr.LinkCount, len(n.children))
				}
			}
		case 7: // readdir
			p := randPath(4)
			desc = "readdir " + p
			_, entries, err := m.ReadDir(op(m), p)
			gotErr = err
			n, ok := ref.walk(p)
			if !ok || !n.isDir {
				wantErr = types.ErrNotFound
			} else if err == nil {
				var got []string
				for _, e := range entries {
					kind := "f"
					if e.IsDir() {
						kind = "d"
					}
					got = append(got, kind+":"+e.Name)
				}
				sort.Strings(got)
				want, _ := ref.list(p)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("step %d %s:\n got %v\nwant %v", step, desc, got, want)
				}
			}
		}
		if errClass(gotErr) != errClass(wantErr) {
			t.Fatalf("step %d %s: mantle=%v model=%v", step, desc, gotErr, wantErr)
		}
	}

	// Final deep comparison: walk the model and verify every entry
	// resolves identically through Mantle; then verify Mantle holds no
	// extras (per-directory listings match exactly).
	var verifyDir func(path string, n *refNode)
	verifyDir = func(path string, n *refNode) {
		_, entries, err := m.ReadDir(op(m), path)
		if err != nil {
			t.Fatalf("final readdir %s: %v", path, err)
		}
		if len(entries) != len(n.children) {
			t.Fatalf("final %s: %d entries vs model %d", path, len(entries), len(n.children))
		}
		for _, e := range entries {
			c, ok := n.children[e.Name]
			if !ok {
				t.Fatalf("final %s: extra entry %s", path, e.Name)
			}
			if c.isDir != e.IsDir() {
				t.Fatalf("final %s/%s: kind mismatch", path, e.Name)
			}
			if c.isDir {
				sub := path + "/" + e.Name
				if path == "/" {
					sub = "/" + e.Name
				}
				verifyDir(sub, c)
			} else if e.Attr.Size != c.size {
				t.Fatalf("final %s/%s: size %d vs %d", path, e.Name, e.Attr.Size, c.size)
			}
		}
	}
	verifyDir("/", ref.root)
	t.Logf("model dump: %d entries after %d steps", len(ref.dump()), steps)
}
