package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/indexnode"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// TestChaosLeaderKillsUnderLoad runs a mixed metadata workload while
// repeatedly crash-stopping the IndexNode leader. Ops may slow down
// across elections but must not fail, and the namespace must stay
// consistent (verified structurally at the end; fsck runs the same
// checks in its own package to avoid an import cycle).
func TestChaosLeaderKillsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	cfg := func(c *Config) {
		// 5 voters so two kills still leave a quorum. The full
		// write-batching stack (raft batching + pipelining, WAL group
		// commit, batched 2PC) stays on while leaders die under it.
		c.Index = indexnode.Config{
			Voters: 5, K: 2, CacheEnabled: true, BatchEnabled: true,
			Pipeline: true, FsyncCost: 50 * time.Microsecond,
			FollowerRead:    true,
			ElectionTimeout: 300 * time.Millisecond,
		}
		c.TafDB = tafdb.Config{
			Shards: 4, Delta: tafdb.DeltaAuto,
			WALSyncCost: 50 * time.Microsecond, Batch2PC: true,
		}
	}
	m := newTestMantle(t, cfg)
	if _, err := m.Mkdir(op(m), "/chaos"); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var stop atomic.Bool
	var opsDone atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := fmt.Sprintf("/chaos/w%d", w)
			if _, err := m.Mkdir(op(m), base); err != nil {
				errCh <- err
				return
			}
			for i := 0; !stop.Load(); i++ {
				d := fmt.Sprintf("%s/d%d", base, i)
				if _, err := m.Mkdir(op(m), d); err != nil {
					errCh <- fmt.Errorf("mkdir %s: %w", d, err)
					return
				}
				if _, err := m.Create(op(m), d+"/o", 1); err != nil {
					errCh <- fmt.Errorf("create: %w", err)
					return
				}
				if _, err := m.ObjStat(op(m), d+"/o"); err != nil {
					errCh <- fmt.Errorf("stat: %w", err)
					return
				}
				if _, err := m.DirRename(op(m), d, fmt.Sprintf("%s/r%d", base, i)); err != nil {
					errCh <- fmt.Errorf("rename: %w", err)
					return
				}
				opsDone.Add(4)
			}
		}(w)
	}

	// Kill the leader twice while the workload runs, waiting for each
	// re-election to finish first.
	for kill := 0; kill < 2; kill++ {
		time.Sleep(300 * time.Millisecond)
		killed := false
		for attempt := 0; attempt < 400; attempt++ {
			if m.Index().KillLeader() {
				killed = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !killed {
			t.Error("no leader elected to kill")
		}
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if opsDone.Load() < 4*workers {
		t.Fatalf("too few ops completed: %d", opsDone.Load())
	}

	// Structural verification: everything each worker renamed resolves,
	// with its object, through the surviving replicas.
	for w := 0; w < workers; w++ {
		base := fmt.Sprintf("/chaos/w%d", w)
		_, entries, err := m.ReadDir(op(m), base)
		if err != nil {
			t.Fatalf("readdir %s: %v", base, err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if _, err := m.ObjStat(op(m), fmt.Sprintf("%s/%s/o", base, e.Name)); err != nil {
				t.Fatalf("object under %s/%s lost: %v", base, e.Name, err)
			}
		}
		ds, err := m.DirStat(op(m), base)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Entry.Attr.LinkCount != int64(len(entries)) {
			t.Fatalf("%s links=%d children=%d", base, ds.Entry.Attr.LinkCount, len(entries))
		}
	}
	t.Logf("chaos run: %d ops across 2 leader kills", opsDone.Load())
}

// TestTafDBShardCrashDuringReads verifies reads fail cleanly while a
// shard is down and succeed after recovery.
func TestTafDBShardCrashDuringReads(t *testing.T) {
	m := newTestMantle(t, func(c *Config) {
		c.TafDB = tafdb.Config{Shards: 4, WALSyncCost: time.Microsecond}
	})
	if _, err := m.Mkdir(op(m), "/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := m.Create(op(m), fmt.Sprintf("/d/o%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Crash every shard: all object stats must now fail with NotFound
	// (rows gone), none should panic or hang.
	for i := 0; i < 4; i++ {
		m.DB().CrashShard(i)
	}
	if _, err := m.ObjStat(op(m), "/d/o0"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("stat on crashed shard: %v", err)
	}
	for i := 0; i < 4; i++ {
		m.DB().RecoverShard(i)
	}
	for i := 0; i < 20; i++ {
		if _, err := m.ObjStat(op(m), fmt.Sprintf("/d/o%d", i)); err != nil {
			t.Fatalf("stat after recovery: %v", err)
		}
	}
}
