package core

import (
	"bytes"
	"errors"
	"regexp"
	"testing"
	"time"

	"mantle/internal/faults"
	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/tafdb"
	"mantle/internal/types"
)

// TestPartitionDegradedReadsAndFailFastWrites is the end-to-end
// fault-injection acceptance test: with every IndexNode replica
// partitioned from every other under a fixed injector seed,
//
//   - writes fail fast with a typed ErrUnavailable instead of hanging,
//   - lookups of existing paths keep serving via degraded (stale-local)
//     fallback reads,
//   - after the partition heals, a fresh write round-trips and the
//     namespace passes fsck-style structural checks.
func TestPartitionDegradedReadsAndFailFastWrites(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	inj := faults.New(1337)
	inj.Attach(fabric)
	// The full write-batching stack stays on during the fault run: the
	// acceptance bar is that batching (raft log batching + pipelined
	// replication, WAL group commit, batched 2PC) does not change fault
	// semantics.
	cfg := Config{
		Fabric: fabric,
		TafDB: tafdb.Config{
			Shards: 4, Delta: tafdb.DeltaAuto,
			WALSyncCost: 50 * time.Microsecond, Batch2PC: true,
		},
		Index: indexnode.Config{
			Voters:            3,
			K:                 2,
			CacheEnabled:      true,
			BatchEnabled:      true,
			Pipeline:          true,
			FsyncCost:         50 * time.Microsecond,
			FollowerRead:      true,
			DegradedReads:     true,
			ElectionTimeout:   50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			RetryWindow:       400 * time.Millisecond,
			CallTimeout:       100 * time.Millisecond,
		},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// NewGroup installed the injector's Down hook on the replica nodes it
	// created; re-assert via Attach for the nodes that now exist.
	inj.Attach(fabric, m.Index().Nodes()...)

	// Healthy phase: build a small tree.
	if _, err := m.Mkdir(op(m), "/srv"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mkdir(op(m), "/srv/logs"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(op(m), "/srv/logs/app.log", 512); err != nil {
		t.Fatal(err)
	}

	// Cut every replica off from every other: no quorum anywhere. The
	// proxy ("proxy" source) still reaches each replica, so reads can
	// degrade while replication is impossible.
	members := m.Index().MemberIDs()
	if len(members) != 3 {
		t.Fatalf("members = %v", members)
	}
	inj.SplitAll(members)
	// Wait out check-quorum: the leader must step down rather than keep
	// serving writes it can no longer commit.
	deadline := time.Now().Add(2 * time.Second)
	for m.Index().Leader() != nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Index().Leader() != nil {
		t.Fatalf("a leader survives total partition (injector seed %d)", inj.Seed())
	}

	// Writes fail fast with the typed unavailability error.
	start := time.Now()
	_, werr := m.Mkdir(op(m), "/srv/tmp")
	elapsed := time.Since(start)
	if !errors.Is(werr, types.ErrUnavailable) {
		t.Fatalf("partitioned mkdir err = %v (injector seed %d)", werr, inj.Seed())
	}
	if elapsed > 5*time.Second {
		t.Fatalf("partitioned mkdir hung %v (injector seed %d)", elapsed, inj.Seed())
	}

	// Reads of pre-partition state keep serving, via degraded fallback.
	for i := 0; i < 3; i++ {
		res, err := m.Lookup(op(m), "/srv/logs")
		if err != nil {
			t.Fatalf("degraded lookup %d failed: %v (injector seed %d)", i, err, inj.Seed())
		}
		if res.Entry.Kind != types.KindDir {
			t.Fatalf("degraded lookup entry = %+v", res.Entry)
		}
	}
	if m.Index().FallbackReads() == 0 {
		t.Fatalf("no fallback reads recorded during partition (injector seed %d)", inj.Seed())
	}

	// Heal. The group re-elects and a fresh write round-trips.
	inj.HealAll()
	var healErr error
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, healErr = m.Mkdir(op(m), "/srv/tmp"); healErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if healErr != nil {
		t.Fatalf("post-heal mkdir failed: %v (injector seed %d)", healErr, inj.Seed())
	}
	if _, err := m.Create(op(m), "/srv/tmp/state.bin", 64); err != nil {
		t.Fatalf("post-heal create failed: %v (injector seed %d)", err, inj.Seed())
	}

	// fsck-style structural checks: every directory resolves, parent
	// links agree, and directory link counts match their listings.
	type want struct {
		path string
		objs int
	}
	for _, w := range []want{{"/srv", 0}, {"/srv/logs", 1}, {"/srv/tmp", 1}} {
		lres, err := m.Lookup(op(m), w.path)
		if err != nil {
			t.Fatalf("fsck lookup %s: %v", w.path, err)
		}
		ds, err := m.DirStat(op(m), w.path)
		if err != nil {
			t.Fatalf("fsck dirstat %s: %v", w.path, err)
		}
		if ds.Entry.ID != lres.Entry.ID {
			t.Fatalf("fsck %s: lookup id %d != dirstat id %d", w.path, lres.Entry.ID, ds.Entry.ID)
		}
		_, entries, err := m.ReadDir(op(m), w.path)
		if err != nil {
			t.Fatalf("fsck readdir %s: %v", w.path, err)
		}
		objs := 0
		for _, e := range entries {
			if e.Kind == types.KindObject {
				objs++
			}
			if e.Kind == types.KindDir && e.Pid != lres.Entry.ID {
				t.Fatalf("fsck %s: child %s pid %d != dir id %d", w.path, e.Name, e.Pid, lres.Entry.ID)
			}
		}
		if objs != w.objs {
			t.Fatalf("fsck %s: %d objects, want %d", w.path, objs, w.objs)
		}
		if int(ds.Entry.Attr.LinkCount) != len(entries) {
			t.Fatalf("fsck %s: link count %d != %d children", w.path, ds.Entry.Attr.LinkCount, len(entries))
		}
	}

	// The fault metrics surfaced something: drops happened and the
	// exposition-time gauges are wired to live values.
	if inj.Stats().Dropped == 0 {
		t.Fatalf("injector recorded no drops (seed %d)", inj.Seed())
	}
	var buf bytes.Buffer
	if err := m.Metrics().Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, re := range []string{
		`(?m)^fault_dropped [1-9]`,
		`(?m)^indexnode_fallback_reads [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(buf.String()) {
			t.Fatalf("metrics missing %s:\n%s", re, buf.String())
		}
	}
}

// TestPartitionedWritesDoNotDuplicateAfterHeal: a write that fails with
// ErrUnavailable during the partition and is retried after the heal must
// apply exactly once — the proposal path must not leave a zombie entry
// that re-applies post-heal and double-creates the directory.
func TestPartitionedWritesDoNotDuplicateAfterHeal(t *testing.T) {
	fabric := netsim.NewLocalFabric()
	inj := faults.New(7)
	inj.Attach(fabric)
	m, err := New(Config{
		Fabric: fabric,
		TafDB: tafdb.Config{
			Shards: 2, Delta: tafdb.DeltaAuto,
			WALSyncCost: 50 * time.Microsecond, Batch2PC: true,
		},
		Index: indexnode.Config{
			Voters:            3,
			CacheEnabled:      true,
			BatchEnabled:      true,
			Pipeline:          true,
			FsyncCost:         50 * time.Microsecond,
			ElectionTimeout:   50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			RetryWindow:       300 * time.Millisecond,
			CallTimeout:       100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	inj.Attach(fabric, m.Index().Nodes()...)

	if _, err := m.Mkdir(op(m), "/a"); err != nil {
		t.Fatal(err)
	}
	inj.SplitAll(m.Index().MemberIDs())
	if _, err := m.Mkdir(op(m), "/a/b"); !errors.Is(err, types.ErrUnavailable) {
		t.Fatalf("partitioned mkdir err = %v (injector seed %d)", err, inj.Seed())
	}
	inj.HealAll()

	// Retry until the group is writable again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = m.Mkdir(op(m), "/a/b"); err == nil || errors.Is(err, types.ErrExists) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-heal mkdir never succeeded: %v (injector seed %d)", err, inj.Seed())
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, entries, err := m.ReadDir(op(m), "/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "b" {
		t.Fatalf("/a = %v after heal (injector seed %d)", entries, inj.Seed())
	}
}
