package core

import (
	"fmt"
	"sync"
	"time"

	"mantle/internal/indexnode"
	"mantle/internal/netsim"
	"mantle/internal/repl"
	"mantle/internal/storage"
	"mantle/internal/types"
)

// SitesConfig parameterises a two-site deployment: a primary serving
// all traffic and an asynchronously replicated secondary standing by
// for disaster recovery.
type SitesConfig struct {
	// Site is the per-site Mantle configuration. Each site gets its own
	// fabric (shard/replica node names repeat across sites), so Fabric
	// and the nested TafDB/Index fabrics are overridden.
	Site Config
	// WANRTT is the inter-site round trip charged per shipped batch.
	WANRTT time.Duration
	// LinkCost is the CPU service time per applied batch on the
	// secondary's replication endpoint.
	LinkCost time.Duration
	// LinkInterval is the replication pump period (default 500µs).
	LinkInterval time.Duration
	// LinkBatchMax bounds records per shipped batch (default 256).
	LinkBatchMax int
}

// Sites is a primary/secondary pair joined by an asynchronous
// replication link. The primary's every committed mutation batch enters
// a per-shard HLC-stamped oplog (repl.Source, wired as the primary
// TafDB's ReplSink); a repl.Link ships the backlog across the WAN
// fabric to the secondary's repl.Applier, which applies it in commit
// order with cross-shard transactions grouped atomically and conflicts
// resolved last-writer-wins.
type Sites struct {
	// Primary serves all client traffic until failover.
	Primary *Mantle
	// Secondary is the passive replica; promote it with Failover.
	Secondary *Mantle
	// WAN is the inter-site fabric — install fault injectors here to
	// partition or blackhole the replication stream.
	WAN *netsim.Fabric

	src          *repl.Source
	app          *repl.Applier
	replEndpoint *netsim.Node
	linkCfg      repl.LinkConfig
	shards       int

	mu       sync.Mutex
	link     *repl.Link
	promoted bool
}

// Endpoint names on the WAN fabric; chaos tests target these.
const (
	PrimaryReplName   = "site-a-repl"
	SecondaryReplName = "site-b-repl"
)

// NewSites builds both sites and the replication plane. The link is not
// started: call Bootstrap (for a secondary joining an already-populated
// primary) and/or StartReplication.
func NewSites(cfg SitesConfig) (*Sites, error) {
	if cfg.Site.TafDB.Shards <= 0 {
		// Both sites must agree on the shard count (oplog records carry
		// shard indexes), so pin the default here rather than letting
		// each DB resolve it independently.
		cfg.Site.TafDB.Shards = 4
	}
	s := &Sites{shards: cfg.Site.TafDB.Shards}

	priCfg := cfg.Site
	priCfg.Fabric = netsim.NewFabric(netsim.Config{})
	s.src = repl.NewSource(1, s.shards)
	priCfg.TafDB.Repl = s.src
	primary, err := New(priCfg)
	if err != nil {
		return nil, err
	}
	s.Primary = primary

	secCfg := cfg.Site
	secCfg.Fabric = netsim.NewFabric(netsim.Config{})
	secCfg.TafDB.Repl = nil
	secondary, err := New(secCfg)
	if err != nil {
		primary.Stop()
		return nil, err
	}
	s.Secondary = secondary

	s.app = repl.NewApplier(2, s.shards, func(shard int, muts []storage.Mutation) error {
		return secondary.DB().ApplyToShard(shard, muts)
	})
	s.WAN = netsim.NewFabric(netsim.Config{RTT: cfg.WANRTT})
	s.replEndpoint = netsim.NewNode(SecondaryReplName, 0)
	s.linkCfg = repl.LinkConfig{
		Source:   s.src,
		Offer:    s.app.Offer,
		Fabric:   s.WAN,
		Node:     s.replEndpoint,
		SrcName:  PrimaryReplName,
		Cost:     cfg.LinkCost,
		Interval: cfg.LinkInterval,
		BatchMax: cfg.LinkBatchMax,
	}
	s.registerMetrics()
	return s, nil
}

// Source exposes the primary-side oplog feed (tests, fsck).
func (s *Sites) Source() *repl.Source { return s.src }

// Applier exposes the secondary-side apply state (tests, fsck).
func (s *Sites) Applier() *repl.Applier { return s.app }

// Link returns the running replication link (nil when stopped).
func (s *Sites) Link() *repl.Link {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.link
}

// StartReplication starts (or restarts) the link from the applier's
// current per-shard watermarks. No-op while a link is already running
// or after promotion.
func (s *Sites) StartReplication() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.link != nil || s.promoted {
		return
	}
	cfg := s.linkCfg
	cfg.Cursor = s.app.AppliedSeqs()
	s.link = repl.StartLink(cfg)
}

// StopReplication stops the link (it can be restarted; the applier's
// watermarks are preserved).
func (s *Sites) StopReplication() {
	s.mu.Lock()
	link := s.link
	s.link = nil
	s.mu.Unlock()
	if link != nil {
		link.Stop()
	}
}

// Bootstrap loads the secondary from a consistent snapshot of every
// primary shard — the join path for a new or GC-gapped secondary whose
// cursor predates the oplog's trim horizon. Each shard's cut covers a
// commit sequence; rows are bulk-applied to the secondary in chunks and
// the applier's cursor advances past the cut, so a subsequently started
// link replays only the suffix. The secondary's index is rebuilt from
// the loaded rows. Returns rows loaded.
func (s *Sites) Bootstrap() (int, error) {
	if s.Link() != nil {
		return 0, fmt.Errorf("sites: stop replication before bootstrap")
	}
	const chunk = 1024
	total := 0
	for si := 0; si < s.shards; si++ {
		rows, seq := s.Primary.DB().SnapshotShard(si)
		muts := make([]storage.Mutation, 0, chunk)
		flush := func() error {
			if len(muts) == 0 {
				return nil
			}
			err := s.Secondary.DB().ApplyToShard(si, muts)
			muts = muts[:0]
			return err
		}
		for _, r := range rows {
			muts = append(muts, storage.Mutation{
				Kind:  storage.MutPut,
				Key:   types.Key{Pid: r.Entry.Pid, Name: r.Entry.Name},
				Entry: r.Entry,
			})
			if len(muts) == chunk {
				if err := flush(); err != nil {
					return total, err
				}
			}
		}
		if err := flush(); err != nil {
			return total, err
		}
		s.app.SetCursor(si, seq)
		total += len(rows)
	}
	s.Secondary.RebuildIndex()
	return total, nil
}

// GCOplog trims the primary's oplogs up to the link's acknowledged
// watermark, returning records dropped. A stopped link means no safe
// horizon, so nothing is trimmed.
func (s *Sites) GCOplog() int {
	link := s.Link()
	if link == nil {
		return 0
	}
	return s.src.GC(link.Acked())
}

// FailoverReport summarises a promotion.
type FailoverReport struct {
	// Discarded counts buffered-but-unappliable records dropped at the
	// cut (incomplete cross-shard transactions and records sequenced
	// behind them) — the replicated loss window beyond the watermark.
	Discarded int `json:"discarded"`
	// IndexEntries is the directory count in the rebuilt index.
	IndexEntries int `json:"index_entries"`
	// Watermarks is the applier state at the cut.
	Watermarks repl.Watermarks `json:"watermarks"`
}

// Failover promotes the secondary: the link stops, the applier is
// finalized (buffered records that never became applicable are
// discarded, freezing a transaction-atomic prefix of each shard's
// stream), and the secondary's index is rebuilt from its TafDB rows so
// lookups reflect the replicated namespace. The secondary then serves
// reads and writes as an ordinary Mantle. Idempotent.
func (s *Sites) Failover() FailoverReport {
	s.StopReplication()
	s.mu.Lock()
	already := s.promoted
	s.promoted = true
	s.mu.Unlock()
	discarded := s.app.Finalize()
	rep := FailoverReport{
		Discarded:  discarded,
		Watermarks: s.app.Watermarks(),
	}
	if !already {
		rep.IndexEntries = s.Secondary.RebuildIndex()
	}
	return rep
}

// Promoted reports whether Failover has run.
func (s *Sites) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Stop tears down the link and both sites.
func (s *Sites) Stop() {
	s.StopReplication()
	s.Primary.Stop()
	s.Secondary.Stop()
}

// registerMetrics exports the replication plane on both sites'
// registries: the primary carries the source/link view (oplog size,
// shipped counts, lag), the secondary the applier view (applied
// watermarks, conflicts, discards).
func (s *Sites) registerMetrics() {
	pm := s.Primary.Metrics()
	pm.Gauge("repl_oplog_records", func() int64 { return int64(s.src.Stats().Records) })
	pm.Gauge("repl_oplog_bytes", func() int64 { return s.src.Stats().Bytes })
	pm.Gauge("repl_oplog_trimmed", func() int64 { return s.src.Stats().Trimmed })
	pm.Gauge("repl_shipped", func() int64 { return s.linkStats().Shipped })
	pm.Gauge("repl_shipped_bytes", func() int64 { return s.linkStats().ShippedBytes })
	pm.Gauge("repl_ship_failures", func() int64 { return s.linkStats().Failures })
	pm.Gauge("repl_lag_entries", func() int64 { return s.linkStats().LagEntries })
	pm.Gauge("repl_lag_bytes", func() int64 { return s.linkStats().LagBytes })

	sm := s.Secondary.Metrics()
	sm.Gauge("repl_applied", func() int64 { return s.app.Watermarks().Applied })
	sm.Gauge("repl_applied_muts", func() int64 { return s.app.Watermarks().Muts })
	sm.Gauge("repl_conflicts", func() int64 { return s.app.Watermarks().Conflicts })
	sm.Gauge("repl_pending_txns", func() int64 { return int64(s.app.Watermarks().Pending) })
	sm.Gauge("repl_discarded", func() int64 { return s.app.Watermarks().Discarded })
	sm.Gauge("repl_applied_hlc_wall", func() int64 { return s.app.Watermarks().AppliedHLC.Wall })
}

// linkStats snapshots the link accounting, zero when stopped.
func (s *Sites) linkStats() repl.LinkStats {
	if l := s.Link(); l != nil {
		return l.Stats()
	}
	return repl.LinkStats{}
}

// ReplStatus is the replication section of /status.
type ReplStatus struct {
	Role       string           `json:"role"` // primary | secondary | promoted
	Lag        repl.LinkStats   `json:"lag"`
	Oplog      repl.SourceStats `json:"oplog"`
	Watermarks repl.Watermarks  `json:"watermarks"`
}

// ReplStatus snapshots the replication plane for /status.
func (s *Sites) ReplStatus(role string) ReplStatus {
	return ReplStatus{
		Role:       role,
		Lag:        s.linkStats(),
		Oplog:      s.src.Stats(),
		Watermarks: s.app.Watermarks(),
	}
}

// RebuildIndex reconstructs the IndexNode group's directory table from
// TafDB's directory access rows, reusing the raft snapshot machinery: a
// scratch replica bulk-loads the entries, its Snapshot bytes Restore
// onto every replica in the group (dropping caches and any divergent
// state). Used by admin rebuild-index and by failover promotion.
// Returns directory entries restored.
func (m *Mantle) RebuildIndex() int {
	var entries []types.AccessEntry
	var maxID types.InodeID
	m.db.ForEachRow(func(row storage.Row) {
		e := row.Entry
		if e.ID > maxID {
			maxID = e.ID
		}
		if e.Pid > maxID {
			maxID = e.Pid
		}
		if e.Kind != types.KindDir || (len(e.Name) > 0 && e.Name[0] == 0) {
			return
		}
		entries = append(entries, types.AccessEntry{
			Pid: e.Pid, Name: e.Name, ID: e.ID, Perm: e.Perm,
		})
	})
	// Rows that arrived by replication or bulk load carry IDs this
	// site's allocator never issued; advance it past them so
	// post-promotion writes cannot collide.
	m.db.ReserveIDs(maxID)
	tmp := indexnode.NewReplica(3, false)
	defer tmp.Close()
	tmp.BulkAdd(entries)
	snap := tmp.Snapshot()
	for _, r := range m.idx.Replicas() {
		r.Restore(snap)
	}
	return len(entries)
}
