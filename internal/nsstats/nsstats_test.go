package nsstats

import (
	"strings"
	"testing"

	"mantle/internal/workload"
)

func TestAnalyze(t *testing.T) {
	ns := workload.Build(workload.TreeSpec{
		Clients: 8, Depth: 10, ObjectsPerClient: 100,
		SmallRatio: 0.6, SmallSize: 64 << 10, LargeSize: 4 << 20, Seed: 7,
	})
	st := Analyze(ns)
	if st.Objects != 800 {
		t.Fatalf("objects = %d", st.Objects)
	}
	if st.Entries != st.Dirs+st.Objects {
		t.Fatal("entry accounting")
	}
	if st.DirRatio+st.ObjRatio < 0.999 || st.DirRatio+st.ObjRatio > 1.001 {
		t.Fatalf("ratios = %f + %f", st.DirRatio, st.ObjRatio)
	}
	// All pre-populated objects live in depth-10 workdirs => depth 11.
	if st.AvgDepth < 10.9 || st.AvgDepth > 11.1 {
		t.Fatalf("avg depth = %f", st.AvgDepth)
	}
	if st.MedianDepth != 11 || st.MaxDepth != 11 {
		t.Fatalf("median=%d max=%d", st.MedianDepth, st.MaxDepth)
	}
	// Small ratio tracks the spec within sampling noise.
	if st.SmallRatio < 0.5 || st.SmallRatio > 0.7 {
		t.Fatalf("small ratio = %f", st.SmallRatio)
	}
	if !strings.Contains(st.String(), "avgDepth") {
		t.Fatal("String() missing fields")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	ns := workload.Build(workload.TreeSpec{Clients: 1, Depth: 3, ObjectsPerClient: 0})
	st := Analyze(ns)
	if st.Objects != 0 || st.AvgDepth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
