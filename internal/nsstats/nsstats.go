// Package nsstats characterises generated namespaces the way §3 of the
// paper characterises Baidu's production namespaces (Figure 3, Table 3):
// entry counts, directory ratio, small-object ratio, and the
// distribution of access-path depths.
package nsstats

import (
	"fmt"
	"sort"

	"mantle/internal/pathutil"
	"mantle/internal/types"
	"mantle/internal/workload"
)

// Stats summarises one namespace.
type Stats struct {
	Entries     int
	Dirs        int
	Objects     int
	DirRatio    float64
	ObjRatio    float64
	SmallRatio  float64 // objects <= SmallThreshold
	AvgDepth    float64 // mean object-path depth
	MedianDepth int
	MaxDepth    int
	DepthHist   map[int]int
}

// SmallThreshold matches the paper's 512 KB small-object cutoff.
const SmallThreshold = 512 << 10

// Analyze computes Stats for a generated namespace. Object path depth is
// the directory depth of the object's parent plus one, matching how the
// paper reports access depths.
func Analyze(ns *workload.Namespace) Stats {
	st := Stats{DepthHist: map[int]int{}}
	st.Dirs = len(ns.Dirs)
	st.Objects = len(ns.Objects)
	st.Entries = st.Dirs + st.Objects

	depthOfDir := make(map[types.InodeID]int, len(ns.Dirs))
	depthOfDir[types.RootID] = 0
	for _, d := range ns.Dirs {
		depthOfDir[d.ID] = pathutil.Depth(d.Path)
	}
	small := 0
	var depthSum int
	var depths []int
	for _, o := range ns.Objects {
		if o.Size <= SmallThreshold {
			small++
		}
		d := depthOfDir[o.Pid] + 1
		st.DepthHist[d]++
		depthSum += d
		depths = append(depths, d)
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	if st.Entries > 0 {
		st.DirRatio = float64(st.Dirs) / float64(st.Entries)
		st.ObjRatio = float64(st.Objects) / float64(st.Entries)
	}
	if st.Objects > 0 {
		st.SmallRatio = float64(small) / float64(st.Objects)
		st.AvgDepth = float64(depthSum) / float64(st.Objects)
		sort.Ints(depths)
		st.MedianDepth = depths[len(depths)/2]
	}
	return st
}

// String renders the stats as a Figure 3-style summary line.
func (s Stats) String() string {
	return fmt.Sprintf("entries=%d dirs=%.1f%% objects=%.1f%% small=%.1f%% avgDepth=%.1f medianDepth=%d maxDepth=%d",
		s.Entries, s.DirRatio*100, s.ObjRatio*100, s.SmallRatio*100, s.AvgDepth, s.MedianDepth, s.MaxDepth)
}
