package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name returns the same counter.
	if r.Counter("ops") != c {
		t.Fatal("counter identity lost")
	}
	r.Gauge("live", func() int64 { return 42 })
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ops 5", "live 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLatency(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("lookup")
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	count, mean, max := l.Snapshot()
	if count != 2 || mean != 20*time.Millisecond || max != 30*time.Millisecond {
		t.Fatalf("snapshot = %d %v %v", count, mean, max)
	}
	var buf bytes.Buffer
	_ = r.Write(&buf)
	for _, want := range []string{"lookup_count 2", "lookup_mean_us 20000", "lookup_max_us 30000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in %s", want, buf.String())
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Latency("l").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	count, _, max := r.Latency("l").Snapshot()
	if count != 8000 || max != 999*time.Microsecond {
		t.Fatalf("latency = %d %v", count, max)
	}
}

func TestWriteSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	var buf bytes.Buffer
	_ = r.Write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "a 1" || lines[1] != "b 1" {
		t.Fatalf("lines = %v", lines)
	}
}
