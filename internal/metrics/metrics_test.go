package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name returns the same counter.
	if r.Counter("ops") != c {
		t.Fatal("counter identity lost")
	}
	r.Gauge("live", func() int64 { return 42 })
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ops 5", "live 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLatency(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("lookup")
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	count, mean, max := l.Snapshot()
	if count != 2 || mean != 20*time.Millisecond || max != 30*time.Millisecond {
		t.Fatalf("snapshot = %d %v %v", count, mean, max)
	}
	var buf bytes.Buffer
	_ = r.Write(&buf)
	for _, want := range []string{"lookup_count 2", "lookup_mean_us 20000", "lookup_max_us 30000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in %s", want, buf.String())
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Latency("l").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	count, _, max := r.Latency("l").Snapshot()
	if count != 8000 || max != 999*time.Microsecond {
		t.Fatalf("latency = %d %v", count, max)
	}
}

func TestWriteSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	var buf bytes.Buffer
	_ = r.Write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "a 1" || lines[1] != "b 1" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestBucketBoundaries(t *testing.T) {
	// Bounds are geometric: ratio 2^(1/4), anchored at 1µs, with every
	// 4th bucket landing on an exact power-of-two microsecond count.
	if got := BucketBound(0); got != time.Microsecond {
		t.Fatalf("bound(0) = %v, want 1µs", got)
	}
	for i := 0; i+4 < NumBuckets-1; i += 4 {
		want := time.Microsecond << uint(i/4+1)
		got := BucketBound(i + 4)
		if diff := got - want; diff < -time.Duration(i) || diff > time.Duration(i) {
			t.Fatalf("bound(%d) = %v, want %v (±%dns drift)", i+4, got, want, i)
		}
	}
	// Samples land in the right bucket: at a bound → that bucket; just
	// above → the next one.
	var l Latency
	l.Observe(BucketBound(8))
	l.Observe(BucketBound(8) + 1)
	l.Observe(0) // underflow bucket
	b := l.Buckets()
	if b[8] != 1 || b[9] != 1 || b[0] != 1 {
		t.Fatalf("buckets 0/8/9 = %d/%d/%d, want 1/1/1", b[0], b[8], b[9])
	}
	// Overflow: beyond the last finite bound lands in the final bucket.
	var o Latency
	o.Observe(BucketBound(NumBuckets-2) + time.Hour)
	if o.Buckets()[NumBuckets-1] != 1 {
		t.Fatal("overflow sample not in final bucket")
	}
}

func TestQuantileErrorBounds(t *testing.T) {
	// A geometric histogram with ratio r estimates any quantile within
	// a factor of r of the true sample. r = 2^(1/4) ≈ 1.19, so demand
	// ≤ 19% relative error (plus clamping makes p0/p100 exact).
	var l Latency
	samples := make([]time.Duration, 0, 10000)
	for i := 1; i <= 10000; i++ {
		d := time.Duration(i) * 37 * time.Microsecond // 37µs .. 370ms
		samples = append(samples, d)
		l.Observe(d)
	}
	for _, q := range []float64{0, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1} {
		idx := int(q * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		truth := samples[idx]
		got := l.Quantile(q)
		relErr := float64(got-truth) / float64(truth)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.19 {
			t.Fatalf("q=%v: got %v, truth %v, rel err %.3f > 0.19", q, got, truth, relErr)
		}
	}
	if l.Quantile(0) != samples[0] || l.Quantile(1) != samples[len(samples)-1] {
		t.Fatalf("extremes not exact: p0=%v p100=%v", l.Quantile(0), l.Quantile(1))
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var l Latency
	if l.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	l.Observe(5 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := l.Quantile(q); got != 5*time.Millisecond {
			t.Fatalf("single-sample q=%v = %v", q, got)
		}
	}
}

func TestConcurrentObserveAndQuantile(t *testing.T) {
	// Observe and Quantile race freely (run under -race); totals must
	// still balance afterwards.
	var l Latency
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Observe(time.Duration(g*2000+i) * time.Microsecond)
				if i%512 == 0 {
					_ = l.Quantile(0.99)
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Count() != 16000 {
		t.Fatalf("count = %d", l.Count())
	}
	var sum int64
	for _, n := range l.Buckets() {
		sum += n
	}
	if sum != 16000 {
		t.Fatalf("bucket sum = %d", sum)
	}
	if l.Max() != 15999*time.Microsecond || l.Min() != 0 {
		t.Fatalf("min/max = %v/%v", l.Min(), l.Max())
	}
}

func TestWritePercentileLines(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("resolve")
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	var buf bytes.Buffer
	_ = r.Write(&buf)
	out := buf.String()
	for _, want := range []string{"resolve_p50_us ", "resolve_p95_us ", "resolve_p99_us ", "resolve_max_us 100000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAttachLatency(t *testing.T) {
	r := NewRegistry()
	ext := &Latency{}
	ext.Observe(2 * time.Millisecond)
	r.AttachLatency("txn_commit", ext)
	if r.Latency("txn_commit") != ext {
		t.Fatal("attached histogram identity lost")
	}
	var buf bytes.Buffer
	_ = r.Write(&buf)
	if !strings.Contains(buf.String(), "txn_commit_count 1") {
		t.Fatalf("attached histogram not exposed:\n%s", buf.String())
	}
}

func TestGaugeMayReadRegistryDuringWrite(t *testing.T) {
	// Regression: Write used to invoke gauge callbacks while holding the
	// registry mutex, deadlocking any gauge that reads another metric.
	r := NewRegistry()
	r.Counter("inner").Add(7)
	r.Gauge("derived", func() int64 { return r.Counter("inner").Value() + 1 })
	done := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		err := r.Write(&buf)
		if err == nil && !strings.Contains(buf.String(), "derived 8") {
			t.Errorf("derived gauge wrong:\n%s", buf.String())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Write deadlocked on gauge reading the registry")
	}
}
