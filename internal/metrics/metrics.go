// Package metrics is a small dependency-free metrics registry: named
// counters and latency accumulators with a text exposition format, the
// observability surface a production metadata service needs (the paper's
// deployment section describes profiling IndexNode CPU and per-namespace
// peak throughputs; this is the hook such monitoring reads from).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Latency accumulates duration observations: count, sum, and max.
type Latency struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	l.count.Add(1)
	l.sum.Add(int64(d))
	for {
		cur := l.max.Load()
		if int64(d) <= cur || l.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot returns count, mean, and max.
func (l *Latency) Snapshot() (count int64, mean, max time.Duration) {
	count = l.count.Load()
	if count > 0 {
		mean = time.Duration(l.sum.Load() / count)
	}
	return count, mean, time.Duration(l.max.Load())
}

// Registry holds named metrics. The zero value is not usable; create
// registries with NewRegistry.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	latencies map[string]*Latency
	gauges    map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		latencies: make(map[string]*Latency),
		gauges:    make(map[string]func() int64),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Latency returns (creating if needed) the named latency accumulator.
func (r *Registry) Latency(name string) *Latency {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.latencies[name]
	if !ok {
		l = &Latency{}
		r.latencies[name] = l
	}
	return l
}

// Gauge registers a callback sampled at exposition time.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Write renders the registry in a flat "name value" text format, sorted
// by name (latency metrics expand to _count/_mean_us/_max_us).
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+3*len(r.latencies)+len(r.gauges))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, l := range r.latencies {
		count, mean, max := l.Snapshot()
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, count),
			fmt.Sprintf("%s_mean_us %d", name, mean.Microseconds()),
			fmt.Sprintf("%s_max_us %d", name, max.Microseconds()),
		)
	}
	for name, fn := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, fn()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
