// Package metrics is a small dependency-free metrics registry: named
// counters, gauges, and fixed-bucket latency histograms with a text
// exposition format — the observability surface a production metadata
// service needs (the paper's deployment section describes profiling
// IndexNode CPU and per-namespace peak throughputs; this is the hook
// such monitoring reads from).
//
// Latency replaces the earlier lossy count/mean/max accumulator with an
// HDR-style fixed-bucket histogram: 4 geometric buckets per octave from
// 1µs to ~3min (ratio 2^¼ ≈ 1.19), so any quantile estimate is within
// ~19% relative error of the true sample — tight enough to report
// p50/p95/p99 tails honestly. Observe is lock-free (one atomic add per
// bucket), so hot paths record at full concurrency.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram bucket layout: bucket 0 holds samples < 1µs; bucket i
// (1 ≤ i < NumBuckets-1) holds samples in (bound(i-1), bound(i)] with
// bound(i) = 1µs × 2^(i/4); the last bucket is the overflow.
const (
	// NumBuckets is the fixed bucket count of every Latency histogram.
	NumBuckets = 112
	bucketUnit = time.Microsecond
)

// bucketBounds[i] is the inclusive upper bound of bucket i (the last
// entry is a sentinel for the overflow bucket).
var bucketBounds = func() [NumBuckets]time.Duration {
	var b [NumBuckets]time.Duration
	// 2^(1/4) as a rational walk: recompute each octave from a shifted
	// base to avoid float drift across 27 octaves.
	for i := 0; i < NumBuckets-1; i++ {
		b[i] = time.Duration(float64(bucketUnit) * pow2(float64(i)/4))
	}
	b[NumBuckets-1] = 1 << 62
	return b
}()

// pow2 returns 2^x for x ≥ 0 without importing math (keeps the hot
// path free of it too; this runs once at init).
func pow2(x float64) float64 {
	n := int(x)
	frac := x - float64(n)
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	// 2^frac via 4th roots of two (frac is always k/4 here).
	const root4 = 1.189207115002721 // 2^(1/4)
	for f := frac; f > 1e-9; f -= 0.25 {
		v *= root4
	}
	return v
}

// BucketBound returns the inclusive upper bound of bucket i (the last
// bucket's bound is effectively +Inf). Exposed for boundary tests.
func BucketBound(i int) time.Duration { return bucketBounds[i] }

// bucketOf maps a duration to its bucket index by binary search over
// the fixed bounds (7 probes).
func bucketOf(d time.Duration) int {
	lo, hi := 0, NumBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Latency is a fixed-bucket latency histogram. The zero value is ready
// to use; all methods are safe for concurrent use.
type Latency struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored as -(min+1) so zero means "unset"
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.buckets[bucketOf(d)].Add(1)
	l.count.Add(1)
	l.sum.Add(int64(d))
	for {
		cur := l.max.Load()
		if int64(d) <= cur || l.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := l.min.Load()
		if (cur != 0 && -(int64(d)+1) <= cur) || l.min.CompareAndSwap(cur, -(int64(d)+1)) {
			break
		}
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count.Load() }

// Snapshot returns count, mean, and max.
func (l *Latency) Snapshot() (count int64, mean, max time.Duration) {
	count = l.count.Load()
	if count > 0 {
		mean = time.Duration(l.sum.Load() / count)
	}
	return count, mean, time.Duration(l.max.Load())
}

// Max returns the largest observation (exact, not bucketed).
func (l *Latency) Max() time.Duration { return time.Duration(l.max.Load()) }

// Min returns the smallest observation (exact, not bucketed).
func (l *Latency) Min() time.Duration {
	v := l.min.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(-v - 1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the target
// rank's bucket and interpolating linearly inside it. Estimates are
// clamped to the exact observed [min, max], so Quantile(0) and
// Quantile(1) are exact and every estimate is within one bucket ratio
// (~19%) of the true sample.
func (l *Latency) Quantile(q float64) time.Duration {
	count := l.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(count))
	if target >= count {
		target = count - 1
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		n := l.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n > target {
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketBounds[i-1]
			}
			if i == NumBuckets-1 {
				// Overflow bucket: it has no finite upper bound, so
				// interpolating against the sentinel (or even against
				// the exact max, whose distance from the last finite
				// bound is unbounded) is meaningless. Report the exact
				// observed max — the only honest point estimate for a
				// rank beyond the bucketed range.
				return l.Max()
			}
			upper := bucketBounds[i]
			// Interpolate by rank position within the bucket.
			frac := (float64(target-cum) + 0.5) / float64(n)
			est := lower + time.Duration(frac*float64(upper-lower))
			return clampDur(est, l.Min(), l.Max())
		}
		cum += n
	}
	return l.Max()
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Buckets snapshots the raw bucket counts (boundary tests, exporters).
func (l *Latency) Buckets() [NumBuckets]int64 {
	var out [NumBuckets]int64
	for i := range out {
		out[i] = l.buckets[i].Load()
	}
	return out
}

// Registry holds named metrics. The zero value is not usable; create
// registries with NewRegistry.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	latencies map[string]*Latency
	gauges    map[string]func() int64
	fgauges   map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		latencies: make(map[string]*Latency),
		gauges:    make(map[string]func() int64),
		fgauges:   make(map[string]func() float64),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Latency returns (creating if needed) the named latency histogram.
func (r *Registry) Latency(name string) *Latency {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.latencies[name]
	if !ok {
		l = &Latency{}
		r.latencies[name] = l
	}
	return l
}

// AttachLatency registers an externally owned histogram under name, so
// a component can keep observing its own histogram (e.g. TafDB's
// txn-commit timer, Raft's propose timer) while the service registry
// exposes it in one dump. Replaces any histogram previously registered
// under name.
func (r *Registry) AttachLatency(name string, l *Latency) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latencies[name] = l
}

// Gauge registers a callback sampled at exposition time.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// GaugeFloat registers a float-valued callback sampled at exposition
// time — ratios like batch occupancy or group-commit fan-in, which an
// integer gauge would truncate to meaninglessness.
func (r *Registry) GaugeFloat(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fgauges[name] = fn
}

// Write renders the registry in a flat "name value" text format, sorted
// by name. Latency histograms expand to _count/_mean_us/_p50_us/
// _p95_us/_p99_us/_max_us. Gauge callbacks are snapshotted under the
// registry lock but invoked outside it, so a gauge may safely read
// other metrics (or another registry) without deadlocking.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+6*len(r.latencies)+len(r.gauges))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	lats := make(map[string]*Latency, len(r.latencies))
	for name, l := range r.latencies {
		lats[name] = l
	}
	type gauge struct {
		name string
		fn   func() int64
	}
	gauges := make([]gauge, 0, len(r.gauges))
	for name, fn := range r.gauges {
		gauges = append(gauges, gauge{name, fn})
	}
	type fgauge struct {
		name string
		fn   func() float64
	}
	fgauges := make([]fgauge, 0, len(r.fgauges))
	for name, fn := range r.fgauges {
		fgauges = append(fgauges, fgauge{name, fn})
	}
	r.mu.Unlock()
	for name, l := range lats {
		count, mean, max := l.Snapshot()
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, count),
			fmt.Sprintf("%s_mean_us %d", name, mean.Microseconds()),
			fmt.Sprintf("%s_p50_us %d", name, l.Quantile(0.50).Microseconds()),
			fmt.Sprintf("%s_p95_us %d", name, l.Quantile(0.95).Microseconds()),
			fmt.Sprintf("%s_p99_us %d", name, l.Quantile(0.99).Microseconds()),
			fmt.Sprintf("%s_max_us %d", name, max.Microseconds()),
		)
	}
	for _, g := range gauges {
		lines = append(lines, fmt.Sprintf("%s %d", g.name, g.fn()))
	}
	for _, g := range fgauges {
		lines = append(lines, fmt.Sprintf("%s %.3f", g.name, g.fn()))
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitises a metric name for the Prometheus exposition
// format: any character outside [a-zA-Z0-9_:] becomes '_'. Registry
// names already conform; this keeps a stray name from corrupting a
// scrape.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	b := []byte(name)
	for i, c := range b {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), so real scrapers can ingest what
// the flat format already collects: counters and gauges as untyped
// samples, and every Latency as a cumulative histogram — one
// `_bucket{le="<seconds>"}` series per finite bucket bound plus the
// `le="+Inf"` total, `_sum` in seconds, and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	samples := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.fgauges))
	for name, c := range r.counters {
		samples = append(samples, fmt.Sprintf("%s %d", promName(name), c.Value()))
	}
	lats := make(map[string]*Latency, len(r.latencies))
	for name, l := range r.latencies {
		lats[name] = l
	}
	type g64 struct {
		name string
		fn   func() int64
	}
	gauges := make([]g64, 0, len(r.gauges))
	for name, fn := range r.gauges {
		gauges = append(gauges, g64{name, fn})
	}
	type gf struct {
		name string
		fn   func() float64
	}
	fgauges := make([]gf, 0, len(r.fgauges))
	for name, fn := range r.fgauges {
		fgauges = append(fgauges, gf{name, fn})
	}
	r.mu.Unlock()
	// Gauge callbacks run outside the lock, as in Write.
	for _, g := range gauges {
		samples = append(samples, fmt.Sprintf("%s %d", promName(g.name), g.fn()))
	}
	for _, g := range fgauges {
		samples = append(samples, fmt.Sprintf("%s %g", promName(g.name), g.fn()))
	}
	sort.Strings(samples)
	for _, s := range samples {
		if _, err := fmt.Fprintln(w, s); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(lats))
	for name := range lats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, promName(name), lats[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one Latency as a cumulative Prometheus
// histogram. Buckets snapshot before count, so a concurrent Observe
// can at worst make count exceed the +Inf bucket — never undershoot
// it — keeping the series monotone for scrapers.
func writePromHistogram(w io.Writer, name string, l *Latency) error {
	buckets := l.Buckets()
	var cum int64
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for i := 0; i < NumBuckets-1; i++ {
		cum += buckets[i]
		le := strconv.FormatFloat(bucketBounds[i].Seconds(), 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += buckets[NumBuckets-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(l.sum.Load()).Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}
