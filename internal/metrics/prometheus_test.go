package metrics

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The overflow-bucket regression: a tail sample past the last finite
// bound (~3min) must report the exact observed max for any quantile
// landing in the overflow bucket, not an interpolation against the
// sentinel bound.
func TestQuantileOverflowClampsToMax(t *testing.T) {
	var l Latency
	for i := 0; i < 99; i++ {
		l.Observe(time.Millisecond)
	}
	l.Observe(10 * time.Minute) // far past bucketBounds[NumBuckets-2] ≈ 190s
	if got := l.Quantile(0.99); got != 10*time.Minute {
		t.Fatalf("p99 with one overflow sample = %v, want exactly 10m (the observed max)", got)
	}
	if got := l.Quantile(0.5); got > 2*time.Millisecond {
		t.Fatalf("p50 = %v, overflow sample leaked into the body", got)
	}

	// All samples in the overflow bucket: every quantile is the max.
	var lo Latency
	for i := 0; i < 100; i++ {
		lo.Observe(4 * time.Minute)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := lo.Quantile(q); got != 4*time.Minute {
			t.Fatalf("all-overflow Quantile(%v) = %v, want 4m", q, got)
		}
	}
}

func TestWritePrometheusSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(42)
	r.Gauge("rows", func() int64 { return 7 })
	r.GaugeFloat("occupancy", func() float64 { return 0.5 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ops_total 42\n", "rows 7\n", "occupancy 0.5\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("latency_op")
	l.Observe(500 * time.Nanosecond) // bucket 0
	l.Observe(3 * time.Microsecond)
	l.Observe(2 * time.Millisecond)
	l.Observe(10 * time.Minute) // overflow bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE latency_op histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "latency_op_count 4\n") {
		t.Fatalf("missing count:\n%s", out)
	}
	wantSum := (500*time.Nanosecond + 3*time.Microsecond + 2*time.Millisecond + 10*time.Minute).Seconds()
	if !strings.Contains(out, "latency_op_sum "+strconv.FormatFloat(wantSum, 'g', -1, 64)+"\n") {
		t.Fatalf("missing sum %g:\n%s", wantSum, out)
	}

	// The bucket series must be cumulative and monotone, end at
	// le="+Inf" with the total count, and carry seconds-unit bounds.
	var prev int64 = -1
	var bucketLines, infCount int64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "latency_op_bucket{le=") {
			continue
		}
		bucketLines++
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if val < prev {
			t.Fatalf("non-monotone bucket series at %q (prev %d)", line, prev)
		}
		prev = val
		le := line[len(`latency_op_bucket{le="`):strings.LastIndexByte(line, '"')]
		if le == "+Inf" {
			infCount = val
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("non-numeric le %q: %v", le, err)
		}
		if bound <= 0 || bound > 200 { // finite bounds run 1µs .. ~190s
			t.Fatalf("le %q out of the seconds-unit range", le)
		}
	}
	if bucketLines != NumBuckets {
		t.Fatalf("bucket lines = %d, want %d (finite bounds + +Inf)", bucketLines, NumBuckets)
	}
	if infCount != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", infCount)
	}
}
