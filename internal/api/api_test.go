package api

import (
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/rpc"
	"mantle/internal/types"
)

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	time.Sleep(2 * time.Millisecond)
	tm.Phase(types.PhaseLookup)
	time.Sleep(4 * time.Millisecond)
	tm.Phase(types.PhaseExecute)

	caller := rpc.NewCaller(netsim.NewLocalFabric())
	op := caller.Begin()
	_ = op.Call(netsim.NewNode("n", 0), 0, func() error { return nil })

	res := tm.Done(op, 3, types.Entry{ID: 7})
	if res.Phases[types.PhaseLookup] < time.Millisecond {
		t.Fatalf("lookup phase = %v", res.Phases[types.PhaseLookup])
	}
	if res.Phases[types.PhaseExecute] < 2*time.Millisecond {
		t.Fatalf("execute phase = %v", res.Phases[types.PhaseExecute])
	}
	if res.Phases[types.PhaseExecute] <= res.Phases[types.PhaseLookup] {
		t.Fatal("phase attribution wrong")
	}
	if res.RTTs != 1 || res.Retries != 3 || res.Entry.ID != 7 {
		t.Fatalf("res = %+v", res)
	}
	// Total is the sum of phases.
	if res.Phases.Total() != res.Phases[types.PhaseLookup]+res.Phases[types.PhaseExecute] {
		t.Fatal("total mismatch")
	}
}
