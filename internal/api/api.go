// Package api defines the metadata-service interface that Mantle and the
// three baseline systems (Tectonic, InfiniFS, LocoFS) implement. The
// benchmark harness drives every system through this interface, so the
// comparisons in the evaluation exercise identical op sequences.
//
// Operations use mdtest's names, as the paper does. Object operations
// take the object's full path; directory operations take the directory's
// full path. Every operation reports a types.Result with the per-phase
// latency split (lookup / loop detection / execute), the RPC round trips
// consumed, and the transaction retries incurred.
package api

import (
	"time"

	"mantle/internal/rpc"
	"mantle/internal/types"
)

// Service is a COSS metadata service under test.
type Service interface {
	// Name identifies the system ("mantle", "tectonic", "infinifs",
	// "locofs").
	Name() string
	// Caller returns the RPC caller proxies use (per-op tracking).
	Caller() *rpc.Caller

	// Lookup resolves a directory path to its metadata (first-class for
	// the depth experiments; also the first step of every other op).
	Lookup(op *rpc.Op, dirPath string) (types.Result, error)
	// Create inserts an object.
	Create(op *rpc.Op, objPath string, size int64) (types.Result, error)
	// Delete removes an object.
	Delete(op *rpc.Op, objPath string) (types.Result, error)
	// ObjStat stats an object.
	ObjStat(op *rpc.Op, objPath string) (types.Result, error)
	// DirStat stats a directory.
	DirStat(op *rpc.Op, dirPath string) (types.Result, error)
	// Mkdir creates a directory.
	Mkdir(op *rpc.Op, dirPath string) (types.Result, error)
	// Rmdir removes an empty directory.
	Rmdir(op *rpc.Op, dirPath string) (types.Result, error)
	// DirRename moves srcPath to dstPath (both full directory paths).
	DirRename(op *rpc.Op, srcPath, dstPath string) (types.Result, error)
	// ReadDir lists a directory.
	ReadDir(op *rpc.Op, dirPath string) (types.Result, []types.Entry, error)

	// Populate bulk-loads a namespace before experiments, bypassing the
	// transactional path deterministically.
	Populate(dirs []PopDir, objects []PopObject) error

	// Stop shuts the system down.
	Stop()
}

// PopDir describes one directory for bulk population. Parents must
// precede children.
type PopDir struct {
	Path string
	ID   types.InodeID
	Pid  types.InodeID
	Perm types.Perm
}

// PopObject describes one object for bulk population.
type PopObject struct {
	Pid  types.InodeID
	Name string
	Size int64
}

// Timer measures operation phases.
type Timer struct {
	start time.Time
	last  time.Time
	res   types.Result
}

// NewTimer starts a phase timer.
func NewTimer() *Timer {
	now := time.Now()
	return &Timer{start: now, last: now}
}

// Phase records the elapsed time since the previous mark under phase p.
func (t *Timer) Phase(p types.Phase) {
	now := time.Now()
	t.res.Phases = t.res.Phases.Add(p, now.Sub(t.last))
	t.last = now
}

// Done finalises the result with the op's RPC count and retries.
func (t *Timer) Done(op *rpc.Op, retries int, entry types.Entry) types.Result {
	t.res.RTTs = op.RTTs()
	t.res.Retries = retries
	t.res.Entry = entry
	return t.res
}
