// Shared harness for the write-path batching benchmarks (the Figure 16
// "+raftlogbatch" ablation shape): it builds deployments with simulated
// durability costs, selects the batching variants to sweep, and totals
// the simulated fsyncs so suites can report fsyncs/op. The root-package
// bench_write_test.go drives the end-to-end client workloads through
// it; write_bench_test.go holds the layer-level micro-benchmarks (WAL
// group commit, raft propose, batched 2PC).

package bench

import (
	"os"
	"time"

	"mantle"
)

// Mode is one batching configuration of the write suite.
type Mode struct {
	// Name tags sub-benchmarks ("batch=on" / "batch=off").
	Name string
	// Batch enables write-path batching at every layer.
	Batch bool
}

// Modes returns the batching variants to benchmark. The
// MANTLE_WRITE_BATCH environment variable ("on", "off", or "both"; the
// default is "both") narrows the sweep, so CI lanes can run and gate
// one side at a time.
func Modes() []Mode {
	switch os.Getenv("MANTLE_WRITE_BATCH") {
	case "on":
		return []Mode{{"on", true}}
	case "off":
		return []Mode{{"off", false}}
	}
	return []Mode{{"on", true}, {"off", false}}
}

// HotspotModes returns the hotspot-management variants the skew suite
// benchmarks. MANTLE_HOTSPOT ("on", "off", or "both"; default "both")
// narrows the sweep the same way MANTLE_WRITE_BATCH does for the write
// suite, so CI lanes can run and gate one side at a time.
func HotspotModes() []Mode {
	switch os.Getenv("MANTLE_HOTSPOT") {
	case "on":
		return []Mode{{"on", true}}
	case "off":
		return []Mode{{"off", false}}
	}
	return []Mode{{"on", true}, {"off", false}}
}

// SkewConfig is the deployment the skew suite runs against: a 3-voter
// group with 2 learners and follower read (the paper's read-replica
// shape), a simulated network round trip so the leader round trip that
// hot-set reads elide is visible in latency, and hotspot management
// toggled per mode. The proxy cache stays off (its default) so lookups
// actually reach the replicas under test.
func SkewConfig(hotspot bool) mantle.Config {
	return mantle.Config{
		Shards:       4,
		Replicas:     3,
		Learners:     2,
		FollowerRead: true,
		RTT:          200 * time.Microsecond,
		Hotspot:      hotspot,
		// The suite's absolute read rate is far below production; scale
		// the promotion threshold down with it so the hot-set tracks
		// the skew instead of flapping at the demotion boundary.
		HotThreshold: 64,
	}
}

// Simulated durability costs for the write suite: large enough that
// sync amortisation is the first-order effect (as with the paper's
// 400µs testbed fsync), small enough for -benchtime=1x smoke runs.
const (
	// WALSyncCost is the per-sync latency of each TafDB shard's WAL.
	WALSyncCost = 150 * time.Microsecond
	// FsyncCost is the per-sync latency of the IndexNode raft log.
	FsyncCost = 150 * time.Microsecond
)

// WriteConfig is the deployment the write suite runs against: durable
// WAL and raft log, batching toggled per mode.
func WriteConfig(batch bool) mantle.Config {
	return mantle.Config{
		Shards:            4,
		WALSyncCost:       WALSyncCost,
		FsyncCost:         FsyncCost,
		DisableWriteBatch: !batch,
	}
}

// Fsyncs totals the simulated durable syncs performed so far on the
// deployment's write path: TafDB WAL syncs plus raft log syncs on
// every replica.
func Fsyncs(cl *mantle.Cluster) int64 {
	n := cl.Core().DB().WALStats().Syncs
	for _, r := range cl.Core().Index().Rafts() {
		syncs, _, _, _ := r.MetricsRef().Snapshot()
		n += syncs
	}
	return n
}
