// Layer-level micro-benchmarks for the write-path batching work: each
// one isolates a single batching mechanism (WAL group commit, raft
// proposal batching + pipelining, batched cross-shard 2PC) and reports
// syncs/op so the amortisation is visible without the rest of the
// stack in the way. The end-to-end client workloads live in the root
// package's bench_write_test.go.
package bench

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mantle/internal/netsim"
	"mantle/internal/raft"
	"mantle/internal/rpc"
	"mantle/internal/storage"
	"mantle/internal/txn"
	"mantle/internal/types"
)

// microSyncCost is the simulated per-sync latency for the layer
// benchmarks (cheaper than the end-to-end suite so -benchtime=1x smoke
// runs stay fast).
const microSyncCost = 100 * time.Microsecond

// BenchmarkWALGroupCommit hammers one WAL from parallel committers.
// With group commit on, concurrent Commits coalesce onto a shared
// fsync; off, every staged batch pays its own.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, mode := range Modes() {
		b.Run("batch="+mode.Name, func(b *testing.B) {
			w := storage.NewWAL(microSyncCost)
			w.SetGroupCommit(mode.Batch)
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					w.Commit([]storage.Mutation{{
						Kind: storage.MutPut,
						Key:  types.Key{Pid: types.InodeID(n), Name: "x"},
					}})
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(w.Syncs())/float64(b.N), "syncs/op")
		})
	}
}

// BenchmarkRaftProposeParallel drives concurrent proposals through a
// single-voter raft group with a simulated log fsync. Batching ingests
// the whole proposal queue per append; pipelining lets the leader keep
// appending while the previous fsync is in flight.
func BenchmarkRaftProposeParallel(b *testing.B) {
	for _, mode := range Modes() {
		b.Run("batch="+mode.Name, func(b *testing.B) {
			rs := raft.NewGroup([]raft.Config{{
				ID:           "bench-0",
				FsyncCost:    microSyncCost,
				BatchEnabled: mode.Batch,
				Pipeline:     mode.Batch,
			}})
			b.Cleanup(func() {
				for _, r := range rs {
					r.Stop()
				}
			})
			leader, err := raft.WaitLeader(rs, 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := leader.Propose([]byte("w")); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			syncs, _, _, _ := leader.MetricsRef().Snapshot()
			b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
		})
	}
}

// BenchmarkBatched2PC runs independent two-shard transactions over the
// same shard pair from parallel goroutines. The Batcher groups them
// into shared prepare/commit rounds, and the participants' WAL group
// commit coalesces each round's records; Direct pays full 2PC per txn.
func BenchmarkBatched2PC(b *testing.B) {
	for _, mode := range Modes() {
		b.Run("batch="+mode.Name, func(b *testing.B) {
			fabric := netsim.NewLocalFabric()
			caller := rpc.NewCaller(fabric)
			parts := make([]*txn.Participant, 2)
			for i := range parts {
				name := fmt.Sprintf("shard-%d", i)
				sh := storage.NewShard(name)
				w := storage.NewWAL(microSyncCost)
				w.SetGroupCommit(mode.Batch)
				sh.AttachWAL(w)
				parts[i] = &txn.Participant{
					Shard: sh,
					Node:  netsim.NewNode(name, 0),
				}
			}
			var runner txn.Runner = txn.Direct{}
			if mode.Batch {
				runner = txn.NewBatcher(0)
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					pieces := make([]txn.Piece, 2)
					for i, p := range parts {
						pieces[i] = txn.Piece{
							P: p,
							Muts: []storage.Mutation{{
								Kind: storage.MutPut,
								Key:  types.Key{Pid: types.InodeID(n), Name: fmt.Sprintf("p%d", i)},
							}},
						}
					}
					id := fmt.Sprintf("t%d", n)
					if err := runner.Run(caller.Begin(), id, pieces); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			var syncs int64
			for _, p := range parts {
				syncs += p.Shard.WAL().Syncs()
			}
			b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
		})
	}
}
