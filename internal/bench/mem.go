package bench

import "runtime"

// Heap accounting for namespace-scale benchmarks. Throughput and latency
// say nothing about whether a 10M-entry namespace fits in a metadata
// node's RAM; the scale sweep reports resident bytes per entry alongside
// them. Samples force a collection first so the figures count reachable
// memory, not garbage awaiting the next GC cycle.

// HeapSample is a point-in-time snapshot of the live heap.
type HeapSample struct {
	HeapAlloc   uint64 // bytes of live heap objects
	HeapInuse   uint64 // bytes of in-use spans: objects plus fragmentation
	HeapObjects uint64 // number of live objects
}

// Heap forces a garbage collection and snapshots the live heap.
func Heap() HeapSample {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HeapSample{
		HeapAlloc:   ms.HeapAlloc,
		HeapInuse:   ms.HeapInuse,
		HeapObjects: ms.HeapObjects,
	}
}

// Sub returns the component-wise growth a-b, clamped at zero (a
// collection between the two samples can shrink any component).
func (a HeapSample) Sub(b HeapSample) HeapSample {
	sub := func(x, y uint64) uint64 {
		if x < y {
			return 0
		}
		return x - y
	}
	return HeapSample{
		HeapAlloc:   sub(a.HeapAlloc, b.HeapAlloc),
		HeapInuse:   sub(a.HeapInuse, b.HeapInuse),
		HeapObjects: sub(a.HeapObjects, b.HeapObjects),
	}
}

// metricReporter is the subset of *testing.B that ReportHeap needs, kept
// as an interface so this package stays importable outside tests.
type metricReporter interface {
	ReportMetric(n float64, unit string)
}

// ReportHeap samples the heap, subtracts base (taken before the
// structure under test was built), and reports the growth as benchmark
// metrics: heap-bytes (live-object growth), heap-inuse-bytes (span
// growth, the closer proxy for RSS), and — when entries > 0 — entries
// and bytes/entry, the resident cost of one namespace entry. benchjson
// carries all of these into the committed BENCH_PR<n>.json snapshots.
func ReportHeap(b metricReporter, base HeapSample, entries int) {
	ReportHeapGrowth(b, Heap().Sub(base), entries)
}

// ReportHeapGrowth reports an already-measured growth sample (for
// callers that cache the structure under test across benchmark
// invocations and must not re-measure against a since-polluted heap).
func ReportHeapGrowth(b metricReporter, g HeapSample, entries int) {
	b.ReportMetric(float64(g.HeapAlloc), "heap-bytes")
	b.ReportMetric(float64(g.HeapInuse), "heap-inuse-bytes")
	if entries > 0 {
		b.ReportMetric(float64(entries), "entries")
		b.ReportMetric(float64(g.HeapAlloc)/float64(entries), "bytes/entry")
	}
}
