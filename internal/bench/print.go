package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mantle/internal/types"
)

// Kops formats a throughput in Kop/s as the paper reports.
func Kops(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2f Mop/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.1f Kop/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f op/s", opsPerSec)
	}
}

// Table renders an aligned text table.
func Table(w io.Writer, title string, header []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", title)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// BreakdownRow formats a result's phase breakdown (mean µs per phase),
// as in Figures 13 and 15.
func BreakdownRow(r RunResult) []string {
	return []string{
		fmt.Sprintf("%.0f", us(r.MeanPhase(types.PhaseLookup))),
		fmt.Sprintf("%.0f", us(r.MeanPhase(types.PhaseLoopDetect))),
		fmt.Sprintf("%.0f", us(r.MeanPhase(types.PhaseExecute))),
		fmt.Sprintf("%.0f", us(r.Latency.Mean())),
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// CDFSummary prints quantile rows for a set of named histograms — the
// textual rendering of a CDF figure.
func CDFSummary(w io.Writer, title string, series []NamedHist) {
	header := []string{"system", "p10", "p50", "p90", "p99", "p999", "max"}
	rows := make([][]string, 0, len(series))
	for _, s := range series {
		rows = append(rows, []string{
			s.Name,
			s.Hist.Quantile(0.10).Round(time.Microsecond).String(),
			s.Hist.Quantile(0.50).Round(time.Microsecond).String(),
			s.Hist.Quantile(0.90).Round(time.Microsecond).String(),
			s.Hist.Quantile(0.99).Round(time.Microsecond).String(),
			s.Hist.Quantile(0.999).Round(time.Microsecond).String(),
			s.Hist.Max().Round(time.Microsecond).String(),
		})
	}
	Table(w, title, header, rows)
}

// NamedHist pairs a label with a histogram.
type NamedHist struct {
	Name string
	Hist *Histogram
}
