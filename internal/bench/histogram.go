// Package bench is the measurement harness for the evaluation: a
// log-bucketed latency histogram, a fixed-work concurrent load runner
// (mdtest-style: N workers × ops-per-worker), per-phase latency
// aggregation, and table/CDF printers used by cmd/experiments to
// regenerate the paper's figures.
package bench

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram covering 1µs..~5min with
// ~4% relative resolution. Safe for concurrent Record via external
// striping (the runner merges per-worker histograms).
type Histogram struct {
	buckets [numBuckets]int64
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

const (
	numBuckets  = 400
	bucketBase  = 1.04 // ~4% resolution per bucket
	bucketUnit  = time.Microsecond
	maxBucketed = 390
)

func bucketOf(d time.Duration) int {
	if d < bucketUnit {
		return 0
	}
	b := int(math.Log(float64(d)/float64(bucketUnit))/math.Log(bucketBase)) + 1
	if b < 0 {
		b = 0
	}
	if b > maxBucketed {
		b = maxBucketed
	}
	return b
}

func bucketUpper(i int) time.Duration {
	if i == 0 {
		return bucketUnit
	}
	return time.Duration(float64(bucketUnit) * math.Pow(bucketBase, float64(i)))
}

// Record adds one sample. Not safe for concurrent use.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if h.min == 0 || d < h.min {
		h.min = d
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if h.min == 0 || (o.min != 0 && o.min < h.min) {
		h.min = o.min
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration { return h.min }

// Quantile returns the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			return bucketUpper(i)
		}
	}
	return h.max
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns the distribution as (latency, fraction<=latency) points,
// one per non-empty bucket — the Figure 11 series.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		out = append(out, CDFPoint{
			Latency:  bucketUpper(i),
			Fraction: float64(cum) / float64(h.count),
		})
	}
	return out
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
}

// histPool amortises Histogram allocation in the runner.
var histPool = sync.Pool{New: func() any { return new(Histogram) }}
