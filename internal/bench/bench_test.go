package bench

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mantle/internal/types"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000 µs uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("min = %v", h.Min())
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(10 * time.Microsecond)
		b.Record(time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Quantile(0.25) > 50*time.Microsecond {
		t.Fatalf("p25 = %v", a.Quantile(0.25))
	}
	if a.Quantile(0.75) < 500*time.Microsecond {
		t.Fatalf("p75 = %v", a.Quantile(0.75))
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	f := func(samplesUS []uint16) bool {
		h := &Histogram{}
		for _, s := range samplesUS {
			h.Record(time.Duration(s) * time.Microsecond)
		}
		cdf := h.CDF()
		if len(samplesUS) == 0 {
			return cdf == nil
		}
		last := 0.0
		for _, p := range cdf {
			if p.Fraction < last || p.Fraction > 1.0001 {
				return false
			}
			last = p.Fraction
		}
		return len(cdf) > 0 && cdf[len(cdf)-1].Fraction > 0.9999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileWithinResolution(t *testing.T) {
	// The log-bucket resolution guarantee: quantile error < ~8%.
	r := rand.New(rand.NewSource(5))
	h := &Histogram{}
	var samples []time.Duration
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Intn(100000)+1) * time.Microsecond
		samples = append(samples, d)
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 0.90 || ratio > 1.10 {
			t.Fatalf("q%.2f: got %v exact %v (ratio %.3f)", q, got, exact, ratio)
		}
	}
}

func TestRunN(t *testing.T) {
	res := RunN(4, 25, func(worker, seq int) (types.Result, error) {
		if worker == 0 && seq == 0 {
			return types.Result{}, errors.New("one failure")
		}
		var r types.Result
		r.Phases = r.Phases.Add(types.PhaseLookup, 100*time.Microsecond)
		r.Phases = r.Phases.Add(types.PhaseExecute, 50*time.Microsecond)
		r.RTTs = 2
		r.Retries = 1
		return r, nil
	})
	if res.Ops != 99 || res.Errors != 1 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Retries != 99 || res.RTTs != 198 {
		t.Fatalf("retries=%d rtts=%d", res.Retries, res.RTTs)
	}
	if res.MeanRTTs() != 2 {
		t.Fatalf("mean RTTs = %f", res.MeanRTTs())
	}
	if res.PerPhase[types.PhaseLookup].Count() != 99 {
		t.Fatalf("phase samples = %d", res.PerPhase[types.PhaseLookup].Count())
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	start := time.Now()
	res := RunFor(8, 50*time.Millisecond, func(worker, seq int) (types.Result, error) {
		time.Sleep(time.Millisecond)
		return types.Result{}, nil
	})
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Fatalf("RunFor overran: %v", elapsed)
	}
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	perWorker := float64(res.Ops) / 8
	if perWorker < 20 || perWorker > 80 {
		t.Fatalf("per-worker ops = %.0f, expected ~50", perWorker)
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "demo", []string{"sys", "thpt"}, [][]string{
		{"mantle", "58.8 Kop/s"},
		{"tectonic", "2.8 Kop/s"},
	})
	out := buf.String()
	for _, want := range []string{"demo", "sys", "mantle", "58.8 Kop/s", "tectonic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestKops(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500 op/s"},
		{58800, "58.8 Kop/s"},
		{1890000, "1.89 Mop/s"},
	}
	for _, c := range cases {
		if got := Kops(c.in); got != c.want {
			t.Errorf("Kops(%f) = %q, want %q", c.in, got, c.want)
		}
	}
}
