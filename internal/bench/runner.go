package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"mantle/internal/types"
)

// OpFunc performs one benchmark operation for the given worker and
// sequence number, returning the operation's measured result.
type OpFunc func(worker, seq int) (types.Result, error)

// RunResult aggregates one benchmark run.
type RunResult struct {
	Workers    int
	Ops        int64
	Errors     int64
	Wall       time.Duration
	Throughput float64 // successful ops per second
	Latency    *Histogram
	// PerPhase holds per-phase latency histograms (lookup / loopdetect /
	// execute), feeding the breakdown figures.
	PerPhase [types.NumPhases]*Histogram
	// Retries is the total transaction/lock retries across ops.
	Retries int64
	// RTTs is the total RPC round trips across ops.
	RTTs int64
}

// MeanPhase returns the mean latency of phase p across ops.
func (r RunResult) MeanPhase(p types.Phase) time.Duration {
	return r.PerPhase[p].Mean()
}

// MeanRTTs returns the average round trips per successful op.
func (r RunResult) MeanRTTs() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.RTTs) / float64(r.Ops)
}

// RunN drives fn with the given worker count, each performing perWorker
// sequential operations — the mdtest execution model (N ranks × items
// per rank). Latency is the op's own wall time; throughput is total
// successful ops over the run's wall time.
func RunN(workers, perWorker int, fn OpFunc) RunResult {
	res := RunResult{Workers: workers, Latency: &Histogram{}}
	for p := range res.PerPhase {
		res.PerPhase[p] = &Histogram{}
	}
	var mu sync.Mutex
	var ops, errs, retries, rtts atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := histPool.Get().(*Histogram)
			*lat = Histogram{}
			var phase [types.NumPhases]*Histogram
			for p := range phase {
				phase[p] = histPool.Get().(*Histogram)
				*phase[p] = Histogram{}
			}
			for seq := 0; seq < perWorker; seq++ {
				t0 := time.Now()
				r, err := fn(w, seq)
				d := time.Since(t0)
				if err != nil {
					errs.Add(1)
					continue
				}
				ops.Add(1)
				retries.Add(int64(r.Retries))
				rtts.Add(int64(r.RTTs))
				lat.Record(d)
				for p := 0; p < types.NumPhases; p++ {
					phase[p].Record(r.Phases[types.Phase(p)])
				}
			}
			mu.Lock()
			res.Latency.Merge(lat)
			for p := range phase {
				res.PerPhase[p].Merge(phase[p])
			}
			mu.Unlock()
			histPool.Put(lat)
			for p := range phase {
				histPool.Put(phase[p])
			}
		}(w)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Ops = ops.Load()
	res.Errors = errs.Load()
	res.Retries = retries.Load()
	res.RTTs = rtts.Load()
	if res.Wall > 0 {
		res.Throughput = float64(res.Ops) / res.Wall.Seconds()
	}
	return res
}

// RunFor drives fn with the given workers until the duration elapses
// (each worker checks the deadline between ops). Used by scalability
// sweeps where a fixed op count would over- or under-run.
func RunFor(workers int, d time.Duration, fn OpFunc) RunResult {
	res := RunResult{Workers: workers, Latency: &Histogram{}}
	for p := range res.PerPhase {
		res.PerPhase[p] = &Histogram{}
	}
	var mu sync.Mutex
	var ops, errs, retries, rtts atomic.Int64
	deadline := time.Now().Add(d)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := histPool.Get().(*Histogram)
			*lat = Histogram{}
			var phase [types.NumPhases]*Histogram
			for p := range phase {
				phase[p] = histPool.Get().(*Histogram)
				*phase[p] = Histogram{}
			}
			for seq := 0; time.Now().Before(deadline); seq++ {
				t0 := time.Now()
				r, err := fn(w, seq)
				dd := time.Since(t0)
				if err != nil {
					errs.Add(1)
					continue
				}
				ops.Add(1)
				retries.Add(int64(r.Retries))
				rtts.Add(int64(r.RTTs))
				lat.Record(dd)
				for p := 0; p < types.NumPhases; p++ {
					phase[p].Record(r.Phases[types.Phase(p)])
				}
			}
			mu.Lock()
			res.Latency.Merge(lat)
			for p := range phase {
				res.PerPhase[p].Merge(phase[p])
			}
			mu.Unlock()
			histPool.Put(lat)
			for p := range phase {
				histPool.Put(phase[p])
			}
		}(w)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Ops = ops.Load()
	res.Errors = errs.Load()
	res.Retries = retries.Load()
	res.RTTs = rtts.Load()
	if res.Wall > 0 {
		res.Throughput = float64(res.Ops) / res.Wall.Seconds()
	}
	return res
}
