package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mantle/internal/types"
)

func walShard(t *testing.T, syncCost time.Duration) (*Shard, *WAL) {
	t.Helper()
	s := NewShard("w0")
	w := NewWAL(syncCost)
	s.AttachWAL(w)
	return s, w
}

// dumpRows flattens a shard for comparison.
func dumpRows(s *Shard) []string {
	var out []string
	s.Scan(types.Key{}, types.Key{Pid: ^types.InodeID(0), Name: "\xff"}, func(r Row) bool {
		out = append(out, fmt.Sprintf("%s=%d/%d/%d", types.Key{Pid: r.Entry.Pid, Name: r.Entry.Name},
			r.Entry.ID, r.Entry.Attr.LinkCount, r.Entry.Attr.Size))
		return true
	})
	return out
}

func TestWALCrashRecovery(t *testing.T) {
	s, _ := walShard(t, 0)
	// Committed transactions survive; an uncommitted prepare does not.
	for i := 0; i < 20; i++ {
		txn := fmt.Sprintf("t%d", i)
		if err := s.Prepare(txn, nil, []Mutation{putMut(1, fmt.Sprintf("k%02d", i), uint64(i))}); err != nil {
			t.Fatal(err)
		}
		s.Commit(txn)
	}
	if err := s.Prepare("uncommitted", nil, []Mutation{putMut(2, "lost", 99)}); err != nil {
		t.Fatal(err)
	}
	// Mix in deletes and delta updates.
	if err := s.Prepare("del", nil, []Mutation{{Kind: MutDelete, Key: key(1, "k03"), MustExist: true}}); err != nil {
		t.Fatal(err)
	}
	s.Commit("del")
	if err := s.Prepare("delta", nil, []Mutation{{
		Kind: MutDeltaAttr, Key: key(1, "k05"), Delta: AttrDelta{LinkCount: 7, Size: 70}, MustExist: true,
	}}); err != nil {
		t.Fatal(err)
	}
	s.Commit("delta")

	before := dumpRows(s)
	s.Crash()
	if !s.Crashed() {
		t.Fatal("not crashed")
	}
	if s.Len() != 0 {
		t.Fatal("crash kept rows")
	}
	n := s.Recover()
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	after := dumpRows(s)
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("recovery mismatch:\nbefore %v\nafter  %v", before, after)
	}
	if _, ok := s.Get(key(2, "lost")); ok {
		t.Fatal("uncommitted prepare survived the crash")
	}
	// The shard is usable after recovery.
	if err := s.Prepare("post", nil, []Mutation{putMut(3, "new", 1)}); err != nil {
		t.Fatal(err)
	}
	s.Commit("post")
}

func TestWALGroupCommit(t *testing.T) {
	s, w := walShard(t, 2*time.Millisecond)
	const goroutines, each = 16, 10
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				txn := fmt.Sprintf("g%d-%d", g, i)
				if err := s.Prepare(txn, nil, []Mutation{
					putMut(uint64(g+10), fmt.Sprintf("k%d", i), uint64(g*100+i)),
				}); err != nil {
					t.Error(err)
					return
				}
				s.Commit(txn)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	syncs := w.Syncs()
	if syncs >= goroutines*each {
		t.Fatalf("syncs = %d; group commit ineffective", syncs)
	}
	if w.Batches() != goroutines*each {
		t.Fatalf("batches = %d, want %d", w.Batches(), goroutines*each)
	}
	// Without grouping, 160 syncs at 2ms serialised would need >= 320ms.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("group commit took %v (syncs=%d)", elapsed, syncs)
	}
	// Recovery still exact.
	before := dumpRows(s)
	s.Crash()
	s.Recover()
	if fmt.Sprint(before) != fmt.Sprint(dumpRows(s)) {
		t.Fatal("group-committed state does not replay")
	}
}

func TestWALRandomizedRecoveryModel(t *testing.T) {
	// Random committed workload; after any crash point the replayed
	// state equals the model of committed operations.
	s, _ := walShard(t, 0)
	model := map[types.Key]uint64{}
	r := rand.New(rand.NewSource(11))
	for step := 0; step < 2000; step++ {
		k := key(uint64(r.Intn(8)), fmt.Sprintf("n%d", r.Intn(32)))
		txn := fmt.Sprintf("s%d", step)
		if r.Intn(3) == 0 {
			_, exists := model[k]
			if !exists {
				continue
			}
			if err := s.Prepare(txn, nil, []Mutation{{Kind: MutDelete, Key: k, MustExist: true}}); err != nil {
				t.Fatal(err)
			}
			s.Commit(txn)
			delete(model, k)
		} else {
			m := putMut(uint64(k.Pid), k.Name, uint64(step))
			if err := s.Prepare(txn, nil, []Mutation{m}); err != nil {
				t.Fatal(err)
			}
			s.Commit(txn)
			model[k] = uint64(step)
		}
	}
	s.Crash()
	s.Recover()
	if s.Len() != len(model) {
		t.Fatalf("recovered %d rows, model has %d", s.Len(), len(model))
	}
	for k, id := range model {
		row, ok := s.Get(k)
		if !ok || uint64(row.Entry.ID) != id {
			t.Fatalf("row %v = %+v ok=%v want id %d", k, row.Entry, ok, id)
		}
	}
}

func TestRecoverWithoutWAL(t *testing.T) {
	s := NewShard("plain")
	_ = s.Apply([]Mutation{putMut(1, "a", 1)})
	if n := s.Recover(); n != 0 {
		t.Fatalf("recover without WAL replayed %d", n)
	}
}
