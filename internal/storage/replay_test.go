package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCrashReplayDeterminism drives concurrent transactional commits
// and relaxed applies through a group-committing WAL, crashes the
// shard, and verifies that Recover (a) replays exactly the durable
// mutation count, (b) reproduces the pre-crash contents byte for byte,
// and (c) is deterministic — a second crash/recover cycle lands on the
// same state. This is the regression net under the oplog hook in the
// commit path: the hook moved the WAL staging point under the shard
// mutex, and replay must still be commit-ordered.
func TestCrashReplayDeterminism(t *testing.T) {
	const (
		writers = 8
		perW    = 60
	)
	s, w := walShard(t, 30*time.Microsecond)
	// Seed contended rows so DeltaAttr increments from different
	// writers interleave — the case where replay order matters.
	for i := 0; i < 4; i++ {
		if err := s.Apply([]Mutation{putMut(1, fmt.Sprintf("ctr%d", i), uint64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	var committedMuts atomic.Int64
	committedMuts.Add(4) // the seeds above went through the WAL too
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perW; i++ {
				txn := fmt.Sprintf("t%d-%d", g, i)
				muts := []Mutation{
					{Kind: MutDeltaAttr, Key: key(1, fmt.Sprintf("ctr%d", rng.Intn(4))),
						Delta: AttrDelta{LinkCount: 1, Size: int64(g + 1)}},
					putMut(uint64(2+g), fmt.Sprintf("row%03d", i), uint64(i)),
				}
				if err := s.Prepare(txn, nil, muts); err != nil {
					i-- // lock conflict on the counter row: retry
					continue
				}
				s.Commit(txn)
				committedMuts.Add(int64(len(muts)))
			}
		}(g)
	}
	wg.Wait()

	before := dumpRows(s)
	durable := w.DurableSeq()
	if staged := w.StagedSeq(); staged != durable {
		t.Fatalf("quiesced shard has staged=%d durable=%d", staged, durable)
	}

	s.Crash()
	n := s.Recover()
	if int64(n) != committedMuts.Load() {
		t.Fatalf("recover replayed %d mutations, committed %d", n, committedMuts.Load())
	}
	if got := dumpRows(s); !equalRows(got, before) {
		t.Fatalf("recovered state diverges:\n got %d rows\nwant %d rows", len(got), len(before))
	}
	// Determinism: replaying the same log again reproduces the same state.
	s.Crash()
	if n2 := s.Recover(); n2 != n {
		t.Fatalf("second recover replayed %d, first %d", n2, n)
	}
	if got := dumpRows(s); !equalRows(got, before) {
		t.Fatal("second recover diverges from first")
	}
}

// TestCommitOrderMatchesHookOrder verifies the ordering contract the
// replication oplog depends on: the sequence numbers handed to the
// repl hook are exactly the WAL batch sequence numbers, the hook sees
// them gap-free, and WAL replay yields the identical batch sequence —
// including under concurrent committers racing the group-commit window.
func TestCommitOrderMatchesHookOrder(t *testing.T) {
	s, w := walShard(t, 20*time.Microsecond)
	var mu sync.Mutex
	type batch struct {
		seq  uint64
		muts []Mutation
	}
	var hooked []batch
	s.SetReplHook(func(seq uint64, _ string, muts []Mutation) {
		cp := make([]Mutation, len(muts))
		copy(cp, muts)
		mu.Lock()
		hooked = append(hooked, batch{seq, cp})
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := fmt.Sprintf("h%d-%d", g, i)
				muts := []Mutation{putMut(uint64(10+g), fmt.Sprintf("r%03d", i), uint64(i))}
				if err := s.Prepare(txn, nil, muts); err != nil {
					t.Error(err)
					return
				}
				s.Commit(txn)
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[uint64][]Mutation, len(hooked))
	for _, b := range hooked {
		if _, dup := seen[b.seq]; dup {
			t.Fatalf("hook saw seq %d twice", b.seq)
		}
		seen[b.seq] = b.muts
	}
	for seq := uint64(1); seq <= uint64(len(hooked)); seq++ {
		if _, ok := seen[seq]; !ok {
			t.Fatalf("hook sequence has a gap at %d", seq)
		}
	}
	replayed := 0
	w.ReplayBatches(func(seq uint64, muts []Mutation) {
		replayed++
		want, ok := seen[seq]
		if !ok {
			t.Fatalf("WAL batch %d never reached the hook", seq)
		}
		if len(want) != len(muts) {
			t.Fatalf("batch %d: WAL has %d muts, hook saw %d", seq, len(muts), len(want))
		}
		for i := range muts {
			if muts[i].Key != want[i].Key || muts[i].Kind != want[i].Kind {
				t.Fatalf("batch %d mutation %d: WAL %v/%v vs hook %v/%v",
					seq, i, muts[i].Kind, muts[i].Key, want[i].Kind, want[i].Key)
			}
		}
	})
	if replayed != len(hooked) {
		t.Fatalf("WAL replayed %d batches, hook saw %d", replayed, len(hooked))
	}
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
