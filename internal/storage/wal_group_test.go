package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mantle/internal/types"
)

// TestWALGroupCommitWaiterDurability is the race-detector stress for the
// group-commit waiter protocol: many concurrent committers, each of
// which must observe its own record durable the moment Commit returns
// (DurableSeq is monotonic, so >= its sequence means its batch's fsync
// completed), and the sync accounting must balance exactly — every sync
// is classified solo or group, and the covered-batch total equals the
// number of batches made durable.
func TestWALGroupCommitWaiterDurability(t *testing.T) {
	w := NewWAL(200 * time.Microsecond)
	const goroutines, each = 32, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := w.Commit([]Mutation{putMut(uint64(g+1), fmt.Sprintf("k%d", i), uint64(i))})
				if d := w.DurableSeq(); d < seq {
					t.Errorf("Commit returned seq %d but DurableSeq = %d", seq, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if st.Syncs != st.SoloSyncs+st.GroupSyncs {
		t.Fatalf("syncs = %d, solo %d + group %d = %d",
			st.Syncs, st.SoloSyncs, st.GroupSyncs, st.SoloSyncs+st.GroupSyncs)
	}
	if want := int64(goroutines * each); st.Covered != want {
		t.Fatalf("covered batches = %d, want %d", st.Covered, want)
	}
	if got := int64(w.Batches()); st.Covered != got {
		t.Fatalf("covered = %d but WAL holds %d batches", st.Covered, got)
	}
	// With 32 writers against a 200µs sync, coalescing must happen: the
	// fsync count has to come in under one per batch.
	if st.Syncs >= int64(goroutines*each) {
		t.Fatalf("syncs = %d for %d batches; group commit ineffective", st.Syncs, goroutines*each)
	}
	if st.GroupSyncs == 0 {
		t.Fatal("no grouped syncs under 32-way concurrency")
	}
}

// TestWALNoGroupCommitAccounting pins the ablation baseline: with group
// commit off every batch pays its own fsync (syncs == batches, no
// grouped syncs), and waiters still only return once durable.
func TestWALNoGroupCommitAccounting(t *testing.T) {
	w := NewWAL(50 * time.Microsecond)
	w.SetGroupCommit(false)
	const goroutines, each = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := w.Commit([]Mutation{putMut(uint64(g+1), fmt.Sprintf("n%d", i), uint64(i))})
				if d := w.DurableSeq(); d < seq {
					t.Errorf("Commit returned seq %d but DurableSeq = %d", seq, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if want := int64(goroutines * each); st.Syncs != want {
		t.Fatalf("syncs = %d, want %d (one per batch with grouping off)", st.Syncs, want)
	}
	if st.GroupSyncs != 0 {
		t.Fatalf("group syncs = %d with grouping off", st.GroupSyncs)
	}
	if st.Covered != st.Syncs {
		t.Fatalf("covered = %d, syncs = %d; must match 1:1", st.Covered, st.Syncs)
	}
}

// TestWALGroupCommitReplayUnderStress crashes a shard whose WAL was fed
// by concurrent group-committed transactions and checks replay restores
// exactly the committed rows.
func TestWALGroupCommitReplayUnderStress(t *testing.T) {
	s, w := walShard(t, 100*time.Microsecond)
	const goroutines, each = 12, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				txn := fmt.Sprintf("g%d-%d", g, i)
				if err := s.Prepare(txn, nil, []Mutation{
					putMut(uint64(g+1), fmt.Sprintf("k%d", i), uint64(g*1000+i)),
				}); err != nil {
					t.Error(err)
					return
				}
				s.Commit(txn)
			}
		}(g)
	}
	wg.Wait()
	if w.Syncs() >= goroutines*each {
		t.Fatalf("syncs = %d; group commit ineffective", w.Syncs())
	}
	before := dumpRows(s)
	s.Crash()
	s.Recover()
	if fmt.Sprint(before) != fmt.Sprint(dumpRows(s)) {
		t.Fatal("group-committed state does not replay exactly")
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < each; i++ {
			if _, ok := s.Get(types.Key{Pid: types.InodeID(g + 1), Name: fmt.Sprintf("k%d", i)}); !ok {
				t.Fatalf("row g%d/k%d lost after replay", g, i)
			}
		}
	}
}
