// Package storage implements the single-shard ordered store that TafDB
// and the baseline DBtable services are built from. A Shard is a B-tree
// of MetaTable rows keyed (pid, name), with:
//
//   - versioned rows (every committed mutation bumps the row version),
//   - a row-lock table with shared/exclusive modes and a no-wait policy:
//     a conflicting lock request fails immediately with
//     types.ErrConflict so the transaction layer aborts and retries —
//     this is what produces the contention collapse of Figure 4b on
//     in-place directory-attribute updates, and what delta records avoid,
//   - two-phase participant hooks (Prepare/Commit/Abort) used by the
//     distributed-transaction coordinator in internal/txn, and
//   - ordered range scans for readdir and delta-record processing.
//
// A Shard performs no I/O; durability costs are modelled where they
// matter for the paper's evaluation (the IndexNode Raft log, see
// internal/raft).
package storage

import (
	"fmt"
	"sync"
	"time"

	"mantle/internal/btree"
	"mantle/internal/types"
)

// Row is a stored MetaTable row plus its version.
type Row struct {
	Entry   types.Entry
	Version uint64
}

// GuardKind constrains a row's state at prepare time.
type GuardKind uint8

const (
	// GuardExists requires the row to exist.
	GuardExists GuardKind = iota
	// GuardAbsent requires the row to be absent.
	GuardAbsent
	// GuardVersion requires the row's version to equal Version.
	GuardVersion
	// GuardRangeEmpty requires that no committed row exists with
	// Key <= key < KeyHi. The guard locks Key (shared) as its anchor;
	// writers that could violate the range must conflict on that anchor
	// row (TafDB's rmdir/mkdir protocol arranges this: child-mutating
	// transactions hold a shared lock on the parent's primary attribute
	// row, and rmdir's delete takes it exclusively).
	GuardRangeEmpty
)

// Guard is a read predicate acquired under a shared row lock at prepare
// time; it stays protected until commit/abort.
type Guard struct {
	Key     types.Key
	Kind    GuardKind
	Version uint64    // for GuardVersion
	KeyHi   types.Key // for GuardRangeEmpty: exclusive upper bound
}

// MutKind discriminates mutation types.
type MutKind uint8

const (
	// MutPut inserts or replaces the row.
	MutPut MutKind = iota
	// MutDelete removes the row.
	MutDelete
	// MutDeltaAttr applies an in-place read-modify-write to the row's
	// attribute metadata (link-count and size increments, mtime update).
	// This is the contended path that Mantle's delta records replace.
	MutDeltaAttr
)

// AttrDelta is the increment applied by MutDeltaAttr.
type AttrDelta struct {
	LinkCount int64
	Size      int64
}

// Mutation is one write within a transaction.
type Mutation struct {
	Kind  MutKind
	Key   types.Key
	Entry types.Entry // for MutPut
	Delta AttrDelta   // for MutDeltaAttr
	// IfAbsent makes a MutPut fail with types.ErrExists when the row
	// already exists (create/mkdir semantics).
	IfAbsent bool
	// MustExist makes MutDelete/MutDeltaAttr fail with types.ErrNotFound
	// when the row is missing.
	MustExist bool
	// WantKind, when non-zero, requires the existing row to be of the
	// given kind: a MutDelete of an object must not remove a directory's
	// row (and vice versa). Violations fail with types.ErrIsDir or
	// types.ErrNotDir.
	WantKind types.EntryKind
}

type lockMode uint8

const (
	lockShared lockMode = iota
	lockExclusive
)

type rowLock struct {
	mode    lockMode
	holders map[string]int // txnID -> count
}

type txnState struct {
	muts   []Mutation
	locked []types.Key // keys this txn holds locks on (dedup'd)
}

// txnStatePool recycles txnState values across transactions: a shard
// under 2PC load prepares and releases one per transaction, and the
// locked-keys slice keeps its capacity across reuses.
var txnStatePool = sync.Pool{New: func() any { return &txnState{} }}

func (st *txnState) release() {
	st.muts = nil
	st.locked = st.locked[:0]
	txnStatePool.Put(st)
}

// Shard is one storage shard. Safe for concurrent use. Reads (Get,
// Scan, Len, LockedKeys) take the mutex in shared mode, so the tafdb
// read path — stat, readdir, delta-record scans — proceeds concurrently
// across goroutines; 2PC prepare/commit/abort and relaxed applies take
// it exclusively.
//
// Rows are stored packed: the B-tree maps each key to a 48-byte
// fixed-layout packedRow value (see packed.go) rather than a boxed *Row,
// and public reads decode on demand into caller-owned values.
type Shard struct {
	id string

	mu      sync.RWMutex
	rows    *btree.Tree[types.Key, packedRow]
	locks   map[types.Key]*rowLock
	txns    map[string]*txnState
	wal     *WAL
	crashed bool

	// repl observes every committed mutation batch in commit order
	// (SetReplHook). commitSeq numbers batches when no WAL is attached;
	// with a WAL, the WAL's staged sequence is the batch number, so the
	// oplog and the log agree by construction. pendingSync counts
	// commits that have been assigned a sequence but not yet applied
	// (parked on WAL durability); SnapshotRows drains it so a snapshot's
	// sequence covers exactly the rows it contains.
	repl        ReplHook
	commitSeq   uint64
	pendingSync int
}

// ReplHook observes committed mutation batches in commit order: seq is
// the shard-local batch number (identical to the WAL batch sequence
// when a WAL is attached) and txnID is the committing transaction's id,
// or "" for relaxed applies. The hook runs under the shard mutex and
// must not call back into the shard.
type ReplHook func(seq uint64, txnID string, muts []Mutation)

// SetReplHook installs the replication hook. Install before the shard
// takes traffic.
func (s *Shard) SetReplHook(h ReplHook) {
	s.mu.Lock()
	s.repl = h
	s.mu.Unlock()
}

func newRowTree() *btree.Tree[types.Key, packedRow] {
	return btree.New[types.Key, packedRow](func(a, b types.Key) bool { return a.Less(b) })
}

// rowCursorPool recycles scan cursors across shards: a range scan borrows
// one, walks it, and returns it, so the readdir path performs no
// per-scan allocation (the closure adapter the previous Scan allocated).
var rowCursorPool = sync.Pool{
	New: func() any { return new(btree.Cursor[types.Key, packedRow]) },
}

// NewShard creates an empty shard with the given identifier.
func NewShard(id string) *Shard {
	return &Shard{
		id:    id,
		rows:  newRowTree(),
		locks: make(map[types.Key]*rowLock),
		txns:  make(map[string]*txnState),
	}
}

// ID returns the shard identifier.
func (s *Shard) ID() string { return s.id }

// Len returns the number of rows.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows.Len()
}

// Get returns the row stored under k.
func (s *Shard) Get(k types.Key) (Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.rows.Get(k)
	if !ok {
		return Row{}, false
	}
	return p.row(k), true
}

// Scan calls fn for every row with lo <= key < hi in key order until fn
// returns false. fn receives a copy of the row. fn runs under the
// shard's read lock and must not call back into the shard.
func (s *Shard) Scan(lo, hi types.Key, fn func(Row) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := rowCursorPool.Get().(*btree.Cursor[types.Key, packedRow])
	for c.Seek(s.rows, lo); c.Valid(); c.Next() {
		k := c.Key()
		if !k.Less(hi) {
			break
		}
		if !fn(c.ValueRef().row(k)) {
			break
		}
	}
	c.Reset()
	rowCursorPool.Put(c)
}

// ScanChildren visits every row under parent pid in name order.
func (s *Shard) ScanChildren(pid types.InodeID, fn func(Row) bool) {
	s.Scan(types.Key{Pid: pid, Name: ""}, types.Key{Pid: pid + 1, Name: ""}, fn)
}

// tryLock acquires a lock on k for txnID in the given mode, no-wait.
func (s *Shard) tryLock(txnID string, k types.Key, mode lockMode) error {
	l, ok := s.locks[k]
	if !ok {
		s.locks[k] = &rowLock{mode: mode, holders: map[string]int{txnID: 1}}
		return nil
	}
	if _, mine := l.holders[txnID]; mine {
		if mode == lockExclusive && l.mode == lockShared {
			if len(l.holders) == 1 {
				l.mode = lockExclusive // upgrade, sole holder
				l.holders[txnID]++
				return nil
			}
			return fmt.Errorf("shard %s: upgrade on %v: %w", s.id, k, types.ErrConflict)
		}
		l.holders[txnID]++
		return nil
	}
	if l.mode == lockShared && mode == lockShared {
		l.holders[txnID] = 1
		return nil
	}
	return fmt.Errorf("shard %s: lock on %v held: %w", s.id, k, types.ErrConflict)
}

func (s *Shard) unlockAll(txnID string, keys []types.Key) {
	for _, k := range keys {
		l, ok := s.locks[k]
		if !ok {
			continue
		}
		if n, mine := l.holders[txnID]; mine {
			_ = n
			delete(l.holders, txnID)
			if len(l.holders) == 0 {
				delete(s.locks, k)
			}
		}
	}
}

func (s *Shard) checkGuard(g Guard) error {
	r, ok := s.rows.Get(g.Key)
	switch g.Kind {
	case GuardExists:
		if !ok {
			return fmt.Errorf("shard %s: guard on %v: %w", s.id, g.Key, types.ErrNotFound)
		}
	case GuardAbsent:
		if ok {
			return fmt.Errorf("shard %s: guard on %v: %w", s.id, g.Key, types.ErrExists)
		}
	case GuardVersion:
		if !ok || r.version != g.Version {
			return fmt.Errorf("shard %s: version guard on %v: %w", s.id, g.Key, types.ErrConflict)
		}
	case GuardRangeEmpty:
		c := rowCursorPool.Get().(*btree.Cursor[types.Key, packedRow])
		c.Seek(s.rows, g.Key)
		empty := !c.Valid() || !c.Key().Less(g.KeyHi)
		c.Reset()
		rowCursorPool.Put(c)
		if !empty {
			return fmt.Errorf("shard %s: range [%v,%v) not empty: %w", s.id, g.Key, g.KeyHi, types.ErrNotEmpty)
		}
	}
	return nil
}

func (s *Shard) checkMutation(m Mutation) error {
	row, ok := s.rows.Get(m.Key)
	switch m.Kind {
	case MutPut:
		if m.IfAbsent && ok {
			return fmt.Errorf("shard %s: put %v: %w", s.id, m.Key, types.ErrExists)
		}
	case MutDelete, MutDeltaAttr:
		if m.MustExist && !ok {
			return fmt.Errorf("shard %s: %v: %w", s.id, m.Key, types.ErrNotFound)
		}
	}
	if m.WantKind != 0 && ok && types.EntryKind(row.kind) != m.WantKind {
		if types.EntryKind(row.kind) == types.KindDir {
			return fmt.Errorf("shard %s: %v: %w", s.id, m.Key, types.ErrIsDir)
		}
		return fmt.Errorf("shard %s: %v: %w", s.id, m.Key, types.ErrNotDir)
	}
	return nil
}

// Prepare is the 2PC prepare phase: acquire exclusive locks on every
// mutated row and shared locks on every guard row (no-wait), then
// validate guards and mutation preconditions. On any failure all locks
// taken by this call are released and the error returned; the
// transaction is then aborted by the coordinator. On success the shard
// stages the mutations until Commit or Abort.
func (s *Shard) Prepare(txnID string, guards []Guard, muts []Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.txns[txnID]; dup {
		return fmt.Errorf("shard %s: txn %s already prepared", s.id, txnID)
	}
	st := txnStatePool.Get().(*txnState)
	st.muts = muts
	fail := func(err error) error {
		s.unlockAll(txnID, st.locked)
		st.release()
		return err
	}
	lock := func(k types.Key, mode lockMode) error {
		if err := s.tryLock(txnID, k, mode); err != nil {
			return err
		}
		st.locked = append(st.locked, k)
		return nil
	}
	for _, m := range muts {
		if err := lock(m.Key, lockExclusive); err != nil {
			return fail(err)
		}
	}
	for _, g := range guards {
		if err := lock(g.Key, lockShared); err != nil {
			return fail(err)
		}
		if err := s.checkGuard(g); err != nil {
			return fail(err)
		}
	}
	for _, m := range muts {
		if err := s.checkMutation(m); err != nil {
			return fail(err)
		}
	}
	s.txns[txnID] = st
	return nil
}

// Commit applies the staged mutations of txnID and releases its locks.
// Committing an unknown transaction is a no-op (idempotent recovery).
// With a WAL attached, the mutations are logged and synced before they
// become visible; the transaction's row locks stay held across the sync,
// so conflicting transactions cannot observe or interleave with an
// un-logged commit.
func (s *Shard) Commit(txnID string) {
	s.mu.Lock()
	st, ok := s.txns[txnID]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.txns, txnID) // claim the commit (idempotence under races)
	// Assign the batch sequence and emit to the oplog under s.mu, so
	// commit order, WAL order, and oplog order are one order: both the
	// WAL staged position and the hook call happen inside the same
	// critical section.
	seq := s.noteCommitLocked(txnID, st.muts)
	if s.wal != nil {
		wal := s.wal
		s.pendingSync++
		s.mu.Unlock()
		wal.WaitDurable(seq)
		s.mu.Lock()
		s.pendingSync--
	}
	for _, m := range st.muts {
		s.applyLocked(m)
	}
	s.unlockAll(txnID, st.locked)
	s.mu.Unlock()
	st.release()
}

// noteCommitLocked assigns the next batch sequence (the WAL staged
// sequence when a WAL is attached) and feeds the replication hook.
// Called with s.mu held exclusively.
func (s *Shard) noteCommitLocked(txnID string, muts []Mutation) uint64 {
	var seq uint64
	if s.wal != nil {
		seq = s.wal.Stage(muts)
	} else {
		s.commitSeq++
		seq = s.commitSeq
	}
	if s.repl != nil {
		s.repl(seq, txnID, muts)
	}
	return seq
}

// Abort releases txnID's locks without applying anything.
func (s *Shard) Abort(txnID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.txns[txnID]
	if !ok {
		return
	}
	s.unlockAll(txnID, st.locked)
	delete(s.txns, txnID)
	st.release()
}

func (s *Shard) applyLocked(m Mutation) {
	switch m.Kind {
	case MutPut:
		if p := s.rows.Ref(m.Key); p != nil {
			*p = pack(m.Entry, p.version+1)
		} else {
			s.rows.Put(m.Key, pack(m.Entry, 1))
		}
	case MutDelete:
		s.rows.Delete(m.Key)
	case MutDeltaAttr:
		if p := s.rows.Ref(m.Key); p != nil {
			p.link += m.Delta.LinkCount
			p.size += m.Delta.Size
			p.version++
		}
	}
}

// Apply performs mutations directly under the shard mutex, without
// transactional locking. This is the relaxed-consistency path used by the
// Tectonic baseline (which the paper's authors implemented without
// distributed transactions): mutations on the same row serialise on the
// shard latch. Preconditions (IfAbsent/MustExist) are still checked; the
// first violation aborts the batch and returns the error.
func (s *Shard) Apply(muts []Mutation) error {
	s.mu.Lock()
	for _, m := range muts {
		if err := s.checkMutation(m); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	// Stage into the WAL (and the oplog) before applying, all under the
	// shard mutex: the log order of racing relaxed writers is their
	// apply order, so replay reproduces the exact in-memory state and
	// the oplog never diverges from the WAL. Relaxed applies become
	// visible before the sync completes — the weakened durability the
	// relaxed mode already accepts.
	seq := s.noteCommitLocked("", muts)
	for _, m := range muts {
		s.applyLocked(m)
	}
	wal := s.wal
	s.mu.Unlock()
	if wal != nil {
		wal.WaitDurable(seq)
	}
	return nil
}

// BulkLoad rebuilds the shard's row tree from n entries delivered in
// strictly ascending key order by next — the namespace-population fast
// path: bottom-up construction packs B-tree nodes to ~97% occupancy
// (sequential Apply leaves them half full) and skips per-row locking and
// precondition checks. Rows already present (bootstrap rows such as the
// root's primary attribute record) are merged in; on a key collision the
// streamed row wins. All loaded rows get version 1.
//
// It returns false without loading anything when a WAL is attached (the
// log would not cover the loaded rows, so a crash would silently lose
// them) — the caller falls back to the logged Apply path.
func (s *Shard) BulkLoad(n int, next func(i int) (types.Key, types.Entry)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return false
	}
	type oldRow struct {
		k types.Key
		p packedRow
	}
	var old []oldRow
	if s.rows.Len() > 0 {
		old = make([]oldRow, 0, s.rows.Len())
		c := rowCursorPool.Get().(*btree.Cursor[types.Key, packedRow])
		for c.SeekFirst(s.rows); c.Valid(); c.Next() {
			old = append(old, oldRow{c.Key(), c.Value()})
		}
		c.Reset()
		rowCursorPool.Put(c)
	}
	ld := s.rows.NewLoader()
	oi := 0
	for i := 0; i < n; i++ {
		k, e := next(i)
		for oi < len(old) && old[oi].k.Less(k) {
			ld.Add(old[oi].k, old[oi].p)
			oi++
		}
		if oi < len(old) && !k.Less(old[oi].k) {
			oi++ // collision: the streamed row replaces the old one
		}
		ld.Add(k, pack(e, 1))
	}
	for ; oi < len(old); oi++ {
		ld.Add(old[oi].k, old[oi].p)
	}
	ld.Done()
	return true
}

// CompactRange atomically folds every committed row in [lo, hi) into the
// primary row at anchor and deletes the folded rows. fold is called once
// per folded row to merge it into the primary entry. The compaction is
// skipped (returning 0) when the anchor row is missing or exclusively
// locked by an in-flight transaction — the paper's shared-latch rule: a
// directory cannot be deleted out from under its compaction, and
// compaction never clobbers an in-flight delete. Shared locks (held by
// concurrent child-creating transactions, which only assert the
// directory's existence) do not block compaction. Rows in [lo, hi) that
// are themselves locked by in-flight transactions are left in place.
//
// It returns the number of rows folded.
func (s *Shard) CompactRange(anchor types.Key, lo, hi types.Key, fold func(primary *types.Entry, delta types.Entry)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.rows.Get(anchor)
	if !ok {
		return 0
	}
	if l, locked := s.locks[anchor]; locked && l.mode == lockExclusive {
		return 0
	}
	primary := p.entry(anchor)
	var victims []types.Key
	var folded []types.Entry
	c := rowCursorPool.Get().(*btree.Cursor[types.Key, packedRow])
	for c.Seek(s.rows, lo); c.Valid(); c.Next() {
		k := c.Key()
		if !k.Less(hi) {
			break
		}
		if _, locked := s.locks[k]; locked {
			continue
		}
		victims = append(victims, k)
		folded = append(folded, c.ValueRef().entry(k))
	}
	c.Reset()
	rowCursorPool.Put(c)
	for i, k := range victims {
		fold(&primary, folded[i])
		s.rows.Delete(k)
	}
	if len(victims) > 0 {
		// Deletes rebalance the tree, so re-resolve the anchor's value
		// slot before writing the folded entry back.
		if ref := s.rows.Ref(anchor); ref != nil {
			*ref = pack(primary, ref.version+1)
		}
	}
	return len(victims)
}

// LockedKeys reports how many row locks are currently held (diagnostics).
func (s *Shard) LockedKeys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locks)
}

// CurrentSeq returns the shard's latest assigned batch sequence: the
// WAL staged sequence with a WAL attached, the relaxed commit counter
// otherwise.
func (s *Shard) CurrentSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal != nil {
		return s.wal.StagedSeq()
	}
	return s.commitSeq
}

// SnapshotRows captures a consistent cut of the shard: every committed
// row, plus the batch sequence number the cut covers — the snapshot-
// bootstrap source for a new replication secondary (a secondary loaded
// from the cut and fed the oplog from seq+1 converges exactly).
//
// Commits parked on WAL durability have a sequence assigned but no rows
// applied yet; the cut spins until that window is empty, so it never
// claims a sequence whose rows it is missing. Under a sustained commit
// storm this can briefly retry — acceptable for an ops-path operation.
func (s *Shard) SnapshotRows() ([]Row, uint64) {
	for {
		s.mu.Lock()
		if s.pendingSync == 0 {
			break
		}
		s.mu.Unlock()
		time.Sleep(20 * time.Microsecond)
	}
	defer s.mu.Unlock()
	var seq uint64
	if s.wal != nil {
		seq = s.wal.StagedSeq()
	} else {
		seq = s.commitSeq
	}
	rows := make([]Row, 0, s.rows.Len())
	c := rowCursorPool.Get().(*btree.Cursor[types.Key, packedRow])
	for c.SeekFirst(s.rows); c.Valid(); c.Next() {
		rows = append(rows, c.ValueRef().row(c.Key()))
	}
	c.Reset()
	rowCursorPool.Put(c)
	return rows, seq
}
